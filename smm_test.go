package scratchmem

import (
	"os"
	"path/filepath"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	net, err := BuiltinModel("ResNet18")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanModel(net, PlanOptions{GLBKiloBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible() || plan.AccessBytes() <= 0 {
		t.Fatalf("bad plan: feasible=%v bytes=%d", plan.Feasible(), plan.AccessBytes())
	}
	// Beat the best baseline split, as the paper's headline claims.
	best := int64(0)
	for _, bc := range BaselineSplits(64, 8) {
		r, err := SimulateBaseline(net, bc)
		if err != nil {
			t.Fatal(err)
		}
		if b := r.DRAMBytes(); best == 0 || b < best {
			best = b
		}
	}
	if plan.AccessBytes() >= best {
		t.Errorf("plan %d B not better than baseline %d B", plan.AccessBytes(), best)
	}
}

func TestPlanModelVariants(t *testing.T) {
	net, _ := BuiltinModel("MobileNet")
	het, err := PlanModel(net, PlanOptions{GLBKiloBytes: 128, Objective: MinLatency})
	if err != nil {
		t.Fatal(err)
	}
	hom, err := PlanModel(net, PlanOptions{GLBKiloBytes: 128, Objective: MinLatency, Homogeneous: true})
	if err != nil {
		t.Fatal(err)
	}
	if het.LatencyCycles() > hom.LatencyCycles() {
		t.Errorf("het latency %d > hom %d", het.LatencyCycles(), hom.LatencyCycles())
	}
	inter, err := PlanModel(net, PlanOptions{GLBKiloBytes: 1024, InterLayerReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := PlanModel(net, PlanOptions{GLBKiloBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if inter.AccessElems() > base.AccessElems() {
		t.Error("inter-layer reuse increased traffic")
	}
	noPf, err := PlanModel(net, PlanOptions{GLBKiloBytes: 128, DisablePrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if noPf.PrefetchCoverage() != 0 {
		t.Error("DisablePrefetch plan still prefetches")
	}
}

func TestPlanModelErrors(t *testing.T) {
	net, _ := BuiltinModel("TinyCNN")
	if _, err := PlanModel(net, PlanOptions{}); err == nil {
		t.Error("missing GLB size accepted")
	}
	cfg := DefaultConfig(64)
	cfg.DataWidthBits = 0
	if _, err := PlanModel(net, PlanOptions{Config: cfg}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestModelFileRoundTrips(t *testing.T) {
	dir := t.TempDir()
	net, _ := BuiltinModel("TinyCNN")

	jsonPath := filepath.Join(dir, "tiny.json")
	if err := SaveModel(net, jsonPath); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Layers) != len(net.Layers) {
		t.Errorf("JSON round trip lost layers: %d != %d", len(back.Layers), len(net.Layers))
	}

	csvPath := filepath.Join(dir, "tiny.csv")
	if err := SaveModel(net, csvPath); err != nil {
		t.Fatal(err)
	}
	back, err = LoadModel(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Layers) != len(net.Layers) {
		t.Errorf("CSV round trip lost layers: %d != %d", len(back.Layers), len(net.Layers))
	}
	if back.Name != "tiny" {
		t.Errorf("CSV model name = %q, want basename", back.Name)
	}

	if _, err := LoadModel(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(filepath.Join(dir, "bad.json")); err == nil {
		t.Error("corrupt file accepted")
	}
}

func TestBuiltinModels(t *testing.T) {
	if got := len(BuiltinModels()); got != 6 {
		t.Errorf("BuiltinModels = %d, want 6", got)
	}
	if _, err := BuiltinModel("nope"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestProgramAndSimulationFacade(t *testing.T) {
	net, _ := BuiltinModel("TinyCNN")
	plan, err := PlanModel(net, PlanOptions{GLBKiloBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := CompileProgram(plan)
	if err != nil {
		t.Fatal(err)
	}
	if prog.AccessElems() != plan.AccessElems() {
		t.Errorf("program traffic %d != plan %d", prog.AccessElems(), plan.AccessElems())
	}
	measured, estimated, err := SimulatePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if estimated != plan.LatencyCycles() {
		t.Errorf("estimated %d != plan %d", estimated, plan.LatencyCycles())
	}
	if measured <= 0 {
		t.Errorf("measured cycles = %d", measured)
	}
}

func TestDSEFacade(t *testing.T) {
	net, _ := BuiltinModel("ResNet18")
	cfg := DefaultConfig(64)
	opt, ok := DSEAccessElems(net, cfg)
	if !ok {
		t.Fatal("DSE infeasible at 64kB")
	}
	plan, err := PlanModel(net, PlanOptions{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	gap := float64(plan.AccessElems())/float64(opt) - 1
	if gap < -1e-9 || gap > 0.15 {
		t.Errorf("Het is %.2f%% from the DSE optimum", 100*gap)
	}
}
