package scratchmem

import (
	"encoding/json"
	"io"

	"scratchmem/internal/policy"
)

// ConfigDoc is the JSON form of a Config, shared by the smm-serve API and
// cmd/smm-plan -json. Field order is fixed, so marshalling is
// deterministic.
type ConfigDoc struct {
	GLBBytes          int64 `json:"glb_bytes"`
	DataWidthBits     int   `json:"data_width_bits"`
	OpsPerCycle       int   `json:"ops_per_cycle"`
	DRAMBytesPerCycle int   `json:"dram_bytes_per_cycle"`
	IncludePadding    bool  `json:"include_padding"`
	Batch             int   `json:"batch,omitempty"`
}

// NewConfigDoc converts an accelerator Config to its document form.
// Batch 1 is normalised to the zero value (the two mean the same single
// inference, see Config.BatchSize) so equivalent configs render
// identically.
func NewConfigDoc(c Config) ConfigDoc {
	if c.Batch == 1 {
		c.Batch = 0
	}
	return ConfigDoc{
		GLBBytes:          c.GLBBytes,
		DataWidthBits:     c.DataWidthBits,
		OpsPerCycle:       c.OpsPerCycle,
		DRAMBytesPerCycle: c.DRAMBytesPerCycle,
		IncludePadding:    c.IncludePadding,
		Batch:             c.Batch,
	}
}

// ToConfig converts the document form back to a Config.
func (d ConfigDoc) ToConfig() Config {
	return Config{
		GLBBytes:          d.GLBBytes,
		DataWidthBits:     d.DataWidthBits,
		OpsPerCycle:       d.OpsPerCycle,
		DRAMBytesPerCycle: d.DRAMBytesPerCycle,
		IncludePadding:    d.IncludePadding,
		Batch:             d.Batch,
	}
}

// LayerPlanDoc is one layer's decision in a PlanDoc.
type LayerPlanDoc struct {
	Name             string `json:"name"`
	Policy           string `json:"policy"` // short label: intra, p1..p5, fb
	Prefetch         bool   `json:"prefetch"`
	N                int    `json:"n,omitempty"` // P4/P5 filter-block size
	MemoryBytes      int64  `json:"memory_bytes"`
	AccessElems      int64  `json:"access_elems"`
	AccessBytes      int64  `json:"access_bytes"`
	LatencyCycles    int64  `json:"latency_cycles"`
	ConsumesResident bool   `json:"consumes_resident,omitempty"`
	KeepsResident    bool   `json:"keeps_resident,omitempty"`
}

// PlanTotalsDoc aggregates a plan's whole-network figures.
type PlanTotalsDoc struct {
	AccessElems    int64 `json:"access_elems"`
	AccessBytes    int64 `json:"access_bytes"`
	LatencyCycles  int64 `json:"latency_cycles"`
	MaxMemoryBytes int64 `json:"max_memory_bytes"`
}

// PlanDoc is the canonical serialisable form of a Plan — the document
// POST /v1/plan returns and cmd/smm-plan -json prints, byte-identical
// between the two for the same request.
type PlanDoc struct {
	Model                string         `json:"model"`
	Scheme               string         `json:"scheme"`
	Objective            string         `json:"objective"`
	Config               ConfigDoc      `json:"config"`
	Layers               []LayerPlanDoc `json:"layers"`
	Totals               PlanTotalsDoc  `json:"totals"`
	PolicyMix            []string       `json:"policy_mix"`
	PrefetchCoverage     float64        `json:"prefetch_coverage"`
	InterLayerCoverage   float64        `json:"interlayer_coverage"`
	ChainableTransitions int            `json:"chainable_transitions"`
	Feasible             bool           `json:"feasible"`
	// Degraded fields are present only when the requested policy set was
	// infeasible and the plan comes from the degradation ladder; feasible
	// requests render byte-identically to documents that predate them.
	Degraded        bool                `json:"degraded,omitempty"`
	DegradedMode    string              `json:"degraded_mode,omitempty"`
	DegradedReasons []DegradedReasonDoc `json:"degraded_reasons,omitempty"`
	// Schedule and Tensors are present only for DAG-planned graphs
	// (PlanGraph): the execution order over the source graph's nodes and
	// the tensor-lifetime table with concrete GLB address ranges. Linear
	// plans render byte-identically to documents that predate them.
	Schedule []int            `json:"schedule,omitempty"`
	Tensors  []TensorAllocDoc `json:"tensors,omitempty"`
}

// TensorAllocDoc is one produced tensor's lifetime decision in a DAG plan:
// its live interval in plan positions and, when resident, the GLB byte
// range [base, end) the interval allocator assigned; otherwise the cheaper
// spill strategy ("evict" or "recompute") when the tensor is re-read at all.
type TensorAllocDoc struct {
	Name     string `json:"name"`
	Producer int    `json:"producer"`
	LastUse  int    `json:"last_use"`
	Bytes    int64  `json:"bytes"`
	Resident bool   `json:"resident,omitempty"`
	Base     int64  `json:"base,omitempty"`
	End      int64  `json:"end,omitempty"`
	Spill    string `json:"spill,omitempty"`
}

// DegradedReasonDoc is one failed ladder rung in a PlanDoc's reason chain.
type DegradedReasonDoc struct {
	Mode  string `json:"mode"`
	Error string `json:"error"`
}

// PlanDocument converts a Plan into its document form.
func PlanDocument(p *Plan) *PlanDoc {
	doc := &PlanDoc{
		Model:     p.Model,
		Scheme:    p.Scheme,
		Objective: p.Objective.String(),
		Config:    NewConfigDoc(p.Cfg),
		Layers:    make([]LayerPlanDoc, len(p.Layers)),
		Totals: PlanTotalsDoc{
			AccessElems:    p.AccessElems(),
			AccessBytes:    p.AccessBytes(),
			LatencyCycles:  p.LatencyCycles(),
			MaxMemoryBytes: p.MaxMemoryBytes(),
		},
		PolicyMix:            p.PolicyMix(),
		PrefetchCoverage:     p.PrefetchCoverage(),
		InterLayerCoverage:   p.InterLayerCoverage(),
		ChainableTransitions: p.ChainableTransitions,
		Feasible:             p.Feasible(),
		Degraded:             p.Degraded,
		DegradedMode:         p.DegradedMode,
	}
	for _, r := range p.DegradedReasons {
		doc.DegradedReasons = append(doc.DegradedReasons, DegradedReasonDoc{Mode: r.Mode, Error: r.Err})
	}
	if len(p.Schedule) > 0 {
		doc.Schedule = append([]int(nil), p.Schedule...)
	}
	for i := range p.Tensors {
		t := &p.Tensors[i]
		doc.Tensors = append(doc.Tensors, TensorAllocDoc{
			Name: t.Name, Producer: t.Producer, LastUse: t.LastUse,
			Bytes: t.Bytes, Resident: t.Resident, Base: t.Base, End: t.End,
			Spill: t.Spill,
		})
	}
	for i := range p.Layers {
		lp := &p.Layers[i]
		n := 0
		if lp.Est.Policy == policy.P4PartialIfmap || lp.Est.Policy == policy.P5PartialPerChannel {
			n = lp.Est.N
		}
		doc.Layers[i] = LayerPlanDoc{
			Name:             lp.Layer.Name,
			Policy:           lp.Est.Policy.Short(),
			Prefetch:         lp.Est.Opts.Prefetch,
			N:                n,
			MemoryBytes:      lp.Est.MemoryBytes,
			AccessElems:      lp.Est.AccessElems,
			AccessBytes:      lp.Est.AccessBytes,
			LatencyCycles:    lp.Est.LatencyCycles,
			ConsumesResident: lp.ConsumesResident,
			KeepsResident:    lp.KeepsResident,
		}
	}
	return doc
}

// MarshalIndent renders the document the one canonical way (two-space
// indent, trailing newline) so CLI and server bodies compare byte-equal.
func (d *PlanDoc) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Encode writes the canonical rendering to w.
func (d *PlanDoc) Encode(w io.Writer) error {
	b, err := d.MarshalIndent()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
