package scratchmem

import (
	"context"
	"errors"
	"os"
	"strings"

	"scratchmem/internal/core"
	"scratchmem/internal/model"
	"scratchmem/internal/obs"
	"scratchmem/internal/policy"
	"scratchmem/internal/smmerr"
)

// Graph is a tensor-lifetime graph: layers as nodes, named tensors as
// edges, with explicit producers and consumers. It is the DAG-aware
// superset of Network — FromNetwork/Network convert losslessly for chains —
// and the input PlanGraph needs to schedule branches, place tensors at
// concrete GLB addresses and decide spills.
type Graph = model.Graph

// TensorAlloc is one tensor's lifetime decision in a DAG plan.
type TensorAlloc = core.TensorPlan

// BuiltinGraph returns a built-in model as a tensor-lifetime graph
// (case-insensitive): the same layers as BuiltinModel plus the true edge
// structure — inception concatenations, residual shortcuts, squeeze-and-
// excite side reads — that the linear Network serialises away.
func BuiltinGraph(name string) (*Graph, error) { return model.BuiltinGraph(name) }

// GraphFromNetwork lifts a linear network into the graph IR: chainable
// neighbours connect, every other layer reads an external tensor.
func GraphFromNetwork(n *Network) *Graph { return model.FromNetwork(n) }

// LoadGraph reads a model from disk as a tensor-lifetime graph. Files
// ending in .csv are parsed as SCALE-Sim topology files with the producer
// graph inferred (branches, concatenations and flattened depth-wise layers
// recovered); everything else as the JSON graph format, whose per-layer
// "inputs"/"residual" columns are optional — legacy linear files load as
// chains.
func LoadGraph(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		base := path[strings.LastIndexByte(path, '/')+1:]
		return model.ReadTopologyGraphCSV(strings.TrimSuffix(base, ".csv"), f)
	}
	return model.ReadGraphJSON(f)
}

// SaveGraph writes a graph description. .csv selects the SCALE-Sim
// topology format, which serialises the node order and loses the edge
// structure (reloading re-infers it); anything else writes the JSON graph
// format with explicit edges.
func SaveGraph(g *Graph, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		return g.Network().WriteTopologyCSV(f)
	}
	return g.WriteJSON(f)
}

// PlanGraph runs the memory-management technique on a tensor-lifetime
// graph: a DAG-aware schedule minimising peak live bytes, per-layer policy
// selection, and address-ranged GLB residency for every tensor worth
// keeping on-chip (branch ofmaps stay resident across joins instead of
// round-tripping through DRAM). Chain graphs — every FromNetwork graph of
// a plain CNN — take the exact linear planning path, so their plans and
// documents are byte-identical to PlanModel's.
func PlanGraph(g *Graph, o PlanOptions) (*Plan, error) {
	return PlanGraphCtx(context.Background(), g, o, nil)
}

// PlanGraphCtx is PlanGraph with cancellation and observation, mirroring
// PlanModelCtx: per-layer ctx checks and "plan" progress events, the typed
// error taxonomy, and — unless o.Strict — a degradation ladder. The DAG
// ladder descends requested → prefetch-relaxed → lifetime-spill (the
// minimal-footprint candidate set over the allocator) → the baseline
// fallback on the linearised node order, which always succeeds.
func PlanGraphCtx(ctx context.Context, g *Graph, o PlanOptions, prog Progress) (*Plan, error) {
	cfg, err := o.config()
	if err != nil {
		return nil, err
	}
	ctx, span := obs.StartSpan(ctx, "plan_graph")
	if span != nil {
		span.SetAttr("model", g.Name)
		span.SetAttr("layers", len(g.Nodes))
		span.SetAttr("objective", o.Objective.String())
		span.SetAttr("chain", g.IsChain())
		prog = obs.SpanProgress(span, prog)
		defer span.End()
	}
	var plan *Plan
	if g.IsChain() {
		// A chain has no joins for the allocator to improve on, and routing
		// it through the linear path keeps its PlanDoc byte-identical to
		// PlanModel's (same PlanKey-addressed cache entries).
		plan, err = planLadder(ctx, cfg, g.Network(), o, prog)
	} else {
		plan, err = planGraphLadder(ctx, cfg, g, o, prog)
	}
	if span != nil {
		if err != nil {
			span.SetAttr("error", err.Error())
		} else if plan.Degraded {
			span.SetAttr("degraded_mode", plan.DegradedMode)
		}
	}
	return plan, err
}

// planGraphLadder is the DAG counterpart of planLadder: the requested plan
// plus the degradation ladder, with the lifetime-spill rung planning over
// the graph and only the last-resort baseline linearising it.
func planGraphLadder(ctx context.Context, cfg Config, g *Graph, o PlanOptions, prog Progress) (*Plan, error) {
	pl := &core.Planner{
		Cfg:             cfg,
		Objective:       o.Objective,
		DisablePrefetch: o.DisablePrefetch,
		InterLayer:      o.InterLayerReuse,
	}
	memo := policy.MemoFrom(ctx)
	if memo == nil {
		memo = policy.NewMemo()
	}
	pl.UseMemo(memo)
	plan, err := planGraphRequested(ctx, pl, g, o.Homogeneous, prog)
	if err == nil {
		return plan, nil
	}
	if o.Strict || !errors.Is(err, smmerr.ErrInfeasible) {
		return nil, err
	}
	reasons := []core.DegradedReason{{Mode: "requested", Err: err.Error()}}

	if !o.DisablePrefetch {
		relaxed := *pl
		relaxed.DisablePrefetch = true
		plan, err = planGraphRequested(ctx, &relaxed, g, o.Homogeneous, prog)
		if err == nil {
			plan.MarkDegraded(core.DegradedPrefetchRelaxed, reasons)
			return plan, nil
		}
		if !errors.Is(err, smmerr.ErrInfeasible) {
			return nil, err
		}
		reasons = append(reasons, core.DegradedReason{Mode: core.DegradedPrefetchRelaxed, Err: err.Error()})
	}

	plan, err = pl.LifetimeSpillGraphCtx(ctx, g, prog)
	if err == nil {
		plan.MarkDegraded(core.DegradedLifetimeSpill, reasons)
		return plan, nil
	}
	if !errors.Is(err, smmerr.ErrInfeasible) {
		return nil, err
	}
	reasons = append(reasons, core.DegradedReason{Mode: core.DegradedLifetimeSpill, Err: err.Error()})

	plan, err = pl.BaselineFallbackCtx(ctx, g.Network(), prog)
	if err != nil {
		return nil, err
	}
	plan.MarkDegraded(core.DegradedBaseline, reasons)
	return plan, nil
}

// planGraphRequested runs the DAG planner exactly as the options ask.
func planGraphRequested(ctx context.Context, pl *core.Planner, g *Graph, homogeneous bool, prog Progress) (*Plan, error) {
	if homogeneous {
		return pl.BestHomogeneousGraphCtx(ctx, g, prog)
	}
	return pl.PlanGraphCtx(ctx, g, prog)
}
