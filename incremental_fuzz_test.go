package scratchmem

import (
	"bytes"
	"context"
	"testing"

	"scratchmem/internal/core"
	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/policy"
)

// FuzzIncrementalSplice drives the fingerprint matcher and the DP splice
// with randomized neighbor mutations and asserts the safety property the
// whole feature rests on: no mutation sequence ever produces a false prefix
// or suffix match — every spliced plan renders byte-identical to planning
// the mutated network from scratch. Each fuzz input derives a deterministic
// mutation sequence (edit/insert/delete positions and deltas) of ResNet18
// and checks both independent and inter-layer modes.
func FuzzIncrementalSplice(f *testing.F) {
	f.Add(uint32(0), uint8(1), false)
	f.Add(uint32(7), uint8(3), true)
	f.Add(uint32(0xdeadbeef), uint8(5), false)
	f.Add(uint32(42), uint8(2), true)

	base, err := model.Builtin("ResNet18")
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, seed uint32, edits uint8, inter bool) {
		rng := seed
		next := func(n int) int { // xorshift; avoids math/rand plumbing
			rng ^= rng << 13
			rng ^= rng >> 17
			rng ^= rng << 5
			return int(rng % uint32(n))
		}
		nn := &Network{Name: "fuzz", Layers: append([]layer.Layer(nil), base.Layers...)}
		for e := 0; e < int(edits%8); e++ {
			if len(nn.Layers) == 0 {
				break
			}
			i := next(len(nn.Layers))
			switch next(3) {
			case 0: // reshape layer i
				l := nn.Layers[i]
				delta := 1 + next(7)
				if l.Kind == layer.DepthwiseConv {
					nn.Layers[i] = layer.MustNew(l.Name, l.Kind, l.IH, l.IW, l.CI+delta, l.FH, l.FW, l.F, l.S, l.P)
				} else {
					nn.Layers[i] = layer.MustNew(l.Name, l.Kind, l.IH, l.IW, l.CI, l.FH, l.FW, l.F+delta, l.S, l.P)
				}
			case 1: // insert a fresh conv at i
				ins := layer.MustNew("fz", layer.Conv, 7+next(28), 7+next(28), 1+next(64), 3, 3, 1+next(64), 1, 1)
				nn.Layers = append(nn.Layers[:i], append([]layer.Layer{ins}, nn.Layers[i:]...)...)
			case 2: // delete layer i
				if len(nn.Layers) > 1 {
					nn.Layers = append(nn.Layers[:i], nn.Layers[i+1:]...)
				}
			}
		}
		if err := nn.Validate(); err != nil {
			t.Skip("mutation produced an invalid network")
		}

		pl := &core.Planner{Cfg: policy.Default(64), Objective: core.MinAccesses, Workers: 1, InterLayer: inter}
		pl.UseMemo(nil)
		ctx := context.Background()
		_, ck, _, err := pl.HeterogeneousDiffCtx(ctx, base, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, _, stats, gotErr := pl.HeterogeneousDiffCtx(ctx, nn, ck)

		ref := &core.Planner{Cfg: pl.Cfg, Objective: pl.Objective, Workers: 1, InterLayer: inter}
		ref.UseMemo(nil)
		want, wantErr := ref.HeterogeneousCtx(ctx, nn, nil)

		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("errors diverge: ref=%v diff=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		wantJSON, err := PlanDocument(want).MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := PlanDocument(got).MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Fatalf("spliced plan diverged from from-scratch (outcome=%s reused=%d)\nwant:\n%s\ngot:\n%s",
				stats.Outcome, stats.LayersReused, wantJSON, gotJSON)
		}
	})
}
