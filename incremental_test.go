package scratchmem

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"scratchmem/internal/core"
	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/plancache"
	"scratchmem/internal/policy"
)

// mutation names one way a serving neighbor differs from its base network.
type mutation struct {
	name  string
	apply func(*Network) *Network
}

// bumpLayer returns a copy of n with layer i reshaped: F grows by delta
// (CI for depth-wise layers, whose F is pinned to 1).
func bumpLayer(n *Network, i, delta int) *Network {
	layers := append([]layer.Layer(nil), n.Layers...)
	l := layers[i]
	if l.Kind == layer.DepthwiseConv {
		layers[i] = layer.MustNew(l.Name, l.Kind, l.IH, l.IW, l.CI+delta, l.FH, l.FW, l.F, l.S, l.P)
	} else {
		layers[i] = layer.MustNew(l.Name, l.Kind, l.IH, l.IW, l.CI, l.FH, l.FW, l.F+delta, l.S, l.P)
	}
	return &Network{Name: n.Name + "-mut", Layers: layers}
}

var mutations = []mutation{
	{"first-layer", func(n *Network) *Network { return bumpLayer(n, 0, 1) }},
	{"middle-layer", func(n *Network) *Network { return bumpLayer(n, len(n.Layers)/2, 1) }},
	{"last-layer", func(n *Network) *Network { return bumpLayer(n, len(n.Layers)-1, 1) }},
	{"insert-mid", func(n *Network) *Network {
		mid := len(n.Layers) / 2
		layers := append([]layer.Layer(nil), n.Layers[:mid]...)
		layers = append(layers, layer.MustNew("inserted", layer.Conv, 14, 14, 32, 3, 3, 32, 1, 1))
		layers = append(layers, n.Layers[mid:]...)
		return &Network{Name: n.Name + "-ins", Layers: layers}
	}},
	{"delete-mid", func(n *Network) *Network {
		if len(n.Layers) < 2 {
			return bumpLayer(n, 0, 1)
		}
		mid := len(n.Layers) / 2
		layers := append([]layer.Layer(nil), n.Layers[:mid]...)
		layers = append(layers, n.Layers[mid+1:]...)
		return &Network{Name: n.Name + "-del", Layers: layers}
	}},
	{"rename-only", func(n *Network) *Network {
		layers := append([]layer.Layer(nil), n.Layers...)
		for i := range layers {
			layers[i].Name = fmt.Sprintf("renamed%d", i)
		}
		return &Network{Name: n.Name + "-ren", Layers: layers}
	}},
}

// diffPlanner builds the planner under test for one equivalence cell.
func diffPlanner(kb int, obj Objective, inter, warm bool) *core.Planner {
	if warm {
		pl := core.NewPlanner(kb, obj)
		pl.InterLayer = inter
		return pl
	}
	pl := &core.Planner{Cfg: policy.Default(kb), Objective: obj, Workers: 1, InterLayer: inter}
	pl.UseMemo(nil)
	return pl
}

// TestIncrementalPlanningEquivalence is PR 10's golden property: across
// every builtin model, both objectives, independent and inter-layer modes,
// warm (memoized) and cold (memo-free sequential) planners and a spread of
// one-layer mutations, the plan spliced from a neighbor's checkpoint is
// deeply equal — and renders to byte-identical canonical PlanDoc JSON — to
// planning the mutated network from scratch on a memo-free sequential
// reference. Run under -race to exercise checkpoint sharing.
func TestIncrementalPlanningEquivalence(t *testing.T) {
	ctx := context.Background()
	const kb = 64
	spliced := 0
	for _, name := range model.BuiltinNames() {
		base, err := model.Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, obj := range []Objective{MinAccesses, MinLatency} {
			for _, inter := range []bool{false, true} {
				for _, warm := range []bool{false, true} {
					pl := diffPlanner(kb, obj, inter, warm)
					_, ck, _, err := pl.HeterogeneousDiffCtx(ctx, base, nil)
					if err != nil {
						continue // infeasible base at this size: nothing to splice
					}
					for _, mut := range mutations {
						nn := mut.apply(base)
						tag := fmt.Sprintf("%s/%v/inter=%v/warm=%v/%s", name, obj, inter, warm, mut.name)

						got, nck, stats, gotErr := pl.HeterogeneousDiffCtx(ctx, nn, ck)

						ref := diffPlanner(kb, obj, inter, false)
						want, wantErr := ref.HeterogeneousCtx(ctx, nn, nil)

						if (wantErr == nil) != (gotErr == nil) {
							t.Fatalf("%s: errors diverge: ref=%v diff=%v", tag, wantErr, gotErr)
						}
						if wantErr != nil {
							continue
						}
						wantJSON, err := PlanDocument(want).MarshalIndent()
						if err != nil {
							t.Fatal(err)
						}
						gotJSON, err := PlanDocument(got).MarshalIndent()
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(wantJSON, gotJSON) {
							t.Fatalf("%s: spliced plan is not byte-identical to from-scratch\nwant:\n%s\ngot:\n%s",
								tag, wantJSON, gotJSON)
						}
						if stats.Outcome == core.OutcomeSpliced {
							spliced++
							if stats.LayersReused <= 0 {
								t.Fatalf("%s: spliced outcome with %d layers reused", tag, stats.LayersReused)
							}
						}
						if nck == nil {
							t.Fatalf("%s: no checkpoint returned", tag)
						}
						if mut.name == "rename-only" && stats.LayersReused != len(nn.Layers) {
							t.Errorf("%s: rename-only reused %d of %d layers",
								tag, stats.LayersReused, len(nn.Layers))
						}
					}
				}
			}
		}
	}
	if spliced == 0 {
		t.Fatal("no cell in the matrix actually spliced — the differential path is dead")
	}
	t.Logf("spliced cells: %d", spliced)
}

// TestIncrementalFacadeEquivalence pins the facade seam: PlanModelCtx with a
// Differ installed (the server's wiring) returns plans byte-identical to
// plain PlanModel, across het, hom and inter-layer options — hom requests
// bypass the differ entirely and must be unaffected by its presence.
func TestIncrementalFacadeEquivalence(t *testing.T) {
	base, err := model.Builtin("ResNet18")
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []PlanOptions{
		{GLBKiloBytes: 64},
		{GLBKiloBytes: 64, Homogeneous: true},
		{GLBKiloBytes: 64, InterLayerReuse: true},
		{GLBKiloBytes: 64, Objective: MinLatency},
	} {
		fp := plancache.NewFingerprints(8)
		nets := []*Network{base, bumpLayer(base, 10, 1), bumpLayer(base, 3, 2)}
		for _, nn := range nets {
			d := &core.Differ{Lookup: func(chain []policy.LayerKey) *core.Checkpoint {
				ck, _ := fp.Best("t", chain).(*core.Checkpoint)
				return ck
			}}
			ctx := core.WithDiffer(context.Background(), d)
			got, err := PlanModelCtx(ctx, nn, opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			if d.Checkpoint != nil {
				fp.Insert(nn.Name, "t", d.Checkpoint.Chain(), d.Checkpoint)
			}
			want, err := PlanModel(nn, opts)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, err := PlanDocument(want).MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := PlanDocument(got).MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantJSON, gotJSON) {
				t.Fatalf("opts=%+v net=%s: differ-wired facade diverged from PlanModel\nwant:\n%s\ngot:\n%s",
					opts, nn.Name, wantJSON, gotJSON)
			}
			if opts.Homogeneous && d.Checkpoint != nil {
				t.Fatalf("homogeneous plan captured a checkpoint")
			}
		}
	}
}
