package scratchmem

import (
	"bytes"
	"reflect"
	"testing"
)

// rehydrateOptionGrid is the option matrix the round-trip property runs
// over: both objectives, Het/Hom, prefetch on/off, inter-layer reuse.
var rehydrateOptionGrid = []PlanOptions{
	{GLBKiloBytes: 108},
	{GLBKiloBytes: 108, Objective: MinLatency},
	{GLBKiloBytes: 64, InterLayerReuse: true},
	{GLBKiloBytes: 108, Homogeneous: true},
	{GLBKiloBytes: 108, DisablePrefetch: true},
	{GLBKiloBytes: 256, Objective: MinLatency, InterLayerReuse: true},
}

// TestRehydratePlanRoundTrip pins the fleet transfer invariant: for every
// builtin network and option set, plan → document → RehydratePlan
// reproduces the plan exactly (reflect.DeepEqual) and the rehydrated
// plan's canonical document is byte-identical to the original. Peer
// cache-fill and warm snapshot restore both stand on this property.
func TestRehydratePlanRoundTrip(t *testing.T) {
	nets := append(BuiltinModels(), mustBuiltin(t, "TinyCNN"), mustBuiltin(t, "AlexNet"))
	for _, net := range nets {
		for _, opts := range rehydrateOptionGrid {
			p, err := PlanModel(net, opts)
			if err != nil {
				t.Fatalf("%s %+v: PlanModel: %v", net.Name, opts, err)
			}
			if p.Degraded {
				continue // degraded plans are explicitly not rehydratable
			}
			doc := PlanDocument(p)
			got, err := RehydratePlan(net, doc)
			if err != nil {
				t.Fatalf("%s %+v: RehydratePlan: %v", net.Name, opts, err)
			}
			if !reflect.DeepEqual(p, got) {
				t.Errorf("%s %+v: rehydrated plan differs from the original", net.Name, opts)
				continue
			}
			want, err := doc.MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			back, err := PlanDocument(got).MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, back) {
				t.Errorf("%s %+v: rehydrated document not byte-identical", net.Name, opts)
			}
		}
	}
}

// TestRehydratePlanRejects: tampered figures, degraded documents and
// mismatched networks are refused rather than served.
func TestRehydratePlanRejects(t *testing.T) {
	net := mustBuiltin(t, "TinyCNN")
	p, err := PlanModel(net, PlanOptions{GLBKiloBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	doc := PlanDocument(p)

	tampered := *doc
	tampered.Layers = append([]LayerPlanDoc(nil), doc.Layers...)
	tampered.Layers[0].AccessElems++
	if _, err := RehydratePlan(net, &tampered); err == nil {
		t.Error("tampered access figure was rehydrated without error")
	}

	degraded := *doc
	degraded.Degraded = true
	degraded.DegradedMode = "baseline-fallback"
	if _, err := RehydratePlan(net, &degraded); err == nil {
		t.Error("degraded document was rehydrated without error")
	}

	other := mustBuiltin(t, "AlexNet")
	if _, err := RehydratePlan(other, doc); err == nil {
		t.Error("document rehydrated against the wrong network")
	}

	if _, err := ParseObjective("throughput"); err == nil {
		t.Error("unknown objective parsed")
	}
}

func mustBuiltin(t *testing.T, name string) *Network {
	t.Helper()
	n, err := BuiltinModel(name)
	if err != nil {
		t.Fatal(err)
	}
	return n
}
