package tensor

import (
	"math/rand"
	"testing"
)

// TestConv2DHand verifies the reference convolution on a hand-computed
// example: 3x3x1 input, 2x2 filter, stride 1, no padding.
func TestConv2DHand(t *testing.T) {
	in := New(3, 3, 1)
	in.Fill(func(h, w, c int) int32 { return int32(h*3 + w + 1) }) // 1..9
	fl := NewFilters(2, 2, 1, 1)
	fl.Set(0, 0, 0, 0, 1)
	fl.Set(0, 0, 1, 0, 2)
	fl.Set(0, 1, 0, 0, 3)
	fl.Set(0, 1, 1, 0, 4)
	out := Conv2D(in, fl, 1, 0)
	// Window [1 2; 4 5] . [1 2; 3 4] = 1+4+12+20 = 37, etc.
	want := [][]int32{{37, 47}, {67, 77}}
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			if got := out.At(y, x, 0); got != want[y][x] {
				t.Errorf("out[%d][%d] = %d, want %d", y, x, got, want[y][x])
			}
		}
	}
}

// TestConv2DPadding verifies zero padding: a 1x1 input with a 3x3 filter and
// p=1 yields just the centre tap product.
func TestConv2DPadding(t *testing.T) {
	in := New(1, 1, 2)
	in.Set(0, 0, 0, 5)
	in.Set(0, 0, 1, -3)
	fl := NewFilters(3, 3, 2, 1)
	fl.Set(0, 1, 1, 0, 2)   // centre tap, channel 0
	fl.Set(0, 1, 1, 1, 4)   // centre tap, channel 1
	fl.Set(0, 0, 0, 0, 100) // corner tap hits padding only
	out := Conv2D(in, fl, 1, 1)
	if out.H != 1 || out.W != 1 {
		t.Fatalf("out shape %dx%d, want 1x1", out.H, out.W)
	}
	if got := out.At(0, 0, 0); got != 5*2+(-3)*4 {
		t.Errorf("out = %d, want %d", got, 5*2-12)
	}
}

// TestConv2DStride verifies strided window placement.
func TestConv2DStride(t *testing.T) {
	in := New(4, 4, 1)
	in.Fill(func(h, w, c int) int32 { return int32(h*4 + w) })
	fl := NewFilters(2, 2, 1, 1)
	fl.Set(0, 0, 0, 0, 1) // identity on top-left of window
	out := Conv2D(in, fl, 2, 0)
	if out.H != 2 || out.W != 2 {
		t.Fatalf("out shape %dx%d, want 2x2", out.H, out.W)
	}
	wants := [][]int32{{0, 2}, {8, 10}}
	for y := range wants {
		for x := range wants[y] {
			if got := out.At(y, x, 0); got != wants[y][x] {
				t.Errorf("out[%d][%d] = %d, want %d", y, x, got, wants[y][x])
			}
		}
	}
}

// TestDepthwiseHand verifies the depth-wise reference: channels do not mix.
func TestDepthwiseHand(t *testing.T) {
	in := New(2, 2, 2)
	in.Fill(func(h, w, c int) int32 {
		if c == 0 {
			return 1
		}
		return 10
	})
	fl := NewFilters(2, 2, 1, 2)
	for kh := 0; kh < 2; kh++ {
		for kw := 0; kw < 2; kw++ {
			fl.Set(0, kh, kw, 0, 1) // channel 0: sum of window
			fl.Set(1, kh, kw, 0, 2) // channel 1: 2x sum of window
		}
	}
	out := DepthwiseConv2D(in, fl, 1, 0)
	if got := out.At(0, 0, 0); got != 4 {
		t.Errorf("channel 0 = %d, want 4", got)
	}
	if got := out.At(0, 0, 1); got != 80 {
		t.Errorf("channel 1 = %d, want 80", got)
	}
}

// TestFullyConnected verifies FC as a dot product per output.
func TestFullyConnected(t *testing.T) {
	in := New(1, 1, 3)
	in.Set(0, 0, 0, 1)
	in.Set(0, 0, 1, 2)
	in.Set(0, 0, 2, 3)
	fl := NewFilters(1, 1, 3, 2)
	for c := 0; c < 3; c++ {
		fl.Set(0, 0, 0, c, int32(c+1)) // 1,2,3 -> dot = 14
		fl.Set(1, 0, 0, c, 1)          // sum = 6
	}
	out := FullyConnected(in, fl)
	if got := out.At(0, 0, 0); got != 14 {
		t.Errorf("fc[0] = %d, want 14", got)
	}
	if got := out.At(0, 0, 1); got != 6 {
		t.Errorf("fc[1] = %d, want 6", got)
	}
}

// TestDepthwiseMatchesPerChannelConv: depth-wise equals CI independent 1-ch
// dense convolutions.
func TestDepthwiseMatchesPerChannelConv(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	in := New(6, 5, 3).Random(r)
	fl := NewFilters(3, 3, 1, 3).Random(r)
	got := DepthwiseConv2D(in, fl, 1, 1)
	for c := 0; c < 3; c++ {
		sub := New(6, 5, 1)
		sub.Fill(func(h, w, _ int) int32 { return in.At(h, w, c) })
		subFl := NewFilters(3, 3, 1, 1)
		for kh := 0; kh < 3; kh++ {
			for kw := 0; kw < 3; kw++ {
				subFl.Set(0, kh, kw, 0, fl.At(c, kh, kw, 0))
			}
		}
		ref := Conv2D(sub, subFl, 1, 1)
		for h := 0; h < got.H; h++ {
			for w := 0; w < got.W; w++ {
				if got.At(h, w, c) != ref.At(h, w, 0) {
					t.Fatalf("channel %d (%d,%d): %d != %d", c, h, w, got.At(h, w, c), ref.At(h, w, 0))
				}
			}
		}
	}
}

func TestEqual(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := New(3, 4, 2).Random(r)
	b := New(3, 4, 2)
	copy(b.Data, a.Data)
	if !a.Equal(b) {
		t.Error("identical tensors not equal")
	}
	b.Add(1, 2, 1, 1)
	if a.Equal(b) {
		t.Error("differing tensors compare equal")
	}
	if a.Equal(New(4, 3, 2)) {
		t.Error("different shapes compare equal")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("New", func() { New(0, 1, 1) })
	mustPanic("NewFilters", func() { NewFilters(1, 1, 0, 1) })
	mustPanic("Conv2D mismatch", func() {
		Conv2D(New(3, 3, 2), NewFilters(2, 2, 3, 1), 1, 0)
	})
	mustPanic("DW mismatch", func() {
		DepthwiseConv2D(New(3, 3, 2), NewFilters(2, 2, 1, 3), 1, 0)
	})
	mustPanic("FC shape", func() {
		FullyConnected(New(2, 1, 3), NewFilters(1, 1, 3, 2))
	})
}

func TestAtPaddedHalo(t *testing.T) {
	in := New(2, 2, 1)
	in.Set(0, 0, 0, 7)
	if got := in.AtPadded(0, 0, 0, 1); got != 0 {
		t.Errorf("halo read = %d, want 0", got)
	}
	if got := in.AtPadded(1, 1, 0, 1); got != 7 {
		t.Errorf("interior read = %d, want 7", got)
	}
}
