// Package tensor provides the small dense-tensor arithmetic used to verify
// the memory-management engine: HWC activation tensors, filter banks and
// reference convolution/fully-connected kernels. Values are int32 (wide
// enough to hold int8 x int8 accumulations exactly), so every execution path
// must agree bit-for-bit with the references here.
package tensor

import (
	"fmt"
	"math/rand"
)

// Tensor is an H x W x C activation tensor in HWC layout.
type Tensor struct {
	H, W, C int
	Data    []int32
}

// New allocates a zeroed tensor.
func New(h, w, c int) *Tensor {
	if h <= 0 || w <= 0 || c <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%dx%d", h, w, c))
	}
	return &Tensor{H: h, W: w, C: c, Data: make([]int32, h*w*c)}
}

// At returns the element at (h, w, c).
func (t *Tensor) At(h, w, c int) int32 {
	return t.Data[(h*t.W+w)*t.C+c]
}

// Set writes the element at (h, w, c).
func (t *Tensor) Set(h, w, c int, v int32) {
	t.Data[(h*t.W+w)*t.C+c] = v
}

// Add accumulates v into the element at (h, w, c).
func (t *Tensor) Add(h, w, c int, v int32) {
	t.Data[(h*t.W+w)*t.C+c] += v
}

// AtPadded reads (h, w, c) from the tensor extended with a zero halo of
// `pad` on each spatial side; coordinates are in padded space.
func (t *Tensor) AtPadded(h, w, c, pad int) int32 {
	h -= pad
	w -= pad
	if h < 0 || h >= t.H || w < 0 || w >= t.W {
		return 0
	}
	return t.At(h, w, c)
}

// Equal reports whether two tensors have identical shape and contents.
func (t *Tensor) Equal(o *Tensor) bool {
	if t.H != o.H || t.W != o.W || t.C != o.C {
		return false
	}
	for i, v := range t.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// Fill sets every element using f(h, w, c).
func (t *Tensor) Fill(f func(h, w, c int) int32) {
	for h := 0; h < t.H; h++ {
		for w := 0; w < t.W; w++ {
			for c := 0; c < t.C; c++ {
				t.Set(h, w, c, f(h, w, c))
			}
		}
	}
}

// Random fills the tensor with values in [-8, 8) from r (int8-scale inputs,
// keeping int32 accumulators far from overflow).
func (t *Tensor) Random(r *rand.Rand) *Tensor {
	for i := range t.Data {
		t.Data[i] = int32(r.Intn(16) - 8)
	}
	return t
}

// Filters is a bank of F filters of shape FH x FW x CI, laid out
// [f][kh][kw][c]. Depth-wise banks use F == CI with CI == 1 semantics per
// filter and are stored as F = CI filters of FH x FW x 1.
type Filters struct {
	FH, FW, CI, F int
	Data          []int32
}

// NewFilters allocates a zeroed filter bank.
func NewFilters(fh, fw, ci, f int) *Filters {
	if fh <= 0 || fw <= 0 || ci <= 0 || f <= 0 {
		panic(fmt.Sprintf("tensor: invalid filter shape %dx%dx%dx%d", fh, fw, ci, f))
	}
	return &Filters{FH: fh, FW: fw, CI: ci, F: f, Data: make([]int32, fh*fw*ci*f)}
}

// At returns filter f's weight at (kh, kw, c).
func (fl *Filters) At(f, kh, kw, c int) int32 {
	return fl.Data[((f*fl.FH+kh)*fl.FW+kw)*fl.CI+c]
}

// Set writes filter f's weight at (kh, kw, c).
func (fl *Filters) Set(f, kh, kw, c int, v int32) {
	fl.Data[((f*fl.FH+kh)*fl.FW+kw)*fl.CI+c] = v
}

// Random fills the bank with values in [-4, 4).
func (fl *Filters) Random(r *rand.Rand) *Filters {
	for i := range fl.Data {
		fl.Data[i] = int32(r.Intn(8) - 4)
	}
	return fl
}

// Conv2D is the reference dense convolution: stride s, symmetric zero
// padding p. The output has shape OH x OW x F.
func Conv2D(in *Tensor, fl *Filters, s, p int) *Tensor {
	if fl.CI != in.C {
		panic(fmt.Sprintf("tensor: channel mismatch %d != %d", fl.CI, in.C))
	}
	oh := (in.H-fl.FH+2*p)/s + 1
	ow := (in.W-fl.FW+2*p)/s + 1
	out := New(oh, ow, fl.F)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			for f := 0; f < fl.F; f++ {
				var acc int32
				for kh := 0; kh < fl.FH; kh++ {
					for kw := 0; kw < fl.FW; kw++ {
						for c := 0; c < in.C; c++ {
							acc += in.AtPadded(y*s+kh, x*s+kw, c, p) * fl.At(f, kh, kw, c)
						}
					}
				}
				out.Set(y, x, f, acc)
			}
		}
	}
	return out
}

// DepthwiseConv2D is the reference depth-wise convolution: filter bank of
// in.C filters, each FH x FW x 1, producing OH x OW x C.
func DepthwiseConv2D(in *Tensor, fl *Filters, s, p int) *Tensor {
	if fl.F != in.C || fl.CI != 1 {
		panic(fmt.Sprintf("tensor: depth-wise bank must be C=%d filters of depth 1, got F=%d CI=%d",
			in.C, fl.F, fl.CI))
	}
	oh := (in.H-fl.FH+2*p)/s + 1
	ow := (in.W-fl.FW+2*p)/s + 1
	out := New(oh, ow, in.C)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			for c := 0; c < in.C; c++ {
				var acc int32
				for kh := 0; kh < fl.FH; kh++ {
					for kw := 0; kw < fl.FW; kw++ {
						acc += in.AtPadded(y*s+kh, x*s+kw, c, p) * fl.At(c, kh, kw, 0)
					}
				}
				out.Set(y, x, c, acc)
			}
		}
	}
	return out
}

// FullyConnected is the reference FC layer: in is a 1x1xCI tensor, weights
// a bank of F 1x1xCI filters; the output is 1x1xF.
func FullyConnected(in *Tensor, fl *Filters) *Tensor {
	if in.H != 1 || in.W != 1 {
		panic("tensor: FC input must be 1x1xC")
	}
	return Conv2D(in, fl, 1, 0)
}
