package cluster

import (
	"context"

	"scratchmem/internal/plancache"
)

// Fill computes a cache value; it runs under the flight's context (see
// plancache.Do), not any single caller's.
type Fill func(ctx context.Context) (any, error)

// FillSpec describes how a value can be filled by a remote peer instead of
// computed locally. A nil *FillSpec marks a key as local-only (simulation
// results, DSE answers, traces): those never cross the network, only plans
// — tiny, content-addressed, deterministic — are fleet currency.
type FillSpec struct {
	// Request is the JSON-marshalable wire request the key's owner can
	// compute the value from (the server's PlanRequest).
	Request any
	// Decode turns the owner's canonical response body into the cache
	// value, verifying the peer's plan matches what this build would have
	// computed (scratchmem.RehydratePlan). An error falls the caller back
	// to computing locally.
	Decode func(body []byte) (any, error)
}

// Backend is the cache the HTTP server plans against. plancache.Cache is
// the storage; implementations differ in where a miss is computed: in
// process (Local), on the key's ring owner (Peer), or behind a hot LRU
// over either (Layered).
type Backend interface {
	// Get returns the stored value for key without computing anything.
	Get(key string) (any, bool)
	// Do returns the value for key, filling it from spec's peer owner
	// and/or computing it with fn on a miss. shared reports the value came
	// from a cache, a coalesced flight or a peer rather than from running
	// fn here.
	Do(ctx context.Context, key string, spec *FillSpec, fn Fill) (val any, shared bool, err error)
	// Stats snapshots the underlying storage counters.
	Stats() plancache.Stats
	// Snapshot returns the stored entries, most recently used first.
	Snapshot() []plancache.Entry
	// Remove deletes key from every layer, tombstoning in-flight
	// computations (plancache.Remove semantics). It reports whether a
	// stored entry was deleted from the authoritative layer.
	Remove(key string) bool
	// Purge empties every layer and returns how many stored entries the
	// authoritative layer dropped.
	Purge() int
}

// Local adapts the in-process plan cache to the Backend interface: the
// single-node composition, and the authoritative store under Peer.
type Local struct {
	c *plancache.Cache
}

// NewLocal wraps c.
func NewLocal(c *plancache.Cache) *Local { return &Local{c: c} }

// Cache exposes the wrapped cache (warm restore inserts through it).
func (l *Local) Cache() *plancache.Cache { return l.c }

func (l *Local) Get(key string) (any, bool) { return l.c.Get(key) }

func (l *Local) Do(ctx context.Context, key string, _ *FillSpec, fn Fill) (any, bool, error) {
	return l.c.Do(ctx, key, fn)
}

func (l *Local) Stats() plancache.Stats { return l.c.Stats() }

func (l *Local) Snapshot() []plancache.Entry { return l.c.Snapshot() }

func (l *Local) Remove(key string) bool { return l.c.Remove(key) }

func (l *Local) Purge() int { return l.c.Purge() }

// Layered puts a small hot LRU in front of a Backend. Values filled from
// remote owners land in the hot cache (the inner Peer does not store
// non-owned keys — the owner is their home), so a popular non-owned key
// costs one network hop, not one per request.
type Layered struct {
	hot   *plancache.Cache
	inner Backend
	// remote reports whether key's authoritative copy lives elsewhere —
	// only those are worth double-storing in the hot cache.
	remote func(key string) bool
}

// NewLayered builds the hot layer over inner. remote may be nil (nothing
// is hot-cached; the layer is then a transparent pass-through).
func NewLayered(hot *plancache.Cache, inner Backend, remote func(key string) bool) *Layered {
	return &Layered{hot: hot, inner: inner, remote: remote}
}

func (l *Layered) Get(key string) (any, bool) {
	if v, ok := l.hot.Get(key); ok {
		return v, true
	}
	return l.inner.Get(key)
}

func (l *Layered) Do(ctx context.Context, key string, spec *FillSpec, fn Fill) (any, bool, error) {
	if v, ok := l.hot.Get(key); ok {
		return v, true, nil
	}
	v, shared, err := l.inner.Do(ctx, key, spec, fn)
	if err == nil && l.remote != nil && l.remote(key) {
		l.hot.Put(key, v)
	}
	return v, shared, err
}

func (l *Layered) Stats() plancache.Stats { return l.inner.Stats() }

// Remove deletes key from both layers; the authoritative layer's verdict is
// the one reported (a hot-only copy going away is not "an entry removed").
func (l *Layered) Remove(key string) bool {
	l.hot.Remove(key)
	return l.inner.Remove(key)
}

// Purge empties both layers, reporting the authoritative layer's count.
func (l *Layered) Purge() int {
	l.hot.Purge()
	return l.inner.Purge()
}

// Snapshot merges the authoritative entries with hot-only ones (an entry
// can sit in both layers; the authoritative copy wins).
func (l *Layered) Snapshot() []plancache.Entry {
	out := l.inner.Snapshot()
	seen := make(map[string]bool, len(out))
	for _, e := range out {
		seen[e.Key] = true
	}
	for _, e := range l.hot.Snapshot() {
		if !seen[e.Key] {
			out = append(out, e)
		}
	}
	return out
}

// PeerStats exposes the peer-fill counters of a Backend that has them
// (Peer, or Layered over Peer).
type PeerStatser interface {
	PeerStats() PeerStats
}

// PeerStats reports Layered's inner backend's counters when it has any.
func (l *Layered) PeerStats() PeerStats {
	if ps, ok := l.inner.(PeerStatser); ok {
		return ps.PeerStats()
	}
	return PeerStats{}
}
