package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingDeterministicAcrossOrderings(t *testing.T) {
	a, err := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://c:1", "http://a:1", "http://b:1", "http://a:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("member sets differ: %v vs %v", a.Members(), b.Members())
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("plan:%032x", i)
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("key %s: owner %q from one ordering, %q from another", key, ao, bo)
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for i := 0; i < 3000; i++ {
		counts[r.Owner(fmt.Sprintf("plan:%d", i))]++
	}
	for _, m := range members {
		// Perfect balance is 1000 each; vnodes should keep every member
		// well away from starvation.
		if counts[m] < 300 {
			t.Errorf("member %s owns only %d of 3000 keys", m, counts[m])
		}
	}
}

func TestRingSingleMemberOwnsEverything(t *testing.T) {
	r, err := NewRing([]string{"http://solo:1"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got := r.Owner(fmt.Sprintf("k%d", i)); got != "http://solo:1" {
			t.Fatalf("key k%d owned by %q", i, got)
		}
	}
}

func TestRingRejectsBadMemberLists(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := NewRing([]string{"http://a:1", ""}, 0); err == nil {
		t.Error("empty member accepted")
	}
}

// TestRingSharesSumToOne: the ownership shares cover every member, are all
// positive, and partition the whole hash space.
func TestRingSharesSumToOne(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	shares := r.Shares()
	if len(shares) != len(members) {
		t.Fatalf("Shares covers %d members, want %d: %v", len(shares), len(members), shares)
	}
	sum := 0.0
	for _, m := range members {
		s, ok := shares[m]
		if !ok || s <= 0 || s >= 1 {
			t.Errorf("share[%s] = %f, want in (0, 1)", m, s)
		}
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %f, want ~1", sum)
	}
}

// TestRingSharesSingleMember: one member owns the full circle.
func TestRingSharesSingleMember(t *testing.T) {
	r, err := NewRing([]string{"http://solo:1"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.Shares()["http://solo:1"]; s < 0.999 || s > 1.001 {
		t.Errorf("solo share = %f, want ~1", s)
	}
}
