package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"scratchmem/internal/faultinject"
	"scratchmem/internal/plancache"
)

// fakeTransport records fills and answers from a canned table.
type fakeTransport struct {
	calls atomic.Int64
	body  []byte
	err   error
	// hook runs inside Fill before answering (for cancellation tests).
	hook func(ctx context.Context)
}

func (f *fakeTransport) Fill(ctx context.Context, baseURL string, request any) ([]byte, error) {
	f.calls.Add(1)
	if f.hook != nil {
		f.hook(ctx)
	}
	return f.body, f.err
}

const (
	memberA = "http://a:1"
	memberB = "http://b:1"
)

// twoRing is a two-member ring shared by the peer tests.
func twoRing(t *testing.T) *Ring {
	t.Helper()
	r, err := NewRing([]string{memberA, memberB}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// keyOwnedBy probes keys until one hashes onto the wanted member.
func keyOwnedBy(t *testing.T, r *Ring, owner string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("plan:key-%d", i)
		if r.Owner(k) == owner {
			return k
		}
	}
	t.Fatalf("no probed key owned by %s", owner)
	return ""
}

func decodeString(body []byte) (any, error) { return string(body), nil }

func newPeerUnderTest(t *testing.T, tr Transport, opts PeerOptions) (*Peer, *plancache.Cache) {
	t.Helper()
	c := plancache.New(16)
	return NewPeer(NewLocal(c), twoRing(t), memberA, tr, opts), c
}

func TestPeerOwnedKeyComputesLocally(t *testing.T) {
	tr := &fakeTransport{}
	p, _ := newPeerUnderTest(t, tr, PeerOptions{})
	key := keyOwnedBy(t, p.Ring(), memberA)

	var ran atomic.Int64
	spec := &FillSpec{Request: "req", Decode: decodeString}
	v, shared, err := p.Do(context.Background(), key, spec, func(context.Context) (any, error) {
		ran.Add(1)
		return "local", nil
	})
	if err != nil || shared || v != "local" {
		t.Fatalf("Do = %v, %v, %v", v, shared, err)
	}
	if ran.Load() != 1 || tr.calls.Load() != 0 {
		t.Fatalf("ran=%d transport calls=%d, want 1 and 0", ran.Load(), tr.calls.Load())
	}
	if st := p.PeerStats(); st.OwnerSelf != 1 || st.Hit != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The owned key is stored: a second Do is a shared cache hit.
	if _, shared, _ := p.Do(context.Background(), key, spec, nil); !shared {
		t.Fatal("second Do for owned key was not a cache hit")
	}
}

func TestPeerFillHit(t *testing.T) {
	tr := &fakeTransport{body: []byte("from-owner")}
	p, c := newPeerUnderTest(t, tr, PeerOptions{})
	key := keyOwnedBy(t, p.Ring(), memberB)

	spec := &FillSpec{Request: "req", Decode: decodeString}
	v, shared, err := p.Do(context.Background(), key, spec, func(context.Context) (any, error) {
		t.Fatal("local compute ran despite a successful peer fill")
		return nil, nil
	})
	if err != nil || !shared || v != "from-owner" {
		t.Fatalf("Do = %v, %v, %v", v, shared, err)
	}
	if tr.calls.Load() != 1 {
		t.Fatalf("transport calls = %d, want 1", tr.calls.Load())
	}
	if st := p.PeerStats(); st.Hit != 1 || st.OwnerSelf != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Non-owned fills are NOT stored in the authoritative cache — that is
	// the Layered hot cache's job.
	if _, ok := c.Get(key); ok {
		t.Fatal("peer fill leaked into the authoritative cache")
	}
}

func TestPeerFillErrorFallsBackToLocal(t *testing.T) {
	tr := &fakeTransport{err: errors.New("owner down")}
	p, _ := newPeerUnderTest(t, tr, PeerOptions{})
	key := keyOwnedBy(t, p.Ring(), memberB)

	spec := &FillSpec{Request: "req", Decode: decodeString}
	v, shared, err := p.Do(context.Background(), key, spec, func(context.Context) (any, error) {
		return "degraded-local", nil
	})
	if err != nil || shared || v != "degraded-local" {
		t.Fatalf("Do = %v, %v, %v", v, shared, err)
	}
	if st := p.PeerStats(); st.Error != 1 || st.Hit != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPeerBadDecodeFallsBackWithoutBreaking(t *testing.T) {
	tr := &fakeTransport{body: []byte("garbage")}
	p, _ := newPeerUnderTest(t, tr, PeerOptions{BreakerThreshold: 1})
	key := keyOwnedBy(t, p.Ring(), memberB)

	spec := &FillSpec{
		Request: "req",
		Decode:  func([]byte) (any, error) { return nil, errors.New("version skew") },
	}
	v, _, err := p.Do(context.Background(), key, spec, func(context.Context) (any, error) {
		return "local", nil
	})
	if err != nil || v != "local" {
		t.Fatalf("Do = %v, %v", v, err)
	}
	if st := p.PeerStats(); st.Bad != 1 || st.Error != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// A bad decode must not open the member's breaker: the next fill still
	// goes out on the wire.
	spec.Decode = decodeString
	if _, _, err := p.Do(context.Background(), keyOwnedBy(t, p.Ring(), memberB), spec, nil); err != nil {
		t.Fatal(err)
	}
	if st := p.PeerStats(); st.Open != 0 {
		t.Fatalf("breaker opened after decode failure: %+v", st)
	}
}

func TestPeerBreakerOpensAfterFailures(t *testing.T) {
	tr := &fakeTransport{err: errors.New("owner down")}
	p, _ := newPeerUnderTest(t, tr, PeerOptions{BreakerThreshold: 1, BreakerCooldown: time.Hour})
	spec := &FillSpec{Request: "req", Decode: decodeString}
	local := func(context.Context) (any, error) { return "local", nil }

	k1 := keyOwnedBy(t, p.Ring(), memberB)
	if _, _, err := p.Do(context.Background(), k1, spec, local); err != nil {
		t.Fatal(err)
	}
	// The breaker opened on the first failure; the next non-owned key
	// skips the wire entirely.
	k2 := keyOwnedBy(t, p.Ring(), memberB)
	if k2 == k1 {
		k2 = k1 + "-b"
		for p.Ring().Owner(k2) != memberB {
			k2 += "b"
		}
	}
	if _, _, err := p.Do(context.Background(), k2, spec, local); err != nil {
		t.Fatal(err)
	}
	if got := tr.calls.Load(); got != 1 {
		t.Fatalf("transport calls = %d, want 1 (breaker should fast-fail)", got)
	}
	if st := p.PeerStats(); st.Error != 1 || st.Open != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPeerNilSpecStaysLocal(t *testing.T) {
	tr := &fakeTransport{body: []byte("never")}
	p, _ := newPeerUnderTest(t, tr, PeerOptions{})
	key := keyOwnedBy(t, p.Ring(), memberB)

	v, shared, err := p.Do(context.Background(), key, nil, func(context.Context) (any, error) {
		return "sim-result", nil
	})
	if err != nil || shared || v != "sim-result" {
		t.Fatalf("Do = %v, %v, %v", v, shared, err)
	}
	if tr.calls.Load() != 0 {
		t.Fatal("local-only key crossed the network")
	}
}

func TestPeerStoredNonOwnedKeyServedWithoutFill(t *testing.T) {
	tr := &fakeTransport{body: []byte("never")}
	p, c := newPeerUnderTest(t, tr, PeerOptions{})
	key := keyOwnedBy(t, p.Ring(), memberB)
	c.Put(key, "warm-restored")

	spec := &FillSpec{Request: "req", Decode: decodeString}
	v, shared, err := p.Do(context.Background(), key, spec, nil)
	if err != nil || !shared || v != "warm-restored" {
		t.Fatalf("Do = %v, %v, %v", v, shared, err)
	}
	if tr.calls.Load() != 0 {
		t.Fatal("warm-restored key crossed the network")
	}
}

func TestPeerDeadCallerSkipsLocalFallback(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tr := &fakeTransport{err: errors.New("owner down"), hook: func(context.Context) { cancel() }}
	p, _ := newPeerUnderTest(t, tr, PeerOptions{})
	key := keyOwnedBy(t, p.Ring(), memberB)

	spec := &FillSpec{Request: "req", Decode: decodeString}
	_, _, err := p.Do(ctx, key, spec, func(context.Context) (any, error) {
		t.Fatal("planner ran for a cancelled caller")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPeerFaultInjection(t *testing.T) {
	faultinject.Enable(1, faultinject.Fault{Site: "cluster.peer", Kind: faultinject.KindError, P: 1})
	defer faultinject.Disable()

	tr := &fakeTransport{body: []byte("never")}
	p, _ := newPeerUnderTest(t, tr, PeerOptions{})
	key := keyOwnedBy(t, p.Ring(), memberB)

	spec := &FillSpec{Request: "req", Decode: decodeString}
	v, _, err := p.Do(context.Background(), key, spec, func(context.Context) (any, error) {
		return "local", nil
	})
	if err != nil || v != "local" {
		t.Fatalf("Do = %v, %v", v, err)
	}
	if tr.calls.Load() != 0 {
		t.Fatal("injected fault did not stop the transport call")
	}
	if st := p.PeerStats(); st.Error != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLayeredHotCachesRemoteFills(t *testing.T) {
	tr := &fakeTransport{body: []byte("from-owner")}
	p, _ := newPeerUnderTest(t, tr, PeerOptions{})
	hot := plancache.New(8)
	l := NewLayered(hot, p, p.Remote)
	key := keyOwnedBy(t, p.Ring(), memberB)
	spec := &FillSpec{Request: "req", Decode: decodeString}

	for i := 0; i < 3; i++ {
		v, shared, err := l.Do(context.Background(), key, spec, nil)
		if err != nil || !shared || v != "from-owner" {
			t.Fatalf("Do #%d = %v, %v, %v", i, v, shared, err)
		}
	}
	if got := tr.calls.Load(); got != 1 {
		t.Fatalf("transport calls = %d, want 1 (hot cache should absorb repeats)", got)
	}
	if st := l.PeerStats(); st.Hit != 1 {
		t.Fatalf("stats did not pass through Layered: %+v", st)
	}
}

func TestLayeredDoesNotHotCacheOwnedKeys(t *testing.T) {
	tr := &fakeTransport{}
	p, _ := newPeerUnderTest(t, tr, PeerOptions{})
	hot := plancache.New(8)
	l := NewLayered(hot, p, p.Remote)
	key := keyOwnedBy(t, p.Ring(), memberA)
	spec := &FillSpec{Request: "req", Decode: decodeString}

	if _, _, err := l.Do(context.Background(), key, spec, func(context.Context) (any, error) {
		return "local", nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := hot.Get(key); ok {
		t.Fatal("owned key double-stored in the hot cache")
	}
	// Snapshot must still surface it (authoritative layer), exactly once.
	snap := l.Snapshot()
	n := 0
	for _, e := range snap {
		if e.Key == key {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("key appears %d times in the layered snapshot", n)
	}
}
