// Package cluster turns N smm-serve processes into one logical planner.
//
// A plan is expensive to compute but tiny to store and perfectly
// content-addressed (the canonical SHA-256 PlanKey), so every plan should
// be computed exactly once fleet-wide. The package lifts the local
// single-flight plan cache (internal/plancache) behind a Backend interface
// with three implementations:
//
//   - Local    — the existing in-process LRU, unchanged semantics;
//   - Peer     — consistent-hashes the key onto a static member Ring and
//     asks the key's owner over POST /v1/peer/fill before computing
//     locally (groupcache-style: the owner runs the computation under its
//     own single-flight, so concurrent fleet-wide requests for one key
//     collapse onto one planner execution);
//   - Layered  — a small hot LRU over Peer, so repeated requests for
//     non-owned keys stop crossing the network.
//
// Membership is static (the -peers flag), not gossip: fleet membership for
// a planning tier changes by deploy, and a static ring keeps owner
// placement deterministic across the fleet — every member computes the
// same owner for a key with no coordination protocol. When the owner is
// unreachable the non-owner degrades to computing locally (availability
// over dedup), guarded by a per-peer circuit breaker so a dead member
// costs one failed round-trip per cooldown, not per request.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// DefaultReplicas is how many virtual points each member contributes to
// the ring. 64 keeps the per-member load share within a few percent of
// uniform for small fleets while the ring stays a trivially searchable
// few-KB array.
const DefaultReplicas = 64

// Ring is a consistent-hash ring over a static member set. Hashing is
// deterministic (SHA-256) so every process configured with the same member
// list computes the same owner for every key, with no coordination.
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	members []string
	hashes  []uint64 // sorted virtual points
	owners  []string // owners[i] owns hashes[i]
}

// NewRing builds a ring over members (deduplicated, order-insensitive)
// with the given number of virtual points per member (DefaultReplicas
// when <= 0).
func NewRing(members []string, replicas int) (*Ring, error) {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty ring member")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{
		members: uniq,
		hashes:  make([]uint64, 0, len(uniq)*replicas),
		owners:  make([]string, 0, len(uniq)*replicas),
	}
	type point struct {
		h     uint64
		owner string
	}
	pts := make([]point, 0, len(uniq)*replicas)
	for _, m := range uniq {
		for i := 0; i < replicas; i++ {
			pts = append(pts, point{h: hash64(fmt.Sprintf("%s#%d", m, i)), owner: m})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].h < pts[j].h })
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.owners = append(r.owners, p.owner)
	}
	return r, nil
}

// Owner returns the member owning key: the one whose first virtual point
// clockwise of the key's hash position.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap around the ring
	}
	return r.owners[i]
}

// Successor returns the first member clockwise of key's owner that is not
// the owner itself: the natural home for a durable replica of the owner's
// copy, because a ring that loses the owner re-assigns the key's arc to
// exactly this member. ok is false for single-member rings, which have
// nobody to replicate to.
func (r *Ring) Successor(key string) (succ string, ok bool) {
	if len(r.members) < 2 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	owner := r.owners[i]
	for j := 1; j < len(r.hashes); j++ {
		if o := r.owners[(i+j)%len(r.hashes)]; o != owner {
			return o, true
		}
	}
	return "", false
}

// Members returns the (sorted, deduplicated) member set.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Shares returns each member's fraction of the ring's hash space — the
// expected share of uniformly hashed keys it owns. Shares sum to ~1 and
// every member appears; the overview endpoint renders them so an operator
// can see placement skew without sampling keys.
func (r *Ring) Shares() map[string]float64 {
	out := make(map[string]float64, len(r.members))
	for _, m := range r.members {
		out[m] = 0
	}
	n := len(r.hashes)
	const space = float64(math.MaxUint64)
	for i := 0; i < n; i++ {
		// The arc (hashes[i-1], hashes[i]] belongs to owners[i]; point 0
		// additionally owns the wraparound arc past the last point.
		var arc float64
		if i == 0 {
			arc = float64(r.hashes[0]) + (space - float64(r.hashes[n-1]))
		} else {
			arc = float64(r.hashes[i] - r.hashes[i-1])
		}
		out[r.owners[i]] += arc / space
	}
	return out
}

// hash64 maps a string onto the ring's coordinate space. SHA-256 keeps the
// virtual points well spread and — unlike maphash — is stable across
// processes, which is the whole point: every fleet member must agree on
// every key's position.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
