package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"scratchmem/internal/faultinject"
	"scratchmem/internal/obs"
)

// PushFunc delivers one replication payload to a member (POST
// /v1/peer/replicate through the client's transport). The payload is a
// server.SnapshotRecord — self-contained and rehydration-verifiable, so the
// receiver trusts nothing it cannot re-derive.
type PushFunc func(ctx context.Context, baseURL string, payload any) error

// Defaults for ReplicatorOptions zero values.
const (
	// DefaultReplicateQueue bounds the pending-push queue. Plans are tiny
	// (a few KB of JSON), so 64 queued pushes cost well under a MB while
	// absorbing a planning burst an order of magnitude faster than the
	// successor can be slow.
	DefaultReplicateQueue = 64
	// DefaultPushTimeout bounds one replication push.
	DefaultPushTimeout = 5 * time.Second
)

// ReplicatorOptions tunes a Replicator. The zero value selects the defaults.
type ReplicatorOptions struct {
	// QueueDepth bounds the pending-push queue (DefaultReplicateQueue when
	// <= 0). A full queue drops the oldest pending push: under sustained
	// backpressure the freshest plans are the ones worth protecting, and a
	// dropped replica costs one recompute after an owner death, never a
	// wrong answer.
	QueueDepth int
	// PushTimeout bounds each push (DefaultPushTimeout when <= 0).
	PushTimeout time.Duration
}

// ReplStats counts replication outcomes on the sending side (it is also
// the "replication" object of GET /v1/cluster/status).
type ReplStats struct {
	// Enqueued counts payloads accepted into the queue.
	Enqueued int64 `json:"enqueued"`
	// Sent counts pushes the successor acknowledged.
	Sent int64 `json:"sent"`
	// Errors counts pushes that failed (transport error, injected fault,
	// receiver rejection); best-effort, the payload is not retried.
	Errors int64 `json:"errors"`
	// Dropped counts pushes evicted by drop-oldest backpressure.
	Dropped int64 `json:"dropped"`
	// Skipped counts payloads with nowhere to go (no distinct successor, or
	// the successor is known dead).
	Skipped int64 `json:"skipped"`
	// Queued is the current queue length.
	Queued int `json:"queued"`
}

// replItem is one pending push: the payload and the successor it goes to,
// resolved at enqueue time so the worker never touches the ring, plus the
// enqueuing request's trace context so the asynchronous push still lands
// in the originating trace.
type replItem struct {
	succ    string
	payload any
	tc      obs.TraceContext
}

// Replicator asynchronously pushes freshly computed plans from their ring
// owner to the key's ring successor, so an owner death costs zero duplicate
// planner runs for already-replicated keys: the survivors find the replica
// where the re-assigned ring arc now points. Replication is strictly
// best-effort — a lost push degrades to one recompute, and every received
// payload is rehydration-verified before it is trusted — so no
// acknowledgement, retry or ordering protocol is needed.
type Replicator struct {
	ring   *Ring
	self   string
	push   PushFunc
	health *Health
	opts   ReplicatorOptions

	mu    sync.Mutex
	queue []replItem
	wake  chan struct{}

	inflight atomic.Int64 // 1 while the worker is mid-push

	enqueued, sent, errors, dropped, skipped atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewReplicator builds a replicator pushing through push; health (may be
// nil) lets it skip pushes to known-dead successors. Start launches the
// worker.
func NewReplicator(ring *Ring, self string, push PushFunc, health *Health, opts ReplicatorOptions) *Replicator {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultReplicateQueue
	}
	if opts.PushTimeout <= 0 {
		opts.PushTimeout = DefaultPushTimeout
	}
	return &Replicator{
		ring:   ring,
		self:   self,
		push:   push,
		health: health,
		opts:   opts,
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Enqueue queues key's payload for its ring successor. Payloads with no
// distinct successor (single-member ring, or the successor is this process)
// or a known-dead successor are counted skipped. A full queue drops the
// oldest pending push (drop-oldest: fresh plans win under backpressure).
// ctx is only read for its trace context — the push itself outlives the
// caller and runs under the worker's own timeout — so the replica push
// appears in the trace of the request that computed the plan.
func (r *Replicator) Enqueue(ctx context.Context, key string, payload any) {
	if r == nil {
		return
	}
	succ, ok := r.ring.Successor(key)
	if !ok || succ == r.self || !r.health.Alive(succ) {
		r.skipped.Add(1)
		return
	}
	r.mu.Lock()
	if len(r.queue) >= r.opts.QueueDepth {
		r.queue = r.queue[1:]
		r.dropped.Add(1)
	}
	r.queue = append(r.queue, replItem{succ: succ, payload: payload, tc: obs.TraceContextFrom(ctx)})
	r.mu.Unlock()
	r.enqueued.Add(1)
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// Start launches the push worker; Stop ends it.
func (r *Replicator) Start() {
	if r == nil {
		return
	}
	go func() {
		defer close(r.done)
		for {
			item, ok := r.next()
			if !ok {
				select {
				case <-r.stop:
					return
				case <-r.wake:
					continue
				}
			}
			r.send(item)
		}
	}()
}

// next pops the oldest pending push.
func (r *Replicator) next() (replItem, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.queue) == 0 {
		return replItem{}, false
	}
	item := r.queue[0]
	r.queue = r.queue[1:]
	r.inflight.Store(1)
	return item, true
}

// send performs one push. It crosses the cluster.replicate faultinject
// site, so the chaos suite can fail replication without network surgery.
// The item's captured trace context rides the push context, so the
// transport stamps the originating request's TraceparentHeader even though
// the push runs on the worker goroutine long after the request returned.
func (r *Replicator) send(item replItem) {
	defer r.inflight.Store(0)
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.PushTimeout)
	defer cancel()
	ctx = obs.WithRemoteParent(ctx, item.tc)
	err := faultinject.Hit("cluster.replicate")
	if err == nil {
		err = r.push(ctx, item.succ, item.payload)
	}
	if err != nil {
		r.errors.Add(1)
		return
	}
	r.sent.Add(1)
}

// Stop ends the worker and waits for it to finish any in-flight push. Safe
// to call more than once, and before Start.
func (r *Replicator) Stop() {
	if r == nil {
		return
	}
	r.stopOnce.Do(func() { close(r.stop) })
	select {
	case <-r.done:
	case <-time.After(r.opts.PushTimeout + time.Second):
	}
}

// Pending reports queued plus in-flight pushes; tests poll it to zero.
func (r *Replicator) Pending() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	n := len(r.queue)
	r.mu.Unlock()
	return n + int(r.inflight.Load())
}

// Flush blocks until every pending push has been attempted or ctx expires.
func (r *Replicator) Flush(ctx context.Context) error {
	if r == nil {
		return nil
	}
	for r.Pending() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
	return nil
}

// Stats snapshots the replication counters.
func (r *Replicator) Stats() ReplStats {
	if r == nil {
		return ReplStats{}
	}
	r.mu.Lock()
	queued := len(r.queue)
	r.mu.Unlock()
	return ReplStats{
		Enqueued: r.enqueued.Load(),
		Sent:     r.sent.Load(),
		Errors:   r.errors.Load(),
		Dropped:  r.dropped.Load(),
		Skipped:  r.skipped.Load(),
		Queued:   queued,
	}
}
