package cluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"scratchmem/internal/faultinject"
)

// ProbeFunc checks one member's liveness (GET /healthz through the client's
// transport). A nil error means the member answered.
type ProbeFunc func(ctx context.Context, baseURL string) error

// Defaults for HealthOptions zero values.
const (
	// DefaultProbeInterval is how often the health loop probes every peer.
	DefaultProbeInterval = time.Second
	// DefaultProbeTimeout bounds one probe round-trip.
	DefaultProbeTimeout = 2 * time.Second
	// DefaultDeadAfter is how many consecutive probe failures mark a member
	// dead. Two, so one dropped packet does not flap the member; a genuinely
	// dead process fails both well inside a probe interval.
	DefaultDeadAfter = 2
)

// HealthOptions tunes a Health tracker. The zero value selects the defaults.
type HealthOptions struct {
	// Interval is the probe period (DefaultProbeInterval when <= 0).
	Interval time.Duration
	// Timeout bounds each probe (DefaultProbeTimeout when <= 0).
	Timeout time.Duration
	// DeadAfter is the consecutive-failure threshold past which a member is
	// considered dead (DefaultDeadAfter when <= 0).
	DeadAfter int
}

// MemberHealth is one member's liveness as this process sees it.
type MemberHealth struct {
	Member string `json:"member"`
	// Alive reports the member under the consecutive-failure threshold.
	// Members start alive: liveness is an optimistic view that only probes
	// may retract, so a fresh tracker never blocks traffic.
	Alive bool `json:"alive"`
	// ConsecutiveFailures counts probe failures since the last success.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// LastProbe is when the member was last probed (zero = never).
	LastProbe time.Time `json:"last_probe"`
	// LastError is the most recent probe failure ("" after a success).
	LastError string `json:"last_error,omitempty"`
}

// Health tracks peer liveness with periodic probes, so the Peer backend can
// skip a known-dead owner immediately instead of burning a round-trip (or a
// breaker cooldown) per request. Membership stays static (the ring); only
// liveness is dynamic. A nil *Health reports every member alive, so callers
// never branch on "health disabled".
type Health struct {
	probe ProbeFunc
	opts  HealthOptions

	mu      sync.Mutex
	members map[string]*memberState
	order   []string // stable probe/view order

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

type memberState struct {
	consecutive int
	lastProbe   time.Time
	lastError   string
}

// NewHealth builds a tracker over every ring member except self (a process
// does not probe itself). probe is required; Start begins the loop.
func NewHealth(ring *Ring, self string, probe ProbeFunc, opts HealthOptions) *Health {
	if opts.Interval <= 0 {
		opts.Interval = DefaultProbeInterval
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultProbeTimeout
	}
	if opts.DeadAfter <= 0 {
		opts.DeadAfter = DefaultDeadAfter
	}
	h := &Health{
		probe:   probe,
		opts:    opts,
		members: make(map[string]*memberState),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, m := range ring.Members() {
		if m == self {
			continue
		}
		h.members[m] = &memberState{}
		h.order = append(h.order, m)
	}
	sort.Strings(h.order)
	return h
}

// Start launches the periodic probe loop (one immediate round, then every
// Interval). Stop ends it.
func (h *Health) Start() {
	if h == nil {
		return
	}
	go func() {
		defer close(h.done)
		t := time.NewTicker(h.opts.Interval)
		defer t.Stop()
		h.ProbeNow(context.Background())
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				h.ProbeNow(context.Background())
			}
		}
	}()
}

// Stop ends the probe loop and waits for it to exit. Safe to call more than
// once, and before Start (the loop then never runs).
func (h *Health) Stop() {
	if h == nil {
		return
	}
	h.stopOnce.Do(func() {
		close(h.stop)
		select {
		case <-h.done:
		default:
			// Start was never called; nothing to wait for.
		}
	})
}

// ProbeNow runs one synchronous probe round over every tracked member. The
// loop calls it on its ticker; tests call it directly for determinism.
// Probes cross the cluster.health faultinject site, so the chaos suite can
// fail probes without killing processes.
func (h *Health) ProbeNow(ctx context.Context) {
	if h == nil {
		return
	}
	h.mu.Lock()
	members := make([]string, len(h.order))
	copy(members, h.order)
	h.mu.Unlock()
	for _, m := range members {
		pctx, cancel := context.WithTimeout(ctx, h.opts.Timeout)
		err := faultinject.Hit("cluster.health")
		if err == nil {
			err = h.probe(pctx, m)
		}
		cancel()
		h.observe(m, err)
	}
}

// observe folds one probe outcome into the member's state.
func (h *Health) observe(member string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.members[member]
	if !ok {
		return
	}
	st.lastProbe = time.Now()
	if err != nil {
		st.consecutive++
		st.lastError = err.Error()
		return
	}
	st.consecutive = 0
	st.lastError = ""
}

// Alive reports whether member is currently considered live. Untracked
// members (including self) and a nil tracker are always alive: liveness only
// ever retracts reachability it has positive evidence against.
func (h *Health) Alive(member string) bool {
	if h == nil {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st, ok := h.members[member]
	if !ok {
		return true
	}
	return st.consecutive < h.opts.DeadAfter
}

// View snapshots every tracked member's state, sorted by member.
func (h *Health) View() []MemberHealth {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]MemberHealth, 0, len(h.order))
	for _, m := range h.order {
		st := h.members[m]
		out = append(out, MemberHealth{
			Member:              m,
			Alive:               st.consecutive < h.opts.DeadAfter,
			ConsecutiveFailures: st.consecutive,
			LastProbe:           st.lastProbe,
			LastError:           st.lastError,
		})
	}
	return out
}
