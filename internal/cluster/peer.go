package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"scratchmem/internal/breaker"
	"scratchmem/internal/faultinject"
	"scratchmem/internal/obs"
	"scratchmem/internal/plancache"
)

// Transport carries one peer cache-fill to a ring member. The concrete
// implementation lives in the client package (retry/backoff, typed errors);
// cluster only sees this interface, keeping the import graph acyclic
// (client imports server imports cluster).
type Transport interface {
	// Fill asks the member at base URL to produce the value for request
	// and returns its canonical response body.
	Fill(ctx context.Context, baseURL string, request any) ([]byte, error)
}

// TransportFunc adapts a function to the Transport interface.
type TransportFunc func(ctx context.Context, baseURL string, request any) ([]byte, error)

func (f TransportFunc) Fill(ctx context.Context, baseURL string, request any) ([]byte, error) {
	return f(ctx, baseURL, request)
}

// PeerStats counts peer-fill outcomes. Fleet tests and the /metrics
// endpoint read these to prove a plan was computed exactly once.
type PeerStats struct {
	// OwnerSelf counts keys this member owned (no fill attempted).
	OwnerSelf int64
	// Hit counts fills answered by the owner and successfully decoded.
	Hit int64
	// Error counts fills that failed in transport (owner down, timeout).
	Error int64
	// Bad counts fills whose response failed to decode or verify
	// (version-skewed owner).
	Bad int64
	// Open counts fills skipped because the owner's breaker was open.
	Open int64
}

// PeerOptions tunes a Peer. The zero value selects the breaker defaults.
type PeerOptions struct {
	// BreakerThreshold and BreakerCooldown configure the per-member
	// circuit breaker (breaker.New semantics: 0 selects the default,
	// threshold < 0 disables breaking).
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// Peer routes cache misses to each key's ring owner before computing
// locally. The owner runs the computation under its own single-flight, so
// concurrent fleet-wide requests for one key collapse onto one planner
// execution; this member stores owned keys in inner and leaves non-owned
// values to the Layered hot cache above it. Any fill failure degrades to
// computing locally — availability over dedup.
type Peer struct {
	inner     Backend
	ring      *Ring
	self      string
	transport Transport
	opts      PeerOptions

	mu       sync.Mutex
	breakers map[string]*breaker.Breaker

	ownerSelf atomic.Int64
	hit       atomic.Int64
	errs      atomic.Int64
	bad       atomic.Int64
	open      atomic.Int64
}

// NewPeer builds a Peer over inner. self must be a ring member and names
// this process's own base URL, so it can recognise the keys it owns.
func NewPeer(inner Backend, ring *Ring, self string, t Transport, opts PeerOptions) *Peer {
	return &Peer{
		inner:     inner,
		ring:      ring,
		self:      self,
		transport: t,
		opts:      opts,
		breakers:  make(map[string]*breaker.Breaker),
	}
}

// Ring returns the member ring.
func (p *Peer) Ring() *Ring { return p.ring }

// Self returns this member's own base URL.
func (p *Peer) Self() string { return p.self }

// Remote reports whether key's owner is another member — the predicate
// Layered uses to decide what is worth hot-caching.
func (p *Peer) Remote(key string) bool { return p.ring.Owner(key) != p.self }

// PeerStats snapshots the fill counters.
func (p *Peer) PeerStats() PeerStats {
	return PeerStats{
		OwnerSelf: p.ownerSelf.Load(),
		Hit:       p.hit.Load(),
		Error:     p.errs.Load(),
		Bad:       p.bad.Load(),
		Open:      p.open.Load(),
	}
}

func (p *Peer) Get(key string) (any, bool) { return p.inner.Get(key) }

func (p *Peer) Stats() plancache.Stats { return p.inner.Stats() }

func (p *Peer) Snapshot() []plancache.Entry { return p.inner.Snapshot() }

// Do implements Backend. Owned keys (and keys without a FillSpec) go
// straight to the local single-flight; for the rest the owner is asked
// first, with every failure mode falling back to local compute.
func (p *Peer) Do(ctx context.Context, key string, spec *FillSpec, fn Fill) (any, bool, error) {
	owner := p.ring.Owner(key)
	if owner == p.self {
		p.ownerSelf.Add(1)
		return p.inner.Do(ctx, key, spec, fn)
	}
	if spec == nil {
		// Local-only keys (simulations, sweeps, traces) never cross the
		// network even when another member nominally owns them.
		return p.inner.Do(ctx, key, nil, fn)
	}
	// A non-owned key may still be stored here (warm restore, an earlier
	// ring configuration): serve it without a round-trip.
	if v, ok := p.inner.Get(key); ok {
		return v, true, nil
	}
	if v, ok, err := p.fill(ctx, key, owner, spec); ok || err != nil {
		return v, ok, err
	}
	// The caller may have gone away while the fill failed; don't burn a
	// planner run for a dead request.
	if ctx.Err() != nil {
		return nil, false, ctx.Err()
	}
	return p.inner.Do(ctx, key, nil, fn)
}

// fill attempts one peer round-trip. ok reports a decoded value; a false
// ok with nil err means "fall back to local compute".
func (p *Peer) fill(ctx context.Context, key, owner string, spec *FillSpec) (val any, ok bool, err error) {
	ctx, span := obs.StartSpan(ctx, "peer_fill")
	span.SetAttr("key", key)
	span.SetAttr("owner", owner)
	outcome := "error"
	defer func() {
		span.SetAttr("outcome", outcome)
		span.End()
	}()

	br := p.breakerFor(owner)
	if !br.Allow() {
		p.open.Add(1)
		outcome = "open"
		return nil, false, nil
	}
	if ferr := faultinject.Hit("cluster.peer"); ferr != nil {
		br.Failure()
		p.errs.Add(1)
		return nil, false, nil
	}
	body, terr := p.transport.Fill(ctx, owner, spec.Request)
	if terr != nil {
		br.Failure()
		p.errs.Add(1)
		span.SetAttr("error", terr.Error())
		return nil, false, nil
	}
	br.Success()
	v, derr := spec.Decode(body)
	if derr != nil {
		// The owner answered but with a plan this build would not have
		// produced (version skew) or an unparsable body. The member is
		// healthy — don't open its breaker — but its answer is unusable.
		p.bad.Add(1)
		outcome = "bad"
		span.SetAttr("error", derr.Error())
		return nil, false, nil
	}
	p.hit.Add(1)
	outcome = "hit"
	return v, true, nil
}

func (p *Peer) breakerFor(owner string) *breaker.Breaker {
	p.mu.Lock()
	defer p.mu.Unlock()
	br, ok := p.breakers[owner]
	if !ok {
		br = breaker.New(p.opts.BreakerThreshold, p.opts.BreakerCooldown)
		p.breakers[owner] = br
	}
	return br
}
