package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"scratchmem/internal/breaker"
	"scratchmem/internal/faultinject"
	"scratchmem/internal/obs"
	"scratchmem/internal/plancache"
)

// Transport carries one peer cache-fill to a ring member. The concrete
// implementation lives in the client package (retry/backoff, typed errors);
// cluster only sees this interface, keeping the import graph acyclic
// (client imports server imports cluster).
type Transport interface {
	// Fill asks the member at base URL to produce the value for request
	// and returns its canonical response body.
	Fill(ctx context.Context, baseURL string, request any) ([]byte, error)
}

// TransportFunc adapts a function to the Transport interface.
type TransportFunc func(ctx context.Context, baseURL string, request any) ([]byte, error)

func (f TransportFunc) Fill(ctx context.Context, baseURL string, request any) ([]byte, error) {
	return f(ctx, baseURL, request)
}

// PeerStats counts peer-fill outcomes. Fleet tests and the /metrics
// endpoint read these to prove a plan was computed exactly once; the JSON
// shape is the "peer" object of GET /v1/cluster/status.
type PeerStats struct {
	// OwnerSelf counts keys this member owned (no fill attempted).
	OwnerSelf int64 `json:"owner_self"`
	// Hit counts fills answered by the owner and successfully decoded.
	Hit int64 `json:"hit"`
	// Error counts fills that failed in transport (owner down, timeout).
	Error int64 `json:"error"`
	// Bad counts fills whose response failed to decode or verify
	// (version-skewed owner).
	Bad int64 `json:"bad"`
	// Open counts fills skipped because the owner's breaker was open.
	Open int64 `json:"open"`
	// Dead counts fills skipped because health probes marked the owner
	// dead (no round-trip attempted at all).
	Dead int64 `json:"dead"`
	// SuccHit counts values recovered from the key's ring successor after
	// the owner was dead or failed — the replication payoff.
	SuccHit int64 `json:"successor_hit"`
}

// PeerOptions tunes a Peer. The zero value selects the breaker defaults.
type PeerOptions struct {
	// BreakerThreshold and BreakerCooldown configure the per-member
	// circuit breaker (breaker.New semantics: 0 selects the default,
	// threshold < 0 disables breaking).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Health, when set, lets Do skip known-dead owners without a
	// round-trip. nil means every member is presumed alive.
	Health *Health
	// Lookup, when set, lets Do ask the key's ring successor for an
	// already-cached replica (never a compute) after the owner is dead or
	// failed. nil disables the successor fallback.
	Lookup LookupFunc
}

// Peer routes cache misses to each key's ring owner before computing
// locally. The owner runs the computation under its own single-flight, so
// concurrent fleet-wide requests for one key collapse onto one planner
// execution; this member stores owned keys in inner and leaves non-owned
// values to the Layered hot cache above it. Any fill failure degrades to
// computing locally — availability over dedup.
type Peer struct {
	inner     Backend
	ring      *Ring
	self      string
	transport Transport
	opts      PeerOptions

	mu       sync.Mutex
	breakers map[string]*breaker.Breaker

	ownerSelf atomic.Int64
	hit       atomic.Int64
	errs      atomic.Int64
	bad       atomic.Int64
	open      atomic.Int64
	dead      atomic.Int64
	succHit   atomic.Int64
}

// NewPeer builds a Peer over inner. self must be a ring member and names
// this process's own base URL, so it can recognise the keys it owns.
func NewPeer(inner Backend, ring *Ring, self string, t Transport, opts PeerOptions) *Peer {
	return &Peer{
		inner:     inner,
		ring:      ring,
		self:      self,
		transport: t,
		opts:      opts,
		breakers:  make(map[string]*breaker.Breaker),
	}
}

// Ring returns the member ring.
func (p *Peer) Ring() *Ring { return p.ring }

// Self returns this member's own base URL.
func (p *Peer) Self() string { return p.self }

// Remote reports whether key's owner is another member — the predicate
// Layered uses to decide what is worth hot-caching.
func (p *Peer) Remote(key string) bool { return p.ring.Owner(key) != p.self }

// PeerStats snapshots the fill counters.
func (p *Peer) PeerStats() PeerStats {
	return PeerStats{
		OwnerSelf: p.ownerSelf.Load(),
		Hit:       p.hit.Load(),
		Error:     p.errs.Load(),
		Bad:       p.bad.Load(),
		Open:      p.open.Load(),
		Dead:      p.dead.Load(),
		SuccHit:   p.succHit.Load(),
	}
}

func (p *Peer) Get(key string) (any, bool) { return p.inner.Get(key) }

func (p *Peer) Stats() plancache.Stats { return p.inner.Stats() }

func (p *Peer) Snapshot() []plancache.Entry { return p.inner.Snapshot() }

func (p *Peer) Remove(key string) bool { return p.inner.Remove(key) }

func (p *Peer) Purge() int { return p.inner.Purge() }

// Do implements Backend. Owned keys (and keys without a FillSpec) go
// straight to the local single-flight; for the rest the owner is asked
// first, with every failure mode falling back to local compute.
func (p *Peer) Do(ctx context.Context, key string, spec *FillSpec, fn Fill) (any, bool, error) {
	owner := p.ring.Owner(key)
	if owner == p.self {
		p.ownerSelf.Add(1)
		return p.inner.Do(ctx, key, spec, fn)
	}
	if spec == nil {
		// Local-only keys (simulations, sweeps, traces) never cross the
		// network even when another member nominally owns them.
		return p.inner.Do(ctx, key, nil, fn)
	}
	// A non-owned key may still be stored here (warm restore, a received
	// replica, an earlier ring configuration): serve it without a
	// round-trip.
	if v, ok := p.inner.Get(key); ok {
		return v, true, nil
	}
	if p.opts.Health.Alive(owner) {
		if v, ok, err := p.fill(ctx, key, owner, spec); ok || err != nil {
			return v, ok, err
		}
	} else {
		// Health probes already know the owner is down: skip the
		// round-trip (and the breaker round-trip) entirely.
		p.dead.Add(1)
	}
	// The owner is dead or its fill failed; its ring successor may hold the
	// replica the owner pushed before dying — a cached-only ask, so a miss
	// there never costs a duplicate planner run.
	if v, ok := p.lookupSuccessor(ctx, key, owner, spec); ok {
		return v, true, nil
	}
	// The caller may have gone away while the fill failed; don't burn a
	// planner run for a dead request.
	if ctx.Err() != nil {
		return nil, false, ctx.Err()
	}
	return p.inner.Do(ctx, key, nil, fn)
}

// lookupSuccessor asks key's ring successor for an already-cached replica.
// Strictly best-effort: any miss, transport failure or decode failure
// reports ok=false and the caller computes locally. Successor lookups are
// cached-only on the remote side, so they are deliberately outside the
// breaker: a miss is not a member failure.
func (p *Peer) lookupSuccessor(ctx context.Context, key, owner string, spec *FillSpec) (any, bool) {
	if p.opts.Lookup == nil {
		return nil, false
	}
	succ, ok := p.ring.Successor(key)
	if !ok || succ == p.self || succ == owner || !p.opts.Health.Alive(succ) {
		return nil, false
	}
	ctx, span := obs.StartSpan(ctx, "peer_successor_lookup")
	span.SetAttr("key", key)
	span.SetAttr("successor", succ)
	defer span.End()
	body, err := p.opts.Lookup(ctx, succ, spec.Request)
	if err != nil {
		span.SetAttr("outcome", "miss")
		span.SetAttr("error", err.Error())
		return nil, false
	}
	v, err := spec.Decode(body)
	if err != nil {
		p.bad.Add(1)
		span.SetAttr("outcome", "bad")
		span.SetAttr("error", err.Error())
		return nil, false
	}
	p.succHit.Add(1)
	span.SetAttr("outcome", "hit")
	span.SetAttr("bytes", len(body))
	return v, true
}

// fill attempts one peer round-trip. ok reports a decoded value; a false
// ok with nil err means "fall back to local compute".
func (p *Peer) fill(ctx context.Context, key, owner string, spec *FillSpec) (val any, ok bool, err error) {
	ctx, span := obs.StartSpan(ctx, "peer_fill")
	span.SetAttr("key", key)
	span.SetAttr("owner", owner)
	outcome := "error"
	defer func() {
		span.SetAttr("outcome", outcome)
		span.End()
	}()

	br := p.breakerFor(owner)
	if !br.Allow() {
		p.open.Add(1)
		outcome = "open"
		return nil, false, nil
	}
	if ferr := faultinject.Hit("cluster.peer"); ferr != nil {
		br.Failure()
		p.errs.Add(1)
		return nil, false, nil
	}
	body, terr := p.transport.Fill(ctx, owner, spec.Request)
	if terr != nil {
		br.Failure()
		p.errs.Add(1)
		span.SetAttr("error", terr.Error())
		return nil, false, nil
	}
	br.Success()
	span.SetAttr("bytes", len(body))
	v, derr := spec.Decode(body)
	if derr != nil {
		// The owner answered but with a plan this build would not have
		// produced (version skew) or an unparsable body. The member is
		// healthy — don't open its breaker — but its answer is unusable.
		p.bad.Add(1)
		outcome = "bad"
		span.SetAttr("error", derr.Error())
		return nil, false, nil
	}
	p.hit.Add(1)
	outcome = "hit"
	return v, true, nil
}

func (p *Peer) breakerFor(owner string) *breaker.Breaker {
	p.mu.Lock()
	defer p.mu.Unlock()
	br, ok := p.breakers[owner]
	if !ok {
		br = breaker.New(p.opts.BreakerThreshold, p.opts.BreakerCooldown)
		p.breakers[owner] = br
	}
	return br
}
