package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"scratchmem/internal/faultinject"
	"scratchmem/internal/plancache"
)

const memberC = "http://c:1"

func threeRing(t *testing.T) *Ring {
	t.Helper()
	r, err := NewRing([]string{memberA, memberB, memberC}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// keyOwnedWithSuccessor probes keys until one has the wanted (owner,
// successor) pair.
func keyOwnedWithSuccessor(t *testing.T, r *Ring, owner, succ string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("plan:key-%d", i)
		if r.Owner(k) != owner {
			continue
		}
		if s, ok := r.Successor(k); ok && s == succ {
			return k
		}
	}
	t.Fatalf("no probed key owned by %s with successor %s", owner, succ)
	return ""
}

// TestRingSuccessorIsPostFailureOwner pins the property replication relies
// on: the successor of a key is exactly the member that would own it if the
// owner left the ring, so a replica pushed there is already in the right
// place when the fleet needs it.
func TestRingSuccessorIsPostFailureOwner(t *testing.T) {
	full := threeRing(t)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("plan:prop-%d", i)
		owner := full.Owner(key)
		succ, ok := full.Successor(key)
		if !ok {
			t.Fatalf("no successor for %s on a 3-member ring", key)
		}
		if succ == owner {
			t.Fatalf("successor of %s equals its owner %s", key, owner)
		}
		var survivors []string
		for _, m := range full.Members() {
			if m != owner {
				survivors = append(survivors, m)
			}
		}
		reduced, err := NewRing(survivors, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := reduced.Owner(key); got != succ {
			t.Fatalf("key %s: successor %s but post-failure owner %s", key, succ, got)
		}
	}
}

func TestRingSuccessorSingleMember(t *testing.T) {
	r, err := NewRing([]string{memberA}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if succ, ok := r.Successor("plan:x"); ok {
		t.Fatalf("single-member ring produced successor %s", succ)
	}
}

// failingProbe fails for the members in its set and succeeds elsewhere.
type failingProbe struct {
	mu   sync.Mutex
	down map[string]bool
}

func (f *failingProbe) set(member string, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down == nil {
		f.down = make(map[string]bool)
	}
	f.down[member] = down
}

func (f *failingProbe) probe(ctx context.Context, baseURL string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[baseURL] {
		return errors.New("connection refused")
	}
	return nil
}

func TestHealthMarksDeadAfterConsecutiveFailures(t *testing.T) {
	fp := &failingProbe{}
	fp.set(memberB, true)
	h := NewHealth(twoRing(t), memberA, fp.probe, HealthOptions{DeadAfter: 2})

	// Fresh trackers are optimistic: everyone starts alive.
	if !h.Alive(memberB) {
		t.Fatal("member dead before any probe")
	}
	h.ProbeNow(context.Background())
	if !h.Alive(memberB) {
		t.Fatal("one failure below DeadAfter already marked the member dead")
	}
	h.ProbeNow(context.Background())
	if h.Alive(memberB) {
		t.Fatal("member alive after DeadAfter consecutive failures")
	}
	view := h.View()
	if len(view) != 1 || view[0].Member != memberB || view[0].Alive ||
		view[0].ConsecutiveFailures != 2 || view[0].LastError == "" {
		t.Fatalf("view = %+v", view)
	}
	// One success heals immediately.
	fp.set(memberB, false)
	h.ProbeNow(context.Background())
	if !h.Alive(memberB) {
		t.Fatal("member still dead after a successful probe")
	}
	if v := h.View(); v[0].ConsecutiveFailures != 0 || v[0].LastError != "" {
		t.Fatalf("healed view = %+v", v[0])
	}
}

func TestHealthNilAndUntracked(t *testing.T) {
	var h *Health
	if !h.Alive(memberB) {
		t.Fatal("nil tracker retracted liveness")
	}
	if h.View() != nil {
		t.Fatal("nil tracker produced a view")
	}
	h.Stop() // must not panic
	h.ProbeNow(context.Background())

	real := NewHealth(twoRing(t), memberA, (&failingProbe{}).probe, HealthOptions{})
	if !real.Alive(memberA) {
		t.Fatal("self (untracked) not alive")
	}
	if !real.Alive("http://stranger:1") {
		t.Fatal("untracked member not alive")
	}
}

func TestHealthLoopAndStop(t *testing.T) {
	var mu sync.Mutex
	probes := 0
	h := NewHealth(twoRing(t), memberA, func(context.Context, string) error {
		mu.Lock()
		probes++
		mu.Unlock()
		return nil
	}, HealthOptions{Interval: time.Millisecond})
	h.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := probes
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("probe loop ran %d times, want >= 3", n)
		}
		time.Sleep(time.Millisecond)
	}
	h.Stop()
	h.Stop() // idempotent
}

func TestHealthFaultInjection(t *testing.T) {
	faultinject.Enable(1, faultinject.Fault{Site: "cluster.health", Kind: faultinject.KindError, P: 1})
	defer faultinject.Disable()

	probed := false
	h := NewHealth(twoRing(t), memberA, func(context.Context, string) error {
		probed = true
		return nil
	}, HealthOptions{DeadAfter: 1})
	h.ProbeNow(context.Background())
	if probed {
		t.Fatal("injected fault did not stop the probe call")
	}
	if h.Alive(memberB) {
		t.Fatal("member alive despite injected probe failures")
	}
}

// recordingPush collects replication pushes.
type recordingPush struct {
	mu    sync.Mutex
	sends []string // successor base URLs, in send order
	err   error
}

func (r *recordingPush) push(ctx context.Context, baseURL string, payload any) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	r.sends = append(r.sends, baseURL)
	return nil
}

func (r *recordingPush) got() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.sends...)
}

func flushReplicator(t *testing.T, r *Replicator) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatorPushesToSuccessor(t *testing.T) {
	ring := twoRing(t)
	rp := &recordingPush{}
	r := NewReplicator(ring, memberA, rp.push, nil, ReplicatorOptions{})
	r.Start()
	defer r.Stop()

	key := keyOwnedBy(t, ring, memberA)
	r.Enqueue(context.Background(), key, "payload")
	flushReplicator(t, r)
	if got := rp.got(); len(got) != 1 || got[0] != memberB {
		t.Fatalf("pushes = %v, want [%s]", got, memberB)
	}
	if st := r.Stats(); st.Enqueued != 1 || st.Sent != 1 || st.Errors+st.Dropped+st.Skipped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReplicatorSkipsSelfAndSingleMember(t *testing.T) {
	// Two-member ring, self = A: a key OWNED by B has successor A, which is
	// us — nothing to push.
	ring := twoRing(t)
	rp := &recordingPush{}
	r := NewReplicator(ring, memberA, rp.push, nil, ReplicatorOptions{})
	r.Enqueue(context.Background(), keyOwnedBy(t, ring, memberB), "payload")
	if st := r.Stats(); st.Skipped != 1 || st.Enqueued != 0 {
		t.Fatalf("stats = %+v", st)
	}

	single, err := NewRing([]string{memberA}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewReplicator(single, memberA, rp.push, nil, ReplicatorOptions{})
	r2.Enqueue(context.Background(), "plan:x", "payload")
	if st := r2.Stats(); st.Skipped != 1 {
		t.Fatalf("single-member stats = %+v", st)
	}
	if len(rp.got()) != 0 {
		t.Fatal("skipped payloads were pushed")
	}
}

func TestReplicatorSkipsDeadSuccessor(t *testing.T) {
	ring := twoRing(t)
	fp := &failingProbe{}
	fp.set(memberB, true)
	h := NewHealth(ring, memberA, fp.probe, HealthOptions{DeadAfter: 1})
	h.ProbeNow(context.Background())

	rp := &recordingPush{}
	r := NewReplicator(ring, memberA, rp.push, h, ReplicatorOptions{})
	r.Enqueue(context.Background(), keyOwnedBy(t, ring, memberA), "payload")
	if st := r.Stats(); st.Skipped != 1 || st.Enqueued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReplicatorDropOldestBackpressure(t *testing.T) {
	ring := twoRing(t)
	rp := &recordingPush{}
	// Not started: the queue fills without draining.
	r := NewReplicator(ring, memberA, rp.push, nil, ReplicatorOptions{QueueDepth: 2})
	key := keyOwnedBy(t, ring, memberA)
	r.Enqueue(context.Background(), key, "oldest")
	r.Enqueue(context.Background(), key, "middle")
	r.Enqueue(context.Background(), key, "newest")
	if st := r.Stats(); st.Dropped != 1 || st.Queued != 2 || st.Enqueued != 3 {
		t.Fatalf("stats = %+v", st)
	}
	r.Start()
	defer r.Stop()
	flushReplicator(t, r)
	if st := r.Stats(); st.Sent != 2 {
		t.Fatalf("stats after drain = %+v", st)
	}
}

func TestReplicatorFaultInjection(t *testing.T) {
	faultinject.Enable(1, faultinject.Fault{Site: "cluster.replicate", Kind: faultinject.KindError, P: 1})
	defer faultinject.Disable()

	ring := twoRing(t)
	rp := &recordingPush{}
	r := NewReplicator(ring, memberA, rp.push, nil, ReplicatorOptions{})
	r.Start()
	defer r.Stop()
	r.Enqueue(context.Background(), keyOwnedBy(t, ring, memberA), "payload")
	flushReplicator(t, r)
	if st := r.Stats(); st.Errors != 1 || st.Sent != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(rp.got()) != 0 {
		t.Fatal("injected fault did not stop the push")
	}
}

func TestPeerSkipsDeadOwner(t *testing.T) {
	ring := twoRing(t)
	fp := &failingProbe{}
	fp.set(memberB, true)
	h := NewHealth(ring, memberA, fp.probe, HealthOptions{DeadAfter: 1})
	h.ProbeNow(context.Background())

	tr := &fakeTransport{body: []byte("never")}
	c := plancache.New(16)
	p := NewPeer(NewLocal(c), ring, memberA, tr, PeerOptions{Health: h})
	key := keyOwnedBy(t, ring, memberB)

	spec := &FillSpec{Request: "req", Decode: decodeString}
	v, shared, err := p.Do(context.Background(), key, spec, func(context.Context) (any, error) {
		return "local", nil
	})
	if err != nil || shared || v != "local" {
		t.Fatalf("Do = %v, %v, %v", v, shared, err)
	}
	if tr.calls.Load() != 0 {
		t.Fatal("dead owner was still asked")
	}
	if st := p.PeerStats(); st.Dead != 1 || st.Error != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPeerSuccessorLookupRecoversReplica(t *testing.T) {
	ring := threeRing(t)
	key := keyOwnedWithSuccessor(t, ring, memberB, memberC)
	fp := &failingProbe{}
	fp.set(memberB, true)
	h := NewHealth(ring, memberA, fp.probe, HealthOptions{DeadAfter: 1})
	h.ProbeNow(context.Background())

	var lookups []string
	lookup := func(ctx context.Context, baseURL string, request any) ([]byte, error) {
		lookups = append(lookups, baseURL)
		return []byte("replica"), nil
	}
	tr := &fakeTransport{body: []byte("never")}
	p := NewPeer(NewLocal(plancache.New(16)), ring, memberA, tr, PeerOptions{Health: h, Lookup: lookup})

	spec := &FillSpec{Request: "req", Decode: decodeString}
	v, shared, err := p.Do(context.Background(), key, spec, func(context.Context) (any, error) {
		t.Fatal("planner ran despite a successor replica")
		return nil, nil
	})
	if err != nil || !shared || v != "replica" {
		t.Fatalf("Do = %v, %v, %v", v, shared, err)
	}
	if len(lookups) != 1 || lookups[0] != memberC {
		t.Fatalf("lookups = %v, want [%s]", lookups, memberC)
	}
	if tr.calls.Load() != 0 {
		t.Fatal("dead owner was still asked")
	}
	if st := p.PeerStats(); st.SuccHit != 1 || st.Dead != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPeerSuccessorMissFallsBackToLocal(t *testing.T) {
	ring := threeRing(t)
	key := keyOwnedWithSuccessor(t, ring, memberB, memberC)
	tr := &fakeTransport{err: errors.New("owner down")}
	lookup := func(context.Context, string, any) ([]byte, error) {
		return nil, ErrNoReplica
	}
	p := NewPeer(NewLocal(plancache.New(16)), ring, memberA, tr, PeerOptions{Lookup: lookup})

	spec := &FillSpec{Request: "req", Decode: decodeString}
	v, shared, err := p.Do(context.Background(), key, spec, func(context.Context) (any, error) {
		return "local", nil
	})
	if err != nil || shared || v != "local" {
		t.Fatalf("Do = %v, %v, %v", v, shared, err)
	}
	if st := p.PeerStats(); st.SuccHit != 0 || st.Error != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBackendRemoveAndPurgeReachAllLayers(t *testing.T) {
	tr := &fakeTransport{body: []byte("from-owner")}
	p, c := newPeerUnderTest(t, tr, PeerOptions{})
	hot := plancache.New(8)
	l := NewLayered(hot, p, p.Remote)
	remote := keyOwnedBy(t, p.Ring(), memberB)
	owned := keyOwnedBy(t, p.Ring(), memberA)

	spec := &FillSpec{Request: "req", Decode: decodeString}
	if _, _, err := l.Do(context.Background(), remote, spec, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Do(context.Background(), owned, spec, func(context.Context) (any, error) {
		return "local", nil
	}); err != nil {
		t.Fatal(err)
	}

	// Remove the hot-cached remote key: Remove reports false (the
	// authoritative layer never stored it) but the hot copy must be gone.
	if l.Remove(remote) {
		t.Error("Remove reported an authoritative entry for a hot-only key")
	}
	if _, ok := l.Get(remote); ok {
		t.Error("hot copy survived Remove")
	}
	if !l.Remove(owned) {
		t.Error("Remove missed the authoritative entry")
	}
	if _, ok := c.Get(owned); ok {
		t.Error("authoritative copy survived Remove")
	}

	// Refill and purge everything.
	if _, _, err := l.Do(context.Background(), remote, spec, nil); err != nil {
		t.Fatal(err)
	}
	c.Put(owned, "back")
	if n := l.Purge(); n != 1 {
		t.Errorf("Purge dropped %d authoritative entries, want 1", n)
	}
	if _, ok := l.Get(remote); ok {
		t.Error("hot copy survived Purge")
	}
	if _, ok := l.Get(owned); ok {
		t.Error("authoritative copy survived Purge")
	}
}
