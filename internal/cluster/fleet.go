package cluster

import (
	"context"
	"errors"
)

// ErrNoReplica is what a LookupFunc returns when the asked member does not
// hold a cached copy of the key (a cached-only miss). It is an expected
// outcome — the successor simply had not received the replica yet — so the
// caller falls through to local compute without counting a member failure.
var ErrNoReplica = errors.New("cluster: member holds no replica")

// LookupFunc asks a member for an already-cached copy of the value for
// request, never triggering a compute on the member (POST
// /v1/peer/fill?cached=only through the client's transport). A miss is
// ErrNoReplica.
type LookupFunc func(ctx context.Context, baseURL string, request any) ([]byte, error)

// InvalidateFunc removes key from a member's caches (DELETE /v1/cache/{key}
// through the client's transport). key == "" purges the member's caches
// entirely (POST /v1/cache/purge).
type InvalidateFunc func(ctx context.Context, baseURL, key string) error

// StatusFunc fetches a member's own fleet view (GET /v1/cluster/status
// through the client's transport) as a raw JSON body — the fan-out
// primitive behind GET /v1/cluster/overview.
type StatusFunc func(ctx context.Context, baseURL string) ([]byte, error)

// Fleet bundles the cluster control plane — everything beyond the data-path
// Backend composition: liveness, replication, and the transport for
// fan-out invalidation. The server holds one (nil when standalone) and
// nil-guards every use, so single-node behavior is untouched.
type Fleet struct {
	// Ring is the member ring (shared with the Peer backend).
	Ring *Ring
	// Self is this process's own base URL.
	Self string
	// Health tracks peer liveness; may be nil (probes disabled).
	Health *Health
	// Repl pushes freshly computed owned plans to ring successors; may be
	// nil (replication disabled).
	Repl *Replicator
	// Invalidate is the transport for fan-out invalidation; may be nil
	// (invalidation then applies locally only).
	Invalidate InvalidateFunc
	// Status is the transport for the overview fan-out; may be nil (the
	// overview then reports peers as unreachable, never errors).
	Status StatusFunc
}

// Stop shuts down the fleet's background loops (probes, replication).
func (f *Fleet) Stop() {
	if f == nil {
		return
	}
	f.Health.Stop()
	f.Repl.Stop()
}

// LiveMembers returns the ring members (excluding self) currently believed
// alive — the fan-out set for invalidation.
func (f *Fleet) LiveMembers() []string {
	if f == nil {
		return nil
	}
	var out []string
	for _, m := range f.Ring.Members() {
		if m == f.Self {
			continue
		}
		if f.Health.Alive(m) {
			out = append(out, m)
		}
	}
	return out
}
