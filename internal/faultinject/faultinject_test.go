package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNoOp(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() after Disable()")
	}
	if err := Hit("any.site"); err != nil {
		t.Fatalf("Hit on disabled registry: %v", err)
	}
	if len(Stats()) != 0 {
		t.Error("stats recorded while disabled")
	}
}

func TestErrorFaultFiresDeterministically(t *testing.T) {
	defer Disable()
	Enable(1, Fault{Site: "s", Kind: KindError, P: 0.5})
	var first []bool
	for i := 0; i < 64; i++ {
		first = append(first, Hit("s") != nil)
	}
	Enable(1, Fault{Site: "s", Kind: KindError, P: 0.5})
	for i := 0; i < 64; i++ {
		if got := Hit("s") != nil; got != first[i] {
			t.Fatalf("hit %d: replay diverged (got %v, want %v)", i, got, first[i])
		}
	}
	fired := 0
	for _, f := range first {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == 64 {
		t.Errorf("p=0.5 fired %d/64 times", fired)
	}
}

func TestInjectedErrorClassifies(t *testing.T) {
	defer Disable()
	Enable(7, Fault{Site: "s", Kind: KindError, P: 1})
	err := Hit("s")
	if !IsInjected(err) || !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error not classified: %v", err)
	}
	if IsInjected(errors.New("real failure")) {
		t.Error("ordinary error classified as injected")
	}
	st := Stats()["s"]
	if st.Hits != 1 || st.Injected != 1 {
		t.Errorf("stats = %+v, want 1/1", st)
	}
}

func TestUnregisteredSitePasses(t *testing.T) {
	defer Disable()
	Enable(7, Fault{Site: "s", Kind: KindError, P: 1})
	if err := Hit("other.site"); err != nil {
		t.Fatalf("unregistered site injected: %v", err)
	}
}

func TestPanicFault(t *testing.T) {
	defer Disable()
	Enable(7, Fault{Site: "p", Kind: KindPanic, P: 1})
	defer func() {
		rec := recover()
		pv, ok := rec.(*PanicValue)
		if !ok || pv.Site != "p" {
			t.Errorf("recovered %v, want *PanicValue{Site: p}", rec)
		}
	}()
	Hit("p")
	t.Fatal("panic fault did not panic")
}

func TestLatencyFaultSleepsAndComposes(t *testing.T) {
	defer Disable()
	Enable(7,
		Fault{Site: "l", Kind: KindLatency, P: 1, Delay: 10 * time.Millisecond},
		Fault{Site: "l", Kind: KindError, P: 1})
	start := time.Now()
	err := Hit("l")
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("latency fault slept %v, want >= 10ms", d)
	}
	if !IsInjected(err) {
		t.Errorf("latency did not compose with the error fault: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	seed, faults, err := ParseSpec("seed=42; core.layer=error:0.1 ;server.plan=latency:0.5:5ms;plancache.flight=panic:1")
	if err != nil {
		t.Fatal(err)
	}
	if seed != 42 {
		t.Errorf("seed = %d", seed)
	}
	want := []Fault{
		{Site: "core.layer", Kind: KindError, P: 0.1},
		{Site: "server.plan", Kind: KindLatency, P: 0.5, Delay: 5 * time.Millisecond},
		{Site: "plancache.flight", Kind: KindPanic, P: 1},
	}
	if len(faults) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(faults), len(want))
	}
	for i := range want {
		if faults[i] != want[i] {
			t.Errorf("fault %d = %+v, want %+v", i, faults[i], want[i])
		}
	}

	for _, bad := range []string{
		"nonsense",
		"s=weird:0.5",
		"s=error:2",
		"s=error:x",
		"s=latency:0.5",      // missing delay
		"s=error:0.5:5ms",    // delay on a non-latency fault
		"s=latency:0.5:-5ms", // negative delay
		"seed=notanumber",
	} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}

	// Empty specs configure nothing.
	if err := EnableSpec("  "); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Error("empty spec enabled the registry")
	}
}

func BenchmarkHitDisabled(b *testing.B) {
	Disable()
	for i := 0; i < b.N; i++ {
		if err := Hit("core.layer"); err != nil {
			b.Fatal(err)
		}
	}
}
