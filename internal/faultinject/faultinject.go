// Package faultinject is a deterministic, seeded fault-injection registry
// for chaos testing the serving pipeline. Production code marks named
// sites with Hit("site"); a disabled registry answers in a single atomic
// load, so the hooks cost nothing in normal operation. When enabled (the
// smm-serve -faults flag, the SMM_FAULTS environment variable, or Enable
// in tests), each site fires its configured faults with a per-site
// probability drawn from one seeded stream, so a chaos run replays
// identically for the same seed and request order.
//
// Three fault kinds exist:
//
//   - error   — Hit returns an error wrapping ErrInjected, so callers (and
//     the HTTP server) can classify it as a transient internal fault
//     (503, retryable) rather than a real failure.
//   - latency — Hit sleeps for the configured delay, then proceeds.
//   - panic   — Hit panics with a *PanicValue, exercising recover paths,
//     semaphore-release defers and the server's circuit breaker.
//
// Registered sites (the string is the contract; keep this list in sync):
//
//	server.plan       before every planner execution  (internal/server)
//	server.simulate   before every plan timing        (internal/server)
//	plancache.flight  inside every single-flight computation (internal/plancache)
//	core.layer        per planned layer               (internal/core)
//	dram.access       per replayed DMA event          (internal/dram)
//	cluster.peer      before every peer cache-fill round-trip (internal/cluster)
//	cluster.snapshot  before every cache-snapshot stream (internal/server)
//	cluster.health    before every liveness probe     (internal/cluster)
//	cluster.replicate before every successor replica push (internal/cluster)
//	cluster.overview  before every overview status fan-out fetch (internal/server)
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks every error produced by an "error" fault. Match with
// errors.Is; the HTTP server maps it to 503 + Retry-After (transient),
// never to a bare 500.
var ErrInjected = errors.New("faultinject: injected fault")

// IsInjected reports whether err stems from an injected error fault.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// PanicValue is what "panic" faults panic with, so recover sites and chaos
// tests can tell an injected panic from a genuine bug.
type PanicValue struct{ Site string }

func (p *PanicValue) String() string { return "faultinject: injected panic at " + p.Site }

// Kind selects what a fault does when it fires.
type Kind int

const (
	// KindError makes Hit return an ErrInjected-wrapping error.
	KindError Kind = iota
	// KindLatency makes Hit sleep for Fault.Delay.
	KindLatency
	// KindPanic makes Hit panic with a *PanicValue.
	KindPanic
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindPanic:
		return "panic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one configured behaviour at one site.
type Fault struct {
	// Site names the injection point (see the package comment).
	Site string
	// Kind selects error, latency or panic.
	Kind Kind
	// P is the per-hit firing probability in [0, 1].
	P float64
	// Delay is the added latency for KindLatency faults.
	Delay time.Duration
}

// SiteStats counts one site's traffic.
type SiteStats struct {
	// Hits counts how many times the site was reached while enabled.
	Hits int64
	// Injected counts how many hits actually fired a fault.
	Injected int64
}

// registry holds the fault table. One package-level instance exists; the
// enabled flag in front of it keeps the disabled path allocation- and
// lock-free.
type registry struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults map[string][]Fault
	stats  map[string]*SiteStats
}

var (
	enabled atomic.Bool
	reg     = &registry{}
	// observer is notified of every fired fault; see SetObserver.
	observer atomic.Value // holds observerFunc
)

type observerFunc func(site string, kind Kind)

// SetObserver installs fn to be called once per fired fault with the site
// and kind, outside the registry lock on the hitting goroutine (so fn may
// log). Panic faults notify before panicking. A nil fn removes the
// observer. Observers must be fast and safe for concurrent use.
func SetObserver(fn func(site string, kind Kind)) {
	if fn == nil {
		observer.Store(observerFunc(nil))
		return
	}
	observer.Store(observerFunc(fn))
}

// notify fans a fired fault out to the observer, if any.
func notify(site string, kind Kind) {
	if fn, _ := observer.Load().(observerFunc); fn != nil {
		fn(site, kind)
	}
}

// Enabled reports whether fault injection is active. It is the fast path
// every Hit takes first.
func Enabled() bool { return enabled.Load() }

// Enable installs the given faults and arms the registry. The seed fixes
// the probability stream, so identical request orders replay identically.
// Enable replaces any previous configuration.
func Enable(seed int64, faults ...Fault) {
	reg.mu.Lock()
	reg.rng = rand.New(rand.NewSource(seed))
	reg.faults = make(map[string][]Fault, len(faults))
	reg.stats = make(map[string]*SiteStats)
	for _, f := range faults {
		reg.faults[f.Site] = append(reg.faults[f.Site], f)
		if reg.stats[f.Site] == nil {
			reg.stats[f.Site] = &SiteStats{}
		}
	}
	reg.mu.Unlock()
	enabled.Store(len(faults) > 0)
}

// Disable disarms the registry; Hit returns to its zero-cost path.
func Disable() {
	enabled.Store(false)
	reg.mu.Lock()
	reg.faults = nil
	reg.stats = nil
	reg.mu.Unlock()
}

// Hit marks a fault-injection site. Disabled, it is a single atomic load.
// Enabled, it evaluates the site's faults in configured order: the first
// one whose probability fires acts — error faults return, latency faults
// sleep and continue to the next fault, panic faults panic.
func Hit(site string) error {
	if !enabled.Load() {
		return nil
	}
	return reg.hit(site)
}

func (r *registry) hit(site string) error {
	r.mu.Lock()
	fs := r.faults[site]
	if len(fs) == 0 {
		r.mu.Unlock()
		return nil
	}
	st := r.stats[site]
	st.Hits++
	var fired *Fault
	var delay time.Duration
	var delayed bool
	for i := range fs {
		if r.rng.Float64() >= fs[i].P {
			continue
		}
		st.Injected++
		if fs[i].Kind == KindLatency {
			// Latency composes with a subsequent error/panic fault.
			delay += fs[i].Delay
			delayed = true
			continue
		}
		fired = &fs[i]
		break
	}
	r.mu.Unlock()
	if delayed {
		notify(site, KindLatency)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if fired == nil {
		return nil
	}
	notify(site, fired.Kind)
	switch fired.Kind {
	case KindPanic:
		panic(&PanicValue{Site: site})
	default:
		return fmt.Errorf("%w at %s", ErrInjected, site)
	}
}

// Stats snapshots the per-site counters of the current configuration.
func Stats() map[string]SiteStats {
	out := make(map[string]SiteStats)
	reg.mu.Lock()
	for site, st := range reg.stats {
		out[site] = *st
	}
	reg.mu.Unlock()
	return out
}

// Sites lists the sites of the current configuration, sorted.
func Sites() []string {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	out := make([]string, 0, len(reg.faults))
	for s := range reg.faults {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ParseSpec parses the -faults / SMM_FAULTS specification: a semicolon-
// separated list of clauses, each either
//
//	seed=<int64>
//	<site>=<kind>:<probability>[:<delay>]
//
// e.g. "seed=42;core.layer=error:0.1;server.plan=latency:0.5:5ms;plancache.flight=panic:0.01".
// The delay is required for latency faults and rejected for the others.
// The same site may appear multiple times; clauses keep their order.
func ParseSpec(spec string) (seed int64, faults []Fault, err error) {
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		site, rest, ok := strings.Cut(clause, "=")
		if !ok {
			return 0, nil, fmt.Errorf("faultinject: clause %q is not site=kind:prob or seed=N", clause)
		}
		site = strings.TrimSpace(site)
		if site == "seed" {
			seed, err = strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return 0, nil, fmt.Errorf("faultinject: bad seed %q: %v", rest, err)
			}
			continue
		}
		parts := strings.Split(rest, ":")
		if len(parts) < 2 {
			return 0, nil, fmt.Errorf("faultinject: clause %q needs kind:probability", clause)
		}
		f := Fault{Site: site}
		switch parts[0] {
		case "error":
			f.Kind = KindError
		case "latency":
			f.Kind = KindLatency
		case "panic":
			f.Kind = KindPanic
		default:
			return 0, nil, fmt.Errorf("faultinject: unknown kind %q (want error, latency or panic)", parts[0])
		}
		f.P, err = strconv.ParseFloat(parts[1], 64)
		if err != nil || f.P < 0 || f.P > 1 {
			return 0, nil, fmt.Errorf("faultinject: bad probability %q (want [0,1])", parts[1])
		}
		switch {
		case f.Kind == KindLatency && len(parts) == 3:
			f.Delay, err = time.ParseDuration(parts[2])
			if err != nil || f.Delay < 0 {
				return 0, nil, fmt.Errorf("faultinject: bad delay %q: %v", parts[2], err)
			}
		case f.Kind == KindLatency:
			return 0, nil, fmt.Errorf("faultinject: latency fault %q needs a delay (kind:prob:duration)", clause)
		case len(parts) != 2:
			return 0, nil, fmt.Errorf("faultinject: %s fault %q takes no delay", f.Kind, clause)
		}
		faults = append(faults, f)
	}
	return seed, faults, nil
}

// EnableSpec parses spec and enables it. An empty spec is a no-op.
func EnableSpec(spec string) error {
	seed, faults, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	if len(faults) == 0 {
		return nil
	}
	Enable(seed, faults...)
	return nil
}
