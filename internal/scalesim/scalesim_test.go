package scalesim

import (
	"math"
	"testing"

	"scratchmem/internal/layer"
	"scratchmem/internal/model"
)

func cfg64() Config { return Split("sa_50_50", 64, 50, 8) }

func TestSplitArithmetic(t *testing.T) {
	c := Split("sa_25_75", 128, 25, 8)
	rest := int64(128*1024 - 4*1024)
	if c.IfmapSRAMBytes != rest*25/100 {
		t.Errorf("ifmap SRAM = %d, want %d", c.IfmapSRAMBytes, rest*25/100)
	}
	if c.IfmapSRAMBytes+c.FilterSRAMBytes != rest {
		t.Errorf("splits do not sum to GLB-4kB: %d + %d != %d",
			c.IfmapSRAMBytes, c.FilterSRAMBytes, rest)
	}
	if c.OfmapSRAMBytes != 4*1024 {
		t.Errorf("ofmap SRAM = %d, want 4kB", c.OfmapSRAMBytes)
	}
	// Double buffering halves active capacity.
	if got, want := c.IfmapActiveElems(), c.IfmapSRAMBytes/2; got != want {
		t.Errorf("active ifmap elems = %d, want %d", got, want)
	}
}

func TestPaperSplits(t *testing.T) {
	s := PaperSplits(64, 8)
	if len(s) != 3 {
		t.Fatalf("got %d splits, want 3", len(s))
	}
	names := []string{"sa_25_75", "sa_50_50", "sa_75_25"}
	for i, c := range s {
		if c.Name != names[i] {
			t.Errorf("split %d name = %q, want %q", i, c.Name, names[i])
		}
		if err := c.Validate(); err != nil {
			t.Errorf("split %s invalid: %v", c.Name, err)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Rows: 0, Cols: 16, IfmapSRAMBytes: 1, FilterSRAMBytes: 1, DataWidthBits: 8},
		{Rows: 16, Cols: 16, IfmapSRAMBytes: 0, FilterSRAMBytes: 1, DataWidthBits: 8},
		{Rows: 16, Cols: 16, IfmapSRAMBytes: 1, FilterSRAMBytes: 1, DataWidthBits: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestFoldCycles pins the OS fold timing formula on a layer small enough to
// compute by hand: 4x4x2 ifmap, 3x3 filter, 4 filters, 16x16 array.
// Stripped output 2x2 -> M=4, N=4, K=18 -> 1x1 folds, 2*16+16+18-2 = 64.
func TestFoldCycles(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 4, 4, 2, 3, 3, 4, 1, 0)
	r := Simulate(&l, cfg64())
	if r.RowFolds != 1 || r.ColFolds != 1 {
		t.Fatalf("folds = %dx%d, want 1x1", r.RowFolds, r.ColFolds)
	}
	if r.Cycles != 64 {
		t.Errorf("cycles = %d, want 64", r.Cycles)
	}
	if r.DRAMOfmap != 4*4 {
		t.Errorf("ofmap writes = %d, want 16", r.DRAMOfmap)
	}
	if want := float64(4*4) / float64(16*16); r.Utilization != want {
		t.Errorf("utilization = %v, want %v", r.Utilization, want)
	}
}

// TestEverythingFitsOnce: with generous buffers every operand element loads
// exactly once.
func TestEverythingFitsOnce(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 28, 28, 16, 3, 3, 32, 1, 0)
	c := Split("big", 1024, 50, 8)
	r := Simulate(&l, c)
	wantIf := int64(28 * 28 * 16)
	if r.DRAMIfmap != wantIf {
		t.Errorf("ifmap reads = %d, want %d", r.DRAMIfmap, wantIf)
	}
	if r.DRAMFilter != l.FilterElems() {
		t.Errorf("filter reads = %d, want %d", r.DRAMFilter, l.FilterElems())
	}
	g := strippedGeometry(&l)
	if r.DRAMOfmap != g.m*g.n {
		t.Errorf("ofmap writes = %d, want %d", r.DRAMOfmap, g.m*g.n)
	}
}

// TestUsedIfmapExcludesStrideRemainder: a stride that does not divide the
// ifmap leaves trailing rows/columns no window touches; they are not
// charged.
func TestUsedIfmapExcludesStrideRemainder(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 18, 18, 2, 5, 5, 4, 2, 0)
	c := Split("big", 1024, 50, 8)
	r := Simulate(&l, c)
	// OHs = (18-5)/2+1 = 7; used span = 6*2+5 = 17 of 18.
	if want := int64(17 * 17 * 2); r.DRAMIfmap != want {
		t.Errorf("ifmap reads = %d, want %d (unused remainder charged?)", r.DRAMIfmap, want)
	}
}

// TestFilterPartialResidency pins the pass model: spill re-streams once per
// extra row-fold pass, so traffic decreases linearly as the filter buffer
// grows and collapses to one load once everything fits.
func TestFilterPartialResidency(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 14, 14, 256, 3, 3, 256, 1, 0)
	g := strippedGeometry(&l)
	sf := g.k * g.n
	var prev int64 = math.MaxInt64
	for _, kb := range []int{16, 64, 256, 1024} {
		c := Split("sa_25_75", kb, 25, 8)
		r := Simulate(&l, c)
		want := passTraffic(sf, c.FilterActiveElems(), r.RowFolds)
		if r.DRAMFilter != want {
			t.Errorf("@%dkB: filter reads = %d, want %d", kb, r.DRAMFilter, want)
		}
		if r.DRAMFilter > prev {
			t.Errorf("@%dkB: filter traffic grew as buffer grew", kb)
		}
		prev = r.DRAMFilter
	}
	// Huge buffer: exactly one load.
	c := Config{Name: "huge", Rows: 16, Cols: 16, IfmapSRAMBytes: 8 << 20,
		FilterSRAMBytes: 8 << 20, OfmapSRAMBytes: 4096, DataWidthBits: 8}
	if r := Simulate(&l, c); r.DRAMFilter != l.FilterElems() {
		t.Errorf("huge buffer filter reads = %d, want %d", r.DRAMFilter, l.FilterElems())
	}
}

// TestIfmapAmplification: an under-provisioned ifmap buffer re-streams the
// spill once per column-fold pass.
func TestIfmapAmplification(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 56, 56, 64, 3, 3, 128, 1, 0)
	c := Split("sa_25_75", 64, 25, 8)
	r := Simulate(&l, c)
	si := usedIfmapElems(&l, strippedGeometry(&l))
	if r.DRAMIfmap <= si {
		t.Errorf("ifmap reads = %d, want amplification beyond %d", r.DRAMIfmap, si)
	}
	if want := passTraffic(si, c.IfmapActiveElems(), r.ColFolds); r.DRAMIfmap != want {
		t.Errorf("ifmap reads = %d, want %d", r.DRAMIfmap, want)
	}
}

// TestDepthwiseMinimalTraffic: depth-wise layers move each element once
// regardless of buffer size.
func TestDepthwiseMinimalTraffic(t *testing.T) {
	l := layer.MustNew("dw", layer.DepthwiseConv, 56, 56, 128, 3, 3, 1, 1, 0)
	r := Simulate(&l, cfg64())
	if r.DRAMIfmap != 56*56*128 {
		t.Errorf("ifmap reads = %d, want %d", r.DRAMIfmap, 56*56*128)
	}
	if r.DRAMFilter != l.FilterElems() {
		t.Errorf("filter reads = %d, want %d", r.DRAMFilter, l.FilterElems())
	}
	// Channel-parallel mapping: col folds = ceil(CI/16).
	if r.ColFolds != 8 {
		t.Errorf("col folds = %d, want 8", r.ColFolds)
	}
}

// TestTraceMatchesAnalyticWhenFitting: with buffers that hold both operands
// the element-exact trace and the analytical pass model agree exactly —
// every used element loads once.
func TestTraceMatchesAnalyticWhenFitting(t *testing.T) {
	layers := []layer.Layer{
		layer.MustNew("t1", layer.Conv, 12, 12, 4, 3, 3, 8, 1, 0),
		layer.MustNew("t2", layer.Conv, 16, 10, 8, 3, 3, 40, 1, 0),
		layer.MustNew("t3", layer.Conv, 18, 18, 2, 5, 5, 20, 2, 0),
		layer.MustNew("t4", layer.PointwiseConv, 9, 9, 16, 1, 1, 24, 1, 0),
		layer.MustNew("t5", layer.Conv, 40, 40, 3, 3, 3, 8, 1, 0), // OWs > array rows
	}
	c := Split("roomy", 256, 50, 8)
	for _, l := range layers {
		a := Simulate(&l, c)
		tr, err := Trace(&l, c)
		if err != nil {
			t.Fatal(err)
		}
		if a.DRAMIfmap != tr.DRAMIfmap || a.DRAMFilter != tr.DRAMFilter ||
			a.DRAMOfmap != tr.DRAMOfmap || a.Cycles != tr.Cycles {
			t.Errorf("%s: analytic %+v != trace %+v", l.Name, a, tr)
		}
	}
}

// TestTraceAmplifiesLikeAnalytic: in under-provisioned regimes both models
// amplify traffic beyond the once-per-element minimum, both shrink as the
// buffer grows, and they stay within a bounded factor of each other.
func TestTraceAmplifiesLikeAnalytic(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 20, 20, 8, 3, 3, 64, 1, 0)
	si := usedIfmapElems(&l, strippedGeometry(&l))
	var prevTr, prevAn int64 = math.MaxInt64, math.MaxInt64
	for _, bytes := range []int64{512, 1 << 10, 4 << 10, 16 << 10, 256 << 10} {
		c := Config{Name: "t", Rows: 16, Cols: 16, IfmapSRAMBytes: bytes,
			FilterSRAMBytes: bytes, OfmapSRAMBytes: 4096, DataWidthBits: 8, DoubleBuffered: true}
		a := Simulate(&l, c)
		tr, err := Trace(&l, c)
		if err != nil {
			t.Fatal(err)
		}
		if tr.DRAMIfmap < si {
			t.Errorf("%d B: trace ifmap %d below minimum %d", bytes, tr.DRAMIfmap, si)
		}
		if a.DRAMIfmap+a.DRAMFilter > prevAn || tr.DRAMIfmap+tr.DRAMFilter > prevTr {
			t.Errorf("%d B: traffic grew with buffer size", bytes)
		}
		prevAn, prevTr = a.DRAMIfmap+a.DRAMFilter, tr.DRAMIfmap+tr.DRAMFilter
		ratio := float64(a.DRAMTotal()) / float64(tr.DRAMTotal())
		if ratio < 0.25 || ratio > 4.0 {
			t.Errorf("%d B: analytic %d vs trace %d diverge (ratio %.2f)",
				bytes, a.DRAMTotal(), tr.DRAMTotal(), ratio)
		}
	}
	// A buffer smaller than one fold's working set must show real
	// amplification in both models (512 B double-buffered holds 256
	// elements, below the ~432-element sliding window of this layer).
	c := Config{Name: "t", Rows: 16, Cols: 16, IfmapSRAMBytes: 512,
		FilterSRAMBytes: 512, OfmapSRAMBytes: 4096, DataWidthBits: 8, DoubleBuffered: true}
	a := Simulate(&l, c)
	tr, _ := Trace(&l, c)
	if a.DRAMIfmap <= si || tr.DRAMIfmap <= si {
		t.Errorf("tiny buffer: no amplification (analytic %d, trace %d, min %d)",
			a.DRAMIfmap, tr.DRAMIfmap, si)
	}
}

func TestTraceRejectsDepthwise(t *testing.T) {
	l := layer.MustNew("dw", layer.DepthwiseConv, 8, 8, 4, 3, 3, 1, 1, 0)
	if _, err := Trace(&l, cfg64()); err == nil {
		t.Error("trace accepted a depth-wise layer")
	}
	bad := cfg64()
	bad.Rows = 0
	l2 := layer.MustNew("c", layer.Conv, 8, 8, 4, 3, 3, 4, 1, 0)
	if _, err := Trace(&l2, bad); err == nil {
		t.Error("trace accepted an invalid config")
	}
}

// TestSplitPreference reproduces the paper's §5.1 observation: filter-heavy
// models prefer sa_25_75, ifmap-heavy models prefer sa_75_25.
func TestSplitPreference(t *testing.T) {
	best := func(name string, kb int) string {
		n, err := model.Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		bestName, bestTraffic := "", int64(math.MaxInt64)
		for _, c := range PaperSplits(kb, 8) {
			r, err := SimulateNetwork(n, c)
			if err != nil {
				t.Fatal(err)
			}
			if tr := r.DRAMTotal(); tr < bestTraffic {
				bestName, bestTraffic = c.Name, tr
			}
		}
		return bestName
	}
	// Paper: GoogLeNet, MobileNet, ResNet18 benefit from a larger filter
	// share; EfficientNetB0, MnasNet, MobileNetV2 from a larger ifmap share.
	// The decisive cases must match exactly.
	for m, want := range map[string]string{
		"ResNet18":       "sa_25_75",
		"GoogLeNet":      "sa_25_75",
		"EfficientNetB0": "sa_75_25",
		"MnasNet":        "sa_75_25",
	} {
		if got := best(m, 64); got != want {
			t.Errorf("%s @64kB: best split = %s, want %s", m, got, want)
		}
	}
	// MobileNet and MobileNetV2 are near-ties in our model (within ~3%); the
	// paper's preferred split must at least be competitive with the best.
	for m, want := range map[string]string{
		"MobileNet":   "sa_25_75",
		"MobileNetV2": "sa_75_25",
	} {
		n, _ := model.Builtin(m)
		var bestTr, wantTr int64 = math.MaxInt64, 0
		for _, c := range PaperSplits(64, 8) {
			r, err := SimulateNetwork(n, c)
			if err != nil {
				t.Fatal(err)
			}
			if tr := r.DRAMTotal(); tr < bestTr {
				bestTr = tr
			}
			if c.Name == want {
				wantTr = r.DRAMTotal()
			}
		}
		if float64(wantTr) > 1.05*float64(bestTr) {
			t.Errorf("%s @64kB: paper-preferred %s traffic %d not within 5%% of best %d",
				m, want, wantTr, bestTr)
		}
	}
}

// TestBaselineCyclesBufferIndependent: the zero-stall baseline latency does
// not depend on the buffer partition (paper Figure 8 shows one baseline bar).
func TestBaselineCyclesBufferIndependent(t *testing.T) {
	n, _ := model.Builtin("ResNet18")
	var ref int64
	for i, c := range append(PaperSplits(64, 8), PaperSplits(1024, 8)...) {
		r, err := SimulateNetwork(n, c)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = r.Cycles()
			continue
		}
		if r.Cycles() != ref {
			t.Errorf("%s: cycles %d != %d", c.Name, r.Cycles(), ref)
		}
	}
}

func TestNetworkResultAggregates(t *testing.T) {
	n, _ := model.Builtin("MobileNet")
	r, err := SimulateNetwork(n, cfg64())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Layers) != len(n.Layers) {
		t.Fatalf("layer results = %d, want %d", len(r.Layers), len(n.Layers))
	}
	var cyc, dram int64
	for _, lr := range r.Layers {
		cyc += lr.Cycles
		dram += lr.DRAMTotal()
	}
	if r.Cycles() != cyc || r.DRAMTotal() != dram {
		t.Error("aggregates disagree with sums")
	}
	if r.DRAMBytes() != dram { // 8-bit
		t.Errorf("DRAMBytes = %d, want %d", r.DRAMBytes(), dram)
	}
}

func TestSimulateNetworkValidates(t *testing.T) {
	n, _ := model.Builtin("MobileNet")
	bad := cfg64()
	bad.Rows = 0
	if _, err := SimulateNetwork(n, bad); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := SimulateNetwork(&model.Network{Name: "x"}, cfg64()); err == nil {
		t.Error("empty network accepted")
	}
}
