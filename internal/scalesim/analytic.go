package scalesim

import (
	"context"

	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/progress"
	"scratchmem/internal/smmerr"
)

// foldCycles is SCALE-Sim's output-stationary fold timing: streaming the K
// reduction plus the array fill/drain skew.
func foldCycles(rows, cols int, k int64) int64 {
	return 2*int64(rows) + int64(cols) + k - 2
}

// Simulate runs the analytical baseline model for one layer.
//
// Compute: the GEMM is folded onto the RxC array; every fold costs
// 2R + C + K - 2 zero-stall cycles (the paper's baseline latency is
// buffer-independent because it assumes zero stalls).
//
// DRAM traffic follows a partial-residency pass model: each operand is
// logically swept once per fold pass of the *other* GEMM dimension (the
// ifmap once per column fold, the filters once per row fold); whatever
// fraction of the operand fits its statically assigned half-buffer stays
// pinned across passes and the remainder re-streams from DRAM. With a
// buffer that holds the whole operand this degenerates to one load; with a
// tiny buffer it approaches a full re-load per pass — the cliff the paper's
// fixed partitions fall off when the dominant data type is under-provisioned.
// Output-stationary partial sums stay in the PEs, so the ofmap writes back
// exactly once.
//
// Depth-wise layers map channels across array columns; their operands are
// disjoint per column fold, so traffic is minimal by construction.
func Simulate(l *layer.Layer, cfg Config) LayerResult {
	g := strippedGeometry(l)
	if !g.depthwise {
		// Depth-wise layers always use the channel-parallel mapping below;
		// dense layers honour the configured dataflow.
		switch cfg.Flow {
		case WeightStationary:
			return simulateWS(l, cfg, g)
		case InputStationary:
			return simulateIS(l, cfg, g)
		}
	}
	r := LayerResult{Layer: l.Name}
	r.RowFolds = ceilDiv(g.m, int64(cfg.Rows))
	r.ColFolds = ceilDiv(g.n, int64(cfg.Cols))
	r.Cycles = r.RowFolds * r.ColFolds * foldCycles(cfg.Rows, cfg.Cols, g.k)
	r.Utilization = float64(g.m*g.n) / float64(r.RowFolds*int64(cfg.Rows)*r.ColFolds*int64(cfg.Cols))
	r.DRAMOfmap = g.m * g.n

	si := usedIfmapElems(l, g)
	sf := g.k * g.n // filter footprint of the GEMM view

	if g.depthwise {
		// Column folds hold disjoint channels; every operand element is
		// needed by exactly one (row fold, column fold) pair, so each loads
		// once regardless of buffer size.
		r.DRAMIfmap = si
		r.DRAMFilter = l.FilterElems()
		return r
	}

	r.DRAMIfmap = passTraffic(si, cfg.IfmapActiveElems(), r.ColFolds)
	r.DRAMFilter = passTraffic(sf, cfg.FilterActiveElems(), r.RowFolds)
	return r
}

// passTraffic returns the DRAM traffic of an operand of `total` elements
// that is swept `passes` times with `pinned` elements of buffer capacity:
// the pinned fraction loads once, the spill re-streams on every pass.
func passTraffic(total, pinned, passes int64) int64 {
	if total <= pinned {
		return total
	}
	return total + (passes-1)*(total-pinned)
}

// usedIfmapElems returns how many ifmap elements the stripped layer
// actually reads: trailing rows/columns that no sliding window touches
// (stride remainders) are excluded, matching the element-exact trace.
func usedIfmapElems(l *layer.Layer, g gemm) int64 {
	usedRows := (g.ohs-1)*int64(l.S) + int64(l.FH)
	usedCols := (g.ows-1)*int64(l.S) + int64(l.FW)
	if max := int64(l.IH); usedRows > max {
		usedRows = max
	}
	if max := int64(l.IW); usedCols > max {
		usedCols = max
	}
	return usedRows * usedCols * int64(l.CI)
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// SimulateNetwork runs the analytical baseline over a whole network.
func SimulateNetwork(n *model.Network, cfg Config) (*NetworkResult, error) {
	return SimulateNetworkCtx(context.Background(), n, cfg, nil)
}

// SimulateNetworkCtx is SimulateNetwork with per-layer cancellation checks
// and progress events ("baseline" phase). Validation failures wrap
// smmerr.ErrBadModel; a cancellation wraps ctx.Err() and names the layer.
func SimulateNetworkCtx(ctx context.Context, n *model.Network, cfg Config, prog progress.Func) (*NetworkResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	if err := n.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	out := &NetworkResult{Config: cfg}
	out.Layers = make([]LayerResult, len(n.Layers))
	var cycles int64
	for i := range n.Layers {
		if err := ctx.Err(); err != nil {
			return nil, smmerr.Layer(i, n.Layers[i].Name, err)
		}
		out.Layers[i] = Simulate(&n.Layers[i], cfg)
		cycles += out.Layers[i].Cycles
		prog.Emit(progress.Event{Phase: "baseline", Index: i, Total: len(n.Layers), Name: n.Layers[i].Name,
			LatencyCycles: cycles})
	}
	return out, nil
}
