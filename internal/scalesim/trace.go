package scalesim

import (
	"fmt"

	"scratchmem/internal/layer"
)

// Trace replays the baseline's fold loop (row folds outer, column folds
// inner) at element granularity for a dense (non-depth-wise) layer. Each
// SRAM is modelled as an element-addressed buffer with FIFO replacement
// that never evicts the working set of the fold in flight. The trace is the
// fidelity reference for the analytical pass model: in the regime where an
// operand fits its buffer both charge exactly one load per element, and in
// under-provisioned regimes both amplify traffic (the trace via actual
// evictions, the model via its spill-per-pass approximation). SCALE-Sim
// itself is a trace simulator — this path is why the paper reports hours of
// baseline runtime against a minute for the policy estimators. Intended for
// small layers (cost is O(M*K) memory touches).
func Trace(l *layer.Layer, cfg Config) (LayerResult, error) {
	if err := cfg.Validate(); err != nil {
		return LayerResult{}, err
	}
	if l.Kind == layer.DepthwiseConv {
		return LayerResult{}, fmt.Errorf("scalesim: trace mode does not support depth-wise layers")
	}
	g := strippedGeometry(l)
	r := LayerResult{Layer: l.Name}
	r.RowFolds = ceilDiv(g.m, int64(cfg.Rows))
	r.ColFolds = ceilDiv(g.n, int64(cfg.Cols))
	r.Cycles = r.RowFolds * r.ColFolds * foldCycles(cfg.Rows, cfg.Cols, g.k)
	r.Utilization = float64(g.m*g.n) / float64(r.RowFolds*int64(cfg.Rows)*r.ColFolds*int64(cfg.Cols))
	r.DRAMOfmap = g.m * g.n

	ifmapBuf := newSRAM(cfg.IfmapActiveElems())
	filterBuf := newSRAM(cfg.FilterActiveElems())

	for rf := int64(0); rf < r.RowFolds; rf++ {
		ws := foldIfmapOrder(l, g, rf, int64(cfg.Rows))
		for cf := int64(0); cf < r.ColFolds; cf++ {
			r.DRAMIfmap += ifmapBuf.access(ws)
			r.DRAMFilter += filterBuf.access(foldFilterOrder(g, cf, int64(cfg.Cols)))
		}
	}
	return r, nil
}

// sram models one element-addressed scratchpad with FIFO replacement.
type sram struct {
	cap      int64
	resident map[int64]struct{}
	fifo     []int64
}

func newSRAM(capacity int64) *sram {
	return &sram{cap: capacity, resident: make(map[int64]struct{})}
}

// access touches every element id in ws (deduplicated, in order), fetching
// misses from DRAM, and returns the number of fetched elements. Elements of
// the working set in flight are never evicted; if the working set alone
// exceeds capacity, it streams through without residency.
func (s *sram) access(ws []int64) (fetched int64) {
	if int64(len(ws)) > s.cap {
		// Streaming: count cold misses against current residency, then drop
		// everything (the stream flushed the buffer).
		for _, id := range ws {
			if _, ok := s.resident[id]; !ok {
				fetched++
			}
		}
		s.resident = make(map[int64]struct{})
		s.fifo = s.fifo[:0]
		return fetched
	}
	inWS := make(map[int64]struct{}, len(ws))
	for _, id := range ws {
		inWS[id] = struct{}{}
	}
	for _, id := range ws {
		if _, ok := s.resident[id]; ok {
			continue
		}
		fetched++
		// Make room, never evicting the working set in flight.
		for int64(len(s.resident)) >= s.cap {
			evicted := false
			for i, old := range s.fifo {
				if _, needed := inWS[old]; !needed {
					delete(s.resident, old)
					s.fifo = append(s.fifo[:i], s.fifo[i+1:]...)
					evicted = true
					break
				}
			}
			if !evicted {
				break // everything resident is part of the working set
			}
		}
		s.resident[id] = struct{}{}
		s.fifo = append(s.fifo, id)
	}
	return fetched
}

// foldIfmapOrder returns the deduplicated, deterministic element-id order in
// which row fold rf touches the ifmap.
func foldIfmapOrder(l *layer.Layer, g gemm, rf, rows int64) []int64 {
	seen := make(map[int64]struct{})
	var order []int64
	p0 := rf * rows
	p1 := p0 + rows
	if p1 > g.m {
		p1 = g.m
	}
	iw, ci := int64(l.IW), int64(l.CI)
	for p := p0; p < p1; p++ {
		oh, ow := p/g.ows, p%g.ows
		for kh := int64(0); kh < int64(l.FH); kh++ {
			for kw := int64(0); kw < int64(l.FW); kw++ {
				h := oh*int64(l.S) + kh
				w := ow*int64(l.S) + kw
				base := (h*iw + w) * ci
				for c := int64(0); c < ci; c++ {
					id := base + c
					if _, ok := seen[id]; !ok {
						seen[id] = struct{}{}
						order = append(order, id)
					}
				}
			}
		}
	}
	return order
}

// foldFilterOrder returns the element ids of the filters column fold cf
// sweeps (each column holds one filter; ids are disjoint from ifmap ids by
// construction of separate SRAMs).
func foldFilterOrder(g gemm, cf, cols int64) []int64 {
	f0 := cf * cols
	f1 := f0 + cols
	if f1 > g.n {
		f1 = g.n
	}
	order := make([]int64, 0, (f1-f0)*g.k)
	for f := f0; f < f1; f++ {
		for k := int64(0); k < g.k; k++ {
			order = append(order, f*g.k+k)
		}
	}
	return order
}
