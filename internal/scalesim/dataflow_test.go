package scalesim

import (
	"testing"

	"scratchmem/internal/layer"
	"scratchmem/internal/model"
)

func TestDataflowParse(t *testing.T) {
	for _, d := range []Dataflow{OutputStationary, WeightStationary, InputStationary} {
		got, err := ParseDataflow(d.String())
		if err != nil || got != d {
			t.Errorf("round trip %v: got %v, err %v", d, got, err)
		}
	}
	if _, err := ParseDataflow("rs"); err == nil {
		t.Error("unknown dataflow accepted")
	}
	if s := Dataflow(9).String(); s == "" {
		t.Error("empty string for unknown dataflow")
	}
}

// TestWSMinimalFilterTraffic: weight-stationary pins every weight exactly
// once regardless of buffer sizes.
func TestWSMinimalFilterTraffic(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 14, 14, 256, 3, 3, 512, 1, 0)
	c := Split("tiny", 16, 50, 8)
	c.Flow = WeightStationary
	r := Simulate(&l, c)
	if r.DRAMFilter != l.FilterElems() {
		t.Errorf("WS filter traffic = %d, want %d", r.DRAMFilter, l.FilterElems())
	}
	// Deep reduction (K = 2304) spills partial sums heavily.
	g := strippedGeometry(&l)
	kFolds := (g.k + 15) / 16
	if want := g.m * g.n * (2*kFolds - 1); r.DRAMOfmap != want {
		t.Errorf("WS psum traffic = %d, want %d", r.DRAMOfmap, want)
	}
	if r.DRAMOfmap <= g.m*g.n {
		t.Error("WS should amplify ofmap traffic on deep reductions")
	}
}

// TestISMinimalIfmapTraffic: input-stationary streams the ifmap once.
func TestISMinimalIfmapTraffic(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 28, 28, 64, 3, 3, 128, 1, 0)
	c := Split("tiny", 16, 50, 8)
	c.Flow = InputStationary
	r := Simulate(&l, c)
	if want := usedIfmapElems(&l, strippedGeometry(&l)); r.DRAMIfmap != want {
		t.Errorf("IS ifmap traffic = %d, want %d", r.DRAMIfmap, want)
	}
}

// TestOSBestPsums: for convolutions with deep reductions the output-
// stationary mapping moves the fewest ofmap bytes — the reason the paper's
// baseline (and its own schemes) use OS.
func TestOSBestPsums(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 14, 14, 256, 3, 3, 256, 1, 1)
	for _, flow := range []Dataflow{WeightStationary, InputStationary} {
		c := Split("s", 64, 50, 8)
		c.Flow = flow
		r := Simulate(&l, c)
		cOS := Split("s", 64, 50, 8)
		os := Simulate(&l, cOS)
		if os.DRAMOfmap >= r.DRAMOfmap {
			t.Errorf("OS ofmap %d not below %v ofmap %d", os.DRAMOfmap, flow, r.DRAMOfmap)
		}
	}
}

// TestDepthwiseIgnoresDataflow: DW layers keep the channel-parallel mapping
// under every dataflow setting.
func TestDepthwiseIgnoresDataflow(t *testing.T) {
	l := layer.MustNew("dw", layer.DepthwiseConv, 28, 28, 64, 3, 3, 1, 1, 0)
	var ref LayerResult
	for i, flow := range []Dataflow{OutputStationary, WeightStationary, InputStationary} {
		c := Split("s", 64, 50, 8)
		c.Flow = flow
		r := Simulate(&l, c)
		if i == 0 {
			ref = r
			continue
		}
		if r != ref {
			t.Errorf("%v changed the depth-wise result", flow)
		}
	}
}

// TestDataflowNetworkComparison: across a whole filter-heavy network, WS
// wins on filter traffic, IS on ifmap traffic, OS on ofmap traffic.
func TestDataflowNetworkComparison(t *testing.T) {
	n, _ := model.Builtin("ResNet18")
	sums := map[Dataflow][3]int64{}
	for _, flow := range []Dataflow{OutputStationary, WeightStationary, InputStationary} {
		c := Split("s", 64, 50, 8)
		c.Flow = flow
		res, err := SimulateNetwork(n, c)
		if err != nil {
			t.Fatal(err)
		}
		var iF, fF, oF int64
		for _, lr := range res.Layers {
			iF += lr.DRAMIfmap
			fF += lr.DRAMFilter
			oF += lr.DRAMOfmap
		}
		sums[flow] = [3]int64{iF, fF, oF}
	}
	if sums[WeightStationary][1] > sums[OutputStationary][1] || sums[WeightStationary][1] > sums[InputStationary][1] {
		t.Errorf("WS filter traffic not minimal: %v", sums)
	}
	if sums[InputStationary][0] > sums[OutputStationary][0] || sums[InputStationary][0] > sums[WeightStationary][0] {
		t.Errorf("IS ifmap traffic not minimal: %v", sums)
	}
	if sums[OutputStationary][2] > sums[WeightStationary][2] || sums[OutputStationary][2] > sums[InputStationary][2] {
		t.Errorf("OS ofmap traffic not minimal: %v", sums)
	}
}
