// Package scalesim models the paper's baseline accelerator: a SCALE-Sim
// style output-stationary systolic array with separate, statically
// partitioned ifmap and filter scratchpads (each internally double-buffered:
// half the assigned capacity holds active data, half prefetches) and a small
// ofmap staging buffer.
//
// Two evaluation paths are provided. The analytical model (Simulate) derives
// per-layer zero-stall cycle counts from the fold timing of an output-
// stationary array and DRAM traffic from a working-set reload model; the
// trace model (Trace) replays the fold loop at element granularity,
// tracking exactly which operand elements enter the SRAMs, and exists to
// validate the analytical model on small layers (SCALE-Sim itself is a full
// trace simulator, which is why the paper reports hours of baseline runtime
// against a minute for the policy estimators).
package scalesim

import (
	"fmt"

	"scratchmem/internal/layer"
)

// Config describes the baseline accelerator.
type Config struct {
	// Name labels the configuration in reports, e.g. "sa_25_75".
	Name string
	// Rows, Cols are the PE array dimensions (16x16 in the paper).
	Rows, Cols int
	// IfmapSRAMBytes and FilterSRAMBytes are the per-type buffer sizes.
	// When DoubleBuffered is set, only half of each holds active data.
	IfmapSRAMBytes  int64
	FilterSRAMBytes int64
	// OfmapSRAMBytes stages output rows on their way to DRAM (4 kB in the
	// paper); with an output-stationary dataflow partial sums live in the
	// PEs, so this size does not affect traffic.
	OfmapSRAMBytes int64
	// DataWidthBits is the element width.
	DataWidthBits int
	// DoubleBuffered halves the active capacity of the ifmap/filter
	// buffers, as the paper describes for the SCALE-Sim baseline.
	DoubleBuffered bool
	// Flow selects the dataflow; the zero value is the paper's
	// output-stationary baseline.
	Flow Dataflow
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Rows <= 0 || c.Cols <= 0:
		return fmt.Errorf("scalesim: array %dx%d invalid", c.Rows, c.Cols)
	case c.IfmapSRAMBytes <= 0 || c.FilterSRAMBytes <= 0 || c.OfmapSRAMBytes < 0:
		return fmt.Errorf("scalesim: non-positive SRAM sizes")
	case c.DataWidthBits <= 0:
		return fmt.Errorf("scalesim: data width must be positive")
	}
	return nil
}

// activeElems returns the active (non-prefetch) capacity of a buffer in
// elements.
func (c Config) activeElems(bytes int64) int64 {
	if c.DoubleBuffered {
		bytes /= 2
	}
	return bytes * 8 / int64(c.DataWidthBits)
}

// IfmapActiveElems returns the usable ifmap buffer capacity in elements.
func (c Config) IfmapActiveElems() int64 { return c.activeElems(c.IfmapSRAMBytes) }

// FilterActiveElems returns the usable filter buffer capacity in elements.
func (c Config) FilterActiveElems() int64 { return c.activeElems(c.FilterSRAMBytes) }

// Split builds a baseline configuration from a total on-chip budget, an
// ifmap share in percent, the paper's fixed 4 kB ofmap buffer and 16x16
// array. ifmapPct of (total - 4 kB) goes to the ifmap buffer, the rest to
// the filter buffer.
func Split(name string, totalKB, ifmapPct, widthBits int) Config {
	total := int64(totalKB) * 1024
	ofmap := int64(4 * 1024)
	rest := total - ofmap
	if rest <= 0 {
		rest = 2 // degenerate but non-zero so Validate flags sensibly sized use
	}
	ifm := rest * int64(ifmapPct) / 100
	return Config{
		Name:            name,
		Rows:            16,
		Cols:            16,
		IfmapSRAMBytes:  ifm,
		FilterSRAMBytes: rest - ifm,
		OfmapSRAMBytes:  ofmap,
		DataWidthBits:   widthBits,
		DoubleBuffered:  true,
	}
}

// PaperSplits returns the three baseline configurations of the paper's §4:
// 25-75, 50-50 and 75-25 ifmap-filter partitions of (GLB - 4 kB).
func PaperSplits(totalKB, widthBits int) []Config {
	return []Config{
		Split("sa_25_75", totalKB, 25, widthBits),
		Split("sa_50_50", totalKB, 50, widthBits),
		Split("sa_75_25", totalKB, 75, widthBits),
	}
}

// gemm is the GEMM view SCALE-Sim maps a layer onto: M output pixels by N
// filters, reduced over K. Depth-wise layers map channels across the array
// columns (N = CI) with a per-channel reduction K = FH*FW.
type gemm struct {
	m, n, k int64
	// ohs, ows are the stripped output dims (SCALE-Sim topology files carry
	// no padding column, so the baseline sees the unpadded geometry).
	ohs, ows  int64
	depthwise bool
}

// strippedGeometry returns the layer geometry as the baseline sees it: no
// padding, output (IH-FH)/S+1.
func strippedGeometry(l *layer.Layer) gemm {
	ohs := int64((l.IH-l.FH)/l.S + 1)
	ows := int64((l.IW-l.FW)/l.S + 1)
	g := gemm{m: ohs * ows, ohs: ohs, ows: ows}
	if l.Kind == layer.DepthwiseConv {
		g.n = int64(l.CI)
		g.k = int64(l.FH) * int64(l.FW)
		g.depthwise = true
		return g
	}
	g.n = int64(l.F)
	g.k = int64(l.FH) * int64(l.FW) * int64(l.CI)
	return g
}

// LayerResult reports the baseline's per-layer behaviour.
type LayerResult struct {
	Layer      string
	Cycles     int64 // zero-stall compute cycles (paper Figure 8 baseline)
	DRAMIfmap  int64 // elements read for the ifmap
	DRAMFilter int64 // elements read for the filters
	DRAMOfmap  int64 // elements written for the ofmap
	RowFolds   int64
	ColFolds   int64
	// Utilization is the PE mapping efficiency of the fold decomposition.
	Utilization float64
}

// DRAMTotal returns the total per-layer off-chip traffic in elements.
func (r LayerResult) DRAMTotal() int64 { return r.DRAMIfmap + r.DRAMFilter + r.DRAMOfmap }

// NetworkResult aggregates a whole network.
type NetworkResult struct {
	Config Config
	Layers []LayerResult
}

// Cycles returns the network's total zero-stall cycles.
func (n *NetworkResult) Cycles() int64 {
	var t int64
	for i := range n.Layers {
		t += n.Layers[i].Cycles
	}
	return t
}

// DRAMTotal returns the network's total off-chip traffic in elements.
func (n *NetworkResult) DRAMTotal() int64 {
	var t int64
	for i := range n.Layers {
		t += n.Layers[i].DRAMTotal()
	}
	return t
}

// DRAMBytes returns the network's total off-chip traffic in bytes.
func (n *NetworkResult) DRAMBytes() int64 {
	return n.DRAMTotal() * int64(n.Config.DataWidthBits) / 8
}
