package scalesim

import (
	"fmt"

	"scratchmem/internal/layer"
)

// Dataflow selects how the GEMM maps onto the array (paper §2.3 background:
// weight-, input- and output-stationary; SCALE-Sim supports the same
// three). The zero value is output-stationary, the paper's baseline.
type Dataflow int

const (
	// OutputStationary pins partial sums in the PEs; operands stream.
	OutputStationary Dataflow = iota
	// WeightStationary pins a KxN tile of weights; inputs and partial sums
	// stream through.
	WeightStationary
	// InputStationary pins a KxM tile of the im2col input; weights and
	// partial sums stream through.
	InputStationary
)

// String names the dataflow the way SCALE-Sim configs do.
func (d Dataflow) String() string {
	switch d {
	case OutputStationary:
		return "os"
	case WeightStationary:
		return "ws"
	case InputStationary:
		return "is"
	default:
		return fmt.Sprintf("Dataflow(%d)", int(d))
	}
}

// ParseDataflow converts "os"/"ws"/"is".
func ParseDataflow(s string) (Dataflow, error) {
	switch s {
	case "os":
		return OutputStationary, nil
	case "ws":
		return WeightStationary, nil
	case "is":
		return InputStationary, nil
	}
	return 0, fmt.Errorf("scalesim: unknown dataflow %q (want os, ws or is)", s)
}

// simulateWS models the weight-stationary mapping: the array pins R rows of
// the reduction by C filter columns per fold (ceil(K/R) x ceil(N/C) folds),
// streams all M output pixels through each fold, and — because the
// reduction is split across folds — spills and re-loads partial sums once
// per extra K-chunk.
func simulateWS(l *layer.Layer, cfg Config, g gemm) LayerResult {
	r := LayerResult{Layer: l.Name}
	kFolds := ceilDiv(g.k, int64(cfg.Rows))
	nFolds := ceilDiv(g.n, int64(cfg.Cols))
	r.RowFolds = kFolds
	r.ColFolds = nFolds
	// R cycles of weight preload plus the M-deep streaming wavefront.
	r.Cycles = kFolds * nFolds * (g.m + 2*int64(cfg.Rows) + int64(cfg.Cols) - 2)
	r.Utilization = float64(g.k*g.n) / float64(kFolds*int64(cfg.Rows)*nFolds*int64(cfg.Cols))

	si := usedIfmapElems(l, g)
	sf := g.k * g.n
	// Weights are pinned: each weight visits the array exactly once.
	r.DRAMFilter = sf
	// The input streams once per filter-column fold group, pinned-fraction
	// reuse applying as usual.
	r.DRAMIfmap = passTraffic(si, cfg.IfmapActiveElems(), nFolds)
	// Partial sums: one write per K-chunk plus a read-back for every chunk
	// after the first.
	r.DRAMOfmap = g.m * g.n * (2*kFolds - 1)
	return r
}

// simulateIS models the input-stationary mapping: a KxM input tile is
// pinned per fold (ceil(K/R) x ceil(M/C) folds), all N filters stream
// through it, and partial sums spill per extra K-chunk.
func simulateIS(l *layer.Layer, cfg Config, g gemm) LayerResult {
	r := LayerResult{Layer: l.Name}
	kFolds := ceilDiv(g.k, int64(cfg.Rows))
	mFolds := ceilDiv(g.m, int64(cfg.Cols))
	r.RowFolds = kFolds
	r.ColFolds = mFolds
	r.Cycles = kFolds * mFolds * (g.n + 2*int64(cfg.Rows) + int64(cfg.Cols) - 2)
	r.Utilization = float64(g.k*g.m) / float64(kFolds*int64(cfg.Rows)*mFolds*int64(cfg.Cols))

	si := usedIfmapElems(l, g)
	sf := g.k * g.n
	// Inputs pinned: the ifmap visits the array once.
	r.DRAMIfmap = si
	// Filters re-stream once per pinned input fold group.
	r.DRAMFilter = passTraffic(sf, cfg.FilterActiveElems(), mFolds)
	r.DRAMOfmap = g.m * g.n * (2*kFolds - 1)
	return r
}
