package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.Row("alpha", 1.25)
	tab.Row("b", 42)
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "name", "alpha", "1.2", "42", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	if tab.Rows() != 2 {
		t.Errorf("Rows = %d, want 2", tab.Rows())
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.Row("x", 1)
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "a,b\nx,1\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestBar(t *testing.T) {
	var sb strings.Builder
	Bar(&sb, "thing", 5, 10, 10)
	out := sb.String()
	if !strings.Contains(out, "#####") || strings.Contains(out, "######") {
		t.Errorf("bar scaling wrong: %q", out)
	}
	sb.Reset()
	Bar(&sb, "over", 20, 10, 10)
	if !strings.Contains(sb.String(), strings.Repeat("#", 10)) {
		t.Errorf("bar not clipped: %q", sb.String())
	}
	sb.Reset()
	Bar(&sb, "zero-max", 5, 0, 0)
	if !strings.Contains(sb.String(), "zero-max") {
		t.Errorf("bar without max broken: %q", sb.String())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := NewTable("", "only")
	tab.Row("a", "extra", "cells")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "extra") {
		t.Error("ragged row dropped")
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.Row("alpha", 1.25)
	var sb strings.Builder
	if err := tab.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### Demo", "| name | value |", "| --- | --- |", "| alpha | 1.2 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q in:\n%s", want, out)
		}
	}
}
