// Package report renders experiment results as aligned ASCII tables, simple
// horizontal bar charts and CSV files — the textual counterparts of the
// paper's tables and figures.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table as CSV (header + rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Rows returns the number of data rows accumulated.
func (t *Table) Rows() int { return len(t.rows) }

// Bar renders a labelled horizontal bar scaled so the largest value spans
// width characters.
func Bar(w io.Writer, label string, value, max float64, width int) {
	if width <= 0 {
		width = 40
	}
	n := 0
	if max > 0 {
		n = int(value / max * float64(width))
	}
	if n > width {
		n = width
	}
	fmt.Fprintf(w, "%-22s %8.2f |%s\n", label, value, strings.Repeat("#", n))
}

// RenderMarkdown writes the table as a GitHub-flavoured markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	cols := len(t.Header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	line := func(r []string) {
		b.WriteString("|")
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&b, " %s |", c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = "---"
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
