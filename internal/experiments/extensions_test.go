package experiments

import "testing"

func TestExtEnergyShape(t *testing.T) {
	cells, tab := ExtEnergy(quickSetup())
	if len(cells) != 30 || tab.Rows() != 30 {
		t.Fatalf("energy cells = %d, want 30", len(cells))
	}
	for _, c := range cells {
		if c.HetPJ <= 0 || c.BaselinePJ <= 0 {
			t.Errorf("%s @%dkB: non-positive energy", c.Model, c.SizeKB)
		}
		if c.SizeKB == 64 && c.ReductionPct < 10 {
			t.Errorf("%s @64kB: energy reduction %.1f%%, want substantial", c.Model, c.ReductionPct)
		}
		// At the largest buffer the paper itself reports slightly higher
		// accesses for Hom/Het (ifmap padding is counted on our side only),
		// so allow a small excess there; smaller buffers must win.
		if c.SizeKB < 1024 && c.HetPJ > c.BaselinePJ {
			t.Errorf("%s @%dkB: Het energy above baseline", c.Model, c.SizeKB)
		}
		if c.HetPJ > 1.15*c.BaselinePJ {
			t.Errorf("%s @%dkB: Het energy %.0f far above baseline %.0f",
				c.Model, c.SizeKB, c.HetPJ, c.BaselinePJ)
		}
	}
}

func TestExtBatchShape(t *testing.T) {
	cells, _ := ExtBatch(quickSetup(), "GoogLeNet", 256)
	if len(cells) != 5 {
		t.Fatalf("batch cells = %d, want 5", len(cells))
	}
	for i := 1; i < len(cells); i++ {
		if cells[i].PerInputAccessElem > cells[i-1].PerInputAccessElem {
			t.Errorf("batch %d: per-input traffic grew (%d -> %d)",
				cells[i].Batch, cells[i-1].PerInputAccessElem, cells[i].PerInputAccessElem)
		}
		if cells[i].FilterSharePct > cells[i-1].FilterSharePct {
			t.Errorf("batch %d: filter share grew (%.1f%% -> %.1f%%)",
				cells[i].Batch, cells[i-1].FilterSharePct, cells[i].FilterSharePct)
		}
	}
	// Weight amortisation must be visible on a filter-heavy model.
	first, last := cells[0], cells[len(cells)-1]
	if float64(last.PerInputAccessElem) > 0.9*float64(first.PerInputAccessElem) {
		t.Errorf("batching saved only %d -> %d elems/input",
			first.PerInputAccessElem, last.PerInputAccessElem)
	}
}

func TestExtInterLayerAblation(t *testing.T) {
	cells, _ := ExtInterLayerAblation(quickSetup())
	if len(cells) != 30 {
		t.Fatalf("ablation cells = %d, want 30", len(cells))
	}
	for _, c := range cells {
		if c.DP > c.Greedy {
			t.Errorf("%s @%dkB: DP %d worse than greedy %d", c.Model, c.SizeKB, c.DP, c.Greedy)
		}
		if c.DPGainPct < -1e-9 {
			t.Errorf("%s @%dkB: negative DP gain %.2f", c.Model, c.SizeKB, c.DPGainPct)
		}
	}
}

func TestExtTenancy(t *testing.T) {
	cell, tab := ExtTenancy(quickSetup(), "ResNet18", "MobileNet", 128)
	if tab.Rows() != 3 {
		t.Fatalf("tenancy rows = %d, want 3", tab.Rows())
	}
	// Time-sharing the full buffer can only help relative to static halves.
	if cell.HetTimeShared > cell.HetHalf {
		t.Errorf("time-shared %d worse than static %d", cell.HetTimeShared, cell.HetHalf)
	}
	// And Het on halves still crushes the fixed-split baseline on halves.
	if cell.HetHalf >= cell.BaselineHalf {
		t.Errorf("Het halves %d not better than baseline halves %d", cell.HetHalf, cell.BaselineHalf)
	}
	if cell.SharingGainPct < 0 {
		t.Errorf("negative sharing gain %.1f", cell.SharingGainPct)
	}
}

func TestExtDataflow(t *testing.T) {
	cells, tab := ExtDataflow(quickSetup(), 64)
	if len(cells) != 18 || tab.Rows() != 18 {
		t.Fatalf("dataflow cells = %d, want 18", len(cells))
	}
	// For every model, OS must not be the worst on DRAM traffic (partial
	// sums dominate WS/IS on the conv-heavy nets).
	byModel := map[string]map[string]float64{}
	for _, c := range cells {
		if byModel[c.Model] == nil {
			byModel[c.Model] = map[string]float64{}
		}
		byModel[c.Model][c.Flow] = c.DRAMMB
	}
	for m, flows := range byModel {
		if flows["os"] > flows["ws"] && flows["os"] > flows["is"] {
			t.Errorf("%s: OS is the worst dataflow (%v)", m, flows)
		}
	}
}

func TestExtSensitivity(t *testing.T) {
	cells, tab := ExtSensitivity(quickSetup(), "MobileNetV2", 64)
	if len(cells) != 9 || tab.Rows() != 9 {
		t.Fatalf("sensitivity cells = %d, want 9", len(cells))
	}
	find := func(dim, bw int) SensitivityCell {
		for _, c := range cells {
			if c.ArrayDim == dim && c.BWBytesPerCycle == bw {
				return c
			}
		}
		t.Fatalf("missing cell %dx%d bw %d", dim, dim, bw)
		return SensitivityCell{}
	}
	// More bandwidth can only help our (bandwidth-aware) scheme.
	if find(16, 32).HetLMCycles > find(16, 8).HetLMCycles {
		t.Error("more bandwidth increased Het_l latency")
	}
	// A bigger array can only lower the compute-bound portions.
	if find(32, 16).HetLMCycles > find(8, 16).HetLMCycles {
		t.Error("a 16x bigger array increased Het_l latency")
	}
	// Baselines scale with the array too.
	if find(32, 16).BaselineMCycles > find(8, 16).BaselineMCycles {
		t.Error("bigger array increased baseline cycles")
	}
}

func TestExtDSE(t *testing.T) {
	cells, tab := ExtDSE(quickSetup(), 64)
	if len(cells) != 6 || tab.Rows() != 6 {
		t.Fatalf("dse cells = %d, want 6", len(cells))
	}
	for _, c := range cells {
		if c.GapPct < -0.01 {
			t.Errorf("%s: Het below DSE optimum (gap %.2f%%)", c.Model, c.GapPct)
		}
		if c.GapPct > 15 {
			t.Errorf("%s: Het %.1f%% above the DSE optimum, want near-optimal", c.Model, c.GapPct)
		}
	}
}

func TestExtSizing(t *testing.T) {
	cells, tab := ExtSizing(quickSetup())
	if len(cells) != 6 || tab.Rows() != 6 {
		t.Fatalf("sizing cells = %d, want 6", len(cells))
	}
	for _, c := range cells {
		if c.NeedKB <= 0 || c.BoundLayer == "" {
			t.Errorf("%s: degenerate sizing %+v", c.Model, c)
		}
		// The heterogeneous requirement never exceeds the best homogeneous
		// (Table 3) requirement by more than padding bookkeeping.
		if c.NeedKB > 1.15*c.BestTable3KB {
			t.Errorf("%s: heterogeneous need %.1f kB above best homogeneous %.1f kB",
				c.Model, c.NeedKB, c.BestTable3KB)
		}
	}
}

func TestExtClassics(t *testing.T) {
	cells, tab := ExtClassics(quickSetup())
	if len(cells) != 10 || tab.Rows() != 10 {
		t.Fatalf("classic cells = %d, want 10", len(cells))
	}
	for _, c := range cells {
		if c.SizeKB == 64 && c.ReductionPct < 30 {
			t.Errorf("%s @64kB: reduction %.1f%%, want substantial", c.Model, c.ReductionPct)
		}
		if c.HetMB <= 0 {
			t.Errorf("%s @%dkB: degenerate traffic", c.Model, c.SizeKB)
		}
	}
}
