package experiments

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"scratchmem/internal/progress"
)

// TestFig5CtxCancelStopsDriver cancels a fan-out driver partway through and
// checks the contract every *Ctx driver shares: a wrapped context.Canceled
// comes back, and no new cells start after the cancellation landed.
func TestFig5CtxCancelStopsDriver(t *testing.T) {
	s := DefaultSetup()
	s.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	var done int
	prog := func(progress.Event) {
		mu.Lock()
		defer mu.Unlock()
		if done++; done == 2 {
			cancel()
		}
	}
	cells, tbl, err := Fig5Ctx(ctx, s, prog)
	if cells != nil || tbl != nil {
		t.Error("canceled driver returned partial results instead of nil")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	mu.Lock()
	finished := done
	mu.Unlock()
	// Cells already executing when cancel landed may finish (one per
	// worker); nothing new may be dispatched afterwards.
	if finished > 2+s.Workers {
		t.Errorf("%d cells completed after canceling at 2 with %d workers", finished, s.Workers)
	}
}

// TestExtDSECtxCancelPropagatesToGridSearch cancels before the driver
// starts: even the first cell's grid search must see the dead context and
// return promptly.
func TestExtDSECtxCancelPropagatesToGridSearch(t *testing.T) {
	s := DefaultSetup()
	s.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := ExtDSECtx(ctx, s, 64, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestLegacyDriversStillSucceed pins the wrapper contract for the panic
// bridge: the context-free forms run to completion exactly as before.
func TestLegacyDriversStillSucceed(t *testing.T) {
	s := DefaultSetup()
	s.SizesKB = []int{64}
	var events atomic.Int64
	cells, tbl, err := ExtBatchCtx(context.Background(), s, "TinyCNN", 64,
		func(progress.Event) { events.Add(1) })
	if err != nil || tbl == nil || len(cells) == 0 {
		t.Fatalf("ExtBatchCtx = (%d cells, %v, %v)", len(cells), tbl, err)
	}
	if got := events.Load(); got != int64(len(cells)) {
		t.Errorf("%d progress events for %d cells", got, len(cells))
	}
}
