package experiments

import (
	"strings"
	"testing"
)

// quickSetup keeps tests fast on small machines: single worker, paper sizes.
func quickSetup() Setup { return Setup{SizesKB: PaperSizesKB, Workers: 2} }

func TestTable2Shape(t *testing.T) {
	tab := Table2()
	if tab.Rows() != 6 {
		t.Fatalf("Table 2 has %d rows, want 6", tab.Rows())
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"EfficientNetB0", "GoogLeNet", "MnasNet", "MobileNet", "MobileNetV2", "ResNet18"} {
		if !strings.Contains(sb.String(), m) {
			t.Errorf("Table 2 missing %s", m)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	data, tab := Table3()
	if len(data) != 6 || tab.Rows() != 6 {
		t.Fatalf("Table 3 has %d rows, want 6", len(data))
	}
	for _, d := range data {
		// Intra-layer reuse always needs at least as much as any tiled
		// policy's per-layer maximum cannot exceed... sanity: positive, and
		// P2 (one filter + one channel) is the lightest for these nets.
		if d.Intra <= 0 || d.P1 <= 0 || d.P2 <= 0 || d.P3 <= 0 {
			t.Errorf("%s: non-positive entries %+v", d.Model, d)
		}
		if d.P2 > d.Intra {
			t.Errorf("%s: P2 max %f exceeds intra %f", d.Model, d.P2, d.Intra)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	cells, tab := Fig5(quickSetup())
	if len(cells) != 30 || tab.Rows() != 30 {
		t.Fatalf("Fig5 has %d cells, want 30", len(cells))
	}
	byModelSize := map[string]map[int]Fig5Cell{}
	for _, c := range cells {
		if byModelSize[c.Model] == nil {
			byModelSize[c.Model] = map[int]Fig5Cell{}
		}
		byModelSize[c.Model][c.SizeKB] = c
	}
	for m, sizes := range byModelSize {
		small := sizes[64]
		big := sizes[1024]
		bestSmall := minBaseline(small)
		// Paper §5.1: large reductions at the smallest buffer (32-80%
		// depending on model and scheme).
		if got := 1 - float64(small.Het)/float64(bestSmall); got < 0.25 {
			t.Errorf("%s @64kB: Het reduction vs best baseline = %.2f, want >= 0.25", m, got)
		}
		if small.Het > small.Hom {
			t.Errorf("%s @64kB: Het %d worse than Hom %d", m, small.Het, small.Hom)
		}
		// Het accesses nearly flat across sizes.
		if r := float64(small.Het) / float64(big.Het); r > 1.6 {
			t.Errorf("%s: Het 64kB/1MB ratio %.2f, want near-constant", m, r)
		}
		// At 1 MB the baseline gap closes substantially.
		bestBig := minBaseline(big)
		gapSmall := float64(bestSmall) / float64(small.Het)
		gapBig := float64(bestBig) / float64(big.Het)
		if gapBig > gapSmall {
			t.Errorf("%s: baseline gap grew with buffer size (%.2f -> %.2f)", m, gapSmall, gapBig)
		}
	}
	// Headline: ResNet18 @64kB reduction should approach the paper's ~80%.
	r18 := byModelSize["ResNet18"][64]
	red := 1 - float64(r18.Het)/float64(minBaseline(r18))
	if red < 0.6 {
		t.Errorf("ResNet18 @64kB Het reduction = %.2f, paper reports 0.80", red)
	}
}

func minBaseline(c Fig5Cell) int64 {
	best := int64(0)
	for _, v := range c.Baselines {
		if best == 0 || v < best {
			best = v
		}
	}
	return best
}

func TestFig7Shape(t *testing.T) {
	cells, _ := Fig7(quickSetup())
	if len(cells) != 15 {
		t.Fatalf("Fig7 has %d cells, want 15", len(cells))
	}
	var b32at64, b8at64, b32at1024 float64
	for _, c := range cells {
		if c.BenefitPct < -1 {
			t.Errorf("width %d @%dkB: Het worse than Hom by %.1f%%", c.WidthBits, c.SizeKB, -c.BenefitPct)
		}
		switch {
		case c.WidthBits == 32 && c.SizeKB == 64:
			b32at64 = c.BenefitPct
		case c.WidthBits == 8 && c.SizeKB == 64:
			b8at64 = c.BenefitPct
		case c.WidthBits == 32 && c.SizeKB == 1024:
			b32at1024 = c.BenefitPct
		}
	}
	// Paper: the Het advantage is largest for wide data at small buffers
	// (69% at 32-bit/64kB) and fades for large buffers.
	if b32at64 < b8at64 {
		t.Errorf("32-bit benefit (%.1f%%) not larger than 8-bit (%.1f%%) at 64kB", b32at64, b8at64)
	}
	if b32at64 < 10 {
		t.Errorf("32-bit @64kB benefit = %.1f%%, want substantial (paper: 69%%)", b32at64)
	}
	if b32at1024 > b32at64 {
		t.Errorf("benefit did not fade with size: %.1f%% -> %.1f%%", b32at64, b32at1024)
	}
}

func TestFig8Shape(t *testing.T) {
	cells, _ := Fig8(quickSetup())
	if len(cells) != 30 {
		t.Fatalf("Fig8 has %d cells, want 30", len(cells))
	}
	bestRed := 0.0
	for _, c := range cells {
		if c.HetL > c.HetA {
			t.Errorf("%s @%dkB: Het_l latency %d > Het_a %d", c.Model, c.SizeKB, c.HetL, c.HetA)
		}
		if c.HetL > c.HomL {
			t.Errorf("%s @%dkB: Het_l latency %d > Hom_l %d", c.Model, c.SizeKB, c.HetL, c.HomL)
		}
		if red := 1 - float64(c.HetL)/float64(c.Baseline); red > bestRed {
			bestRed = red
		}
	}
	// Paper: up to 56% latency reduction. Require a substantial best case.
	if bestRed < 0.3 {
		t.Errorf("best latency reduction = %.2f, want >= 0.3 (paper: 0.56)", bestRed)
	}
}

func TestFig9Shape(t *testing.T) {
	cells, _ := Fig9(quickSetup(), 64)
	if len(cells) != 6 {
		t.Fatalf("Fig9 has %d cells, want 6", len(cells))
	}
	for _, c := range cells {
		if c.LatencyBenefitPct < 0 {
			t.Errorf("%s: Het_l slower than Het_a by %.1f%%", c.Model, -c.LatencyBenefitPct)
		}
		if c.AccessBenefitPct > 0.001 {
			t.Errorf("%s: Het_l fewer accesses than Het_a (%.1f%%)?", c.Model, c.AccessBenefitPct)
		}
	}
	// At least one model trades accesses for latency visibly (paper:
	// MobileNet +23% latency / -33% accesses).
	traded := false
	for _, c := range cells {
		if c.LatencyBenefitPct > 5 && c.AccessBenefitPct < -5 {
			traded = true
		}
	}
	if !traded {
		t.Error("no model shows the latency-for-accesses trade at 64kB")
	}
}

func TestFig10Shape(t *testing.T) {
	cells, _ := Fig10(quickSetup(), "MobileNet")
	if len(cells) != 5 {
		t.Fatalf("Fig10 has %d cells, want 5", len(cells))
	}
	for _, c := range cells {
		if c.LatencyBenefitPct < 0 {
			t.Errorf("@%dkB: prefetching hurt latency by %.1f%%", c.SizeKB, -c.LatencyBenefitPct)
		}
	}
	// Paper: ~15% latency benefit at most sizes, access penalty at 64kB,
	// coverage 93-100%.
	if cells[0].AccessBenefitPct > -1 {
		t.Errorf("@64kB access penalty = %.1f%%, want a real penalty (paper: -35%%)", cells[0].AccessBenefitPct)
	}
	last := cells[len(cells)-1]
	if last.CoveragePct < 90 {
		t.Errorf("@%dkB coverage = %.0f%%, want >= 90%%", last.SizeKB, last.CoveragePct)
	}
	if cells[0].LatencyBenefitPct < 3 {
		t.Errorf("@64kB latency benefit = %.1f%%, want visible (paper ~15%%)", cells[0].LatencyBenefitPct)
	}
}

func TestFig11Shape(t *testing.T) {
	cells, _, geo := Fig11(quickSetup(), "MnasNet")
	if len(cells) != 5 {
		t.Fatalf("Fig11 has %d cells, want 5", len(cells))
	}
	for i := 1; i < len(cells); i++ {
		if cells[i].CoveragePct+1e-9 < cells[i-1].CoveragePct {
			t.Errorf("coverage not monotone: %v then %v", cells[i-1], cells[i])
		}
	}
	first, last := cells[0], cells[len(cells)-1]
	if last.CoveragePct < 70 {
		t.Errorf("@1MB coverage = %.0f%%, want high (paper: 98%%)", last.CoveragePct)
	}
	if last.AccessBenefitPct < 40 {
		t.Errorf("@1MB access benefit = %.1f%%, want large (paper: 70%%)", last.AccessBenefitPct)
	}
	if first.AccessBenefitPct > last.AccessBenefitPct {
		t.Error("benefit did not grow with buffer size")
	}
	if geo.Rows() != 2 {
		t.Errorf("geomean table has %d rows, want 2", geo.Rows())
	}
}

func TestHeadlines(t *testing.T) {
	s := quickSetup()
	f5, _ := Fig5(s)
	f8, _ := Fig8(s)
	h, tab := Headlines(f5, f8)
	if h.MaxAccessReductionPct < 60 {
		t.Errorf("max access reduction = %.1f%%, paper reports 80%%", h.MaxAccessReductionPct)
	}
	if h.MaxLatencyReductionPct < 30 {
		t.Errorf("max latency reduction = %.1f%%, paper reports 56%%", h.MaxLatencyReductionPct)
	}
	if tab.Rows() != 2 {
		t.Errorf("headline table rows = %d", tab.Rows())
	}
}

func TestTable4AndFig6Render(t *testing.T) {
	var sb strings.Builder
	if err := Table4(64).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "policy") {
		t.Error("Table 4 lists no policies")
	}
	sb.Reset()
	f6 := Fig6(64)
	if f6.Rows() != 21 {
		t.Errorf("Fig6 rows = %d, want 21 (ResNet18 layers)", f6.Rows())
	}
	if err := f6.Render(&sb); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := Fig3().Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "conv1") {
		t.Error("Fig3 missing conv1")
	}
}
