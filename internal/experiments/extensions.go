package experiments

import (
	"context"
	"fmt"
	"time"

	"scratchmem/internal/core"
	"scratchmem/internal/dse"
	"scratchmem/internal/energy"
	"scratchmem/internal/model"
	"scratchmem/internal/parallel"
	"scratchmem/internal/policy"
	"scratchmem/internal/progress"
	"scratchmem/internal/report"
	"scratchmem/internal/scalesim"
	"scratchmem/internal/stats"
)

// The experiments in this file extend the paper: an energy account of the
// access reductions (the paper motivates with the 10-100x off-chip cost but
// reports accesses only), a batch-size study (the Escher-style weight
// amortisation the paper cites as related work) and a DP-vs-greedy ablation
// of the inter-layer retention decision.

// EnergyCell is one (model, size) cell of the energy extension.
type EnergyCell struct {
	Model        string
	SizeKB       int
	BaselinePJ   float64 // best fixed-split baseline, DRAM+GLB+compute
	HetPJ        float64
	ReductionPct float64
}

// ExtEnergy compares the end-to-end energy of the heterogeneous scheme
// against the best baseline split, using the reference energy model.
func ExtEnergy(s Setup) ([]EnergyCell, *report.Table) {
	cells, t, err := ExtEnergyCtx(context.Background(), s, nil)
	mustCells(err)
	return cells, t
}

// ExtEnergyCtx is ExtEnergy with cancellation and per-cell progress events
// ("energy").
func ExtEnergyCtx(ctx context.Context, s Setup, prog progress.Func) ([]EnergyCell, *report.Table, error) {
	models := model.BuiltinNames()
	sizes := s.sizes()
	m := energy.Default()
	nets := builtinsByName(models)
	cells := make([]EnergyCell, len(models)*len(sizes))
	err := forEachCtx(ctx, s, len(cells), func(ctx context.Context, i int) error {
		name, kb := models[i/len(sizes)], sizes[i%len(sizes)]
		n := nets[i/len(sizes)]
		_, baseBytes, err := baselineBestCtx(ctx, n, kb, 8)
		if err != nil {
			return err
		}
		cfg := policy.Default(kb)
		base := energy.DRAMOnly(baseBytes, n.MACs(), cfg, m)
		het, err := core.NewPlanner(kb, core.MinAccesses).HeterogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		hetE, err := energy.Plan(het, m)
		if err != nil {
			return err
		}
		cells[i] = EnergyCell{
			Model: name, SizeKB: kb,
			BaselinePJ:   base.Total(),
			HetPJ:        hetE.Total(),
			ReductionPct: 100 * (1 - hetE.Total()/base.Total()),
		}
		cellDone(prog, "energy", i, len(cells), fmt.Sprintf("%s@%dkB", name, kb))
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable("Extension: inference energy, best baseline vs Het (uJ)",
		"Network", "GLB kB", "baseline uJ", "Het uJ", "reduction %")
	for _, c := range cells {
		t.Row(c.Model, c.SizeKB, c.BaselinePJ/1e6, c.HetPJ/1e6, c.ReductionPct)
	}
	return cells, t, nil
}

// BatchCell is one batch size of the batching extension.
type BatchCell struct {
	Batch              int
	PerInputAccessElem int64
	FilterSharePct     float64 // share of traffic that is weights
}

// ExtBatch studies how batching amortises weight traffic for a
// filter-heavy model under the heterogeneous scheme.
func ExtBatch(s Setup, modelName string, glbKB int) ([]BatchCell, *report.Table) {
	cells, t, err := ExtBatchCtx(context.Background(), s, modelName, glbKB, nil)
	mustCells(err)
	return cells, t
}

// ExtBatchCtx is ExtBatch with cancellation and per-cell progress events
// ("batch").
func ExtBatchCtx(ctx context.Context, s Setup, modelName string, glbKB int, prog progress.Func) ([]BatchCell, *report.Table, error) {
	n := mustBuiltin(modelName)
	batches := []int{1, 2, 4, 8, 16}
	cells := make([]BatchCell, len(batches))
	err := forEachCtx(ctx, s, len(batches), func(ctx context.Context, i int) error {
		pl := core.NewPlanner(glbKB, core.MinAccesses)
		pl.Cfg.Batch = batches[i]
		p, err := pl.HeterogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		var filter int64
		for j := range p.Layers {
			filter += p.Layers[j].Est.AccessFilter
		}
		total := p.AccessElems()
		cells[i] = BatchCell{
			Batch:              batches[i],
			PerInputAccessElem: total / int64(batches[i]),
			FilterSharePct:     100 * float64(filter) / float64(total),
		}
		cellDone(prog, "batch", i, len(cells), fmt.Sprintf("batch=%d", batches[i]))
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Extension: batching on %s @%d kB (Het, per-input traffic)", modelName, glbKB),
		"batch", "elems/input", "filter share %")
	for _, c := range cells {
		t.Row(c.Batch, c.PerInputAccessElem, c.FilterSharePct)
	}
	return cells, t, nil
}

// AblationCell is one (model, size) cell of the inter-layer DP-vs-greedy
// ablation.
type AblationCell struct {
	Model      string
	SizeKB     int
	DP, Greedy int64 // access elements
	DPGainPct  float64
}

// ExtInterLayerAblation compares the retention DP against the one-pass
// greedy rule.
func ExtInterLayerAblation(s Setup) ([]AblationCell, *report.Table) {
	cells, t, err := ExtInterLayerAblationCtx(context.Background(), s, nil)
	mustCells(err)
	return cells, t
}

// ExtInterLayerAblationCtx is ExtInterLayerAblation with cancellation and
// per-cell progress events ("ablation").
func ExtInterLayerAblationCtx(ctx context.Context, s Setup, prog progress.Func) ([]AblationCell, *report.Table, error) {
	models := model.BuiltinNames()
	sizes := s.sizes()
	nets := builtinsByName(models)
	cells := make([]AblationCell, len(models)*len(sizes))
	err := forEachCtx(ctx, s, len(cells), func(ctx context.Context, i int) error {
		name, kb := models[i/len(sizes)], sizes[i%len(sizes)]
		n := nets[i/len(sizes)]
		dpPl := core.NewPlanner(kb, core.MinAccesses)
		dpPl.InterLayer = true
		grPl := core.NewPlanner(kb, core.MinAccesses)
		// DP and greedy ask the same per-layer questions in a different
		// order; sharing the memo makes the second traversal all hits.
		grPl.UseMemo(dpPl.Memo)
		grPl.InterLayer = true
		grPl.InterLayerGreedy = true
		dpPlan, err := dpPl.HeterogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		grPlan, err := grPl.HeterogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		dp, gr := dpPlan.AccessElems(), grPlan.AccessElems()
		cells[i] = AblationCell{Model: name, SizeKB: kb, DP: dp, Greedy: gr,
			DPGainPct: stats.Benefit(gr, dp)}
		cellDone(prog, "ablation", i, len(cells), fmt.Sprintf("%s@%dkB", name, kb))
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable("Ablation: inter-layer retention, DP vs greedy (access elements)",
		"Network", "GLB kB", "DP", "greedy", "DP gain %")
	for _, c := range cells {
		t.Row(c.Model, c.SizeKB, c.DP, c.Greedy, c.DPGainPct)
	}
	return cells, t, nil
}

// TenancyCell is one co-tenant pair of the multi-tenancy extension.
type TenancyCell struct {
	Pair           string
	GLBKB          int
	BaselineHalf   int64 // each tenant on fixed-split buffers of half the GLB
	HetHalf        int64 // each tenant Het-planned on half the GLB (static partition)
	HetTimeShared  int64 // tenants time-share the full unified GLB per layer
	SharingGainPct float64
}

// ExtTenancy studies the paper's multi-tenancy motivation: two models
// co-resident on one accelerator. A static partition gives each tenant half
// the scratchpad for its whole run; the unified buffer with per-layer
// management instead lets whichever layer is executing use all of it
// (layers are time-multiplexed anyway). The gap between HetHalf and
// HetTimeShared is what flexible management buys multi-tenant deployments.
func ExtTenancy(s Setup, modelA, modelB string, glbKB int) (TenancyCell, *report.Table) {
	cell, t, err := ExtTenancyCtx(context.Background(), s, modelA, modelB, glbKB, nil)
	mustCells(err)
	return cell, t
}

// ExtTenancyCtx is ExtTenancy with cancellation and per-cell progress
// events ("tenancy").
func ExtTenancyCtx(ctx context.Context, s Setup, modelA, modelB string, glbKB int, prog progress.Func) (TenancyCell, *report.Table, error) {
	na, nb := mustBuiltin(modelA), mustBuiltin(modelB)
	traffic := func(ctx context.Context, n *model.Network, kb int) (int64, error) {
		p, err := core.NewPlanner(kb, core.MinAccesses).HeterogeneousCtx(ctx, n, nil)
		if err != nil {
			return 0, err
		}
		return p.AccessElems(), nil
	}
	baseline := func(ctx context.Context, n *model.Network, kb int) (int64, error) {
		_, b, err := baselineBestCtx(ctx, n, kb, 8)
		return b, err
	}
	var cell TenancyCell
	results, err := parallel.MapCtx(ctx, 6, s.Workers, func(ctx context.Context, i int) (int64, error) {
		defer cellDone(prog, "tenancy", i, 6, cell.Pair)
		switch i {
		case 0:
			return baseline(ctx, na, glbKB/2)
		case 1:
			return baseline(ctx, nb, glbKB/2)
		case 2:
			return traffic(ctx, na, glbKB/2)
		case 3:
			return traffic(ctx, nb, glbKB/2)
		case 4:
			return traffic(ctx, na, glbKB)
		default:
			return traffic(ctx, nb, glbKB)
		}
	})
	if err != nil {
		return TenancyCell{}, nil, err
	}
	cell = TenancyCell{
		Pair:          modelA + "+" + modelB,
		GLBKB:         glbKB,
		BaselineHalf:  results[0] + results[1],
		HetHalf:       results[2] + results[3],
		HetTimeShared: results[4] + results[5],
	}
	cell.SharingGainPct = stats.Benefit(cell.HetHalf, cell.HetTimeShared)
	t := report.NewTable(
		fmt.Sprintf("Extension: multi-tenancy %s on a %d kB GLB (access elements)", cell.Pair, glbKB),
		"strategy", "accesses", "vs static Het %")
	t.Row("baseline splits, half GLB each", cell.BaselineHalf, stats.Benefit(cell.HetHalf, cell.BaselineHalf))
	t.Row("Het, static half-GLB partition", cell.HetHalf, 0.0)
	t.Row("Het, time-shared unified GLB", cell.HetTimeShared, cell.SharingGainPct)
	return cell, t, nil
}

// DataflowCell is one (model, dataflow) cell of the dataflow-comparison
// extension.
type DataflowCell struct {
	Model   string
	Flow    string
	DRAMMB  float64
	MCycles float64
}

// ExtDataflow compares the three classic dataflows (paper §2.3 background)
// on the fixed 50-50 baseline at the given size: output-stationary wins on
// partial-sum traffic for deep convolutions, which is why both the paper's
// baseline and its own schemes use it.
func ExtDataflow(s Setup, glbKB int) ([]DataflowCell, *report.Table) {
	cells, t, err := ExtDataflowCtx(context.Background(), s, glbKB, nil)
	mustCells(err)
	return cells, t
}

// ExtDataflowCtx is ExtDataflow with cancellation and per-cell progress
// events ("dataflow").
func ExtDataflowCtx(ctx context.Context, s Setup, glbKB int, prog progress.Func) ([]DataflowCell, *report.Table, error) {
	models := model.BuiltinNames()
	flows := []scalesim.Dataflow{scalesim.OutputStationary, scalesim.WeightStationary, scalesim.InputStationary}
	nets := builtinsByName(models)
	cells := make([]DataflowCell, len(models)*len(flows))
	err := forEachCtx(ctx, s, len(cells), func(ctx context.Context, i int) error {
		name, flow := models[i/len(flows)], flows[i%len(flows)]
		n := nets[i/len(flows)]
		cfg := scalesim.Split("sa_50_50", glbKB, 50, 8)
		cfg.Flow = flow
		res, err := scalesim.SimulateNetworkCtx(ctx, n, cfg, nil)
		if err != nil {
			return err
		}
		cells[i] = DataflowCell{
			Model:   name,
			Flow:    flow.String(),
			DRAMMB:  float64(res.DRAMBytes()) / (1 << 20),
			MCycles: float64(res.Cycles()) / 1e6,
		}
		cellDone(prog, "dataflow", i, len(cells), fmt.Sprintf("%s/%s", name, flow))
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Extension: baseline dataflow comparison @%d kB (sa_50_50)", glbKB),
		"Network", "dataflow", "DRAM MB", "Mcycles")
	for _, c := range cells {
		t.Row(c.Model, c.Flow, c.DRAMMB, c.MCycles)
	}
	return cells, t, nil
}

// SensitivityCell is one hardware point of the co-design sensitivity sweep.
type SensitivityCell struct {
	ArrayDim        int // PEs per side (the paper uses 16)
	BWBytesPerCycle int
	BaselineMCycles float64
	HetLMCycles     float64
	ReductionPct    float64
}

// ExtSensitivity sweeps the accelerator design space around the paper's
// operating point (16x16 PEs, 16 B/cycle) in the spirit of the authors'
// RAINBOW co-design tool: how does the latency advantage of the managed
// unified buffer move with compute width and off-chip bandwidth? Off-chip
// traffic is unaffected (it depends only on the GLB size), so the sweep
// reports latency.
func ExtSensitivity(s Setup, modelName string, glbKB int) ([]SensitivityCell, *report.Table) {
	cells, t, err := ExtSensitivityCtx(context.Background(), s, modelName, glbKB, nil)
	mustCells(err)
	return cells, t
}

// ExtSensitivityCtx is ExtSensitivity with cancellation and per-cell
// progress events ("sensitivity").
func ExtSensitivityCtx(ctx context.Context, s Setup, modelName string, glbKB int, prog progress.Func) ([]SensitivityCell, *report.Table, error) {
	dims := []int{8, 16, 32}
	bws := []int{8, 16, 32}
	n := mustBuiltin(modelName)
	cells := make([]SensitivityCell, len(dims)*len(bws))
	err := forEachCtx(ctx, s, len(cells), func(ctx context.Context, i int) error {
		dim, bw := dims[i/len(bws)], bws[i%len(bws)]
		bcfg := scalesim.Split("sa_50_50", glbKB, 50, 8)
		bcfg.Rows, bcfg.Cols = dim, dim
		base, err := scalesim.SimulateNetworkCtx(ctx, n, bcfg, nil)
		if err != nil {
			return err
		}
		pl := core.NewPlanner(glbKB, core.MinLatency)
		pl.Cfg.OpsPerCycle = 2 * dim * dim
		pl.Cfg.DRAMBytesPerCycle = bw
		het, err := pl.HeterogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		cells[i] = SensitivityCell{
			ArrayDim:        dim,
			BWBytesPerCycle: bw,
			BaselineMCycles: float64(base.Cycles()) / 1e6,
			HetLMCycles:     float64(het.LatencyCycles()) / 1e6,
			ReductionPct:    stats.Benefit(base.Cycles(), het.LatencyCycles()),
		}
		cellDone(prog, "sensitivity", i, len(cells), fmt.Sprintf("%dx%d/bw%d", dim, dim, bw))
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Extension: hardware sensitivity for %s @%d kB (latency)", modelName, glbKB),
		"array", "BW B/cyc", "baseline Mcyc", "Het_l Mcyc", "reduction %")
	for _, c := range cells {
		t.Row(fmt.Sprintf("%dx%d", c.ArrayDim, c.ArrayDim), c.BWBytesPerCycle,
			c.BaselineMCycles, c.HetLMCycles, c.ReductionPct)
	}
	return cells, t, nil
}

// DSECell compares the heterogeneous policy plan against the exhaustive
// tile-size DSE optimum.
type DSECell struct {
	Model        string
	SizeKB       int
	Het, DSE     int64 // access elements
	GapPct       float64
	PlanMicros   int64 // heterogeneous planning time
	SearchMicros int64 // DSE search time
}

// ExtDSE quantifies how near-optimal the paper's six lightweight policies
// are: for every model it compares the Het plan's traffic against an
// exhaustive tiling search (the related-work approach) and reports both
// planning costs. This replays the paper's "minutes of estimation instead
// of hours of simulation" argument against DSE.
func ExtDSE(s Setup, glbKB int) ([]DSECell, *report.Table) {
	cells, t, err := ExtDSECtx(context.Background(), s, glbKB, nil)
	mustCells(err)
	return cells, t
}

// ExtDSECtx is ExtDSE with cancellation (threaded into both the planner and
// the exhaustive grid search) and per-cell progress events ("extdse").
func ExtDSECtx(ctx context.Context, s Setup, glbKB int, prog progress.Func) ([]DSECell, *report.Table, error) {
	models := model.BuiltinNames()
	cells := make([]DSECell, len(models))
	err := forEachCtx(ctx, s, len(models), func(ctx context.Context, i int) error {
		n := mustBuiltin(models[i])
		cfg := policy.Default(glbKB)

		t0 := time.Now()
		het, err := core.NewPlanner(glbKB, core.MinAccesses).HeterogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		planT := time.Since(t0)

		t0 = time.Now()
		dseTotal, _, err := dse.NetworkAccessElemsCtx(ctx, n, cfg, nil)
		if err != nil {
			return err
		}
		searchT := time.Since(t0)

		cells[i] = DSECell{
			Model: models[i], SizeKB: glbKB,
			Het: het.AccessElems(), DSE: dseTotal,
			GapPct:       100 * (float64(het.AccessElems())/float64(dseTotal) - 1),
			PlanMicros:   planT.Microseconds(),
			SearchMicros: searchT.Microseconds(),
		}
		cellDone(prog, "extdse", i, len(cells), models[i])
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Extension: Het vs exhaustive tiling DSE @%d kB", glbKB),
		"Network", "Het elems", "DSE elems", "gap %", "plan us", "DSE us")
	for _, c := range cells {
		t.Row(c.Model, c.Het, c.DSE, c.GapPct, c.PlanMicros, c.SearchMicros)
	}
	return cells, t, nil
}

// SizingCell reports the smallest unified buffer with which a model reaches
// its once-per-element traffic minimum.
type SizingCell struct {
	Model        string
	NeedKB       float64
	BoundLayer   string
	BestTable3KB float64 // min over the Table-3 policy columns, for reference
}

// ExtSizing answers the designer question behind Table 3: how much unified
// scratchpad does each network need so that some policy moves every element
// exactly once on every layer? The binding layer is the network's
// worst-case; the per-policy Table 3 maxima upper-bound it (a heterogeneous
// choice can dodge each policy's worst layer).
func ExtSizing(s Setup) ([]SizingCell, *report.Table) {
	cells, t, err := ExtSizingCtx(context.Background(), s, nil)
	mustCells(err)
	return cells, t
}

// ExtSizingCtx is ExtSizing with cancellation and per-cell progress events
// ("sizing").
func ExtSizingCtx(ctx context.Context, s Setup, prog progress.Func) ([]SizingCell, *report.Table, error) {
	models := model.BuiltinNames()
	cells := make([]SizingCell, len(models))
	err := forEachCtx(ctx, s, len(models), func(ctx context.Context, i int) error {
		n := mustBuiltin(models[i])
		cfg := policy.Default(1 << 20) // size is irrelevant to the frontier
		var needB int64
		var bound string
		for j := range n.Layers {
			l := &n.Layers[j]
			b := policy.SmallestGLBForMinimum(l, cfg)
			if b > needB {
				needB, bound = b, l.Name
			}
		}
		cfg3 := cfg
		cfg3.IncludePadding = false
		best := policy.MaxMemoryKB(n.Layers, policy.P1IfmapReuse, cfg3)
		for _, id := range []policy.ID{policy.P2FilterReuse, policy.P3PerChannel} {
			if v := policy.MaxMemoryKB(n.Layers, id, cfg3); v < best {
				best = v
			}
		}
		cells[i] = SizingCell{
			Model:        models[i],
			NeedKB:       float64(needB) / 1024,
			BoundLayer:   bound,
			BestTable3KB: best,
		}
		cellDone(prog, "sizing", i, len(cells), models[i])
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable(
		"Extension: smallest GLB reaching minimum traffic (heterogeneous choice per layer)",
		"Network", "need kB", "binding layer", "best hom policy kB (Table 3)")
	for _, c := range cells {
		t.Row(c.Model, c.NeedKB, c.BoundLayer, c.BestTable3KB)
	}
	return cells, t, nil
}

// ClassicCell extends the Figure-5 comparison to the pre-mobile classics.
type ClassicCell struct {
	Model        string
	SizeKB       int
	BaselineMB   float64
	HetMB        float64
	ReductionPct float64
}

// ExtClassics runs the headline comparison on AlexNet and VGG16 — networks
// outside the paper's set whose enormous FC weight tensors stress the
// weight-streaming policies instead of the activation-heavy mobile nets.
func ExtClassics(s Setup) ([]ClassicCell, *report.Table) {
	cells, t, err := ExtClassicsCtx(context.Background(), s, nil)
	mustCells(err)
	return cells, t
}

// ExtClassicsCtx is ExtClassics with cancellation and per-cell progress
// events ("classics").
func ExtClassicsCtx(ctx context.Context, s Setup, prog progress.Func) ([]ClassicCell, *report.Table, error) {
	models := []string{"AlexNet", "VGG16"}
	sizes := s.sizes()
	nets := builtinsByName(models)
	cells := make([]ClassicCell, len(models)*len(sizes))
	err := forEachCtx(ctx, s, len(cells), func(ctx context.Context, i int) error {
		name, kb := models[i/len(sizes)], sizes[i%len(sizes)]
		n := nets[i/len(sizes)]
		_, base, err := baselineBestCtx(ctx, n, kb, 8)
		if err != nil {
			return err
		}
		het, err := core.NewPlanner(kb, core.MinAccesses).HeterogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		cells[i] = ClassicCell{
			Model: name, SizeKB: kb,
			BaselineMB:   float64(base) / (1 << 20),
			HetMB:        float64(het.AccessBytes()) / (1 << 20),
			ReductionPct: stats.Benefit(base, het.AccessBytes()),
		}
		cellDone(prog, "classics", i, len(cells), fmt.Sprintf("%s@%dkB", name, kb))
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable("Extension: the classics (outside the paper's model set)",
		"Network", "GLB kB", "best baseline MB", "Het MB", "reduction %")
	for _, c := range cells {
		t.Row(c.Model, c.SizeKB, c.BaselineMB, c.HetMB, c.ReductionPct)
	}
	return cells, t, nil
}
