package experiments

import (
	"fmt"
	"time"

	"scratchmem/internal/core"
	"scratchmem/internal/dse"
	"scratchmem/internal/energy"
	"scratchmem/internal/model"
	"scratchmem/internal/parallel"
	"scratchmem/internal/policy"
	"scratchmem/internal/report"
	"scratchmem/internal/scalesim"
	"scratchmem/internal/stats"
)

// The experiments in this file extend the paper: an energy account of the
// access reductions (the paper motivates with the 10-100x off-chip cost but
// reports accesses only), a batch-size study (the Escher-style weight
// amortisation the paper cites as related work) and a DP-vs-greedy ablation
// of the inter-layer retention decision.

// EnergyCell is one (model, size) cell of the energy extension.
type EnergyCell struct {
	Model        string
	SizeKB       int
	BaselinePJ   float64 // best fixed-split baseline, DRAM+GLB+compute
	HetPJ        float64
	ReductionPct float64
}

// ExtEnergy compares the end-to-end energy of the heterogeneous scheme
// against the best baseline split, using the reference energy model.
func ExtEnergy(s Setup) ([]EnergyCell, *report.Table) {
	models := model.BuiltinNames()
	sizes := s.sizes()
	m := energy.Default()
	cells := make([]EnergyCell, len(models)*len(sizes))
	forEach(s, len(cells), func(i int) {
		name, kb := models[i/len(sizes)], sizes[i%len(sizes)]
		n := mustBuiltin(name)
		_, baseBytes := baselineBest(n, kb, 8)
		cfg := policy.Default(kb)
		base := energy.DRAMOnly(baseBytes, n.MACs(), cfg, m)
		het := mustPlan(core.NewPlanner(kb, core.MinAccesses).Heterogeneous(n))
		hetE, err := energy.Plan(het, m)
		if err != nil {
			panic(err)
		}
		cells[i] = EnergyCell{
			Model: name, SizeKB: kb,
			BaselinePJ:   base.Total(),
			HetPJ:        hetE.Total(),
			ReductionPct: 100 * (1 - hetE.Total()/base.Total()),
		}
	})
	t := report.NewTable("Extension: inference energy, best baseline vs Het (uJ)",
		"Network", "GLB kB", "baseline uJ", "Het uJ", "reduction %")
	for _, c := range cells {
		t.Row(c.Model, c.SizeKB, c.BaselinePJ/1e6, c.HetPJ/1e6, c.ReductionPct)
	}
	return cells, t
}

// BatchCell is one batch size of the batching extension.
type BatchCell struct {
	Batch              int
	PerInputAccessElem int64
	FilterSharePct     float64 // share of traffic that is weights
}

// ExtBatch studies how batching amortises weight traffic for a
// filter-heavy model under the heterogeneous scheme.
func ExtBatch(s Setup, modelName string, glbKB int) ([]BatchCell, *report.Table) {
	n := mustBuiltin(modelName)
	batches := []int{1, 2, 4, 8, 16}
	cells := make([]BatchCell, len(batches))
	forEach(s, len(batches), func(i int) {
		pl := core.NewPlanner(glbKB, core.MinAccesses)
		pl.Cfg.Batch = batches[i]
		p := mustPlan(pl.Heterogeneous(n))
		var filter int64
		for j := range p.Layers {
			filter += p.Layers[j].Est.AccessFilter
		}
		total := p.AccessElems()
		cells[i] = BatchCell{
			Batch:              batches[i],
			PerInputAccessElem: total / int64(batches[i]),
			FilterSharePct:     100 * float64(filter) / float64(total),
		}
	})
	t := report.NewTable(
		fmt.Sprintf("Extension: batching on %s @%d kB (Het, per-input traffic)", modelName, glbKB),
		"batch", "elems/input", "filter share %")
	for _, c := range cells {
		t.Row(c.Batch, c.PerInputAccessElem, c.FilterSharePct)
	}
	return cells, t
}

// AblationCell is one (model, size) cell of the inter-layer DP-vs-greedy
// ablation.
type AblationCell struct {
	Model      string
	SizeKB     int
	DP, Greedy int64 // access elements
	DPGainPct  float64
}

// ExtInterLayerAblation compares the retention DP against the one-pass
// greedy rule.
func ExtInterLayerAblation(s Setup) ([]AblationCell, *report.Table) {
	models := model.BuiltinNames()
	sizes := s.sizes()
	cells := make([]AblationCell, len(models)*len(sizes))
	forEach(s, len(cells), func(i int) {
		name, kb := models[i/len(sizes)], sizes[i%len(sizes)]
		n := mustBuiltin(name)
		dpPl := core.NewPlanner(kb, core.MinAccesses)
		dpPl.InterLayer = true
		grPl := core.NewPlanner(kb, core.MinAccesses)
		grPl.InterLayer = true
		grPl.InterLayerGreedy = true
		dp := mustPlan(dpPl.Heterogeneous(n)).AccessElems()
		gr := mustPlan(grPl.Heterogeneous(n)).AccessElems()
		cells[i] = AblationCell{Model: name, SizeKB: kb, DP: dp, Greedy: gr,
			DPGainPct: stats.Benefit(gr, dp)}
	})
	t := report.NewTable("Ablation: inter-layer retention, DP vs greedy (access elements)",
		"Network", "GLB kB", "DP", "greedy", "DP gain %")
	for _, c := range cells {
		t.Row(c.Model, c.SizeKB, c.DP, c.Greedy, c.DPGainPct)
	}
	return cells, t
}

// TenancyCell is one co-tenant pair of the multi-tenancy extension.
type TenancyCell struct {
	Pair           string
	GLBKB          int
	BaselineHalf   int64 // each tenant on fixed-split buffers of half the GLB
	HetHalf        int64 // each tenant Het-planned on half the GLB (static partition)
	HetTimeShared  int64 // tenants time-share the full unified GLB per layer
	SharingGainPct float64
}

// ExtTenancy studies the paper's multi-tenancy motivation: two models
// co-resident on one accelerator. A static partition gives each tenant half
// the scratchpad for its whole run; the unified buffer with per-layer
// management instead lets whichever layer is executing use all of it
// (layers are time-multiplexed anyway). The gap between HetHalf and
// HetTimeShared is what flexible management buys multi-tenant deployments.
func ExtTenancy(s Setup, modelA, modelB string, glbKB int) (TenancyCell, *report.Table) {
	na, nb := mustBuiltin(modelA), mustBuiltin(modelB)
	traffic := func(n *model.Network, kb int) int64 {
		return mustPlan(core.NewPlanner(kb, core.MinAccesses).Heterogeneous(n)).AccessElems()
	}
	baseline := func(n *model.Network, kb int) int64 {
		_, b := baselineBest(n, kb, 8)
		return b
	}
	var cell TenancyCell
	results := parallel.Map(6, s.Workers, func(i int) int64 {
		switch i {
		case 0:
			return baseline(na, glbKB/2)
		case 1:
			return baseline(nb, glbKB/2)
		case 2:
			return traffic(na, glbKB/2)
		case 3:
			return traffic(nb, glbKB/2)
		case 4:
			return traffic(na, glbKB)
		default:
			return traffic(nb, glbKB)
		}
	})
	cell = TenancyCell{
		Pair:          modelA + "+" + modelB,
		GLBKB:         glbKB,
		BaselineHalf:  results[0] + results[1],
		HetHalf:       results[2] + results[3],
		HetTimeShared: results[4] + results[5],
	}
	cell.SharingGainPct = stats.Benefit(cell.HetHalf, cell.HetTimeShared)
	t := report.NewTable(
		fmt.Sprintf("Extension: multi-tenancy %s on a %d kB GLB (access elements)", cell.Pair, glbKB),
		"strategy", "accesses", "vs static Het %")
	t.Row("baseline splits, half GLB each", cell.BaselineHalf, stats.Benefit(cell.HetHalf, cell.BaselineHalf))
	t.Row("Het, static half-GLB partition", cell.HetHalf, 0.0)
	t.Row("Het, time-shared unified GLB", cell.HetTimeShared, cell.SharingGainPct)
	return cell, t
}

// DataflowCell is one (model, dataflow) cell of the dataflow-comparison
// extension.
type DataflowCell struct {
	Model   string
	Flow    string
	DRAMMB  float64
	MCycles float64
}

// ExtDataflow compares the three classic dataflows (paper §2.3 background)
// on the fixed 50-50 baseline at the given size: output-stationary wins on
// partial-sum traffic for deep convolutions, which is why both the paper's
// baseline and its own schemes use it.
func ExtDataflow(s Setup, glbKB int) ([]DataflowCell, *report.Table) {
	models := model.BuiltinNames()
	flows := []scalesim.Dataflow{scalesim.OutputStationary, scalesim.WeightStationary, scalesim.InputStationary}
	cells := make([]DataflowCell, len(models)*len(flows))
	forEach(s, len(cells), func(i int) {
		name, flow := models[i/len(flows)], flows[i%len(flows)]
		n := mustBuiltin(name)
		cfg := scalesim.Split("sa_50_50", glbKB, 50, 8)
		cfg.Flow = flow
		res, err := scalesim.SimulateNetwork(n, cfg)
		if err != nil {
			panic(err)
		}
		cells[i] = DataflowCell{
			Model:   name,
			Flow:    flow.String(),
			DRAMMB:  float64(res.DRAMBytes()) / (1 << 20),
			MCycles: float64(res.Cycles()) / 1e6,
		}
	})
	t := report.NewTable(
		fmt.Sprintf("Extension: baseline dataflow comparison @%d kB (sa_50_50)", glbKB),
		"Network", "dataflow", "DRAM MB", "Mcycles")
	for _, c := range cells {
		t.Row(c.Model, c.Flow, c.DRAMMB, c.MCycles)
	}
	return cells, t
}

// SensitivityCell is one hardware point of the co-design sensitivity sweep.
type SensitivityCell struct {
	ArrayDim        int // PEs per side (the paper uses 16)
	BWBytesPerCycle int
	BaselineMCycles float64
	HetLMCycles     float64
	ReductionPct    float64
}

// ExtSensitivity sweeps the accelerator design space around the paper's
// operating point (16x16 PEs, 16 B/cycle) in the spirit of the authors'
// RAINBOW co-design tool: how does the latency advantage of the managed
// unified buffer move with compute width and off-chip bandwidth? Off-chip
// traffic is unaffected (it depends only on the GLB size), so the sweep
// reports latency.
func ExtSensitivity(s Setup, modelName string, glbKB int) ([]SensitivityCell, *report.Table) {
	dims := []int{8, 16, 32}
	bws := []int{8, 16, 32}
	n := mustBuiltin(modelName)
	cells := make([]SensitivityCell, len(dims)*len(bws))
	forEach(s, len(cells), func(i int) {
		dim, bw := dims[i/len(bws)], bws[i%len(bws)]
		bcfg := scalesim.Split("sa_50_50", glbKB, 50, 8)
		bcfg.Rows, bcfg.Cols = dim, dim
		base, err := scalesim.SimulateNetwork(n, bcfg)
		if err != nil {
			panic(err)
		}
		pl := core.NewPlanner(glbKB, core.MinLatency)
		pl.Cfg.OpsPerCycle = 2 * dim * dim
		pl.Cfg.DRAMBytesPerCycle = bw
		het := mustPlan(pl.Heterogeneous(n))
		cells[i] = SensitivityCell{
			ArrayDim:        dim,
			BWBytesPerCycle: bw,
			BaselineMCycles: float64(base.Cycles()) / 1e6,
			HetLMCycles:     float64(het.LatencyCycles()) / 1e6,
			ReductionPct:    stats.Benefit(base.Cycles(), het.LatencyCycles()),
		}
	})
	t := report.NewTable(
		fmt.Sprintf("Extension: hardware sensitivity for %s @%d kB (latency)", modelName, glbKB),
		"array", "BW B/cyc", "baseline Mcyc", "Het_l Mcyc", "reduction %")
	for _, c := range cells {
		t.Row(fmt.Sprintf("%dx%d", c.ArrayDim, c.ArrayDim), c.BWBytesPerCycle,
			c.BaselineMCycles, c.HetLMCycles, c.ReductionPct)
	}
	return cells, t
}

// DSECell compares the heterogeneous policy plan against the exhaustive
// tile-size DSE optimum.
type DSECell struct {
	Model        string
	SizeKB       int
	Het, DSE     int64 // access elements
	GapPct       float64
	PlanMicros   int64 // heterogeneous planning time
	SearchMicros int64 // DSE search time
}

// ExtDSE quantifies how near-optimal the paper's six lightweight policies
// are: for every model it compares the Het plan's traffic against an
// exhaustive tiling search (the related-work approach) and reports both
// planning costs. This replays the paper's "minutes of estimation instead
// of hours of simulation" argument against DSE.
func ExtDSE(s Setup, glbKB int) ([]DSECell, *report.Table) {
	models := model.BuiltinNames()
	cells := make([]DSECell, len(models))
	forEach(s, len(models), func(i int) {
		n := mustBuiltin(models[i])
		cfg := policy.Default(glbKB)

		t0 := time.Now()
		het := mustPlan(core.NewPlanner(glbKB, core.MinAccesses).Heterogeneous(n))
		planT := time.Since(t0)

		t0 = time.Now()
		dseTotal, _ := dse.NetworkAccessElems(n, cfg)
		searchT := time.Since(t0)

		cells[i] = DSECell{
			Model: models[i], SizeKB: glbKB,
			Het: het.AccessElems(), DSE: dseTotal,
			GapPct:       100 * (float64(het.AccessElems())/float64(dseTotal) - 1),
			PlanMicros:   planT.Microseconds(),
			SearchMicros: searchT.Microseconds(),
		}
	})
	t := report.NewTable(
		fmt.Sprintf("Extension: Het vs exhaustive tiling DSE @%d kB", glbKB),
		"Network", "Het elems", "DSE elems", "gap %", "plan us", "DSE us")
	for _, c := range cells {
		t.Row(c.Model, c.Het, c.DSE, c.GapPct, c.PlanMicros, c.SearchMicros)
	}
	return cells, t
}

// SizingCell reports the smallest unified buffer with which a model reaches
// its once-per-element traffic minimum.
type SizingCell struct {
	Model        string
	NeedKB       float64
	BoundLayer   string
	BestTable3KB float64 // min over the Table-3 policy columns, for reference
}

// ExtSizing answers the designer question behind Table 3: how much unified
// scratchpad does each network need so that some policy moves every element
// exactly once on every layer? The binding layer is the network's
// worst-case; the per-policy Table 3 maxima upper-bound it (a heterogeneous
// choice can dodge each policy's worst layer).
func ExtSizing(s Setup) ([]SizingCell, *report.Table) {
	models := model.BuiltinNames()
	cells := make([]SizingCell, len(models))
	forEach(s, len(models), func(i int) {
		n := mustBuiltin(models[i])
		cfg := policy.Default(1 << 20) // size is irrelevant to the frontier
		var needB int64
		var bound string
		for j := range n.Layers {
			l := &n.Layers[j]
			b := policy.SmallestGLBForMinimum(l, cfg)
			if b > needB {
				needB, bound = b, l.Name
			}
		}
		cfg3 := cfg
		cfg3.IncludePadding = false
		best := policy.MaxMemoryKB(n.Layers, policy.P1IfmapReuse, cfg3)
		for _, id := range []policy.ID{policy.P2FilterReuse, policy.P3PerChannel} {
			if v := policy.MaxMemoryKB(n.Layers, id, cfg3); v < best {
				best = v
			}
		}
		cells[i] = SizingCell{
			Model:        models[i],
			NeedKB:       float64(needB) / 1024,
			BoundLayer:   bound,
			BestTable3KB: best,
		}
	})
	t := report.NewTable(
		"Extension: smallest GLB reaching minimum traffic (heterogeneous choice per layer)",
		"Network", "need kB", "binding layer", "best hom policy kB (Table 3)")
	for _, c := range cells {
		t.Row(c.Model, c.NeedKB, c.BoundLayer, c.BestTable3KB)
	}
	return cells, t
}

// ClassicCell extends the Figure-5 comparison to the pre-mobile classics.
type ClassicCell struct {
	Model        string
	SizeKB       int
	BaselineMB   float64
	HetMB        float64
	ReductionPct float64
}

// ExtClassics runs the headline comparison on AlexNet and VGG16 — networks
// outside the paper's set whose enormous FC weight tensors stress the
// weight-streaming policies instead of the activation-heavy mobile nets.
func ExtClassics(s Setup) ([]ClassicCell, *report.Table) {
	models := []string{"AlexNet", "VGG16"}
	sizes := s.sizes()
	cells := make([]ClassicCell, len(models)*len(sizes))
	forEach(s, len(cells), func(i int) {
		name, kb := models[i/len(sizes)], sizes[i%len(sizes)]
		n := mustBuiltin(name)
		_, base := baselineBest(n, kb, 8)
		het := mustPlan(core.NewPlanner(kb, core.MinAccesses).Heterogeneous(n))
		cells[i] = ClassicCell{
			Model: name, SizeKB: kb,
			BaselineMB:   float64(base) / (1 << 20),
			HetMB:        float64(het.AccessBytes()) / (1 << 20),
			ReductionPct: stats.Benefit(base, het.AccessBytes()),
		}
	})
	t := report.NewTable("Extension: the classics (outside the paper's model set)",
		"Network", "GLB kB", "best baseline MB", "Het MB", "reduction %")
	for _, c := range cells {
		t.Row(c.Model, c.SizeKB, c.BaselineMB, c.HetMB, c.ReductionPct)
	}
	return cells, t
}
