package experiments

import (
	"fmt"

	"scratchmem/internal/core"
	"scratchmem/internal/model"
	"scratchmem/internal/report"
	"scratchmem/internal/scalesim"
	"scratchmem/internal/stats"
)

// Fig5Cell is one (model, buffer size) cell of Figure 5: off-chip traffic
// in bytes for the three baselines and the two proposed schemes.
type Fig5Cell struct {
	Model     string
	SizeKB    int
	Baselines map[string]int64 // split name -> bytes
	Hom, Het  int64            // bytes
}

// Fig5 reproduces the off-chip access volumes across models and buffer
// sizes: three fixed-split baselines against the best homogeneous and the
// heterogeneous scheme (access objective).
func Fig5(s Setup) ([]Fig5Cell, *report.Table) {
	models := model.BuiltinNames()
	sizes := s.sizes()
	cells := make([]Fig5Cell, len(models)*len(sizes))
	forEach(s, len(cells), func(i int) {
		m, kb := models[i/len(sizes)], sizes[i%len(sizes)]
		n := mustBuiltin(m)
		cell := Fig5Cell{Model: m, SizeKB: kb, Baselines: map[string]int64{}}
		for _, c := range scalesim.PaperSplits(kb, 8) {
			r, err := scalesim.SimulateNetwork(n, c)
			if err != nil {
				panic(err)
			}
			cell.Baselines[c.Name] = r.DRAMBytes()
		}
		pl := core.NewPlanner(kb, core.MinAccesses)
		cell.Hom = mustPlan(pl.BestHomogeneous(n)).AccessBytes()
		cell.Het = mustPlan(pl.Heterogeneous(n)).AccessBytes()
		cells[i] = cell
	})
	t := report.NewTable("Figure 5: off-chip memory accesses (MB)",
		"Network", "GLB kB", "sa_25_75", "sa_50_50", "sa_75_25", "Hom", "Het", "Het vs best-sa %")
	for _, c := range cells {
		best := c.Baselines["sa_25_75"]
		for _, v := range c.Baselines {
			if v < best {
				best = v
			}
		}
		t.Row(c.Model, c.SizeKB,
			mb(c.Baselines["sa_25_75"]), mb(c.Baselines["sa_50_50"]), mb(c.Baselines["sa_75_25"]),
			mb(c.Hom), mb(c.Het), stats.Benefit(best, c.Het))
	}
	return cells, t
}

func mb(b int64) float64 { return float64(b) / (1024 * 1024) }

// Fig7Cell is one (width, size) cell of Figure 7: the benefit of Het over
// Hom for MobileNetV2.
type Fig7Cell struct {
	WidthBits, SizeKB int
	Hom, Het          int64 // access elements
	BenefitPct        float64
}

// Fig7 reproduces the data-width study: Het's access reduction over Hom for
// MobileNetV2 across data widths, where wider elements squeeze the GLB.
func Fig7(s Setup) ([]Fig7Cell, *report.Table) {
	widths := []int{8, 16, 32}
	sizes := s.sizes()
	n := mustBuiltin("MobileNetV2")
	cells := make([]Fig7Cell, len(widths)*len(sizes))
	forEach(s, len(cells), func(i int) {
		w, kb := widths[i/len(sizes)], sizes[i%len(sizes)]
		pl := core.NewPlanner(kb, core.MinAccesses)
		pl.Cfg.DataWidthBits = w
		hom := mustPlan(pl.BestHomogeneous(n)).AccessElems()
		het := mustPlan(pl.Heterogeneous(n)).AccessElems()
		cells[i] = Fig7Cell{WidthBits: w, SizeKB: kb, Hom: hom, Het: het,
			BenefitPct: stats.Benefit(hom, het)}
	})
	t := report.NewTable("Figure 7: Het-over-Hom access benefit for MobileNetV2 (%)",
		"Width", "GLB kB", "Hom Melem", "Het Melem", "Benefit %")
	for _, c := range cells {
		t.Row(fmt.Sprintf("%d-bit", c.WidthBits), c.SizeKB,
			float64(c.Hom)/1e6, float64(c.Het)/1e6, c.BenefitPct)
	}
	return cells, t
}

// Fig8Cell is one (model, size) cell of Figure 8: latency in cycles for the
// zero-stall baseline and the four proposed scheme variants.
type Fig8Cell struct {
	Model                  string
	SizeKB                 int
	Baseline               int64
	HomA, HetA, HomL, HetL int64
}

// Fig8 reproduces the inference-latency comparison: the buffer-independent
// zero-stall baseline against Hom/Het optimised for accesses (suffix _a)
// and for latency (suffix _l).
func Fig8(s Setup) ([]Fig8Cell, *report.Table) {
	models := model.BuiltinNames()
	sizes := s.sizes()
	cells := make([]Fig8Cell, len(models)*len(sizes))
	forEach(s, len(cells), func(i int) {
		m, kb := models[i/len(sizes)], sizes[i%len(sizes)]
		n := mustBuiltin(m)
		base, err := scalesim.SimulateNetwork(n, scalesim.Split("sa_50_50", kb, 50, 8))
		if err != nil {
			panic(err)
		}
		plA := core.NewPlanner(kb, core.MinAccesses)
		plL := core.NewPlanner(kb, core.MinLatency)
		cells[i] = Fig8Cell{
			Model: m, SizeKB: kb,
			Baseline: base.Cycles(),
			HomA:     mustPlan(plA.BestHomogeneous(n)).LatencyCycles(),
			HetA:     mustPlan(plA.Heterogeneous(n)).LatencyCycles(),
			HomL:     mustPlan(plL.BestHomogeneous(n)).LatencyCycles(),
			HetL:     mustPlan(plL.Heterogeneous(n)).LatencyCycles(),
		}
	})
	t := report.NewTable("Figure 8: inference latency (Mcycles)",
		"Network", "GLB kB", "baseline", "Hom_a", "Het_a", "Hom_l", "Het_l", "Het_l vs base %")
	for _, c := range cells {
		t.Row(c.Model, c.SizeKB, mc(c.Baseline), mc(c.HomA), mc(c.HetA), mc(c.HomL), mc(c.HetL),
			stats.Benefit(c.Baseline, c.HetL))
	}
	return cells, t
}

func mc(cycles int64) float64 { return float64(cycles) / 1e6 }

// Fig9Cell is one model of Figure 9: the benefit (positive) or penalty
// (negative) in accesses and latency of Het optimised for latency relative
// to Het optimised for accesses, at a fixed GLB size.
type Fig9Cell struct {
	Model                    string
	AccessBenefitPct         float64
	LatencyBenefitPct        float64
	HetAAccess, HetLAccess   int64
	HetALatency, HetLLatency int64
}

// Fig9 reproduces the accesses-vs-latency trade-off at the given size
// (64 kB in the paper).
func Fig9(s Setup, glbKB int) ([]Fig9Cell, *report.Table) {
	models := model.BuiltinNames()
	cells := make([]Fig9Cell, len(models))
	forEach(s, len(models), func(i int) {
		n := mustBuiltin(models[i])
		pa := mustPlan(core.NewPlanner(glbKB, core.MinAccesses).Heterogeneous(n))
		pl := mustPlan(core.NewPlanner(glbKB, core.MinLatency).Heterogeneous(n))
		cells[i] = Fig9Cell{
			Model:             models[i],
			AccessBenefitPct:  stats.Benefit(pa.AccessElems(), pl.AccessElems()),
			LatencyBenefitPct: stats.Benefit(pa.LatencyCycles(), pl.LatencyCycles()),
			HetAAccess:        pa.AccessElems(), HetLAccess: pl.AccessElems(),
			HetALatency: pa.LatencyCycles(), HetLLatency: pl.LatencyCycles(),
		}
	})
	t := report.NewTable(
		fmt.Sprintf("Figure 9: Het_l vs Het_a benefit at %d kB (negative = penalty)", glbKB),
		"Network", "accesses %", "latency %")
	for _, c := range cells {
		t.Row(c.Model, c.AccessBenefitPct, c.LatencyBenefitPct)
	}
	return cells, t
}

// Fig10Cell is one buffer size of Figure 10: prefetching enabled vs
// disabled for the latency-optimised Het scheme.
type Fig10Cell struct {
	SizeKB            int
	AccessBenefitPct  float64
	LatencyBenefitPct float64
	CoveragePct       float64
}

// Fig10 reproduces the prefetching ablation on the given model (MobileNet
// in the paper).
func Fig10(s Setup, modelName string) ([]Fig10Cell, *report.Table) {
	sizes := s.sizes()
	n := mustBuiltin(modelName)
	cells := make([]Fig10Cell, len(sizes))
	forEach(s, len(sizes), func(i int) {
		kb := sizes[i]
		with := core.NewPlanner(kb, core.MinLatency)
		without := core.NewPlanner(kb, core.MinLatency)
		without.DisablePrefetch = true
		pw := mustPlan(with.Heterogeneous(n))
		pwo := mustPlan(without.Heterogeneous(n))
		cells[i] = Fig10Cell{
			SizeKB:            kb,
			AccessBenefitPct:  stats.Benefit(pwo.AccessElems(), pw.AccessElems()),
			LatencyBenefitPct: stats.Benefit(pwo.LatencyCycles(), pw.LatencyCycles()),
			CoveragePct:       stats.Percent(pw.PrefetchCoverage()),
		}
	})
	t := report.NewTable(
		fmt.Sprintf("Figure 10: prefetching on/off for %s (negative = penalty)", modelName),
		"GLB kB", "accesses %", "latency %", "coverage %")
	for _, c := range cells {
		t.Row(c.SizeKB, c.AccessBenefitPct, c.LatencyBenefitPct, c.CoveragePct)
	}
	return cells, t
}

// Fig11Cell is one buffer size of Figure 11: inter-layer reuse enabled vs
// disabled for the access-optimised Het scheme.
type Fig11Cell struct {
	SizeKB            int
	AccessBenefitPct  float64
	LatencyBenefitPct float64
	CoveragePct       float64
}

// Fig11 reproduces the inter-layer-reuse study on the given model (MnasNet
// in the paper) and additionally reports the geometric-mean benefit across
// all six models at the largest size, as §5.4 does.
func Fig11(s Setup, modelName string) ([]Fig11Cell, *report.Table, *report.Table) {
	sizes := s.sizes()
	n := mustBuiltin(modelName)
	cells := make([]Fig11Cell, len(sizes))
	forEach(s, len(sizes), func(i int) {
		kb := sizes[i]
		base := core.NewPlanner(kb, core.MinAccesses)
		inter := core.NewPlanner(kb, core.MinAccesses)
		inter.InterLayer = true
		pb := mustPlan(base.Heterogeneous(n))
		pi := mustPlan(inter.Heterogeneous(n))
		cells[i] = Fig11Cell{
			SizeKB:            kb,
			AccessBenefitPct:  stats.Benefit(pb.AccessElems(), pi.AccessElems()),
			LatencyBenefitPct: stats.Benefit(pb.LatencyCycles(), pi.LatencyCycles()),
			CoveragePct:       stats.Percent(pi.InterLayerCoverage()),
		}
	})
	t := report.NewTable(
		fmt.Sprintf("Figure 11: inter-layer reuse on/off for %s", modelName),
		"GLB kB", "accesses %", "latency %", "coverage %")
	for _, c := range cells {
		t.Row(c.SizeKB, c.AccessBenefitPct, c.LatencyBenefitPct, c.CoveragePct)
	}

	// Geometric mean across all models at the largest size.
	big := sizes[len(sizes)-1]
	models := model.BuiltinNames()
	baseAcc := make([]int64, len(models))
	interAcc := make([]int64, len(models))
	baseLat := make([]int64, len(models))
	interLat := make([]int64, len(models))
	forEach(s, len(models), func(i int) {
		nn := mustBuiltin(models[i])
		pb := mustPlan(core.NewPlanner(big, core.MinAccesses).Heterogeneous(nn))
		ipl := core.NewPlanner(big, core.MinAccesses)
		ipl.InterLayer = true
		pi := mustPlan(ipl.Heterogeneous(nn))
		baseAcc[i], interAcc[i] = pb.AccessElems(), pi.AccessElems()
		baseLat[i], interLat[i] = pb.LatencyCycles(), pi.LatencyCycles()
	})
	g := report.NewTable(fmt.Sprintf("Figure 11b: geomean inter-layer benefit at %d kB, all models", big),
		"metric", "geomean benefit %")
	g.Row("accesses", stats.Percent(stats.GeoMeanReduction(baseAcc, interAcc)))
	g.Row("latency", stats.Percent(stats.GeoMeanReduction(baseLat, interLat)))
	return cells, t, g
}

// Headline summarises the paper's headline claims against this
// implementation: the maximum access reduction at the smallest buffer and
// the maximum latency reduction anywhere.
type Headline struct {
	MaxAccessReductionPct  float64
	MaxAccessModel         string
	MaxLatencyReductionPct float64
	MaxLatencyModel        string
	MaxLatencySizeKB       int
}

// Headlines computes the abstract's headline numbers from the Fig5/Fig8
// cell data.
func Headlines(f5 []Fig5Cell, f8 []Fig8Cell) (Headline, *report.Table) {
	var h Headline
	minSize := 0
	for _, c := range f5 {
		if minSize == 0 || c.SizeKB < minSize {
			minSize = c.SizeKB
		}
	}
	for _, c := range f5 {
		if c.SizeKB != minSize {
			continue
		}
		best := int64(0)
		for _, v := range c.Baselines {
			if best == 0 || v < best {
				best = v
			}
		}
		if r := stats.Benefit(best, c.Het); r > h.MaxAccessReductionPct {
			h.MaxAccessReductionPct, h.MaxAccessModel = r, c.Model
		}
	}
	for _, c := range f8 {
		if r := stats.Benefit(c.Baseline, c.HetL); r > h.MaxLatencyReductionPct {
			h.MaxLatencyReductionPct, h.MaxLatencyModel, h.MaxLatencySizeKB = r, c.Model, c.SizeKB
		}
	}
	t := report.NewTable("Headline results (paper: up to 80% accesses, up to 56% latency)",
		"metric", "value", "where")
	t.Row("max access reduction %", h.MaxAccessReductionPct,
		fmt.Sprintf("%s @%dkB", h.MaxAccessModel, minSize))
	t.Row("max latency reduction %", h.MaxLatencyReductionPct,
		fmt.Sprintf("%s @%dkB", h.MaxLatencyModel, h.MaxLatencySizeKB))
	return h, t
}
