package experiments

import (
	"context"
	"fmt"

	"scratchmem/internal/core"
	"scratchmem/internal/model"
	"scratchmem/internal/progress"
	"scratchmem/internal/report"
	"scratchmem/internal/scalesim"
	"scratchmem/internal/stats"
)

// Fig5Cell is one (model, buffer size) cell of Figure 5: off-chip traffic
// in bytes for the three baselines and the two proposed schemes.
type Fig5Cell struct {
	Model     string
	SizeKB    int
	Baselines map[string]int64 // split name -> bytes
	Hom, Het  int64            // bytes
}

// Fig5 reproduces the off-chip access volumes across models and buffer
// sizes: three fixed-split baselines against the best homogeneous and the
// heterogeneous scheme (access objective).
func Fig5(s Setup) ([]Fig5Cell, *report.Table) {
	cells, t, err := Fig5Ctx(context.Background(), s, nil)
	mustCells(err)
	return cells, t
}

// Fig5Ctx is Fig5 with cancellation and per-cell progress events ("fig5").
func Fig5Ctx(ctx context.Context, s Setup, prog progress.Func) ([]Fig5Cell, *report.Table, error) {
	models := model.BuiltinNames()
	sizes := s.sizes()
	nets := builtinsByName(models)
	cells := make([]Fig5Cell, len(models)*len(sizes))
	err := forEachCtx(ctx, s, len(cells), func(ctx context.Context, i int) error {
		m, kb := models[i/len(sizes)], sizes[i%len(sizes)]
		n := nets[i/len(sizes)]
		cell := Fig5Cell{Model: m, SizeKB: kb, Baselines: map[string]int64{}}
		for _, c := range scalesim.PaperSplits(kb, 8) {
			r, err := scalesim.SimulateNetworkCtx(ctx, n, c, nil)
			if err != nil {
				return err
			}
			cell.Baselines[c.Name] = r.DRAMBytes()
		}
		pl := core.NewPlanner(kb, core.MinAccesses)
		hom, err := pl.BestHomogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		het, err := pl.HeterogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		cell.Hom, cell.Het = hom.AccessBytes(), het.AccessBytes()
		cells[i] = cell
		cellDone(prog, "fig5", i, len(cells), fmt.Sprintf("%s@%dkB", m, kb))
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable("Figure 5: off-chip memory accesses (MB)",
		"Network", "GLB kB", "sa_25_75", "sa_50_50", "sa_75_25", "Hom", "Het", "Het vs best-sa %")
	for _, c := range cells {
		best := c.Baselines["sa_25_75"]
		for _, v := range c.Baselines {
			if v < best {
				best = v
			}
		}
		t.Row(c.Model, c.SizeKB,
			mb(c.Baselines["sa_25_75"]), mb(c.Baselines["sa_50_50"]), mb(c.Baselines["sa_75_25"]),
			mb(c.Hom), mb(c.Het), stats.Benefit(best, c.Het))
	}
	return cells, t, nil
}

func mb(b int64) float64 { return float64(b) / (1024 * 1024) }

// Fig7Cell is one (width, size) cell of Figure 7: the benefit of Het over
// Hom for MobileNetV2.
type Fig7Cell struct {
	WidthBits, SizeKB int
	Hom, Het          int64 // access elements
	BenefitPct        float64
}

// Fig7 reproduces the data-width study: Het's access reduction over Hom for
// MobileNetV2 across data widths, where wider elements squeeze the GLB.
func Fig7(s Setup) ([]Fig7Cell, *report.Table) {
	cells, t, err := Fig7Ctx(context.Background(), s, nil)
	mustCells(err)
	return cells, t
}

// Fig7Ctx is Fig7 with cancellation and per-cell progress events ("fig7").
func Fig7Ctx(ctx context.Context, s Setup, prog progress.Func) ([]Fig7Cell, *report.Table, error) {
	widths := []int{8, 16, 32}
	sizes := s.sizes()
	n := mustBuiltin("MobileNetV2")
	cells := make([]Fig7Cell, len(widths)*len(sizes))
	err := forEachCtx(ctx, s, len(cells), func(ctx context.Context, i int) error {
		w, kb := widths[i/len(sizes)], sizes[i%len(sizes)]
		pl := core.NewPlanner(kb, core.MinAccesses)
		pl.Cfg.DataWidthBits = w
		homPlan, err := pl.BestHomogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		hetPlan, err := pl.HeterogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		hom, het := homPlan.AccessElems(), hetPlan.AccessElems()
		cells[i] = Fig7Cell{WidthBits: w, SizeKB: kb, Hom: hom, Het: het,
			BenefitPct: stats.Benefit(hom, het)}
		cellDone(prog, "fig7", i, len(cells), fmt.Sprintf("%d-bit@%dkB", w, kb))
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable("Figure 7: Het-over-Hom access benefit for MobileNetV2 (%)",
		"Width", "GLB kB", "Hom Melem", "Het Melem", "Benefit %")
	for _, c := range cells {
		t.Row(fmt.Sprintf("%d-bit", c.WidthBits), c.SizeKB,
			float64(c.Hom)/1e6, float64(c.Het)/1e6, c.BenefitPct)
	}
	return cells, t, nil
}

// Fig8Cell is one (model, size) cell of Figure 8: latency in cycles for the
// zero-stall baseline and the four proposed scheme variants.
type Fig8Cell struct {
	Model                  string
	SizeKB                 int
	Baseline               int64
	HomA, HetA, HomL, HetL int64
}

// Fig8 reproduces the inference-latency comparison: the buffer-independent
// zero-stall baseline against Hom/Het optimised for accesses (suffix _a)
// and for latency (suffix _l).
func Fig8(s Setup) ([]Fig8Cell, *report.Table) {
	cells, t, err := Fig8Ctx(context.Background(), s, nil)
	mustCells(err)
	return cells, t
}

// Fig8Ctx is Fig8 with cancellation and per-cell progress events ("fig8").
func Fig8Ctx(ctx context.Context, s Setup, prog progress.Func) ([]Fig8Cell, *report.Table, error) {
	models := model.BuiltinNames()
	sizes := s.sizes()
	nets := builtinsByName(models)
	cells := make([]Fig8Cell, len(models)*len(sizes))
	err := forEachCtx(ctx, s, len(cells), func(ctx context.Context, i int) error {
		m, kb := models[i/len(sizes)], sizes[i%len(sizes)]
		n := nets[i/len(sizes)]
		base, err := scalesim.SimulateNetworkCtx(ctx, n, scalesim.Split("sa_50_50", kb, 50, 8), nil)
		if err != nil {
			return err
		}
		// Both planners share one estimate memo: candidate sweeps are
		// cached under both objectives at once, so the latency-optimised
		// pair answers mostly from the access-optimised pair's work.
		plA := core.NewPlanner(kb, core.MinAccesses)
		plL := core.NewPlanner(kb, core.MinLatency)
		plL.UseMemo(plA.Memo)
		cell := Fig8Cell{Model: m, SizeKB: kb, Baseline: base.Cycles()}
		for _, p := range []struct {
			dst *int64
			run func() (*core.Plan, error)
		}{
			{&cell.HomA, func() (*core.Plan, error) { return plA.BestHomogeneousCtx(ctx, n, nil) }},
			{&cell.HetA, func() (*core.Plan, error) { return plA.HeterogeneousCtx(ctx, n, nil) }},
			{&cell.HomL, func() (*core.Plan, error) { return plL.BestHomogeneousCtx(ctx, n, nil) }},
			{&cell.HetL, func() (*core.Plan, error) { return plL.HeterogeneousCtx(ctx, n, nil) }},
		} {
			plan, err := p.run()
			if err != nil {
				return err
			}
			*p.dst = plan.LatencyCycles()
		}
		cells[i] = cell
		cellDone(prog, "fig8", i, len(cells), fmt.Sprintf("%s@%dkB", m, kb))
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable("Figure 8: inference latency (Mcycles)",
		"Network", "GLB kB", "baseline", "Hom_a", "Het_a", "Hom_l", "Het_l", "Het_l vs base %")
	for _, c := range cells {
		t.Row(c.Model, c.SizeKB, mc(c.Baseline), mc(c.HomA), mc(c.HetA), mc(c.HomL), mc(c.HetL),
			stats.Benefit(c.Baseline, c.HetL))
	}
	return cells, t, nil
}

func mc(cycles int64) float64 { return float64(cycles) / 1e6 }

// Fig9Cell is one model of Figure 9: the benefit (positive) or penalty
// (negative) in accesses and latency of Het optimised for latency relative
// to Het optimised for accesses, at a fixed GLB size.
type Fig9Cell struct {
	Model                    string
	AccessBenefitPct         float64
	LatencyBenefitPct        float64
	HetAAccess, HetLAccess   int64
	HetALatency, HetLLatency int64
}

// Fig9 reproduces the accesses-vs-latency trade-off at the given size
// (64 kB in the paper).
func Fig9(s Setup, glbKB int) ([]Fig9Cell, *report.Table) {
	cells, t, err := Fig9Ctx(context.Background(), s, glbKB, nil)
	mustCells(err)
	return cells, t
}

// Fig9Ctx is Fig9 with cancellation and per-cell progress events ("fig9").
func Fig9Ctx(ctx context.Context, s Setup, glbKB int, prog progress.Func) ([]Fig9Cell, *report.Table, error) {
	models := model.BuiltinNames()
	cells := make([]Fig9Cell, len(models))
	err := forEachCtx(ctx, s, len(models), func(ctx context.Context, i int) error {
		n := mustBuiltin(models[i])
		pla := core.NewPlanner(glbKB, core.MinAccesses)
		pll := core.NewPlanner(glbKB, core.MinLatency)
		pll.UseMemo(pla.Memo) // one sweep serves both objectives
		pa, err := pla.HeterogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		pl, err := pll.HeterogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		cells[i] = Fig9Cell{
			Model:             models[i],
			AccessBenefitPct:  stats.Benefit(pa.AccessElems(), pl.AccessElems()),
			LatencyBenefitPct: stats.Benefit(pa.LatencyCycles(), pl.LatencyCycles()),
			HetAAccess:        pa.AccessElems(), HetLAccess: pl.AccessElems(),
			HetALatency: pa.LatencyCycles(), HetLLatency: pl.LatencyCycles(),
		}
		cellDone(prog, "fig9", i, len(cells), models[i])
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 9: Het_l vs Het_a benefit at %d kB (negative = penalty)", glbKB),
		"Network", "accesses %", "latency %")
	for _, c := range cells {
		t.Row(c.Model, c.AccessBenefitPct, c.LatencyBenefitPct)
	}
	return cells, t, nil
}

// Fig10Cell is one buffer size of Figure 10: prefetching enabled vs
// disabled for the latency-optimised Het scheme.
type Fig10Cell struct {
	SizeKB            int
	AccessBenefitPct  float64
	LatencyBenefitPct float64
	CoveragePct       float64
}

// Fig10 reproduces the prefetching ablation on the given model (MobileNet
// in the paper).
func Fig10(s Setup, modelName string) ([]Fig10Cell, *report.Table) {
	cells, t, err := Fig10Ctx(context.Background(), s, modelName, nil)
	mustCells(err)
	return cells, t
}

// Fig10Ctx is Fig10 with cancellation and per-cell progress events
// ("fig10").
func Fig10Ctx(ctx context.Context, s Setup, modelName string, prog progress.Func) ([]Fig10Cell, *report.Table, error) {
	sizes := s.sizes()
	n := mustBuiltin(modelName)
	cells := make([]Fig10Cell, len(sizes))
	err := forEachCtx(ctx, s, len(sizes), func(ctx context.Context, i int) error {
		kb := sizes[i]
		with := core.NewPlanner(kb, core.MinLatency)
		without := core.NewPlanner(kb, core.MinLatency)
		without.UseMemo(with.Memo) // DisablePrefetch is part of the cache key
		without.DisablePrefetch = true
		pw, err := with.HeterogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		pwo, err := without.HeterogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		cells[i] = Fig10Cell{
			SizeKB:            kb,
			AccessBenefitPct:  stats.Benefit(pwo.AccessElems(), pw.AccessElems()),
			LatencyBenefitPct: stats.Benefit(pwo.LatencyCycles(), pw.LatencyCycles()),
			CoveragePct:       stats.Percent(pw.PrefetchCoverage()),
		}
		cellDone(prog, "fig10", i, len(cells), fmt.Sprintf("%dkB", kb))
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 10: prefetching on/off for %s (negative = penalty)", modelName),
		"GLB kB", "accesses %", "latency %", "coverage %")
	for _, c := range cells {
		t.Row(c.SizeKB, c.AccessBenefitPct, c.LatencyBenefitPct, c.CoveragePct)
	}
	return cells, t, nil
}

// Fig11Cell is one buffer size of Figure 11: inter-layer reuse enabled vs
// disabled for the access-optimised Het scheme.
type Fig11Cell struct {
	SizeKB            int
	AccessBenefitPct  float64
	LatencyBenefitPct float64
	CoveragePct       float64
}

// Fig11 reproduces the inter-layer-reuse study on the given model (MnasNet
// in the paper) and additionally reports the geometric-mean benefit across
// all six models at the largest size, as §5.4 does.
func Fig11(s Setup, modelName string) ([]Fig11Cell, *report.Table, *report.Table) {
	cells, t, g, err := Fig11Ctx(context.Background(), s, modelName, nil)
	mustCells(err)
	return cells, t, g
}

// Fig11Ctx is Fig11 with cancellation and per-cell progress events
// ("fig11").
func Fig11Ctx(ctx context.Context, s Setup, modelName string, prog progress.Func) ([]Fig11Cell, *report.Table, *report.Table, error) {
	sizes := s.sizes()
	n := mustBuiltin(modelName)
	cells := make([]Fig11Cell, len(sizes))
	err := forEachCtx(ctx, s, len(sizes), func(ctx context.Context, i int) error {
		kb := sizes[i]
		base := core.NewPlanner(kb, core.MinAccesses)
		inter := core.NewPlanner(kb, core.MinAccesses)
		// The DP probes every (resident, keep) variant; the independent
		// pass only (false, false) — shared cache, disjoint-or-equal keys.
		inter.UseMemo(base.Memo)
		inter.InterLayer = true
		pb, err := base.HeterogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		pi, err := inter.HeterogeneousCtx(ctx, n, nil)
		if err != nil {
			return err
		}
		cells[i] = Fig11Cell{
			SizeKB:            kb,
			AccessBenefitPct:  stats.Benefit(pb.AccessElems(), pi.AccessElems()),
			LatencyBenefitPct: stats.Benefit(pb.LatencyCycles(), pi.LatencyCycles()),
			CoveragePct:       stats.Percent(pi.InterLayerCoverage()),
		}
		cellDone(prog, "fig11", i, len(cells), fmt.Sprintf("%dkB", kb))
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 11: inter-layer reuse on/off for %s", modelName),
		"GLB kB", "accesses %", "latency %", "coverage %")
	for _, c := range cells {
		t.Row(c.SizeKB, c.AccessBenefitPct, c.LatencyBenefitPct, c.CoveragePct)
	}

	// Geometric mean across all models at the largest size.
	big := sizes[len(sizes)-1]
	models := model.BuiltinNames()
	baseAcc := make([]int64, len(models))
	interAcc := make([]int64, len(models))
	baseLat := make([]int64, len(models))
	interLat := make([]int64, len(models))
	if err := forEachCtx(ctx, s, len(models), func(ctx context.Context, i int) error {
		nn := mustBuiltin(models[i])
		bpl := core.NewPlanner(big, core.MinAccesses)
		pb, err := bpl.HeterogeneousCtx(ctx, nn, nil)
		if err != nil {
			return err
		}
		ipl := core.NewPlanner(big, core.MinAccesses)
		ipl.UseMemo(bpl.Memo)
		ipl.InterLayer = true
		pi, err := ipl.HeterogeneousCtx(ctx, nn, nil)
		if err != nil {
			return err
		}
		baseAcc[i], interAcc[i] = pb.AccessElems(), pi.AccessElems()
		baseLat[i], interLat[i] = pb.LatencyCycles(), pi.LatencyCycles()
		cellDone(prog, "fig11", len(cells)+i, len(cells)+len(models), models[i])
		return nil
	}); err != nil {
		return nil, nil, nil, err
	}
	g := report.NewTable(fmt.Sprintf("Figure 11b: geomean inter-layer benefit at %d kB, all models", big),
		"metric", "geomean benefit %")
	g.Row("accesses", stats.Percent(stats.GeoMeanReduction(baseAcc, interAcc)))
	g.Row("latency", stats.Percent(stats.GeoMeanReduction(baseLat, interLat)))
	return cells, t, g, nil
}

// Headline summarises the paper's headline claims against this
// implementation: the maximum access reduction at the smallest buffer and
// the maximum latency reduction anywhere.
type Headline struct {
	MaxAccessReductionPct  float64
	MaxAccessModel         string
	MaxLatencyReductionPct float64
	MaxLatencyModel        string
	MaxLatencySizeKB       int
}

// Headlines computes the abstract's headline numbers from the Fig5/Fig8
// cell data.
func Headlines(f5 []Fig5Cell, f8 []Fig8Cell) (Headline, *report.Table) {
	var h Headline
	minSize := 0
	for _, c := range f5 {
		if minSize == 0 || c.SizeKB < minSize {
			minSize = c.SizeKB
		}
	}
	for _, c := range f5 {
		if c.SizeKB != minSize {
			continue
		}
		best := int64(0)
		for _, v := range c.Baselines {
			if best == 0 || v < best {
				best = v
			}
		}
		if r := stats.Benefit(best, c.Het); r > h.MaxAccessReductionPct {
			h.MaxAccessReductionPct, h.MaxAccessModel = r, c.Model
		}
	}
	for _, c := range f8 {
		if r := stats.Benefit(c.Baseline, c.HetL); r > h.MaxLatencyReductionPct {
			h.MaxLatencyReductionPct, h.MaxLatencyModel, h.MaxLatencySizeKB = r, c.Model, c.SizeKB
		}
	}
	t := report.NewTable("Headline results (paper: up to 80% accesses, up to 56% latency)",
		"metric", "value", "where")
	t.Row("max access reduction %", h.MaxAccessReductionPct,
		fmt.Sprintf("%s @%dkB", h.MaxAccessModel, minSize))
	t.Row("max latency reduction %", h.MaxLatencyReductionPct,
		fmt.Sprintf("%s @%dkB", h.MaxLatencyModel, h.MaxLatencySizeKB))
	return h, t
}
