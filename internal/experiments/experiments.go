// Package experiments regenerates every table and figure of the paper's
// evaluation (§4-§5): the model inventory (Table 2), policy memory maxima
// (Table 3), chosen policy mixes (Table 4), the ResNet18 memory breakdown
// (Figure 3), off-chip access volumes against the SCALE-Sim baseline
// (Figure 5), the heterogeneous-scheme allocation anatomy (Figure 6), the
// data-width study (Figure 7), latency (Figure 8), the accesses-vs-latency
// trade-off (Figure 9), the prefetching ablation (Figure 10) and
// inter-layer reuse (Figure 11). Each driver returns structured data plus a
// rendered table so the CLI, the benchmarks and the tests share one code
// path.
package experiments

import (
	"context"
	"fmt"

	"scratchmem/internal/core"
	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/parallel"
	"scratchmem/internal/policy"
	"scratchmem/internal/progress"
	"scratchmem/internal/report"
	"scratchmem/internal/scalesim"
)

// PaperSizesKB are the GLB sizes of the paper's experimental setup.
var PaperSizesKB = []int{64, 128, 256, 512, 1024}

// Setup parameterises the experiment drivers.
type Setup struct {
	// SizesKB are the GLB sizes to sweep (defaults to PaperSizesKB).
	SizesKB []int
	// Workers bounds the fan-out concurrency (0 = GOMAXPROCS).
	Workers int
}

// DefaultSetup returns the paper's configuration.
func DefaultSetup() Setup { return Setup{SizesKB: PaperSizesKB} }

func (s Setup) sizes() []int {
	if len(s.SizesKB) == 0 {
		return PaperSizesKB
	}
	return s.SizesKB
}

// mustBuiltin panics on an unknown model name; experiment drivers only use
// the six built-ins.
func mustBuiltin(name string) *model.Network {
	n, err := model.Builtin(name)
	if err != nil {
		panic(err)
	}
	return n
}

// builtinsByName materialises the named built-ins once, so cell loops that
// fan out over (model, size) grids share one read-only network per model
// instead of rebuilding it in every cell.
func builtinsByName(names []string) []*model.Network {
	out := make([]*model.Network, len(names))
	for i, name := range names {
		out[i] = mustBuiltin(name)
	}
	return out
}

func mustPlan(p *core.Plan, err error) *core.Plan {
	if err != nil {
		panic(fmt.Sprintf("experiments: planning failed: %v", err))
	}
	return p
}

// Table2 reproduces the model inventory.
func Table2() *report.Table {
	t := report.NewTable("Table 2: DL models studied", "Network", "Layers", "Types")
	for _, n := range model.Builtins() {
		types := ""
		for i, k := range n.Types() {
			if i > 0 {
				types += ", "
			}
			types += k.String()
		}
		t.Row(n.Name, len(n.Layers), types)
	}
	return t
}

// Table3Data holds the per-model maxima in kB for the minimal-transfer
// policies.
type Table3Data struct {
	Model             string
	Intra, P1, P2, P3 float64
}

// Table3 reproduces the maximum memory requirements of the policies where
// every element moves once. Following the paper's own accounting (see
// DESIGN.md §2) ifmaps are unpadded here; note the paper's printed "Policy
// 1"/"Policy 3" columns are swapped relative to its §3.2 definitions, and
// this table uses the definitions.
func Table3() ([]Table3Data, *report.Table) {
	cfg := policy.Default(1024)
	cfg.IncludePadding = false
	t := report.NewTable(
		"Table 3: max memory (kB) for single-transfer policies (text definitions; the paper's printed P1/P3 columns are swapped)",
		"Network", "intra-layer", "policy 1", "policy 2", "policy 3")
	var data []Table3Data
	for _, n := range model.Builtins() {
		d := Table3Data{
			Model: n.Name,
			Intra: policy.MaxMemoryKB(n.Layers, policy.IntraLayer, cfg),
			P1:    policy.MaxMemoryKB(n.Layers, policy.P1IfmapReuse, cfg),
			P2:    policy.MaxMemoryKB(n.Layers, policy.P2FilterReuse, cfg),
			P3:    policy.MaxMemoryKB(n.Layers, policy.P3PerChannel, cfg),
		}
		data = append(data, d)
		t.Row(d.Model, d.Intra, d.P1, d.P2, d.P3)
	}
	return data, t
}

// Table4 reproduces the per-network policy mixes of the heterogeneous
// scheme at the given GLB size (64 kB in the paper).
func Table4(glbKB int) *report.Table {
	t := report.NewTable(fmt.Sprintf("Table 4: memory policies used by Het at %d kB", glbKB),
		"Network", "Policies")
	pl := core.NewPlanner(glbKB, core.MinAccesses)
	for _, n := range model.Builtins() {
		p := mustPlan(pl.Heterogeneous(n))
		mix := ""
		for i, v := range p.PolicyMix() {
			if i > 0 {
				mix += ", "
			}
			mix += v
		}
		t.Row(n.Name, mix)
	}
	return t
}

// Fig3 reproduces the ResNet18 per-layer memory breakdown (kB per data
// type, 8-bit, unpadded).
func Fig3() *report.Table {
	n := mustBuiltin("ResNet18")
	t := report.NewTable("Figure 3: ResNet18 per-layer memory breakdown (kB)",
		"Layer", "Name", "ifmap", "filter", "ofmap")
	for i := range n.Layers {
		l := &n.Layers[i]
		t.Row(fmt.Sprintf("L%d", i+1), l.Name,
			layer.KB(l.IfmapElems(false), 8),
			layer.KB(l.FilterElems(), 8),
			layer.KB(l.OfmapElems(), 8))
	}
	return t
}

// Fig6 reproduces the heterogeneous scheme's allocation anatomy: per layer,
// the space the chosen policy assigns to each data type (including the
// double-buffered prefetch reserve) and the policy label, for ResNet18 at
// the given size.
func Fig6(glbKB int) *report.Table {
	n := mustBuiltin("ResNet18")
	p := mustPlan(core.NewPlanner(glbKB, core.MinAccesses).Heterogeneous(n))
	t := report.NewTable(
		fmt.Sprintf("Figure 6: Het memory breakdown for ResNet18 at %d kB", glbKB),
		"Layer", "Name", "Policy", "ifmap kB", "filter kB", "ofmap kB", "total kB")
	for i := range p.Layers {
		lp := &p.Layers[i]
		e := &lp.Est
		label := e.Policy.Short()
		if e.Opts.Prefetch {
			label += "+p"
		}
		ifKB := layer.KB(e.Tiles.Ifmap+e.DoubleBuffered.Ifmap, p.Cfg.DataWidthBits)
		flKB := layer.KB(e.Tiles.Filter+e.DoubleBuffered.Filter, p.Cfg.DataWidthBits)
		ofKB := layer.KB(e.Tiles.Ofmap+e.DoubleBuffered.Ofmap, p.Cfg.DataWidthBits)
		t.Row(fmt.Sprintf("L%d", i+1), lp.Layer.Name, label, ifKB, flKB, ofKB,
			float64(e.MemoryBytes)/1024.0)
	}
	return t
}

// baselineBest returns the lowest-traffic baseline configuration result for
// a model at a GLB size.
func baselineBest(n *model.Network, kb, width int) (string, int64) {
	name, best, err := baselineBestCtx(context.Background(), n, kb, width)
	if err != nil {
		panic(err)
	}
	return name, best
}

// baselineBestCtx is baselineBest with cancellation threaded through the
// per-split baseline simulations.
func baselineBestCtx(ctx context.Context, n *model.Network, kb, width int) (string, int64, error) {
	bestName, best := "", int64(0)
	for _, c := range scalesim.PaperSplits(kb, width) {
		r, err := scalesim.SimulateNetworkCtx(ctx, n, c, nil)
		if err != nil {
			return "", 0, err
		}
		if b := r.DRAMBytes(); bestName == "" || b < best {
			bestName, best = c.Name, b
		}
	}
	return bestName, best, nil
}

// sequential keeps goroutine fan-out away from nested drivers (the outer
// driver decides the parallelism).
func forEach(s Setup, n int, f func(i int)) {
	parallel.ForEach(n, s.Workers, f)
}

// forEachCtx fans a driver's cells over the setup's worker pool with
// cancellation: dispatching stops at the first worker error or at ctx
// cancellation, in-flight cells drain, and the first error wins.
func forEachCtx(ctx context.Context, s Setup, n int, f func(ctx context.Context, i int) error) error {
	return parallel.ForEachCtx(ctx, n, s.Workers, f)
}

// mustCells adapts a Ctx driver to the legacy panic-on-failure contract:
// the context-free wrappers cannot be canceled, so any error is the
// planning failure the old drivers panicked on.
func mustCells(err error) {
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
}

// cellDone emits one progress event for a finished experiment cell.
func cellDone(prog progress.Func, phase string, i, total int, name string) {
	prog.Emit(progress.Event{Phase: phase, Index: i, Total: total, Name: name})
}
