package systolic

import (
	"math/rand"
	"testing"

	"scratchmem/internal/layer"
	"scratchmem/internal/scalesim"
	"scratchmem/internal/tensor"
)

func randomMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = int32(r.Intn(16) - 8)
	}
	return m
}

// TestFoldFormula: a full RxC fold, measured cycle by cycle, costs exactly
// 2R + C + K - 2 — the closed form the analytical baseline (and SCALE-Sim)
// charges.
func TestFoldFormula(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, dims := range []struct{ R, C, K int }{
		{16, 16, 18}, {16, 16, 1}, {4, 8, 5}, {8, 4, 32}, {1, 1, 7},
	} {
		ar := Array{Rows: dims.R, Cols: dims.C}
		a := randomMatrix(r, dims.R, dims.K)
		b := randomMatrix(r, dims.K, dims.C)
		got, res, err := ar.RunFold(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if want := ar.FoldCycles(int64(dims.K)); res.Cycles != want {
			t.Errorf("R=%d C=%d K=%d: measured %d cycles, formula %d",
				dims.R, dims.C, dims.K, res.Cycles, want)
		}
		if wantMACs := int64(dims.R * dims.C * dims.K); res.ActiveMACs != wantMACs {
			t.Errorf("R=%d C=%d K=%d: %d MACs, want %d", dims.R, dims.C, dims.K, res.ActiveMACs, wantMACs)
		}
		if ref := MatMul(a, b); !equal(got, ref) {
			t.Errorf("R=%d C=%d K=%d: wavefront product differs from reference", dims.R, dims.C, dims.K)
		}
	}
}

// TestPartialFoldCheaper: tiles smaller than the array finish no later than
// the full-fold formula (the analytical model is conservative for ragged
// folds).
func TestPartialFoldCheaper(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ar := Array{Rows: 16, Cols: 16}
	a := randomMatrix(r, 5, 9)
	b := randomMatrix(r, 9, 3)
	got, res, err := ar.RunFold(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles > ar.FoldCycles(9) {
		t.Errorf("partial fold %d cycles > formula %d", res.Cycles, ar.FoldCycles(9))
	}
	if !equal(got, MatMul(a, b)) {
		t.Error("partial fold product wrong")
	}
}

// TestRunGEMMMatchesReference: multi-fold GEMMs produce the exact product
// and the per-fold cycle accounting sums as expected for aligned shapes.
func TestRunGEMMMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ar := Array{Rows: 8, Cols: 8}
	for _, dims := range []struct{ M, K, N int }{
		{8, 10, 8}, {16, 5, 24}, {13, 7, 9}, {1, 64, 1},
	} {
		a := randomMatrix(r, dims.M, dims.K)
		b := randomMatrix(r, dims.K, dims.N)
		got, res, err := ar.RunGEMM(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !equal(got, MatMul(a, b)) {
			t.Errorf("M=%d K=%d N=%d: product wrong", dims.M, dims.K, dims.N)
		}
		if res.ActiveMACs != int64(dims.M*dims.K*dims.N) {
			t.Errorf("M=%d K=%d N=%d: %d MACs, want %d",
				dims.M, dims.K, dims.N, res.ActiveMACs, dims.M*dims.K*dims.N)
		}
	}
	// Aligned shape: measured cycles equal folds x formula.
	a := randomMatrix(r, 16, 12)
	b := randomMatrix(r, 12, 16)
	_, res, err := ar.RunGEMM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * ar.FoldCycles(12); res.Cycles != want {
		t.Errorf("aligned GEMM cycles %d, want %d", res.Cycles, want)
	}
}

// TestMatchesScalesimBaseline: the wavefront simulator and the analytical
// baseline agree on the zero-stall cycles of a whole (aligned, unpadded)
// convolution layer mapped as im2col GEMM.
func TestMatchesScalesimBaseline(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	l := layer.MustNew("c", layer.Conv, 10, 18, 3, 3, 3, 32, 1, 0) // M = 8*16 = 128, N = 32
	in := tensor.New(l.IH, l.IW, l.CI).Random(r)
	w := tensor.NewFilters(l.FH, l.FW, l.CI, l.F).Random(r)

	// Build the im2col operand matrices.
	m := l.OH() * l.OW()
	k := l.FH * l.FW * l.CI
	a := NewMatrix(m, k)
	for p := 0; p < m; p++ {
		oh, ow := p/l.OW(), p%l.OW()
		kk := 0
		for kh := 0; kh < l.FH; kh++ {
			for kw := 0; kw < l.FW; kw++ {
				for c := 0; c < l.CI; c++ {
					a.Set(p, kk, in.At(oh*l.S+kh, ow*l.S+kw, c))
					kk++
				}
			}
		}
	}
	b := NewMatrix(k, l.F)
	for f := 0; f < l.F; f++ {
		kk := 0
		for kh := 0; kh < l.FH; kh++ {
			for kw := 0; kw < l.FW; kw++ {
				for c := 0; c < l.CI; c++ {
					b.Set(kk, f, w.At(f, kh, kw, c))
					kk++
				}
			}
		}
	}

	ar := Array{Rows: 16, Cols: 16}
	out, res, err := ar.RunGEMM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	base := scalesim.Simulate(&l, scalesim.Split("sa_50_50", 1024, 50, 8))
	if res.Cycles != base.Cycles {
		t.Errorf("wavefront cycles %d != analytical baseline %d", res.Cycles, base.Cycles)
	}
	// And the GEMM result equals the convolution.
	ref := tensor.Conv2D(in, w, l.S, l.P)
	for p := 0; p < m; p++ {
		oh, ow := p/l.OW(), p%l.OW()
		for f := 0; f < l.F; f++ {
			if out.At(p, f) != ref.At(oh, ow, f) {
				t.Fatalf("output (%d,%d,%d): %d != %d", oh, ow, f, out.At(p, f), ref.At(oh, ow, f))
			}
		}
	}
}

func TestErrors(t *testing.T) {
	ar := Array{Rows: 4, Cols: 4}
	a := NewMatrix(8, 2)
	b := NewMatrix(2, 2)
	if _, _, err := ar.RunFold(a, b); err == nil {
		t.Error("oversized tile accepted")
	}
	if _, _, err := ar.RunFold(NewMatrix(2, 3), NewMatrix(4, 2)); err == nil {
		t.Error("reduction mismatch accepted")
	}
	if _, _, err := (Array{}).RunFold(NewMatrix(1, 1), NewMatrix(1, 1)); err == nil {
		t.Error("zero array accepted")
	}
	if _, _, err := ar.RunGEMM(NewMatrix(2, 3), NewMatrix(4, 2)); err == nil {
		t.Error("GEMM mismatch accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MatMul mismatch did not panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(4, 2))
}

func equal(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}
