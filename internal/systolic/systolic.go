// Package systolic is a cycle-stepped simulator of the output-stationary
// systolic array the paper's baseline assumes: an R x C grid of processing
// elements, GEMM operand A flowing left-to-right with one cycle of skew per
// row, operand B flowing top-to-bottom with one cycle of skew per column,
// and each PE accumulating its dot product in place.
//
// It exists to validate internal/scalesim from below: the analytical
// baseline charges every fold 2R + C + K - 2 zero-stall cycles, and this
// simulator demonstrates where that number comes from — (R-1) + (C-1) skew
// to fill the wavefront, K cycles of reduction streaming, and R cycles to
// shift the stationary outputs down and out — while also computing the
// actual product so the mapping can be checked against a reference matrix
// multiplication.
package systolic

import "fmt"

// Matrix is a dense row-major int32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []int32
}

// NewMatrix allocates a zeroed matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("systolic: invalid matrix %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]int32, rows*cols)}
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) int32 { return m.Data[r*m.Cols+c] }

// Set writes the element at (r, c).
func (m *Matrix) Set(r, c int, v int32) { m.Data[r*m.Cols+c] = v }

// MatMul is the reference product used to check the array.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("systolic: dimension mismatch %dx%d x %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var acc int32
			for k := 0; k < a.Cols; k++ {
				acc += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, acc)
		}
	}
	return out
}

// Array is an R x C output-stationary PE grid.
type Array struct {
	Rows, Cols int
}

// FoldResult reports one fold's execution.
type FoldResult struct {
	// Cycles is the measured wall-clock of the fold, including wavefront
	// fill, reduction streaming and output drain.
	Cycles int64
	// ActiveMACs counts PE activations (the fold's useful work).
	ActiveMACs int64
}

// RunFold streams a GEMM tile of up to Rows x Cols outputs with reduction
// depth k through the wavefront. a holds the tile's rows of A (rows x k),
// b the tile's columns of B (k x cols). The returned matrix is rows x cols.
//
// The simulation is literal: at cycle t, PE (i, j) multiplies
// a[i][t-i-j] * b[t-i-j][j] when 0 <= t-i-j < k. After the last partial
// product lands, the stationary outputs shift down one row per cycle and
// leave through the bottom edge (Rows cycles, counted against the full
// array height as the hardware would).
func (ar Array) RunFold(a, b *Matrix) (*Matrix, FoldResult, error) {
	if ar.Rows <= 0 || ar.Cols <= 0 {
		return nil, FoldResult{}, fmt.Errorf("systolic: invalid array %dx%d", ar.Rows, ar.Cols)
	}
	if a.Rows > ar.Rows || b.Cols > ar.Cols {
		return nil, FoldResult{}, fmt.Errorf("systolic: tile %dx%d exceeds array %dx%d",
			a.Rows, b.Cols, ar.Rows, ar.Cols)
	}
	if a.Cols != b.Rows {
		return nil, FoldResult{}, fmt.Errorf("systolic: reduction mismatch %d != %d", a.Cols, b.Rows)
	}
	rows, cols, k := a.Rows, b.Cols, a.Cols
	acc := NewMatrix(rows, cols)
	var res FoldResult

	// Compute phase: the last partial product lands at PE (rows-1, cols-1)
	// at cycle (rows-1)+(cols-1)+(k-1); cycles are counted inclusively.
	lastCycle := 0
	for t := 0; ; t++ {
		active := false
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				kk := t - i - j
				if kk < 0 || kk >= k {
					continue
				}
				acc.Set(i, j, acc.At(i, j)+a.At(i, kk)*b.At(kk, j))
				res.ActiveMACs++
				active = true
			}
		}
		if !active && t > 0 {
			break
		}
		lastCycle = t
	}
	computeCycles := int64(lastCycle + 1) // cycles 0..lastCycle

	// Drain phase: stationary outputs shift down through the full array
	// height (the hardware drains all Rows physical rows regardless of the
	// tile's logical height).
	drainCycles := int64(ar.Rows)

	res.Cycles = computeCycles + drainCycles
	return acc, res, nil
}

// FoldCycles is the closed form the analytical baseline uses for a full
// fold: 2R + C + K - 2.
func (ar Array) FoldCycles(k int64) int64 {
	return 2*int64(ar.Rows) + int64(ar.Cols) + k - 2
}

// RunGEMM folds an arbitrary M x K by K x N product onto the array,
// accumulating measured cycles and active MACs across folds, and returns
// the full product for verification.
func (ar Array) RunGEMM(a, b *Matrix) (*Matrix, FoldResult, error) {
	if a.Cols != b.Rows {
		return nil, FoldResult{}, fmt.Errorf("systolic: dimension mismatch")
	}
	out := NewMatrix(a.Rows, b.Cols)
	var total FoldResult
	for i0 := 0; i0 < a.Rows; i0 += ar.Rows {
		i1 := min(i0+ar.Rows, a.Rows)
		for j0 := 0; j0 < b.Cols; j0 += ar.Cols {
			j1 := min(j0+ar.Cols, b.Cols)
			ta := subMatrix(a, i0, i1, 0, a.Cols)
			tb := subMatrix(b, 0, b.Rows, j0, j1)
			tile, r, err := ar.RunFold(ta, tb)
			if err != nil {
				return nil, FoldResult{}, err
			}
			total.Cycles += r.Cycles
			total.ActiveMACs += r.ActiveMACs
			for i := i0; i < i1; i++ {
				for j := j0; j < j1; j++ {
					out.Set(i, j, tile.At(i-i0, j-j0))
				}
			}
		}
	}
	return out, total, nil
}

func subMatrix(m *Matrix, r0, r1, c0, c1 int) *Matrix {
	out := NewMatrix(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		for c := c0; c < c1; c++ {
			out.Set(r-r0, c-c0, m.At(r, c))
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
