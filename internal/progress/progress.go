// Package progress defines the observation hook of the planning pipeline:
// long-running entry points (planning, simulation, DSE, experiment sweeps)
// accept an optional Func and emit one Event per unit of work — per layer,
// per sweep point, per experiment cell — so callers can drive progress
// bars, logs or cancellation decisions without the pipeline knowing about
// any of them. Like smmerr, the package is a leaf so every layer of the
// stack can emit events without import cycles.
package progress

// Event is one progress notification.
type Event struct {
	// Phase names the pipeline stage emitting the event ("plan",
	// "simulate", "dse", "baseline", "compile", or an experiment driver
	// name such as "fig5").
	Phase string
	// Index is the zero-based unit just completed; Total the number of
	// units in the phase (0 when unknown up front).
	Index, Total int
	// Name identifies the unit (layer name, model name, sweep point).
	Name string
	// Cell tags the sweep cell an event belongs to when independent cells
	// run concurrently and their events interleave — the homogeneous-scheme
	// search labels each candidate variant's pass ("p2+p", "fb", ...), and
	// the experiment drivers their (model, size) cell. "" on sequential
	// single-cell phases.
	Cell string
	// Policy is the short variant label of the decision just made
	// ("p2+p", "fb", ...) where the phase selects one — per-layer planning
	// and simulation — and "" elsewhere. It lets observers (span events,
	// structured logs, live dashboards) see which policy won each layer
	// without re-deriving the plan.
	Policy string
	// AccessElems / LatencyCycles carry the pipeline's running totals
	// where they are meaningful (planning), and are zero elsewhere.
	AccessElems   int64
	LatencyCycles int64
}

// Func receives progress events. Implementations must be fast and, for the
// parallel experiment drivers, safe for concurrent use. A nil Func is
// always allowed and means "no observation".
type Func func(Event)

// Emit calls f with ev; a nil receiver is a no-op so pipeline code never
// needs a nil check.
func (f Func) Emit(ev Event) {
	if f != nil {
		f(ev)
	}
}
