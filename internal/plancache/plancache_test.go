package plancache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoMissThenHit(t *testing.T) {
	c := New(4)
	calls := 0
	fn := func(context.Context) (any, error) { calls++; return "v1", nil }

	v, shared, err := c.Do(context.Background(), "k", fn)
	if err != nil || v != "v1" || shared {
		t.Fatalf("first Do = (%v, %v, %v), want (v1, false, nil)", v, shared, err)
	}
	v, shared, err = c.Do(context.Background(), "k", fn)
	if err != nil || v != "v1" || !shared {
		t.Fatalf("second Do = (%v, %v, %v), want (v1, true, nil)", v, shared, err)
	}
	if calls != 1 {
		t.Errorf("fn ran %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry", s)
	}
}

func TestDoSingleFlight(t *testing.T) {
	c := New(4)
	var calls int32
	release := make(chan struct{})
	fn := func(context.Context) (any, error) {
		atomic.AddInt32(&calls, 1)
		<-release
		return 42, nil
	}

	const waiters = 16
	var wg sync.WaitGroup
	results := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), "same", fn)
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let every goroutine reach Do before releasing the leader.
	for c.Stats().Coalesced < waiters-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Errorf("fn ran %d times for %d concurrent callers, want 1", n, waiters)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("caller %d got %v, want 42", i, v)
		}
	}
	if s := c.Stats(); s.Coalesced != waiters-1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want %d coalesced, 1 miss", s, waiters-1)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	calls := 0
	if _, _, err := c.Do(context.Background(), "k", func(context.Context) (any, error) { calls++; return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if v, _, err := c.Do(context.Background(), "k", func(context.Context) (any, error) { calls++; return "ok", nil }); err != nil || v != "ok" {
		t.Fatalf("retry = (%v, %v), want (ok, nil)", v, err)
	}
	if calls != 2 {
		t.Errorf("fn ran %d times, want 2 (errors must not be cached)", calls)
	}
}

func TestDoPanicBecomesError(t *testing.T) {
	c := New(4)
	_, _, err := c.Do(context.Background(), "k", func(context.Context) (any, error) { panic("kaboom") })
	if !errors.Is(err, ErrPanic) || c.Len() != 0 {
		t.Fatalf("panic: err = %v, entries = %d; want ErrPanic and no entry", err, c.Len())
	}
}

func TestDoContextExpiryLeavesResultForOthers(t *testing.T) {
	c := New(4)
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func(context.Context) (any, error) { close(started); <-release; return "late", nil }

	ctx, cancel := context.WithCancel(context.Background())
	go func() { <-started; cancel() }()
	if _, _, err := c.Do(ctx, "k", fn); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The abandoned computation still completes and lands in the cache.
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for c.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned computation never cached")
		}
		time.Sleep(time.Millisecond)
	}
	v, ok := c.Get("k")
	if !ok || v != "late" {
		t.Errorf("Get = (%v, %v), want (late, true)", v, ok)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	put := func(k string) {
		if _, _, err := c.Do(context.Background(), k, func(context.Context) (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	if _, ok := c.Get("a"); !ok { // a is now most recently used
		t.Fatal("a missing")
	}
	put("c") // evicts b, the cold entry
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; LRU order wrong")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction, 2 entries", s)
	}
}

func TestZeroCapacityStillDeduplicates(t *testing.T) {
	c := New(0)
	var calls int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Do(context.Background(), "k", func(context.Context) (any, error) {
				atomic.AddInt32(&calls, 1)
				<-release
				return 1, nil
			})
		}()
	}
	for c.Stats().Coalesced < 3 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Errorf("fn ran %d times, want 1", calls)
	}
	if c.Len() != 0 {
		t.Errorf("capacity-0 cache stored %d entries", c.Len())
	}
	// Nothing stored: the next Do recomputes.
	c.Do(context.Background(), "k", func(context.Context) (any, error) { atomic.AddInt32(&calls, 1); return 1, nil })
	if calls != 2 {
		t.Errorf("fn ran %d times after second Do, want 2", calls)
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%16)
				v, _, err := c.Do(context.Background(), k, func(context.Context) (any, error) { return k, nil })
				if err != nil || v != k {
					t.Errorf("Do(%s) = (%v, %v)", k, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("cache grew to %d entries, capacity 8", c.Len())
	}
}

func TestDoSoleCallerAbandonCancelsComputation(t *testing.T) {
	c := New(4)
	started := make(chan struct{})
	fnCtxDone := make(chan struct{})
	fn := func(ctx context.Context) (any, error) {
		close(started)
		select {
		case <-ctx.Done():
			close(fnCtxDone)
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return "too late", errors.New("computation context never canceled")
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() { <-started; cancel() }()
	if _, _, err := c.Do(ctx, "k", fn); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The sole waiter left, so the computation context must be canceled
	// promptly — this is what frees the server's semaphore slot.
	select {
	case <-fnCtxDone:
	case <-time.After(2 * time.Second):
		t.Fatal("computation context not canceled after sole caller abandoned")
	}
	if c.Len() != 0 {
		t.Errorf("canceled computation cached %d entries, want 0", c.Len())
	}
}

func TestDoLeaderCancelKeepsComputingForFollowers(t *testing.T) {
	c := New(4)
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func(ctx context.Context) (any, error) {
		close(started)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return "shared result", nil
		}
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, "k", fn)
		leaderErr <- err
	}()
	<-started
	// A follower coalesces onto the flight, then the leader gives up. The
	// computation must keep running for the follower.
	followerVal := make(chan any, 1)
	go func() {
		v, shared, err := c.Do(context.Background(), "k", fn)
		if err != nil || !shared {
			t.Errorf("follower Do = (%v, %v, %v), want (shared result, true, nil)", v, shared, err)
		}
		followerVal <- v
	}()
	for c.Stats().Coalesced < 1 {
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	close(release)
	select {
	case v := <-followerVal:
		if v != "shared result" {
			t.Errorf("follower got %v, want shared result", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower never got the result after leader canceled")
	}
}

func TestDoAbandonedFlightReplacedByFresh(t *testing.T) {
	c := New(4)
	started := make(chan struct{})
	fn1 := func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() { <-started; cancel() }()
	if _, _, err := c.Do(ctx, "k", fn1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A new caller must not inherit the abandoned (canceled) flight: it
	// starts fresh and succeeds even while the old goroutine winds down.
	v, shared, err := c.Do(context.Background(), "k", func(context.Context) (any, error) {
		return "fresh", nil
	})
	if err != nil || v != "fresh" || shared {
		t.Fatalf("fresh Do = (%v, %v, %v), want (fresh, false, nil)", v, shared, err)
	}
}

func TestRemoveStoredEntry(t *testing.T) {
	c := New(4)
	c.Put("a", 1)
	c.Put("b", 2)
	if !c.Remove("a") {
		t.Fatal("Remove(a) = false, want true")
	}
	if _, ok := c.Get("a"); ok {
		t.Error("removed entry still served")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Errorf("unrelated entry disturbed: (%v, %v)", v, ok)
	}
	if c.Remove("a") {
		t.Error("second Remove(a) = true, want false")
	}
	if c.Remove("missing") {
		t.Error("Remove(missing) = true, want false")
	}
}

// TestRemoveInFlightKey: removing a key whose computation is in progress
// delivers the result to the waiters but suppresses the store — the
// removal wins over the race, and the next Do recomputes.
func TestRemoveInFlightKey(t *testing.T) {
	c := New(4)
	started := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int32
	fn := func(context.Context) (any, error) {
		calls.Add(1)
		close(started)
		<-release
		return "fresh", nil
	}

	done := make(chan struct{})
	var v any
	go func() {
		defer close(done)
		v, _, _ = c.Do(context.Background(), "k", fn)
	}()
	<-started
	if !c.Remove("k") {
		t.Error("Remove of an in-flight key = false, want true")
	}
	close(release)
	<-done
	if v != "fresh" {
		t.Errorf("waiter got %v, want the flight's result", v)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("removed in-flight key was stored anyway")
	}
	if _, shared, err := c.Do(context.Background(), "k", func(context.Context) (any, error) {
		calls.Add(1)
		return "again", nil
	}); err != nil || shared {
		t.Errorf("recompute after removal = (shared=%v, err=%v), want a fresh miss", shared, err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("computation ran %d times, want 2 (removal forces a recompute)", n)
	}
}

func TestPurge(t *testing.T) {
	c := New(8)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(context.Background(), "inflight", func(context.Context) (any, error) {
		close(started)
		<-release
		return "v", nil
	})
	<-started
	if n := c.Purge(); n != 3 {
		t.Errorf("Purge removed %d entries, want 3", n)
	}
	if c.Len() != 0 {
		t.Errorf("%d entries survive a purge", c.Len())
	}
	close(release)
	// The in-flight computation must not repopulate the purged cache.
	for i := 0; i < 100; i++ {
		if _, ok := c.Get("inflight"); ok {
			t.Fatal("purged in-flight key was stored anyway")
		}
		time.Sleep(time.Millisecond)
		if c.Stats().Entries == 0 && i > 10 {
			break
		}
	}
}

func TestSnapshotOrderAndPut(t *testing.T) {
	c := New(4)
	c.Put("old", 1)
	c.Put("mid", 2)
	c.Put("new", 3)
	c.Get("old") // touch: old becomes MRU
	snap := c.Snapshot()
	keys := make([]string, len(snap))
	for i, e := range snap {
		keys[i] = e.Key
	}
	want := []string{"old", "new", "mid"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("snapshot order %v, want %v (MRU first)", keys, want)
		}
	}
	// Restore into a fresh cache in reverse order: recency is preserved.
	r := New(2) // smaller than the snapshot: the LRU tail must fall off
	for i := len(snap) - 1; i >= 0; i-- {
		r.Put(snap[i].Key, snap[i].Val)
	}
	if _, ok := r.Get("mid"); ok {
		t.Error("over-capacity restore kept the LRU tail")
	}
	if v, ok := r.Get("old"); !ok || v != 1 {
		t.Errorf("restored MRU entry = (%v, %v), want (1, true)", v, ok)
	}
}

func TestPutDisabledStorage(t *testing.T) {
	c := New(0)
	c.Put("k", 1)
	if _, ok := c.Get("k"); ok {
		t.Error("Put stored into a storage-disabled cache")
	}
	if len(c.Snapshot()) != 0 {
		t.Error("snapshot of a storage-disabled cache is non-empty")
	}
}
