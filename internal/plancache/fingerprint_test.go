package plancache

import (
	"fmt"
	"testing"

	"scratchmem/internal/layer"
	"scratchmem/internal/policy"
)

// chainN builds an n-layer shape chain in which every layer's filter count
// depends on tag, so chains with different tags are fully disjoint — no
// shared prefix or suffix anywhere.
func chainN(tag, n int) []policy.LayerKey {
	layers := make([]layer.Layer, n)
	for i := 0; i < n; i++ {
		layers[i] = layer.MustNew(fmt.Sprintf("l%d", i), layer.Conv, 28, 28, 8, 3, 3, 8+i+100*tag, 1, 1)
	}
	return policy.ChainOf(layers)
}

func TestFingerprintsBestPrefersLargestOverlap(t *testing.T) {
	fp := NewFingerprints(16)
	near := chainN(1, 10)
	far := chainN(2, 10)
	fp.Insert("k-far", "g", far, "far")
	fp.Insert("k-near", "g", near, "near")

	// A one-layer mutation of near overlaps near in 9 layers, far in ~0.
	probe := append([]policy.LayerKey(nil), near...)
	probe[5] = chainN(3, 10)[0]
	if got := fp.Best("g", probe); got != "near" {
		t.Fatalf("Best picked %v, want the 9-layer-overlap entry", got)
	}
	if got := fp.Best("other-group", probe); got != nil {
		t.Fatalf("Best matched across groups: %v", got)
	}
	st := fp.Stats()
	if st.Lookups != 2 || st.Matches != 1 {
		t.Fatalf("stats = %+v, want 2 lookups / 1 match", st)
	}
}

func TestFingerprintsNoOverlapNoMatch(t *testing.T) {
	fp := NewFingerprints(16)
	fp.Insert("k", "g", chainN(1, 10), "ck")
	if got := fp.Best("g", chainN(9, 10)); got != nil {
		t.Fatalf("disjoint chains matched: %v", got)
	}
}

func TestFingerprintsInvalidateAndClear(t *testing.T) {
	fp := NewFingerprints(16)
	c := chainN(1, 5)
	fp.Insert("k", "g", c, "ck")
	if !fp.Invalidate("k") {
		t.Fatal("Invalidate missed a present key")
	}
	if fp.Invalidate("k") {
		t.Fatal("Invalidate reported a second removal")
	}
	if got := fp.Best("g", c); got != nil {
		t.Fatalf("invalidated entry still matched: %v", got)
	}
	fp.Insert("k2", "g", c, "ck2")
	fp.Clear()
	if fp.Len() != 0 {
		t.Fatalf("Clear left %d entries", fp.Len())
	}
}

func TestFingerprintsReplaceByKeyAndEvict(t *testing.T) {
	fp := NewFingerprints(2)
	a, b, c := chainN(1, 5), chainN(2, 5), chainN(3, 5)
	fp.Insert("k1", "g", a, "v1")
	fp.Insert("k1", "g", b, "v1b") // replace, not a second entry
	if fp.Len() != 1 {
		t.Fatalf("replace grew the index to %d", fp.Len())
	}
	if got := fp.Best("g", b); got != "v1b" {
		t.Fatalf("replaced entry not served: %v", got)
	}
	fp.Insert("k2", "g", a, "v2")
	fp.Insert("k3", "g", c, "v3") // capacity 2: evicts the coldest (k1)
	if fp.Len() != 2 {
		t.Fatalf("eviction left %d entries", fp.Len())
	}
	if got := fp.Best("g", b); got != nil {
		t.Fatalf("evicted entry still served: %v", got)
	}
}

func TestFingerprintsNilSafety(t *testing.T) {
	var fp *Fingerprints
	fp.Insert("k", "g", chainN(1, 3), "v")
	if fp.Best("g", chainN(1, 3)) != nil || fp.Invalidate("k") || fp.Len() != 0 {
		t.Fatal("nil Fingerprints must be inert")
	}
	fp.Clear()
	_ = fp.Stats()
}

func TestCacheFingerprintLifecycle(t *testing.T) {
	c := New(2)
	fp := NewFingerprints(16)
	c.AttachFingerprints(fp)
	chain := chainN(1, 5)

	// InsertFingerprint without a stored entry is a no-op: the Remove race
	// must never leave a fingerprint for a plan the cache cannot serve.
	c.InsertFingerprint("ghost", "g", chain, "ck")
	if fp.Len() != 0 {
		t.Fatal("fingerprint indexed for a key the cache does not hold")
	}

	c.Put("k1", "plan1")
	c.InsertFingerprint("k1", "g", chain, "ck1")
	if fp.Len() != 1 {
		t.Fatal("stored key's fingerprint not indexed")
	}

	// Remove invalidates in lockstep.
	c.Remove("k1")
	if fp.Len() != 0 {
		t.Fatal("Remove left the fingerprint behind")
	}

	// LRU eviction invalidates in lockstep.
	c.Put("k1", "p1")
	c.InsertFingerprint("k1", "g", chain, "ck1")
	c.Put("k2", "p2")
	c.Put("k3", "p3") // capacity 2: evicts k1
	if got := fp.Best("g", chain); got != nil {
		t.Fatalf("evicted plan still spliceable: %v", got)
	}

	// Purge clears the whole index.
	c.InsertFingerprint("k3", "g", chain, "ck3")
	c.Purge()
	if fp.Len() != 0 {
		t.Fatal("Purge left fingerprints behind")
	}
}
