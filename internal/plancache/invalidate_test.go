package plancache

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRemoveTombstonesInFlightCompute: removing a key while its computation
// is in flight must not lose the race — the waiters still get the result,
// but it is never stored, so an invalidation cannot be resurrected by a
// computation that started before it.
func TestRemoveTombstonesInFlightCompute(t *testing.T) {
	c := New(8)
	started := make(chan struct{})
	release := make(chan struct{})
	var got any
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		got, _, err = c.Do(context.Background(), "k", func(context.Context) (any, error) {
			close(started)
			<-release
			return "stale", nil
		})
	}()
	<-started
	if !c.Remove("k") {
		t.Fatal("Remove found neither a stored entry nor a flight to tombstone")
	}
	close(release)
	<-done
	if err != nil || got != "stale" {
		t.Fatalf("waiter got (%v, %v), want the computed value", got, err)
	}
	if c.Contains("k") {
		t.Fatal("removed key resurrected by the in-flight computation")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("Get served a removed key")
	}
}

// TestPurgeSuppressesInFlightStores is Remove's fleet-wide sibling: Purge
// tombstones every in-flight computation.
func TestPurgeSuppressesInFlightStores(t *testing.T) {
	c := New(8)
	c.Put("stored", 1)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(context.Background(), "flying", func(context.Context) (any, error) {
			close(started)
			<-release
			return 2, nil
		})
	}()
	<-started
	if n := c.Purge(); n != 1 {
		t.Fatalf("Purge dropped %d stored entries, want 1", n)
	}
	close(release)
	<-done
	if c.Contains("flying") {
		t.Fatal("purged flight stored its result anyway")
	}
	if c.Len() != 0 {
		t.Fatalf("cache holds %d entries after purge, want 0", c.Len())
	}
}

// TestRemovedFlightDoesNotPoisonLaterDo: a fresh Do after the tombstoned
// flight completes runs a fresh computation and stores normally — the
// tombstone applies to one flight, not to the key forever.
func TestRemovedFlightDoesNotPoisonLaterDo(t *testing.T) {
	c := New(8)
	started := make(chan struct{})
	release := make(chan struct{})
	flightDone := make(chan struct{})
	go func() {
		defer close(flightDone)
		c.Do(context.Background(), "k", func(context.Context) (any, error) {
			close(started)
			<-release
			return "old", nil
		})
	}()
	<-started
	c.Remove("k")
	close(release)
	<-flightDone
	v, shared, err := c.Do(context.Background(), "k", func(context.Context) (any, error) {
		return "new", nil
	})
	if err != nil || shared || v != "new" {
		t.Fatalf("Do after tombstone = (%v, %v, %v), want a fresh compute of \"new\"", v, shared, err)
	}
	if !c.Contains("k") {
		t.Fatal("fresh computation after a tombstoned flight was not stored")
	}
}

// TestRemovePurgeUnderConcurrentDoHammer drives Remove and Purge against a
// storm of single-flight Dos on a handful of keys. Run under -race this is
// primarily a data-race hunt; the semantic invariant checked at the end is
// that a final quiescent Remove leaves nothing to resurrect.
func TestRemovePurgeUnderConcurrentDoHammer(t *testing.T) {
	c := New(4)
	keys := []string{"a", "b", "c", "d", "e"}
	stopInval := make(chan struct{})
	var wg, invalWG sync.WaitGroup
	var computes atomic.Int64

	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := keys[(g+i)%len(keys)]
				v, _, err := c.Do(context.Background(), key, func(context.Context) (any, error) {
					computes.Add(1)
					return key + "-value", nil
				})
				if err != nil {
					t.Errorf("Do(%s): %v", key, err)
					return
				}
				if v != key+"-value" {
					t.Errorf("Do(%s) = %v, a different key's value", key, v)
					return
				}
			}
		}(g)
	}
	invalWG.Add(1)
	go func() {
		defer invalWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopInval:
				return
			default:
			}
			if i%7 == 0 {
				c.Purge()
			} else {
				c.Remove(keys[i%len(keys)])
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	wg.Wait()
	close(stopInval)
	invalWG.Wait()

	if computes.Load() == 0 {
		t.Fatal("the hammer never computed anything")
	}
	// Quiescent now: every Remove must stick with no flight left to race.
	for _, k := range keys {
		c.Remove(k)
		if c.Contains(k) {
			t.Fatalf("key %s still stored after a quiescent Remove", k)
		}
	}
	if n := c.Purge(); n != 0 {
		t.Fatalf("Purge found %d entries after everything was removed", n)
	}
}

// TestContainsLeavesRecencyAndCountersAlone: Contains is a pure probe — it
// must not refresh LRU position (the rewarm loop would otherwise distort
// eviction order) nor count as a hit or miss.
func TestContainsLeavesRecencyAndCountersAlone(t *testing.T) {
	c := New(2)
	c.Put("cold", 1)
	c.Put("warm", 2)
	before := c.Stats()
	if !c.Contains("cold") || c.Contains("absent") {
		t.Fatal("Contains answered wrong")
	}
	if after := c.Stats(); after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("Contains moved the counters: %+v -> %+v", before, after)
	}
	// "cold" was probed but not touched: inserting a third entry must still
	// evict it, not "warm".
	c.Put("new", 3)
	if c.Contains("cold") {
		t.Fatal("Contains refreshed recency; cold entry survived eviction")
	}
	if !c.Contains("warm") {
		t.Fatal("wrong entry evicted")
	}
}
