package plancache

import (
	"context"
	"errors"
	"testing"

	"scratchmem/internal/faultinject"
)

// TestFlightFaultNeverCached pins the resilience invariant the chaos suite
// leans on: an injected fault at the plancache.flight site fails the call
// with a classifiable error and leaves no entry behind, so the next caller
// recomputes instead of being served a fault-tainted value.
func TestFlightFaultNeverCached(t *testing.T) {
	faultinject.Enable(1, faultinject.Fault{Site: "plancache.flight", Kind: faultinject.KindError, P: 1})
	defer faultinject.Disable()

	c := New(4)
	ran := false
	_, _, err := c.Do(context.Background(), "k", func(context.Context) (any, error) { ran = true; return "tainted", nil })
	if !faultinject.IsInjected(err) {
		t.Fatalf("err = %v, want an injected fault", err)
	}
	if ran {
		t.Error("computation ran despite the injected flight fault")
	}
	if c.Len() != 0 {
		t.Fatal("injected failure left an entry in the cache")
	}

	// Healed: the same key recomputes cleanly and only then is stored.
	faultinject.Disable()
	v, shared, err := c.Do(context.Background(), "k", func(context.Context) (any, error) { return "clean", nil })
	if err != nil || v != "clean" || shared {
		t.Fatalf("post-fault Do = (%v, %v, %v), want (clean, false, nil)", v, shared, err)
	}
	if c.Len() != 1 {
		t.Error("clean recomputation was not cached")
	}
}

// TestFlightPanicFaultNeverCached: injected panics take the flight's
// recover path — surfaced as ErrPanic, never stored, process intact.
func TestFlightPanicFaultNeverCached(t *testing.T) {
	faultinject.Enable(1, faultinject.Fault{Site: "plancache.flight", Kind: faultinject.KindPanic, P: 1})
	defer faultinject.Disable()

	c := New(4)
	_, _, err := c.Do(context.Background(), "k", func(context.Context) (any, error) { return "tainted", nil })
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	if c.Len() != 0 {
		t.Error("injected panic left an entry in the cache")
	}
}
