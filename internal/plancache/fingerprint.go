// Fingerprint index for differential planning: alongside the exact-match
// SHA-256 plan cache, the server indexes each cached plan's shape-signature
// chain so a *near*-identical request (a DSE neighbor, one mutated layer in
// a batch) can locate the best-overlapping prior plan and resume from its
// checkpoint. The index is deliberately advisory — a hit only seeds an
// exact recomputation of the changed layers — but it is still tied to the
// plan cache's lifecycle: a key removed, purged or evicted from the cache
// must never be spliced from again.
package plancache

import (
	"container/list"
	"sync"

	"scratchmem/internal/policy"
)

// DefaultFingerprintEntries bounds a server's fingerprint index. Each entry
// retains one checkpoint (per-layer decisions plus, in inter-layer mode,
// the DP table) — a few KB per typical network.
const DefaultFingerprintEntries = 512

// fpScanLimit bounds how many same-group candidates one lookup inspects,
// most-recent first, keeping lookup cost flat however large the index is.
const fpScanLimit = 32

type fpEntry struct {
	key   string // owning plan-cache key
	group string // config/options digest: only identical knobs may match
	chain []policy.LayerKey
	ck    any // *core.Checkpoint, opaque here to avoid an import cycle
}

// Fingerprints is a bounded, mutex-guarded LRU of shape-chain fingerprints.
// The zero value is not usable; a nil *Fingerprints is (every method
// no-ops), so callers can thread an optional index without nil checks.
type Fingerprints struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // of *fpEntry, front = most recently used
	byKey map[string]*list.Element

	lookups, matches int64
}

// NewFingerprints returns an index holding at most capacity entries
// (DefaultFingerprintEntries when capacity <= 0).
func NewFingerprints(capacity int) *Fingerprints {
	if capacity <= 0 {
		capacity = DefaultFingerprintEntries
	}
	return &Fingerprints{cap: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// Insert indexes key's plan under its chain, replacing any existing entry
// for the same key and evicting the oldest entries past capacity.
func (f *Fingerprints) Insert(key, group string, chain []policy.LayerKey, ck any) {
	if f == nil || ck == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if el, ok := f.byKey[key]; ok {
		e := el.Value.(*fpEntry)
		e.group, e.chain, e.ck = group, chain, ck
		f.ll.MoveToFront(el)
		return
	}
	f.byKey[key] = f.ll.PushFront(&fpEntry{key: key, group: group, chain: chain, ck: ck})
	for f.ll.Len() > f.cap {
		cold := f.ll.Back()
		f.ll.Remove(cold)
		delete(f.byKey, cold.Value.(*fpEntry).key)
	}
}

// Best returns the checkpoint of the same-group entry with the largest
// prefix+suffix shape overlap against chain (ties to the most recently
// used), or nil when no entry overlaps at all. A hit refreshes the entry's
// recency.
func (f *Fingerprints) Best(group string, chain []policy.LayerKey) any {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lookups++
	scanned, bestScore := 0, 0
	var best *list.Element
	for el := f.ll.Front(); el != nil && scanned < fpScanLimit; el = el.Next() {
		e := el.Value.(*fpEntry)
		if e.group != group {
			continue
		}
		scanned++
		p := policy.CommonPrefix(chain, e.chain)
		s := policy.CommonSuffix(chain, e.chain)
		if n := min(len(chain), len(e.chain)); p+s > n {
			s = n - p
		}
		if p+s > bestScore {
			bestScore, best = p+s, el
		}
	}
	if best == nil {
		return nil
	}
	f.matches++
	f.ll.MoveToFront(best)
	return best.Value.(*fpEntry).ck
}

// Invalidate drops the entry indexed under key, reporting whether one
// existed.
func (f *Fingerprints) Invalidate(key string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	el, ok := f.byKey[key]
	if !ok {
		return false
	}
	f.ll.Remove(el)
	delete(f.byKey, key)
	return true
}

// Clear drops every entry.
func (f *Fingerprints) Clear() {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ll.Init()
	clear(f.byKey)
}

// Len returns the number of indexed fingerprints.
func (f *Fingerprints) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ll.Len()
}

// FingerprintStats is a point-in-time snapshot of index effectiveness.
type FingerprintStats struct {
	Entries          int
	Lookups, Matches int64
}

// Stats snapshots the index counters.
func (f *Fingerprints) Stats() FingerprintStats {
	if f == nil {
		return FingerprintStats{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return FingerprintStats{Entries: f.ll.Len(), Lookups: f.lookups, Matches: f.matches}
}
