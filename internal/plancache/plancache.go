// Package plancache is a bounded, concurrency-safe, content-addressed
// result cache with single-flight deduplication. Planning (paper
// Algorithm 1) is a pure function of (network, accelerator config,
// options), so the HTTP server keys completed plans and simulation results
// by a canonical SHA-256 hash of the request (scratchmem.PlanKey) and
// serves repeats as a map lookup. Concurrent requests for the same key
// collapse onto one computation; the rest wait for its result.
package plancache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"scratchmem/internal/faultinject"
	"scratchmem/internal/obs"
	"scratchmem/internal/policy"
)

// ErrPanic marks flight computations that panicked: the panic is recovered
// on the flight goroutine (so it cannot kill the process) and surfaced to
// every waiter as an error wrapping this sentinel. Panicking computations
// are never cached.
var ErrPanic = errors.New("plancache: panic computing")

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups served from a stored entry.
	Hits int64 `json:"hits"`
	// Misses counts lookups that started a new computation.
	Misses int64 `json:"misses"`
	// Coalesced counts lookups that joined an in-flight computation
	// instead of starting their own (single-flight deduplication).
	Coalesced int64 `json:"coalesced"`
	// Evictions counts entries dropped to stay within capacity.
	Evictions int64 `json:"evictions"`
	// Entries is the current number of stored entries.
	Entries int `json:"entries"`
	// Capacity is the maximum number of stored entries (0 disables
	// storage; single-flight deduplication still applies).
	Capacity int `json:"capacity"`
}

type entry struct {
	key string
	val any
}

// call is one in-flight computation; waiters block on done.
type call struct {
	done chan struct{}
	val  any
	err  error
	// waiters counts the callers still blocked on this flight (guarded by
	// Cache.mu). When it drops to zero the computation context is canceled:
	// nobody is left to consume the result, so fn may abort early. A call
	// with zero waiters is abandoned — new callers start a fresh flight
	// rather than inheriting a canceled one.
	waiters int
	cancel  context.CancelFunc
	// noStore marks a flight whose key was removed (Remove/Purge) while the
	// computation was running: waiters still receive the result, but it is
	// not stored — the removal wins over the race. Guarded by Cache.mu.
	noStore bool
}

// Cache is an LRU keyed by canonical request hashes. The zero value is not
// usable; construct with New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*call

	// fp, when attached, is invalidated in lockstep with the stored
	// entries: Remove/Purge/eviction of a key also drops its fingerprint,
	// so a plan the cache can no longer serve is never spliced from.
	fp *Fingerprints

	hits, misses, coalesced, evictions int64
}

// New returns a cache holding at most capacity entries. capacity <= 0
// disables storage but keeps single-flight deduplication.
func New(capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// Get returns the stored value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*entry).val, true
}

// Contains reports whether key is stored, without touching recency order or
// the hit/miss counters — the probe rewarm uses before deciding whether a
// snapshot record is worth inserting.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Do returns the value for key, computing it with fn on a miss. Concurrent
// calls with the same key run fn exactly once: the first caller becomes the
// leader, the rest wait for its result. shared reports that the value came
// from the cache or from another caller's flight rather than from running
// fn here.
//
// The computation runs on its own goroutine under a context owned by the
// flight, not by any single caller: one waiter's ctx expiring does not
// disturb the computation while other waiters remain (they still get the
// result, and it is cached). Only when the LAST waiter abandons the flight
// is the computation context canceled — fn may honour it to stop burning a
// worker slot nobody is waiting for, or ignore it and still have a
// successful result cached for future requests. Errors and panics in fn
// are returned to all current waiters and are never cached.
func (c *Cache) Do(ctx context.Context, key string, fn func(ctx context.Context) (any, error)) (val any, shared bool, err error) {
	ctx, span := obs.StartSpan(ctx, "cache")
	if span != nil {
		span.SetAttr("key", key)
		defer span.End()
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v := el.Value.(*entry).val
		c.mu.Unlock()
		span.SetAttr("outcome", "hit")
		return v, true, nil
	}
	if cl, ok := c.inflight[key]; ok && cl.waiters > 0 {
		cl.waiters++
		c.coalesced++
		c.mu.Unlock()
		span.SetAttr("outcome", "coalesced")
		return c.wait(ctx, cl, true)
	}
	c.misses++
	span.SetAttr("outcome", "miss")
	// The flight owns its lifetime (see above) but keeps the caller's
	// observability: Detach carries the tracer, span and logger across
	// without the deadline, so spans opened inside fn land in the leader's
	// trace even though the computation can outlive the leader.
	callCtx, cancel := context.WithCancel(obs.Detach(ctx))
	cl := &call{done: make(chan struct{}), waiters: 1, cancel: cancel}
	c.inflight[key] = cl
	c.mu.Unlock()

	go func() {
		defer func() {
			if r := recover(); r != nil {
				cl.err = fmt.Errorf("%w %s: %v", ErrPanic, key, r)
				cl.val = nil
			}
			cancel()
			c.mu.Lock()
			// An abandoned flight may have been replaced by a fresh one;
			// only remove the entry if it is still ours.
			if c.inflight[key] == cl {
				delete(c.inflight, key)
			}
			if cl.err == nil && !cl.noStore {
				c.storeLocked(key, cl.val)
			}
			c.mu.Unlock()
			close(cl.done)
		}()
		if err := faultinject.Hit("plancache.flight"); err != nil {
			cl.err = err
			return
		}
		cl.val, cl.err = fn(callCtx)
	}()

	return c.wait(ctx, cl, false)
}

// wait blocks until cl completes or ctx expires. A waiter that gives up
// decrements the count; the last one out cancels the computation context.
func (c *Cache) wait(ctx context.Context, cl *call, shared bool) (any, bool, error) {
	select {
	case <-cl.done:
		return cl.val, shared, cl.err
	case <-ctx.Done():
		c.mu.Lock()
		cl.waiters--
		abandoned := cl.waiters == 0
		c.mu.Unlock()
		if abandoned {
			cl.cancel()
		}
		return nil, false, ctx.Err()
	}
}

// storeLocked inserts key as most recently used and evicts from the cold
// end while over capacity. Caller holds c.mu.
func (c *Cache) storeLocked(key string, val any) {
	if c.capacity == 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		cold := c.ll.Back()
		c.ll.Remove(cold)
		delete(c.items, cold.Value.(*entry).key)
		c.fp.Invalidate(cold.Value.(*entry).key)
		c.evictions++
	}
}

// AttachFingerprints ties a fingerprint index to the cache's lifecycle:
// from now on Remove, Purge and capacity eviction also invalidate the
// removed keys' fingerprints.
func (c *Cache) AttachFingerprints(f *Fingerprints) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fp = f
}

// InsertFingerprint indexes key's shape chain, but only while key is
// actually stored — checked under the cache lock, so a concurrent
// Remove/Purge can never leave a fingerprint behind for a plan the cache
// no longer serves. No-op when no index is attached.
func (c *Cache) InsertFingerprint(key, group string, chain []policy.LayerKey, ck any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fp == nil {
		return
	}
	if _, ok := c.items[key]; !ok {
		return
	}
	c.fp.Insert(key, group, chain, ck)
}

// Put stores val under key as the most recently used entry, evicting from
// the cold end if the insert pushes the cache over capacity. It is the
// restore half of Snapshot: a warm boot re-inserts snapshotted entries
// without running a computation. A no-op when storage is disabled.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeLocked(key, val)
}

// Remove drops the stored entry for key. If a flight for key is currently
// in progress its result is delivered to the waiters but not stored, so a
// removal cannot lose the race against a concurrent computation. Reports
// whether anything was removed (a stored entry dropped or an in-flight
// store suppressed).
func (c *Cache) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := false
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
		removed = true
	}
	if cl, ok := c.inflight[key]; ok && !cl.noStore {
		cl.noStore = true
		removed = true
	}
	c.fp.Invalidate(key)
	return removed
}

// Purge drops every stored entry and suppresses the store of every
// in-flight computation (waiters still get their results), returning how
// many stored entries were dropped.
func (c *Cache) Purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.ll.Init()
	clear(c.items)
	c.fp.Clear()
	for _, cl := range c.inflight {
		cl.noStore = true
	}
	return n
}

// Entry is one stored (key, value) pair of a Snapshot.
type Entry struct {
	Key string
	Val any
}

// Snapshot returns the stored entries from most to least recently used.
// Values are shared, not copied: snapshot consumers must treat them as
// immutable (cache values already are — they are served to concurrent
// requests).
func (c *Cache) Snapshot() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		out = append(out, Entry{Key: e.key, Val: e.val})
	}
	return out
}

// Len returns the current number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
	}
}
