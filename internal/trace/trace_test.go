package trace

import (
	"strings"
	"testing"
)

func TestLogTotalsAndCSV(t *testing.T) {
	var l Log
	l.Add("conv1", 0, LoadIfmap, 100)
	l.Add("conv1", 0, LoadFilter, 50)
	l.Add("conv1", 1, Compute, 4000)
	l.Add("conv1", 2, StoreOfmap, 30)
	l.Add("conv1", 3, LoadIfmap, 0) // dropped
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	tot := l.Totals()
	if tot[LoadIfmap] != 100 || tot[LoadFilter] != 50 || tot[Compute] != 4000 || tot[StoreOfmap] != 30 {
		t.Errorf("totals = %v", tot)
	}
	var sb strings.Builder
	if err := l.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"layer,step,kind,elems", "conv1,0,load_ifmap,100", "conv1,1,compute,4000"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		LoadIfmap: "load_ifmap", LoadFilter: "load_filter",
		StoreOfmap: "store_ofmap", Compute: "compute",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind string")
	}
}
