// Package trace defines the event records the execution engine emits — one
// per DMA transfer or compute burst — and writers that render them as CSV,
// in the spirit of SCALE-Sim's trace files. Traces make a plan's data
// movement auditable: the per-data-type sums of a trace must equal the
// analytical estimates, which the integration tests assert.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Kind classifies an event.
type Kind int

const (
	// LoadIfmap is a DRAM-to-GLB ifmap transfer.
	LoadIfmap Kind = iota
	// LoadFilter is a DRAM-to-GLB weight transfer.
	LoadFilter
	// StoreOfmap is a GLB-to-DRAM output transfer.
	StoreOfmap
	// Compute is a MAC burst on the PE array.
	Compute
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case LoadIfmap:
		return "load_ifmap"
	case LoadFilter:
		return "load_filter"
	case StoreOfmap:
		return "store_ofmap"
	case Compute:
		return "compute"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one step of an executed schedule.
type Event struct {
	// Layer names the layer the event belongs to.
	Layer string
	// Step is the schedule position within the layer.
	Step int
	// Kind classifies the event.
	Kind Kind
	// Elems is the transfer size in elements (loads/stores) or the MAC
	// count (compute).
	Elems int64
}

// Log accumulates events.
type Log struct {
	Events []Event
}

// Add appends an event, dropping empty ones.
func (l *Log) Add(layer string, step int, kind Kind, elems int64) {
	if elems <= 0 {
		return
	}
	l.Events = append(l.Events, Event{Layer: layer, Step: step, Kind: kind, Elems: elems})
}

// Totals sums the log per kind.
func (l *Log) Totals() map[Kind]int64 {
	t := make(map[Kind]int64, 4)
	for _, e := range l.Events {
		t[e.Kind] += e.Elems
	}
	return t
}

// WriteCSV renders the log as CSV with a header row.
func (l *Log) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"layer", "step", "kind", "elems"}); err != nil {
		return err
	}
	for _, e := range l.Events {
		rec := []string{e.Layer, strconv.Itoa(e.Step), e.Kind.String(), strconv.FormatInt(e.Elems, 10)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Len returns the number of events.
func (l *Log) Len() int { return len(l.Events) }
