package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 100
		seen := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Error("ForEach called f for n <= 0")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	got := Map(50, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapZero(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); len(got) != 0 {
		t.Errorf("Map(0) returned %d elements", len(got))
	}
}
