package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 100
		seen := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Error("ForEach called f for n <= 0")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	got := Map(50, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapZero(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); len(got) != 0 {
		t.Errorf("Map(0) returned %d elements", len(got))
	}
}

func TestForEachPanicPropagatesToCaller(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n := 50
		var visited int32
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic not propagated", workers)
				}
				p, ok := r.(*Panic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *Panic", workers, r)
				}
				if p.Value != "boom 7" {
					t.Errorf("workers=%d: panic value %v, want boom 7", workers, p.Value)
				}
				if len(p.Stack) == 0 {
					t.Errorf("workers=%d: panic carries no stack", workers)
				}
			}()
			ForEach(n, workers, func(i int) {
				atomic.AddInt32(&visited, 1)
				if i == 7 {
					panic("boom 7")
				}
			})
		}()
		// The pool must keep draining after a panic so the feeder never
		// deadlocks; with multiple workers every index still runs.
		if workers > 1 && visited != int32(n) {
			t.Errorf("workers=%d: visited %d of %d indices after panic", workers, visited, n)
		}
	}
}

func TestForEachFirstPanicWins(t *testing.T) {
	defer func() {
		r := recover()
		p, ok := r.(*Panic)
		if !ok {
			t.Fatalf("recovered %T, want *Panic", r)
		}
		if _, isInt := p.Value.(int); !isInt {
			t.Errorf("panic value %v (%T), want an index", p.Value, p.Value)
		}
	}()
	ForEach(32, 8, func(i int) { panic(i) })
}
