package parallel

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 100
		seen := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Error("ForEach called f for n <= 0")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	got := Map(50, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapZero(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); len(got) != 0 {
		t.Errorf("Map(0) returned %d elements", len(got))
	}
}

func TestForEachPanicPropagatesToCaller(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n := 50
		var visited int32
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic not propagated", workers)
				}
				p, ok := r.(*Panic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *Panic", workers, r)
				}
				if p.Value != "boom 7" {
					t.Errorf("workers=%d: panic value %v, want boom 7", workers, p.Value)
				}
				if len(p.Stack) == 0 {
					t.Errorf("workers=%d: panic carries no stack", workers)
				}
			}()
			ForEach(n, workers, func(i int) {
				atomic.AddInt32(&visited, 1)
				if i == 7 {
					panic("boom 7")
				}
			})
		}()
		// The pool must keep draining after a panic so the feeder never
		// deadlocks; with multiple workers every index still runs.
		if workers > 1 && visited != int32(n) {
			t.Errorf("workers=%d: visited %d of %d indices after panic", workers, visited, n)
		}
	}
}

func TestForEachFirstPanicWins(t *testing.T) {
	defer func() {
		r := recover()
		p, ok := r.(*Panic)
		if !ok {
			t.Fatalf("recovered %T, want *Panic", r)
		}
		if _, isInt := p.Value.(int); !isInt {
			t.Errorf("panic value %v (%T), want an index", p.Value, p.Value)
		}
	}()
	ForEach(32, 8, func(i int) { panic(i) })
}

func TestForEachCtxCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 100
		seen := make([]int32, n)
		err := ForEachCtx(context.Background(), n, workers, func(_ context.Context, i int) error {
			atomic.AddInt32(&seen[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := ForEachCtx(ctx, 10, 4, func(context.Context, int) error {
		called = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Error("f ran despite pre-canceled context")
	}
}

func TestForEachCtxCancelMidFlight(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		n := 1000
		var started int32
		release := make(chan struct{})
		err := ForEachCtx(ctx, n, workers, func(ctx context.Context, i int) error {
			if atomic.AddInt32(&started, 1) == int32(workers) {
				cancel() // every worker is now mid-flight; stop dispatching
				close(release)
			}
			<-release
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// In-flight calls drain; nothing new is dispatched after cancel, so
		// far fewer than n indices ran. Allow generous slack for handoffs
		// already sitting in the channel.
		if got := atomic.LoadInt32(&started); got > int32(workers)+2 {
			t.Errorf("workers=%d: %d calls started after cancel, want <= %d", workers, got, workers+2)
		}
	}
}

func TestForEachCtxFirstErrorWinsAndStopsDispatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		boom := errors.New("boom")
		var calls int32
		err := ForEachCtx(context.Background(), 1000, workers, func(_ context.Context, i int) error {
			atomic.AddInt32(&calls, 1)
			return boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		// The feeder checks for a recorded error before every dispatch, so
		// at most a handful of calls beyond the pool width ever start.
		if got := atomic.LoadInt32(&calls); got > int32(workers)*2+2 {
			t.Errorf("workers=%d: %d calls ran after first error, want <= %d", workers, got, workers*2+2)
		}
	}
}

func TestForEachCtxDrainsRunningWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workers := 4
	var inFlight, done int32
	err := ForEachCtx(ctx, 100, workers, func(ctx context.Context, i int) error {
		if atomic.AddInt32(&inFlight, 1) == int32(workers) {
			cancel()
		}
		// Simulate work that finishes after cancellation: ForEachCtx must
		// wait for it (drain), not abandon the goroutine.
		time.Sleep(5 * time.Millisecond)
		atomic.AddInt32(&done, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := atomic.LoadInt32(&done); d < int32(workers) {
		t.Errorf("only %d in-flight calls completed before return, want >= %d", d, workers)
	}
}

func TestForEachCtxPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				p, ok := r.(*Panic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *Panic", workers, r)
				}
				if p.Value != "boom 3" {
					t.Errorf("workers=%d: panic value %v, want boom 3", workers, p.Value)
				}
			}()
			ForEachCtx(context.Background(), 50, workers, func(_ context.Context, i int) error {
				if i == 3 {
					panic("boom 3")
				}
				return nil
			})
		}()
	}
}

func TestMapCtxPreservesOrder(t *testing.T) {
	got, err := MapCtx(context.Background(), 50, 8, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapCtxError(t *testing.T) {
	boom := errors.New("boom")
	_, err := MapCtx(context.Background(), 20, 4, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestWorkerCountDefaultsToGOMAXPROCS: a zero worker knob resolves to the
// runtime's GOMAXPROCS rather than any hardcoded literal.
func TestWorkerCountDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := workerCount(0), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("workerCount(0) = %d, want GOMAXPROCS = %d", got, want)
	}
	if got := workerCount(3); got != 3 {
		t.Fatalf("workerCount(3) = %d, want 3", got)
	}
	// The zero default actually runs work (and from more than one
	// goroutine when the machine has them).
	var n atomic.Int64
	ForEach(100, 0, func(i int) { n.Add(1) })
	if n.Load() != 100 {
		t.Fatalf("ForEach with default workers ran %d calls, want 100", n.Load())
	}
	out, err := MapCtx(context.Background(), 10, 0, func(ctx context.Context, i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("MapCtx[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestNegativeWorkersPanic: a negative worker count is a programming
// error and fails loudly, naming the offending value.
func TestNegativeWorkersPanic(t *testing.T) {
	for name, call := range map[string]func(){
		"ForEach":    func() { ForEach(1, -1, func(int) {}) },
		"ForEachCtx": func() { _ = ForEachCtx(context.Background(), 1, -2, func(context.Context, int) error { return nil }) },
		"Map":        func() { _ = Map(1, -1, func(int) int { return 0 }) },
		"MapCtx": func() {
			_, _ = MapCtx(context.Background(), 1, -3, func(context.Context, int) (int, error) { return 0, nil })
		},
	} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s with negative workers did not panic", name)
					return
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "negative worker count") {
					t.Errorf("%s panic = %v, want a message naming the negative worker count", name, r)
				}
			}()
			call()
		}()
	}
}
