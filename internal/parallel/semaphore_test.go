package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSemaphoreBoundsConcurrency(t *testing.T) {
	const limit, tasks = 3, 20
	sem := NewSemaphore(limit)
	if sem.Cap() != limit {
		t.Fatalf("Cap() = %d, want %d", sem.Cap(), limit)
	}
	var cur, peak int32
	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sem.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			defer sem.Release()
			c := atomic.AddInt32(&cur, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt32(&cur, -1)
		}()
	}
	wg.Wait()
	if peak > limit {
		t.Errorf("observed %d concurrent holders, limit %d", peak, limit)
	}
	if sem.InUse() != 0 {
		t.Errorf("InUse() = %d after all released", sem.InUse())
	}
}

func TestSemaphoreAcquireRespectsContext(t *testing.T) {
	sem := NewSemaphore(1)
	if err := sem.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := sem.Acquire(ctx); err != context.DeadlineExceeded {
		t.Errorf("Acquire on full semaphore: err = %v, want DeadlineExceeded", err)
	}
	sem.Release()
}

func TestSemaphoreTryAcquire(t *testing.T) {
	sem := NewSemaphore(1)
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire failed on empty semaphore")
	}
	if sem.TryAcquire() {
		t.Fatal("TryAcquire succeeded on full semaphore")
	}
	sem.Release()
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire failed after Release")
	}
}

func TestSemaphoreReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unbalanced Release did not panic")
		}
	}()
	NewSemaphore(2).Release()
}
