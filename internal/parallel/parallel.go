// Package parallel provides the small fan-out helper the experiment
// drivers use to evaluate independent (model, buffer-size, scheme) cells
// concurrently. It follows the worker-pool idiom from Effective Go: a fixed
// number of goroutines draining an index channel, synchronised with a
// WaitGroup — no shared mutable state beyond the caller's pre-sized result
// slices. It also provides the context-aware counting Semaphore the HTTP
// server uses to bound in-flight planner and simulator executions.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Panic wraps a panic value recovered from a worker goroutine so the caller
// can distinguish a propagated worker panic from one of its own.
type Panic struct {
	// Value is the original panic value.
	Value any
	// Stack is the worker goroutine's stack at the time of the panic.
	Stack []byte
}

func (p *Panic) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", p.Value, p.Stack)
}

// ForEach runs f(i) for every i in [0, n), distributing indices over
// workers goroutines (GOMAXPROCS when workers <= 0). It returns when all
// calls completed. f must only write to per-index state.
//
// A panic inside f does not kill the process from an anonymous worker
// goroutine: the first panic is recovered, every remaining index still
// runs, and after all workers finish the panic is re-raised on the caller's
// goroutine wrapped in *Panic — so a server handler can convert it into a
// 500 with recover().
func ForEach(n, workers int, f func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Single-worker calls run on the caller's goroutine; a panic
		// already propagates there, but wrap it the same way so callers
		// see one type regardless of worker count.
		for i := 0; i < n; i++ {
			callSafe(f, i, nil)
		}
		return
	}
	var (
		once     sync.Once
		panicked *Panic
	)
	record := func(p *Panic) { once.Do(func() { panicked = p }) }
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				callSafe(f, i, record)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// callSafe invokes f(i), converting a panic into *Panic. With record nil it
// re-panics immediately (synchronous path); otherwise it records the panic
// and returns, so the worker keeps draining indices and the feeder never
// blocks on a dead pool.
func callSafe(f func(int), i int, record func(*Panic)) {
	defer func() {
		if r := recover(); r != nil {
			p, ok := r.(*Panic)
			if !ok {
				p = &Panic{Value: r, Stack: stack()}
			}
			if record == nil {
				panic(p)
			}
			record(p)
		}
	}()
	f(i)
}

func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// Map runs f over [0, n) like ForEach and collects the results in order.
func Map[T any](n, workers int, f func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = f(i) })
	return out
}
