// Package parallel provides the small fan-out helper the experiment
// drivers use to evaluate independent (model, buffer-size, scheme) cells
// concurrently. It follows the worker-pool idiom from Effective Go: a fixed
// number of goroutines draining an index channel, synchronised with a
// WaitGroup — no shared mutable state beyond the caller's pre-sized result
// slices.
package parallel

import (
	"runtime"
	"sync"
)

// ForEach runs f(i) for every i in [0, n), distributing indices over
// workers goroutines (GOMAXPROCS when workers <= 0). It returns when all
// calls completed. f must only write to per-index state.
func ForEach(n, workers int, f func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// Map runs f over [0, n) like ForEach and collects the results in order.
func Map[T any](n, workers int, f func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = f(i) })
	return out
}
