// Package parallel provides the small fan-out helper the experiment
// drivers use to evaluate independent (model, buffer-size, scheme) cells
// concurrently. It follows the worker-pool idiom from Effective Go: a fixed
// number of goroutines draining an index channel, synchronised with a
// WaitGroup — no shared mutable state beyond the caller's pre-sized result
// slices. It also provides the context-aware counting Semaphore the HTTP
// server uses to bound in-flight planner and simulator executions.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Panic wraps a panic value recovered from a worker goroutine so the caller
// can distinguish a propagated worker panic from one of its own.
type Panic struct {
	// Value is the original panic value.
	Value any
	// Stack is the worker goroutine's stack at the time of the panic.
	Stack []byte
}

func (p *Panic) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", p.Value, p.Stack)
}

// workerCount resolves a caller's worker knob: 0 means "let the runtime
// decide" (GOMAXPROCS, so fan-out scales with cores rather than a
// hardcoded literal), positive counts are honoured as-is, and negative
// counts are a programming error worth failing loudly on — a silent
// default would mask the caller's broken arithmetic.
func workerCount(workers int) int {
	if workers < 0 {
		panic(fmt.Sprintf("parallel: negative worker count %d (0 selects GOMAXPROCS)", workers))
	}
	if workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ForEach runs f(i) for every i in [0, n), distributing indices over
// workers goroutines (GOMAXPROCS when workers is 0; negative counts
// panic). It returns when all calls completed. f must only write to
// per-index state.
//
// A panic inside f does not kill the process from an anonymous worker
// goroutine: the first panic is recovered, every remaining index still
// runs, and after all workers finish the panic is re-raised on the caller's
// goroutine wrapped in *Panic — so a server handler can convert it into a
// 500 with recover().
func ForEach(n, workers int, f func(i int)) {
	workers = workerCount(workers)
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Single-worker calls run on the caller's goroutine; a panic
		// already propagates there, but wrap it the same way so callers
		// see one type regardless of worker count.
		for i := 0; i < n; i++ {
			callSafe(f, i, nil)
		}
		return
	}
	var (
		once     sync.Once
		panicked *Panic
	)
	record := func(p *Panic) { once.Do(func() { panicked = p }) }
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				callSafe(f, i, record)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// callSafe invokes f(i), converting a panic into *Panic. With record nil it
// re-panics immediately (synchronous path); otherwise it records the panic
// and returns, so the worker keeps draining indices and the feeder never
// blocks on a dead pool.
func callSafe(f func(int), i int, record func(*Panic)) {
	defer func() {
		if r := recover(); r != nil {
			p, ok := r.(*Panic)
			if !ok {
				p = &Panic{Value: r, Stack: stack()}
			}
			if record == nil {
				panic(p)
			}
			record(p)
		}
	}()
	f(i)
}

func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// Map runs f over [0, n) like ForEach and collects the results in order.
func Map[T any](n, workers int, f func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = f(i) })
	return out
}

// ForEachCtx is the context-aware ForEach: it runs f(ctx, i) for every i in
// [0, n) over workers goroutines, stops dispatching new indices as soon as
// ctx is cancelled or any call returns a non-nil error, drains the calls
// already running, and returns the first error (first-error-wins; ctx.Err()
// when cancellation came first). Indices not yet dispatched at that point
// never run. Worker panics propagate to the caller wrapped in *Panic,
// exactly like ForEach.
func ForEachCtx(ctx context.Context, n, workers int, f func(ctx context.Context, i int) error) error {
	workers = workerCount(workers)
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	var (
		mu    sync.Mutex
		first error
	)
	record := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return first != nil
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				record(err)
				break
			}
			if err := callSafeErr(ctx, f, i, nil); err != nil {
				record(err)
				break
			}
		}
		return first
	}
	var (
		panicOnce sync.Once
		panicked  *Panic
	)
	recordPanic := func(p *Panic) { panicOnce.Do(func() { panicked = p }) }
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // past cancellation: drain the channel without running
				}
				record(callSafeErr(ctx, f, i, recordPanic))
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			record(err)
			break
		}
		if failed() {
			break
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			record(ctx.Err())
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return first
}

// callSafeErr invokes f(ctx, i), converting a panic into *Panic. With
// record nil (single-worker path) the panic re-raises on the caller's
// goroutine; otherwise it is recorded and the worker keeps draining.
func callSafeErr(ctx context.Context, f func(context.Context, int) error, i int, record func(*Panic)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			p, ok := r.(*Panic)
			if !ok {
				p = &Panic{Value: r, Stack: stack()}
			}
			if record == nil {
				panic(p)
			}
			record(p)
		}
	}()
	return f(ctx, i)
}

// MapCtx runs f over [0, n) like ForEachCtx and collects the results in
// order. On cancellation or error the returned slice holds zero values at
// the indices that never ran; the error tells the caller not to use it.
func MapCtx[T any](ctx context.Context, n, workers int, f func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := f(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
