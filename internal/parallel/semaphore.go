package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
)

// ErrShed reports that a semaphore refused to queue an Acquire because its
// wait-queue bound was reached. Admission control: a caller past the bound
// learns immediately that the system is saturated (and can retry later)
// instead of camping on the queue until its deadline expires.
var ErrShed = errors.New("parallel: wait queue full, request shed")

// Semaphore is a counting semaphore with the same channel-of-tokens shape
// as ForEach's worker pool, made context-aware so a server can bound
// in-flight work without stranding requests past their deadline. An
// optional wait-queue bound (NewQueuedSemaphore) turns it into an admission
// controller: Acquires past the bound fail fast with ErrShed.
type Semaphore struct {
	slots   chan struct{}
	queue   int // max waiting Acquires; < 0 means unbounded
	waiting atomic.Int64
}

// NewSemaphore returns a semaphore admitting up to n concurrent holders
// (GOMAXPROCS when n <= 0) with an unbounded wait queue.
func NewSemaphore(n int) *Semaphore {
	return NewQueuedSemaphore(n, -1)
}

// NewQueuedSemaphore returns a semaphore admitting up to n concurrent
// holders (GOMAXPROCS when n <= 0) and at most queue waiting Acquires;
// once the queue is full further Acquires return ErrShed immediately.
// queue < 0 leaves waiting unbounded; queue 0 disables waiting entirely
// (Acquire degenerates to TryAcquire-or-shed).
func NewQueuedSemaphore(n, queue int) *Semaphore {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Semaphore{slots: make(chan struct{}, n), queue: queue}
}

// Acquire takes a free slot immediately when one exists; otherwise it joins
// the wait queue — shedding with ErrShed if the queue bound is reached —
// and blocks until a slot frees or ctx is done, returning ctx.Err() in the
// latter case.
func (s *Semaphore) Acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	if w := s.waiting.Add(1); s.queue >= 0 && w > int64(s.queue) {
		s.waiting.Add(-1)
		return ErrShed
	}
	defer s.waiting.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot if one is immediately free.
func (s *Semaphore) TryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot taken by a successful Acquire or TryAcquire.
func (s *Semaphore) Release() {
	select {
	case <-s.slots:
	default:
		panic("parallel: Semaphore.Release without a matching Acquire")
	}
}

// Cap returns the semaphore's capacity.
func (s *Semaphore) Cap() int { return cap(s.slots) }

// InUse returns the number of currently-held slots (a racy snapshot, for
// metrics only).
func (s *Semaphore) InUse() int { return len(s.slots) }

// Waiting returns the number of Acquires blocked on the queue (a racy
// snapshot, for metrics only).
func (s *Semaphore) Waiting() int { return int(s.waiting.Load()) }
