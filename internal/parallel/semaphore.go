package parallel

import (
	"context"
	"runtime"
)

// Semaphore is a counting semaphore with the same channel-of-tokens shape
// as ForEach's worker pool, made context-aware so a server can bound
// in-flight work without stranding requests past their deadline.
type Semaphore struct {
	slots chan struct{}
}

// NewSemaphore returns a semaphore admitting up to n concurrent holders
// (GOMAXPROCS when n <= 0).
func NewSemaphore(n int) *Semaphore {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Semaphore{slots: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free or ctx is done, returning ctx.Err()
// in the latter case.
func (s *Semaphore) Acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot if one is immediately free.
func (s *Semaphore) TryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot taken by a successful Acquire or TryAcquire.
func (s *Semaphore) Release() {
	select {
	case <-s.slots:
	default:
		panic("parallel: Semaphore.Release without a matching Acquire")
	}
}

// Cap returns the semaphore's capacity.
func (s *Semaphore) Cap() int { return cap(s.slots) }

// InUse returns the number of currently-held slots (a racy snapshot, for
// metrics only).
func (s *Semaphore) InUse() int { return len(s.slots) }
