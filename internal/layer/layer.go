// Package layer defines the hyperparameters of a neural-network layer as
// used throughout the scratchpad memory-management system (paper Table 1),
// together with the derived quantities the policy estimators need: data-type
// footprints, MAC counts and output shapes.
//
// All sizes returned by this package are in elements; callers convert to
// bytes with a data width (see Bytes). Element counts use int64 so that
// large fully-connected layers and whole-network aggregates cannot overflow
// on 32-bit builds.
package layer

import (
	"errors"
	"fmt"
)

// Type classifies a layer the way the paper's Table 2 does.
type Type int

const (
	// Conv is a standard convolution (CV).
	Conv Type = iota
	// DepthwiseConv is a depth-wise convolution (DW): one filter per input
	// channel, CO == CI, no cross-channel reduction.
	DepthwiseConv
	// PointwiseConv is a 1x1 convolution (PW).
	PointwiseConv
	// FullyConnected is a fully-connected layer (FC), modelled as a
	// convolution with IH=IW=FH=FW=OH=OW=1.
	FullyConnected
	// Projection is a 1x1 strided projection shortcut (PL), as in ResNet18.
	Projection
)

// String returns the paper's two-letter abbreviation for the layer type.
func (t Type) String() string {
	switch t {
	case Conv:
		return "CV"
	case DepthwiseConv:
		return "DW"
	case PointwiseConv:
		return "PW"
	case FullyConnected:
		return "FC"
	case Projection:
		return "PL"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType converts a two-letter abbreviation back into a Type.
func ParseType(s string) (Type, error) {
	switch s {
	case "CV":
		return Conv, nil
	case "DW":
		return DepthwiseConv, nil
	case "PW":
		return PointwiseConv, nil
	case "FC":
		return FullyConnected, nil
	case "PL":
		return Projection, nil
	}
	return 0, fmt.Errorf("layer: unknown layer type %q", s)
}

// Layer holds the hyperparameters of one convolutional or fully-connected
// layer (paper Table 1). The zero value is not a valid layer; use New or
// fill every field and call Validate.
type Layer struct {
	Name string
	Kind Type

	IH, IW int // ifmap height / width (unpadded)
	CI     int // ifmap / filter channels
	FH, FW int // filter height / width
	F      int // number of 3D filters (F#); for DW layers F == 1 per channel group
	S      int // stride
	P      int // padding (symmetric)
}

// New builds a layer and validates it.
func New(name string, kind Type, ih, iw, ci, fh, fw, f, s, p int) (Layer, error) {
	l := Layer{Name: name, Kind: kind, IH: ih, IW: iw, CI: ci, FH: fh, FW: fw, F: f, S: s, P: p}
	if err := l.Validate(); err != nil {
		return Layer{}, err
	}
	return l, nil
}

// MustNew is New for statically-known configurations; it panics on error.
func MustNew(name string, kind Type, ih, iw, ci, fh, fw, f, s, p int) Layer {
	l, err := New(name, kind, ih, iw, ci, fh, fw, f, s, p)
	if err != nil {
		panic(err)
	}
	return l
}

// FC builds a fully-connected layer with in input features and out outputs.
func FC(name string, in, out int) Layer {
	return MustNew(name, FullyConnected, 1, 1, in, 1, 1, out, 1, 0)
}

// ErrInvalid reports a malformed layer configuration.
var ErrInvalid = errors.New("layer: invalid configuration")

// Validate checks the hyperparameters for internal consistency: positive
// dimensions, a filter that fits inside the padded ifmap, stride alignment
// and the structural constraints of each layer type.
func (l *Layer) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s: %s", ErrInvalid, l.Name, fmt.Sprintf(format, args...))
	}
	if l.IH <= 0 || l.IW <= 0 || l.CI <= 0 || l.FH <= 0 || l.FW <= 0 || l.F <= 0 {
		return fail("non-positive dimension (IH=%d IW=%d CI=%d FH=%d FW=%d F=%d)",
			l.IH, l.IW, l.CI, l.FH, l.FW, l.F)
	}
	if l.S <= 0 {
		return fail("stride must be positive, got %d", l.S)
	}
	if l.P < 0 {
		return fail("padding must be non-negative, got %d", l.P)
	}
	if l.FH > l.IH+2*l.P || l.FW > l.IW+2*l.P {
		return fail("filter %dx%d larger than padded ifmap %dx%d",
			l.FH, l.FW, l.IH+2*l.P, l.IW+2*l.P)
	}
	switch l.Kind {
	case DepthwiseConv:
		if l.F != 1 {
			return fail("depth-wise layers have one filter per channel (F must be 1, got %d)", l.F)
		}
	case PointwiseConv, Projection:
		if l.FH != 1 || l.FW != 1 {
			return fail("%s layers use 1x1 filters, got %dx%d", l.Kind, l.FH, l.FW)
		}
	case FullyConnected:
		if l.IH != 1 || l.IW != 1 || l.FH != 1 || l.FW != 1 {
			return fail("FC layers are modelled with IH=IW=FH=FW=1")
		}
	}
	if (l.IH+2*l.P-l.FH)%l.S != 0 || (l.IW+2*l.P-l.FW)%l.S != 0 {
		// Real frameworks floor this; we allow it but it is worth flagging in
		// tests, so keep it valid. No error.
		_ = struct{}{}
	}
	return nil
}

// OH returns the output height: (IH - FH + 2P)/S + 1, floored as frameworks do.
func (l *Layer) OH() int { return (l.IH-l.FH+2*l.P)/l.S + 1 }

// OW returns the output width.
func (l *Layer) OW() int { return (l.IW-l.FW+2*l.P)/l.S + 1 }

// CO returns the number of output channels: F for CV/PW/FC/PL, CI for DW.
func (l *Layer) CO() int {
	if l.Kind == DepthwiseConv {
		return l.CI
	}
	return l.F
}

// PaddedIH returns IH + 2P.
func (l *Layer) PaddedIH() int { return l.IH + 2*l.P }

// PaddedIW returns IW + 2P.
func (l *Layer) PaddedIW() int { return l.IW + 2*l.P }

// IfmapElems returns the ifmap footprint in elements. When padded is true
// the zero-padding halo is counted too (the paper counts it for access and
// latency estimates but not in its Table 3 memory figures).
func (l *Layer) IfmapElems(padded bool) int64 {
	h, w := l.IH, l.IW
	if padded {
		h, w = l.PaddedIH(), l.PaddedIW()
	}
	return int64(h) * int64(w) * int64(l.CI)
}

// FilterElems returns the weight footprint in elements:
// FH*FW*CI*F# for dense convolutions, FH*FW*CI for depth-wise layers.
func (l *Layer) FilterElems() int64 {
	n := int64(l.FH) * int64(l.FW) * int64(l.CI)
	if l.Kind == DepthwiseConv {
		return n
	}
	return n * int64(l.F)
}

// OfmapElems returns the ofmap footprint in elements: OH*OW*CO.
func (l *Layer) OfmapElems() int64 {
	return int64(l.OH()) * int64(l.OW()) * int64(l.CO())
}

// MACs returns the multiply-accumulate count of the layer:
// OH*OW*CO*FH*FW*CI for dense convolutions and OH*OW*CI*FH*FW for
// depth-wise layers (no cross-channel reduction).
func (l *Layer) MACs() int64 {
	per := int64(l.FH) * int64(l.FW)
	if l.Kind != DepthwiseConv {
		per *= int64(l.CI)
	}
	return l.OfmapElems() * per
}

// Bytes converts an element count to bytes for the given data width in bits.
// Widths that are not multiples of 8 round each element up to whole bytes
// times count (the paper only uses 8/16/32).
func Bytes(elems int64, widthBits int) int64 {
	if widthBits <= 0 {
		panic("layer: data width must be positive")
	}
	return (elems*int64(widthBits) + 7) / 8
}

// KB converts an element count to kB (1024 bytes) for the given width.
func KB(elems int64, widthBits int) float64 {
	return float64(Bytes(elems, widthBits)) / 1024.0
}

// String summarises the layer in one line.
func (l Layer) String() string {
	return fmt.Sprintf("%s %s in=%dx%dx%d f=%dx%dx%d s=%d p=%d out=%dx%dx%d",
		l.Name, l.Kind, l.IH, l.IW, l.CI, l.FH, l.FW, l.F, l.S, l.P, l.OH(), l.OW(), l.CO())
}
