package layer

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestOutputShape(t *testing.T) {
	tests := []struct {
		name           string
		l              Layer
		oh, ow, co     int
		ifmap, filter  int64
		ofmap, macs    int64
		paddedIH, padW int
	}{
		{
			name: "resnet conv1",
			l:    MustNew("conv1", Conv, 224, 224, 3, 7, 7, 64, 2, 3),
			oh:   112, ow: 112, co: 64,
			ifmap: 224 * 224 * 3, filter: 7 * 7 * 3 * 64,
			ofmap: 112 * 112 * 64, macs: 112 * 112 * 64 * 7 * 7 * 3,
			paddedIH: 230, padW: 230,
		},
		{
			name: "3x3 same conv",
			l:    MustNew("c", Conv, 56, 56, 64, 3, 3, 64, 1, 1),
			oh:   56, ow: 56, co: 64,
			ifmap: 56 * 56 * 64, filter: 3 * 3 * 64 * 64,
			ofmap: 56 * 56 * 64, macs: 56 * 56 * 64 * 3 * 3 * 64,
			paddedIH: 58, padW: 58,
		},
		{
			name: "depthwise s2",
			l:    MustNew("dw", DepthwiseConv, 112, 112, 96, 3, 3, 1, 2, 1),
			oh:   56, ow: 56, co: 96,
			ifmap: 112 * 112 * 96, filter: 3 * 3 * 96,
			ofmap: 56 * 56 * 96, macs: 56 * 56 * 96 * 3 * 3,
			paddedIH: 114, padW: 114,
		},
		{
			name: "pointwise",
			l:    MustNew("pw", PointwiseConv, 56, 56, 96, 1, 1, 24, 1, 0),
			oh:   56, ow: 56, co: 24,
			ifmap: 56 * 56 * 96, filter: 96 * 24,
			ofmap: 56 * 56 * 24, macs: 56 * 56 * 24 * 96,
			paddedIH: 56, padW: 56,
		},
		{
			name: "fc",
			l:    FC("fc", 512, 1000),
			oh:   1, ow: 1, co: 1000,
			ifmap: 512, filter: 512 * 1000,
			ofmap: 1000, macs: 512 * 1000,
			paddedIH: 1, padW: 1,
		},
		{
			name: "projection",
			l:    MustNew("pl", Projection, 56, 56, 64, 1, 1, 128, 2, 0),
			oh:   28, ow: 28, co: 128,
			ifmap: 56 * 56 * 64, filter: 64 * 128,
			ofmap: 28 * 28 * 128, macs: 28 * 28 * 128 * 64,
			paddedIH: 56, padW: 56,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			l := tc.l
			if got := l.OH(); got != tc.oh {
				t.Errorf("OH = %d, want %d", got, tc.oh)
			}
			if got := l.OW(); got != tc.ow {
				t.Errorf("OW = %d, want %d", got, tc.ow)
			}
			if got := l.CO(); got != tc.co {
				t.Errorf("CO = %d, want %d", got, tc.co)
			}
			if got := l.IfmapElems(false); got != tc.ifmap {
				t.Errorf("IfmapElems = %d, want %d", got, tc.ifmap)
			}
			if got := l.FilterElems(); got != tc.filter {
				t.Errorf("FilterElems = %d, want %d", got, tc.filter)
			}
			if got := l.OfmapElems(); got != tc.ofmap {
				t.Errorf("OfmapElems = %d, want %d", got, tc.ofmap)
			}
			if got := l.MACs(); got != tc.macs {
				t.Errorf("MACs = %d, want %d", got, tc.macs)
			}
			if got := l.PaddedIH(); got != tc.paddedIH {
				t.Errorf("PaddedIH = %d, want %d", got, tc.paddedIH)
			}
			if got := l.PaddedIW(); got != tc.padW {
				t.Errorf("PaddedIW = %d, want %d", got, tc.padW)
			}
		})
	}
}

func TestPaddedIfmap(t *testing.T) {
	l := MustNew("c", Conv, 10, 12, 4, 3, 3, 8, 1, 1)
	if got, want := l.IfmapElems(true), int64(12*14*4); got != want {
		t.Errorf("padded ifmap = %d, want %d", got, want)
	}
	if got, want := l.IfmapElems(false), int64(10*12*4); got != want {
		t.Errorf("unpadded ifmap = %d, want %d", got, want)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Layer{
		{Name: "zero", Kind: Conv},
		{Name: "negpad", Kind: Conv, IH: 8, IW: 8, CI: 1, FH: 3, FW: 3, F: 1, S: 1, P: -1},
		{Name: "zerostride", Kind: Conv, IH: 8, IW: 8, CI: 1, FH: 3, FW: 3, F: 1, S: 0, P: 0},
		{Name: "bigfilter", Kind: Conv, IH: 2, IW: 2, CI: 1, FH: 5, FW: 5, F: 1, S: 1, P: 0},
		{Name: "dwmulti", Kind: DepthwiseConv, IH: 8, IW: 8, CI: 4, FH: 3, FW: 3, F: 2, S: 1, P: 1},
		{Name: "pw3x3", Kind: PointwiseConv, IH: 8, IW: 8, CI: 4, FH: 3, FW: 3, F: 2, S: 1, P: 1},
		{Name: "fcspace", Kind: FullyConnected, IH: 2, IW: 1, CI: 4, FH: 1, FW: 1, F: 2, S: 1, P: 0},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", l.Name)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New("x", Conv, 0, 1, 1, 1, 1, 1, 1, 0); err == nil {
		t.Fatal("New with zero IH should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on invalid layer")
		}
	}()
	MustNew("x", Conv, 0, 1, 1, 1, 1, 1, 1, 0)
}

func TestTypeRoundTrip(t *testing.T) {
	for _, k := range []Type{Conv, DepthwiseConv, PointwiseConv, FullyConnected, Projection} {
		got, err := ParseType(k.String())
		if err != nil {
			t.Fatalf("ParseType(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("round trip %v -> %q -> %v", k, k.String(), got)
		}
	}
	if _, err := ParseType("XX"); err == nil {
		t.Error("ParseType(XX) should fail")
	}
	if s := Type(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown type string = %q", s)
	}
}

func TestBytes(t *testing.T) {
	tests := []struct {
		elems int64
		width int
		want  int64
	}{
		{100, 8, 100},
		{100, 16, 200},
		{100, 32, 400},
		{3, 4, 2}, // sub-byte widths round the total up
		{1, 1, 1},
	}
	for _, tc := range tests {
		if got := Bytes(tc.elems, tc.width); got != tc.want {
			t.Errorf("Bytes(%d, %d) = %d, want %d", tc.elems, tc.width, got, tc.want)
		}
	}
	if got := KB(1024, 8); got != 1.0 {
		t.Errorf("KB(1024, 8) = %v, want 1", got)
	}
}

func TestBytesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bytes did not panic on zero width")
		}
	}()
	Bytes(1, 0)
}

// randomLayer generates a small valid conv layer for property tests.
func randomLayer(r *rand.Rand) Layer {
	fh := 1 + r.Intn(5)
	fw := 1 + r.Intn(5)
	p := r.Intn(3)
	s := 1 + r.Intn(2)
	ih := fh + r.Intn(40)
	iw := fw + r.Intn(40)
	ci := 1 + r.Intn(32)
	f := 1 + r.Intn(64)
	return MustNew("rand", Conv, ih, iw, ci, fh, fw, f, s, p)
}

// Generate implements quick.Generator so Layer can be used in property tests.
func (Layer) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomLayer(r))
}

func TestShapeInvariants(t *testing.T) {
	f := func(l Layer) bool {
		if l.OH() <= 0 || l.OW() <= 0 {
			return false
		}
		// Output never exceeds padded input extent for stride >= 1.
		if l.OH() > l.PaddedIH() || l.OW() > l.PaddedIW() {
			return false
		}
		// MACs factorises as ofmap elems times per-element work.
		if l.MACs()%l.OfmapElems() != 0 {
			return false
		}
		// Padding only grows the ifmap.
		return l.IfmapElems(true) >= l.IfmapElems(false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStringIncludesShape(t *testing.T) {
	l := MustNew("conv1", Conv, 224, 224, 3, 7, 7, 64, 2, 3)
	s := l.String()
	for _, want := range []string{"conv1", "CV", "224x224x3", "112x112x64"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
