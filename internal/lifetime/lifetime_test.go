package lifetime

import (
	"testing"

	"scratchmem/internal/glb"
	"scratchmem/internal/layer"
	"scratchmem/internal/model"
)

// diamond builds a 2-branch diamond: stem feeds two parallel convs whose
// outputs join in a concat-consuming conv.
func diamond(t *testing.T) *model.Graph {
	t.Helper()
	mk := func(name string, ci, f int) layer.Layer {
		return layer.MustNew(name, layer.Conv, 8, 8, ci, 3, 3, f, 1, 1)
	}
	g := &model.Graph{Name: "diamond", Nodes: []model.GraphNode{
		{Layer: mk("stem", 3, 16), Inputs: []string{"@in0"}},
		{Layer: mk("left", 16, 8), Inputs: []string{"stem"}},
		{Layer: mk("right", 16, 8), Inputs: []string{"stem"}},
		{Layer: mk("join", 16, 16), Inputs: []string{"left", "right"}},
	}}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestScheduleTopologicalAndDeterministic(t *testing.T) {
	g := diamond(t)
	order := Schedule(g)
	if len(order) != 4 {
		t.Fatalf("schedule has %d entries, want 4", len(order))
	}
	pos := make([]int, 4)
	for k, i := range order {
		pos[i] = k
	}
	// Topological: stem before both branches, branches before the join.
	if pos[0] > pos[1] || pos[0] > pos[2] || pos[1] > pos[3] || pos[2] > pos[3] {
		t.Fatalf("schedule %v violates dependencies", order)
	}
	for i := 0; i < 10; i++ {
		again := Schedule(g)
		for k := range order {
			if order[k] != again[k] {
				t.Fatalf("schedule not deterministic: %v vs %v", order, again)
			}
		}
	}
}

func TestScheduleChainIsIdentity(t *testing.T) {
	n, err := model.Builtin("MobileNet")
	if err != nil {
		t.Fatal(err)
	}
	g := model.FromNetwork(n)
	for k, i := range Schedule(g) {
		if i != k {
			t.Fatalf("chain schedule moved node %d to step %d", i, k)
		}
	}
}

func TestAnalyzeIntervals(t *testing.T) {
	g := diamond(t)
	order := Schedule(g)
	lv := Analyze(g, order)
	stem := lv.Tensors[lv.Index["stem"]]
	if len(stem.Consumers) != 2 {
		t.Fatalf("stem has %d consumers, want 2", len(stem.Consumers))
	}
	// stem must stay live until the later of the two branches.
	want := lv.Pos[1]
	if lv.Pos[2] > want {
		want = lv.Pos[2]
	}
	if stem.LastUse != want {
		t.Fatalf("stem LastUse = %d, want %d", stem.LastUse, want)
	}
	join := lv.Tensors[lv.Index["join"]]
	if join.Interior() {
		t.Fatal("terminal tensor reported interior")
	}
	if !stem.Interior() {
		t.Fatal("stem not interior")
	}
}

func TestAssignPlacesAndFails(t *testing.T) {
	g := diamond(t)
	lv := Analyze(g, Schedule(g))
	resident := map[string]bool{"stem": true, "left": true, "right": true}
	ident := func(e int64) int64 { return e }

	placed, _, ok := Assign(lv, resident, 1<<20, ident)
	if !ok {
		t.Fatal("roomy assign failed")
	}
	if len(placed) != 3 {
		t.Fatalf("placed %d tensors, want 3", len(placed))
	}
	for name, s := range placed {
		if want := lv.Tensors[lv.Index[name]].Elems; s.Size() != want {
			t.Fatalf("%s span %+v holds %d, want %d", name, s, s.Size(), want)
		}
	}

	_, fail, ok := Assign(lv, resident, 64, ident)
	if ok {
		t.Fatal("64-byte assign succeeded for kilobyte tensors")
	}
	if fail < 0 || fail >= len(lv.Tensors) {
		t.Fatalf("failure index %d out of range", fail)
	}
}

// FuzzIntervalAllocator drives the arena with schedule-shaped alloc/free
// traffic derived from fuzz bytes and asserts the allocator's invariants:
// live spans never overlap, never exceed capacity, sizes are preserved, and
// InUse equals the live total.
func FuzzIntervalAllocator(f *testing.F) {
	f.Add([]byte{8, 4, 12, 2, 30, 1}, int64(64))
	f.Add([]byte{255, 255, 3, 3, 3, 9, 1, 0, 200}, int64(257))
	f.Add([]byte{}, int64(1))
	f.Fuzz(func(t *testing.T, ops []byte, capacity int64) {
		if capacity <= 0 || capacity > 1<<20 {
			t.Skip()
		}
		a := glb.NewArena(capacity)
		var live []glb.Span
		var liveBytes int64
		for _, b := range ops {
			if b%3 == 0 && len(live) > 0 {
				// Free the span this byte indexes.
				i := int(b/3) % len(live)
				s := live[i]
				a.Free(s)
				live = append(live[:i], live[i+1:]...)
				liveBytes -= s.Size()
				continue
			}
			size := int64(b)%capacity + 1
			s, ok := a.Alloc(size)
			if !ok {
				continue
			}
			if s.Size() != size {
				t.Fatalf("alloc(%d) returned %+v of size %d", size, s, s.Size())
			}
			if s.Base < 0 || s.End > capacity {
				t.Fatalf("span %+v outside [0, %d)", s, capacity)
			}
			for _, o := range live {
				if s.Overlaps(o) {
					t.Fatalf("span %+v overlaps live span %+v", s, o)
				}
			}
			live = append(live, s)
			liveBytes += size
		}
		if a.InUse() != liveBytes {
			t.Fatalf("InUse = %d, live total = %d", a.InUse(), liveBytes)
		}
		if liveBytes > capacity {
			t.Fatalf("live bytes %d exceed capacity %d", liveBytes, capacity)
		}
	})
}
