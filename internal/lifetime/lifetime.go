// Package lifetime computes DAG execution schedules, tensor live intervals
// and concrete GLB address ranges for tensor-lifetime graphs
// (model.Graph). It is the middle third of the DAG planning pipeline:
// model defines the IR, lifetime decides *when* each node runs and *where*
// each resident tensor sits, and core decides per-layer tiling around
// those placements (Li et al., "Combined Scheduling, Memory Allocation and
// Tensor Replacement", adapted to the paper's GLB model).
package lifetime

import (
	"fmt"

	"scratchmem/internal/glb"
	"scratchmem/internal/model"
)

// Schedule returns a topological execution order of g's nodes (indices
// into g.Nodes) that greedily minimises live tensor elements: at each step
// it runs the ready node minimising the post-step live total, i.e. it
// prefers nodes that retire tensors (last consumers) and defers opening
// new long-lived branches. Ties break on the lowest node index, so chains
// schedule in their natural order and the result is deterministic. The
// graph must be valid (topologically ordered, every produced input known).
func Schedule(g *model.Graph) []int {
	n := len(g.Nodes)
	prod := make(map[string]int, n)
	for i := range g.Nodes {
		prod[g.Nodes[i].Layer.Name] = i
	}
	deps := make([][]int, n)      // distinct producer nodes each node reads
	consumers := make([][]int, n) // distinct consumer nodes of each node's output
	for i := range g.Nodes {
		nd := &g.Nodes[i]
		seen := make(map[int]bool)
		for _, t := range nd.Inputs {
			if !model.IsExternalTensor(t) {
				seen[prod[t]] = true
			}
		}
		for _, t := range nd.Residual {
			seen[prod[t]] = true
		}
		for j := range seen {
			deps[i] = append(deps[i], j)
			consumers[j] = append(consumers[j], i)
		}
	}
	indeg := make([]int, n)
	remaining := make([]int, n) // unscheduled consumers of node i's output
	for i := range g.Nodes {
		indeg[i] = len(deps[i])
		remaining[i] = len(consumers[i])
	}
	elems := func(i int) int64 { return g.Nodes[i].Layer.OfmapElems() }

	order := make([]int, 0, n)
	scheduled := make([]bool, n)
	var live int64 // elements of scheduled tensors still awaiting consumers
	for len(order) < n {
		best, bestLive := -1, int64(0)
		for i := 0; i < n; i++ {
			if scheduled[i] || indeg[i] != 0 {
				continue
			}
			after := live
			if remaining[i] > 0 {
				after += elems(i) // output born live
			}
			for _, j := range deps[i] {
				if remaining[j] == 1 { // i is the last consumer: tensor dies
					after -= elems(j)
				}
			}
			if best == -1 || after < bestLive {
				best, bestLive = i, after
			}
		}
		if best == -1 {
			// Unreachable for validated graphs (they are acyclic by order).
			panic(fmt.Sprintf("lifetime: no ready node in %s after %d of %d", g.Name, len(order), n))
		}
		scheduled[best] = true
		order = append(order, best)
		live = bestLive
		for _, j := range deps[best] {
			remaining[j]--
		}
		for _, c := range consumers[best] {
			indeg[c]--
		}
	}
	return order
}

// Tensor is one produced tensor's live interval under a schedule. Steps are
// positions in the schedule, not node indices: the tensor is born when its
// producer runs (Step) and dies after its last consumer runs (LastUse).
// A tensor nothing consumes has LastUse == Step — it is streamed out to
// DRAM as produced and never parks in the GLB.
type Tensor struct {
	Name      string
	Node      int   // producing node index in the graph
	Step      int   // schedule position of the producer
	LastUse   int   // schedule position of the last consumer (>= Step)
	Elems     int64 // OH*OW*CO of the producer
	Consumers []int // node indices reading this tensor (inputs + residuals)
}

// Interior reports whether the tensor has on-chip value: at least one
// consumer after its producing step.
func (t *Tensor) Interior() bool { return t.LastUse > t.Step }

// Liveness is the lifetime analysis of a graph under one schedule.
type Liveness struct {
	Order   []int          // the schedule: Order[k] = node index run at step k
	Pos     []int          // inverse: Pos[node] = step
	Tensors []Tensor       // every produced tensor, ascending birth step
	Index   map[string]int // tensor name -> position in Tensors
}

// Analyze computes tensor live intervals for g under the given schedule.
func Analyze(g *model.Graph, order []int) *Liveness {
	n := len(g.Nodes)
	pos := make([]int, n)
	for k, i := range order {
		pos[i] = k
	}
	prod := make(map[string]int, n)
	for i := range g.Nodes {
		prod[g.Nodes[i].Layer.Name] = i
	}
	consumers := make([][]int, n)
	for i := range g.Nodes {
		nd := &g.Nodes[i]
		seen := make(map[int]bool)
		for _, t := range nd.Inputs {
			if !model.IsExternalTensor(t) {
				seen[prod[t]] = true
			}
		}
		for _, t := range nd.Residual {
			seen[prod[t]] = true
		}
		for j := range seen {
			consumers[j] = append(consumers[j], i)
		}
	}
	lv := &Liveness{
		Order:   order,
		Pos:     pos,
		Tensors: make([]Tensor, 0, n),
		Index:   make(map[string]int, n),
	}
	for k, i := range order {
		nd := &g.Nodes[i]
		t := Tensor{
			Name:      nd.Layer.Name,
			Node:      i,
			Step:      k,
			LastUse:   k,
			Elems:     nd.Layer.OfmapElems(),
			Consumers: consumers[i],
		}
		for _, c := range consumers[i] {
			if pos[c] > t.LastUse {
				t.LastUse = pos[c]
			}
		}
		lv.Index[t.Name] = len(lv.Tensors)
		lv.Tensors = append(lv.Tensors, t)
	}
	return lv
}

// PeakLive returns the maximum, over schedule steps, of the summed bytes of
// resident tensors live at that step (bytesOf converts a tensor's elements).
func (lv *Liveness) PeakLive(resident map[string]bool, bytesOf func(int64) int64) int64 {
	var peak int64
	for k := range lv.Order {
		var live int64
		for i := range lv.Tensors {
			t := &lv.Tensors[i]
			if resident[t.Name] && t.Step <= k && k <= t.LastUse {
				live += bytesOf(t.Elems)
			}
		}
		if live > peak {
			peak = live
		}
	}
	return peak
}

// Placement is one resident tensor's assigned GLB byte range.
type Placement = glb.Span

// Assign walks the schedule allocating every resident tensor a concrete
// [base,end) byte range at its birth step and freeing it after its last
// use, first-fit with coalescing (glb.Arena). Non-resident and
// zero-consumer tensors are skipped — they stream through working memory
// instead. On success it returns the placement of each resident tensor by
// name. On failure it returns the index (into lv.Tensors) of the tensor
// that did not fit, so the caller can choose what to demote or spill.
func Assign(lv *Liveness, resident map[string]bool, capacityBytes int64, bytesOf func(int64) int64) (map[string]Placement, int, bool) {
	a := glb.NewArena(capacityBytes)
	placed := make(map[string]Placement)
	for k := range lv.Order {
		// Free everything that died before this step. Tensors are in birth
		// order; freeing before allocating maximises coalesced space.
		for i := range lv.Tensors {
			t := &lv.Tensors[i]
			if t.LastUse != k-1 {
				continue
			}
			if s, ok := placed[t.Name]; ok {
				a.Free(s)
			}
		}
		for i := range lv.Tensors {
			t := &lv.Tensors[i]
			if t.Step != k || !resident[t.Name] || !t.Interior() {
				continue
			}
			s, ok := a.Alloc(bytesOf(t.Elems))
			if !ok {
				return nil, i, false
			}
			placed[t.Name] = s
		}
	}
	return placed, -1, true
}
