package cli

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"scratchmem/internal/smmerr"
)

func TestExitCode(t *testing.T) {
	infeasible := &smmerr.InfeasibleError{Model: "m", Layer: "conv1", Need: 9, Have: 1}
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, ExitOK},
		{"generic", errors.New("boom"), ExitFailure},
		{"bad model", smmerr.BadModelf("no such model"), ExitBadModel},
		{"infeasible", infeasible, ExitInfeasible},
		{"infeasible in a layer", smmerr.Layer(3, "conv2", infeasible), ExitInfeasible},
		{"canceled", context.Canceled, ExitCanceled},
		{"canceled deep in the pipeline", smmerr.Layer(7, "fire2", fmt.Errorf("plan: %w", context.Canceled)), ExitCanceled},
		{"deadline", context.DeadlineExceeded, ExitCanceled},
		// Cancellation outranks the other families when both apply.
		{"canceled while infeasible-wrapped", fmt.Errorf("%w: %w", smmerr.ErrInfeasible, context.Canceled), ExitCanceled},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: ExitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestFail(t *testing.T) {
	var b strings.Builder
	Fail(&b, "smm-plan", nil)
	if b.Len() != 0 {
		t.Errorf("nil error printed %q", b.String())
	}
	Fail(&b, "smm-plan", errors.New("boom"))
	if got := b.String(); got != "smm-plan: boom\n" {
		t.Errorf("message = %q", got)
	}
	b.Reset()
	Fail(&b, "smm-plan", smmerr.Layer(2, "conv1", context.Canceled))
	if got := b.String(); got != "smm-plan: interrupted\n" {
		t.Errorf("canceled message = %q", got)
	}
}

func TestSignalContext(t *testing.T) {
	ctx, stop := SignalContext()
	if err := ctx.Err(); err != nil {
		t.Fatalf("fresh signal context already done: %v", err)
	}
	stop()
	// stop detaches the signals; the context is canceled by its own stop.
	<-ctx.Done()
}
