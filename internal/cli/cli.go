// Package cli holds the process scaffolding shared by the cmd/ binaries:
// signal-driven cancellation and the typed-error exit protocol. Every tool
// follows the same contract — SIGINT/SIGTERM cancels the context threaded
// through the planning pipeline, and the process exit code classifies the
// failure (internal/smmerr taxonomy) so scripts can branch on it without
// parsing messages.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"scratchmem/internal/obs"
	"scratchmem/internal/progress"
	"scratchmem/internal/smmerr"
)

// LogFlags holds the shared structured-logging flags every binary
// registers, so `-log-level debug -log-format json` means the same thing
// across the whole tool set.
type LogFlags struct {
	Level  *string
	Format *string
}

// RegisterLogFlags adds -log-level and -log-format to fs.
func RegisterLogFlags(fs *flag.FlagSet) *LogFlags {
	return &LogFlags{
		Level:  fs.String("log-level", "info", "log level: debug, info, warn or error"),
		Format: fs.String("log-format", "text", "log format: text or json"),
	}
}

// Logger builds the slog.Logger the flags describe, writing to w. Call
// after flag parsing.
func (lf *LogFlags) Logger(w io.Writer) (*slog.Logger, error) {
	return obs.NewLogger(w, *lf.Level, *lf.Format)
}

// LogProgress returns a pipeline progress hook that emits one debug record
// per event, so any tool gains per-layer visibility with `-log-level
// debug`. The hook is safe for the parallel experiment drivers: slog
// handlers serialise their writes.
func LogProgress(l *slog.Logger) progress.Func {
	return func(ev progress.Event) {
		if !l.Enabled(context.Background(), slog.LevelDebug) {
			return
		}
		attrs := []any{"phase", ev.Phase, "index", ev.Index + 1, "total", ev.Total, "name", ev.Name}
		if ev.Policy != "" {
			attrs = append(attrs, "policy", ev.Policy)
		}
		l.Debug("progress", attrs...)
	}
}

// Exit codes. 130 follows the shell convention for death-by-SIGINT
// (128 + signal number); 2 and 3 distinguish the two request-side error
// families so callers need not match on message text.
const (
	ExitOK         = 0
	ExitFailure    = 1   // any error outside the typed taxonomy
	ExitBadModel   = 2   // smmerr.ErrBadModel: the input was wrong
	ExitInfeasible = 3   // smmerr.ErrInfeasible: no plan fits the GLB
	ExitCanceled   = 130 // context canceled or deadline exceeded
)

// SignalContext returns a context canceled on SIGINT or SIGTERM. The stop
// function restores default signal handling, so a second ^C kills a tool
// that is slow to unwind.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// ExitCode classifies err into the exit-code protocol. Cancellation wins
// over the other families: an interrupted run is "interrupted" even if the
// cancellation surfaced wrapped in a LayerError.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case smmerr.IsCanceled(err):
		return ExitCanceled
	case errors.Is(err, smmerr.ErrInfeasible):
		return ExitInfeasible
	case errors.Is(err, smmerr.ErrBadModel):
		return ExitBadModel
	default:
		return ExitFailure
	}
}

// Exit terminates the process with err's exit code, printing the one-line
// "tool: error" message to stderr first. A nil err exits 0 silently.
func Exit(tool string, err error) {
	Fail(os.Stderr, tool, err)
	os.Exit(ExitCode(err))
}

// Fail writes Exit's one-line message without terminating, so it is
// testable. Cancellation prints a fixed short line instead of the wrapped
// chain: the user pressed ^C and already knows why the run stopped.
func Fail(w io.Writer, tool string, err error) {
	if err == nil {
		return
	}
	if smmerr.IsCanceled(err) {
		fmt.Fprintf(w, "%s: interrupted\n", tool)
		return
	}
	fmt.Fprintf(w, "%s: %v\n", tool, err)
}
