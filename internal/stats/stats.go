// Package stats provides the small aggregation helpers the experiment
// reports use: reductions, geometric means and coverage percentages, with
// the conventions of the paper's result sections (a positive "benefit" is
// an improvement, a negative one a penalty).
package stats

import "math"

// Reduction returns how much `new` improves on `base` as a fraction of
// base: 0.8 means 80% lower. Negative values are penalties. Zero base
// yields 0.
func Reduction(base, new int64) float64 {
	if base == 0 {
		return 0
	}
	return 1 - float64(new)/float64(base)
}

// Benefit is Reduction expressed in percent.
func Benefit(base, new int64) float64 { return 100 * Reduction(base, new) }

// GeoMean returns the geometric mean of strictly positive values; zero if
// the slice is empty or contains a non-positive value.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vals)))
}

// GeoMeanReduction returns the geometric-mean reduction across paired
// (base, new) measurements: 1 - geomean(new_i/base_i).
func GeoMeanReduction(base, new []int64) float64 {
	if len(base) != len(new) || len(base) == 0 {
		return 0
	}
	ratios := make([]float64, len(base))
	for i := range base {
		if base[i] <= 0 || new[i] <= 0 {
			return 0
		}
		ratios[i] = float64(new[i]) / float64(base[i])
	}
	return 1 - GeoMean(ratios)
}

// Percent renders a fraction in [0,1] as percent.
func Percent(f float64) float64 { return 100 * f }
