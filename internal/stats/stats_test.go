package stats

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestReduction(t *testing.T) {
	if !almost(Reduction(100, 20), 0.8) {
		t.Errorf("Reduction(100,20) = %v", Reduction(100, 20))
	}
	if !almost(Reduction(100, 133), -0.33) {
		t.Errorf("Reduction(100,133) = %v", Reduction(100, 133))
	}
	if Reduction(0, 5) != 0 {
		t.Error("zero base should yield 0")
	}
	if !almost(Benefit(100, 20), 80) {
		t.Errorf("Benefit = %v", Benefit(100, 20))
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{2, 8}), 4) {
		t.Errorf("GeoMean(2,8) = %v", GeoMean([]float64{2, 8}))
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("non-positive geomean should be 0")
	}
}

func TestGeoMeanReduction(t *testing.T) {
	// Ratios 0.5 and 0.5 -> geomean 0.5 -> reduction 0.5.
	if got := GeoMeanReduction([]int64{10, 100}, []int64{5, 50}); !almost(got, 0.5) {
		t.Errorf("GeoMeanReduction = %v", got)
	}
	if GeoMeanReduction([]int64{1}, []int64{1, 2}) != 0 {
		t.Error("length mismatch should yield 0")
	}
	if GeoMeanReduction([]int64{0}, []int64{1}) != 0 {
		t.Error("non-positive values should yield 0")
	}
}

func TestPercent(t *testing.T) {
	if !almost(Percent(0.93), 93) {
		t.Errorf("Percent = %v", Percent(0.93))
	}
}
