package simulate

import (
	"math"
	"testing"

	"scratchmem/internal/core"
	"scratchmem/internal/model"
)

// TestIdealMatchesEstimates: end-to-end measured latency on the ideal
// backend tracks the planner's estimate closely for every model at both
// ends of the buffer range (the per-phase pipeline is finer than the
// estimator's fill/overlap/drain model, so allow a modest band).
func TestIdealMatchesEstimates(t *testing.T) {
	for _, name := range model.BuiltinNames() {
		for _, kb := range []int{64, 1024} {
			for _, obj := range []core.Objective{core.MinAccesses, core.MinLatency} {
				n, _ := model.Builtin(name)
				p, err := core.NewPlanner(kb, obj).Heterogeneous(n)
				if err != nil {
					t.Fatal(err)
				}
				r, err := Run(p, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if r.EstimateCycles != p.LatencyCycles() {
					t.Errorf("%s @%dkB: estimate mismatch %d != %d",
						name, kb, r.EstimateCycles, p.LatencyCycles())
				}
				ratio := float64(r.Cycles) / float64(r.EstimateCycles)
				if math.Abs(ratio-1) > 0.15 {
					t.Errorf("%s @%dkB %s: simulated %d vs estimated %d (ratio %.3f)",
						name, kb, obj, r.Cycles, r.EstimateCycles, ratio)
				}
			}
		}
	}
}

// TestPerLayerAgreement: each layer's measured serial execution equals its
// estimate exactly under the access objective without prefetching.
func TestPerLayerAgreement(t *testing.T) {
	n, _ := model.Builtin("ResNet18")
	pl := core.NewPlanner(64, core.MinAccesses)
	pl.DisablePrefetch = true
	p, err := pl.Heterogeneous(n)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, lt := range r.Layers {
		if lt.Cycles != lt.EstimateCycles {
			t.Errorf("%s (%s): simulated %d != estimated %d",
				lt.Layer, lt.Policy, lt.Cycles, lt.EstimateCycles)
		}
	}
}

// TestBankedDRAMSlower: with serialised (no-prefetch) schedules the banked
// backend can only add cycles over the ideal one, and reports hit/miss
// statistics.
func TestBankedDRAMSlower(t *testing.T) {
	n, _ := model.Builtin("MobileNet")
	pl := core.NewPlanner(128, core.MinLatency)
	pl.DisablePrefetch = true
	p, err := pl.Heterogeneous(n)
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	banked, err := Run(p, Options{Backend: BankedDRAM})
	if err != nil {
		t.Fatal(err)
	}
	if banked.Cycles < ideal.Cycles {
		t.Errorf("banked %d cycles below ideal %d", banked.Cycles, ideal.Cycles)
	}
	if banked.Cycles > 2*ideal.Cycles {
		t.Errorf("banked %d cycles implausibly above ideal %d", banked.Cycles, ideal.Cycles)
	}
	if banked.DRAMHits+banked.DRAMMisses == 0 {
		t.Error("banked backend reported no DRAM activity")
	}
	if ideal.DRAMHits != 0 || ideal.DRAMMisses != 0 {
		t.Error("ideal backend reported DRAM statistics")
	}
}

func TestUnknownBackend(t *testing.T) {
	n, _ := model.Builtin("TinyCNN")
	p, err := core.NewPlanner(32, core.MinAccesses).Heterogeneous(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, Options{Backend: Backend(9)}); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestBankedWithPrefetch exercises the overlap path of the banked backend.
func TestBankedWithPrefetch(t *testing.T) {
	n, _ := model.Builtin("TinyCNN")
	p, err := core.NewPlanner(64, core.MinLatency).Heterogeneous(n)
	if err != nil {
		t.Fatal(err)
	}
	prefetches := false
	for i := range p.Layers {
		prefetches = prefetches || p.Layers[i].Est.Opts.Prefetch
	}
	if !prefetches {
		t.Fatal("latency plan did not prefetch; test premise broken")
	}
	r, err := Run(p, Options{Backend: BankedDRAM})
	if err != nil {
		t.Fatal(err)
	}
	// Overlapped execution can never beat the pure compute bound.
	var compute int64
	for i := range p.Layers {
		compute += p.Layers[i].Est.ComputeCycles
	}
	if r.Cycles < compute {
		t.Errorf("banked prefetch run %d below compute bound %d", r.Cycles, compute)
	}
	if r.DRAMMisses == 0 {
		t.Error("no DRAM misses recorded")
	}
}
