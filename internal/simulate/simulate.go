// Package simulate times a whole execution plan end-to-end: every layer's
// tile schedule is materialised by the dry-run engine and then played
// through a timing backend — the ideal fixed-bandwidth DMA the paper
// assumes, or the banked DRAM channel — with double-buffered overlap for
// the layers whose policy prefetches. It is the executable counterpart of
// the planner's estimate_latency: the two must agree within the pipeline
// model's tolerance, which the tests enforce.
package simulate

import (
	"context"
	"fmt"

	"scratchmem/internal/core"
	"scratchmem/internal/dram"
	"scratchmem/internal/engine"
	"scratchmem/internal/policy"
	"scratchmem/internal/progress"
	"scratchmem/internal/smmerr"
	"scratchmem/internal/trace"
)

// Backend selects the off-chip timing model.
type Backend int

const (
	// IdealBandwidth moves bytes at the configuration's flat DRAM rate
	// (the paper's assumption).
	IdealBandwidth Backend = iota
	// BankedDRAM replays the DMA stream through internal/dram's open-row
	// channel.
	BankedDRAM
)

// Options configure a simulation.
type Options struct {
	Backend Backend
	// DRAM configures the banked backend (dram.Default() when zero).
	DRAM dram.Config
}

// LayerTiming is the measured execution of one layer.
type LayerTiming struct {
	Layer          string
	Policy         string
	Cycles         int64
	EstimateCycles int64
	AccessElems    int64
}

// Result is the end-to-end simulation of a plan.
type Result struct {
	Layers []LayerTiming
	// Cycles is the measured total; EstimateCycles the planner's total.
	Cycles         int64
	EstimateCycles int64
	// DRAMHits / DRAMMisses are populated by the banked backend.
	DRAMHits, DRAMMisses int64
}

// Run times a plan. Layers execute back to back (the paper serialises
// layers); within a layer, prefetching policies overlap DMA with compute
// and the others serialise, mirroring the estimator's model.
func Run(p *core.Plan, o Options) (*Result, error) {
	return RunCtx(context.Background(), p, o, nil)
}

// RunCtx is Run with cancellation and observation: ctx is checked per layer
// (and inside each layer's dry-run schedule), failures and cancellations
// are localised with smmerr.LayerError, and one "simulate" progress event
// is emitted per timed layer with the running cycle total.
func RunCtx(ctx context.Context, p *core.Plan, o Options, prog progress.Func) (*Result, error) {
	res := &Result{}
	dcfg := o.DRAM
	if o.Backend == BankedDRAM && dcfg == (dram.Config{}) {
		dcfg = dram.Default()
	}
	for i := range p.Layers {
		lp := &p.Layers[i]
		if err := ctx.Err(); err != nil {
			return nil, smmerr.Layer(i, lp.Layer.Name, err)
		}
		var log *trace.Log
		if o.Backend == BankedDRAM {
			log = &trace.Log{}
		}
		er, err := engine.DryRunCtx(ctx, &lp.Layer, &lp.Est, p.Cfg, log)
		if err != nil {
			return nil, smmerr.Layer(i, lp.Layer.Name, fmt.Errorf("simulate: %s/%s: %w", p.Model, lp.Layer.Name, err))
		}
		var cycles int64
		switch o.Backend {
		case IdealBandwidth:
			if lp.Est.Opts.Prefetch {
				cycles = engine.PipelinedCycles(er.Phases, p.Cfg)
			} else {
				cycles = engine.SerialCycles(er.Phases, p.Cfg)
			}
		case BankedDRAM:
			dmaCycles, ch, err := dram.Replay(log, p.Cfg.DataWidthBits, dcfg)
			if err != nil {
				return nil, err
			}
			hits, misses, _ := ch.Stats()
			res.DRAMHits += hits
			res.DRAMMisses += misses
			var macs int64
			for _, ph := range er.Phases {
				macs += ph.MACs
			}
			compute := (macs + p.Cfg.MACsPerCycle() - 1) / p.Cfg.MACsPerCycle()
			if lp.Est.Opts.Prefetch {
				// Overlap: the slower of the two engines dominates, plus the
				// pipeline fill the estimator charges.
				cycles = max64(compute, dmaCycles)
				if fill := lp.Est.LatencyCycles - max64(lp.Est.ComputeCycles, lp.Est.TransferCycles); fill > 0 {
					cycles += fill
				}
			} else {
				cycles = compute + dmaCycles
			}
		default:
			return nil, fmt.Errorf("simulate: unknown backend %d", o.Backend)
		}
		res.Layers = append(res.Layers, LayerTiming{
			Layer:          lp.Layer.Name,
			Policy:         lp.Est.Policy.Short(),
			Cycles:         cycles,
			EstimateCycles: lp.Est.LatencyCycles,
			AccessElems:    er.AccessElems(),
		})
		res.Cycles += cycles
		res.EstimateCycles += lp.Est.LatencyCycles
		prog.Emit(progress.Event{Phase: "simulate", Index: i, Total: len(p.Layers), Name: lp.Layer.Name,
			Policy: policy.ShortVariant(lp.Est.Policy, lp.Est.Opts.Prefetch), AccessElems: er.AccessElems(), LatencyCycles: res.Cycles})
	}
	return res, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
