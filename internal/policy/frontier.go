package policy

import (
	"sort"

	"scratchmem/internal/layer"
)

// FrontierPoint is one Pareto-optimal (memory, accesses) trade-off for a
// layer: no other evaluated variant needs less memory and moves fewer
// bytes.
type FrontierPoint struct {
	MemoryBytes int64
	AccessElems int64
	Policy      ID
	Prefetch    bool
	N           int
}

// Frontier enumerates the memory/traffic Pareto frontier of a layer across
// every policy variant (including the fallback and, for P4/P5, the full
// range of filter-block sizes), sorted by ascending memory. The first point
// is the smallest footprint that can execute the layer at all; the last is
// the cheapest traffic any policy can reach. This is the curve a designer
// reads to size a scratchpad for a target network.
func Frontier(l *layer.Layer, cfg Config) []FrontierPoint {
	var pts []FrontierPoint
	add := func(e Result) {
		pts = append(pts, FrontierPoint{
			MemoryBytes: e.MemoryBytes,
			AccessElems: e.AccessElems,
			Policy:      e.Policy,
			Prefetch:    e.Opts.Prefetch,
			N:           e.N,
		})
	}
	s := newShape(l, cfg.IncludePadding)
	for _, pf := range []bool{false, true} {
		o := Options{Prefetch: pf}
		for _, id := range []ID{IntraLayer, P1IfmapReuse, P2FilterReuse, P3PerChannel} {
			add(estimateWithN(l, id, o, cfg, &s, 0))
		}
		for _, id := range []ID{P4PartialIfmap, P5PartialPerChannel} {
			maxN := int64(l.F)
			if l.Kind != layer.DepthwiseConv && maxN > 1 {
				maxN--
			}
			for _, n := range blockSamples(maxN) {
				add(estimateWithN(l, id, o, cfg, &s, n))
			}
		}
		add(FallbackEstimate(l, o, cfg))
	}

	// Pareto filter: sort by memory, keep strictly improving traffic.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].MemoryBytes != pts[j].MemoryBytes {
			return pts[i].MemoryBytes < pts[j].MemoryBytes
		}
		return pts[i].AccessElems < pts[j].AccessElems
	})
	var frontier []FrontierPoint
	bestAcc := int64(-1)
	for _, p := range pts {
		if bestAcc < 0 || p.AccessElems < bestAcc {
			frontier = append(frontier, p)
			bestAcc = p.AccessElems
		}
	}
	return frontier
}

// blockSamples returns block sizes to probe: all powers of two up to max
// plus max itself.
func blockSamples(max int64) []int64 {
	var out []int64
	for n := int64(1); n < max; n *= 2 {
		out = append(out, n)
	}
	out = append(out, max)
	return out
}

// SmallestGLBForMinimum returns the smallest GLB size in bytes at which the
// layer reaches its once-per-element traffic minimum under some policy —
// the knee of the frontier.
func SmallestGLBForMinimum(l *layer.Layer, cfg Config) int64 {
	min := MinAccessElems(l, cfg)
	best := int64(-1)
	for _, p := range Frontier(l, cfg) {
		if p.AccessElems == min && (best < 0 || p.MemoryBytes < best) {
			best = p.MemoryBytes
		}
	}
	return best
}
