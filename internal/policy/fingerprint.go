// Network fingerprints for differential planning: a network's fingerprint
// is its per-layer shape-signature chain ([]LayerKey). Two requests whose
// chains share a prefix/suffix under identical planner knobs can share the
// unchanged layers' planning work (internal/core's checkpoint resume).
package policy

import "scratchmem/internal/layer"

// ChainOf returns the per-layer shape-signature chain of layers. Names are
// deliberately absent from LayerKey — the estimators never read them — so
// renamed copies of a network fingerprint identically.
func ChainOf(layers []layer.Layer) []LayerKey {
	out := make([]LayerKey, len(layers))
	for i := range layers {
		out[i] = KeyOf(&layers[i])
	}
	return out
}

// CommonPrefix returns the number of leading positions where a and b carry
// the same shape key.
func CommonPrefix(a, b []LayerKey) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// CommonSuffix is CommonPrefix measured from the tail ends.
func CommonSuffix(a, b []LayerKey) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[len(a)-1-i] == b[len(b)-1-i] {
		i++
	}
	return i
}
