package policy

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"scratchmem/internal/layer"
	"scratchmem/internal/model"
)

// memoTestLayers returns a network with repeated shapes (ResNet18's basic
// blocks) so hit paths actually fire.
func memoTestLayers(t *testing.T) []layer.Layer {
	t.Helper()
	n, err := model.Builtin("ResNet18")
	if err != nil {
		t.Fatal(err)
	}
	return n.Layers
}

// TestMemoMatchesDirect: every memoized answer — first (miss) and second
// (hit) — equals the direct estimator under EstimateFast's sweep contract,
// with the caller's layer name patched back on hits.
func TestMemoMatchesDirect(t *testing.T) {
	layers := memoTestLayers(t)
	cfg := Default(64)
	m := NewMemo()
	for pass := 0; pass < 2; pass++ {
		for i := range layers {
			l := &layers[i]
			for _, id := range IDs() {
				for _, pf := range []bool{false, true} {
					o := Options{Prefetch: pf}
					got := m.Estimate(l, id, o, cfg)
					// The reference is EstimateFast: the memo stores the sweep
					// contract's results (feasible byte-identical to Estimate,
					// infeasible with zeroed traffic fields).
					want := EstimateFast(l, id, o, cfg)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("pass %d %s %s pf=%v: memo %+v != direct %+v", pass, l.Name, id, pf, got, want)
					}
					if got.Layer != l.Name {
						t.Fatalf("memo result carries layer %q, want %q", got.Layer, l.Name)
					}
				}
			}
			fb := m.Fallback(l, Options{}, cfg)
			if want := FallbackEstimate(l, Options{}, cfg); !reflect.DeepEqual(fb, want) {
				t.Fatalf("fallback %s: memo %+v != direct %+v", l.Name, fb, want)
			}
		}
	}
	st := m.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("stats after two passes: %+v, want all non-zero", st)
	}
	// Pass two repeats pass one's keys exactly, so hits >= misses.
	if st.Hits < st.Misses {
		t.Fatalf("stats %+v: second pass should answer from the table", st)
	}
}

// TestMemoEstimateNSharesNormalizedKeys: forcing a block size on a policy
// that ignores block sizes shares the entry with the unforced call.
func TestMemoEstimateNSharesNormalizedKeys(t *testing.T) {
	layers := memoTestLayers(t)
	cfg := Default(64)
	m := NewMemo()
	l := &layers[0]
	a := m.EstimateN(l, IntraLayer, Options{}, cfg, 7)
	b := m.EstimateN(l, IntraLayer, Options{}, cfg, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("normalized keys disagree: %+v vs %+v", a, b)
	}
	if st := m.Stats(); st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v: want the second call to hit the first's entry", st)
	}
	// EstimateN answers match the direct function.
	direct := EstimateN(l, P4PartialIfmap, Options{}, cfg, 4)
	memod := m.EstimateN(l, P4PartialIfmap, Options{}, cfg, 4)
	if !reflect.DeepEqual(direct, memod) {
		t.Fatalf("EstimateN: memo %+v != direct %+v", memod, direct)
	}
}

// TestMemoCap: past the bound lookups still hit existing entries but
// misses stop storing.
func TestMemoCap(t *testing.T) {
	layers := memoTestLayers(t)
	cfg := Default(64)
	m := NewMemoCap(1)
	l0, l1 := &layers[0], &layers[2]
	if KeyOf(l0) == KeyOf(l1) {
		t.Fatal("test layers share a shape; pick distinct ones")
	}
	m.Estimate(l0, IntraLayer, Options{}, cfg)
	m.Estimate(l1, IntraLayer, Options{}, cfg) // past the cap: not stored
	if st := m.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want the cap of 1", st.Entries)
	}
	before := m.Stats().Hits
	m.Estimate(l0, IntraLayer, Options{}, cfg)
	if m.Stats().Hits != before+1 {
		t.Fatal("capped table stopped answering stored entries")
	}
	// The uncached shape still computes correctly.
	got := m.Estimate(l1, IntraLayer, Options{}, cfg)
	if want := EstimateFast(l1, IntraLayer, Options{}, cfg); !reflect.DeepEqual(got, want) {
		t.Fatalf("capped miss: %+v != %+v", got, want)
	}
}

// TestMemoNilSafe: a nil *Memo computes directly and reports zero stats.
func TestMemoNilSafe(t *testing.T) {
	layers := memoTestLayers(t)
	cfg := Default(64)
	var m *Memo
	got := m.Estimate(&layers[0], P2FilterReuse, Options{Prefetch: true}, cfg)
	want := Estimate(&layers[0], P2FilterReuse, Options{Prefetch: true}, cfg)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("nil memo: %+v != %+v", got, want)
	}
	if !reflect.DeepEqual(m.Fallback(&layers[0], Options{}, cfg), FallbackEstimate(&layers[0], Options{}, cfg)) {
		t.Fatal("nil memo fallback diverges")
	}
	m.CountHit() // must not panic
	m.CountMiss()
	if st := m.Stats(); st != (MemoStats{}) {
		t.Fatalf("nil memo stats = %+v, want zero", st)
	}
}

// TestMemoContext: WithMemo/MemoFrom round-trip, and a bare context
// carries none.
func TestMemoContext(t *testing.T) {
	if MemoFrom(context.Background()) != nil {
		t.Fatal("bare context carries a memo")
	}
	m := NewMemo()
	if got := MemoFrom(WithMemo(context.Background(), m)); got != m {
		t.Fatalf("round-trip returned %p, want %p", got, m)
	}
}

// TestMemoCompanion: first installer wins, including under a race.
func TestMemoCompanion(t *testing.T) {
	m := NewMemo()
	var wg sync.WaitGroup
	got := make([]any, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = m.Companion(func() any { return new(int) })
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatal("Companion returned different instances to different callers")
		}
	}
}

// TestMemoConcurrent hammers one table from many goroutines (run under
// -race) and checks every answer against the direct estimator.
func TestMemoConcurrent(t *testing.T) {
	layers := memoTestLayers(t)
	cfg := Default(64)
	m := NewMemo()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range layers {
				l := &layers[i]
				for _, id := range IDs() {
					got := m.Estimate(l, id, Options{Prefetch: true}, cfg)
					want := EstimateFast(l, id, Options{Prefetch: true}, cfg)
					if !reflect.DeepEqual(got, want) {
						select {
						case errs <- nil:
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case <-errs:
		t.Fatal("concurrent memoized answer diverged from direct estimation")
	default:
	}
	st := m.Stats()
	if int64(st.Entries) > st.Misses {
		t.Fatalf("stats %+v: more entries than misses", st)
	}
}

// TestMemoHitPathAllocs pins the hot paths' allocation behaviour: a table
// hit allocates nothing, and the direct estimators are allocation-free
// too, so sweeps are bounded by arithmetic, not the garbage collector.
func TestMemoHitPathAllocs(t *testing.T) {
	layers := memoTestLayers(t)
	cfg := Default(64)
	m := NewMemo()
	l := &layers[0]
	var e Result
	m.EstimateInto(&e, l, P1IfmapReuse, Options{Prefetch: true}, cfg)
	if n := testing.AllocsPerRun(100, func() {
		m.EstimateInto(&e, l, P1IfmapReuse, Options{Prefetch: true}, cfg)
	}); n != 0 {
		t.Errorf("memo hit allocates %.1f objects/op, want 0", n)
	}
	sh := NewShape(l, cfg.IncludePadding)
	if n := testing.AllocsPerRun(100, func() {
		sh.EstimateFastInto(&e, P3PerChannel, Options{}, cfg)
	}); n != 0 {
		t.Errorf("EstimateFastInto allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = Estimate(l, IntraLayer, Options{}, cfg)
	}); n != 0 {
		t.Errorf("Estimate allocates %.1f objects/op, want 0", n)
	}
}
