package policy

import "scratchmem/internal/layer"

// FallbackTiled is the planner's last resort when no policy of Algorithm 1's
// set fits the GLB (paper §3.3: "we have to search for appropriate tile
// sizes that will satisfy the condition. This may lead to an increased
// off-chip accesses"). It processes one output row against one filter at a
// time, so its footprint is a single sliding window, one filter and one
// output row. Two loop orientations exist:
//
//   - row-outer: the sliding window streams once (every ifmap element loads
//     once) but every filter is re-loaded for every output row;
//   - filter-outer: filters load once but the whole ifmap streams once per
//     filter.
//
// The estimator picks whichever orientation moves fewer bytes.
const FallbackTiled ID = numPolicies

// FallbackEstimate evaluates the fallback tiling for a layer. It is kept
// out of All — Algorithm 1 only consults it when nothing else fits.
func FallbackEstimate(l *layer.Layer, o Options, cfg Config) Result {
	s := newShape(l, cfg.IncludePadding)
	return fallbackShaped(l, &s, o, cfg)
}

// Fallback is FallbackEstimate against the precomputed geometry.
func (sh *Shape) Fallback(o Options, cfg Config) Result {
	return fallbackShaped(sh.l, &sh.s, o, cfg)
}

// FallbackInto is Fallback writing its result in place.
func (sh *Shape) FallbackInto(e *Result, o Options, cfg Config) {
	fallbackShapedInto(e, sh.l, &sh.s, o, cfg)
}

func fallbackShaped(l *layer.Layer, sp *shapeOf, o Options, cfg Config) Result {
	var e Result
	fallbackShapedInto(&e, l, sp, o, cfg)
	return e
}

func fallbackShapedInto(r *Result, l *layer.Layer, s *shapeOf, o Options, cfg Config) {
	t := fallbackTiles(s)

	memElems, extra := memoryElems(t, s, o)

	// Orientation choice by traffic. With a batch, the filter-outer order
	// keeps each filter resident across the whole batch, the row-outer
	// order re-reads filters per output row of every input.
	b := cfg.BatchSize()
	var ifLoads, fLoads int64 = 1, 1
	if s.depthwise {
		// Depth-wise layers are channel-independent: one pass, minimal.
	} else {
		rowOuter := b*s.ifmapAll + b*s.oh*s.filterAll // filters re-read per row
		filterOuter := b*s.f*s.ifmapAll + s.filterAll
		if o.ResidentIfmap {
			// Ifmap re-streams are free when it lives in the GLB.
			filterOuter = s.filterAll
		}
		if filterOuter <= rowOuter {
			ifLoads = s.f
		} else {
			fLoads = s.oh * b
		}
	}

	accI := ifLoads * s.ifmapAll * b
	if o.ResidentIfmap {
		accI, ifLoads = 0, 0
	}
	accF := fLoads * s.filterAll
	accO := s.ofmapAll * b
	if o.KeepOfmap {
		accO = 0
	}
	acc := accI + accF + accO

	*r = Result{
		Policy: FallbackTiled, Opts: o, Layer: l.Name, N: 1,
		Tiles: t, DoubleBuffered: extra,
		MemoryElems: memElems, MemoryBytes: cfg.Bytes(memElems),
		IfmapLoads: ifLoads, FilterLoads: fLoads,
		AccessIfmap: accI, AccessFilter: accF, AccessOfmap: accO,
		AccessElems: acc, AccessBytes: cfg.Bytes(acc),
	}
	r.ComputeCycles = ceilDiv(s.macs*b, cfg.MACsPerCycle())
	r.TransferCycles = ceilDiv(r.AccessBytes, int64(cfg.DRAMBytesPerCycle))
	r.LatencyCycles = latency(r, o, cfg)
	r.Feasible = r.MemoryBytes <= cfg.GLBBytes
}

func fallbackTiles(s *shapeOf) Tiles {
	if s.depthwise {
		return Tiles{Ifmap: s.fh * s.iwe, Filter: s.fh * s.fw, Ofmap: s.ow}
	}
	return Tiles{Ifmap: s.fh * s.iwe * s.ci, Filter: s.fh * s.fw * s.ci, Ofmap: s.ow}
}
