package policy

import (
	"math"
	"testing"

	"scratchmem/internal/layer"
	"scratchmem/internal/model"
)

// table3Config reproduces the paper's Table 3 accounting: 8-bit elements,
// unpadded ifmaps (see DESIGN.md §2). GLB size is irrelevant for the
// memory-requirement maxima of intra/P1/P2/P3 but must be set.
func table3Config() Config {
	c := Default(1024)
	c.IncludePadding = false
	return c
}

// TestTable3ExactCells pins the Table 3 cells that reverse-engineer exactly
// from the §3.2 formulas (these identified the paper's P1/P3 column swap;
// the expectations below use the text's policy definitions, so the paper's
// "Policy 1" column values appear here under P3 and vice versa).
func TestTable3ExactCells(t *testing.T) {
	cfg := table3Config()
	cases := []struct {
		model string
		id    ID
		want  float64 // kB
		tol   float64 // absolute kB tolerance
	}{
		{"ResNet18", IntraLayer, 2353.0, 1.0},   // conv5: 3x3x512x512 filters dominate
		{"ResNet18", P1IfmapReuse, 2318.0, 1.0}, // paper "Policy 3" column
		{"ResNet18", P2FilterReuse, 199.7, 0.2},
		{"ResNet18", P3PerChannel, 788.6, 0.2}, // paper "Policy 1" column (conv1 ofmap)
		{"GoogLeNet", IntraLayer, 2051.0, 0.2}, // aux classifier 2048x1024 FC
		{"GoogLeNet", P1IfmapReuse, 2051.0, 0.2},
		{"GoogLeNet", P2FilterReuse, 199.7, 0.2},
		{"GoogLeNet", P3PerChannel, 788.6, 0.2},
		{"EfficientNetB0", P3PerChannel, 1176.2, 0.2}, // 112x112x96 expansion ofmap
		{"EfficientNetB0", P1IfmapReuse, 1252.3, 0.2}, // 1280->1000 classifier
		{"MnasNet", P3PerChannel, 588.2, 0.2},
		{"MnasNet", P1IfmapReuse, 1252.3, 0.2},
		{"MnasNet", IntraLayer, 1252.3, 0.2},
		{"MobileNetV2", P3PerChannel, 1176.2, 0.2},
		{"MobileNetV2", P1IfmapReuse, 1252.3, 0.2},
		{"MobileNet", P3PerChannel, 784.2, 0.2},
		{"MobileNet", P1IfmapReuse, 1038.0, 0.5},
	}
	for _, tc := range cases {
		n, err := model.Builtin(tc.model)
		if err != nil {
			t.Fatal(err)
		}
		got := MaxMemoryKB(n.Layers, tc.id, cfg)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%s %s: max memory = %.1f kB, want %.1f±%.1f", tc.model, tc.id, got, tc.want, tc.tol)
		}
	}
}

// TestTable3ApproximateCells checks the remaining Table 3 cells within a
// few percent — these depend on bookkeeping details (e.g. whether a
// depth-wise ofmap staging row is counted) the paper does not spell out.
func TestTable3ApproximateCells(t *testing.T) {
	cfg := table3Config()
	cases := []struct {
		model string
		id    ID
		want  float64 // kB
	}{
		{"EfficientNetB0", IntraLayer, 1491.9},
		{"EfficientNetB0", P2FilterReuse, 1201},
		{"MnasNet", P2FilterReuse, 591.5},
		{"MobileNet", IntraLayer, 1178},
		{"MobileNet", P2FilterReuse, 801.7},
		{"MobileNetV2", IntraLayer, 1491.9},
		{"MobileNetV2", P2FilterReuse, 1201},
	}
	for _, tc := range cases {
		n, err := model.Builtin(tc.model)
		if err != nil {
			t.Fatal(err)
		}
		got := MaxMemoryKB(n.Layers, tc.id, cfg)
		if math.Abs(got-tc.want)/tc.want > 0.06 {
			t.Errorf("%s %s: max memory = %.1f kB, want %.1f (±6%%)", tc.model, tc.id, got, tc.want)
		}
	}
}

// TestMinimalTransferPolicies verifies intra, P1, P2 and P3 all move every
// element exactly once (paper §3.2: "each element is transferred only
// once").
func TestMinimalTransferPolicies(t *testing.T) {
	cfg := Default(256)
	for _, n := range model.Builtins() {
		for i := range n.Layers {
			l := &n.Layers[i]
			min := MinAccessElems(l, cfg)
			for _, id := range []ID{IntraLayer, P1IfmapReuse, P2FilterReuse, P3PerChannel} {
				e := Estimate(l, id, Options{}, cfg)
				if e.AccessElems != min {
					t.Fatalf("%s/%s %s: accesses = %d, want minimum %d", n.Name, l.Name, id, e.AccessElems, min)
				}
			}
		}
	}
}

// TestP4P5DepthwiseMinimal verifies the paper's note that policies 4 and 5
// also achieve minimum transfers on depth-wise layers.
func TestP4P5DepthwiseMinimal(t *testing.T) {
	cfg := Default(64)
	l := layer.MustNew("dw", layer.DepthwiseConv, 56, 56, 128, 3, 3, 1, 1, 1)
	min := MinAccessElems(&l, cfg)
	for _, id := range []ID{P4PartialIfmap, P5PartialPerChannel} {
		e := Estimate(&l, id, Options{}, cfg)
		if e.AccessElems != min {
			t.Errorf("%s on DW: accesses = %d, want %d", id, e.AccessElems, min)
		}
		if e.IfmapLoads != 1 {
			t.Errorf("%s on DW: ifmap loads = %d, want 1", id, e.IfmapLoads)
		}
	}
}

// TestP4BlockSizeTradeoff: shrinking the GLB shrinks n and grows accesses.
func TestP4BlockSizeTradeoff(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 14, 14, 256, 3, 3, 512, 1, 1)
	var prevAcc int64 = -1
	var prevN = 1 << 30
	for _, kb := range []int{1024, 512, 256, 128, 64, 32} {
		e := Estimate(&l, P4PartialIfmap, Options{}, Default(kb))
		if e.N > prevN {
			t.Errorf("GLB %dkB: n grew from %d to %d as GLB shrank", kb, prevN, e.N)
		}
		if prevAcc >= 0 && e.AccessElems < prevAcc {
			t.Errorf("GLB %dkB: accesses fell from %d to %d as GLB shrank", kb, prevAcc, e.AccessElems)
		}
		prevAcc, prevN = e.AccessElems, e.N
		wantX := (int64(l.F) + int64(e.N) - 1) / int64(e.N)
		if e.IfmapLoads != wantX {
			t.Errorf("GLB %dkB: ifmap loads = %d, want ceil(%d/%d)=%d", kb, e.IfmapLoads, l.F, e.N, wantX)
		}
	}
}

// TestPrefetchDoublesTiles verifies paper Eq. 2: with prefetching every
// tile term is reserved twice.
func TestPrefetchDoublesTiles(t *testing.T) {
	cfg := Default(1024)
	l := layer.MustNew("c", layer.Conv, 28, 28, 64, 3, 3, 128, 1, 1)
	for _, id := range []ID{IntraLayer, P1IfmapReuse, P2FilterReuse, P3PerChannel} {
		plain := Estimate(&l, id, Options{}, cfg)
		pf := Estimate(&l, id, Options{Prefetch: true}, cfg)
		if pf.MemoryElems != 2*plain.MemoryElems {
			t.Errorf("%s: prefetch memory = %d, want 2x%d", id, pf.MemoryElems, plain.MemoryElems)
		}
		if pf.AccessElems != plain.AccessElems {
			t.Errorf("%s: prefetch changed accesses %d -> %d", id, plain.AccessElems, pf.AccessElems)
		}
		if pf.LatencyCycles > plain.LatencyCycles {
			t.Errorf("%s: prefetch latency %d > plain %d", id, pf.LatencyCycles, plain.LatencyCycles)
		}
	}
}

// TestPrefetchShrinksP5Block: under Eq. 2 the filter block n of P4/P5 can
// only shrink, so accesses can only grow (the paper's access/latency
// trade-off).
func TestPrefetchShrinksP5Block(t *testing.T) {
	cfg := Default(64)
	l := layer.MustNew("c", layer.Conv, 28, 28, 64, 3, 3, 512, 1, 1)
	for _, id := range []ID{P4PartialIfmap, P5PartialPerChannel} {
		plain := Estimate(&l, id, Options{}, cfg)
		pf := Estimate(&l, id, Options{Prefetch: true}, cfg)
		if pf.N > plain.N {
			t.Errorf("%s: prefetch n = %d > plain n = %d", id, pf.N, plain.N)
		}
		if pf.AccessElems < plain.AccessElems {
			t.Errorf("%s: prefetch accesses %d < plain %d", id, pf.AccessElems, plain.AccessElems)
		}
	}
}

// TestResidentIfmap verifies the inter-layer-reuse consumer variant: no
// ifmap traffic, resident footprint counted.
func TestResidentIfmap(t *testing.T) {
	cfg := Default(256)
	l := layer.MustNew("c", layer.Conv, 28, 28, 64, 3, 3, 128, 1, 1)
	e := Estimate(&l, P1IfmapReuse, Options{ResidentIfmap: true}, cfg)
	if e.AccessIfmap != 0 || e.IfmapLoads != 0 {
		t.Errorf("resident ifmap still fetched: %d loads, %d elems", e.IfmapLoads, e.AccessIfmap)
	}
	if e.AccessElems != l.FilterElems()+l.OfmapElems() {
		t.Errorf("accesses = %d, want filters+ofmap = %d", e.AccessElems, l.FilterElems()+l.OfmapElems())
	}
	// Memory must account for the full live (unpadded) ifmap, not the tile.
	if e.MemoryElems < l.IfmapElems(false)+l.FilterElems() {
		t.Errorf("memory %d does not cover resident ifmap", e.MemoryElems)
	}
}

// TestKeepOfmap verifies the producer variant: ofmap stays on-chip, no
// store traffic, full ofmap counted in memory.
func TestKeepOfmap(t *testing.T) {
	cfg := Default(256)
	l := layer.MustNew("c", layer.Conv, 28, 28, 64, 3, 3, 128, 1, 1)
	e := Estimate(&l, P1IfmapReuse, Options{KeepOfmap: true}, cfg)
	if e.AccessOfmap != 0 {
		t.Errorf("kept ofmap still stored: %d elems", e.AccessOfmap)
	}
	if e.MemoryElems < l.OfmapElems() {
		t.Errorf("memory %d does not cover retained ofmap %d", e.MemoryElems, l.OfmapElems())
	}
	// Prefetch must not double the retained ofmap region.
	pf := Estimate(&l, P1IfmapReuse, Options{KeepOfmap: true, Prefetch: true}, cfg)
	if pf.DoubleBuffered.Ofmap != 0 {
		t.Errorf("retained ofmap double-buffered: %+v", pf.DoubleBuffered)
	}
}

// TestLatencyComponents sanity-checks the latency estimator arithmetic.
func TestLatencyComponents(t *testing.T) {
	cfg := Default(1024)
	l := layer.MustNew("c", layer.Conv, 28, 28, 64, 3, 3, 128, 1, 1)
	e := Estimate(&l, IntraLayer, Options{}, cfg)
	if e.ComputeCycles != (l.MACs()+255)/256 {
		t.Errorf("compute cycles = %d, want ceil(MACs/256)", e.ComputeCycles)
	}
	if e.TransferCycles != (e.AccessBytes+15)/16 {
		t.Errorf("transfer cycles = %d, want ceil(bytes/16)", e.TransferCycles)
	}
	if e.LatencyCycles != e.ComputeCycles+e.TransferCycles {
		t.Errorf("no-prefetch latency = %d, want compute+transfer = %d",
			e.LatencyCycles, e.ComputeCycles+e.TransferCycles)
	}
	pf := Estimate(&l, IntraLayer, Options{Prefetch: true}, cfg)
	if pf.LatencyCycles < e.ComputeCycles || pf.LatencyCycles > e.LatencyCycles {
		t.Errorf("prefetch latency %d outside [compute %d, serial %d]",
			pf.LatencyCycles, e.ComputeCycles, e.LatencyCycles)
	}
}

// TestDataWidthScaling: wider elements reduce GLB capacity in elements and
// slow transfers proportionally.
func TestDataWidthScaling(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 28, 28, 64, 3, 3, 128, 1, 1)
	c8 := Default(256)
	c32 := Default(256)
	c32.DataWidthBits = 32
	if c32.CapacityElems() != c8.CapacityElems()/4 {
		t.Errorf("capacity: 32-bit %d, want quarter of %d", c32.CapacityElems(), c8.CapacityElems())
	}
	e8 := Estimate(&l, IntraLayer, Options{}, c8)
	e32 := Estimate(&l, IntraLayer, Options{}, c32)
	if e32.AccessElems != e8.AccessElems {
		t.Errorf("element accesses differ across widths: %d vs %d", e32.AccessElems, e8.AccessElems)
	}
	if e32.AccessBytes != 4*e8.AccessBytes {
		t.Errorf("byte accesses: 32-bit %d, want 4x%d", e32.AccessBytes, e8.AccessBytes)
	}
	if e32.TransferCycles <= e8.TransferCycles {
		t.Errorf("32-bit transfer %d not slower than 8-bit %d", e32.TransferCycles, e8.TransferCycles)
	}
}

// TestFCPolicies: FC layers degrade gracefully — P3 becomes extremely
// memory-light (weight row streaming), and the P4 sliding window spans the
// whole (1x1) ifmap so no re-loads happen.
func TestFCPolicies(t *testing.T) {
	cfg := Default(64)
	l := layer.FC("fc", 512, 1000)
	p3 := Estimate(&l, P3PerChannel, Options{}, cfg)
	if want := int64(1 + 1000 + 1000); p3.MemoryElems != want {
		t.Errorf("FC P3 memory = %d elems, want %d", p3.MemoryElems, want)
	}
	p4 := Estimate(&l, P4PartialIfmap, Options{}, cfg)
	if p4.IfmapLoads != 1 {
		t.Errorf("FC P4 ifmap loads = %d, want 1 (window spans ifmap)", p4.IfmapLoads)
	}
}

// TestAllVariantCount verifies All returns the 12-variant policy set of
// Algorithm 1 line 1.
func TestAllVariantCount(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 8, 8, 4, 3, 3, 8, 1, 1)
	got := All(&l, Default(64))
	if len(got) != 12 {
		t.Fatalf("All returned %d variants, want 12", len(got))
	}
	seen := map[string]bool{}
	for _, e := range got {
		k := Variant(e.Policy, e.Opts.Prefetch)
		if seen[k] {
			t.Errorf("duplicate variant %s", k)
		}
		seen[k] = true
	}
}

func TestConfigValidate(t *testing.T) {
	good := Default(64)
	if err := good.Validate(); err != nil {
		t.Errorf("Default config invalid: %v", err)
	}
	bad := []Config{
		{GLBBytes: 0, DataWidthBits: 8, OpsPerCycle: 512, DRAMBytesPerCycle: 16},
		{GLBBytes: 1, DataWidthBits: 0, OpsPerCycle: 512, DRAMBytesPerCycle: 16},
		{GLBBytes: 1, DataWidthBits: 8, OpsPerCycle: 1, DRAMBytesPerCycle: 16},
		{GLBBytes: 1, DataWidthBits: 8, OpsPerCycle: 512, DRAMBytesPerCycle: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d: Validate() = nil, want error", i)
		}
	}
}

func TestVariantNames(t *testing.T) {
	if got := Variant(P2FilterReuse, true); got != "policy 2 +p" {
		t.Errorf("Variant = %q", got)
	}
	if got := Variant(IntraLayer, false); got != "intra-layer reuse" {
		t.Errorf("Variant = %q", got)
	}
	if got := P5PartialPerChannel.Short(); got != "p5" {
		t.Errorf("Short = %q", got)
	}
	if got := IntraLayer.Short(); got != "intra" {
		t.Errorf("Short = %q", got)
	}
}

// TestFeasibilityFlag: an estimate is feasible iff it fits the GLB.
func TestFeasibilityFlag(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 56, 56, 64, 3, 3, 64, 1, 1)
	small := Estimate(&l, IntraLayer, Options{}, Default(64))
	if small.Feasible {
		t.Errorf("intra-layer of 56x56x64 conv cannot fit 64kB (needs %d bytes)", small.MemoryBytes)
	}
	big := Estimate(&l, IntraLayer, Options{}, Default(1024))
	if !big.Feasible {
		t.Errorf("intra-layer should fit 1MB (needs %d bytes)", big.MemoryBytes)
	}
}
