// Package policy implements the paper's on-chip memory-management policies
// (§3.2): intra-layer reuse and policies 1-5, each with an optional
// prefetching variant, plus the inter-layer-reuse producer/consumer
// variants used by the planner.
//
// For every (layer, policy, options) combination the package produces an
// Estimate carrying the three quantities the paper's Algorithm 1 consumes:
// estimate_memory, estimate_accesses and estimate_latency. The estimators
// are purely analytical — this is the point of the paper: generating a
// management scheme takes milliseconds instead of hours of full simulation —
// but the tile definitions here are shared with internal/engine, which
// executes them for real, so tests can check that estimated off-chip traffic
// equals executed off-chip traffic exactly.
package policy

import "fmt"

// ID identifies one of the paper's memory-management policies.
type ID int

const (
	// IntraLayer keeps the whole layer (ifmap, all filters, whole ofmap)
	// on-chip; every element crosses the chip boundary exactly once.
	IntraLayer ID = iota
	// P1IfmapReuse streams the ifmap height-wise in FH*IW*CI sliding
	// windows with all filters resident and one ofmap row buffered.
	P1IfmapReuse
	// P2FilterReuse keeps the whole ifmap resident, loads filters one by
	// one and buffers one ofmap channel.
	P2FilterReuse
	// P3PerChannel exploits reuse per channel: one ifmap channel streams
	// height-wise against one channel of every filter, accumulating into a
	// whole resident ofmap.
	P3PerChannel
	// P4PartialIfmap is P1 with filters loaded in blocks of n, re-streaming
	// the ifmap ceil(F#/n) times.
	P4PartialIfmap
	// P5PartialPerChannel is P3 with filters loaded in blocks of n (one
	// channel each), re-streaming the ifmap ceil(F#/n) times.
	P5PartialPerChannel

	numPolicies = 6

	// NumPolicies is the size of the paper's policy set, exported so
	// fixed-size per-policy tables elsewhere need no runtime sizing.
	NumPolicies = numPolicies
)

// allIDs is the paper-order policy set as a fixed array, so hot loops can
// range over it without the per-call slice allocation of IDs.
var allIDs = [numPolicies]ID{IntraLayer, P1IfmapReuse, P2FilterReuse, P3PerChannel, P4PartialIfmap, P5PartialPerChannel}

// IDs lists every policy in paper order. The slice is freshly allocated,
// so callers may append to or reorder it.
func IDs() []ID {
	out := make([]ID, numPolicies)
	copy(out, allIDs[:])
	return out
}

// String returns the paper's name for the policy.
func (id ID) String() string {
	switch id {
	case IntraLayer:
		return "intra-layer reuse"
	case P1IfmapReuse:
		return "policy 1"
	case P2FilterReuse:
		return "policy 2"
	case P3PerChannel:
		return "policy 3"
	case P4PartialIfmap:
		return "policy 4"
	case P5PartialPerChannel:
		return "policy 5"
	case FallbackTiled:
		return "fallback tiling"
	default:
		return fmt.Sprintf("ID(%d)", int(id))
	}
}

// shortNames and shortNamesP are the compact labels, indexed by ID, as
// constants: the planner emits one per progress event, so the labels must
// not allocate (pinned by the policy alloc tests).
var (
	shortNames  = [numPolicies + 1]string{"intra", "p1", "p2", "p3", "p4", "p5", "fb"}
	shortNamesP = [numPolicies + 1]string{"intra+p", "p1+p", "p2+p", "p3+p", "p4+p", "p5+p", "fb+p"}
)

// Short returns a compact label ("intra", "p1", ... "p5", "fb") used in
// the paper's Figure 6 annotations.
func (id ID) Short() string {
	if id >= 0 && int(id) < len(shortNames) {
		return shortNames[id]
	}
	return fmt.Sprintf("p%d", int(id))
}

// ShortID is the inverse of Short: it resolves a compact label back to its
// policy ID. Plan documents store per-layer decisions as short labels, so
// rehydrating a document into an executable plan (peer cache-fill, warm
// snapshot restore) starts here.
func ShortID(s string) (ID, bool) {
	for id, name := range shortNames {
		if name == s {
			return ID(id), true
		}
	}
	return 0, false
}

// Config carries the accelerator specification the paper feeds its
// estimators (§3.3): compute rate, data width, GLB size and off-chip
// bandwidth.
type Config struct {
	// GLBBytes is the unified scratchpad capacity in bytes.
	GLBBytes int64
	// DataWidthBits is the element width (the paper uses 8, 16, 32).
	DataWidthBits int
	// OpsPerCycle is the operations-per-cycle of the PE array (512 for the
	// paper's 16x16 array); a MAC costs two operations, so the MAC rate is
	// OpsPerCycle/2.
	OpsPerCycle int
	// DRAMBytesPerCycle is the off-chip bandwidth. The paper states
	// "16 elements per cycle" at 8-bit width, i.e. 16 bytes/cycle; wider
	// data keeps the byte bandwidth and moves fewer elements per cycle.
	DRAMBytesPerCycle int
	// IncludePadding counts the zero-padding halo in ifmap footprints and
	// transfers, as the paper does for its access/latency results (§5.1);
	// its Table 3 memory figures are unpadded.
	IncludePadding bool
	// Batch processes this many inputs back-to-back (0 or 1 = single
	// inference, the paper's setting). Policies that keep their whole
	// filter working set resident (intra-layer reuse, policies 1 and 4)
	// amortise weight traffic across the batch; the others re-stream
	// weights per input. This is an extension over the paper.
	Batch int
}

// Default returns the paper's experimental setup (§4) with the given GLB
// size in kB: 16x16 PEs (512 ops/cycle), 8-bit data, 16 B/cycle DRAM
// bandwidth, padding counted.
func Default(glbKB int) Config {
	return Config{
		GLBBytes:          int64(glbKB) * 1024,
		DataWidthBits:     8,
		OpsPerCycle:       512,
		DRAMBytesPerCycle: 16,
		IncludePadding:    true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.GLBBytes <= 0:
		return fmt.Errorf("policy: GLB size must be positive, got %d", c.GLBBytes)
	case c.DataWidthBits <= 0:
		return fmt.Errorf("policy: data width must be positive, got %d", c.DataWidthBits)
	case c.OpsPerCycle < 2:
		return fmt.Errorf("policy: ops/cycle must be >= 2, got %d", c.OpsPerCycle)
	case c.DRAMBytesPerCycle <= 0:
		return fmt.Errorf("policy: DRAM bandwidth must be positive, got %d", c.DRAMBytesPerCycle)
	case c.Batch < 0:
		return fmt.Errorf("policy: batch must be non-negative, got %d", c.Batch)
	}
	return nil
}

// BatchSize returns the effective batch (>= 1).
func (c Config) BatchSize() int64 {
	if c.Batch > 1 {
		return int64(c.Batch)
	}
	return 1
}

// MACsPerCycle returns the multiply-accumulate throughput of the array.
func (c Config) MACsPerCycle() int64 { return int64(c.OpsPerCycle) / 2 }

// CapacityElems returns how many elements fit in the GLB at the configured
// width.
func (c Config) CapacityElems() int64 {
	return c.GLBBytes * 8 / int64(c.DataWidthBits)
}

// Bytes converts an element count to bytes at the configured width.
func (c Config) Bytes(elems int64) int64 {
	return (elems*int64(c.DataWidthBits) + 7) / 8
}

// Options select a policy variant.
type Options struct {
	// Prefetch reserves a second copy of every tile (paper Eq. 2) so the
	// next phase's loads overlap with compute.
	Prefetch bool
	// ResidentIfmap marks the layer's ifmap as already present in the GLB
	// (it is the previous layer's retained ofmap): no ifmap bytes cross the
	// chip boundary, and the resident (unpadded) footprint replaces the
	// ifmap tile in the memory requirement.
	ResidentIfmap bool
	// KeepOfmap retains the full ofmap in the GLB at the end of the layer
	// and skips its off-chip store, so the next layer can consume it
	// (inter-layer reuse producer side).
	KeepOfmap bool
}

// Variant names the (policy, prefetch) pair the way the paper's Table 4
// does, e.g. "policy 2 +p".
func Variant(id ID, prefetch bool) string {
	if prefetch {
		return id.String() + " +p"
	}
	return id.String()
}

// ShortVariant is Variant in the compact Figure-6 labelling ("p2+p",
// "intra", "fb") — the form reports, progress events and metric labels
// share.
func ShortVariant(id ID, prefetch bool) string {
	if !prefetch {
		return id.Short()
	}
	if id >= 0 && int(id) < len(shortNamesP) {
		return shortNamesP[id]
	}
	return id.Short() + "+p"
}

// ShortVariants lists every selectable (policy, prefetch) label, paper
// order then fallback, prefetch-less first — the fixed label set of the
// server's smm_policy_selected_total metric.
func ShortVariants() []string {
	ids := append(IDs(), FallbackTiled)
	out := make([]string, 0, 2*len(ids))
	for _, id := range ids {
		out = append(out, ShortVariant(id, false), ShortVariant(id, true))
	}
	return out
}

// Tiles holds the per-data-type tile sizes of a policy instantiation, in
// elements. For inter-layer variants Ifmap/Ofmap refer to the resident
// regions.
type Tiles struct {
	Ifmap, Filter, Ofmap int64
}

// Total returns the summed tile footprint in elements.
func (t Tiles) Total() int64 { return t.Ifmap + t.Filter + t.Ofmap }

// Estimate is the output of the three estimators for one (layer, policy,
// options) combination.
type Result struct {
	Policy         ID
	Opts           Options
	Layer          string // layer name, for reporting
	N              int    // filter-block size for P4/P5 (0 for other policies)
	Tiles          Tiles  // tile sizes in elements (doubled terms NOT included)
	DoubleBuffered Tiles  // extra elements reserved for prefetching

	MemoryElems int64 // estimate_memory, elements
	MemoryBytes int64 // estimate_memory, bytes

	IfmapLoads   int64 // how many times the full ifmap crosses off-chip (x)
	FilterLoads  int64 // how many times the full filter set crosses off-chip
	AccessIfmap  int64 // off-chip ifmap reads, elements
	AccessFilter int64 // off-chip filter reads, elements
	AccessOfmap  int64 // off-chip ofmap writes, elements
	AccessElems  int64 // estimate_accesses, elements
	AccessBytes  int64 // estimate_accesses, bytes

	ComputeCycles  int64 // ideal MAC-bound cycles
	TransferCycles int64 // DRAM-bound cycles for AccessBytes
	LatencyCycles  int64 // estimate_latency

	Feasible bool // MemoryBytes <= Config.GLBBytes
}
