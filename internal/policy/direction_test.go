package policy

import (
	"testing"

	"scratchmem/internal/layer"
)

// bruteSweep simulates the tile traversal at element granularity: only the
// primary (innermost) direction retains its sliding overlap; crossing an
// outer tile boundary flushes residency. It returns the total elements
// loaded.
func bruteSweep(ihe, iwe, ci, th, tw, fh, fw, s int, primary Direction) int64 {
	haloH, haloW := fh-s, fw-s
	if haloH < 0 {
		haloH = 0
	}
	if haloW < 0 {
		haloW = 0
	}
	positions := func(extent, tile, halo int) []int {
		if tile >= extent {
			return []int{0}
		}
		step := tile - halo
		var pos []int
		for p := 0; ; p += step {
			if p+tile >= extent {
				pos = append(pos, extent-tile)
				break
			}
			pos = append(pos, p)
		}
		return pos
	}
	hPos := positions(ihe, th, haloH)
	wPos := positions(iwe, tw, haloW)
	dPos := []int{0} // whole depth per slab; channels have no halo
	type id struct{ h, w int }

	var total int64
	sweep := func(outerA, outerB []int, inner []int, tileAt func(a, b, p int) (h0, h1, w0, w1 int)) {
		for _, a := range outerA {
			for _, b := range outerB {
				resident := map[id]bool{}
				for _, p := range inner {
					h0, h1, w0, w1 := tileAt(a, b, p)
					next := map[id]bool{}
					for h := h0; h < h1; h++ {
						for w := w0; w < w1; w++ {
							k := id{h, w}
							if !resident[k] {
								total += int64(ci)
							}
							next[k] = true
						}
					}
					resident = next
				}
			}
		}
	}
	switch primary {
	case HeightWise:
		sweep(wPos, dPos, hPos, func(w, _, h int) (int, int, int, int) {
			return h, h + th, w, w + tw
		})
	case WidthWise:
		sweep(hPos, dPos, wPos, func(h, _, w int) (int, int, int, int) {
			return h, h + th, w, w + tw
		})
	case DepthWise:
		// Depth is innermost but has no halo: every (h, w) tile crossing
		// loads fresh.
		sweep(hPos, wPos, []int{0}, func(h, w, _ int) (int, int, int, int) {
			return h, h + th, w, w + tw
		})
	}
	return total
}

// TestSweepLoadMatchesBruteForce: on tile grids that divide the ifmap
// evenly, the closed form equals the element-level simulation for all three
// directions.
func TestSweepLoadMatchesBruteForce(t *testing.T) {
	cfg := Default(64)
	cfg.IncludePadding = false
	cases := []struct {
		l layer.Layer
		t Tile
	}{
		// 14 = 4 + 5*2: tiles of 4 with halo 2 step 2 tile evenly.
		{layer.MustNew("a", layer.Conv, 14, 14, 3, 3, 3, 4, 1, 0), Tile{TH: 4, TW: 4, TC: 3}},
		{layer.MustNew("b", layer.Conv, 14, 10, 2, 3, 3, 4, 1, 0), Tile{TH: 4, TW: 10, TC: 2}},
		{layer.MustNew("c", layer.Conv, 10, 10, 4, 1, 1, 4, 1, 0), Tile{TH: 2, TW: 2, TC: 4}},
	}
	for _, tc := range cases {
		for _, dir := range []Direction{HeightWise, WidthWise, DepthWise} {
			got, err := SweepLoad(&tc.l, tc.t, dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteSweep(tc.l.IH, tc.l.IW, tc.l.CI, tc.t.TH, tc.t.TW, tc.l.FH, tc.l.FW, tc.l.S, dir)
			if got != want {
				t.Errorf("%s %v %v: closed form %d != brute force %d", tc.l.Name, tc.t, dir, got, want)
			}
		}
	}
}

// TestSweepLoadLowerBoundsUnaligned: with clamped (unaligned) tilings the
// closed form is a lower bound on the simulated loads.
func TestSweepLoadLowerBoundsUnaligned(t *testing.T) {
	cfg := Default(64)
	cfg.IncludePadding = false
	l := layer.MustNew("u", layer.Conv, 13, 11, 2, 3, 3, 4, 1, 0)
	tile := Tile{TH: 5, TW: 4, TC: 2}
	for _, dir := range []Direction{HeightWise, WidthWise, DepthWise} {
		got, err := SweepLoad(&l, tile, dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteSweep(l.IH, l.IW, l.CI, tile.TH, tile.TW, l.FH, l.FW, l.S, dir)
		if got > want {
			t.Errorf("%v: closed form %d exceeds brute force %d", dir, got, want)
		}
	}
}

// TestFig2SlidingWindowMinimal reproduces Figure 2b: the full-width
// height-wise sliding window of policy 1 transfers every ifmap element
// exactly once, and height-wise is the best direction for it.
func TestFig2SlidingWindowMinimal(t *testing.T) {
	cfg := Default(64)
	l := layer.MustNew("c", layer.Conv, 56, 56, 64, 3, 3, 64, 1, 1)
	window := Tile{TH: l.FH, TW: l.PaddedIW(), TC: l.CI}
	got, err := SweepLoad(&l, window, HeightWise, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := l.IfmapElems(true); got != want {
		t.Errorf("sliding window loads %d, want each element once (%d)", got, want)
	}
	dir, best, err := BestDirection(&l, window, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dir != HeightWise || best != got {
		t.Errorf("best direction = %v (%d), want height-wise (%d)", dir, best, got)
	}
	// Depth-wise primary on a narrow tile pays halo re-loads in H and W.
	narrow := Tile{TH: l.FH, TW: l.FW, TC: l.CI}
	dw, _ := SweepLoad(&l, narrow, DepthWise, cfg)
	hw, _ := SweepLoad(&l, narrow, HeightWise, cfg)
	if dw <= hw {
		t.Errorf("depth-wise (%d) should re-load more than height-wise (%d) for a narrow tile", dw, hw)
	}
	if hw <= l.IfmapElems(true) {
		t.Errorf("narrow tile should still re-load (%d vs %d once-each)", hw, l.IfmapElems(true))
	}
}

func TestSweepLoadErrors(t *testing.T) {
	cfg := Default(64)
	l := layer.MustNew("c", layer.Conv, 8, 8, 2, 3, 3, 4, 1, 0)
	if _, err := SweepLoad(&l, Tile{TH: 2, TW: 3, TC: 1}, HeightWise, cfg); err == nil {
		t.Error("tile smaller than the window accepted")
	}
	if _, err := SweepLoad(&l, Tile{TH: 3, TW: 3, TC: 1}, Direction(9), cfg); err == nil {
		t.Error("unknown direction accepted")
	}
	if DepthWise.String() != "depth-wise" || Direction(9).String() == "" {
		t.Error("direction names broken")
	}
}
