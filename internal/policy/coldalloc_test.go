package policy

import "testing"

// TestColdEstimatePathAllocs pins PR 10's cold-path property: estimating a
// layer the memo has never seen — shape construction aside — allocates
// nothing. The per-policy tile coefficients (Shape.tiles) replace the old
// per-probe recomputation, and the memo's block arena amortizes stores, so
// a cold sweep is bounded by arithmetic, not the garbage collector.
func TestColdEstimatePathAllocs(t *testing.T) {
	layers := memoTestLayers(t)
	cfg := Default(64)
	l := &layers[1]
	var e Result

	// Package-level one-shot estimate of an unseen shape.
	if n := testing.AllocsPerRun(100, func() {
		_ = EstimateFast(l, P4PartialIfmap, Options{Prefetch: true}, cfg)
	}); n != 0 {
		t.Errorf("cold EstimateFast allocates %.1f objects/op, want 0", n)
	}

	// Shape construction plus a full policy sweep on it.
	if n := testing.AllocsPerRun(100, func() {
		sh := NewShape(l, cfg.IncludePadding)
		for _, id := range allIDs {
			sh.EstimateFastInto(&e, id, Options{Prefetch: true}, cfg)
		}
	}); n != 0 {
		t.Errorf("NewShape + full sweep allocates %.1f objects/op, want 0", n)
	}

	// Memo cold paths: EstimateInto / EstimateN on always-fresh options so
	// every call is a miss-and-store (the block arena absorbs entry churn;
	// AllocsPerRun averaging tolerates the occasional new block).
	m := NewMemo()
	batch := int64(0)
	if n := testing.AllocsPerRun(100, func() {
		batch++
		m.EstimateN(l, P5PartialPerChannel, Options{Prefetch: true}, cfg, batch)
	}); n != 0 {
		t.Errorf("cold Memo.EstimateN allocates %.1f objects/op, want 0", n)
	}
}
