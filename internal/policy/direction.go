package policy

import (
	"fmt"

	"scratchmem/internal/layer"
)

// Direction is an ifmap tile-traversal direction (paper Figure 2a). When a
// tile smaller than the ifmap sweeps the tensor, consecutive positions
// along the sliding (primary) direction retain their convolution halo
// (FH-S rows or FW-S columns), while every tile boundary crossed in the
// other directions re-loads its halo — the turquoise elements of Figure 2a.
// Channels have no halo, so the depth direction never re-loads, which is
// what makes the height-wise full-width sliding window of Figure 2b (and
// of policies 1/3-5) transfer every element exactly once.
type Direction int

const (
	// HeightWise slides the tile along the ifmap height.
	HeightWise Direction = iota
	// WidthWise slides the tile along the ifmap width.
	WidthWise
	// DepthWise slides the tile along the channels.
	DepthWise
)

// String names the direction as in the paper's Figure 2.
func (d Direction) String() string {
	switch d {
	case HeightWise:
		return "height-wise"
	case WidthWise:
		return "width-wise"
	case DepthWise:
		return "depth-wise"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Tile is an ifmap tile shape for the Figure 2 analysis.
type Tile struct {
	TH, TW, TC int
}

// SweepLoad returns the total ifmap elements transferred when the tile
// sweeps the layer's (effective) ifmap with the given primary direction:
// the primary dimension loads its extent once (halo retained while
// sliding); each other dimension loads its stretched extent —
// extent + (tiles-1) * halo — because halos re-load at every tile boundary.
//
// The tile must be at least the filter's extent in H/W (a convolution
// window must fit) and positive in depth.
func SweepLoad(l *layer.Layer, t Tile, primary Direction, cfg Config) (int64, error) {
	ihe, iwe := int64(l.IH), int64(l.IW)
	if cfg.IncludePadding {
		ihe, iwe = int64(l.PaddedIH()), int64(l.PaddedIW())
	}
	if int64(t.TH) < int64(l.FH) || int64(t.TW) < int64(l.FW) || t.TC < 1 {
		return 0, fmt.Errorf("policy: tile %dx%dx%d smaller than the %dx%d window", t.TH, t.TW, t.TC, l.FH, l.FW)
	}
	th, tw := min64(int64(t.TH), ihe), min64(int64(t.TW), iwe)

	// Stretched extents: halo re-loaded once per interior tile boundary.
	stretch := func(extent, tile, halo int64) int64 {
		if tile >= extent {
			return extent
		}
		step := tile - halo
		tiles := 1 + ceilDiv(extent-tile, step)
		return extent + (tiles-1)*halo
	}
	haloH := int64(l.FH - l.S)
	if haloH < 0 {
		haloH = 0
	}
	haloW := int64(l.FW - l.S)
	if haloW < 0 {
		haloW = 0
	}
	covH := stretch(ihe, th, haloH)
	covW := stretch(iwe, tw, haloW)
	covD := int64(l.CI) // channels never re-load

	switch primary {
	case HeightWise:
		covH = ihe
	case WidthWise:
		covW = iwe
	case DepthWise:
		// Depth has no halo, so sliding along it saves nothing.
	default:
		return 0, fmt.Errorf("policy: unknown direction %v", primary)
	}
	return covH * covW * covD, nil
}

// BestDirection returns the direction minimising SweepLoad for a tile —
// height-wise for the full-width sliding windows the policies use.
func BestDirection(l *layer.Layer, t Tile, cfg Config) (Direction, int64, error) {
	var bestDir Direction
	var best int64 = -1
	for _, d := range []Direction{HeightWise, WidthWise, DepthWise} {
		v, err := SweepLoad(l, t, d, cfg)
		if err != nil {
			return 0, 0, err
		}
		if best < 0 || v < best {
			bestDir, best = d, v
		}
	}
	return bestDir, best, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
