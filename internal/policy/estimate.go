package policy

import (
	"scratchmem/internal/layer"
)

// shapeOf gathers the element-count geometry a policy needs, honouring the
// padding switch.
type shapeOf struct {
	ihe, iwe  int64 // effective (possibly padded) ifmap extent
	ci, f, co int64
	fh, fw    int64
	oh, ow    int64
	ifmapAll  int64 // effective ifmap footprint
	ifmapLive int64 // unpadded ifmap footprint (resident data)
	filterAll int64
	ofmapAll  int64
	macs      int64 // layer.MACs(), hoisted out of the candidate sweep
	depthwise bool
	// One-pass predicates of ifmapLoads, hoisted out of the per-candidate
	// block-size arithmetic: true when the policy's sliding window spans
	// the whole ifmap (or the layer is depth-wise), so the ifmap crosses
	// the chip boundary once regardless of the filter-block size.
	p4OnePass bool
	p5OnePass bool
}

func newShape(l *layer.Layer, padded bool) shapeOf {
	s := shapeOf{
		ci: int64(l.CI), f: int64(l.F), co: int64(l.CO()),
		fh: int64(l.FH), fw: int64(l.FW),
		oh: int64(l.OH()), ow: int64(l.OW()),
		ihe: int64(l.IH), iwe: int64(l.IW),
		depthwise: l.Kind == layer.DepthwiseConv,
	}
	if padded {
		s.ihe, s.iwe = int64(l.PaddedIH()), int64(l.PaddedIW())
	}
	s.ifmapAll = s.ihe * s.iwe * s.ci
	s.ifmapLive = int64(l.IH) * int64(l.IW) * s.ci
	s.filterAll = l.FilterElems()
	s.ofmapAll = l.OfmapElems()
	s.macs = l.MACs()
	s.p4OnePass = s.depthwise || s.fh >= s.ihe
	s.p5OnePass = s.depthwise || (s.fh >= s.ihe && s.ci == 1)
	return s
}

// tilesFor returns the per-data-type tile sizes of a policy (paper §3.2)
// for a given filter-block size n (only meaningful for P4/P5).
func tilesFor(id ID, s *shapeOf, n int64) Tiles {
	switch id {
	case IntraLayer:
		return Tiles{Ifmap: s.ifmapAll, Filter: s.filterAll, Ofmap: s.ofmapAll}
	case P1IfmapReuse:
		// Sliding window of FH rows across all channels; all filters
		// resident; one ofmap row across all output channels.
		return Tiles{Ifmap: s.fh * s.iwe * s.ci, Filter: s.filterAll, Ofmap: s.ow * s.co}
	case P2FilterReuse:
		// Whole ifmap resident; one filter at a time; one ofmap channel.
		oneFilter := s.fh * s.fw * s.ci
		if s.depthwise {
			oneFilter = s.fh * s.fw
		}
		return Tiles{Ifmap: s.ifmapAll, Filter: oneFilter, Ofmap: s.oh * s.ow}
	case P3PerChannel:
		// One ifmap channel streams height-wise; one channel of every
		// filter resident; whole ofmap accumulates on-chip. Depth-wise
		// layers have no cross-channel accumulation, so one ofmap channel
		// suffices before it is stored.
		ftile := s.fh * s.fw * s.f
		otile := s.ofmapAll
		if s.depthwise {
			ftile = s.fh * s.fw
			otile = s.oh * s.ow
		}
		return Tiles{Ifmap: s.fh * s.iwe, Filter: ftile, Ofmap: otile}
	case P4PartialIfmap:
		// P1 with a block of n filters and an n-channel ofmap row.
		per := s.fh * s.fw * s.ci
		if s.depthwise {
			// One "filter" covering all channels; block size is moot.
			return Tiles{Ifmap: s.fh * s.iwe * s.ci, Filter: s.filterAll, Ofmap: s.ow * s.co}
		}
		return Tiles{Ifmap: s.fh * s.iwe * s.ci, Filter: per * n, Ofmap: s.ow * n}
	case P5PartialPerChannel:
		if s.depthwise {
			// Channels are processed independently, exactly like P3-DW.
			return Tiles{Ifmap: s.fh * s.iwe, Filter: s.fh * s.fw, Ofmap: s.oh * s.ow}
		}
		return Tiles{Ifmap: s.fh * s.iwe, Filter: s.fh * s.fw * n, Ofmap: s.oh * s.ow * n}
	default:
		panic("policy: unknown policy " + id.String())
	}
}

// ifmapLoads returns how many times the whole ifmap must cross the chip
// boundary for a policy with filter-block size n. It is 1 for intra/P1/P2/P3
// (every element moves once) and ceil(F#/n) for P4/P5, except where the
// sliding window already spans the entire ifmap (then nothing is evicted
// between blocks) or the layer is depth-wise (one filter per channel, one
// pass).
func ifmapLoads(id ID, s *shapeOf, n int64) int64 {
	switch id {
	case P4PartialIfmap:
		if s.p4OnePass {
			return 1
		}
		return ceilDiv(s.f, n)
	case P5PartialPerChannel:
		if s.p5OnePass {
			return 1
		}
		return ceilDiv(s.f, n)
	default:
		return 1
	}
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("policy: ceilDiv by non-positive divisor")
	}
	return (a + b - 1) / b
}

// memoryElems applies the paper's capacity equations: Eq. 1 without
// prefetching, Eq. 2 (every tile doubled) with prefetching. Inter-layer
// variants adjust the ifmap/ofmap terms: a resident ifmap occupies its live
// (unpadded) footprint and is never double-buffered; a kept ofmap occupies
// the full ofmap and is never double-buffered.
func memoryElems(t Tiles, s *shapeOf, o Options) (total int64, extra Tiles) {
	iTerm, fTerm, oTerm := t.Ifmap, t.Filter, t.Ofmap
	if o.ResidentIfmap {
		iTerm = s.ifmapLive
	}
	if o.KeepOfmap && oTerm < s.ofmapAll {
		oTerm = s.ofmapAll
	}
	total = iTerm + fTerm + oTerm
	if o.Prefetch {
		if !o.ResidentIfmap {
			extra.Ifmap = t.Ifmap
		}
		extra.Filter = t.Filter
		if !o.KeepOfmap {
			extra.Ofmap = t.Ofmap
		}
		total += extra.Total()
	}
	return total, extra
}

// Estimate runs the three estimators for one (layer, policy, options)
// combination under the given accelerator configuration. For P4/P5 it picks
// the largest feasible filter-block size n; if even n=1 does not fit the
// estimate is returned with Feasible=false (the planner then falls back).
func Estimate(l *layer.Layer, id ID, o Options, cfg Config) Result {
	s := newShape(l, cfg.IncludePadding)
	n := bestBlockSize(id, &s, o, cfg)
	return estimateWithN(l, id, o, cfg, &s, n)
}

// EstimateN is Estimate with the filter-block size forced to n instead of
// auto-selected (P4/P5 only; other policies have no block size and ignore
// n). The degradation ladder uses n=1 to probe the smallest-footprint
// partial-reuse schedules when the auto-selected block does not fit.
func EstimateN(l *layer.Layer, id ID, o Options, cfg Config, n int64) Result {
	s := newShape(l, cfg.IncludePadding)
	switch {
	case id != P4PartialIfmap && id != P5PartialPerChannel:
		n = 0
	case s.depthwise || n < 1:
		n = 1
	}
	return estimateWithN(l, id, o, cfg, &s, n)
}

// bestBlockSize returns the largest n in [1, F#) (F# for depth-wise or
// single-filter layers) whose memory requirement fits the GLB; 1 if none
// fits (the estimate will be infeasible); and 0 for policies without a
// block size.
func bestBlockSize(id ID, s *shapeOf, o Options, cfg Config) int64 {
	if id != P4PartialIfmap && id != P5PartialPerChannel {
		return 0
	}
	if s.depthwise {
		return 1
	}
	maxN := s.f - 1
	if maxN < 1 {
		maxN = 1
	}
	cap := cfg.CapacityElems()
	// Memory is affine in n: mem(n) = base + perN*n (with prefetch folded
	// in), so solve directly rather than scanning.
	m1, _ := memoryElems(tilesFor(id, s, 1), s, o)
	m2, _ := memoryElems(tilesFor(id, s, 2), s, o)
	perN := m2 - m1
	if perN <= 0 {
		return maxN
	}
	if m1 > cap {
		return 1 // infeasible even at n=1; report that honestly
	}
	n := 1 + (cap-m1)/perN
	if n > maxN {
		n = maxN
	}
	return n
}

// filterResident reports whether the policy keeps its filter working set on
// chip for the whole layer, so a batch of inputs can amortise the weight
// traffic (intra-layer reuse and policies 1/4 hold all filters or the
// current block for the entire sweep; policies 2/3/5 re-stream weight
// slices per input).
func filterResident(id ID) bool {
	return id == IntraLayer || id == P1IfmapReuse || id == P4PartialIfmap
}

func estimateWithN(l *layer.Layer, id ID, o Options, cfg Config, s *shapeOf, n int64) Result {
	t := tilesFor(id, s, n)
	memElems, extra := memoryElems(t, s, o)
	e := Result{
		Policy: id, Opts: o, Layer: l.Name, N: int(n),
		Tiles: t, DoubleBuffered: extra,
		MemoryElems: memElems, MemoryBytes: cfg.Bytes(memElems),
	}
	e.Feasible = e.MemoryBytes <= cfg.GLBBytes
	finishEstimate(&e, l, id, o, cfg, s, n)
	return e
}

// finishEstimate fills the traffic and latency fields of an estimate whose
// capacity fields are already set.
func finishEstimate(e *Result, l *layer.Layer, id ID, o Options, cfg Config, s *shapeOf, n int64) {
	x := ifmapLoads(id, s, n)
	b := cfg.BatchSize()

	accI := x * s.ifmapAll * b
	if o.ResidentIfmap {
		accI, x = 0, 0
	}
	fLoads := b
	if filterResident(id) {
		fLoads = 1
	}
	accF := fLoads * s.filterAll
	accO := s.ofmapAll * b
	if o.KeepOfmap {
		accO = 0
	}
	acc := accI + accF + accO

	e.IfmapLoads, e.FilterLoads = x, fLoads
	e.AccessIfmap, e.AccessFilter, e.AccessOfmap = accI, accF, accO
	e.AccessElems, e.AccessBytes = acc, cfg.Bytes(acc)
	e.ComputeCycles = ceilDiv(s.macs*b, cfg.MACsPerCycle())
	e.TransferCycles = ceilDiv(e.AccessBytes, int64(cfg.DRAMBytesPerCycle))
	e.LatencyCycles = latency(e, o, cfg)
}

// EstimateFast is Estimate for candidate sweeps: feasible results are
// byte-identical to Estimate's, but infeasible ones stop at the capacity
// check and carry only the identifying and memory fields (zero traffic and
// latency) — a planner discards an infeasible candidate after reading
// Feasible and, on its error paths, MemoryBytes, so the cheap contract is
// enough and skips roughly half the estimator's arithmetic on the sweeps'
// many non-fitting candidates.
func EstimateFast(l *layer.Layer, id ID, o Options, cfg Config) Result {
	sh := NewShape(l, cfg.IncludePadding)
	return sh.EstimateFast(id, o, cfg)
}

// tileCoef is one policy's tile sizes decomposed affinely in the filter-
// block size n: tiles(n) = base + (n−1)·perN, exact over the whole valid
// range (the P4/P5 tiles are linear in n; every other policy — and
// depth-wise P4/P5 — is constant, perN = 0). The coefficients are
// tilesFor's own values at n=1 and n=2, so the decomposition reproduces
// tilesFor bit-for-bit.
type tileCoef struct {
	base, perN Tiles
}

// Shape is the precomputed geometry of one layer under one padding rule.
// A candidate sweep evaluates up to sixteen (policy, ±prefetch) variants of
// the same layer; computing the derived extents — and each policy's affine
// tile coefficients — once and reusing them across the sweep removes the
// dominant per-candidate cost.
type Shape struct {
	l *layer.Layer
	s shapeOf
	// padded records the rule the shape was derived under; estimates must
	// be asked with a Config whose IncludePadding matches.
	padded bool
	coef   [numPolicies]tileCoef
}

// NewShape precomputes l's geometry. The padded flag must equal the
// IncludePadding of every Config later passed to this shape's estimators.
func NewShape(l *layer.Layer, padded bool) Shape {
	sh := Shape{l: l, s: newShape(l, padded), padded: padded}
	sh.initCoef()
	return sh
}

func (sh *Shape) initCoef() {
	for _, id := range allIDs {
		t1 := tilesFor(id, &sh.s, 1)
		t2 := tilesFor(id, &sh.s, 2)
		sh.coef[id] = tileCoef{base: t1, perN: Tiles{
			Ifmap:  t2.Ifmap - t1.Ifmap,
			Filter: t2.Filter - t1.Filter,
			Ofmap:  t2.Ofmap - t1.Ofmap,
		}}
	}
}

// tiles is tilesFor against the precomputed coefficients. n <= 1 covers
// both n=1 and the no-block-size n=0 (tilesFor ignores n there, and base
// is its constant value).
func (sh *Shape) tiles(id ID, n int64) Tiles {
	c := &sh.coef[id]
	if n <= 1 {
		return c.base
	}
	k := n - 1
	return Tiles{
		Ifmap:  c.base.Ifmap + k*c.perN.Ifmap,
		Filter: c.base.Filter + k*c.perN.Filter,
		Ofmap:  c.base.Ofmap + k*c.perN.Ofmap,
	}
}

// bestBlockSize is the package-level bestBlockSize against the precomputed
// coefficients: same closed-form affine solve, with the two probe tile
// computations reduced to table reads.
func (sh *Shape) bestBlockSize(id ID, o Options, cfg Config) int64 {
	if id != P4PartialIfmap && id != P5PartialPerChannel {
		return 0
	}
	s := &sh.s
	if s.depthwise {
		return 1
	}
	maxN := s.f - 1
	if maxN < 1 {
		maxN = 1
	}
	cap := cfg.CapacityElems()
	m1, _ := memoryElems(sh.tiles(id, 1), s, o)
	m2, _ := memoryElems(sh.tiles(id, 2), s, o)
	perN := m2 - m1
	if perN <= 0 {
		return maxN
	}
	if m1 > cap {
		return 1 // infeasible even at n=1; report that honestly
	}
	n := 1 + (cap-m1)/perN
	if n > maxN {
		n = maxN
	}
	return n
}

// EstimateFast is EstimateFast against the precomputed geometry.
func (sh *Shape) EstimateFast(id ID, o Options, cfg Config) Result {
	var e Result
	sh.EstimateFastInto(&e, id, o, cfg)
	return e
}

// EstimateFastInto is EstimateFast writing its result in place, for sweeps
// that evaluate many candidates into one reused Result. A feasible result
// has every field written; an infeasible one has only the identifying and
// capacity fields plus Feasible written — the traffic and latency fields
// keep e's prior contents, so reuse-minded callers must read nothing else
// from a rejected candidate (the sweep contract; EstimateFast itself hands
// the Into form a zeroed Result, preserving its zero-fields guarantee).
func (sh *Shape) EstimateFastInto(e *Result, id ID, o Options, cfg Config) {
	s := &sh.s
	n := sh.bestBlockSize(id, o, cfg)
	t := sh.tiles(id, n)
	memElems, extra := memoryElems(t, s, o)
	e.Policy, e.Opts, e.Layer, e.N = id, o, sh.l.Name, int(n)
	e.Tiles, e.DoubleBuffered = t, extra
	e.MemoryElems = memElems
	e.MemoryBytes = cfg.Bytes(memElems)
	if e.MemoryBytes > cfg.GLBBytes {
		e.Feasible = false
		return
	}
	e.Feasible = true
	finishEstimate(e, sh.l, id, o, cfg, s, n)
}

// latency models the paper's estimate_latency: without prefetching, loads
// serialise with compute; with prefetching, the first input tile fills the
// pipeline, compute overlaps the remaining transfers, and the last output
// tile drains.
func latency(e *Result, o Options, cfg Config) int64 {
	if !o.Prefetch {
		return e.ComputeCycles + e.TransferCycles
	}
	bw := int64(cfg.DRAMBytesPerCycle)
	fill := ceilDiv(cfg.Bytes(e.Tiles.Ifmap+e.Tiles.Filter), bw)
	if o.ResidentIfmap {
		fill = ceilDiv(cfg.Bytes(e.Tiles.Filter), bw)
	}
	drain := ceilDiv(cfg.Bytes(e.Tiles.Ofmap), bw)
	if o.KeepOfmap {
		drain = 0
	}
	if fill+drain > e.TransferCycles {
		// Degenerate tiny layers: everything is one tile.
		fill, drain = e.TransferCycles, 0
	}
	steady := e.TransferCycles - fill - drain
	if e.ComputeCycles > steady {
		steady = e.ComputeCycles
	}
	return fill + steady + drain
}

// All evaluates every (policy, ±prefetch) pair for a layer, in the order of
// the paper's Algorithm 1 policy set (12 variants).
func All(l *layer.Layer, cfg Config) []Result {
	out := make([]Result, 0, 2*numPolicies)
	for _, id := range allIDs {
		out = append(out,
			Estimate(l, id, Options{}, cfg),
			Estimate(l, id, Options{Prefetch: true}, cfg))
	}
	return out
}

// MinAccessElems returns the theoretical minimum off-chip traffic of the
// layer under the configuration's padding rule: every ifmap, filter and
// ofmap element moved exactly once.
func MinAccessElems(l *layer.Layer, cfg Config) int64 {
	return l.IfmapElems(cfg.IncludePadding) + l.FilterElems() + l.OfmapElems()
}

// MaxMemoryKB returns, over the layers of a network slice, the maximum
// memory requirement of the policy in kB — the quantity tabulated in the
// paper's Table 3 (computed there with unpadded ifmaps and 8-bit data).
func MaxMemoryKB(layers []layer.Layer, id ID, cfg Config) float64 {
	var maxB int64
	for i := range layers {
		e := Estimate(&layers[i], id, Options{}, cfg)
		if e.MemoryBytes > maxB {
			maxB = e.MemoryBytes
		}
	}
	return float64(maxB) / 1024.0
}
