package policy

import (
	"testing"

	"scratchmem/internal/layer"
)

func TestFrontierIsPareto(t *testing.T) {
	cfg := Default(1024)
	layers := []layer.Layer{
		layer.MustNew("cv", layer.Conv, 28, 28, 64, 3, 3, 128, 1, 1),
		layer.MustNew("dw", layer.DepthwiseConv, 28, 28, 64, 3, 3, 1, 1, 1),
		layer.FC("fc", 512, 1000),
	}
	for _, l := range layers {
		l := l
		f := Frontier(&l, cfg)
		if len(f) == 0 {
			t.Fatalf("%s: empty frontier", l.Name)
		}
		for i := 1; i < len(f); i++ {
			if f[i].MemoryBytes <= f[i-1].MemoryBytes {
				t.Errorf("%s: memory not strictly increasing at %d", l.Name, i)
			}
			if f[i].AccessElems >= f[i-1].AccessElems {
				t.Errorf("%s: traffic not strictly decreasing at %d", l.Name, i)
			}
		}
		// The last (largest-memory) point reaches the minimum.
		if last := f[len(f)-1]; last.AccessElems != MinAccessElems(&l, cfg) {
			t.Errorf("%s: frontier tail %d, want minimum %d",
				l.Name, last.AccessElems, MinAccessElems(&l, cfg))
		}
		// Every named policy variant is dominated by (or on) the frontier.
		for _, id := range IDs() {
			e := Estimate(&l, id, Options{}, cfg)
			dominated := false
			for _, p := range f {
				if p.MemoryBytes <= e.MemoryBytes && p.AccessElems <= e.AccessElems {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Errorf("%s: %s (mem %d, acc %d) not covered by frontier",
					l.Name, id, e.MemoryBytes, e.AccessElems)
			}
		}
	}
}

func TestSmallestGLBForMinimum(t *testing.T) {
	cfg := Default(1024)
	l := layer.MustNew("cv", layer.Conv, 28, 28, 64, 3, 3, 128, 1, 1)
	need := SmallestGLBForMinimum(&l, cfg)
	if need <= 0 {
		t.Fatalf("no minimum-reaching point (need = %d)", need)
	}
	// A GLB of exactly that size must admit a min-traffic policy; one byte
	// less must not (for the probed variants).
	cfgAt := cfg
	cfgAt.GLBBytes = need
	found := false
	for _, id := range IDs() {
		e := Estimate(&l, id, Options{}, cfgAt)
		if e.Feasible && e.AccessElems == MinAccessElems(&l, cfg) {
			found = true
		}
	}
	if !found {
		t.Errorf("GLB of %d bytes does not admit a minimal policy", need)
	}
}
