package policy

import (
	"math/rand"
	"testing"

	"scratchmem/internal/layer"
)

// randomConv draws a small random dense convolution.
func randomConv(r *rand.Rand) layer.Layer {
	fh := 1 + r.Intn(5)
	fw := 1 + r.Intn(5)
	return layer.MustNew("q", layer.Conv,
		fh+r.Intn(30), fw+r.Intn(30), 1+r.Intn(48),
		fh, fw, 1+r.Intn(96), 1+r.Intn(2), r.Intn(3))
}

// TestBestBlockSizeMatchesScan: the closed-form affine solve for the P4/P5
// filter-block size must agree with a brute-force linear scan over n.
func TestBestBlockSizeMatchesScan(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		l := randomConv(r)
		glbKB := 1 << (2 + r.Intn(8)) // 4 kB .. 512 kB
		cfg := Default(glbKB)
		o := Options{Prefetch: r.Intn(2) == 0}
		for _, id := range []ID{P4PartialIfmap, P5PartialPerChannel} {
			got := Estimate(&l, id, o, cfg)
			// Brute force: largest feasible n in [1, F#-1] (or 1).
			s := newShape(&l, cfg.IncludePadding)
			maxN := int64(l.F) - 1
			if maxN < 1 {
				maxN = 1
			}
			best := int64(1)
			feasible := false
			for n := int64(1); n <= maxN; n++ {
				mem, _ := memoryElems(tilesFor(id, &s, n), &s, o)
				if mem <= cfg.CapacityElems() {
					best, feasible = n, true
				}
			}
			if feasible && int64(got.N) != best {
				t.Fatalf("%s on %s @%dkB pf=%v: closed-form n=%d, scan n=%d",
					id, l, glbKB, o.Prefetch, got.N, best)
			}
			if !feasible && got.Feasible {
				t.Fatalf("%s on %s @%dkB: estimator feasible but scan found nothing", id, l, glbKB)
			}
		}
	}
}

// TestEstimateInvariants: randomized invariants over all policies.
func TestEstimateInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		l := randomConv(r)
		cfg := Default(1 << (3 + r.Intn(8)))
		min := MinAccessElems(&l, cfg)
		for _, id := range IDs() {
			for _, pf := range []bool{false, true} {
				e := Estimate(&l, id, Options{Prefetch: pf}, cfg)
				if e.AccessElems < min {
					t.Fatalf("%s on %s: accesses %d below minimum %d", id, l, e.AccessElems, min)
				}
				if e.AccessIfmap+e.AccessFilter+e.AccessOfmap != e.AccessElems {
					t.Fatalf("%s on %s: per-type accesses do not sum", id, l)
				}
				if e.MemoryElems < e.Tiles.Total() {
					t.Fatalf("%s on %s: memory %d below tile total %d", id, l, e.MemoryElems, e.Tiles.Total())
				}
				if e.LatencyCycles < e.ComputeCycles {
					t.Fatalf("%s on %s: latency %d below compute bound %d", id, l, e.LatencyCycles, e.ComputeCycles)
				}
				if !pf && e.LatencyCycles != e.ComputeCycles+e.TransferCycles {
					t.Fatalf("%s on %s: serial latency identity broken", id, l)
				}
				if e.Feasible != (e.MemoryBytes <= cfg.GLBBytes) {
					t.Fatalf("%s on %s: feasibility flag inconsistent", id, l)
				}
			}
		}
		// The fallback footprint never exceeds the whole-operand policies
		// (intra, P1, P2) or P4's: it holds one window, one filter and one
		// output row. (P3/P5 can be smaller on few-filter layers, where
		// their single-channel window beats the fallback's all-channel one.)
		fb := FallbackEstimate(&l, Options{}, cfg)
		for _, id := range []ID{IntraLayer, P1IfmapReuse, P2FilterReuse, P4PartialIfmap} {
			e := Estimate(&l, id, Options{}, cfg)
			if fb.MemoryElems > e.MemoryElems {
				t.Fatalf("fallback footprint %d above %s footprint %d on %s",
					fb.MemoryElems, id, e.MemoryElems, l)
			}
		}
	}
}
