package policy

import (
	"context"

	"sync/atomic"

	"scratchmem/internal/layer"
)

// LayerKey is the canonical shape identity of a layer: every geometric
// field the estimators read, and nothing else — in particular not the
// name. The estimators are pure functions of (shape, options, config), so
// identically-shaped layers (ResNet's repeated basic blocks, MobileNet's
// depthwise stacks) share one key and one cached estimate.
type LayerKey struct {
	Kind                        layer.Type
	IH, IW, CI, FH, FW, F, S, P int
}

// KeyOf extracts the shape key of l.
func KeyOf(l *layer.Layer) LayerKey {
	return LayerKey{Kind: l.Kind, IH: l.IH, IW: l.IW, CI: l.CI,
		FH: l.FH, FW: l.FW, F: l.F, S: l.S, P: l.P}
}

// memoKey identifies one estimator invocation completely: the layer shape,
// the policy, the variant options, the full accelerator configuration and
// the filter-block mode. Two invocations with equal keys return equal
// Results (up to the layer name, which the table strips on store and
// patches back on hit).
type memoKey struct {
	shape LayerKey
	id    ID
	opts  Options
	cfg   Config
	// n is the forced filter-block size (EstimateN), 0 for policies
	// without a block size, or memoAutoN for Estimate's auto-selection.
	n int64
}

// memoAutoN marks Estimate's auto-selected block size in the key; the
// selection is itself a pure function of (shape, options, config), so the
// sentinel is unambiguous.
const memoAutoN = int64(-1)

// memoBuckets sizes the table's fixed bucket array. One planning run
// touches at most a few thousand distinct keys (unique shapes × policy
// variants × ladder rungs), so 1024 buckets keep chains a handful long
// while the zeroed array costs one allocation in NewMemo.
const memoBuckets = 1024

// memoEntry is one stored estimate. Entries are immutable once published
// and chain off their bucket head, so readers need no lock: a bucket probe
// is one atomic pointer load plus a short walk, and the publishing CAS
// gives the reader a happens-before edge to the entry's fields.
type memoEntry struct {
	key  memoKey
	r    Result
	next *memoEntry
}

// memoBlockLen sizes the entry arena's blocks: one mid-size allocation
// amortised over sixteen stores instead of sixteen small ones.
const memoBlockLen = 16

// memoBlock is a chunk of entry storage. Slots are claimed with an atomic
// counter and never freed individually — the table only grows, and the
// whole arena dies with it — so claimed entries stay address-stable for
// the bucket chains.
type memoBlock struct {
	used atomic.Int64
	e    [memoBlockLen]memoEntry
}

// Memo is a concurrency-safe estimate table. One table is shared across a
// whole planning run (core.Planner and the degradation-ladder copies made
// from it), so the dynamic program's (resident, keep) re-probes and every
// repeated layer shape cost one estimation and then a lock-free probe.
//
// A nil *Memo is valid and computes directly, so call sites never need a
// nil check; that nil path is also the sequential reference the golden
// equivalence tests compare against.
type Memo struct {
	hits, misses, count atomic.Int64
	// companion holds one opaque caller-attached cache (see Companion).
	companion atomic.Value
	// maxEntries caps the table (0 = unbounded). Past the cap new entries
	// are computed but not stored, so a long-lived table (the server's)
	// stays bounded while still answering correctly.
	maxEntries int64
	// buckets is allocated on first store: a planner that never probes the
	// estimate table (the heterogeneous path caches whole sweeps in its
	// companion instead) pays nothing for it.
	buckets atomic.Pointer[[memoBuckets]atomic.Pointer[memoEntry]]
	blk     atomic.Pointer[memoBlock]
}

// alloc claims one entry slot from the current block, starting a new block
// when the current one is exhausted. A slot claimed by a store that then
// loses a duplicate race is abandoned — blocks are bulk storage, not a
// free list.
func (m *Memo) alloc() *memoEntry {
	for {
		b := m.blk.Load()
		if b != nil {
			if i := b.used.Add(1) - 1; i < memoBlockLen {
				return &b.e[i]
			}
		}
		m.blk.CompareAndSwap(b, &memoBlock{})
	}
}

// Companion returns the opaque cache attached to this table, installing
// create()'s result on first use (first installer wins under a race). The
// core planner uses it to hang its per-layer winner cache off the same
// lifetime as the estimate table, so "share one memo" also means "share
// every cached planning decision" without this package importing core.
func (m *Memo) Companion(create func() any) any {
	if c := m.companion.Load(); c != nil {
		return c
	}
	c := create()
	if m.companion.CompareAndSwap(nil, c) {
		return c
	}
	return m.companion.Load()
}

// NewMemo returns an unbounded table, sized for one planning run.
func NewMemo() *Memo { return &Memo{} }

// NewMemoCap returns a table bounded to roughly maxEntries entries (the
// bound is advisory: concurrent stores may overshoot by a few); 0 or
// negative means unbounded. Past the bound, lookups still hit existing
// entries and misses compute without storing.
func NewMemoCap(maxEntries int) *Memo {
	m := &Memo{}
	if maxEntries > 0 {
		m.maxEntries = int64(maxEntries)
	}
	return m
}

// MemoStats is a point-in-time snapshot of the table's counters.
type MemoStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

// CountHit folds one companion-cache hit into the memo's counters, so the
// tiered caches attached via Companion (the planner's per-layer winner and
// sweep-row tables) and the estimate table itself report one efficacy
// figure. Nil-safe.
func (m *Memo) CountHit() {
	if m != nil {
		m.hits.Add(1)
	}
}

// CountMiss is CountHit for companion-cache misses. Nil-safe.
func (m *Memo) CountMiss() {
	if m != nil {
		m.misses.Add(1)
	}
}

// Stats snapshots the hit/miss counters and entry count. Nil-safe.
func (m *Memo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	return MemoStats{
		Hits:    m.hits.Load(),
		Misses:  m.misses.Load(),
		Entries: int(m.count.Load()),
	}
}

// Estimate is the memoized form of Estimate, with EstimateFast's sweep
// contract: feasible results are byte-identical to Estimate's, infeasible
// ones carry the identifying and capacity fields only. Nil receivers
// compute directly (the full, unmemoized Estimate).
func (m *Memo) Estimate(l *layer.Layer, id ID, o Options, cfg Config) Result {
	var r Result
	m.EstimateInto(&r, l, id, o, cfg)
	return r
}

// EstimateInto is Estimate writing its result in place, sparing the
// homogeneous sweep's hot path a Result copy per probe.
func (m *Memo) EstimateInto(e *Result, l *layer.Layer, id ID, o Options, cfg Config) {
	if m == nil {
		*e = Estimate(l, id, o, cfg)
		return
	}
	n := int64(0)
	if id == P4PartialIfmap || id == P5PartialPerChannel {
		n = memoAutoN
	}
	k := memoKey{shape: KeyOf(l), id: id, opts: o, cfg: cfg, n: n}
	h := k.hash()
	if r := m.lookup(&k, h); r != nil {
		*e = *r
		e.Layer = l.Name
		return
	}
	sh := NewShape(l, cfg.IncludePadding)
	sh.EstimateFastInto(e, id, o, cfg)
	if !e.Feasible {
		// e may carry a previous probe's traffic fields (the Into sweep
		// contract); scrub them so the stored entry honours Estimate's
		// zero-fields guarantee for infeasible results.
		e.IfmapLoads, e.FilterLoads = 0, 0
		e.AccessIfmap, e.AccessFilter, e.AccessOfmap = 0, 0, 0
		e.AccessElems, e.AccessBytes = 0, 0
		e.ComputeCycles, e.TransferCycles, e.LatencyCycles = 0, 0, 0
	}
	m.store(&k, h, e)
}

// EstimateN is the memoized form of EstimateN. The key uses the same
// block-size normalisation as the estimator, so forcing n on a policy that
// ignores it shares the entry with the unforced call.
func (m *Memo) EstimateN(l *layer.Layer, id ID, o Options, cfg Config, n int64) Result {
	if m == nil {
		return EstimateN(l, id, o, cfg, n)
	}
	switch {
	case id != P4PartialIfmap && id != P5PartialPerChannel:
		n = 0
	case l.Kind == layer.DepthwiseConv || n < 1:
		n = 1
	}
	k := memoKey{shape: KeyOf(l), id: id, opts: o, cfg: cfg, n: n}
	h := k.hash()
	if e := m.lookup(&k, h); e != nil {
		r := *e
		r.Layer = l.Name
		return r
	}
	r := EstimateN(l, id, o, cfg, n)
	m.store(&k, h, &r)
	return r
}

// Fallback is the memoized form of FallbackEstimate.
func (m *Memo) Fallback(l *layer.Layer, o Options, cfg Config) Result {
	if m == nil {
		return FallbackEstimate(l, o, cfg)
	}
	k := memoKey{shape: KeyOf(l), id: FallbackTiled, opts: o, cfg: cfg}
	h := k.hash()
	if e := m.lookup(&k, h); e != nil {
		r := *e
		r.Layer = l.Name
		return r
	}
	r := FallbackEstimate(l, o, cfg)
	m.store(&k, h, &r)
	return r
}

// lookup returns the stored result for k, or nil. The pointee is shared
// and immutable; callers copy it (patching the layer name on the copy).
func (m *Memo) lookup(k *memoKey, h uint64) *Result {
	t := m.buckets.Load()
	if t == nil {
		m.misses.Add(1)
		return nil
	}
	b := &t[h&(memoBuckets-1)]
	for e := b.Load(); e != nil; e = e.next {
		if e.key == *k {
			m.hits.Add(1)
			return &e.r
		}
	}
	m.misses.Add(1)
	return nil
}

func (m *Memo) store(k *memoKey, h uint64, r *Result) {
	if m.maxEntries > 0 && m.count.Load() >= m.maxEntries {
		return
	}
	t := m.buckets.Load()
	if t == nil {
		nt := new([memoBuckets]atomic.Pointer[memoEntry])
		if !m.buckets.CompareAndSwap(nil, nt) {
			t = m.buckets.Load()
		} else {
			t = nt
		}
	}
	e := m.alloc()
	e.key, e.r = *k, *r
	e.r.Layer = "" // the key is name-free; hits patch the caller's name back
	b := &t[h&(memoBuckets-1)]
	for {
		head := b.Load()
		// A racer may have published the key since our lookup; equal keys
		// carry equal values, so skip the duplicate to keep chains and the
		// entry count tight.
		for dup := head; dup != nil; dup = dup.next {
			if dup.key == *k {
				return
			}
		}
		e.next = head
		if b.CompareAndSwap(head, e) {
			m.count.Add(1)
			return
		}
	}
}

// hash mixes every key field FNV-1a style; shard selection and the shard
// map consume it, so distribution matters more than avalanche quality.
func (k *memoKey) hash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h = (h ^ uint64(k.shape.Kind)) * prime
	h = (h ^ uint64(k.shape.IH)) * prime
	h = (h ^ uint64(k.shape.IW)) * prime
	h = (h ^ uint64(k.shape.CI)) * prime
	h = (h ^ uint64(k.shape.FH)) * prime
	h = (h ^ uint64(k.shape.FW)) * prime
	h = (h ^ uint64(k.shape.F)) * prime
	h = (h ^ uint64(k.shape.S)) * prime
	h = (h ^ uint64(k.shape.P)) * prime
	h = (h ^ uint64(k.id)) * prime
	var ob uint64
	if k.opts.Prefetch {
		ob |= 1
	}
	if k.opts.ResidentIfmap {
		ob |= 2
	}
	if k.opts.KeepOfmap {
		ob |= 4
	}
	if k.cfg.IncludePadding {
		ob |= 8
	}
	h = (h ^ ob) * prime
	h = (h ^ uint64(k.cfg.GLBBytes)) * prime
	h = (h ^ uint64(k.cfg.DataWidthBits)) * prime
	h = (h ^ uint64(k.cfg.OpsPerCycle)) * prime
	h = (h ^ uint64(k.cfg.DRAMBytesPerCycle)) * prime
	h = (h ^ uint64(k.cfg.Batch)) * prime
	h = (h ^ uint64(k.n)) * prime
	return h
}

// memoCtxKey carries a *Memo through a context (see WithMemo).
type memoCtxKey struct{}

// WithMemo returns a context carrying m. The serving path uses this to
// scope one long-lived, capped table to a server instance: the façade's
// planner picks it up via MemoFrom, so the server's /metrics can report
// hit rates without any package-global state.
func WithMemo(ctx context.Context, m *Memo) context.Context {
	return context.WithValue(ctx, memoCtxKey{}, m)
}

// MemoFrom returns the Memo carried by ctx, or nil.
func MemoFrom(ctx context.Context) *Memo {
	m, _ := ctx.Value(memoCtxKey{}).(*Memo)
	return m
}
