package policy

import (
	"testing"

	"scratchmem/internal/layer"
)

// TestBatchAmortisesFilterResidentPolicies: with a batch of B inputs,
// intra/P1/P4 load weights once while P2/P3/P5 re-stream them per input;
// ifmap and ofmap traffic always scales with B.
func TestBatchAmortisesFilterResidentPolicies(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 14, 14, 128, 3, 3, 256, 1, 1)
	base := Default(1024)
	batched := Default(1024)
	batched.Batch = 8

	for _, id := range IDs() {
		e1 := Estimate(&l, id, Options{}, base)
		e8 := Estimate(&l, id, Options{}, batched)
		if e8.AccessIfmap != 8*e1.AccessIfmap {
			t.Errorf("%s: batched ifmap %d != 8x%d", id, e8.AccessIfmap, e1.AccessIfmap)
		}
		if e8.AccessOfmap != 8*e1.AccessOfmap {
			t.Errorf("%s: batched ofmap %d != 8x%d", id, e8.AccessOfmap, e1.AccessOfmap)
		}
		switch id {
		case IntraLayer, P1IfmapReuse, P4PartialIfmap:
			if e8.AccessFilter != e1.AccessFilter {
				t.Errorf("%s: filter traffic not amortised: %d vs %d", id, e8.AccessFilter, e1.AccessFilter)
			}
		default:
			if e8.AccessFilter != 8*e1.AccessFilter {
				t.Errorf("%s: filter traffic %d != 8x%d", id, e8.AccessFilter, e1.AccessFilter)
			}
		}
		// Memory footprint is per-input and unchanged.
		if e8.MemoryElems != e1.MemoryElems {
			t.Errorf("%s: batching changed memory %d -> %d", id, e1.MemoryElems, e8.MemoryElems)
		}
		if e8.ComputeCycles != 8*e1.ComputeCycles {
			t.Errorf("%s: batched compute %d != 8x%d", id, e8.ComputeCycles, e1.ComputeCycles)
		}
	}
}

// TestBatchPerInputTrafficImproves: for a filter-heavy layer, the best
// per-input traffic strictly improves with batch size (the Escher-style
// batching effect the paper cites).
func TestBatchPerInputTrafficImproves(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 7, 7, 512, 3, 3, 512, 1, 1)
	var prev float64
	for i, b := range []int{1, 2, 4, 8} {
		cfg := Default(1024)
		cfg.Batch = b
		best := int64(0)
		for _, id := range IDs() {
			e := Estimate(&l, id, Options{}, cfg)
			if !e.Feasible {
				continue
			}
			if best == 0 || e.AccessElems < best {
				best = e.AccessElems
			}
		}
		perInput := float64(best) / float64(b)
		if i > 0 && perInput >= prev {
			t.Errorf("batch %d: per-input traffic %.0f did not improve on %.0f", b, perInput, prev)
		}
		prev = perInput
	}
}

// TestBatchFallback: in the filter-outer orientation the fallback keeps
// each filter resident across the whole batch, so its weight traffic does
// not scale with the batch; row-outer weight traffic does.
func TestBatchFallback(t *testing.T) {
	cfg1 := Default(1024)
	cfg8 := Default(1024)
	cfg8.Batch = 8

	// Filter-outer shape (tall filters, tiny ifmap): weights amortised.
	fo := layer.MustNew("fo", layer.Conv, 5, 5, 2, 5, 5, 16, 1, 2)
	f1 := FallbackEstimate(&fo, Options{}, cfg1)
	f8 := FallbackEstimate(&fo, Options{}, cfg8)
	if f1.IfmapLoads <= 1 {
		t.Fatalf("expected filter-outer at batch 1, got ifmap loads %d", f1.IfmapLoads)
	}
	if f8.AccessFilter != f1.AccessFilter {
		t.Errorf("filter-outer weights not amortised: %d vs %d", f8.AccessFilter, f1.AccessFilter)
	}
	if f8.AccessIfmap != 8*f1.AccessIfmap {
		t.Errorf("filter-outer ifmap traffic %d != 8x%d", f8.AccessIfmap, f1.AccessIfmap)
	}

	// Row-outer shape (tiny filters): weight traffic scales with the batch.
	ro := layer.MustNew("ro", layer.Conv, 24, 24, 2, 3, 3, 3, 1, 1)
	r1 := FallbackEstimate(&ro, Options{}, cfg1)
	r8 := FallbackEstimate(&ro, Options{}, cfg8)
	if r1.FilterLoads <= 1 {
		t.Fatalf("expected row-outer at batch 1, got filter loads %d", r1.FilterLoads)
	}
	if r8.AccessFilter != 8*r1.AccessFilter {
		t.Errorf("row-outer weights %d != 8x%d", r8.AccessFilter, r1.AccessFilter)
	}
}

func TestBatchValidate(t *testing.T) {
	cfg := Default(64)
	cfg.Batch = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative batch accepted")
	}
	cfg.Batch = 0
	if cfg.BatchSize() != 1 {
		t.Error("zero batch should mean 1")
	}
	cfg.Batch = 4
	if cfg.BatchSize() != 4 {
		t.Error("BatchSize broken")
	}
}
