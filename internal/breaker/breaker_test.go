package breaker

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a settable Now seam.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := New(threshold, cooldown)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.Now = clk.now
	return b, clk
}

func TestBreakerOpensAtThresholdAndCoolsDown(t *testing.T) {
	b, clk := newTestBreaker(3, time.Second)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("breaker open after %d failures, threshold is 3", i)
		}
		b.Failure()
	}
	if b.Allow() {
		t.Fatal("breaker still closed at threshold")
	}
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("probe admitted before the cooldown elapsed")
	}
	clk.advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("no probe admitted after the cooldown")
	}
	// Probe success closes the breaker fully.
	b.Success()
	if !b.Allow() || !b.Allow() {
		t.Fatal("breaker not closed after a successful probe")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no probe admitted")
	}
	b.Failure() // the probe itself failed
	if b.Allow() {
		t.Fatal("breaker closed after a failed probe")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no second probe after a fresh cooldown")
	}
}

func TestBreakerNilAlwaysAllows(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker denied")
	}
	b.Failure()
	b.Success()
	if New(-1, 0) != nil {
		t.Fatal("negative threshold should disable the breaker")
	}
}

// TestBreakerHalfOpenAdmitsExactlyOneProbe is the self-healing contract the
// cluster peer backend leans on: when a breaker's cooldown lapses under
// concurrent load, exactly one caller is admitted to probe the dependency
// and every other caller keeps failing fast — a thundering herd against a
// barely-recovering peer would defeat the point of breaking the circuit.
func TestBreakerHalfOpenAdmitsExactlyOneProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker not open")
	}
	clk.advance(time.Second)

	const callers = 64
	var admitted atomic.Int64
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			if b.Allow() {
				admitted.Add(1)
			}
		}()
	}
	start.Done()
	done.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("%d concurrent callers admitted in half-open, want exactly 1", got)
	}

	// While the probe is in flight, later arrivals still fail fast even
	// after more wall time passes.
	clk.advance(time.Hour)
	if b.Allow() {
		t.Fatal("second probe admitted while the first is in flight")
	}
	// The losing callers' fast-fails must not have disturbed the state:
	// the one probe's success closes the circuit for everyone.
	b.Success()
	var reopened atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !b.Allow() {
				reopened.Add(1)
			}
		}()
	}
	wg.Wait()
	if reopened.Load() != 0 {
		t.Fatalf("%d callers denied after the probe succeeded", reopened.Load())
	}
}
