// Package breaker is a consecutive-failure circuit breaker shared by the
// HTTP server (per compute route, counting handler panics) and the cluster
// peer backend (per ring member, counting failed cache fills). A failing
// dependency burns a worker slot or a network round-trip per attempt, so
// after threshold consecutive failures the breaker opens: callers fast-fail
// without touching the dependency. After cooldown one half-open probe is
// admitted — its success closes the breaker, another failure reopens it for
// a fresh cooldown.
package breaker

import (
	"sync"
	"time"
)

// Defaults applied by New for zero-valued parameters.
const (
	// DefaultThreshold is how many consecutive failures open the breaker.
	DefaultThreshold = 3
	// DefaultCooldown is how long an open breaker fast-fails before
	// admitting a half-open probe.
	DefaultCooldown = 5 * time.Second
)

// Breaker is one circuit. A nil *Breaker always allows, so callers never
// branch on "breakers disabled".
type Breaker struct {
	threshold int
	cooldown  time.Duration
	// Now is a test seam for the cooldown clock; time.Now in production.
	Now func() time.Time

	mu          sync.Mutex
	state       state
	consecutive int       // failures since the last success
	openedAt    time.Time // when state last became open
}

type state int

const (
	closed state = iota
	open
	halfOpen
)

// New returns a breaker, or nil (always-allow) when threshold < 0.
// threshold == 0 selects DefaultThreshold, cooldown <= 0 DefaultCooldown.
func New(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 0 {
		return nil
	}
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultCooldown
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, Now: time.Now}
}

// Allow reports whether a request may proceed. Open, it fast-fails until
// the cooldown elapses, then admits exactly one probe (half-open); further
// requests keep failing fast while the probe is in flight.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case open:
		if b.Now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = halfOpen
		return true
	case halfOpen:
		return false
	default:
		return true
	}
}

// Success records a request that completed, closing the breaker and
// resetting the consecutive-failure count.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.state = closed
	b.consecutive = 0
	b.mu.Unlock()
}

// Failure records one failed attempt. The breaker opens when the count
// reaches the threshold, or immediately when a half-open probe fails.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.consecutive++
	if b.state == halfOpen || b.consecutive >= b.threshold {
		b.state = open
		b.openedAt = b.Now()
	}
	b.mu.Unlock()
}
