package obs

import (
	"context"
	"strings"
	"testing"
)

func TestParseTraceContext(t *testing.T) {
	valid := "0123456789abcdef-fedcba9876543210"
	tc := ParseTraceContext(valid)
	if !tc.Valid() || tc.TraceID != "0123456789abcdef" || tc.ParentID != "fedcba9876543210" {
		t.Fatalf("ParseTraceContext(%q) = %+v", valid, tc)
	}
	if tc.String() != valid {
		t.Errorf("round trip: String() = %q, want %q", tc.String(), valid)
	}

	// Malformed headers degrade to the zero value — the propagation
	// contract is best-effort, never an error.
	for _, bad := range []string{
		"",
		"0123456789abcdef",                    // no parent half
		"0123456789abcdef-fedcba987654321",    // short parent
		"0123456789abcdef_fedcba9876543210",   // wrong separator
		"0123456789ABCDEF-fedcba9876543210",   // uppercase hex
		"0123456789abcdeg-fedcba9876543210",   // non-hex digit
		"0123456789abcdef-fedcba9876543210-x", // trailing junk
	} {
		if tc := ParseTraceContext(bad); tc.Valid() || tc != (TraceContext{}) {
			t.Errorf("ParseTraceContext(%q) = %+v, want zero value", bad, tc)
		}
	}
	if (TraceContext{}).String() != "" {
		t.Error("zero TraceContext must render as the empty string")
	}
}

func TestSpanContextNilSafe(t *testing.T) {
	var s *Span
	if tc := s.Context(); tc.Valid() {
		t.Errorf("nil span Context() = %+v, want invalid", tc)
	}
}

// TestStartSpanAdoptsRemoteParent: with no local parent, a span joins the
// remote caller's trace and parents under the remote span.
func TestStartSpanAdoptsRemoteParent(t *testing.T) {
	tr := NewTracer(8)
	remote := TraceContext{TraceID: "0123456789abcdef", ParentID: "fedcba9876543210"}
	ctx := WithRemoteParent(WithTracer(context.Background(), tr), remote)
	_, s := StartSpan(ctx, "request")
	if s.TraceID != remote.TraceID || s.ParentID != remote.ParentID {
		t.Fatalf("span = trace %s parent %s, want to adopt %+v", s.TraceID, s.ParentID, remote)
	}
	s.End()
}

// TestLocalParentBeatsRemote: once a local span is active, children nest
// under it — the remote parent only seeds the root.
func TestLocalParentBeatsRemote(t *testing.T) {
	tr := NewTracer(8)
	remote := TraceContext{TraceID: "0123456789abcdef", ParentID: "fedcba9876543210"}
	ctx := WithRemoteParent(WithTracer(context.Background(), tr), remote)
	ctx, root := StartSpan(ctx, "request")
	_, child := StartSpan(ctx, "peer_fill")
	if child.TraceID != remote.TraceID {
		t.Errorf("child trace = %s, want the adopted %s", child.TraceID, remote.TraceID)
	}
	if child.ParentID != root.SpanID {
		t.Errorf("child parent = %s, want the local root %s, not the remote %s",
			child.ParentID, root.SpanID, remote.ParentID)
	}
	child.End()
	root.End()
}

// TestWithRemoteParentIgnoresInvalid: an invalid context is a no-op, so a
// dropped or mangled header degrades to a fresh per-process trace.
func TestWithRemoteParentIgnoresInvalid(t *testing.T) {
	tr := NewTracer(8)
	ctx := WithRemoteParent(WithTracer(context.Background(), tr), TraceContext{TraceID: "xyz"})
	if got := RemoteParentFrom(ctx); got.Valid() {
		t.Fatalf("invalid remote parent stored: %+v", got)
	}
	_, s := StartSpan(ctx, "request")
	if s.ParentID != "" {
		t.Errorf("span parented under an invalid remote context: %+v", s)
	}
	s.End()
}

// TestTraceContextFromPrefersActiveSpan: an active local span is the
// context to propagate; the inherited remote parent only applies when no
// span has started yet (e.g. the async replication queue).
func TestTraceContextFromPrefersActiveSpan(t *testing.T) {
	tr := NewTracer(8)
	remote := TraceContext{TraceID: "0123456789abcdef", ParentID: "fedcba9876543210"}
	ctx := WithRemoteParent(WithTracer(context.Background(), tr), remote)
	if got := TraceContextFrom(ctx); got != remote {
		t.Fatalf("with no active span TraceContextFrom = %+v, want the remote %+v", got, remote)
	}
	ctx, s := StartSpan(ctx, "request")
	got := TraceContextFrom(ctx)
	if got.TraceID != remote.TraceID || got.ParentID != s.SpanID {
		t.Fatalf("with an active span TraceContextFrom = %+v, want trace %s parent %s",
			got, remote.TraceID, s.SpanID)
	}
	if !strings.Contains(got.String(), "-") {
		t.Errorf("String() = %q is not header-shaped", got.String())
	}
	s.End()
}

// TestSpanIDsDistinctAcrossTracers: two tracers model two fleet members;
// their span IDs must not collide, or merged cross-node traces would wire
// children to the wrong parents.
func TestSpanIDsDistinctAcrossTracers(t *testing.T) {
	a, b := NewTracer(0), NewTracer(0)
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		for _, tr := range []*Tracer{a, b} {
			id := tr.newSpanID()
			if seen[id] {
				t.Fatalf("span ID %s minted twice across tracers", id)
			}
			seen[id] = true
		}
	}
}
