package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"scratchmem/internal/engine"
	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/policy"
	"scratchmem/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// bestFeasible picks the minimum-access feasible (policy, prefetch) for l,
// the same decision the planner's requested-objective path makes.
func bestFeasible(t *testing.T, l *layer.Layer, cfg policy.Config) policy.Result {
	t.Helper()
	var best policy.Result
	for _, id := range policy.IDs() {
		for _, pf := range []bool{false, true} {
			r := policy.Estimate(l, id, policy.Options{Prefetch: pf}, cfg)
			if !r.Feasible {
				continue
			}
			if !best.Feasible || r.AccessElems < best.AccessElems {
				best = r
			}
		}
	}
	if !best.Feasible {
		t.Fatalf("no feasible policy for %s", l.Name)
	}
	return best
}

// dryRunLog executes l's chosen schedule without arithmetic and returns the
// event log.
func dryRunLog(t *testing.T, l *layer.Layer, est *policy.Result, cfg policy.Config) *trace.Log {
	t.Helper()
	var log trace.Log
	if _, err := engine.DryRunCtx(context.Background(), l, est, cfg, &log); err != nil {
		t.Fatalf("DryRun(%s): %v", l.Name, err)
	}
	if log.Len() == 0 {
		t.Fatalf("DryRun(%s) emitted no events", l.Name)
	}
	return &log
}

// checkChromeDoc parses raw as a Chrome trace-event document and validates
// the schema every event must satisfy: known phase, the plan PID,
// non-negative timestamps and durations.
func checkChromeDoc(t *testing.T, raw []byte) ChromeDoc {
	t.Helper()
	var doc ChromeDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid trace-event JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "M" && ev.Ph != "X" && ev.Ph != "i" {
			t.Errorf("event %d: unknown phase %q", i, ev.Ph)
		}
		if ev.PID != chromePID {
			t.Errorf("event %d: pid = %d, want %d", i, ev.PID, chromePID)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %d: negative ts/dur (%v/%v)", i, ev.TS, ev.Dur)
		}
		if ev.Name == "" {
			t.Errorf("event %d: empty name", i)
		}
		if ev.Ph == "X" && ev.TID != tidDMA && ev.TID != tidCompute {
			t.Errorf("event %d: complete event on unknown track %d", i, ev.TID)
		}
	}
	return doc
}

// TestChromeTraceGolden pins the rendered document byte-for-byte on a small
// TinyCNN layer, so any drift in field order, track naming or the timeline
// math shows up as a readable diff.
func TestChromeTraceGolden(t *testing.T) {
	net, err := model.Builtin("TinyCNN")
	if err != nil {
		t.Fatal(err)
	}
	l := &net.Layers[0]
	cfg := policy.Default(32)
	est := bestFeasible(t, l, cfg)
	log := dryRunLog(t, l, &est, cfg)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, log, cfg); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "tinycnn_conv1_chrome.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("golden mismatch for %s (run with -update after intentional changes)\ngot %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
	checkChromeDoc(t, buf.Bytes())
}

// TestChromeTraceAlexNetEquality renders an AlexNet layer and asserts the
// timeline is analytically faithful: the per-kind duration sums equal the
// trace.Log totals converted at the configured DMA and MAC rates, and those
// totals in turn equal the planner's analytical estimate. Equality is exact:
// at 8-bit width bytes == elems, and the default rates (16 B/cycle, 256
// MACs/cycle) are powers of two, so every division is a dyadic float.
func TestChromeTraceAlexNetEquality(t *testing.T) {
	net, err := model.Builtin("AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	l := &net.Layers[0] // conv1: 227x227x3, the paper's running example
	cfg := policy.Default(256)
	est := bestFeasible(t, l, cfg)
	log := dryRunLog(t, l, &est, cfg)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, log, cfg); err != nil {
		t.Fatal(err)
	}
	doc := checkChromeDoc(t, buf.Bytes())

	durs := map[string]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			durs[ev.Name] += ev.Dur
		}
	}
	totals := log.Totals()
	bw := float64(cfg.DRAMBytesPerCycle)
	for _, k := range []trace.Kind{trace.LoadIfmap, trace.LoadFilter, trace.StoreOfmap} {
		want := float64(cfg.Bytes(totals[k])) / bw
		if got := durs[k.String()]; got != want {
			t.Errorf("%s duration sum = %v cycles, want %v", k, got, want)
		}
	}
	wantCompute := float64(totals[trace.Compute]) / float64(cfg.MACsPerCycle())
	if got := durs["compute"]; got != wantCompute {
		t.Errorf("compute duration sum = %v cycles, want %v", got, wantCompute)
	}

	// The executed schedule matches the analytical estimate, so the timeline
	// is a faithful rendering of what the planner promised.
	if totals[trace.LoadIfmap] != est.AccessIfmap {
		t.Errorf("ifmap trace total %d != estimate %d", totals[trace.LoadIfmap], est.AccessIfmap)
	}
	if totals[trace.LoadFilter] != est.AccessFilter {
		t.Errorf("filter trace total %d != estimate %d", totals[trace.LoadFilter], est.AccessFilter)
	}
	if totals[trace.StoreOfmap] != est.AccessOfmap {
		t.Errorf("ofmap trace total %d != estimate %d", totals[trace.StoreOfmap], est.AccessOfmap)
	}
	if totals[trace.Compute] != l.MACs() {
		t.Errorf("compute trace total %d != layer MACs %d", totals[trace.Compute], l.MACs())
	}
}

// TestChromeTraceLayerSync: tracks advance independently within a layer but
// re-synchronise at layer boundaries — no event of layer N+1 starts before
// both clocks of layer N have drained.
func TestChromeTraceLayerSync(t *testing.T) {
	var log trace.Log
	log.Add("conv1", 0, trace.LoadIfmap, 160) // 10 cycles DMA
	log.Add("conv1", 1, trace.Compute, 256)   // 1 cycle compute
	log.Add("conv2", 0, trace.LoadIfmap, 16)  // must start at cycle 10, not 1
	log.Add("conv2", 1, trace.Compute, 512)

	cfg := policy.Default(64)
	events := ChromeTraceLog(&log, cfg)
	var conv1End float64
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		switch a := ev.Args.(type) {
		case dmaArgs:
			if a.Layer == "conv1" {
				conv1End = max(conv1End, ev.TS+ev.Dur)
			}
		case computeArgs:
			if a.Layer == "conv1" {
				conv1End = max(conv1End, ev.TS+ev.Dur)
			}
		}
	}
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		layerName := ""
		switch a := ev.Args.(type) {
		case dmaArgs:
			layerName = a.Layer
		case computeArgs:
			layerName = a.Layer
		}
		if layerName == "conv2" && ev.TS < conv1End {
			t.Errorf("conv2 %s starts at %v, before conv1 drained at %v", ev.Name, ev.TS, conv1End)
		}
	}
	// Within conv1 both tracks start at 0 — that overlap is the point.
	if events[3].TS != 0 || events[4].TS != 0 {
		t.Errorf("conv1 tracks should both start at 0, got ts %v and %v", events[3].TS, events[4].TS)
	}
}

// TestChromeSpans: server spans render one row per trace with attrs
// stringified and span events as instants.
func TestChromeSpans(t *testing.T) {
	tr := NewTracer(16)
	ctx := WithTracer(context.Background(), tr)
	ctx1, root := StartSpan(ctx, "request")
	root.SetAttr("route", "/v1/plan")
	root.SetAttr("status", 200)
	_, child := StartSpan(ctx1, "plan")
	child.Event("layer", Attr{Key: "name", Value: "conv1"})
	child.End()
	root.End()
	_, other := StartSpan(ctx, "request") // separate trace, own row
	other.End()

	var buf bytes.Buffer
	if err := WriteChromeSpans(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var doc ChromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid spans JSON: %v", err)
	}
	rows := map[int]bool{}
	var complete, instants, threads int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			rows[ev.TID] = true
			args, ok := ev.Args.(map[string]any)
			if !ok {
				t.Fatalf("span args decoded as %T", ev.Args)
			}
			if id, _ := args["trace_id"].(string); id == "" {
				t.Error("span event missing trace_id arg")
			}
			if ev.Name == "request" && ev.TID == 1 && args["route"] != "/v1/plan" {
				t.Errorf("root span args = %v", args)
			}
		case "i":
			instants++
		case "M":
			threads++
		default:
			t.Errorf("unknown phase %q", ev.Ph)
		}
	}
	if complete != 3 {
		t.Errorf("complete events = %d, want 3", complete)
	}
	if instants != 1 {
		t.Errorf("instant events = %d, want 1", instants)
	}
	if len(rows) != 2 {
		t.Errorf("trace rows = %d, want 2 (two traces)", len(rows))
	}
	// Empty input still renders a valid document.
	buf.Reset()
	if err := WriteChromeSpans(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty spans doc invalid: %v", err)
	}
}
