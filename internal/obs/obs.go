// Package obs is the observability layer of the serving stack: lightweight
// request tracing (spans propagated through context.Context), structured
// logging helpers (log/slog), and a Chrome trace-event renderer that makes
// a plan's DMA/compute overlap visible on a Perfetto timeline.
//
// The package is a near-leaf: it imports only the leaf packages
// internal/progress, internal/trace and internal/policy, so every layer of
// the stack — the HTTP server, the plan cache, the planner facade, the
// simulators — can create spans and log records without import cycles.
//
// Tracing is strictly opt-in and nil-safe. A context without a Tracer makes
// StartSpan return a nil *Span, and every Span method is a no-op on a nil
// receiver, so instrumented pipeline code pays one context lookup and zero
// allocations when nobody is observing (the BenchmarkPlanModel_Ctx
// guarantee). A Tracer collects finished spans into a bounded ring and
// fans them out to OnFinish hooks — the server derives its phase-latency
// histograms from exactly that hook.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"scratchmem/internal/progress"
)

// Attr is one key/value annotation on a span or span event. Values are
// kept as any so call sites can attach counters without formatting; the
// exporters render them with encoding/json.
type Attr struct {
	Key   string
	Value any
}

// SpanEvent is one timestamped point annotation inside a span — the
// pipeline's progress events re-emitted into the trace.
type SpanEvent struct {
	Time  time.Time
	Name  string
	Attrs []Attr
}

// Span is one timed operation of a trace. Spans form a tree via ParentID;
// all spans of one request share a TraceID. Fields are written by exactly
// one goroutine between StartSpan and End and must only be read after End
// (the Tracer hands out finished spans only).
type Span struct {
	TraceID  string
	SpanID   string
	ParentID string
	Name     string
	Start    time.Time
	EndTime  time.Time
	Attrs    []Attr
	Events   []SpanEvent

	tracer *Tracer
}

// SetAttr annotates the span; a nil receiver is a no-op.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// Attr returns the last value set for key, or nil. Nil-safe.
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	for i := len(s.Attrs) - 1; i >= 0; i-- {
		if s.Attrs[i].Key == key {
			return s.Attrs[i].Value
		}
	}
	return nil
}

// Event appends a timestamped point annotation; a nil receiver is a no-op.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, SpanEvent{Time: time.Now(), Name: name, Attrs: attrs})
}

// End stamps the span's end time and hands it to its tracer. Ending a nil
// span is a no-op; ending twice records only the first end.
func (s *Span) End() {
	if s == nil || !s.EndTime.IsZero() {
		return
	}
	s.EndTime = time.Now()
	s.tracer.finish(s)
}

// Duration is the span's wall time (zero until End). Nil-safe.
func (s *Span) Duration() time.Duration {
	if s == nil || s.EndTime.IsZero() {
		return 0
	}
	return s.EndTime.Sub(s.Start)
}

// Trace returns the span's trace ID, or "" for a nil span, so log call
// sites can attach the ID unconditionally.
func (s *Span) Trace() string {
	if s == nil {
		return ""
	}
	return s.TraceID
}

// Tracer mints IDs and collects finished spans. Construct with NewTracer;
// the zero value is not usable. Tracer is safe for concurrent use.
type Tracer struct {
	mu       sync.Mutex
	keep     int
	spans    []*Span // ring of the last keep finished spans
	next     int     // ring write position
	onFinish []func(*Span)
	finished atomic.Int64

	seq  atomic.Uint64
	rnd  uint64 // process entropy mixed into trace IDs
	rseq atomic.Uint64
}

// NewTracer returns a tracer retaining the last keep finished spans
// (keep <= 0 retains none; OnFinish hooks still fire, so a keep-nothing
// tracer is the right shape for metrics-only derivation).
func NewTracer(keep int) *Tracer {
	if keep < 0 {
		keep = 0
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.LittleEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	return &Tracer{keep: keep, rnd: binary.LittleEndian.Uint64(b[:])}
}

// OnFinish registers fn to run synchronously whenever a span ends. Hooks
// must be fast and concurrency-safe; they run on the ending goroutine.
func (t *Tracer) OnFinish(fn func(*Span)) {
	t.mu.Lock()
	t.onFinish = append(t.onFinish, fn)
	t.mu.Unlock()
}

// Spans snapshots the retained finished spans, oldest first.
func (t *Tracer) Spans() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.spans))
	for i := 0; i < len(t.spans); i++ {
		if s := t.spans[(t.next+i)%len(t.spans)]; s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Finished returns how many spans have ended on this tracer (including
// ones the ring no longer retains).
func (t *Tracer) Finished() int64 { return t.finished.Load() }

// newTraceID mints a 16-hex-digit trace ID unique within the process.
func (t *Tracer) newTraceID() string {
	return hex16(t.rnd ^ (t.rseq.Add(1) * 0x9e3779b97f4a7c15))
}

// newSpanID mints a span ID unique within the process and — because the
// tracer's entropy is mixed in — unique across fleet members with
// overwhelming probability, which cross-node trace merging depends on:
// two processes minting bare sequence numbers would both emit span
// "0000000000000001" and corrupt the merged parent/child tree.
func (t *Tracer) newSpanID() string {
	return hex16((t.rnd * 0x9e3779b97f4a7c15) ^ (t.seq.Add(1) * 0xff51afd7ed558ccd))
}

func (t *Tracer) finish(s *Span) {
	t.finished.Add(1)
	t.mu.Lock()
	hooks := t.onFinish
	if t.keep > 0 {
		if len(t.spans) < t.keep {
			t.spans = append(t.spans, s)
			t.next = 0 // ring not yet full; Spans reads in append order
		} else {
			t.spans[t.next] = s
			t.next = (t.next + 1) % t.keep
		}
	}
	t.mu.Unlock()
	for _, fn := range hooks {
		fn(s)
	}
}

const hexDigits = "0123456789abcdef"

func hex16(v uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	loggerKey
	remoteKey
)

// WithTracer arms tracing on the context: subsequent StartSpan calls mint
// real spans.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// SpanFrom returns the context's active span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan opens a span named name as a child of the context's active
// span. Without a local parent, a remote trace context extracted from a
// peer's TraceparentHeader (WithRemoteParent) adopts the originating
// request's trace ID and parents the new span under the remote caller's
// span, so one request crossing N fleet members still forms one trace.
// Without a tracer on the context it returns (ctx, nil) untouched —
// the zero-cost disabled path. The caller must End the returned span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	s := &Span{Name: name, Start: time.Now(), SpanID: t.newSpanID(), tracer: t}
	if parent := SpanFrom(ctx); parent != nil {
		s.TraceID, s.ParentID = parent.TraceID, parent.SpanID
	} else if remote := RemoteParentFrom(ctx); remote.Valid() {
		s.TraceID, s.ParentID = remote.TraceID, remote.ParentID
	} else {
		s.TraceID = t.newTraceID()
	}
	return context.WithValue(ctx, spanKey, s), s
}

// Detach returns a fresh context carrying ctx's observability values —
// tracer, active span, logger — but none of its deadline or cancelation.
// It is for computations that outlive any single caller, like the plan
// cache's single-flight executions: the flight keeps emitting spans into
// the leader's trace while its lifetime is governed by the waiter count,
// not the leader's deadline.
func Detach(ctx context.Context) context.Context {
	out := context.Background()
	if t := TracerFrom(ctx); t != nil {
		out = context.WithValue(out, tracerKey, t)
	}
	if s := SpanFrom(ctx); s != nil {
		out = context.WithValue(out, spanKey, s)
	}
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok {
		out = context.WithValue(out, loggerKey, l)
	}
	if tc, ok := ctx.Value(remoteKey).(TraceContext); ok {
		out = context.WithValue(out, remoteKey, tc)
	}
	return out
}

// SpanProgress re-emits pipeline progress events as span events, then
// forwards them to next. With a nil span it returns next unchanged, so the
// disabled path allocates nothing.
func SpanProgress(s *Span, next progress.Func) progress.Func {
	if s == nil {
		return next
	}
	return func(ev progress.Event) {
		attrs := []Attr{{Key: "name", Value: ev.Name}, {Key: "index", Value: ev.Index}, {Key: "total", Value: ev.Total}}
		if ev.Policy != "" {
			attrs = append(attrs, Attr{Key: "policy", Value: ev.Policy})
		}
		if ev.AccessElems != 0 {
			attrs = append(attrs, Attr{Key: "access_elems", Value: ev.AccessElems})
		}
		if ev.LatencyCycles != 0 {
			attrs = append(attrs, Attr{Key: "latency_cycles", Value: ev.LatencyCycles})
		}
		s.Event(ev.Phase, attrs...)
		next.Emit(ev)
	}
}
