package obs

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"scratchmem/internal/progress"
)

// TestDisabledPath: without a tracer on the context every operation is a
// no-op on nils — the zero-cost contract instrumented pipeline code relies
// on.
func TestDisabledPath(t *testing.T) {
	ctx := context.Background()
	ctx2, span := StartSpan(ctx, "plan")
	if ctx2 != ctx {
		t.Error("StartSpan without tracer should return the context untouched")
	}
	if span != nil {
		t.Fatal("StartSpan without tracer should return a nil span")
	}
	// Every nil-span method must be callable.
	span.SetAttr("k", 1)
	span.Event("e")
	span.End()
	if span.Trace() != "" {
		t.Error("nil span Trace() should be empty")
	}
	if span.Attr("k") != nil {
		t.Error("nil span Attr() should be nil")
	}
	if span.Duration() != 0 {
		t.Error("nil span Duration() should be zero")
	}
	var calls int
	next := progress.Func(func(progress.Event) { calls++ })
	SpanProgress(nil, next)(progress.Event{Phase: "plan"})
	if calls != 1 {
		t.Error("SpanProgress(nil, next) must forward to next")
	}
}

// TestDisabledPathAllocs pins the zero-cost contract quantitatively: with
// no tracer on the context, the full instrumentation sequence a pipeline
// entry point runs (StartSpan, attrs, progress wrap, End) allocates
// nothing.
func TestDisabledPathAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		_, span := StartSpan(ctx, "plan")
		span.SetAttr("model", "x")
		_ = SpanProgress(span, nil)
		span.End()
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %.0f objects per run, want 0", allocs)
	}
}

// TestSpanTree: children inherit the trace ID, spans finish into the ring,
// and OnFinish hooks fire once per End.
func TestSpanTree(t *testing.T) {
	tr := NewTracer(8)
	var finished []string
	tr.OnFinish(func(s *Span) { finished = append(finished, s.Name) })

	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "request")
	if root == nil || root.TraceID == "" || root.ParentID != "" {
		t.Fatalf("root span malformed: %+v", root)
	}
	ctx, child := StartSpan(ctx, "plan")
	if child.TraceID != root.TraceID {
		t.Errorf("child trace %s != root trace %s", child.TraceID, root.TraceID)
	}
	if child.ParentID != root.SpanID {
		t.Errorf("child parent %s != root span %s", child.ParentID, root.SpanID)
	}
	if got := SpanFrom(ctx); got != child {
		t.Error("SpanFrom should return the innermost span")
	}
	child.SetAttr("layers", 3)
	child.SetAttr("layers", 4) // last write wins
	child.End()
	child.End() // idempotent
	root.End()

	if got := tr.Finished(); got != 2 {
		t.Errorf("Finished() = %d, want 2", got)
	}
	if len(finished) != 2 || finished[0] != "plan" || finished[1] != "request" {
		t.Errorf("OnFinish order = %v", finished)
	}
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "plan" || spans[1].Name != "request" {
		t.Fatalf("Spans() = %v", spans)
	}
	if v, ok := spans[0].Attr("layers").(int); !ok || v != 4 {
		t.Errorf("Attr(layers) = %v, want 4 (last write wins)", spans[0].Attr("layers"))
	}
	if spans[0].Duration() <= 0 {
		t.Error("finished span should have positive duration")
	}
}

// TestTracerRing: the ring keeps only the last keep spans, oldest first,
// and keep=0 retains nothing while still counting and firing hooks.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(2)
	ctx := WithTracer(context.Background(), tr)
	for _, name := range []string{"a", "b", "c"} {
		_, s := StartSpan(ctx, name)
		s.End()
	}
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "b" || spans[1].Name != "c" {
		got := make([]string, len(spans))
		for i, s := range spans {
			got[i] = s.Name
		}
		t.Errorf("ring = %v, want [b c]", got)
	}

	none := NewTracer(0)
	hooks := 0
	none.OnFinish(func(*Span) { hooks++ })
	_, s := StartSpan(WithTracer(context.Background(), none), "x")
	s.End()
	if len(none.Spans()) != 0 || none.Finished() != 1 || hooks != 1 {
		t.Errorf("keep=0: spans=%d finished=%d hooks=%d", len(none.Spans()), none.Finished(), hooks)
	}
}

// TestTraceIDsUnique: distinct root spans get distinct trace IDs and all
// IDs are 16 hex digits.
func TestTraceIDsUnique(t *testing.T) {
	tr := NewTracer(0)
	ctx := WithTracer(context.Background(), tr)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		_, s := StartSpan(ctx, "r")
		if len(s.TraceID) != 16 || len(s.SpanID) != 16 {
			t.Fatalf("ID lengths: trace %q span %q", s.TraceID, s.SpanID)
		}
		if seen[s.TraceID] {
			t.Fatalf("duplicate trace ID %s", s.TraceID)
		}
		seen[s.TraceID] = true
		s.End()
	}
}

// TestDetach: the detached context keeps tracer, span and logger but drops
// cancelation.
func TestDetach(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	ctx, span := StartSpan(ctx, "request")
	logger, err := NewLogger(io.Discard, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	ctx = WithLogger(ctx, logger)
	cctx, cancel := context.WithCancel(ctx)
	cancel()

	d := Detach(cctx)
	if d.Err() != nil {
		t.Error("detached context must not inherit cancelation")
	}
	if TracerFrom(d) != tr {
		t.Error("detached context lost the tracer")
	}
	if SpanFrom(d) != span {
		t.Error("detached context lost the span")
	}
	if LoggerFrom(d) != logger {
		t.Error("detached context lost the logger")
	}
	// A span started on the detached context still joins the trace.
	_, child := StartSpan(d, "plan")
	if child.TraceID != span.TraceID {
		t.Error("span on detached context left the trace")
	}
	child.End()
	span.End()
}

// TestSpanProgress: progress events become span events carrying the
// pipeline fields, and still reach the wrapped hook.
func TestSpanProgress(t *testing.T) {
	tr := NewTracer(1)
	_, span := StartSpan(WithTracer(context.Background(), tr), "plan")
	var got []progress.Event
	hook := SpanProgress(span, func(ev progress.Event) { got = append(got, ev) })
	hook(progress.Event{Phase: "plan", Index: 0, Total: 2, Name: "conv1", Policy: "p2+p", AccessElems: 10, LatencyCycles: 20})
	hook(progress.Event{Phase: "plan", Index: 1, Total: 2, Name: "fc"})
	span.End()

	if len(got) != 2 {
		t.Fatalf("forwarded %d events, want 2", len(got))
	}
	if len(span.Events) != 2 {
		t.Fatalf("span has %d events, want 2", len(span.Events))
	}
	ev := span.Events[0]
	if ev.Name != "plan" {
		t.Errorf("span event name %q", ev.Name)
	}
	attrs := map[string]any{}
	for _, a := range ev.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["policy"] != "p2+p" || attrs["name"] != "conv1" || attrs["access_elems"] != int64(10) {
		t.Errorf("span event attrs = %v", attrs)
	}
	// Zero-valued optional fields are omitted.
	attrs = map[string]any{}
	for _, a := range span.Events[1].Attrs {
		attrs[a.Key] = a.Value
	}
	if _, ok := attrs["policy"]; ok {
		t.Error("empty policy should be omitted from span event attrs")
	}
}

// TestLoggerPlumbing: NewLogger levels/formats, context attachment, and
// the discard fallback.
func TestLoggerPlumbing(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept", "k", 1)
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, `"msg":"kept"`) {
		t.Errorf("level/format wrong: %q", out)
	}
	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "yaml"); err == nil {
		t.Error("bad format accepted")
	}

	ctx := context.Background()
	if LoggerFrom(ctx) != Discard() {
		t.Error("LoggerFrom without logger should return Discard()")
	}
	ctx = WithLogger(ctx, l)
	if LoggerFrom(ctx) != l {
		t.Error("LoggerFrom lost the attached logger")
	}
	if Discard().Enabled(ctx, 12) {
		t.Error("discard logger should be disabled at every level")
	}
}
