package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger writing to w. format selects "text"
// (logfmt-style key=value records) or "json"; level is one of "debug",
// "info", "warn", "error". The constructor is shared by every cmd/ binary
// so records carry consistent keys regardless of which tool emitted them.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// discardHandler drops every record without formatting it. (slog gained a
// built-in DiscardHandler after this module's Go baseline.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

var discardLogger = slog.New(discardHandler{})

// Discard returns a logger whose records go nowhere; its Enabled check is
// false at every level, so disabled call sites pay no formatting.
func Discard() *slog.Logger { return discardLogger }

// WithLogger attaches a request-scoped logger to the context.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// LoggerFrom returns the context's logger, or Discard() when none is
// attached, so call sites log unconditionally without nil checks.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok {
		return l
	}
	return discardLogger
}
