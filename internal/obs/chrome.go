package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"scratchmem/internal/policy"
	"scratchmem/internal/trace"
)

// This file renders execution traces in the Chrome trace-event format
// (the JSON Perfetto and chrome://tracing load): an object with a
// "traceEvents" array of complete ("ph":"X") events carrying ts/dur in
// microseconds. The engine's trace.Log has no wall-clock — events carry
// element counts — so the writer lays events on an idealised timeline
// where one accelerator cycle maps to one microsecond: DMA transfers run
// at Config.DRAMBytesPerCycle on the "DMA" track and compute bursts retire
// Config.MACsPerCycle on the "PE array" track. Tracks advance
// independently within a layer (that overlap is exactly what the
// prefetching "+p" policy variants buy) and re-synchronise at layer
// boundaries, because layers execute back to back.
//
// The rendering is analytically faithful: summing the emitted durations
// per event kind reproduces the trace.Log totals under the configured
// rates, the same equality the estimator tests pin (obs/chrome_test.go
// asserts it).

// TraceEvent is one Chrome trace_event record. Field order is fixed so
// the rendering is deterministic and golden-testable.
type TraceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	Args any     `json:"args,omitempty"`
}

// ChromeDoc is the top-level trace-event JSON document.
type ChromeDoc struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Track assignment inside the plan process.
const (
	chromePID  = 1
	tidDMA     = 1
	tidCompute = 2
)

type dmaArgs struct {
	Layer string `json:"layer"`
	Step  int    `json:"step"`
	Elems int64  `json:"elems"`
	Bytes int64  `json:"bytes"`
}

type computeArgs struct {
	Layer string `json:"layer"`
	Step  int    `json:"step"`
	MACs  int64  `json:"macs"`
}

type nameArgs struct {
	Name string `json:"name"`
}

// ChromeTraceLog lays a trace.Log on the two-track cycle timeline and
// returns the events, metadata first.
func ChromeTraceLog(log *trace.Log, cfg policy.Config) []TraceEvent {
	events := []TraceEvent{
		{Name: "process_name", Ph: "M", PID: chromePID, Args: nameArgs{Name: "plan execution"}},
		{Name: "thread_name", Ph: "M", PID: chromePID, TID: tidDMA, Args: nameArgs{Name: "DMA (off-chip)"}},
		{Name: "thread_name", Ph: "M", PID: chromePID, TID: tidCompute, Args: nameArgs{Name: "PE array"}},
	}
	bw := float64(cfg.DRAMBytesPerCycle)
	macRate := float64(cfg.MACsPerCycle())
	var dmaClock, compClock float64
	curLayer, haveLayer := "", false
	for _, e := range log.Events {
		if !haveLayer || e.Layer != curLayer {
			// Layers serialise: both engines idle until the slower one
			// finishes the previous layer.
			sync := max(dmaClock, compClock)
			dmaClock, compClock = sync, sync
			curLayer, haveLayer = e.Layer, true
		}
		ev := TraceEvent{Name: e.Kind.String(), Ph: "X", PID: chromePID}
		if e.Kind == trace.Compute {
			ev.Cat = "compute"
			ev.TID = tidCompute
			ev.TS = compClock
			ev.Dur = float64(e.Elems) / macRate
			compClock += ev.Dur
			ev.Args = computeArgs{Layer: e.Layer, Step: e.Step, MACs: e.Elems}
		} else {
			bytes := cfg.Bytes(e.Elems)
			ev.Cat = "dma"
			ev.TID = tidDMA
			ev.TS = dmaClock
			ev.Dur = float64(bytes) / bw
			dmaClock += ev.Dur
			ev.Args = dmaArgs{Layer: e.Layer, Step: e.Step, Elems: e.Elems, Bytes: bytes}
		}
		events = append(events, ev)
	}
	return events
}

// WriteChromeTrace renders log as a complete Chrome trace-event JSON
// document (Perfetto-loadable), one event per line for diffable goldens.
func WriteChromeTrace(w io.Writer, log *trace.Log, cfg policy.Config) error {
	return writeChromeDoc(w, ChromeTraceLog(log, cfg))
}

// ChromeSpans renders finished server spans as trace events: one complete
// event per span on a per-trace row, with span events as instant ("i")
// marks. Timestamps are wall-clock microseconds relative to the earliest
// span start.
func ChromeSpans(spans []*Span) []TraceEvent {
	events := []TraceEvent{
		{Name: "process_name", Ph: "M", PID: chromePID, Args: nameArgs{Name: "smm-serve spans"}},
	}
	if len(spans) == 0 {
		return events
	}
	epoch := spans[0].Start
	for _, s := range spans {
		if s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	// One row per trace, in first-seen order, so concurrent requests render
	// side by side instead of interleaved.
	rows := make(map[string]int)
	for _, s := range spans {
		row, ok := rows[s.TraceID]
		if !ok {
			row = len(rows) + 1
			rows[s.TraceID] = row
			events = append(events, TraceEvent{
				Name: "thread_name", Ph: "M", PID: chromePID, TID: row,
				Args: nameArgs{Name: "trace " + s.TraceID},
			})
		}
		args := map[string]any{"trace_id": s.TraceID, "span_id": s.SpanID}
		if s.ParentID != "" {
			args["parent_id"] = s.ParentID
		}
		for _, a := range s.Attrs {
			args[a.Key] = fmt.Sprint(a.Value)
		}
		events = append(events, TraceEvent{
			Name: s.Name, Cat: "span", Ph: "X",
			TS:  float64(s.Start.Sub(epoch).Microseconds()),
			Dur: float64(s.EndTime.Sub(s.Start).Microseconds()),
			PID: chromePID, TID: row, Args: args,
		})
		for _, ev := range s.Events {
			events = append(events, TraceEvent{
				Name: s.Name + "/" + ev.Name, Cat: "event", Ph: "i",
				TS:  float64(ev.Time.Sub(epoch).Microseconds()),
				PID: chromePID, TID: row,
			})
		}
	}
	return events
}

// WriteChromeSpans renders spans as a complete trace-event document.
func WriteChromeSpans(w io.Writer, spans []*Span) error {
	return writeChromeDoc(w, ChromeSpans(spans))
}

// writeChromeDoc emits the document with one event per line: loadable by
// Perfetto, readable in a diff.
func writeChromeDoc(w io.Writer, events []TraceEvent) error {
	if _, err := io.WriteString(w, "{\"traceEvents\": [\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(append([]byte("  "), b...), sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "], \"displayTimeUnit\": \"ms\"}\n")
	return err
}
