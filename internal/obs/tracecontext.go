package obs

import "context"

// TraceparentHeader is the HTTP header that carries trace context across
// fleet members: "<trace-id>-<parent-span-id>", both 16 lowercase hex
// digits. Every cross-node call (peer fill, successor lookup, replicate
// push, invalidate fan-out, snapshot pull, overview fetch) stamps it and
// the receiving server adopts it, so one request produces one trace no
// matter how many members it crosses. The contract is strictly
// best-effort: a missing or malformed header degrades to a fresh
// per-process trace, never to an error.
const TraceparentHeader = "X-SMM-Traceparent"

// TraceContext is the wire-portable half of a span: enough to parent a
// remote child under it. The zero value is "no context" (Valid reports
// false) and is safe to pass around.
type TraceContext struct {
	TraceID  string
	ParentID string
}

// Valid reports whether both IDs are well-formed (16 lowercase hex digits
// each), which is the only shape this package ever mints or accepts.
func (tc TraceContext) Valid() bool {
	return isHex16(tc.TraceID) && isHex16(tc.ParentID)
}

// String renders the header value, or "" for an invalid context (so call
// sites can set the header unconditionally and send nothing when there is
// nothing to propagate).
func (tc TraceContext) String() string {
	if !tc.Valid() {
		return ""
	}
	return tc.TraceID + "-" + tc.ParentID
}

// ParseTraceContext parses a TraceparentHeader value. Anything malformed —
// empty, wrong length, bad digits — returns the zero (invalid) context:
// propagation is best-effort, so parsing never fails loudly.
func ParseTraceContext(s string) TraceContext {
	if len(s) != 33 || s[16] != '-' {
		return TraceContext{}
	}
	tc := TraceContext{TraceID: s[:16], ParentID: s[17:]}
	if !tc.Valid() {
		return TraceContext{}
	}
	return tc
}

func isHex16(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < 16; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Context returns the span's propagable identity — what a cross-node call
// stamps into TraceparentHeader so the remote side can parent under this
// span. A nil span returns the zero (invalid) context.
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.TraceID, ParentID: s.SpanID}
}

// WithRemoteParent records an extracted remote trace context on ctx: the
// next StartSpan without a local parent adopts its trace ID and parents
// under its span ID, stitching the local subtree into the originating
// request's trace. An invalid tc returns ctx unchanged.
func WithRemoteParent(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey, tc)
}

// RemoteParentFrom returns the remote trace context recorded by
// WithRemoteParent, or the zero (invalid) context.
func RemoteParentFrom(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(remoteKey).(TraceContext)
	return tc
}

// TraceContextFrom returns the trace context an outbound call should
// propagate: the active span's identity when one exists, else any carried
// remote parent (a background worker re-attaching a context captured at
// enqueue time), else the zero (invalid) context.
func TraceContextFrom(ctx context.Context) TraceContext {
	if s := SpanFrom(ctx); s != nil {
		return s.Context()
	}
	return RemoteParentFrom(ctx)
}
