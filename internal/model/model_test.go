package model

import (
	"strings"
	"testing"

	"scratchmem/internal/layer"
)

// TestTable2LayerCounts pins the layer counts and types to the paper's
// Table 2: EfficientNetB0 82, GoogLeNet 64, MnasNet 53, MobileNet 28,
// MobileNetV2 53, ResNet18 21.
func TestTable2LayerCounts(t *testing.T) {
	want := []struct {
		name  string
		count int
		types []layer.Type
	}{
		{"EfficientNetB0", 82, []layer.Type{layer.Conv, layer.DepthwiseConv, layer.PointwiseConv, layer.FullyConnected}},
		{"GoogLeNet", 64, []layer.Type{layer.Conv, layer.PointwiseConv, layer.FullyConnected}},
		{"MnasNet", 53, []layer.Type{layer.Conv, layer.DepthwiseConv, layer.PointwiseConv, layer.FullyConnected}},
		{"MobileNet", 28, []layer.Type{layer.Conv, layer.DepthwiseConv, layer.PointwiseConv, layer.FullyConnected}},
		{"MobileNetV2", 53, []layer.Type{layer.Conv, layer.DepthwiseConv, layer.PointwiseConv, layer.FullyConnected}},
		// Paper Table 2 lists "CV, PW, FC, PL" for ResNet18, but the standard
		// architecture's only 1x1 convolutions are the three strided shortcut
		// projections, which we classify as PL; there is no separate PW layer.
		{"ResNet18", 21, []layer.Type{layer.Conv, layer.FullyConnected, layer.Projection}},
	}
	for _, tc := range want {
		t.Run(tc.name, func(t *testing.T) {
			n, err := Builtin(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(n.Layers); got != tc.count {
				t.Errorf("layer count = %d, want %d", got, tc.count)
				for i, l := range n.Layers {
					t.Logf("L%d: %s", i+1, l.String())
				}
			}
			got := n.Types()
			if len(got) != len(tc.types) {
				t.Fatalf("types = %v, want %v", got, tc.types)
			}
			for i := range got {
				if got[i] != tc.types[i] {
					t.Errorf("types = %v, want %v", got, tc.types)
					break
				}
			}
		})
	}
}

// TestResNet18Params pins the total weight count close to the published
// ~11.7M parameters (we count conv + fc weights, no biases/batch-norm).
func TestResNet18Params(t *testing.T) {
	n := ResNet18()
	p := n.Params()
	if p < 11_100_000 || p > 11_800_000 {
		t.Errorf("ResNet18 params = %d, want ~11.2M-11.7M", p)
	}
}

// TestMobileNetParams pins MobileNetV1 weights near the published ~4.2M.
func TestMobileNetParams(t *testing.T) {
	p := MobileNet().Params()
	if p < 3_900_000 || p > 4_300_000 {
		t.Errorf("MobileNet params = %d, want ~4.2M", p)
	}
}

// TestMobileNetV2Params pins MobileNetV2 weights near the published ~3.4M.
func TestMobileNetV2Params(t *testing.T) {
	p := MobileNetV2().Params()
	if p < 3_100_000 || p > 3_600_000 {
		t.Errorf("MobileNetV2 params = %d, want ~3.4M", p)
	}
}

// TestResNet18MACs pins the inference MAC count near the published ~1.8G.
func TestResNet18MACs(t *testing.T) {
	m := ResNet18().MACs()
	if m < 1_700_000_000 || m > 1_900_000_000 {
		t.Errorf("ResNet18 MACs = %d, want ~1.8G", m)
	}
}

// TestMobileNetMACs pins MobileNetV1 MACs near the published ~569M.
func TestMobileNetMACs(t *testing.T) {
	m := MobileNet().MACs()
	if m < 540_000_000 || m > 600_000_000 {
		t.Errorf("MobileNet MACs = %d, want ~569M", m)
	}
}

// TestShapeChaining verifies every layer's input matches the data actually
// flowing to it: spatial sizes never grow (stride >= 1 everywhere in these
// models) and final classifier sees 1000 outputs.
func TestShapeChaining(t *testing.T) {
	for _, n := range Builtins() {
		t.Run(n.Name, func(t *testing.T) {
			last := n.Layers[len(n.Layers)-1]
			if last.Kind != layer.FullyConnected || last.F != 1000 {
				t.Errorf("last layer = %s, want FC with 1000 outputs", last.String())
			}
			for i := range n.Layers {
				l := &n.Layers[i]
				if l.OH() <= 0 || l.OW() <= 0 {
					t.Errorf("layer %d (%s): non-positive output %dx%d", i+1, l.Name, l.OH(), l.OW())
				}
			}
		})
	}
}

func TestBuiltinUnknown(t *testing.T) {
	if _, err := Builtin("inceptionv3"); err == nil {
		t.Error("Builtin(inceptionv3) should fail")
	}
}

func TestBuiltinNameNormalisation(t *testing.T) {
	for _, alias := range []string{"resnet18", "ResNet18", "RESNET18", "resnet-18", "ResNet_18", "resnet 18"} {
		n, err := Builtin(alias)
		if err != nil {
			t.Errorf("Builtin(%q): %v", alias, err)
			continue
		}
		if n.Name != "ResNet18" {
			t.Errorf("Builtin(%q).Name = %q", alias, n.Name)
		}
	}
}

// TestResNet18ConvShapes pins a few landmark layers to the published
// architecture.
func TestResNet18ConvShapes(t *testing.T) {
	n := ResNet18()
	byName := map[string]layer.Layer{}
	for _, l := range n.Layers {
		byName[l.Name] = l
	}
	conv1 := byName["conv1"]
	if conv1.OH() != 112 || conv1.CO() != 64 {
		t.Errorf("conv1 out = %dx%dx%d, want 112x112x64", conv1.OH(), conv1.OW(), conv1.CO())
	}
	c2 := byName["conv2_1_a"]
	if c2.IH != 56 || c2.CI != 64 {
		t.Errorf("conv2_1_a in = %dx%dx%d, want 56x56x64", c2.IH, c2.IW, c2.CI)
	}
	c5 := byName["conv5_2_b"]
	if c5.IH != 7 || c5.CI != 512 || c5.CO() != 512 {
		t.Errorf("conv5_2_b = %s, want 7x7x512 -> 7x7x512", c5.String())
	}
	p3 := byName["proj3"]
	if p3.IH != 56 || p3.CI != 64 || p3.OH() != 28 || p3.CO() != 128 {
		t.Errorf("proj3 = %s, want 56x56x64 -> 28x28x128", p3.String())
	}
}

// TestGoogLeNetInceptionChannels verifies the inception concatenation
// arithmetic by checking the inputs of downstream modules.
func TestGoogLeNetInceptionChannels(t *testing.T) {
	n := GoogLeNet()
	byName := map[string]layer.Layer{}
	for _, l := range n.Layers {
		byName[l.Name] = l
	}
	checks := []struct {
		name string
		ci   int
		ih   int
	}{
		{"i3a_1x1", 192, 28},
		{"i3b_1x1", 256, 28},
		{"i4a_1x1", 480, 14},
		{"i4b_1x1", 512, 14},
		{"i4e_1x1", 528, 14},
		{"i5a_1x1", 832, 7},
		{"i5b_1x1", 832, 7},
		{"fc", 1024, 1},
		{"aux1_fc1", 2048, 1},
		{"aux2_fc1", 2048, 1},
	}
	for _, c := range checks {
		l, ok := byName[c.name]
		if !ok {
			t.Errorf("missing layer %s", c.name)
			continue
		}
		if l.CI != c.ci || l.IH != c.ih {
			t.Errorf("%s in = %dx%dx%d, want %dx%dx%d", c.name, l.IH, l.IW, l.CI, c.ih, c.ih, c.ci)
		}
	}
}

// TestEfficientNetSELayers verifies each MBConv block contributes its two
// squeeze-and-excite FC layers (16 blocks -> 32 SE FCs + final fc = 33 FCs).
func TestEfficientNetSELayers(t *testing.T) {
	n := EfficientNetB0()
	fcs := n.TypeCounts()[layer.FullyConnected]
	if fcs != 33 {
		t.Errorf("EfficientNetB0 FC layers = %d, want 33 (32 SE + classifier)", fcs)
	}
	// First SE pair of stage 2: expansion 16*6=96, squeeze 16/4=4.
	var se1 layer.Layer
	found := false
	for _, l := range n.Layers {
		if l.Name == "s2_1_se1" {
			se1, found = l, true
			break
		}
	}
	if !found {
		t.Fatal("missing s2_1_se1")
	}
	if se1.CI != 96 || se1.F != 4 {
		t.Errorf("s2_1_se1 = %d->%d, want 96->4", se1.CI, se1.F)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, n := range Builtins() {
		var buf strings.Builder
		if err := n.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: WriteJSON: %v", n.Name, err)
		}
		got, err := ReadJSON(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("%s: ReadJSON: %v", n.Name, err)
		}
		if got.Name != n.Name || len(got.Layers) != len(n.Layers) {
			t.Fatalf("%s: round trip mismatch", n.Name)
		}
		for i := range got.Layers {
			if got.Layers[i] != n.Layers[i] {
				t.Errorf("%s layer %d: %+v != %+v", n.Name, i, got.Layers[i], n.Layers[i])
			}
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		"{not json",
		`{"name":"x","layers":[{"name":"l","type":"XX","ih":1,"iw":1,"ci":1,"fh":1,"fw":1,"f":1,"s":1}]}`,
		`{"name":"x","layers":[{"name":"l","type":"CV","ih":0,"iw":1,"ci":1,"fh":1,"fw":1,"f":1,"s":1}]}`,
		`{"name":"x","layers":[]}`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: ReadJSON succeeded, want error", i)
		}
	}
}

func TestTopologyCSVRoundTrip(t *testing.T) {
	n := ResNet18()
	var buf strings.Builder
	if err := n.WriteTopologyCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTopologyCSV("ResNet18", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Layers) != len(n.Layers) {
		t.Fatalf("layer count = %d, want %d", len(got.Layers), len(n.Layers))
	}
	// The CSV format drops padding and layer kind, but the raw dimensions
	// must survive.
	for i := range got.Layers {
		a, b := got.Layers[i], n.Layers[i]
		if a.IH != b.IH || a.IW != b.IW || a.CI != b.CI || a.FH != b.FH || a.FW != b.FW || a.F != b.F || a.S != b.S {
			t.Errorf("layer %d: %+v != %+v", i, a, b)
		}
	}
}

func TestReadTopologyCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"Layer name, IFMAP Height,\nconv1, 224,\n",
		"conv1, a, 224, 3, 3, 3, 64, 1,\n",
		"conv1, 0, 224, 3, 3, 3, 64, 1,\n",
	}
	for i, c := range cases {
		if _, err := ReadTopologyCSV("x", strings.NewReader(c)); err == nil {
			t.Errorf("case %d: ReadTopologyCSV succeeded, want error", i)
		}
	}
}

func TestMinTransfers(t *testing.T) {
	n := &Network{Name: "tiny", Layers: []layer.Layer{
		layer.MustNew("c1", layer.Conv, 8, 8, 3, 3, 3, 4, 1, 1),
	}}
	l := &n.Layers[0]
	want := l.IfmapElems(false) + l.FilterElems() + l.OfmapElems()
	if got := n.MinTransfers(false); got != want {
		t.Errorf("MinTransfers = %d, want %d", got, want)
	}
	if got := n.MinTransfers(true); got <= want {
		t.Errorf("padded MinTransfers = %d, want > %d", got, want)
	}
}

func TestValidateEmpty(t *testing.T) {
	if err := (&Network{Name: "x"}).Validate(); err == nil {
		t.Error("empty network should fail validation")
	}
	if err := (&Network{Layers: ResNet18().Layers}).Validate(); err == nil {
		t.Error("unnamed network should fail validation")
	}
}
