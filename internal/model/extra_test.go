package model

import (
	"testing"

	"scratchmem/internal/layer"
)

// TestAlexNet pins the torchvision AlexNet: 8 weighted layers, ~61M
// parameters (the first FC dominates), ~0.71G MACs.
func TestAlexNet(t *testing.T) {
	n := AlexNet()
	if len(n.Layers) != 8 {
		t.Fatalf("layers = %d, want 8", len(n.Layers))
	}
	if p := n.Params(); p < 60_000_000 || p > 62_500_000 {
		t.Errorf("params = %d, want ~61M", p)
	}
	if m := n.MACs(); m < 650_000_000 || m > 780_000_000 {
		t.Errorf("MACs = %d, want ~0.71G", m)
	}
	fc1 := n.Layers[5]
	if fc1.Kind != layer.FullyConnected || fc1.CI != 9216 || fc1.F != 4096 {
		t.Errorf("fc1 = %s, want FC 9216->4096", fc1.String())
	}
}

// TestVGG16 pins configuration D: 16 weighted layers, ~138M parameters,
// ~15.5G MACs.
func TestVGG16(t *testing.T) {
	n := VGG16()
	if len(n.Layers) != 16 {
		t.Fatalf("layers = %d, want 16", len(n.Layers))
	}
	if p := n.Params(); p < 137_000_000 || p > 139_000_000 {
		t.Errorf("params = %d, want ~138M", p)
	}
	if m := n.MACs(); m < 15_000_000_000 || m > 16_000_000_000 {
		t.Errorf("MACs = %d, want ~15.5G", m)
	}
	fc1 := n.Layers[13]
	if fc1.Kind != layer.FullyConnected || fc1.CI != 25088 || fc1.F != 4096 {
		t.Errorf("fc1 = %s, want FC 25088->4096", fc1.String())
	}
	// Last conv stage sees 14x14x512.
	c51 := n.Layers[10]
	if c51.IH != 14 || c51.CI != 512 {
		t.Errorf("conv5_1 = %s, want 14x14x512 input", c51.String())
	}
}

// TestExtraModelsPlannable: the big classics plan at every paper size.
func TestExtraModelsPlannable(t *testing.T) {
	for _, name := range []string{"AlexNet", "VGG16"} {
		n, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
