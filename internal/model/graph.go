package model

import (
	"fmt"
	"strings"

	"scratchmem/internal/layer"
	"scratchmem/internal/smmerr"
)

// ExternalPrefix marks tensor names that no node produces: graph inputs
// streamed from DRAM (the model's image input, or a branch point the source
// format could not express). External tensors have no lifetime in the GLB
// and are continuity wildcards during validation.
const ExternalPrefix = "@"

// IsExternalTensor reports whether a tensor name denotes an external
// (DRAM-resident, producer-less) tensor.
func IsExternalTensor(name string) bool { return strings.HasPrefix(name, ExternalPrefix) }

// GraphNode is one layer of a tensor-lifetime graph. A node consumes the
// named input tensors (channel-concatenated when there are several — the
// inception join), optionally element-wise adds the named residual tensors
// into its input (identity shortcuts; free in the paper's cost model, they
// only extend tensor lifetimes), and produces exactly one tensor named after
// the layer.
type GraphNode struct {
	Layer layer.Layer
	// Inputs names the tensors whose concatenation forms this node's ifmap.
	// Names starting with "@" are external and need no producer.
	Inputs []string
	// Residual names produced tensors added element-wise into this node's
	// ifmap (shortcut connections). They extend the named tensors' lifetimes
	// but carry no MACs or extra DRAM traffic of their own.
	Residual []string
}

// Output returns the name of the tensor this node produces.
func (nd *GraphNode) Output() string { return nd.Layer.Name }

// Graph is a tensor-lifetime IR: nodes are layers, edges are named tensors
// with one producer and any number of consumers. Nodes are stored in a
// topological order (Validate enforces it), so a Graph is also directly
// executable front to back. A linear chain is the special case where every
// node consumes exactly its predecessor's output; FromNetwork/Network make
// that embedding lossless.
type Graph struct {
	Name  string
	Nodes []GraphNode
}

// FromNetwork lifts a linear Network into the graph IR. Wherever a layer
// can read its predecessor's output — exactly, through a pooling gap, or
// flattened (ContinuousView) — the edge is explicit, preserving the chain's
// execution dependency; a layer whose ifmap is not any view of the previous
// tensor reads a fresh external tensor. The round trip
// FromNetwork(n).Network() preserves n.
func FromNetwork(n *Network) *Graph {
	g := &Graph{Name: n.Name, Nodes: make([]GraphNode, len(n.Layers))}
	ext := 0
	for i := range n.Layers {
		l := n.Layers[i]
		var in string
		if i > 0 && ContinuousView(&n.Layers[i-1], &l) {
			in = n.Layers[i-1].Name
		} else {
			in = fmt.Sprintf("%sin%d", ExternalPrefix, ext)
			ext++
		}
		g.Nodes[i] = GraphNode{Layer: l, Inputs: []string{in}}
	}
	return g
}

// Network flattens the graph back into a linear Network in node order —
// the lossless inverse of FromNetwork for chain graphs, and the serialised
// execution order the legacy planner and CSV writer use for DAGs.
func (g *Graph) Network() *Network {
	n := &Network{Name: g.Name, Layers: make([]layer.Layer, len(g.Nodes))}
	for i := range g.Nodes {
		n.Layers[i] = g.Nodes[i].Layer
	}
	return n
}

// Chainable reports whether b can consume a's ofmap in place: matching
// spatial dimensions and channel count (the inter-layer reuse condition).
func Chainable(a, b *layer.Layer) bool {
	return a.OH() == b.IH && a.OW() == b.IW && a.CO() == b.CI
}

// ContinuousView reports whether b can read its whole ifmap as a view of
// a's output tensor: the exact chainable match, a pooled or padding-slack
// view (same channels, spatial extent within the continuity slack), or a
// flattened fully-connected read. This is the single-input acceptance rule
// of Graph.Validate, so connecting such a pair always yields a valid edge.
func ContinuousView(a, b *layer.Layer) bool {
	d := dimsOf(a)
	if d.c == b.CI && d.spatialOK(b.IH, b.IW) {
		return true
	}
	return b.IH == 1 && b.IW == 1 && b.CI%d.c == 0 && b.CI/d.c <= d.h*d.w
}

// IsChain reports whether the graph is a linear chain as the legacy planner
// understands it: no residual edges, and every produced tensor a node reads
// is the immediately preceding node's output. Chain graphs plan through the
// linear path and keep byte-identical plan documents.
func (g *Graph) IsChain() bool {
	for i := range g.Nodes {
		nd := &g.Nodes[i]
		if len(nd.Residual) > 0 {
			return false
		}
		for _, in := range nd.Inputs {
			if IsExternalTensor(in) {
				continue
			}
			if i == 0 || in != g.Nodes[i-1].Layer.Name {
				return false
			}
		}
	}
	return true
}

// producers maps every produced tensor name to its node index.
func (g *Graph) producers() map[string]int {
	m := make(map[string]int, len(g.Nodes))
	for i := range g.Nodes {
		m[g.Nodes[i].Layer.Name] = i
	}
	return m
}

// tensorDims is a produced tensor's extent plus the producing filter size
// (the padding-slack continuity rule needs it).
type tensorDims struct{ h, w, c, fh, fw int }

func dimsOf(l *layer.Layer) tensorDims {
	return tensorDims{h: l.OH(), w: l.OW(), c: l.CO(), fh: l.FH, fw: l.FW}
}

// spatialOK reports whether a tensor of extent t can feed a consumer
// expecting an ih x iw ifmap. Exact match always passes; a slightly smaller
// tensor passes when the producer's lost padding accounts for the gap
// (SCALE-Sim CSVs drop the padding column, so the recorded ofmap can be up
// to fh-1 rows short); a larger tensor passes as a pooled view (pooling
// layers are weight-free shape changes in the paper's methodology, so the
// consumer legitimately sees fewer rows than the tensor holds).
func (t tensorDims) spatialOK(ih, iw int) bool {
	return t.h+(t.fh-1) >= ih && t.w+(t.fw-1) >= iw
}

// Validate checks the graph end to end: layer validity, unique non-external
// node names, topological order (every produced tensor is read only by later
// nodes), and shape continuity on every edge. Continuity accepts the exact
// match plus three deliberate relaxations matching how real topologies
// serialise: padding slack and pooled views (spatialOK), channel
// concatenation for multi-input joins, and flattened reads (an FC consuming
// h*w*c elements of a spatial tensor). External inputs are wildcards.
// All failures wrap smmerr.ErrBadModel.
func (g *Graph) Validate() error {
	return smmerr.BadModel(g.validate())
}

func (g *Graph) validate() error {
	if g.Name == "" {
		return fmt.Errorf("model: graph has no name")
	}
	if len(g.Nodes) == 0 {
		return fmt.Errorf("model: graph %s has no nodes", g.Name)
	}
	prod := make(map[string]int, len(g.Nodes))
	for i := range g.Nodes {
		nd := &g.Nodes[i]
		if err := nd.Layer.Validate(); err != nil {
			return fmt.Errorf("model: %s node %d: %w", g.Name, i+1, err)
		}
		name := nd.Layer.Name
		if IsExternalTensor(name) {
			return fmt.Errorf("model: %s node %d: layer name %q collides with the external-tensor prefix %q", g.Name, i+1, name, ExternalPrefix)
		}
		if j, dup := prod[name]; dup {
			return fmt.Errorf("model: %s: nodes %d and %d both produce tensor %q", g.Name, j+1, i+1, name)
		}
		prod[name] = i
	}
	for i := range g.Nodes {
		nd := &g.Nodes[i]
		if len(nd.Inputs) == 0 {
			return fmt.Errorf("model: %s node %q has no inputs", g.Name, nd.Layer.Name)
		}
		for _, in := range nd.Inputs {
			if IsExternalTensor(in) {
				continue
			}
			j, ok := prod[in]
			if !ok {
				return fmt.Errorf("model: %s node %q reads unknown tensor %q", g.Name, nd.Layer.Name, in)
			}
			if j >= i {
				return fmt.Errorf("model: %s node %q reads tensor %q before it is produced (nodes must be topologically ordered)", g.Name, nd.Layer.Name, in)
			}
		}
		for _, r := range nd.Residual {
			if IsExternalTensor(r) {
				return fmt.Errorf("model: %s node %q has external residual %q (residuals must be produced tensors)", g.Name, nd.Layer.Name, r)
			}
			j, ok := prod[r]
			if !ok {
				return fmt.Errorf("model: %s node %q adds unknown residual tensor %q", g.Name, nd.Layer.Name, r)
			}
			if j >= i {
				return fmt.Errorf("model: %s node %q adds residual %q before it is produced", g.Name, nd.Layer.Name, r)
			}
		}
		if err := g.checkContinuity(i, prod); err != nil {
			return err
		}
	}
	return nil
}

// checkContinuity validates node i's ifmap against its produced inputs.
func (g *Graph) checkContinuity(i int, prod map[string]int) error {
	nd := &g.Nodes[i]
	l := &nd.Layer
	var sum int
	var dims []tensorDims
	external := false
	for _, in := range nd.Inputs {
		if IsExternalTensor(in) {
			external = true
			continue
		}
		t := dimsOf(&g.Nodes[prod[in]].Layer)
		if !t.spatialOK(l.IH, l.IW) {
			return fmt.Errorf("model: %s node %q expects %dx%d ifmap but input tensor %q is %dx%d",
				g.Name, l.Name, l.IH, l.IW, in, t.h, t.w)
		}
		sum += t.c
		dims = append(dims, t)
	}
	for _, r := range nd.Residual {
		t := dimsOf(&g.Nodes[prod[r]].Layer)
		if t.c != l.CI || !t.spatialOK(l.IH, l.IW) {
			return fmt.Errorf("model: %s node %q (ifmap %dx%dx%d) cannot add residual tensor %q (%dx%dx%d)",
				g.Name, l.Name, l.IH, l.IW, l.CI, r, t.h, t.w, t.c)
		}
	}
	switch {
	case len(dims) == 0:
		return nil // purely external input: wildcard
	case sum == l.CI:
		return nil // exact channels (single tensor or concatenation)
	case external:
		return nil // mixed with externals: channel total unknowable
	case len(dims) == 1 && l.CI%dims[0].c == 0 && l.CI/dims[0].c <= dims[0].h*dims[0].w:
		return nil // flattened read: CI = (pooled) h*w*c of the input
	}
	return fmt.Errorf("model: %s node %q expects %d input channels but its input tensors carry %d",
		g.Name, l.Name, l.CI, sum)
}
