package model

import (
	"encoding/json"
	"fmt"
	"io"

	"scratchmem/internal/layer"
	"scratchmem/internal/smmerr"
)

// inferTensor tracks one produced tensor while reconstructing a graph from
// a linear layer list. consumed marks tensors already read at (roughly)
// full resolution, so later same-channel readers prefer fresher tensors;
// pooled views never consume (the tensor is still live for exact readers).
type inferTensor struct {
	name     string
	dims     tensorDims
	consumed bool
}

// retypeableDW reports whether a layer looks like a depth-wise convolution
// flattened by the SCALE-Sim CSV format, which has no type column and
// writes DW filters as Num Filter = 1: a spatial convolution claiming a
// single output channel over a multi-channel ifmap.
func retypeableDW(l *layer.Layer) bool {
	return l.Kind == layer.Conv && l.F == 1 && l.CI > 1 && (l.FH > 1 || l.FW > 1)
}

// InferGraph reconstructs the tensor graph of a serialised layer list:
// which tensor each layer reads, recovering branches (several readers of
// one tensor), inception-style concatenations (a reader whose channel count
// is the sum of several live tensors) and flattened FC reads. It also
// repairs the CSV format's depth-wise flattening by retyping
// single-filter spatial convolutions whose successor consumes CI channels.
// The input network is not modified; the returned graph owns retyped layer
// copies. Layers whose ifmap cannot be matched to any produced tensor are
// a continuity violation and yield an error wrapping smmerr.ErrBadModel —
// except the first layer, which always reads the external model input.
func InferGraph(n *Network) (*Graph, error) {
	g, err := inferGraph(n)
	if err != nil {
		return nil, smmerr.BadModel(err)
	}
	return g, nil
}

func inferGraph(n *Network) (*Graph, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	layers := make([]layer.Layer, len(n.Layers))
	copy(layers, n.Layers)
	g := &Graph{Name: n.Name, Nodes: make([]GraphNode, len(layers))}
	st := &inferState{}
	for i := range layers {
		l := &layers[i]
		inputs, err := st.matchProducers(layers, i)
		if err != nil {
			return nil, fmt.Errorf("model: %s: %w", n.Name, err)
		}
		g.Nodes[i] = GraphNode{Inputs: inputs}
		st.avail = append(st.avail, &inferTensor{name: l.Name, dims: dimsOf(l)})
	}
	// Copy the layers only now: a retype mutates layers[i-1] while matching
	// node i, after node i-1 was visited.
	for i := range layers {
		g.Nodes[i].Layer = layers[i]
	}
	// The retype changes output shapes, so re-check the result end to end.
	if err := g.validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// inferState is the working set of the producer-inference walk: the
// produced tensors and the concatenation groups already discovered.
type inferState struct {
	avail  []*inferTensor
	groups [][]*inferTensor
}

// matchProducers resolves layer i's input tensors against the produced set,
// trying in order: the depth-wise retype of the immediately preceding row,
// a single tensor match, a fresh channel concatenation over the unconsumed
// tensors, a re-read of an already-discovered concatenation group, and a
// flattened read. It may retype layers[i-1] in place and marks matched
// tensors consumed when read at full resolution.
func (st *inferState) matchProducers(layers []layer.Layer, i int) ([]string, error) {
	l := &layers[i]
	if len(st.avail) == 0 {
		return []string{ExternalPrefix + "in0"}, nil
	}
	// Depth-wise repair first: the as-written previous row produces one
	// channel, but this row wants the full CI back — the signature of a DW
	// layer flattened by the format. Generic matching would skip past the
	// DW row to an older tensor and mis-wire the chain.
	prev := &layers[i-1]
	if retypeableDW(prev) && l.CI > 1 && prev.CI == l.CI {
		prev.Kind = layer.DepthwiseConv
		t := st.avail[len(st.avail)-1]
		t.dims = dimsOf(prev)
		if t.dims.spatialOK(l.IH, l.IW) {
			if t.dims.h <= l.IH {
				t.consumed = true
			}
			return []string{t.name}, nil
		}
		// Retype stands (the layer is a DW either way) but the edge must be
		// found elsewhere; fall through.
	}
	if t := st.matchSingle(l); t != nil {
		if t.dims.h <= l.IH {
			t.consumed = true
		}
		return []string{t.name}, nil
	}
	if group := st.matchConcat(l); group != nil {
		names := make([]string, len(group))
		for i, t := range group {
			names[i] = t.name
		}
		return names, nil
	}
	if t := st.matchFlatten(l); t != nil {
		t.consumed = true
		return []string{t.name}, nil
	}
	return nil, fmt.Errorf("layer %d (%s): no produced tensor matches its %dx%dx%d ifmap (shape continuity violated)",
		i+1, l.Name, l.IH, l.IW, l.CI)
}

// matchSingle finds the freshest tensor carrying exactly l's input
// channels, preferring unconsumed tensors so branch readers bind to the
// branch point rather than a stale same-shaped tensor.
func (st *inferState) matchSingle(l *layer.Layer) *inferTensor {
	for _, consumedOK := range []bool{false, true} {
		for j := len(st.avail) - 1; j >= 0; j-- {
			t := st.avail[j]
			if t.consumed && !consumedOK {
				continue
			}
			if t.dims.c == l.CI && t.dims.spatialOK(l.IH, l.IW) {
				return t
			}
		}
	}
	return nil
}

// matchConcat resolves an inception-style join, where l.CI is the channel
// sum of several sibling branch outputs. Serialised branch outputs are the
// freshest unconsumed tensors, so a fresh group accumulates every eligible
// unconsumed tensor newest-first and must hit the sum exactly — overshoot
// or exhaustion means the fresh tensors are not this layer's input, and the
// reader is instead re-reading a previously discovered group (the other
// parallel branches of the same module). Fresh groups are registered and
// their members consumed so sibling branches cannot leak into each other.
func (st *inferState) matchConcat(l *layer.Layer) []*inferTensor {
	remaining := l.CI
	var group []*inferTensor
	for j := len(st.avail) - 1; j >= 0 && remaining > 0; j-- {
		t := st.avail[j]
		if t.consumed || !t.dims.spatialOK(l.IH, l.IW) {
			continue
		}
		if t.dims.c > remaining {
			group = nil
			break
		}
		group = append(group, t)
		remaining -= t.dims.c
	}
	if remaining == 0 && len(group) >= 2 {
		// Reverse into production order for a deterministic edge list.
		for a, b := 0, len(group)-1; a < b; a, b = a+1, b-1 {
			group[a], group[b] = group[b], group[a]
		}
		for _, t := range group {
			t.consumed = true
		}
		st.groups = append(st.groups, group)
		return group
	}
	// Re-read of a known group: latest-registered first.
	for j := len(st.groups) - 1; j >= 0; j-- {
		g := st.groups[j]
		sum := 0
		ok := true
		for _, t := range g {
			if !t.dims.spatialOK(l.IH, l.IW) {
				ok = false
				break
			}
			sum += t.dims.c
		}
		if ok && sum == l.CI {
			return g
		}
	}
	return nil
}

// matchFlatten finds a tensor an FC layer reads flattened: l.CI equals the
// tensor's (possibly pooled) h*w*c volume, i.e. CI is a multiple of the
// tensor's channels and the multiplier fits its spatial extent.
func (st *inferState) matchFlatten(l *layer.Layer) *inferTensor {
	if l.IH != 1 || l.IW != 1 {
		return nil
	}
	for _, consumedOK := range []bool{false, true} {
		for j := len(st.avail) - 1; j >= 0; j-- {
			t := st.avail[j]
			if t.consumed && !consumedOK {
				continue
			}
			if l.CI%t.dims.c == 0 && l.CI/t.dims.c <= t.dims.h*t.dims.w {
				return t
			}
		}
	}
	return nil
}

// ReadTopologyGraphCSV parses a SCALE-Sim topology CSV directly into the
// graph IR: producers inferred per InferGraph, depth-wise layers recovered
// from their flattened Num Filter = 1 encoding. Malformed rows and shape
// discontinuities yield errors wrapping smmerr.ErrBadModel.
func ReadTopologyGraphCSV(name string, r io.Reader) (*Graph, error) {
	n, err := ReadTopologyCSV(name, r)
	if err != nil {
		return nil, err
	}
	return InferGraph(n)
}

// jsonGraphLayer is jsonLayer plus the optional edge columns. Legacy files
// without edges load as linear chains.
type jsonGraphLayer struct {
	jsonLayer
	Inputs   []string `json:"inputs,omitempty"`
	Residual []string `json:"residual,omitempty"`
}

type jsonGraph struct {
	Name   string           `json:"name"`
	Layers []jsonGraphLayer `json:"layers"`
}

// WriteJSON serialises the graph as indented JSON: the Network layer format
// plus per-layer "inputs"/"residual" edge columns.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{Name: g.Name, Layers: make([]jsonGraphLayer, len(g.Nodes))}
	for i := range g.Nodes {
		nd := &g.Nodes[i]
		l := nd.Layer
		jg.Layers[i] = jsonGraphLayer{
			jsonLayer: jsonLayer{
				Name: l.Name, Type: l.Kind.String(),
				IH: l.IH, IW: l.IW, CI: l.CI, FH: l.FH, FW: l.FW, F: l.F, S: l.S, P: l.P,
			},
			Inputs:   nd.Inputs,
			Residual: nd.Residual,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jg)
}

// ReadGraphJSON parses a graph from JSON. The edge columns are optional:
// when no layer declares inputs the file is a legacy linear network and the
// chain is inferred (continuous neighbours connect, everything else reads
// an external tensor, exactly as FromNetwork). When some layers declare
// edges, undeclared layers get the same chain inference individually. The
// result is validated; failures wrap smmerr.ErrBadModel.
func ReadGraphJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, smmerr.BadModel(fmt.Errorf("model: decoding graph JSON: %w", err))
	}
	g := &Graph{Name: jg.Name, Nodes: make([]GraphNode, len(jg.Layers))}
	ext := 0
	for i, jl := range jg.Layers {
		kind, err := layer.ParseType(jl.Type)
		if err != nil {
			return nil, smmerr.BadModel(fmt.Errorf("model: layer %d (%s): %w", i+1, jl.Name, err))
		}
		l, err := layer.New(jl.Name, kind, jl.IH, jl.IW, jl.CI, jl.FH, jl.FW, jl.F, jl.S, jl.P)
		if err != nil {
			return nil, smmerr.BadModel(err)
		}
		g.Nodes[i] = GraphNode{Layer: l, Inputs: jl.Inputs, Residual: jl.Residual}
	}
	for i := range g.Nodes {
		if len(g.Nodes[i].Inputs) > 0 {
			continue
		}
		if i > 0 && ContinuousView(&g.Nodes[i-1].Layer, &g.Nodes[i].Layer) {
			g.Nodes[i].Inputs = []string{g.Nodes[i-1].Layer.Name}
		} else {
			g.Nodes[i].Inputs = []string{fmt.Sprintf("%sin%d", ExternalPrefix, ext)}
			ext++
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
