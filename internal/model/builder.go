package model

import (
	"fmt"

	"scratchmem/internal/layer"
)

// shape tracks the activation tensor flowing through a network under
// construction: its extent plus the produced tensors it is a view of (src),
// so the builder can record graph edges alongside the linear layer list.
// An empty src means the activation comes from outside the graph (the model
// input, or a branch point declared with at).
type shape struct {
	h, w, c int
	src     []string
}

// nodeRec captures the graph edges of one appended layer.
type nodeRec struct {
	inputs   []string
	residual []string
}

// netBuilder incrementally assembles a Network, tracking the activation
// shape so each layer's ifmap dimensions follow from the previous layer.
// Pooling layers carry no weights or MACs in the paper's methodology, so
// they only transform the tracked shape and append no layer. The builder
// also records, per layer, which tensors it reads (and which residual
// tensors are added into its input), so the same construction yields both
// the serialised Network and the tensor-lifetime Graph.
type netBuilder struct {
	net             Network
	cur             shape
	recs            []nodeRec
	pendingResidual []string
	extIn           int
}

func newNet(name string, h, w, c int) *netBuilder {
	return &netBuilder{net: Network{Name: name}, cur: shape{h: h, w: w, c: c}}
}

func (b *netBuilder) extInput() string {
	name := fmt.Sprintf("%sin%d", ExternalPrefix, b.extIn)
	b.extIn++
	return name
}

func (b *netBuilder) add(name string, kind layer.Type, fh, fw, f, s, p int) {
	l := layer.MustNew(name, kind, b.cur.h, b.cur.w, b.cur.c, fh, fw, f, s, p)
	b.net.Layers = append(b.net.Layers, l)
	src := b.cur.src
	if len(src) == 0 {
		src = []string{b.extInput()}
	}
	b.recs = append(b.recs, nodeRec{inputs: src, residual: b.pendingResidual})
	b.pendingResidual = nil
	b.cur = shape{h: l.OH(), w: l.OW(), c: l.CO(), src: []string{name}}
}

// conv appends a dense convolution with a square k x k filter.
func (b *netBuilder) conv(name string, k, f, s, p int) {
	b.add(name, layer.Conv, k, k, f, s, p)
}

// dw appends a depth-wise convolution with a square k x k filter.
func (b *netBuilder) dw(name string, k, s, p int) {
	b.add(name, layer.DepthwiseConv, k, k, 1, s, p)
}

// pw appends a 1x1 point-wise convolution with f output channels.
func (b *netBuilder) pw(name string, f int) {
	b.add(name, layer.PointwiseConv, 1, 1, f, 1, 0)
}

// proj appends a 1x1 strided projection layer (ResNet shortcut).
func (b *netBuilder) proj(name string, f, s int) {
	b.add(name, layer.Projection, 1, 1, f, s, 0)
}

// fc appends a fully-connected layer taking the current channel count
// (spatial dims must already be 1x1) to out features.
func (b *netBuilder) fc(name string, out int) {
	if b.cur.h != 1 || b.cur.w != 1 {
		panic(fmt.Sprintf("model: fc %s after non-pooled shape %dx%d", name, b.cur.h, b.cur.w))
	}
	b.add(name, layer.FullyConnected, 1, 1, out, 1, 0)
}

// pool applies a weight-free pooling window (shape change only); the
// activation remains a view of the same tensors.
func (b *netBuilder) pool(k, s, p int) {
	b.cur = shape{
		h:   (b.cur.h-k+2*p)/s + 1,
		w:   (b.cur.w-k+2*p)/s + 1,
		c:   b.cur.c,
		src: b.cur.src,
	}
}

// globalPool collapses the spatial dimensions to 1x1.
func (b *netBuilder) globalPool() {
	b.cur = shape{h: 1, w: 1, c: b.cur.c, src: b.cur.src}
}

// flatten collapses the activation to 1x1x(h*w*c) — the FC transition. An
// on-chip reshape of the same tensors, not a new layer.
func (b *netBuilder) flatten() {
	b.cur = shape{h: 1, w: 1, c: b.cur.h * b.cur.w * b.cur.c, src: b.cur.src}
}

// at overrides the tracked shape with an unsourced activation; the next
// appended layer reads a fresh external tensor.
func (b *netBuilder) at(h, w, c int) { b.cur = shape{h: h, w: w, c: c} }

// merge sets the tracked activation to the channel concatenation of the
// given branch activations (the inception join); h, w, c are declared by
// the caller and checked when the appended consumer validates.
func (b *netBuilder) merge(h, w, c int, parts ...shape) {
	var src []string
	for _, p := range parts {
		src = append(src, p.src...)
	}
	b.cur = shape{h: h, w: w, c: c, src: src}
}

// residual marks the given activations' tensors as element-wise added into
// the next appended layer's input (identity/projection shortcuts).
func (b *netBuilder) residual(parts ...shape) {
	for _, p := range parts {
		b.pendingResidual = append(b.pendingResidual, p.src...)
	}
}

// shapeNow returns the current tracked shape, so a caller can restore it
// after building a side branch.
func (b *netBuilder) shapeNow() shape { return b.cur }

// restore resets the tracked shape saved by shapeNow.
func (b *netBuilder) restore(s shape) { b.cur = s }

func (b *netBuilder) build() *Network {
	n := b.net
	if err := n.Validate(); err != nil {
		panic(err)
	}
	return &n
}

// buildGraph assembles the tensor-lifetime graph recorded alongside the
// layer list. Builders are static, so a validation failure is a programming
// error and panics like build.
func (b *netBuilder) buildGraph() *Graph {
	g := &Graph{Name: b.net.Name, Nodes: make([]GraphNode, len(b.net.Layers))}
	for i, l := range b.net.Layers {
		g.Nodes[i] = GraphNode{Layer: l, Inputs: b.recs[i].inputs, Residual: b.recs[i].residual}
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}

// ResNet18 builds the 21-layer ResNet18 of He et al. (224x224x3 input):
// 17 convolutions, 3 projection shortcuts and the final FC, with residual
// branches serialised as in the paper (the projection layer follows the
// first convolution of its stage).
func ResNet18() *Network { return resNet18().build() }

func resNet18() *netBuilder {
	b := newNet("ResNet18", 224, 224, 3)
	b.conv("conv1", 7, 64, 2, 3)
	b.pool(3, 2, 1) // maxpool 112 -> 56

	// Stage 2: two basic blocks at 56x56x64, no projection. The identity
	// shortcut adds each block's input into the layer after the block.
	for blk := 1; blk <= 2; blk++ {
		in := b.shapeNow()
		b.conv(fmt.Sprintf("conv2_%d_a", blk), 3, 64, 1, 1)
		b.conv(fmt.Sprintf("conv2_%d_b", blk), 3, 64, 1, 1)
		b.residual(in)
	}
	stage := func(idx, f int) {
		in := b.shapeNow()
		b.conv(fmt.Sprintf("conv%d_1_a", idx), 3, f, 2, 1)
		b.conv(fmt.Sprintf("conv%d_1_b", idx), 3, f, 1, 1)
		out := b.shapeNow()
		// Projection shortcut runs on the stage input; its output is added
		// into the second block's first convolution.
		b.restore(in)
		b.proj(fmt.Sprintf("proj%d", idx), f, 2)
		pr := b.shapeNow()
		b.restore(out)
		b.residual(pr)
		b.conv(fmt.Sprintf("conv%d_2_a", idx), 3, f, 1, 1)
		b.conv(fmt.Sprintf("conv%d_2_b", idx), 3, f, 1, 1)
		b.residual(out)
	}
	stage(3, 128) // 56 -> 28
	stage(4, 256) // 28 -> 14
	stage(5, 512) // 14 -> 7
	b.globalPool()
	b.fc("fc", 1000)
	return b
}

// MobileNet builds the 28-layer MobileNetV1 (width multiplier 1.0):
// a 3x3 stem convolution, 13 depth-wise separable pairs and the final FC.
func MobileNet() *Network { return mobileNet().build() }

func mobileNet() *netBuilder {
	b := newNet("MobileNet", 224, 224, 3)
	b.conv("conv1", 3, 32, 2, 1)
	sep := func(i, f, s int) {
		b.dw(fmt.Sprintf("dw%d", i), 3, s, 1)
		b.pw(fmt.Sprintf("pw%d", i), f)
	}
	sep(1, 64, 1)
	sep(2, 128, 2)
	sep(3, 128, 1)
	sep(4, 256, 2)
	sep(5, 256, 1)
	sep(6, 512, 2)
	for i := 7; i <= 11; i++ {
		sep(i, 512, 1)
	}
	sep(12, 1024, 2)
	sep(13, 1024, 1)
	b.globalPool()
	b.fc("fc", 1000)
	return b
}

// invertedBlock appends one inverted-residual block: an optional expansion
// point-wise convolution (expansion factor t), a k x k depth-wise
// convolution with the given stride, optional squeeze-and-excite FC pair
// (seRatioDen > 0 divides the block input channels) and the projection
// point-wise convolution to c output channels.
func invertedBlock(b *netBuilder, name string, t, k, c, s, seRatioDen int) {
	in := b.shapeNow().c
	exp := in * t
	if t > 1 {
		b.pw(name+"_exp", exp)
	}
	b.dw(name+"_dw", k, s, k/2)
	if seRatioDen > 0 {
		sq := in / seRatioDen
		if sq < 1 {
			sq = 1
		}
		// Squeeze-and-excite works on globally pooled 1x1xexp activations,
		// hence two FC layers (this is why Table 2 lists FC for these nets).
		after := b.shapeNow()
		b.globalPool()
		b.fc(name+"_se1", sq)
		b.fc(name+"_se2", exp)
		b.restore(after)
	}
	b.pw(name+"_proj", c)
}

// MobileNetV2 builds the 53-layer MobileNetV2 (Sandler et al.): stem
// convolution, 17 inverted-residual blocks, the 1280-channel head
// point-wise convolution and the final FC.
func MobileNetV2() *Network { return mobileNetV2().build() }

func mobileNetV2() *netBuilder {
	b := newNet("MobileNetV2", 224, 224, 3)
	b.conv("conv1", 3, 32, 2, 1)
	cfg := []struct{ t, c, n, s int }{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	for bi, c := range cfg {
		for i := 0; i < c.n; i++ {
			s := 1
			if i == 0 {
				s = c.s
			}
			in := b.shapeNow()
			invertedBlock(b, fmt.Sprintf("b%d_%d", bi+1, i+1), c.t, 3, c.c, s, 0)
			// Stride-1 blocks with matching channels carry the identity
			// shortcut: the block input is added into the next layer's input.
			if s == 1 && in.c == c.c {
				b.residual(in)
			}
		}
	}
	b.pw("head", 1280)
	b.globalPool()
	b.fc("fc", 1000)
	return b
}

// MnasNet builds the 53-layer MnasNet-B1 (Tan et al.): stem convolution, a
// separable-convolution block, six MBConv stages mixing 3x3 and 5x5
// depth-wise kernels, the 1280-channel head and the final FC.
func MnasNet() *Network { return mnasNet().build() }

func mnasNet() *netBuilder {
	b := newNet("MnasNet", 224, 224, 3)
	b.conv("conv1", 3, 32, 2, 1)
	// SepConv block: depth-wise 3x3 + linear point-wise to 16 channels.
	b.dw("sep_dw", 3, 1, 1)
	b.pw("sep_pw", 16)
	stages := []struct{ t, k, c, n, s int }{
		{3, 3, 24, 3, 2},
		{3, 5, 40, 3, 2},
		{6, 5, 80, 3, 2},
		{6, 3, 96, 2, 1},
		{6, 5, 192, 4, 2},
		{6, 3, 320, 1, 1},
	}
	for si, st := range stages {
		for i := 0; i < st.n; i++ {
			s := 1
			if i == 0 {
				s = st.s
			}
			in := b.shapeNow()
			invertedBlock(b, fmt.Sprintf("s%d_%d", si+1, i+1), st.t, st.k, st.c, s, 0)
			if s == 1 && in.c == st.c {
				b.residual(in)
			}
		}
	}
	b.pw("head", 1280)
	b.globalPool()
	b.fc("fc", 1000)
	return b
}

// EfficientNetB0 builds the 82-layer EfficientNet-B0 (Tan & Le): stem
// convolution, seven MBConv stages with squeeze-and-excite (each SE module
// contributing two FC layers on globally-pooled activations), the
// 1280-channel head and the final FC.
func EfficientNetB0() *Network { return efficientNetB0().build() }

func efficientNetB0() *netBuilder {
	b := newNet("EfficientNetB0", 224, 224, 3)
	b.conv("conv1", 3, 32, 2, 1)
	stages := []struct{ t, k, c, n, s int }{
		{1, 3, 16, 1, 1},
		{6, 3, 24, 2, 2},
		{6, 5, 40, 2, 2},
		{6, 3, 80, 3, 2},
		{6, 5, 112, 3, 1},
		{6, 5, 192, 4, 2},
		{6, 3, 320, 1, 1},
	}
	for si, st := range stages {
		for i := 0; i < st.n; i++ {
			s := 1
			if i == 0 {
				s = st.s
			}
			in := b.shapeNow()
			invertedBlock(b, fmt.Sprintf("s%d_%d", si+1, i+1), st.t, st.k, st.c, s, 4)
			if s == 1 && in.c == st.c {
				b.residual(in)
			}
		}
	}
	b.pw("head", 1280)
	b.globalPool()
	b.fc("fc", 1000)
	return b
}

// inception appends one GoogLeNet inception module: the 1x1 branch, the 3x3
// branch (1x1 reduce + 3x3), the 5x5 branch (1x1 reduce + 5x5) and the
// pool-projection 1x1, all reading the module input; the tracked shape then
// becomes the channel concatenation of the four branch outputs.
func inception(b *netBuilder, name string, c1, c3r, c3, c5r, c5, cp int) {
	in := b.shapeNow()
	b.pw(name+"_1x1", c1)
	t1 := b.shapeNow()
	b.restore(in)
	b.pw(name+"_3x3r", c3r)
	b.conv(name+"_3x3", 3, c3, 1, 1)
	t3 := b.shapeNow()
	b.restore(in)
	b.pw(name+"_5x5r", c5r)
	b.conv(name+"_5x5", 5, c5, 1, 2)
	t5 := b.shapeNow()
	b.restore(in)
	b.pw(name+"_pool", cp)
	tp := b.shapeNow()
	b.merge(in.h, in.w, c1+c3+c5+cp, t1, t3, t5, tp)
}

// GoogLeNet builds the 64-layer GoogLeNet (Szegedy et al.): the stem, nine
// inception modules, both auxiliary classifiers (1x1 conv + two FCs each)
// and the final FC. Layer types are CV, PW and FC as in the paper's Table 2.
func GoogLeNet() *Network { return googLeNet().build() }

func googLeNet() *netBuilder {
	b := newNet("GoogLeNet", 224, 224, 3)
	b.conv("conv1", 7, 64, 2, 3)
	b.pool(3, 2, 1) // 112 -> 56
	b.pw("conv2_red", 64)
	b.conv("conv2", 3, 192, 1, 1)
	b.pool(3, 2, 1) // 56 -> 28

	inception(b, "i3a", 64, 96, 128, 16, 32, 32)
	inception(b, "i3b", 128, 128, 192, 32, 96, 64)
	b.pool(3, 2, 1) // 28 -> 14
	inception(b, "i4a", 192, 96, 208, 16, 48, 64)

	aux := func(name string, h, w, c int) {
		main := b.shapeNow()
		if main.h != h || main.w != w || main.c != c {
			panic(fmt.Sprintf("model: aux head %s expects %dx%dx%d input, tracked %dx%dx%d",
				name, h, w, c, main.h, main.w, main.c))
		}
		// Auxiliary head: 5x5 s3 average pool, 1x1 conv to 128, two FCs.
		b.pool(5, 3, 0)
		b.pw(name+"_conv", 128)
		b.flatten() // 4x4x128 -> 2048
		b.fc(name+"_fc1", 1024)
		b.fc(name+"_fc2", 1000)
		b.restore(main)
	}
	aux("aux1", 14, 14, 512)

	inception(b, "i4b", 160, 112, 224, 24, 64, 64)
	inception(b, "i4c", 128, 128, 256, 24, 64, 64)
	inception(b, "i4d", 112, 144, 288, 32, 64, 64)
	aux("aux2", 14, 14, 528)
	inception(b, "i4e", 256, 160, 320, 32, 128, 128)
	b.pool(3, 2, 1) // 14 -> 7
	inception(b, "i5a", 256, 160, 320, 32, 128, 128)
	inception(b, "i5b", 384, 192, 384, 48, 128, 128)
	b.globalPool()
	b.fc("fc", 1000)
	return b
}

// Tiny builds a small six-layer CNN on a 32x32x3 input. It is not part of
// the paper's Table 2 model set; it exists so the functional engine
// (cmd/smm-sim, examples) can execute a whole network in seconds.
func Tiny() *Network { return tiny().build() }

func tiny() *netBuilder {
	b := newNet("TinyCNN", 32, 32, 3)
	b.conv("conv1", 3, 16, 1, 1)
	b.dw("dw1", 3, 2, 1)
	b.pw("pw1", 32)
	b.conv("conv2", 3, 32, 2, 1)
	b.globalPool()
	b.fc("fc1", 64)
	b.fc("fc2", 10)
	return b
}
