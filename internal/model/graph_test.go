package model

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scratchmem/internal/layer"
	"scratchmem/internal/smmerr"
)

// graphBuiltinNames is every builder key once (tiny/tinycnn alias collapsed).
var graphBuiltinNames = []string{
	"EfficientNetB0", "GoogLeNet", "MnasNet", "MobileNet", "MobileNetV2",
	"ResNet18", "TinyCNN", "AlexNet", "VGG16",
}

// TestBuiltinGraphsValidateAndMatchNetworks: every builtin graph validates,
// carries exactly the layers of its linear counterpart, and the DAG-ness
// split is the architectural truth — inception/residual/SE models are
// genuine DAGs, plain CNN stacks remain chains.
func TestBuiltinGraphsValidateAndMatchNetworks(t *testing.T) {
	wantDAG := map[string]bool{
		"EfficientNetB0": true, "GoogLeNet": true, "MnasNet": true,
		"MobileNetV2": true, "ResNet18": true,
		"MobileNet": false, "TinyCNN": false, "AlexNet": false, "VGG16": false,
	}
	for _, name := range graphBuiltinNames {
		g, err := BuiltinGraph(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		n, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		ln := g.Network()
		if len(ln.Layers) != len(n.Layers) {
			t.Fatalf("%s: graph has %d layers, network %d", name, len(ln.Layers), len(n.Layers))
		}
		for i := range n.Layers {
			if ln.Layers[i] != n.Layers[i] {
				t.Fatalf("%s layer %d: graph %+v != network %+v", name, i, ln.Layers[i], n.Layers[i])
			}
		}
		if isDAG := !g.IsChain(); isDAG != wantDAG[name] {
			t.Errorf("%s: IsChain = %v, want %v", name, g.IsChain(), !wantDAG[name])
		}
	}
}

// TestFromNetworkRoundTripAndChain: lifting a linear network is lossless
// and always lands in the chain special case.
func TestFromNetworkRoundTripAndChain(t *testing.T) {
	for _, name := range graphBuiltinNames {
		n, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		g := FromNetwork(n)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !g.IsChain() {
			t.Errorf("%s: FromNetwork graph is not a chain", name)
		}
		back := g.Network()
		if back.Name != n.Name || len(back.Layers) != len(n.Layers) {
			t.Fatalf("%s: round trip lost shape", name)
		}
		for i := range n.Layers {
			if back.Layers[i] != n.Layers[i] {
				t.Fatalf("%s layer %d changed in round trip", name, i)
			}
		}
	}
}

// TestTopologyCSVsLoadAsGraphs: every shipped SCALE-Sim topology parses
// into a valid graph, with the flattened depth-wise layers retyped and
// GoogLeNet's inception joins recovered as concatenations.
func TestTopologyCSVsLoadAsGraphs(t *testing.T) {
	dir := filepath.Join("..", "..", "topologies")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantDW := map[string]int{
		"MobileNet.csv": 13, "MobileNetV2.csv": 17, "MnasNet.csv": 17,
		"EfficientNetB0.csv": 16, "TinyCNN.csv": 1,
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		g, err := ReadTopologyGraphCSV(strings.TrimSuffix(e.Name(), ".csv"), f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
		dw := 0
		for i := range g.Nodes {
			if g.Nodes[i].Layer.Kind == layer.DepthwiseConv {
				dw++
			}
		}
		if want, ok := wantDW[e.Name()]; ok && dw != want {
			t.Errorf("%s: recovered %d depth-wise layers, want %d", e.Name(), dw, want)
		}
	}
}

func TestGoogLeNetCSVRecoversInceptionJoins(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "topologies", "GoogLeNet.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := ReadTopologyGraphCSV("GoogLeNet", f)
	if err != nil {
		t.Fatal(err)
	}
	joins := 0
	for i := range g.Nodes {
		if len(g.Nodes[i].Inputs) >= 2 {
			joins++
		}
	}
	// 9 inception modules, each read by several branch heads plus the
	// module that follows: the CSV walk finds 34 concat reads.
	if joins != 34 {
		t.Errorf("recovered %d concatenation reads, want 34", joins)
	}
	if g.IsChain() {
		t.Error("GoogLeNet CSV graph claims to be a chain")
	}
}

// TestReadTopologyCSVRejectsDiscontinuity: a topology whose shapes cannot
// possibly flow into each other is a malformed model and must surface the
// typed taxonomy, not load silently.
func TestReadTopologyCSVRejectsDiscontinuity(t *testing.T) {
	bad := "Layer name,IFMAP Height,IFMAP Width,Filter Height,Filter Width,Channels,Num Filter,Strides,\n" +
		"conv1,32,32,3,3,3,16,1,\n" +
		"conv2,99,99,3,3,7,16,1,\n" // neither 16 channels nor any view of conv1
	_, err := ReadTopologyCSV("bad", strings.NewReader(bad))
	if err == nil {
		t.Fatal("discontinuous topology loaded")
	}
	if !errors.Is(err, smmerr.ErrBadModel) {
		t.Fatalf("error %v does not wrap ErrBadModel", err)
	}
	if _, err := ReadTopologyGraphCSV("bad", strings.NewReader(bad)); !errors.Is(err, smmerr.ErrBadModel) {
		t.Fatalf("graph reader error %v does not wrap ErrBadModel", err)
	}
}

func TestReadTopologyCSVRejectsMalformedRows(t *testing.T) {
	for name, body := range map[string]string{
		"short row":    "Layer name,IFMAP Height,IFMAP Width,Filter Height,Filter Width,Channels,Num Filter,Strides,\nconv1,32,32,3\n",
		"non-numeric":  "Layer name,IFMAP Height,IFMAP Width,Filter Height,Filter Width,Channels,Num Filter,Strides,\nconv1,32,32,3,3,x,16,1,\n",
		"zero filters": "Layer name,IFMAP Height,IFMAP Width,Filter Height,Filter Width,Channels,Num Filter,Strides,\nconv1,32,32,3,3,3,0,1,\n",
	} {
		if _, err := ReadTopologyCSV("bad", strings.NewReader(body)); err == nil {
			t.Errorf("%s: loaded", name)
		} else if !errors.Is(err, smmerr.ErrBadModel) {
			t.Errorf("%s: error %v does not wrap ErrBadModel", name, err)
		}
	}
}

// TestGraphJSONRoundTrip: the JSON graph format persists edges exactly, and
// legacy files without edge columns load as inferred chains.
func TestGraphJSONRoundTrip(t *testing.T) {
	g, err := BuiltinGraph("GoogLeNet")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraphJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nodes) != len(g.Nodes) {
		t.Fatalf("round trip: %d nodes, want %d", len(back.Nodes), len(g.Nodes))
	}
	for i := range g.Nodes {
		a, b := &g.Nodes[i], &back.Nodes[i]
		if a.Layer != b.Layer {
			t.Fatalf("node %d layer changed", i)
		}
		if strings.Join(a.Inputs, "|") != strings.Join(b.Inputs, "|") ||
			strings.Join(a.Residual, "|") != strings.Join(b.Residual, "|") {
			t.Fatalf("node %d edges changed: %v/%v vs %v/%v", i, a.Inputs, a.Residual, b.Inputs, b.Residual)
		}
	}

	// A legacy linear JSON file (no edge columns) loads as a chain.
	n, err := Builtin("MobileNet")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := n.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lg, err := ReadGraphJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !lg.IsChain() {
		t.Error("legacy linear JSON did not load as a chain")
	}
}

// TestGraphValidateRejects: the structural failure modes all wrap
// ErrBadModel.
func TestGraphValidateRejects(t *testing.T) {
	conv := func(name string, ci, f int) layer.Layer {
		return layer.MustNew(name, layer.Conv, 8, 8, ci, 3, 3, f, 1, 1)
	}
	cases := map[string]*Graph{
		"unknown input": {Name: "g", Nodes: []GraphNode{
			{Layer: conv("a", 3, 8), Inputs: []string{"ghost"}},
		}},
		"forward read": {Name: "g", Nodes: []GraphNode{
			{Layer: conv("a", 3, 8), Inputs: []string{"b"}},
			{Layer: conv("b", 8, 8), Inputs: []string{"a"}},
		}},
		"channel mismatch": {Name: "g", Nodes: []GraphNode{
			{Layer: conv("a", 3, 8), Inputs: []string{"@in0"}},
			{Layer: conv("b", 99, 8), Inputs: []string{"a"}},
		}},
		"duplicate producer": {Name: "g", Nodes: []GraphNode{
			{Layer: conv("a", 3, 8), Inputs: []string{"@in0"}},
			{Layer: conv("a", 8, 8), Inputs: []string{"a"}},
		}},
		"external residual": {Name: "g", Nodes: []GraphNode{
			{Layer: conv("a", 3, 8), Inputs: []string{"@in0"}},
			{Layer: conv("b", 8, 8), Inputs: []string{"a"}, Residual: []string{"@in0"}},
		}},
	}
	for name, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		} else if !errors.Is(err, smmerr.ErrBadModel) {
			t.Errorf("%s: error %v does not wrap ErrBadModel", name, err)
		}
	}
}
