package model

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"scratchmem/internal/layer"
	"scratchmem/internal/smmerr"
)

// jsonLayer is the on-disk JSON form of one layer.
type jsonLayer struct {
	Name string `json:"name"`
	Type string `json:"type"`
	IH   int    `json:"ih"`
	IW   int    `json:"iw"`
	CI   int    `json:"ci"`
	FH   int    `json:"fh"`
	FW   int    `json:"fw"`
	F    int    `json:"f"`
	S    int    `json:"s"`
	P    int    `json:"p"`
}

type jsonNetwork struct {
	Name   string      `json:"name"`
	Layers []jsonLayer `json:"layers"`
}

// toJSON converts a network to its on-disk JSON form. Struct field order is
// fixed, so every serialisation of the same network is byte-identical — the
// property the content-addressed cache keys depend on.
func (n *Network) toJSON() jsonNetwork {
	jn := jsonNetwork{Name: n.Name, Layers: make([]jsonLayer, len(n.Layers))}
	for i, l := range n.Layers {
		jn.Layers[i] = jsonLayer{
			Name: l.Name, Type: l.Kind.String(),
			IH: l.IH, IW: l.IW, CI: l.CI, FH: l.FH, FW: l.FW, F: l.F, S: l.S, P: l.P,
		}
	}
	return jn
}

// WriteJSON serialises the network as indented JSON.
func (n *Network) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(n.toJSON())
}

// CanonicalJSON returns the compact deterministic serialisation of a
// network: the same network always yields the same bytes, and a network
// reconstructed from those bytes serialises back to them. Content-addressed
// cache keys (scratchmem.PlanKey) hash this form.
func CanonicalJSON(n *Network) ([]byte, error) {
	return json.Marshal(n.toJSON())
}

// ReadJSON parses a network from its JSON form and validates it.
func ReadJSON(r io.Reader) (*Network, error) {
	var jn jsonNetwork
	if err := json.NewDecoder(r).Decode(&jn); err != nil {
		return nil, fmt.Errorf("model: decoding JSON: %w", err)
	}
	n := &Network{Name: jn.Name, Layers: make([]layer.Layer, len(jn.Layers))}
	for i, jl := range jn.Layers {
		kind, err := layer.ParseType(jl.Type)
		if err != nil {
			return nil, fmt.Errorf("model: layer %d (%s): %w", i+1, jl.Name, err)
		}
		l, err := layer.New(jl.Name, kind, jl.IH, jl.IW, jl.CI, jl.FH, jl.FW, jl.F, jl.S, jl.P)
		if err != nil {
			return nil, err
		}
		n.Layers[i] = l
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// topologyHeader is the SCALE-Sim v2 topology CSV header. The trailing
// empty column mirrors SCALE-Sim's own files, which end every row with a
// comma.
var topologyHeader = []string{
	"Layer name", "IFMAP Height", "IFMAP Width", "Filter Height", "Filter Width",
	"Channels", "Num Filter", "Strides", "",
}

// WriteTopologyCSV serialises the network in the SCALE-Sim topology format.
// The format has no padding or layer-type columns; depth-wise layers are
// written with Num Filter = 1 and padding information is lost (SCALE-Sim
// itself ignores padding, as the paper notes).
func (n *Network) WriteTopologyCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(topologyHeader); err != nil {
		return err
	}
	for _, l := range n.Layers {
		rec := []string{
			l.Name,
			strconv.Itoa(l.IH), strconv.Itoa(l.IW),
			strconv.Itoa(l.FH), strconv.Itoa(l.FW),
			strconv.Itoa(l.CI), strconv.Itoa(l.F), strconv.Itoa(l.S), "",
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTopologyCSV parses a SCALE-Sim topology CSV. Because the format
// carries no type or padding column, every layer is read as a dense
// convolution with zero padding; 1x1 layers become point-wise convolutions.
// Rows may carry the format's trailing empty column or omit it. Beyond
// per-layer validity the rows must be shape-continuous: every layer's ifmap
// must match a produced tensor under the InferGraph rules (exact, padding
// slack, pooled view, concatenation, flatten). Malformed rows and
// discontinuities yield errors wrapping smmerr.ErrBadModel.
func ReadTopologyCSV(name string, r io.Reader) (*Network, error) {
	n, err := readTopologyCSV(name, r)
	if err != nil {
		return nil, smmerr.BadModel(err)
	}
	// Continuity check only: the retyped graph is discarded so the returned
	// network round-trips byte-identically through WriteTopologyCSV.
	if _, err := inferGraph(n); err != nil {
		return nil, smmerr.BadModel(err)
	}
	return n, nil
}

func readTopologyCSV(name string, r io.Reader) (*Network, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // SCALE-Sim rows have a trailing comma
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("model: reading topology CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("model: empty topology CSV")
	}
	n := &Network{Name: name}
	for i, row := range rows {
		if i == 0 && len(row) > 0 && row[0] == topologyHeader[0] {
			continue // header
		}
		if len(row) < 8 {
			return nil, fmt.Errorf("model: topology row %d has %d fields, want >= 8", i+1, len(row))
		}
		vals := make([]int, 7)
		for j := 0; j < 7; j++ {
			v, err := strconv.Atoi(row[j+1])
			if err != nil {
				return nil, fmt.Errorf("model: topology row %d field %d: %w", i+1, j+2, err)
			}
			vals[j] = v
		}
		ih, iw, fh, fw, ci, f, s := vals[0], vals[1], vals[2], vals[3], vals[4], vals[5], vals[6]
		kind := layer.Conv
		if fh == 1 && fw == 1 {
			if ih == 1 && iw == 1 {
				kind = layer.FullyConnected
			} else {
				kind = layer.PointwiseConv
			}
		}
		l, err := layer.New(row[0], kind, ih, iw, ci, fh, fw, f, s, 0)
		if err != nil {
			return nil, err
		}
		n.Layers = append(n.Layers, l)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}
