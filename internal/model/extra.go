package model

import "fmt"

// The networks in this file are not part of the paper's Table 2 evaluation
// set; they are provided because a memory-management library is routinely
// pointed at the classic large-footprint CNNs, and their extreme
// filter-to-activation ratios exercise the policies differently from the
// paper's mobile-oriented models.

// AlexNet builds the 8-layer AlexNet in its torchvision formulation
// (ungrouped convolutions, 224x224x3 input): five convolutions and three
// fully-connected layers, ~61M parameters dominated by the first FC.
func AlexNet() *Network { return alexNet().build() }

func alexNet() *netBuilder {
	b := newNet("AlexNet", 224, 224, 3)
	b.conv("conv1", 11, 64, 4, 2)
	b.pool(3, 2, 0) // 55 -> 27
	b.conv("conv2", 5, 192, 1, 2)
	b.pool(3, 2, 0) // 27 -> 13
	b.conv("conv3", 3, 384, 1, 1)
	b.conv("conv4", 3, 256, 1, 1)
	b.conv("conv5", 3, 256, 1, 1)
	b.pool(3, 2, 0) // 13 -> 6
	b.flatten()     // 6x6x256 -> 9216
	b.fc("fc1", 4096)
	b.fc("fc2", 4096)
	b.fc("fc3", 1000)
	return b
}

// VGG16 builds the 16-layer VGG configuration D (224x224x3 input):
// thirteen 3x3 convolutions in five stages and three fully-connected
// layers, ~138M parameters.
func VGG16() *Network { return vgg16().build() }

func vgg16() *netBuilder {
	b := newNet("VGG16", 224, 224, 3)
	stage := func(idx, convs, f int) {
		for i := 1; i <= convs; i++ {
			b.conv(fmt.Sprintf("conv%d_%d", idx, i), 3, f, 1, 1)
		}
		b.pool(2, 2, 0)
	}
	stage(1, 2, 64)
	stage(2, 2, 128)
	stage(3, 3, 256)
	stage(4, 3, 512)
	stage(5, 3, 512)
	b.flatten() // 7x7x512 -> 25088
	b.fc("fc1", 4096)
	b.fc("fc2", 4096)
	b.fc("fc3", 1000)
	return b
}
