package model

import (
	"strings"
	"testing"
)

// FuzzReadJSON: arbitrary input must never panic, and any input the parser
// accepts must round-trip through WriteJSON.
func FuzzReadJSON(f *testing.F) {
	var seed strings.Builder
	if err := ResNet18().WriteJSON(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"name":"x","layers":[{"name":"l","type":"CV","ih":4,"iw":4,"ci":1,"fh":3,"fw":3,"f":2,"s":1,"p":1}]}`)
	f.Add(`{"name":"","layers":[]}`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, data string) {
		n, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must be a valid network and survive a round trip.
		if err := n.Validate(); err != nil {
			t.Fatalf("parser accepted invalid network: %v", err)
		}
		var buf strings.Builder
		if err := n.WriteJSON(&buf); err != nil {
			t.Fatalf("re-serialise failed: %v", err)
		}
		back, err := ReadJSON(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back.Layers) != len(n.Layers) {
			t.Fatalf("round trip lost layers: %d != %d", len(back.Layers), len(n.Layers))
		}
	})
}

// FuzzReadTopologyCSV: arbitrary CSV must never panic; accepted inputs must
// be valid networks.
func FuzzReadTopologyCSV(f *testing.F) {
	var seed strings.Builder
	if err := MobileNet().WriteTopologyCSV(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("conv1, 8, 8, 3, 3, 2, 4, 1,\n")
	f.Add("Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, Channels, Num Filter, Strides,\n")
	f.Add("a,b,c\n")
	f.Fuzz(func(t *testing.T, data string) {
		n, err := ReadTopologyCSV("fuzz", strings.NewReader(data))
		if err != nil {
			return
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("parser accepted invalid network: %v", err)
		}
	})
}
