// Package model represents whole neural networks as ordered lists of layers
// (the paper executes models layer-by-layer, serialising residual branches),
// provides builders for the six CNNs of the paper's Table 2, and reads and
// writes two on-disk descriptions: a JSON format and the SCALE-Sim topology
// CSV format, standing in for the paper's TensorFlow/PyTorch translator.
package model

import (
	"fmt"

	"scratchmem/internal/layer"
)

// Network is an ordered sequence of layers executed one after another.
type Network struct {
	Name   string
	Layers []layer.Layer
}

// Validate checks every layer and that the network is non-empty.
func (n *Network) Validate() error {
	if n.Name == "" {
		return fmt.Errorf("model: network has no name")
	}
	if len(n.Layers) == 0 {
		return fmt.Errorf("model: network %s has no layers", n.Name)
	}
	for i := range n.Layers {
		if err := n.Layers[i].Validate(); err != nil {
			return fmt.Errorf("model: %s layer %d: %w", n.Name, i+1, err)
		}
	}
	return nil
}

// TypeCounts returns how many layers of each type the network has.
func (n *Network) TypeCounts() map[layer.Type]int {
	c := make(map[layer.Type]int)
	for i := range n.Layers {
		c[n.Layers[i].Kind]++
	}
	return c
}

// Types returns the distinct layer types present, in the paper's CV, DW, PW,
// FC, PL order.
func (n *Network) Types() []layer.Type {
	c := n.TypeCounts()
	var out []layer.Type
	for _, t := range []layer.Type{layer.Conv, layer.DepthwiseConv, layer.PointwiseConv, layer.FullyConnected, layer.Projection} {
		if c[t] > 0 {
			out = append(out, t)
		}
	}
	return out
}

// Params returns the total weight count of the network in elements.
func (n *Network) Params() int64 {
	var p int64
	for i := range n.Layers {
		p += n.Layers[i].FilterElems()
	}
	return p
}

// MACs returns the total multiply-accumulate count for one inference.
func (n *Network) MACs() int64 {
	var m int64
	for i := range n.Layers {
		m += n.Layers[i].MACs()
	}
	return m
}

// MinTransfers returns the theoretical minimum off-chip traffic in elements
// (each ifmap, filter and ofmap element moved exactly once, no inter-layer
// reuse), which all of intra-layer reuse and policies 1-3 achieve.
func (n *Network) MinTransfers(padded bool) int64 {
	var t int64
	for i := range n.Layers {
		l := &n.Layers[i]
		t += l.IfmapElems(padded) + l.FilterElems() + l.OfmapElems()
	}
	return t
}

// Builder constructs one of the built-in networks.
type Builder func() *Network

// builtins maps canonical lower-case names to builders.
var builtins = map[string]Builder{
	"efficientnetb0": EfficientNetB0,
	"googlenet":      GoogLeNet,
	"mnasnet":        MnasNet,
	"mobilenet":      MobileNet,
	"mobilenetv2":    MobileNetV2,
	"resnet18":       ResNet18,
	"tinycnn":        Tiny,
	"tiny":           Tiny,
	"alexnet":        AlexNet,
	"vgg16":          VGG16,
}

// BuiltinNames lists the built-in model names in the paper's Table 2 order.
func BuiltinNames() []string {
	return []string{"EfficientNetB0", "GoogLeNet", "MnasNet", "MobileNet", "MobileNetV2", "ResNet18"}
}

// Builtin returns the named built-in network (case-insensitive).
func Builtin(name string) (*Network, error) {
	b, ok := builtins[normalize(name)]
	if !ok {
		return nil, fmt.Errorf("model: unknown built-in model %q (have %v)", name, BuiltinNames())
	}
	return b(), nil
}

// graphBuilders maps canonical lower-case names to the graph-aware builder
// internals; same key set as builtins.
var graphBuilders = map[string]func() *netBuilder{
	"efficientnetb0": efficientNetB0,
	"googlenet":      googLeNet,
	"mnasnet":        mnasNet,
	"mobilenet":      mobileNet,
	"mobilenetv2":    mobileNetV2,
	"resnet18":       resNet18,
	"tinycnn":        tiny,
	"tiny":           tiny,
	"alexnet":        alexNet,
	"vgg16":          vgg16,
}

// BuiltinGraph returns the named built-in model as a tensor-lifetime graph
// (case-insensitive): the same layers as Builtin plus the true edge
// structure — inception concatenations, residual shortcuts,
// squeeze-and-excite side reads — that the linear Network serialises away.
func BuiltinGraph(name string) (*Graph, error) {
	b, ok := graphBuilders[normalize(name)]
	if !ok {
		return nil, fmt.Errorf("model: unknown built-in model %q (have %v)", name, BuiltinNames())
	}
	return b().buildGraph(), nil
}

// Builtins constructs all six paper networks in Table 2 order.
func Builtins() []*Network {
	out := make([]*Network, 0, len(builtins))
	for _, name := range BuiltinNames() {
		n, err := Builtin(name)
		if err != nil {
			panic(err) // unreachable: names come from BuiltinNames
		}
		out = append(out, n)
	}
	return out
}

func normalize(s string) string {
	b := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c == '-' || c == '_' || c == ' ' {
			continue
		}
		b = append(b, c)
	}
	return string(b)
}
