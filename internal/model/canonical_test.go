package model

import (
	"bytes"
	"testing"
)

// The content-addressed plan cache hashes CanonicalJSON, so serialisation
// must be deterministic and stable under a round trip: write → read → write
// must reproduce the exact bytes.
func TestJSONRoundTripByteIdentical(t *testing.T) {
	for _, n := range Builtins() {
		var first bytes.Buffer
		if err := n.WriteJSON(&first); err != nil {
			t.Fatalf("%s: write: %v", n.Name, err)
		}
		back, err := ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("%s: read: %v", n.Name, err)
		}
		var second bytes.Buffer
		if err := back.WriteJSON(&second); err != nil {
			t.Fatalf("%s: rewrite: %v", n.Name, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("%s: JSON round trip is not byte-identical", n.Name)
		}
	}
}

func TestCanonicalJSONStable(t *testing.T) {
	for _, n := range Builtins() {
		a, err := CanonicalJSON(n)
		if err != nil {
			t.Fatalf("%s: canonical: %v", n.Name, err)
		}
		b, _ := CanonicalJSON(n)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: repeated CanonicalJSON differs", n.Name)
		}
		back, err := ReadJSON(bytes.NewReader(a))
		if err != nil {
			t.Fatalf("%s: canonical form does not parse: %v", n.Name, err)
		}
		c, _ := CanonicalJSON(back)
		if !bytes.Equal(a, c) {
			t.Errorf("%s: canonical form not stable under round trip", n.Name)
		}
		if bytes.ContainsRune(a, '\n') {
			t.Errorf("%s: canonical form is not compact", n.Name)
		}
	}
}
