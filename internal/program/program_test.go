package program

import (
	"strings"
	"testing"

	"scratchmem/internal/core"
	"scratchmem/internal/model"
)

func compileModel(t *testing.T, name string, kb int) *Program {
	t.Helper()
	n, err := model.Builtin(name)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.NewPlanner(kb, core.MinAccesses).Heterogeneous(n)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCompileMatchesPlan: the lowered program's traffic equals the plan's
// analytical total for every model at the smallest paper size.
func TestCompileMatchesPlan(t *testing.T) {
	for _, name := range []string{"ResNet18", "MobileNet", "TinyCNN"} {
		n, _ := model.Builtin(name)
		plan, err := core.NewPlanner(64, core.MinAccesses).Heterogeneous(n)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Compile(plan)
		if err != nil {
			t.Fatal(err)
		}
		if p.AccessElems() != plan.AccessElems() {
			t.Errorf("%s: program traffic %d != plan %d", name, p.AccessElems(), plan.AccessElems())
		}
		if len(p.Layers) != len(plan.Layers) {
			t.Errorf("%s: %d layer programs, want %d", name, len(p.Layers), len(plan.Layers))
		}
		if p.Ops() == 0 {
			t.Errorf("%s: empty op stream", name)
		}
	}
}

// TestRunLengthEncoding: uniform sweeps compress massively — the encoded
// op count must be far below the expanded one.
func TestRunLengthEncoding(t *testing.T) {
	p := compileModel(t, "ResNet18", 64)
	var encoded int64
	for i := range p.Layers {
		encoded += int64(len(p.Layers[i].Ops))
	}
	if expanded := p.Ops(); encoded*4 > expanded {
		t.Errorf("RLE ineffective: %d encoded vs %d expanded ops", encoded, expanded)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := compileModel(t, "TinyCNN", 32)
	var sb strings.Builder
	if err := p.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.AccessElems() != p.AccessElems() || len(back.Layers) != len(p.Layers) {
		t.Error("round trip changed the program")
	}
	if back.Model != "TinyCNN" || back.Objective != "accesses" {
		t.Errorf("header lost: %+v", back)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := compileModel(t, "TinyCNN", 32)
	good := *p

	p.Layers[0].AccessElems++
	if err := p.Validate(); err == nil {
		t.Error("traffic mismatch accepted")
	}
	*p = good

	bad := p.Layers[0].Ops[0]
	p.Layers[0].Ops[0] = Op{Count: 1}
	if err := p.Validate(); err == nil {
		t.Error("empty op accepted")
	}
	p.Layers[0].Ops[0] = bad

	p.Layers[0].MemoryElems = 1 << 40
	if err := p.Validate(); err == nil {
		t.Error("over-capacity layer accepted")
	}

	if err := (&Program{}).Validate(); err == nil {
		t.Error("empty program accepted")
	}
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("corrupt JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader("{}")); err == nil {
		t.Error("empty JSON program accepted")
	}
}

// TestInterLayerFlagsSurvive: retention decisions appear in the program.
func TestInterLayerFlagsSurvive(t *testing.T) {
	n, _ := model.Builtin("MnasNet")
	pl := core.NewPlanner(1024, core.MinAccesses)
	pl.InterLayer = true
	plan, err := pl.Heterogeneous(n)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	keeps, consumes := 0, 0
	for i := range p.Layers {
		if p.Layers[i].KeepOfmap {
			keeps++
		}
		if p.Layers[i].ResidentIfmap {
			consumes++
		}
	}
	if keeps == 0 || keeps != consumes {
		t.Errorf("retention flags lost: %d keeps, %d consumes", keeps, consumes)
	}
}
