package smmerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestInfeasibleErrorWrapsSentinel(t *testing.T) {
	err := &InfeasibleError{Model: "ResNet18", Layer: "conv1", Need: 4096, Have: 1024}
	if !errors.Is(err, ErrInfeasible) {
		t.Error("InfeasibleError does not match ErrInfeasible")
	}
	var ie *InfeasibleError
	if !errors.As(err, &ie) || ie.Need != 4096 {
		t.Errorf("errors.As lost the value: %+v", ie)
	}
	want := "ResNet18 layer conv1 needs 4096 bytes even with fallback tiling, GLB has 1024"
	if err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
}

func TestBadModel(t *testing.T) {
	if BadModel(nil) != nil {
		t.Error("BadModel(nil) != nil")
	}
	cause := errors.New("negative stride")
	err := BadModel(cause)
	if !errors.Is(err, ErrBadModel) {
		t.Error("BadModel result does not match ErrBadModel")
	}
	if !errors.Is(err, cause) {
		t.Error("BadModel result does not preserve the cause")
	}
	if !errors.Is(BadModelf("field %q missing", "layers"), ErrBadModel) {
		t.Error("BadModelf result does not match ErrBadModel")
	}
}

func TestLayerError(t *testing.T) {
	if Layer(3, "conv2", nil) != nil {
		t.Error("Layer(nil) != nil")
	}
	inner := &InfeasibleError{Model: "m", Layer: "conv2", Need: 9, Have: 1}
	err := Layer(3, "conv2", inner)
	var le *LayerError
	if !errors.As(err, &le) || le.Index != 3 || le.Name != "conv2" {
		t.Fatalf("errors.As(LayerError) = %+v", le)
	}
	// The chain stays visible through the wrapper.
	if !errors.Is(err, ErrInfeasible) {
		t.Error("LayerError hides ErrInfeasible")
	}
	var ie *InfeasibleError
	if !errors.As(err, &ie) {
		t.Error("LayerError hides *InfeasibleError")
	}
	if got, want := err.Error(), fmt.Sprintf("layer 3 (conv2): %v", inner); got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
}

func TestIsCanceled(t *testing.T) {
	if !IsCanceled(fmt.Errorf("plan: %w", context.Canceled)) {
		t.Error("wrapped context.Canceled not recognised")
	}
	if !IsCanceled(Layer(0, "l", context.DeadlineExceeded)) {
		t.Error("wrapped context.DeadlineExceeded not recognised")
	}
	if IsCanceled(errors.New("boom")) {
		t.Error("ordinary error mis-classified as canceled")
	}
	if IsCanceled(nil) {
		t.Error("nil mis-classified as canceled")
	}
}
