// Package smmerr is the typed error taxonomy of the planning pipeline.
// Every long-running entry point (planning, simulation, DSE, compilation)
// classifies its failures into one of three families so that callers can
// dispatch on error *kind* with errors.Is/errors.As instead of string
// matching:
//
//   - ErrBadModel    — the request itself is wrong (invalid network or
//     accelerator configuration); an HTTP server maps it to 400, a CLI to
//     a usage-style exit code.
//   - ErrInfeasible  — the request is well-formed but no policy fits the
//     scratchpad, even with fallback tiling (422 / "no plan exists").
//   - context errors — cancellation and deadlines are never swallowed:
//     pipeline errors wrap ctx.Err() so errors.Is(err, context.Canceled)
//     and errors.Is(err, context.DeadlineExceeded) hold end to end.
//
// LayerError wraps any of the above with the layer index and name where the
// pipeline stopped, preserving the chain for errors.As.
//
// The package is a leaf: it imports only the standard library, so every
// implementation package (core, dse, simulate, scalesim, program, server)
// can use it without cycles. The public façade re-exports the types.
package smmerr

import (
	"context"
	"errors"
	"fmt"
)

// ErrInfeasible marks plans that cannot be scheduled within the scratchpad.
// InfeasibleError values wrap it, so errors.Is(err, ErrInfeasible) matches
// without naming the struct type.
var ErrInfeasible = errors.New("infeasible within the scratchpad")

// ErrBadModel marks invalid inputs: a malformed network description or an
// inconsistent accelerator configuration.
var ErrBadModel = errors.New("invalid model or configuration")

// InfeasibleError reports that a layer cannot be scheduled within the GLB
// even with fallback tiling.
type InfeasibleError struct {
	Model string
	Layer string
	Need  int64 // bytes required by the smallest tiling
	Have  int64 // GLB bytes
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("%s layer %s needs %d bytes even with fallback tiling, GLB has %d",
		e.Model, e.Layer, e.Need, e.Have)
}

// Unwrap makes errors.Is(err, ErrInfeasible) hold for every InfeasibleError.
func (e *InfeasibleError) Unwrap() error { return ErrInfeasible }

// BadModel wraps a validation error with ErrBadModel so callers can map it
// to "client error" without inspecting the message. nil stays nil.
func BadModel(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrBadModel, err)
}

// BadModelf builds a formatted ErrBadModel-wrapping error.
func BadModelf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadModel, fmt.Sprintf(format, args...))
}

// LayerError localises a pipeline failure to one layer of the network. It
// wraps the underlying cause, so errors.Is/As see through it — an
// infeasible layer is both a *LayerError and a *InfeasibleError.
type LayerError struct {
	// Index is the zero-based position of the layer in the network.
	Index int
	// Name is the layer's name.
	Name string
	// Err is the underlying failure.
	Err error
}

func (e *LayerError) Error() string {
	return fmt.Sprintf("layer %d (%s): %v", e.Index, e.Name, e.Err)
}

func (e *LayerError) Unwrap() error { return e.Err }

// Layer wraps err with the layer position where the pipeline stopped.
// nil stays nil, and a LayerError is never double-wrapped onto itself.
func Layer(index int, name string, err error) error {
	if err == nil {
		return nil
	}
	return &LayerError{Index: index, Name: name, Err: err}
}

// IsCanceled reports whether err stems from context cancellation or a
// deadline — the two cases a server distinguishes from real failures.
func IsCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
