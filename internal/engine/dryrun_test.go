package engine

import (
	"testing"

	"scratchmem/internal/core"
	"scratchmem/internal/model"
	"scratchmem/internal/policy"
	"scratchmem/internal/trace"
)

// TestDryRunValidatesWholeModels is the at-scale version of the estimator
// cross-check: for every layer of every Table-2 model, the heterogeneous
// plan's tile schedule — walked for real by the dry-run executor, including
// the scratchpad capacity checks — must move exactly the estimated number
// of elements.
func TestDryRunValidatesWholeModels(t *testing.T) {
	for _, kb := range []int{64, 1024} {
		pl := core.NewPlanner(kb, core.MinAccesses)
		for _, n := range model.Builtins() {
			p, err := pl.Heterogeneous(n)
			if err != nil {
				t.Fatalf("%s @%dkB: %v", n.Name, kb, err)
			}
			for i := range p.Layers {
				lp := &p.Layers[i]
				res, err := DryRun(&lp.Layer, &lp.Est, p.Cfg, nil)
				if err != nil {
					t.Fatalf("%s/%s @%dkB: %v", n.Name, lp.Layer.Name, kb, err)
				}
				if res.AccessIfmap != lp.Est.AccessIfmap ||
					res.AccessFilter != lp.Est.AccessFilter ||
					res.AccessOfmap != lp.Est.AccessOfmap {
					t.Errorf("%s/%s @%dkB (%s): executed (%d,%d,%d) != estimated (%d,%d,%d)",
						n.Name, lp.Layer.Name, kb, lp.Est.Policy,
						res.AccessIfmap, res.AccessFilter, res.AccessOfmap,
						lp.Est.AccessIfmap, lp.Est.AccessFilter, lp.Est.AccessOfmap)
				}
				if res.PeakElems > lp.Est.MemoryElems {
					t.Errorf("%s/%s @%dkB: peak %d > estimate %d",
						n.Name, lp.Layer.Name, kb, res.PeakElems, lp.Est.MemoryElems)
				}
				if res.Output != nil {
					t.Errorf("%s/%s: dry run produced a tensor", n.Name, lp.Layer.Name)
				}
			}
		}
	}
}

// TestDryRunLatencyObjective repeats the validation for latency-optimised
// plans (which prefer prefetching variants).
func TestDryRunLatencyObjective(t *testing.T) {
	pl := core.NewPlanner(256, core.MinLatency)
	n, _ := model.Builtin("MobileNetV2")
	p, err := pl.Heterogeneous(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Layers {
		lp := &p.Layers[i]
		res, err := DryRun(&lp.Layer, &lp.Est, p.Cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.AccessElems() != lp.Est.AccessElems {
			t.Errorf("%s (%s): executed %d != estimated %d",
				lp.Layer.Name, policy.Variant(lp.Est.Policy, lp.Est.Opts.Prefetch),
				res.AccessElems(), lp.Est.AccessElems)
		}
	}
}

// TestTraceEventsMatchCounters: the trace log's per-kind totals must equal
// the executor's counters, and compute events must sum to the layer MACs.
func TestTraceEventsMatchCounters(t *testing.T) {
	n, _ := model.Builtin("TinyCNN")
	pl := core.NewPlanner(32, core.MinAccesses)
	p, err := pl.Heterogeneous(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Layers {
		lp := &p.Layers[i]
		var log trace.Log
		res, err := DryRun(&lp.Layer, &lp.Est, p.Cfg, &log)
		if err != nil {
			t.Fatal(err)
		}
		tot := log.Totals()
		if tot[trace.LoadIfmap] != res.AccessIfmap ||
			tot[trace.LoadFilter] != res.AccessFilter ||
			tot[trace.StoreOfmap] != res.AccessOfmap {
			t.Errorf("%s: trace totals %v != counters (%d,%d,%d)",
				lp.Layer.Name, tot, res.AccessIfmap, res.AccessFilter, res.AccessOfmap)
		}
		if tot[trace.Compute] != lp.Layer.MACs() {
			t.Errorf("%s: compute events %d != MACs %d", lp.Layer.Name, tot[trace.Compute], lp.Layer.MACs())
		}
	}
}

// TestRunTracedMatchesRun: tracing must not perturb execution.
func TestRunTracedMatchesRun(t *testing.T) {
	l := testLayers()[0]
	cfg := policy.Default(256)
	in, w := operands(&l, 3)
	est := policy.Estimate(&l, policy.P3PerChannel, policy.Options{}, cfg)
	plain, err := Run(&l, &est, cfg, in, w)
	if err != nil {
		t.Fatal(err)
	}
	var log trace.Log
	traced, err := RunTraced(&l, &est, cfg, in, w, &log)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Output.Equal(traced.Output) || plain.AccessElems() != traced.AccessElems() {
		t.Error("tracing changed the execution")
	}
	if log.Len() == 0 {
		t.Error("no events recorded")
	}
}

// TestDryRunRejectsInvalid: validation still applies without tensors.
func TestDryRunRejectsInvalid(t *testing.T) {
	l := testLayers()[0]
	cfg := policy.Default(256)
	est := policy.Estimate(&l, policy.P1IfmapReuse, policy.Options{}, cfg)
	bad := cfg
	bad.GLBBytes = 0
	if _, err := DryRun(&l, &est, bad, nil); err == nil {
		t.Error("invalid config accepted")
	}
	tiny := policy.Default(0)
	tiny.GLBBytes = 16
	if _, err := DryRun(&l, &est, tiny, nil); err == nil {
		t.Error("over-capacity schedule accepted")
	}
}
