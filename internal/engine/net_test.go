package engine

import (
	"math/rand"
	"testing"

	"scratchmem/internal/core"
	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/tensor"
)

// sumPool collapses a tensor's spatial dims by summation — the
// deterministic integer stand-in for the global average pooling that sits
// between TinyCNN's last convolution and its classifier (pooling carries no
// weights, so the planner never schedules it; the runtime glue does it).
func sumPool(in *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(1, 1, in.C)
	for h := 0; h < in.H; h++ {
		for w := 0; w < in.W; w++ {
			for c := 0; c < in.C; c++ {
				out.Add(0, 0, c, in.At(h, w, c))
			}
		}
	}
	return out
}

// TestWholeNetworkInference pushes one input through every layer of TinyCNN
// under a real heterogeneous plan: each layer executes its planned policy
// on the functional engine, outputs feed forward (with pooling glue where
// the architecture needs it), and every stage must match the reference
// kernels bit for bit while moving exactly the estimated bytes. This is an
// actual inference run through the memory manager.
func TestWholeNetworkInference(t *testing.T) {
	for _, kb := range []int{16, 32, 128} {
		n, _ := model.Builtin("TinyCNN")
		plan, err := core.NewPlanner(kb, core.MinAccesses).Heterogeneous(n)
		if err != nil {
			t.Fatalf("@%dkB: %v", kb, err)
		}
		r := rand.New(rand.NewSource(2024))
		act := tensor.New(n.Layers[0].IH, n.Layers[0].IW, n.Layers[0].CI).Random(r)
		var totalRun, totalEst int64
		for i := range plan.Layers {
			lp := &plan.Layers[i]
			l := &lp.Layer
			// Pooling glue: if the activation's spatial dims do not match
			// the next layer's input, the architecture pooled in between.
			if act.H != l.IH || act.W != l.IW {
				if l.IH == 1 && l.IW == 1 && act.C == l.CI {
					act = sumPool(act)
				} else {
					t.Fatalf("@%dkB: shape break before %s: have %dx%dx%d, want %dx%dx%d",
						kb, l.Name, act.H, act.W, act.C, l.IH, l.IW, l.CI)
				}
			}
			var w *tensor.Filters
			if l.Kind == layer.DepthwiseConv {
				w = tensor.NewFilters(l.FH, l.FW, 1, l.CI).Random(r)
			} else {
				w = tensor.NewFilters(l.FH, l.FW, l.CI, l.F).Random(r)
			}
			res, err := Run(l, &lp.Est, plan.Cfg, act, w)
			if err != nil {
				t.Fatalf("@%dkB %s: %v", kb, l.Name, err)
			}
			var want *tensor.Tensor
			if l.Kind == layer.DepthwiseConv {
				want = tensor.DepthwiseConv2D(act, w, l.S, l.P)
			} else {
				want = tensor.Conv2D(act, w, l.S, l.P)
			}
			if !res.Output.Equal(want) {
				t.Fatalf("@%dkB %s: wrong output under %s", kb, l.Name, lp.Est.Policy)
			}
			if res.AccessElems() != lp.Est.AccessElems {
				t.Fatalf("@%dkB %s: traffic %d != estimate %d",
					kb, l.Name, res.AccessElems(), lp.Est.AccessElems)
			}
			totalRun += res.AccessElems()
			totalEst += lp.Est.AccessElems
			act = res.Output
		}
		if totalRun != plan.AccessElems() || totalEst != plan.AccessElems() {
			t.Errorf("@%dkB: network totals diverge: run %d, est %d, plan %d",
				kb, totalRun, totalEst, plan.AccessElems())
		}
		if act.H != 1 || act.W != 1 || act.C != 10 {
			t.Errorf("@%dkB: final logits shape %dx%dx%d, want 1x1x10", kb, act.H, act.W, act.C)
		}
	}
}

// TestEngineAt32Bit: element accounting is width-independent, but the GLB
// capacity in elements shrinks, so a 32-bit run must still verify exactly
// against its own (tighter) plan.
func TestEngineAt32Bit(t *testing.T) {
	n, _ := model.Builtin("TinyCNN")
	pl := core.NewPlanner(64, core.MinAccesses)
	pl.Cfg.DataWidthBits = 32
	plan, err := pl.Heterogeneous(n)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for i := range plan.Layers {
		lp := &plan.Layers[i]
		l := &lp.Layer
		in := tensor.New(l.IH, l.IW, l.CI).Random(r)
		var w *tensor.Filters
		if l.Kind == layer.DepthwiseConv {
			w = tensor.NewFilters(l.FH, l.FW, 1, l.CI).Random(r)
		} else {
			w = tensor.NewFilters(l.FH, l.FW, l.CI, l.F).Random(r)
		}
		res, err := Run(l, &lp.Est, pl.Cfg, in, w)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if res.AccessElems() != lp.Est.AccessElems {
			t.Errorf("%s: traffic %d != estimate %d", l.Name, res.AccessElems(), lp.Est.AccessElems)
		}
		if got := pl.Cfg.Bytes(res.PeakElems); got > pl.Cfg.GLBBytes {
			t.Errorf("%s: peak %d bytes exceeds 32-bit GLB", l.Name, got)
		}
	}
}
