package engine

import "scratchmem/internal/layer"

// dw reports whether the layer is depth-wise.
func (e *executor) dw() bool { return e.l.Kind == layer.DepthwiseConv }

// ifmapAll is the effective (possibly padded) ifmap footprint in elements.
func (e *executor) ifmapAll() int64 { return e.ihe * e.iwe * int64(e.l.CI) }

// execIntra loads everything, computes the whole layer, stores the ofmap.
func (e *executor) execIntra() error {
	if err := e.allocIfmapRegion(e.ifmapAll()); err != nil {
		return err
	}
	if err := e.buf.Resize("filter", e.l.FilterElems()); err != nil {
		return err
	}
	if err := e.allocOfmapRegion(e.l.OfmapElems()); err != nil {
		return err
	}
	load := e.loadIfmap(e.ifmapAll()) + e.loadFilter(e.l.FilterElems())
	for oh := 0; oh < e.l.OH(); oh++ {
		if err := e.canceled(); err != nil {
			return err
		}
		if e.dw() {
			e.computeRowDW(oh, 0, e.l.CI)
		} else {
			e.computeRow(oh, 0, e.l.F, 0, e.l.CI, false)
		}
	}
	store := e.storeOfmap(e.l.OfmapElems())
	e.phase(load, e.l.MACs(), store)
	return nil
}

// execP1 (ifmap reuse): all filters resident, sliding window streams
// height-wise, one ofmap row buffered. For depth-wise layers the single
// per-channel filter bank plays the role of "all filters".
func (e *executor) execP1() error {
	rowElems := e.iwe * int64(e.l.CI)
	if err := e.allocIfmapRegion(int64(e.l.FH) * rowElems); err != nil {
		return err
	}
	if err := e.buf.Resize("filter", e.l.FilterElems()); err != nil {
		return err
	}
	if err := e.allocOfmapRegion(int64(e.l.OW()) * int64(e.l.CO())); err != nil {
		return err
	}
	e.loadFilter(e.l.FilterElems())
	e.phase(e.l.FilterElems(), 0, 0)
	var s sweep
	for oh := 0; oh < e.l.OH(); oh++ {
		if err := e.canceled(); err != nil {
			return err
		}
		load := e.loadIfmap(s.windowRows(e, oh, oh == e.l.OH()-1) * rowElems)
		var macs int64
		if e.dw() {
			e.computeRowDW(oh, 0, e.l.CI)
			macs = int64(e.l.OW()) * int64(e.l.CI) * int64(e.l.FH) * int64(e.l.FW)
		} else {
			e.computeRow(oh, 0, e.l.F, 0, e.l.CI, false)
			macs = e.macsRow(0, e.l.F, 0, e.l.CI)
		}
		store := e.storeOfmap(int64(e.l.OW()) * int64(e.l.CO()))
		e.phase(load, macs, store)
	}
	return nil
}

// execP2 (filter reuse): whole ifmap resident, filters stream one by one,
// one ofmap channel buffered.
func (e *executor) execP2() error {
	if err := e.allocIfmapRegion(e.ifmapAll()); err != nil {
		return err
	}
	oneFilter := int64(e.l.FH) * int64(e.l.FW) * int64(e.l.CI)
	if e.dw() {
		oneFilter = int64(e.l.FH) * int64(e.l.FW)
	}
	if err := e.buf.Resize("filter", oneFilter); err != nil {
		return err
	}
	chElems := int64(e.l.OH()) * int64(e.l.OW())
	if err := e.allocOfmapRegion(chElems); err != nil {
		return err
	}
	load := e.loadIfmap(e.ifmapAll())
	e.phase(load, 0, 0)
	for f := 0; f < e.l.CO(); f++ {
		if err := e.canceled(); err != nil {
			return err
		}
		fl := e.loadFilter(oneFilter)
		var macs int64
		for oh := 0; oh < e.l.OH(); oh++ {
			if e.dw() {
				e.computeRowDW(oh, f, f+1)
			} else {
				e.computeRow(oh, f, f+1, 0, e.l.CI, false)
			}
		}
		if e.dw() {
			macs = chElems * int64(e.l.FH) * int64(e.l.FW)
		} else {
			macs = chElems * int64(e.l.FH) * int64(e.l.FW) * int64(e.l.CI)
		}
		store := e.storeOfmap(chElems)
		e.phase(fl, macs, store)
	}
	return nil
}

// execP3 (per-channel reuse): one ifmap channel streams height-wise against
// one channel of every filter; the whole ofmap accumulates on-chip (dense).
// Depth-wise layers process channels independently with a one-channel ofmap.
func (e *executor) execP3() error {
	if e.dw() {
		return e.perChannelDW()
	}
	if err := e.allocIfmapRegion(int64(e.l.FH) * e.iwe); err != nil {
		return err
	}
	chFilterElems := int64(e.l.FH) * int64(e.l.FW) * int64(e.l.F)
	if err := e.buf.Resize("filter", chFilterElems); err != nil {
		return err
	}
	if err := e.allocOfmapRegion(e.l.OfmapElems()); err != nil {
		return err
	}
	for c := 0; c < e.l.CI; c++ {
		if err := e.canceled(); err != nil {
			return err
		}
		fl := e.loadFilter(chFilterElems)
		e.phase(fl, 0, 0)
		var s sweep
		for oh := 0; oh < e.l.OH(); oh++ {
			load := e.loadIfmap(s.windowRows(e, oh, oh == e.l.OH()-1) * e.iwe)
			e.computeRow(oh, 0, e.l.F, c, c+1, true)
			e.phase(load, e.macsRow(0, e.l.F, c, c+1), 0)
		}
	}
	store := e.storeOfmap(e.l.OfmapElems())
	e.phase(0, 0, store)
	return nil
}

// perChannelDW executes a depth-wise layer channel by channel with minimal
// buffering (the shared shape of P3/P5/fallback on DW layers).
func (e *executor) perChannelDW() error {
	if err := e.allocIfmapRegion(int64(e.l.FH) * e.iwe); err != nil {
		return err
	}
	perFilter := int64(e.l.FH) * int64(e.l.FW)
	if err := e.buf.Resize("filter", perFilter); err != nil {
		return err
	}
	chElems := int64(e.l.OH()) * int64(e.l.OW())
	if err := e.allocOfmapRegion(chElems); err != nil {
		return err
	}
	for c := 0; c < e.l.CI; c++ {
		if err := e.canceled(); err != nil {
			return err
		}
		fl := e.loadFilter(perFilter)
		e.phase(fl, 0, 0)
		var s sweep
		for oh := 0; oh < e.l.OH(); oh++ {
			load := e.loadIfmap(s.windowRows(e, oh, oh == e.l.OH()-1) * e.iwe)
			e.computeRowDW(oh, c, c+1)
			macs := int64(e.l.OW()) * int64(e.l.FH) * int64(e.l.FW)
			e.phase(load, macs, 0)
		}
		store := e.storeOfmap(chElems)
		e.phase(0, 0, store)
	}
	return nil
}

// execP4 (partial ifmap reuse): filters stream in blocks of n; the sliding
// window re-streams the whole ifmap for every block (unless the window
// already spans it). Depth-wise layers degenerate to P1.
func (e *executor) execP4() error {
	if e.dw() {
		return e.execP1()
	}
	n := e.est.N
	rowElems := e.iwe * int64(e.l.CI)
	if err := e.allocIfmapRegion(int64(e.l.FH) * rowElems); err != nil {
		return err
	}
	perFilter := int64(e.l.FH) * int64(e.l.FW) * int64(e.l.CI)
	if err := e.buf.Resize("filter", perFilter*int64(n)); err != nil {
		return err
	}
	if err := e.allocOfmapRegion(int64(e.l.OW()) * int64(n)); err != nil {
		return err
	}
	spansAll := int64(e.l.FH) >= e.ihe
	ifmapDone := false
	for f0 := 0; f0 < e.l.F; f0 += n {
		if err := e.canceled(); err != nil {
			return err
		}
		f1 := min(f0+n, e.l.F)
		fl := e.loadFilter(perFilter * int64(f1-f0))
		e.phase(fl, 0, 0)
		var s sweep
		if spansAll && ifmapDone {
			s.loadedTo = e.ihe // window still resident from the first block
		}
		for oh := 0; oh < e.l.OH(); oh++ {
			load := e.loadIfmap(s.windowRows(e, oh, oh == e.l.OH()-1) * rowElems)
			e.computeRow(oh, f0, f1, 0, e.l.CI, false)
			store := e.storeOfmap(int64(e.l.OW()) * int64(f1-f0))
			e.phase(load, e.macsRow(f0, f1, 0, e.l.CI), store)
		}
		ifmapDone = true
	}
	return nil
}

// execP5 (partial per-channel reuse): filters stream in blocks of n, one
// channel at a time; an OH*OW*n ofmap block accumulates on-chip; the ifmap
// re-streams per block. Depth-wise layers degenerate to per-channel
// execution.
func (e *executor) execP5() error {
	if e.dw() {
		return e.perChannelDW()
	}
	n := e.est.N
	if err := e.allocIfmapRegion(int64(e.l.FH) * e.iwe); err != nil {
		return err
	}
	perChFilter := int64(e.l.FH) * int64(e.l.FW)
	if err := e.buf.Resize("filter", perChFilter*int64(n)); err != nil {
		return err
	}
	chElems := int64(e.l.OH()) * int64(e.l.OW())
	if err := e.allocOfmapRegion(chElems * int64(n)); err != nil {
		return err
	}
	spansAll := int64(e.l.FH) >= e.ihe && e.l.CI == 1
	ifmapDone := false
	for f0 := 0; f0 < e.l.F; f0 += n {
		if err := e.canceled(); err != nil {
			return err
		}
		f1 := min(f0+n, e.l.F)
		for c := 0; c < e.l.CI; c++ {
			fl := e.loadFilter(perChFilter * int64(f1-f0))
			e.phase(fl, 0, 0)
			var s sweep
			if spansAll && ifmapDone {
				s.loadedTo = e.ihe
			}
			for oh := 0; oh < e.l.OH(); oh++ {
				load := e.loadIfmap(s.windowRows(e, oh, oh == e.l.OH()-1) * e.iwe)
				e.computeRow(oh, f0, f1, c, c+1, true)
				e.phase(load, e.macsRow(f0, f1, c, c+1), 0)
			}
		}
		ifmapDone = true
		store := e.storeOfmap(chElems * int64(f1-f0))
		e.phase(0, 0, store)
	}
	return nil
}

// execFallback runs the last-resort tiling: one output row against one
// filter at a time, in the orientation the estimator chose (row-outer
// re-loads filters per row; filter-outer re-streams the ifmap per filter).
// Depth-wise layers take the minimal per-channel path.
func (e *executor) execFallback() error {
	if e.dw() {
		return e.perChannelDW()
	}
	rowElems := e.iwe * int64(e.l.CI)
	if err := e.allocIfmapRegion(int64(e.l.FH) * rowElems); err != nil {
		return err
	}
	perFilter := int64(e.l.FH) * int64(e.l.FW) * int64(e.l.CI)
	if err := e.buf.Resize("filter", perFilter); err != nil {
		return err
	}
	if err := e.allocOfmapRegion(int64(e.l.OW())); err != nil {
		return err
	}
	if e.est.FilterLoads > 1 {
		// Row-outer: the ifmap streams once; every output row re-loads all
		// filters one by one.
		var s sweep
		for oh := 0; oh < e.l.OH(); oh++ {
			if err := e.canceled(); err != nil {
				return err
			}
			load := e.loadIfmap(s.windowRows(e, oh, oh == e.l.OH()-1) * rowElems)
			e.phase(load, 0, 0)
			for f := 0; f < e.l.F; f++ {
				fl := e.loadFilter(perFilter)
				e.computeRow(oh, f, f+1, 0, e.l.CI, false)
				store := e.storeOfmap(int64(e.l.OW()))
				e.phase(fl, e.macsRow(f, f+1, 0, e.l.CI), store)
			}
		}
		return nil
	}
	// Filter-outer: filters load once each; the ifmap re-streams per filter.
	for f := 0; f < e.l.F; f++ {
		if err := e.canceled(); err != nil {
			return err
		}
		fl := e.loadFilter(perFilter)
		e.phase(fl, 0, 0)
		var s sweep
		for oh := 0; oh < e.l.OH(); oh++ {
			load := e.loadIfmap(s.windowRows(e, oh, oh == e.l.OH()-1) * rowElems)
			e.computeRow(oh, f, f+1, 0, e.l.CI, false)
			store := e.storeOfmap(int64(e.l.OW()))
			e.phase(load, e.macsRow(f, f+1, 0, e.l.CI), store)
		}
	}
	return nil
}
