package engine

import "scratchmem/internal/policy"

// SerialCycles models the no-prefetch execution of a phase list: every DMA
// byte and every MAC strictly serialise. It reproduces the estimator's
// no-prefetch latency (compute + transfer) when traffic totals agree.
func SerialCycles(phases []Phase, cfg policy.Config) int64 {
	var loadE, storeE, macs int64
	for _, p := range phases {
		loadE += p.LoadElems
		storeE += p.StoreElems
		macs += p.MACs
	}
	bw := int64(cfg.DRAMBytesPerCycle)
	transfer := (cfg.Bytes(loadE+storeE) + bw - 1) / bw
	compute := (macs + cfg.MACsPerCycle() - 1) / cfg.MACsPerCycle()
	return transfer + compute
}

// PipelinedCycles models double-buffered execution: each phase's compute
// starts once its load has landed and the previous compute finished; stores
// are deferred and drained opportunistically (a real DMA engine reorders
// them into load gaps), so they bound the schedule only through the shared
// port's total capacity and the final store that must trail the last
// compute. This is the executable counterpart of the estimator's
// fill + max(compute, transfer) + drain approximation. The timelines
// advance at continuous rates (DMA is byte-granular, the PE array retires
// MACs every cycle), so per-phase quantisation does not inflate tiny
// schedules.
func PipelinedCycles(phases []Phase, cfg policy.Config) int64 {
	bw := float64(cfg.DRAMBytesPerCycle)
	mac := float64(cfg.MACsPerCycle())
	var loads, comp, totalDMA, lastStore float64
	for _, p := range phases {
		loads += float64(cfg.Bytes(p.LoadElems)) / bw
		start := loads
		if comp > start {
			start = comp
		}
		comp = start + float64(p.MACs)/mac
		totalDMA += float64(cfg.Bytes(p.LoadElems)+cfg.Bytes(p.StoreElems)) / bw
		if p.StoreElems > 0 {
			lastStore = float64(cfg.Bytes(p.StoreElems)) / bw
		}
	}
	t := comp + lastStore
	if totalDMA > t {
		t = totalDMA
	}
	return int64(t + 0.9999999)
}
