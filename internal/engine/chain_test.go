package engine

import (
	"math/rand"
	"testing"

	"scratchmem/internal/glb"
	"scratchmem/internal/layer"
	"scratchmem/internal/policy"
	"scratchmem/internal/tensor"
)

// TestInterLayerChainExecution runs a producer/consumer layer pair the way
// the planner's inter-layer reuse schedules them: the producer keeps its
// ofmap on-chip (no store), the consumer reads it as a resident ifmap (no
// load), and the end-to-end numerics must equal running the two layers
// independently through the references. The combined residency must also
// fit the GLB: the producer's retained ofmap plus the consumer's working
// tiles, which is exactly what the consumer's memory estimate covers.
func TestInterLayerChainExecution(t *testing.T) {
	cfg := policy.Default(64)
	r := rand.New(rand.NewSource(21))

	// Producer: 12x12x4 conv -> 12x12x6; consumer: 3x3 conv on 12x12x6.
	l1 := layer.MustNew("prod", layer.Conv, 12, 12, 4, 3, 3, 6, 1, 1)
	l2 := layer.MustNew("cons", layer.Conv, 12, 12, 6, 3, 3, 8, 1, 1)

	in := tensor.New(l1.IH, l1.IW, l1.CI).Random(r)
	w1 := tensor.NewFilters(l1.FH, l1.FW, l1.CI, l1.F).Random(r)
	w2 := tensor.NewFilters(l2.FH, l2.FW, l2.CI, l2.F).Random(r)

	// Reference: plain chained convolutions.
	mid := tensor.Conv2D(in, w1, l1.S, l1.P)
	want := tensor.Conv2D(mid, w2, l2.S, l2.P)

	// Producer executes with KeepOfmap under a policy that retains the
	// whole ofmap.
	est1 := policy.Estimate(&l1, policy.P3PerChannel, policy.Options{KeepOfmap: true}, cfg)
	if !est1.Feasible {
		t.Fatalf("producer infeasible: %d bytes", est1.MemoryBytes)
	}
	res1, err := Run(&l1, &est1, cfg, in, w1)
	if err != nil {
		t.Fatal(err)
	}
	if res1.AccessOfmap != 0 {
		t.Fatalf("producer stored %d ofmap elems despite retention", res1.AccessOfmap)
	}
	if !res1.Output.Equal(mid) {
		t.Fatal("producer output wrong")
	}

	// Consumer executes with ResidentIfmap, feeding on the retained tensor.
	est2 := policy.Estimate(&l2, policy.P1IfmapReuse, policy.Options{ResidentIfmap: true}, cfg)
	if !est2.Feasible {
		t.Fatalf("consumer infeasible: %d bytes", est2.MemoryBytes)
	}
	res2, err := Run(&l2, &est2, cfg, res1.Output, w2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.AccessIfmap != 0 {
		t.Fatalf("consumer fetched %d ifmap elems despite residency", res2.AccessIfmap)
	}
	if !res2.Output.Equal(want) {
		t.Fatal("chained output wrong")
	}

	// The handoff must fit: the retained tensor plus the consumer's tiles
	// is the consumer's memory estimate, which must be within the GLB.
	handoff := glb.New(cfg.CapacityElems())
	if err := handoff.Alloc("resident", l1.OfmapElems()); err != nil {
		t.Fatalf("retained ofmap does not fit: %v", err)
	}
	if err := handoff.Alloc("consumer-tiles", est2.MemoryElems-l1.OfmapElems()); err != nil {
		t.Fatalf("consumer tiles do not fit beside the resident tensor: %v", err)
	}
	// Traffic saved by the transition = producer ofmap + consumer ifmap.
	plain1 := policy.Estimate(&l1, policy.P3PerChannel, policy.Options{}, cfg)
	plain2 := policy.Estimate(&l2, policy.P1IfmapReuse, policy.Options{}, cfg)
	saved := (plain1.AccessElems + plain2.AccessElems) - (res1.AccessElems() + res2.AccessElems())
	if want := l1.OfmapElems() + l2.IfmapElems(cfg.IncludePadding); saved != want {
		t.Errorf("transition saved %d elems, want %d", saved, want)
	}
}
