// Package engine executes a planned layer for real: it walks the exact tile
// schedule a policy prescribes, moving data between a modelled DRAM and a
// capacity-checked unified scratchpad (internal/glb) and performing the
// actual multiply-accumulates on int32 tensors. It is the ground truth the
// analytical estimators are tested against — the off-chip traffic counted
// here must equal policy.Estimate's numbers, the scratchpad high-water mark
// must stay within the estimated memory requirement, and the numerical
// output must match internal/tensor's reference convolutions bit-for-bit.
package engine

import (
	"context"
	"fmt"

	"scratchmem/internal/glb"
	"scratchmem/internal/layer"
	"scratchmem/internal/policy"
	"scratchmem/internal/tensor"
	"scratchmem/internal/trace"
)

// Phase is one schedule step: a DMA load, a compute burst and a DMA store.
// Phases drive the timing models below.
type Phase struct {
	LoadElems  int64
	MACs       int64
	StoreElems int64
}

// Result is the outcome of executing one layer.
type Result struct {
	Output *tensor.Tensor
	// Off-chip traffic by data type, in elements (padded ifmap elements are
	// counted when the configuration says so, exactly like the estimator).
	AccessIfmap  int64
	AccessFilter int64
	AccessOfmap  int64
	// PeakElems is the scratchpad high-water mark.
	PeakElems int64
	Phases    []Phase
}

// AccessElems returns the total executed off-chip traffic.
func (r *Result) AccessElems() int64 {
	return r.AccessIfmap + r.AccessFilter + r.AccessOfmap
}

// Run executes layer l under the policy instantiation est (as produced by
// policy.Estimate) with input activations in and weights w.
//
// Weight layout: dense layers take a bank of l.F filters of FH x FW x CI;
// depth-wise layers take l.CI filters of FH x FW x 1.
func Run(l *layer.Layer, est *policy.Result, cfg policy.Config, in *tensor.Tensor, w *tensor.Filters) (*Result, error) {
	return RunTraced(l, est, cfg, in, w, nil)
}

// RunTraced is Run with an optional trace log: every DMA transfer and
// compute burst is appended as a trace.Event.
func RunTraced(l *layer.Layer, est *policy.Result, cfg policy.Config, in *tensor.Tensor, w *tensor.Filters, log *trace.Log) (*Result, error) {
	return RunTracedCtx(context.Background(), l, est, cfg, in, w, log)
}

// RunTracedCtx is RunTraced with cancellation: the tile schedule checks ctx
// at its outer loop (per filter block, channel or output row, depending on
// the policy), so a canceled execution returns within one schedule step.
// The per-element arithmetic itself is never interrupted.
func RunTracedCtx(ctx context.Context, l *layer.Layer, est *policy.Result, cfg policy.Config, in *tensor.Tensor, w *tensor.Filters, log *trace.Log) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Batch > 1 {
		return nil, fmt.Errorf("engine: batched execution is not supported (batch %d)", cfg.Batch)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if in.H != l.IH || in.W != l.IW || in.C != l.CI {
		return nil, fmt.Errorf("engine: input %dx%dx%d does not match layer %s", in.H, in.W, in.C, l)
	}
	if l.Kind == layer.DepthwiseConv {
		if w.F != l.CI || w.CI != 1 || w.FH != l.FH || w.FW != l.FW {
			return nil, fmt.Errorf("engine: depth-wise weights %dx%dx%dx%d do not match layer %s",
				w.FH, w.FW, w.CI, w.F, l)
		}
	} else if w.F != l.F || w.CI != l.CI || w.FH != l.FH || w.FW != l.FW {
		return nil, fmt.Errorf("engine: weights %dx%dx%dx%d do not match layer %s", w.FH, w.FW, w.CI, w.F, l)
	}

	e := &executor{
		l: l, cfg: cfg, est: est, in: in, w: w,
		out:        tensor.New(l.OH(), l.OW(), l.CO()),
		buf:        glb.New(cfg.CapacityElems()),
		functional: true,
		log:        log,
		ctx:        ctx,
	}
	e.ihe, e.iwe = int64(l.IH), int64(l.IW)
	if cfg.IncludePadding {
		e.ihe, e.iwe = int64(l.PaddedIH()), int64(l.PaddedIW())
	}
	if reserve := est.DoubleBuffered.Total(); reserve > 0 {
		if err := e.buf.Alloc("prefetch-reserve", reserve); err != nil {
			return nil, err
		}
	}

	err := e.dispatch()
	if err != nil {
		return nil, err
	}
	e.res.Output = e.out
	e.res.PeakElems = e.buf.Peak()
	return &e.res, nil
}

// DryRun executes the policy's tile schedule without tensors or
// arithmetic: it walks the same loops as Run, moving only byte counts, so
// whole ImageNet-scale layers validate in microseconds. The Result carries
// traffic, phases and the scratchpad high-water mark; Output is nil. An
// optional trace log records every event.
func DryRun(l *layer.Layer, est *policy.Result, cfg policy.Config, log *trace.Log) (*Result, error) {
	return DryRunCtx(context.Background(), l, est, cfg, log)
}

// DryRunCtx is DryRun with cancellation, checked at the schedule's outer
// loop exactly like RunTracedCtx.
func DryRunCtx(ctx context.Context, l *layer.Layer, est *policy.Result, cfg policy.Config, log *trace.Log) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Batch > 1 {
		return nil, fmt.Errorf("engine: batched execution is not supported (batch %d)", cfg.Batch)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	e := &executor{
		l: l, cfg: cfg, est: est,
		buf: glb.New(cfg.CapacityElems()),
		log: log,
		ctx: ctx,
	}
	e.ihe, e.iwe = int64(l.IH), int64(l.IW)
	if cfg.IncludePadding {
		e.ihe, e.iwe = int64(l.PaddedIH()), int64(l.PaddedIW())
	}
	if reserve := est.DoubleBuffered.Total(); reserve > 0 {
		if err := e.buf.Alloc("prefetch-reserve", reserve); err != nil {
			return nil, err
		}
	}
	if err := e.dispatch(); err != nil {
		return nil, err
	}
	e.res.PeakElems = e.buf.Peak()
	return &e.res, nil
}

// executor carries the execution state of one layer.
type executor struct {
	l   *layer.Layer
	cfg policy.Config
	est *policy.Result
	in  *tensor.Tensor
	w   *tensor.Filters
	out *tensor.Tensor
	buf *glb.Buffer
	res Result
	// functional selects real arithmetic (Run) over schedule-only walking
	// (DryRun).
	functional bool
	// log, when non-nil, records every DMA transfer and compute burst.
	log *trace.Log
	// ctx, when non-nil, is polled at each schedule's outer loop so long
	// executions can be abandoned between tiles.
	ctx context.Context
	// Effective (possibly padded) ifmap extent — what the DMA streams.
	ihe, iwe int64
}

// canceled reports the executor's context error, if any; a nil context
// (legacy entry points) never cancels.
func (e *executor) canceled() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// dispatch runs the policy-specific executor.
func (e *executor) dispatch() error {
	switch e.est.Policy {
	case policy.IntraLayer:
		return e.execIntra()
	case policy.P1IfmapReuse:
		return e.execP1()
	case policy.P2FilterReuse:
		return e.execP2()
	case policy.P3PerChannel:
		return e.execP3()
	case policy.P4PartialIfmap:
		return e.execP4()
	case policy.P5PartialPerChannel:
		return e.execP5()
	case policy.FallbackTiled:
		return e.execFallback()
	default:
		return fmt.Errorf("engine: unknown policy %v", e.est.Policy)
	}
}

// loadIfmap counts an ifmap DMA load; resident ifmaps (inter-layer reuse)
// never touch DRAM.
func (e *executor) loadIfmap(elems int64) int64 {
	if e.est.Opts.ResidentIfmap {
		return 0
	}
	e.res.AccessIfmap += elems
	if e.log != nil {
		e.log.Add(e.l.Name, len(e.res.Phases), trace.LoadIfmap, elems)
	}
	return elems
}

func (e *executor) loadFilter(elems int64) int64 {
	e.res.AccessFilter += elems
	if e.log != nil {
		e.log.Add(e.l.Name, len(e.res.Phases), trace.LoadFilter, elems)
	}
	return elems
}

// storeOfmap counts an ofmap DMA store; retained ofmaps (inter-layer reuse)
// stay on-chip.
func (e *executor) storeOfmap(elems int64) int64 {
	if e.est.Opts.KeepOfmap {
		return 0
	}
	e.res.AccessOfmap += elems
	if e.log != nil {
		e.log.Add(e.l.Name, len(e.res.Phases), trace.StoreOfmap, elems)
	}
	return elems
}

func (e *executor) phase(load, macs, store int64) {
	if e.log != nil {
		e.log.Add(e.l.Name, len(e.res.Phases), trace.Compute, macs)
	}
	e.res.Phases = append(e.res.Phases, Phase{LoadElems: load, MACs: macs, StoreElems: store})
}

// allocIfmapRegion sizes the scratchpad ifmap region: the live (unpadded)
// footprint when the ifmap is resident, else the requested tile size.
func (e *executor) allocIfmapRegion(tileElems int64) error {
	if e.est.Opts.ResidentIfmap {
		tileElems = int64(e.l.IH) * int64(e.l.IW) * int64(e.l.CI)
	}
	return e.buf.Resize("ifmap", tileElems)
}

// allocOfmapRegion sizes the ofmap region: the whole ofmap when it must stay
// resident for the next layer, else the tile.
func (e *executor) allocOfmapRegion(tileElems int64) error {
	if e.est.Opts.KeepOfmap {
		tileElems = e.l.OfmapElems()
	}
	return e.buf.Resize("ofmap", tileElems)
}

// sweep tracks a height-wise sliding-window pass over the (padded) ifmap,
// charging each streamed row once. extendLast makes the final window flush
// the remaining rows so a full pass always streams the whole ifmap, exactly
// as the estimators assume.
type sweep struct {
	loadedTo int64
}

// windowRows returns how many new rows the window for output row oh brings
// in, advancing the sweep. The DMA streams the ifmap contiguously, so rows
// a large stride would skip are streamed through as well — every element of
// the ifmap crosses the boundary exactly once per pass, which is what the
// estimators charge.
func (s *sweep) windowRows(e *executor, oh int, last bool) int64 {
	hi := int64(oh)*int64(e.l.S) + int64(e.l.FH)
	if hi > e.ihe || last {
		hi = e.ihe
	}
	if hi <= s.loadedTo {
		return 0
	}
	n := hi - s.loadedTo
	s.loadedTo = hi
	return n
}

// macsRow is the MAC count of one output row restricted to a filter range
// and input-channel range.
func (e *executor) macsRow(f0, f1, c0, c1 int) int64 {
	return int64(e.l.OW()) * int64(f1-f0) * int64(e.l.FH) * int64(e.l.FW) * int64(c1-c0)
}

// computeRow computes (accumulate=false) or accumulates (accumulate=true)
// output row oh for dense filters [f0, f1) over input channels [c0, c1).
func (e *executor) computeRow(oh, f0, f1, c0, c1 int, accumulate bool) {
	if !e.functional {
		return
	}
	l := e.l
	for ow := 0; ow < l.OW(); ow++ {
		for f := f0; f < f1; f++ {
			var acc int32
			for kh := 0; kh < l.FH; kh++ {
				for kw := 0; kw < l.FW; kw++ {
					for c := c0; c < c1; c++ {
						acc += e.in.AtPadded(oh*l.S+kh, ow*l.S+kw, c, l.P) * e.w.At(f, kh, kw, c)
					}
				}
			}
			if accumulate {
				e.out.Add(oh, ow, f, acc)
			} else {
				e.out.Set(oh, ow, f, acc)
			}
		}
	}
}

// computeRowDW computes output row oh for depth-wise channels [c0, c1).
func (e *executor) computeRowDW(oh, c0, c1 int) {
	if !e.functional {
		return
	}
	l := e.l
	for ow := 0; ow < l.OW(); ow++ {
		for c := c0; c < c1; c++ {
			var acc int32
			for kh := 0; kh < l.FH; kh++ {
				for kw := 0; kw < l.FW; kw++ {
					acc += e.in.AtPadded(oh*l.S+kh, ow*l.S+kw, c, l.P) * e.w.At(c, kh, kw, 0)
				}
			}
			e.out.Set(oh, ow, c, acc)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
