package engine

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"scratchmem/internal/layer"
	"scratchmem/internal/policy"
	"scratchmem/internal/tensor"
)

// testLayers covers every layer type and the padding/stride corners.
func testLayers() []layer.Layer {
	return []layer.Layer{
		layer.MustNew("cv", layer.Conv, 10, 9, 3, 3, 3, 6, 1, 1),
		layer.MustNew("cv-s2", layer.Conv, 11, 11, 2, 5, 5, 4, 2, 2),
		layer.MustNew("cv-nopad", layer.Conv, 8, 8, 4, 3, 3, 5, 1, 0),
		layer.MustNew("pw", layer.PointwiseConv, 7, 7, 8, 1, 1, 10, 1, 0),
		layer.MustNew("pl", layer.Projection, 8, 8, 4, 1, 1, 6, 2, 0),
		layer.MustNew("dw", layer.DepthwiseConv, 9, 9, 5, 3, 3, 1, 1, 1),
		layer.MustNew("dw-s2", layer.DepthwiseConv, 10, 10, 3, 3, 3, 1, 2, 1),
		layer.FC("fc", 12, 9),
	}
}

// operands builds deterministic random activations and weights for a layer.
func operands(l *layer.Layer, seed int64) (*tensor.Tensor, *tensor.Filters) {
	r := rand.New(rand.NewSource(seed))
	in := tensor.New(l.IH, l.IW, l.CI).Random(r)
	var w *tensor.Filters
	if l.Kind == layer.DepthwiseConv {
		w = tensor.NewFilters(l.FH, l.FW, 1, l.CI).Random(r)
	} else {
		w = tensor.NewFilters(l.FH, l.FW, l.CI, l.F).Random(r)
	}
	return in, w
}

// reference computes the layer with the tensor-package oracle.
func reference(l *layer.Layer, in *tensor.Tensor, w *tensor.Filters) *tensor.Tensor {
	if l.Kind == layer.DepthwiseConv {
		return tensor.DepthwiseConv2D(in, w, l.S, l.P)
	}
	return tensor.Conv2D(in, w, l.S, l.P)
}

// TestAllPoliciesMatchReferenceAndEstimates is the central integration test:
// every policy, executed for real, must produce the reference output
// bit-for-bit, move exactly the estimated number of elements, and stay
// within the estimated scratchpad footprint.
func TestAllPoliciesMatchReferenceAndEstimates(t *testing.T) {
	cfg := policy.Default(1024)
	for _, l := range testLayers() {
		l := l
		in, w := operands(&l, 42)
		want := reference(&l, in, w)
		for _, id := range policy.IDs() {
			for _, pf := range []bool{false, true} {
				est := policy.Estimate(&l, id, policy.Options{Prefetch: pf}, cfg)
				if !est.Feasible {
					t.Fatalf("%s/%s pf=%v: infeasible at 1MB", l.Name, id, pf)
				}
				got, err := Run(&l, &est, cfg, in, w)
				if err != nil {
					t.Fatalf("%s/%s pf=%v: %v", l.Name, id, pf, err)
				}
				if !got.Output.Equal(want) {
					t.Errorf("%s/%s pf=%v: wrong output", l.Name, id, pf)
				}
				if got.AccessIfmap != est.AccessIfmap ||
					got.AccessFilter != est.AccessFilter ||
					got.AccessOfmap != est.AccessOfmap {
					t.Errorf("%s/%s pf=%v: executed accesses (%d,%d,%d) != estimated (%d,%d,%d)",
						l.Name, id, pf,
						got.AccessIfmap, got.AccessFilter, got.AccessOfmap,
						est.AccessIfmap, est.AccessFilter, est.AccessOfmap)
				}
				if got.PeakElems > est.MemoryElems {
					t.Errorf("%s/%s pf=%v: peak %d exceeds estimated memory %d",
						l.Name, id, pf, got.PeakElems, est.MemoryElems)
				}
			}
		}
	}
}

// TestSmallBlockP4P5 forces small filter blocks (many ifmap re-streams) and
// checks outputs and traffic still match.
func TestSmallBlockP4P5(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 12, 12, 4, 3, 3, 16, 1, 1)
	in, w := operands(&l, 7)
	want := reference(&l, in, w)
	// A GLB sized so that only a few filters fit per block.
	cfg := policy.Default(0)
	cfg.GLBBytes = 900
	for _, id := range []policy.ID{policy.P4PartialIfmap, policy.P5PartialPerChannel} {
		est := policy.Estimate(&l, id, policy.Options{}, cfg)
		if !est.Feasible {
			t.Fatalf("%s infeasible: needs %d bytes", id, est.MemoryBytes)
		}
		if est.N >= l.F {
			t.Fatalf("%s: n = %d, expected a small block", id, est.N)
		}
		if est.IfmapLoads < 2 {
			t.Fatalf("%s: expected multiple ifmap loads, got %d", id, est.IfmapLoads)
		}
		got, err := Run(&l, &est, cfg, in, w)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Output.Equal(want) {
			t.Errorf("%s: wrong output with n=%d", id, est.N)
		}
		if got.AccessElems() != est.AccessElems {
			t.Errorf("%s: executed %d accesses, estimated %d", id, got.AccessElems(), est.AccessElems)
		}
		if got.PeakElems > est.MemoryElems {
			t.Errorf("%s: peak %d > estimate %d", id, got.PeakElems, est.MemoryElems)
		}
	}
}

// TestFallbackBothOrientations checks the last-resort tiling in both loop
// orders.
func TestFallbackBothOrientations(t *testing.T) {
	cfg := policy.Default(1024)
	// Row-outer wins when OH*filters < F#*ifmap; filter-outer otherwise.
	rowOuter := layer.MustNew("ro", layer.Conv, 24, 24, 2, 3, 3, 3, 1, 1)   // tiny filters
	filterOuter := layer.MustNew("fo", layer.Conv, 5, 5, 2, 5, 5, 16, 1, 2) // tall filters, tiny ifmap
	for _, l := range []layer.Layer{rowOuter, filterOuter} {
		l := l
		in, w := operands(&l, 3)
		want := reference(&l, in, w)
		est := policy.FallbackEstimate(&l, policy.Options{}, cfg)
		got, err := Run(&l, &est, cfg, in, w)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Output.Equal(want) {
			t.Errorf("%s: wrong output", l.Name)
		}
		if got.AccessElems() != est.AccessElems {
			t.Errorf("%s: executed %d != estimated %d", l.Name, got.AccessElems(), est.AccessElems)
		}
	}
	// Check the two layers actually exercised different orientations.
	eRO := policy.FallbackEstimate(&rowOuter, policy.Options{}, cfg)
	eFO := policy.FallbackEstimate(&filterOuter, policy.Options{}, cfg)
	if eRO.FilterLoads <= 1 {
		t.Errorf("row-outer case chose filter loads = %d", eRO.FilterLoads)
	}
	if eFO.IfmapLoads <= 1 {
		t.Errorf("filter-outer case chose ifmap loads = %d", eFO.IfmapLoads)
	}
}

// TestInterLayerVariants: resident ifmap and kept ofmap change traffic, not
// numerics.
func TestInterLayerVariants(t *testing.T) {
	cfg := policy.Default(1024)
	l := layer.MustNew("c", layer.Conv, 10, 10, 4, 3, 3, 8, 1, 1)
	in, w := operands(&l, 11)
	want := reference(&l, in, w)
	for _, id := range policy.IDs() {
		for _, o := range []policy.Options{
			{ResidentIfmap: true},
			{KeepOfmap: true},
			{ResidentIfmap: true, KeepOfmap: true, Prefetch: true},
		} {
			est := policy.Estimate(&l, id, o, cfg)
			got, err := Run(&l, &est, cfg, in, w)
			if err != nil {
				t.Fatalf("%s %+v: %v", id, o, err)
			}
			if !got.Output.Equal(want) {
				t.Errorf("%s %+v: wrong output", id, o)
			}
			if o.ResidentIfmap && got.AccessIfmap != 0 {
				t.Errorf("%s %+v: resident ifmap fetched %d elems", id, o, got.AccessIfmap)
			}
			if o.KeepOfmap && got.AccessOfmap != 0 {
				t.Errorf("%s %+v: kept ofmap stored %d elems", id, o, got.AccessOfmap)
			}
			if got.AccessElems() != est.AccessElems {
				t.Errorf("%s %+v: executed %d != estimated %d", id, o, got.AccessElems(), est.AccessElems)
			}
			if got.PeakElems > est.MemoryElems {
				t.Errorf("%s %+v: peak %d > estimate %d", id, o, got.PeakElems, est.MemoryElems)
			}
		}
	}
}

// TestSerialTimingMatchesEstimator: the executed phase list, timed serially,
// reproduces the estimator's no-prefetch latency exactly (they share the
// traffic totals and rate arithmetic).
func TestSerialTimingMatchesEstimator(t *testing.T) {
	cfg := policy.Default(1024)
	for _, l := range testLayers() {
		l := l
		in, w := operands(&l, 5)
		for _, id := range policy.IDs() {
			est := policy.Estimate(&l, id, policy.Options{}, cfg)
			got, err := Run(&l, &est, cfg, in, w)
			if err != nil {
				t.Fatal(err)
			}
			if s := SerialCycles(got.Phases, cfg); s != est.LatencyCycles {
				t.Errorf("%s/%s: serial cycles %d != estimated %d", l.Name, id, s, est.LatencyCycles)
			}
		}
	}
}

// TestPipelinedTiming: overlap never hurts, never beats the compute bound,
// and lands near the estimator's prefetch latency.
func TestPipelinedTiming(t *testing.T) {
	cfg := policy.Default(1024)
	for _, l := range testLayers() {
		l := l
		in, w := operands(&l, 5)
		for _, id := range policy.IDs() {
			est := policy.Estimate(&l, id, policy.Options{Prefetch: true}, cfg)
			got, err := Run(&l, &est, cfg, in, w)
			if err != nil {
				t.Fatal(err)
			}
			pipe := PipelinedCycles(got.Phases, cfg)
			serial := SerialCycles(got.Phases, cfg)
			if pipe > serial+1 {
				t.Errorf("%s/%s: pipelined %d > serial %d", l.Name, id, pipe, serial)
			}
			if pipe < est.ComputeCycles {
				t.Errorf("%s/%s: pipelined %d beats compute bound %d", l.Name, id, pipe, est.ComputeCycles)
			}
			// The phase-level pipeline should land in the neighbourhood of
			// the estimator's fill+overlap+drain model. Allow slack for
			// per-phase rounding and scheduling detail on tiny layers.
			lo, hi := est.LatencyCycles*7/10, est.LatencyCycles*13/10+64
			if pipe < lo || pipe > hi {
				t.Errorf("%s/%s: pipelined %d outside [%d, %d] around estimate %d",
					l.Name, id, pipe, lo, hi, est.LatencyCycles)
			}
		}
	}
}

// TestQuickRandomLayers is the property test: on random small layers, a
// random policy variant executes to the reference result with exactly the
// estimated traffic.
func TestQuickRandomLayers(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		fh := 1 + rr.Intn(3)
		fw := 1 + rr.Intn(3)
		kind := layer.Conv
		ci := 1 + rr.Intn(6)
		ff := 1 + rr.Intn(8)
		if rr.Intn(4) == 0 {
			kind = layer.DepthwiseConv
			ff = 1
		}
		l, err := layer.New("q", kind,
			fh+rr.Intn(8), fw+rr.Intn(8), ci, fh, fw, ff, 1+rr.Intn(2), rr.Intn(2))
		if err != nil {
			return true // skip invalid random combos
		}
		in, w := operands(&l, seed)
		want := reference(&l, in, w)
		cfg := policy.Default(1024)
		id := policy.IDs()[rr.Intn(6)]
		o := policy.Options{Prefetch: rr.Intn(2) == 0}
		est := policy.Estimate(&l, id, o, cfg)
		got, err := Run(&l, &est, cfg, in, w)
		if err != nil {
			t.Logf("layer %s policy %s: %v", l, id, err)
			return false
		}
		if !got.Output.Equal(want) {
			t.Logf("layer %s policy %s: wrong output", l, id)
			return false
		}
		if got.AccessElems() != est.AccessElems || got.PeakElems > est.MemoryElems {
			t.Logf("layer %s policy %s: traffic %d vs %d, peak %d vs %d",
				l, id, got.AccessElems(), est.AccessElems, got.PeakElems, est.MemoryElems)
			return false
		}
		return true
	}
	cfgq := &quick.Config{
		MaxCount: 120,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	if err := quick.Check(f, cfgq); err != nil {
		t.Error(err)
	}
}

// TestRunErrors: mismatched operands and invalid configs are rejected.
func TestRunErrors(t *testing.T) {
	cfg := policy.Default(64)
	l := layer.MustNew("c", layer.Conv, 8, 8, 4, 3, 3, 5, 1, 0)
	in, w := operands(&l, 1)
	est := policy.Estimate(&l, policy.P1IfmapReuse, policy.Options{}, cfg)

	wrongIn := tensor.New(8, 8, 3)
	if _, err := Run(&l, &est, cfg, wrongIn, w); err == nil {
		t.Error("mismatched input accepted")
	}
	wrongW := tensor.NewFilters(3, 3, 4, 4)
	if _, err := Run(&l, &est, cfg, in, wrongW); err == nil {
		t.Error("mismatched weights accepted")
	}
	badCfg := cfg
	badCfg.DataWidthBits = 0
	if _, err := Run(&l, &est, badCfg, in, w); err == nil {
		t.Error("invalid config accepted")
	}
	dw := layer.MustNew("dw", layer.DepthwiseConv, 8, 8, 4, 3, 3, 1, 1, 1)
	dwIn, _ := operands(&dw, 2)
	badDWW := tensor.NewFilters(3, 3, 2, 4)
	estDW := policy.Estimate(&dw, policy.P1IfmapReuse, policy.Options{}, cfg)
	if _, err := Run(&dw, &estDW, cfg, dwIn, badDWW); err == nil {
		t.Error("mismatched depth-wise weights accepted")
	}
}

// TestGLBOverflowDetected: running an estimate against a GLB it does not fit
// must fail loudly, not silently overrun.
func TestGLBOverflowDetected(t *testing.T) {
	big := policy.Default(1024)
	small := policy.Default(1)
	l := layer.MustNew("c", layer.Conv, 32, 32, 8, 3, 3, 16, 1, 1)
	in, w := operands(&l, 9)
	est := policy.Estimate(&l, policy.IntraLayer, policy.Options{}, big)
	if _, err := Run(&l, &est, small, in, w); err == nil {
		t.Error("intra-layer execution fit a 1kB GLB")
	}
}
