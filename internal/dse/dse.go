// Package dse implements the exhaustive tile-size design-space exploration
// that the paper's related work uses ([22, 33, 35] search tile shapes and
// loop orders to minimise off-chip traffic) and that the paper's lightweight
// policies replace. The search space generalises the six policies: the
// ifmap tile varies in height (sliding window or full) and channel depth,
// filters stream in blocks of n, and the ofmap either keeps whole blocks
// resident or spills row tiles with partial-sum traffic. Comparing the DSE
// optimum against the heterogeneous plan quantifies how near-optimal the
// paper's policy set is — at a small fraction of the planning cost (the
// paper's minutes-vs-hours argument, replayed against DSE instead of
// simulation).
package dse

import (
	"context"
	"sort"

	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/policy"
	"scratchmem/internal/progress"
	"scratchmem/internal/smmerr"
)

// Tiling is one point of the search space.
type Tiling struct {
	// N is the filter-block size (filters processed together).
	N int
	// TC is the channel-block depth of the ifmap/filter tiles.
	TC int
	// FullHeight keeps the whole (padded) ifmap height on-chip instead of
	// an FH-row sliding window.
	FullHeight bool
	// FullOfmap keeps the OH*OW*N output block resident (no partial-sum
	// spills); otherwise a single OW*N row is buffered and partial sums
	// spill once per extra channel block.
	FullOfmap bool
}

// Result is the cost of a tiling for one layer.
type Result struct {
	Tiling      Tiling
	MemoryElems int64
	AccessElems int64
	Feasible    bool
}

// Evaluate costs one tiling point under the loop order the policies use
// (filter blocks, then channel blocks, then the height sweep).
func Evaluate(l *layer.Layer, t Tiling, cfg policy.Config) Result {
	ihe, iwe := int64(l.IH), int64(l.IW)
	if cfg.IncludePadding {
		ihe, iwe = int64(l.PaddedIH()), int64(l.PaddedIW())
	}
	fh, fw := int64(l.FH), int64(l.FW)
	ci, f := int64(l.CI), int64(l.F)
	oh, ow, co := int64(l.OH()), int64(l.OW()), int64(l.CO())
	n, tc := int64(t.N), int64(t.TC)

	ifmapAll := ihe * iwe * ci
	filterAll := l.FilterElems()
	ofmapAll := oh * ow * co

	tileH := fh
	if t.FullHeight {
		tileH = ihe
	}
	iTile := tileH * iwe * tc
	fTile := fh * fw * tc * n
	oTile := ow * n
	if t.FullOfmap {
		oTile = oh * ow * n
	}
	mem := iTile + fTile + oTile

	xf := ceilDiv(f, n)
	xc := ceilDiv(ci, tc)

	// Ifmap: resident across filter blocks only when the tile holds the
	// whole tensor; otherwise it re-streams once per filter block.
	accI := xf * ifmapAll
	if (t.FullHeight || fh >= ihe) && tc == ci {
		accI = ifmapAll
	}
	accF := filterAll
	accO := ofmapAll
	if !t.FullOfmap && xc > 1 {
		// Partial sums spill and reload once per extra channel block.
		accO = ofmapAll * (2*xc - 1)
	}

	b := cfg.BatchSize()
	accI *= b
	accO *= b
	if !(t.FullHeight && tc == ci && n == f) { // filters resident only for whole-layer tiles
		// Filter residency across the batch mirrors the policy rule: blocks
		// held for a full sweep amortise; channel-sliced streams do not.
		if tc != ci {
			accF *= b
		}
	}

	return Result{
		Tiling:      t,
		MemoryElems: mem,
		AccessElems: accI + accF + accO,
		Feasible:    cfg.Bytes(mem) <= cfg.GLBBytes,
	}
}

// Best searches the tiling grid for the minimum-traffic feasible point.
// Depth-wise layers are channel-independent and already minimal under a
// one-channel sweep, so they return that point directly.
func Best(l *layer.Layer, cfg policy.Config) Result {
	r, _ := BestCtx(context.Background(), l, cfg)
	return r
}

// BestCtx is Best with cancellation: the grid walk checks ctx once per
// candidate filter-block size n (the outermost loop), so a canceled search
// returns within one n-column of grid evaluations.
//
// The walk prunes the grid without changing the answer. Two bounds apply:
//
//   - Traffic: a point's access count is at least ceil(F#/n) ifmap sweeps
//     (one, if the whole channel depth is resident) plus one filter load
//     plus one ofmap store. Cells whose lower bound strictly exceeds the
//     best traffic seen so far — seeded by evaluating the whole-layer tile
//     up front — cannot beat or tie the eventual optimum (the final best
//     never exceeds the bound), so skipping them preserves the exact
//     selection, tie-breaks included.
//   - Memory: a cell's smallest variant footprint grows monotonically in
//     both tc and n, so once it exceeds the GLB the rest of the tc column
//     — and, when even the first tc fails, all larger n — is infeasible
//     and would be discarded anyway.
func BestCtx(ctx context.Context, l *layer.Layer, cfg policy.Config) (Result, error) {
	if l.Kind == layer.DepthwiseConv {
		e := policy.Estimate(l, policy.P5PartialPerChannel, policy.Options{}, cfg)
		return Result{
			Tiling:      Tiling{N: 1, TC: 1, FullOfmap: false},
			MemoryElems: e.MemoryElems,
			AccessElems: e.AccessElems,
			Feasible:    e.Feasible,
		}, ctx.Err()
	}
	ihe, iwe := int64(l.IH), int64(l.IW)
	if cfg.IncludePadding {
		ihe, iwe = int64(l.PaddedIH()), int64(l.PaddedIW())
	}
	fh, fw := int64(l.FH), int64(l.FW)
	ci, f := int64(l.CI), int64(l.F)
	ow := int64(l.OW())
	b := cfg.BatchSize()
	ifmapAll := ihe * iwe * ci
	filterAll := l.FilterElems()
	ofmapAll := l.OfmapElems()
	lbBase := filterAll + b*ofmapAll
	minTileH := fh
	if ihe < fh {
		minTileH = ihe
	}

	// Seed the pruning bound with the whole-layer tile (always a grid
	// point): its traffic is the theoretical minimum whenever it fits, so
	// most of the grid prunes immediately on small layers.
	bound := int64(1) << 62
	for _, fullH := range boolBoth {
		for _, fullO := range boolBoth {
			r := Evaluate(l, Tiling{N: l.F, TC: l.CI, FullHeight: fullH, FullOfmap: fullO}, cfg)
			if r.Feasible && r.AccessElems < bound {
				bound = r.AccessElems
			}
		}
	}

	var best Result
	for _, n := range gridValues(l.F) {
		if err := ctx.Err(); err != nil {
			return best, err
		}
		nn := int64(n)
		colAccI := ceilDiv(f, nn) * ifmapAll * b // lower bound unless fully resident
		resAccI := ifmapAll * b                  // tc == ci can hold the ifmap
		anyFit := false
		for _, tc := range gridValues(l.CI) {
			tcc := int64(tc)
			// Smallest footprint any of the cell's four variants can have.
			minMem := minTileH*iwe*tcc + fh*fw*tcc*nn + ow*nn
			if cfg.Bytes(minMem) > cfg.GLBBytes {
				break // memory grows with tc: the rest of the column is infeasible
			}
			anyFit = true
			lb := colAccI
			if tcc == ci {
				lb = resAccI
			}
			if lb+lbBase > bound {
				continue // cannot beat or tie the incumbent
			}
			for _, fullH := range boolBoth {
				for _, fullO := range boolBoth {
					r := Evaluate(l, Tiling{N: n, TC: tc, FullHeight: fullH, FullOfmap: fullO}, cfg)
					if !r.Feasible {
						continue
					}
					if !best.Feasible ||
						r.AccessElems < best.AccessElems ||
						(r.AccessElems == best.AccessElems && r.MemoryElems < best.MemoryElems) {
						best = r
						if best.AccessElems < bound {
							bound = best.AccessElems
						}
					}
				}
			}
		}
		if !anyFit {
			break // memory grows with n too: no larger column can fit
		}
	}
	if !best.Feasible {
		// Return the smallest-footprint point so callers can report why.
		return Evaluate(l, Tiling{N: 1, TC: 1}, cfg), nil
	}
	return best, nil
}

var boolBoth = [2]bool{false, true}

// gridValues samples a dimension: every power of two up to max, the exact
// max, and a coarse linear sweep, deduplicated and sorted.
func gridValues(max int) []int {
	set := map[int]bool{1: true, max: true}
	for v := 2; v < max; v *= 2 {
		set[v] = true
	}
	step := max / 16
	if step < 1 {
		step = 1
	}
	for v := step; v < max; v += step {
		set[v] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		if v >= 1 && v <= max {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// NetworkAccessElems sums the DSE optimum across a network's layers,
// reporting whether every layer was feasible.
func NetworkAccessElems(n *model.Network, cfg policy.Config) (int64, bool) {
	total, ok, _ := NetworkAccessElemsCtx(context.Background(), n, cfg, nil)
	return total, ok
}

// NetworkAccessElemsCtx is NetworkAccessElems with cancellation and
// observation: ctx is checked per layer and per candidate n inside the grid
// search, and one progress event is emitted per finished layer with the
// running traffic total. A cancellation error wraps ctx.Err() and names the
// layer reached.
func NetworkAccessElemsCtx(ctx context.Context, n *model.Network, cfg policy.Config, prog progress.Func) (int64, bool, error) {
	var total int64
	ok := true
	// BestCtx is a pure function of (shape, cfg), so repeated layer shapes
	// (ResNet blocks, inverted-residual stacks) search the grid once.
	seen := make(map[policy.LayerKey]Result, len(n.Layers))
	for i := range n.Layers {
		if err := ctx.Err(); err != nil {
			return total, false, smmerr.Layer(i, n.Layers[i].Name, err)
		}
		k := policy.KeyOf(&n.Layers[i])
		r, hit := seen[k]
		if !hit {
			var err error
			r, err = BestCtx(ctx, &n.Layers[i], cfg)
			if err != nil {
				return total, false, smmerr.Layer(i, n.Layers[i].Name, err)
			}
			seen[k] = r
		}
		total += r.AccessElems
		ok = ok && r.Feasible
		prog.Emit(progress.Event{Phase: "dse", Index: i, Total: len(n.Layers), Name: n.Layers[i].Name,
			AccessElems: total})
	}
	return total, ok, nil
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
