// Package dse implements the exhaustive tile-size design-space exploration
// that the paper's related work uses ([22, 33, 35] search tile shapes and
// loop orders to minimise off-chip traffic) and that the paper's lightweight
// policies replace. The search space generalises the six policies: the
// ifmap tile varies in height (sliding window or full) and channel depth,
// filters stream in blocks of n, and the ofmap either keeps whole blocks
// resident or spills row tiles with partial-sum traffic. Comparing the DSE
// optimum against the heterogeneous plan quantifies how near-optimal the
// paper's policy set is — at a small fraction of the planning cost (the
// paper's minutes-vs-hours argument, replayed against DSE instead of
// simulation).
package dse

import (
	"context"
	"sort"

	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/policy"
	"scratchmem/internal/progress"
	"scratchmem/internal/smmerr"
)

// Tiling is one point of the search space.
type Tiling struct {
	// N is the filter-block size (filters processed together).
	N int
	// TC is the channel-block depth of the ifmap/filter tiles.
	TC int
	// FullHeight keeps the whole (padded) ifmap height on-chip instead of
	// an FH-row sliding window.
	FullHeight bool
	// FullOfmap keeps the OH*OW*N output block resident (no partial-sum
	// spills); otherwise a single OW*N row is buffered and partial sums
	// spill once per extra channel block.
	FullOfmap bool
}

// Result is the cost of a tiling for one layer.
type Result struct {
	Tiling      Tiling
	MemoryElems int64
	AccessElems int64
	Feasible    bool
}

// Evaluate costs one tiling point under the loop order the policies use
// (filter blocks, then channel blocks, then the height sweep).
func Evaluate(l *layer.Layer, t Tiling, cfg policy.Config) Result {
	ihe, iwe := int64(l.IH), int64(l.IW)
	if cfg.IncludePadding {
		ihe, iwe = int64(l.PaddedIH()), int64(l.PaddedIW())
	}
	fh, fw := int64(l.FH), int64(l.FW)
	ci, f := int64(l.CI), int64(l.F)
	oh, ow, co := int64(l.OH()), int64(l.OW()), int64(l.CO())
	n, tc := int64(t.N), int64(t.TC)

	ifmapAll := ihe * iwe * ci
	filterAll := l.FilterElems()
	ofmapAll := oh * ow * co

	tileH := fh
	if t.FullHeight {
		tileH = ihe
	}
	iTile := tileH * iwe * tc
	fTile := fh * fw * tc * n
	oTile := ow * n
	if t.FullOfmap {
		oTile = oh * ow * n
	}
	mem := iTile + fTile + oTile

	xf := ceilDiv(f, n)
	xc := ceilDiv(ci, tc)

	// Ifmap: resident across filter blocks only when the tile holds the
	// whole tensor; otherwise it re-streams once per filter block.
	accI := xf * ifmapAll
	if (t.FullHeight || fh >= ihe) && tc == ci {
		accI = ifmapAll
	}
	accF := filterAll
	accO := ofmapAll
	if !t.FullOfmap && xc > 1 {
		// Partial sums spill and reload once per extra channel block.
		accO = ofmapAll * (2*xc - 1)
	}

	b := cfg.BatchSize()
	accI *= b
	accO *= b
	if !(t.FullHeight && tc == ci && n == f) { // filters resident only for whole-layer tiles
		// Filter residency across the batch mirrors the policy rule: blocks
		// held for a full sweep amortise; channel-sliced streams do not.
		if tc != ci {
			accF *= b
		}
	}

	return Result{
		Tiling:      t,
		MemoryElems: mem,
		AccessElems: accI + accF + accO,
		Feasible:    cfg.Bytes(mem) <= cfg.GLBBytes,
	}
}

// Best searches the tiling grid for the minimum-traffic feasible point.
// Depth-wise layers are channel-independent and already minimal under a
// one-channel sweep, so they return that point directly.
func Best(l *layer.Layer, cfg policy.Config) Result {
	r, _ := BestCtx(context.Background(), l, cfg)
	return r
}

// BestCtx is Best with cancellation: the grid walk checks ctx once per
// candidate filter-block size n (the outermost loop), so a canceled search
// returns within one n-column of grid evaluations.
func BestCtx(ctx context.Context, l *layer.Layer, cfg policy.Config) (Result, error) {
	if l.Kind == layer.DepthwiseConv {
		e := policy.Estimate(l, policy.P5PartialPerChannel, policy.Options{}, cfg)
		return Result{
			Tiling:      Tiling{N: 1, TC: 1, FullOfmap: false},
			MemoryElems: e.MemoryElems,
			AccessElems: e.AccessElems,
			Feasible:    e.Feasible,
		}, ctx.Err()
	}
	var best Result
	for _, n := range gridValues(l.F) {
		if err := ctx.Err(); err != nil {
			return best, err
		}
		for _, tc := range gridValues(l.CI) {
			for _, fullH := range []bool{false, true} {
				for _, fullO := range []bool{false, true} {
					r := Evaluate(l, Tiling{N: n, TC: tc, FullHeight: fullH, FullOfmap: fullO}, cfg)
					if !r.Feasible {
						continue
					}
					if !best.Feasible ||
						r.AccessElems < best.AccessElems ||
						(r.AccessElems == best.AccessElems && r.MemoryElems < best.MemoryElems) {
						best = r
					}
				}
			}
		}
	}
	if !best.Feasible {
		// Return the smallest-footprint point so callers can report why.
		return Evaluate(l, Tiling{N: 1, TC: 1}, cfg), nil
	}
	return best, nil
}

// gridValues samples a dimension: every power of two up to max, the exact
// max, and a coarse linear sweep, deduplicated and sorted.
func gridValues(max int) []int {
	set := map[int]bool{1: true, max: true}
	for v := 2; v < max; v *= 2 {
		set[v] = true
	}
	step := max / 16
	if step < 1 {
		step = 1
	}
	for v := step; v < max; v += step {
		set[v] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		if v >= 1 && v <= max {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// NetworkAccessElems sums the DSE optimum across a network's layers,
// reporting whether every layer was feasible.
func NetworkAccessElems(n *model.Network, cfg policy.Config) (int64, bool) {
	total, ok, _ := NetworkAccessElemsCtx(context.Background(), n, cfg, nil)
	return total, ok
}

// NetworkAccessElemsCtx is NetworkAccessElems with cancellation and
// observation: ctx is checked per layer and per candidate n inside the grid
// search, and one progress event is emitted per finished layer with the
// running traffic total. A cancellation error wraps ctx.Err() and names the
// layer reached.
func NetworkAccessElemsCtx(ctx context.Context, n *model.Network, cfg policy.Config, prog progress.Func) (int64, bool, error) {
	var total int64
	ok := true
	for i := range n.Layers {
		r, err := BestCtx(ctx, &n.Layers[i], cfg)
		if err != nil {
			return total, false, smmerr.Layer(i, n.Layers[i].Name, err)
		}
		total += r.AccessElems
		ok = ok && r.Feasible
		prog.Emit(progress.Event{Phase: "dse", Index: i, Total: len(n.Layers), Name: n.Layers[i].Name,
			AccessElems: total})
	}
	return total, ok, nil
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
