package dse

import (
	"testing"

	"scratchmem/internal/core"
	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/policy"
)

// TestDSESubsumesPolicies: the tiling grid contains every policy's shape,
// so the DSE optimum is never worse than any feasible policy estimate.
func TestDSESubsumesPolicies(t *testing.T) {
	layers := []layer.Layer{
		layer.MustNew("early", layer.Conv, 56, 56, 64, 3, 3, 64, 1, 1),
		layer.MustNew("late", layer.Conv, 7, 7, 512, 3, 3, 512, 1, 1),
		layer.MustNew("pw", layer.PointwiseConv, 14, 14, 512, 1, 1, 512, 1, 0),
		layer.FC("fc", 512, 1000),
	}
	for _, kb := range []int{64, 256, 1024} {
		cfg := policy.Default(kb)
		for _, l := range layers {
			l := l
			best := Best(&l, cfg)
			if !best.Feasible {
				t.Fatalf("%s @%dkB: DSE found nothing feasible", l.Name, kb)
			}
			for _, id := range policy.IDs() {
				e := policy.Estimate(&l, id, policy.Options{}, cfg)
				if e.Feasible && best.AccessElems > e.AccessElems {
					t.Errorf("%s @%dkB: DSE %d worse than %s %d",
						l.Name, kb, best.AccessElems, id, e.AccessElems)
				}
			}
			if best.AccessElems < policy.MinAccessElems(&l, cfg) {
				t.Errorf("%s @%dkB: DSE %d below the theoretical minimum", l.Name, kb, best.AccessElems)
			}
			if cfg.Bytes(best.MemoryElems) > cfg.GLBBytes {
				t.Errorf("%s @%dkB: DSE optimum violates the memory constraint", l.Name, kb)
			}
		}
	}
}

// TestDSEReachesMinimumWhenRoomy: with a huge buffer the optimum is the
// once-per-element minimum.
func TestDSEReachesMinimumWhenRoomy(t *testing.T) {
	cfg := policy.Default(8192)
	l := layer.MustNew("c", layer.Conv, 28, 28, 64, 3, 3, 128, 1, 1)
	best := Best(&l, cfg)
	if best.AccessElems != policy.MinAccessElems(&l, cfg) {
		t.Errorf("DSE = %d, want minimum %d", best.AccessElems, policy.MinAccessElems(&l, cfg))
	}
}

// TestHetNearDSE is the headline validation of the paper's design: across
// all six models at the smallest buffer, the heterogeneous policy plan
// stays within a small factor of the exhaustive DSE optimum — the
// lightweight policies cover the tiling frontier.
func TestHetNearDSE(t *testing.T) {
	for _, name := range model.BuiltinNames() {
		n, _ := model.Builtin(name)
		cfg := policy.Default(64)
		dseTotal, ok := NetworkAccessElems(n, cfg)
		if !ok {
			t.Fatalf("%s: DSE infeasible at 64kB", name)
		}
		het, err := core.NewPlanner(64, core.MinAccesses).Heterogeneous(n)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(het.AccessElems()) / float64(dseTotal)
		if ratio < 0.999 {
			t.Errorf("%s: Het %d below DSE optimum %d — cost model inconsistency",
				name, het.AccessElems(), dseTotal)
		}
		if ratio > 1.15 {
			t.Errorf("%s: Het %d is %.2fx the DSE optimum %d, want near-optimal",
				name, het.AccessElems(), ratio, dseTotal)
		}
	}
}

// TestEvaluatePolicyEquivalence pins the grid points corresponding to the
// named policies to the policy estimators' numbers.
func TestEvaluatePolicyEquivalence(t *testing.T) {
	cfg := policy.Default(1024)
	l := layer.MustNew("c", layer.Conv, 14, 14, 32, 3, 3, 64, 1, 1)
	cases := []struct {
		tiling Tiling
		id     policy.ID
	}{
		{Tiling{N: l.F, TC: l.CI, FullHeight: true, FullOfmap: true}, policy.IntraLayer},
		{Tiling{N: l.F, TC: l.CI, FullHeight: false, FullOfmap: false}, policy.P1IfmapReuse},
		{Tiling{N: l.F, TC: 1, FullHeight: false, FullOfmap: true}, policy.P3PerChannel},
	}
	for _, c := range cases {
		got := Evaluate(&l, c.tiling, cfg)
		want := policy.Estimate(&l, c.id, policy.Options{}, cfg)
		if got.AccessElems != want.AccessElems {
			t.Errorf("%+v: accesses %d != %s %d", c.tiling, got.AccessElems, c.id, want.AccessElems)
		}
	}
}

func TestDepthwiseShortcut(t *testing.T) {
	cfg := policy.Default(64)
	l := layer.MustNew("dw", layer.DepthwiseConv, 56, 56, 128, 3, 3, 1, 1, 1)
	best := Best(&l, cfg)
	if best.AccessElems != policy.MinAccessElems(&l, cfg) {
		t.Errorf("DW DSE = %d, want minimum %d", best.AccessElems, policy.MinAccessElems(&l, cfg))
	}
}

func TestGridValues(t *testing.T) {
	for _, max := range []int{1, 2, 7, 64, 1000} {
		vals := gridValues(max)
		if vals[0] != 1 || vals[len(vals)-1] != max {
			t.Errorf("grid(%d) missing endpoints: %v", max, vals)
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] <= vals[i-1] {
				t.Errorf("grid(%d) not strictly sorted: %v", max, vals)
			}
		}
	}
}

// TestInfeasibleReporting: an absurd buffer returns an infeasible point
// rather than panicking.
func TestInfeasibleReporting(t *testing.T) {
	cfg := policy.Default(0)
	cfg.GLBBytes = 64
	l := layer.MustNew("c", layer.Conv, 56, 56, 64, 3, 3, 64, 1, 1)
	best := Best(&l, cfg)
	if best.Feasible {
		t.Error("64-byte GLB reported feasible")
	}
}

// bruteBest is the pre-pruning reference: evaluate every grid point in the
// same order with no bounds, first-best-wins on (accesses, memory).
func bruteBest(l *layer.Layer, cfg policy.Config) Result {
	if l.Kind == layer.DepthwiseConv {
		e := policy.Estimate(l, policy.P5PartialPerChannel, policy.Options{}, cfg)
		return Result{
			Tiling:      Tiling{N: 1, TC: 1},
			AccessElems: e.AccessElems, MemoryElems: e.MemoryElems,
			Feasible: e.Feasible,
		}
	}
	var best Result
	for _, n := range gridValues(l.F) {
		for _, tc := range gridValues(l.CI) {
			for _, fullH := range []bool{false, true} {
				for _, fullO := range []bool{false, true} {
					r := Evaluate(l, Tiling{N: n, TC: tc, FullHeight: fullH, FullOfmap: fullO}, cfg)
					if !r.Feasible {
						continue
					}
					if !best.Feasible ||
						r.AccessElems < best.AccessElems ||
						(r.AccessElems == best.AccessElems && r.MemoryElems < best.MemoryElems) {
						best = r
					}
				}
			}
		}
	}
	if !best.Feasible {
		best = Evaluate(l, Tiling{N: 1, TC: 1}, cfg)
	}
	return best
}

// TestPrunedBestMatchesBruteForce: the dominance/early-exit bounds never
// change the selected tiling — every builtin layer, several GLB sizes,
// exact equality including tie-breaks.
func TestPrunedBestMatchesBruteForce(t *testing.T) {
	for _, name := range model.BuiltinNames() {
		n, err := model.Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, kb := range []int{32, 64, 256, 1024} {
			cfg := policy.Default(kb)
			for i := range n.Layers {
				l := &n.Layers[i]
				got := Best(l, cfg)
				want := bruteBest(l, cfg)
				if got != want {
					t.Fatalf("%s %s @%dkB: pruned %+v != brute-force %+v", name, l.Name, kb, got, want)
				}
			}
		}
	}
}
