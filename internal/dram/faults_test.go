package dram

import (
	"testing"

	"scratchmem/internal/faultinject"
	"scratchmem/internal/trace"
)

// TestReplayInjectedFault: an armed dram.access site aborts the replay
// with a classifiable injected error, and disarming it heals the channel —
// the same log replays cleanly afterwards.
func TestReplayInjectedFault(t *testing.T) {
	var log trace.Log
	log.Add("l", 0, trace.LoadIfmap, 256)
	log.Add("l", 0, trace.Compute, 100)
	log.Add("l", 0, trace.StoreOfmap, 256)

	faultinject.Enable(7, faultinject.Fault{Site: "dram.access", Kind: faultinject.KindError, P: 1})
	cycles, ch, err := Replay(&log, 8, Default())
	faultinject.Disable()
	if !faultinject.IsInjected(err) {
		t.Fatalf("err = %v, want an injected fault", err)
	}
	if cycles != 0 || ch != nil {
		t.Errorf("aborted replay returned (%d, %v), want (0, nil)", cycles, ch)
	}

	cycles, _, err = Replay(&log, 8, Default())
	if err != nil || cycles <= 0 {
		t.Errorf("post-fault replay = (%d, %v), want positive cycles and no error", cycles, err)
	}
}
