// Package dram refines the flat bytes-per-cycle off-chip model the paper
// assumes with a banked DRAM channel: open-row tracking per bank, a cheap
// latency for row-buffer hits and an expensive one for misses, and burst-
// granular transfers. Replaying an engine trace through it shows how much
// the interleaving of ifmap/filter/ofmap streams (which the unified-buffer
// policies control) costs beyond the ideal-bandwidth estimate.
package dram

import (
	"fmt"

	"scratchmem/internal/faultinject"
	"scratchmem/internal/trace"
)

// Config describes the channel.
type Config struct {
	// Banks is the number of independent banks.
	Banks int
	// RowBytes is the row-buffer size per bank.
	RowBytes int64
	// BurstBytes is the transfer granularity.
	BurstBytes int64
	// BusBytesPerCycle is the data-bus bandwidth.
	BusBytesPerCycle int
	// RowHitCycles is the access latency when the row is open.
	RowHitCycles int64
	// RowMissCycles is the precharge+activate+access latency on a miss.
	RowMissCycles int64
}

// Default returns a DDR-flavoured configuration scaled to the paper's
// 16 B/cycle bus: 8 banks, 2 kB rows, 64 B bursts, 4-cycle hits, 30-cycle
// misses.
func Default() Config {
	return Config{
		Banks:            8,
		RowBytes:         2048,
		BurstBytes:       64,
		BusBytesPerCycle: 16,
		RowHitCycles:     4,
		RowMissCycles:    30,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Banks <= 0:
		return fmt.Errorf("dram: banks must be positive")
	case c.RowBytes <= 0 || c.BurstBytes <= 0:
		return fmt.Errorf("dram: row/burst sizes must be positive")
	case c.BurstBytes > c.RowBytes:
		return fmt.Errorf("dram: burst %d larger than row %d", c.BurstBytes, c.RowBytes)
	case c.BusBytesPerCycle <= 0:
		return fmt.Errorf("dram: bus bandwidth must be positive")
	case c.RowHitCycles < 0 || c.RowMissCycles < c.RowHitCycles:
		return fmt.Errorf("dram: latencies must satisfy 0 <= hit <= miss")
	}
	return nil
}

// Channel is a stateful open-row DRAM channel.
type Channel struct {
	cfg      Config
	openRow  []int64 // per bank, -1 = closed
	hits     int64
	misses   int64
	cycles   int64
	transfer int64 // pure data-bus cycles included in cycles
}

// NewChannel returns a channel with all rows closed.
func NewChannel(cfg Config) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	open := make([]int64, cfg.Banks)
	for i := range open {
		open[i] = -1
	}
	return &Channel{cfg: cfg, openRow: open}, nil
}

// Access services a sequential transfer of `bytes` starting at `addr`,
// returning the cycles it took. Each burst's row must be open (hit) or is
// activated (miss); activation latency is charged once per row switch, the
// data itself streams at the bus rate.
func (ch *Channel) Access(addr, bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	var cycles int64
	end := addr + bytes
	first := true
	for cur := addr; cur < end; {
		row := cur / ch.cfg.RowBytes
		bank := int(row % int64(ch.cfg.Banks))
		if ch.openRow[bank] == row {
			ch.hits++
			if first {
				// Command-issue latency once per transfer; subsequent
				// same-row bursts pipeline behind the data.
				cycles += ch.cfg.RowHitCycles
			}
		} else {
			ch.misses++
			cycles += ch.cfg.RowMissCycles
			ch.openRow[bank] = row
		}
		first = false
		// Stream to the end of the burst or the row, whichever is nearer.
		burstEnd := (cur/ch.cfg.BurstBytes + 1) * ch.cfg.BurstBytes
		rowEnd := (row + 1) * ch.cfg.RowBytes
		next := burstEnd
		if rowEnd < next {
			next = rowEnd
		}
		if end < next {
			next = end
		}
		data := (next - cur + int64(ch.cfg.BusBytesPerCycle) - 1) / int64(ch.cfg.BusBytesPerCycle)
		cycles += data
		ch.transfer += data
		cur = next
	}
	ch.cycles += cycles
	return cycles
}

// Stats returns the hit/miss counts and total cycles so far.
func (ch *Channel) Stats() (hits, misses, cycles int64) {
	return ch.hits, ch.misses, ch.cycles
}

// TransferCycles returns the pure data-movement cycles (no latency).
func (ch *Channel) TransferCycles() int64 { return ch.transfer }

// Replay drives every DMA event of a trace log through the channel. Each
// data type lives in its own address region with a sequential cursor, so
// interleaved ifmap/filter/ofmap streams contend for rows the way real
// tiled schedules do. It returns the total DMA cycles; compute events are
// ignored (they do not touch DRAM).
func Replay(log *trace.Log, widthBits int, cfg Config) (int64, *Channel, error) {
	if widthBits <= 0 {
		return 0, nil, fmt.Errorf("dram: data width must be positive")
	}
	ch, err := NewChannel(cfg)
	if err != nil {
		return 0, nil, err
	}
	// Disjoint regions per data type, far apart so they never share rows,
	// and offset by one row each so the three streams start in different
	// banks (as a linker laying out the tensors would arrange).
	const region = int64(1) << 40
	cursors := map[trace.Kind]int64{
		trace.LoadIfmap:  0,
		trace.LoadFilter: region + cfg.RowBytes,
		trace.StoreOfmap: 2 * (region + cfg.RowBytes),
	}
	var total int64
	for _, e := range log.Events {
		if e.Kind == trace.Compute {
			continue
		}
		if err := faultinject.Hit("dram.access"); err != nil {
			return 0, nil, fmt.Errorf("dram: replay aborted: %w", err)
		}
		bytes := (e.Elems*int64(widthBits) + 7) / 8
		total += ch.Access(cursors[e.Kind], bytes)
		cursors[e.Kind] += bytes
	}
	return total, ch, nil
}
