package dram

import (
	"testing"

	"scratchmem/internal/engine"
	"scratchmem/internal/layer"
	"scratchmem/internal/policy"
	"scratchmem/internal/trace"
)

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Banks: 0, RowBytes: 1, BurstBytes: 1, BusBytesPerCycle: 1, RowMissCycles: 1},
		{Banks: 1, RowBytes: 0, BurstBytes: 1, BusBytesPerCycle: 1, RowMissCycles: 1},
		{Banks: 1, RowBytes: 64, BurstBytes: 128, BusBytesPerCycle: 1, RowMissCycles: 1},
		{Banks: 1, RowBytes: 64, BurstBytes: 64, BusBytesPerCycle: 0, RowMissCycles: 1},
		{Banks: 1, RowBytes: 64, BurstBytes: 64, BusBytesPerCycle: 1, RowHitCycles: 5, RowMissCycles: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := NewChannel(Config{}); err == nil {
		t.Error("NewChannel accepted zero config")
	}
}

// TestSequentialStreamMostlyHits: a long sequential read misses once per
// row and hits on every other burst.
func TestSequentialStreamMostlyHits(t *testing.T) {
	cfg := Default()
	ch, err := NewChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bytes := 4 * cfg.RowBytes // exactly 4 rows
	cycles := ch.Access(0, bytes)
	hits, misses, _ := ch.Stats()
	if misses != 4 {
		t.Errorf("misses = %d, want 4 (one per row)", misses)
	}
	wantHits := bytes/cfg.BurstBytes - 4
	if hits != wantHits {
		t.Errorf("hits = %d, want %d", hits, wantHits)
	}
	// Open-row bursts pipeline: total = data + 4 activations only.
	if want := bytes/int64(cfg.BusBytesPerCycle) + 4*cfg.RowMissCycles; cycles != want {
		t.Errorf("stream cycles = %d, want %d", cycles, want)
	}
	if tc := ch.TransferCycles(); tc != bytes/int64(cfg.BusBytesPerCycle) {
		t.Errorf("transfer cycles = %d, want %d", tc, bytes/int64(cfg.BusBytesPerCycle))
	}
}

// TestInterleavingCostsMisses: ping-ponging between two far-apart regions
// that map to the same bank forces a miss per access.
func TestInterleavingCostsMisses(t *testing.T) {
	cfg := Default()
	ch, _ := NewChannel(cfg)
	stride := cfg.RowBytes * int64(cfg.Banks) // same bank, different row
	for i := 0; i < 10; i++ {
		ch.Access(0, cfg.BurstBytes)
		ch.Access(stride, cfg.BurstBytes)
	}
	_, misses, _ := ch.Stats()
	if misses != 20 {
		t.Errorf("misses = %d, want 20 (every access conflicts)", misses)
	}
}

// TestZeroAndEdgeAccesses: zero-byte accesses are free; sub-burst accesses
// cost one latency plus their data.
func TestZeroAndEdgeAccesses(t *testing.T) {
	ch, _ := NewChannel(Default())
	if c := ch.Access(0, 0); c != 0 {
		t.Errorf("zero access cost %d", c)
	}
	c := ch.Access(0, 3)
	if c != Default().RowMissCycles+1 {
		t.Errorf("3-byte access cost %d, want miss+1", c)
	}
	// A second small access to the same open row costs one hit latency plus
	// its data.
	c = ch.Access(64, 3)
	if c != Default().RowHitCycles+1 {
		t.Errorf("open-row access cost %d, want hit+1", c)
	}
}

// TestReplayEngineTrace: replaying a real engine trace costs at least the
// ideal-bandwidth transfer time and reports consistent totals.
func TestReplayEngineTrace(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 12, 12, 4, 3, 3, 8, 1, 1)
	cfg := policy.Default(64)
	est := policy.Estimate(&l, policy.P1IfmapReuse, policy.Options{}, cfg)
	var log trace.Log
	if _, err := engine.DryRun(&l, &est, cfg, &log); err != nil {
		t.Fatal(err)
	}
	cycles, ch, err := Replay(&log, cfg.DataWidthBits, Default())
	if err != nil {
		t.Fatal(err)
	}
	ideal := est.AccessBytes / int64(Default().BusBytesPerCycle)
	if cycles < ideal {
		t.Errorf("banked DRAM %d cycles below ideal %d", cycles, ideal)
	}
	// Fine-grained tile DMA is latency-dominated on small layers, but the
	// model must stay within an order of magnitude of the ideal.
	if cycles > 10*ideal {
		t.Errorf("banked DRAM %d cycles implausibly above ideal %d", cycles, ideal)
	}
	hits, misses, total := ch.Stats()
	if hits+misses == 0 || total != cycles {
		t.Errorf("stats inconsistent: hits=%d misses=%d total=%d cycles=%d", hits, misses, total, cycles)
	}
}

// TestBankCountSensitivity: an interleaved engine trace replayed on a
// single-bank channel conflicts between the ifmap/filter/ofmap streams and
// misses more than on the default 8-bank channel.
func TestBankCountSensitivity(t *testing.T) {
	l := layer.MustNew("c", layer.Conv, 16, 16, 8, 3, 3, 32, 1, 1)
	cfg := policy.Default(256)
	est := policy.Estimate(&l, policy.P3PerChannel, policy.Options{}, cfg)
	var log trace.Log
	if _, err := engine.DryRun(&l, &est, cfg, &log); err != nil {
		t.Fatal(err)
	}
	missesWith := func(banks int) int64 {
		c := Default()
		c.Banks = banks
		_, ch, err := Replay(&log, cfg.DataWidthBits, c)
		if err != nil {
			t.Fatal(err)
		}
		_, misses, _ := ch.Stats()
		return misses
	}
	one, eight := missesWith(1), missesWith(8)
	if one <= eight {
		t.Errorf("1-bank misses %d not above 8-bank misses %d", one, eight)
	}
}

func TestReplayErrors(t *testing.T) {
	var log trace.Log
	if _, _, err := Replay(&log, 0, Default()); err == nil {
		t.Error("zero width accepted")
	}
	if _, _, err := Replay(&log, 8, Config{}); err == nil {
		t.Error("zero config accepted")
	}
	// Compute events are ignored.
	log.Add("l", 0, trace.Compute, 1000)
	cycles, _, err := Replay(&log, 8, Default())
	if err != nil || cycles != 0 {
		t.Errorf("compute-only replay = %d cycles, err %v", cycles, err)
	}
}
