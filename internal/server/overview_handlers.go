package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"scratchmem/internal/faultinject"
	"scratchmem/internal/obs"
)

// overviewMemberTimeout bounds one member's status fetch inside the
// overview fan-out, independently of the request deadline: one slow member
// must not starve the rest of the document.
const overviewMemberTimeout = 2 * time.Second

// overviewFanout bounds how many status fetches run concurrently. The
// fan-out is one cheap GET per member, so a small constant keeps even a
// large fleet's overview from opening a connection storm.
const overviewFanout = 8

// OverviewMember is one member's slice of the merged overview: its ring
// ownership share, and either its own ClusterStatus document or the error
// that prevented fetching it. Error stubs keep the overview partial-
// tolerant — an unreachable member degrades its row, never the response.
type OverviewMember struct {
	Member    string  `json:"member"`
	RingShare float64 `json:"ring_share"`
	// Error explains a missing Status (dead member, transport failure,
	// injected fault); "" when Status is present.
	Error string `json:"error,omitempty"`
	// Status is the member's own GET /v1/cluster/status document. Its
	// Members list is that member's health view, so comparing rows exposes
	// asymmetric partitions (A sees B dead, B sees A alive).
	Status *ClusterStatus `json:"status,omitempty"`
}

// OverviewTotals aggregates the reachable members' counters into one
// fleet-wide picture.
type OverviewTotals struct {
	// Members is the ring size; Reachable counts rows carrying a status.
	Members   int `json:"members"`
	Reachable int `json:"reachable"`
	// CacheEntries, CacheHits and CacheMisses sum the reachable members'
	// plan-cache counters.
	CacheEntries int   `json:"cache_entries"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	// DegradedPlans sums the reachable members' degradation-ladder output.
	DegradedPlans int64 `json:"degraded_plans"`
	// ReplicationQueued sums the members' pending replication pushes.
	ReplicationQueued int `json:"replication_queued"`
}

// OverviewResponse answers GET /v1/cluster/overview: the fleet as merged
// by the queried member. Always HTTP 200 — per-member failures live in the
// member rows, so a half-dead fleet still renders.
type OverviewResponse struct {
	Self    string           `json:"self,omitempty"`
	Members []OverviewMember `json:"members"`
	Totals  OverviewTotals   `json:"totals"`
}

// handleClusterOverview fans out to every ring member for its status
// document and merges the answers. Bounded (overviewFanout workers, a
// per-member timeout), ctx-aware, and partial-tolerant: dead members and
// failed fetches become per-member error stubs, and the response is 200
// regardless. Standalone servers answer with their own row alone.
func (s *Server) handleClusterOverview(w http.ResponseWriter, r *http.Request) {
	s.met.overviewRequest()
	f := s.fleet
	if f == nil {
		own := s.statusDoc()
		writeJSON(w, OverviewResponse{
			Members: []OverviewMember{{Member: "self", RingShare: 1, Status: &own}},
			Totals:  mergeTotals(1, []OverviewMember{{Status: &own}}),
		})
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	members := f.Ring.Members()
	shares := f.Ring.Shares()
	rows := make([]OverviewMember, len(members))
	var wg sync.WaitGroup
	sem := make(chan struct{}, overviewFanout)
	for i, m := range members {
		rows[i] = OverviewMember{Member: m, RingShare: shares[m]}
		if m == f.Self {
			own := s.statusDoc()
			rows[i].Status = &own
			continue
		}
		wg.Add(1)
		go func(row *OverviewMember, m string) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				row.Error = ctx.Err().Error()
				return
			}
			st, err := s.fetchMemberStatus(ctx, m)
			if err != nil {
				row.Error = err.Error()
				return
			}
			row.Status = st
		}(&rows[i], m)
	}
	wg.Wait()
	writeJSON(w, OverviewResponse{
		Self:    f.Self,
		Members: rows,
		Totals:  mergeTotals(len(members), rows),
	})
}

// fetchMemberStatus pulls one peer's status document. It skips known-dead
// members without a round-trip, crosses the cluster.overview faultinject
// site, and bounds the fetch with its own timeout.
func (s *Server) fetchMemberStatus(ctx context.Context, member string) (*ClusterStatus, error) {
	f := s.fleet
	if !f.Health.Alive(member) {
		return nil, errMemberDead
	}
	if f.Status == nil {
		return nil, errNoStatusTransport
	}
	if err := faultinject.Hit("cluster.overview"); err != nil {
		return nil, err
	}
	mctx, cancel := context.WithTimeout(ctx, overviewMemberTimeout)
	defer cancel()
	mctx, span := obs.StartSpan(mctx, "overview_fetch")
	span.SetAttr("member", member)
	defer span.End()
	body, err := f.Status(mctx, member)
	if err != nil {
		span.SetAttr("outcome", "error")
		span.SetAttr("error", err.Error())
		return nil, err
	}
	span.SetAttr("outcome", "ok")
	span.SetAttr("bytes", len(body))
	var st ClusterStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Stable stub reasons, so tests and dashboards can match on them.
var (
	errMemberDead        = overviewError("member marked dead by health probes")
	errNoStatusTransport = overviewError("no status transport configured")
)

type overviewError string

func (e overviewError) Error() string { return string(e) }

// mergeTotals folds the reachable rows' counters into fleet totals.
func mergeTotals(members int, rows []OverviewMember) OverviewTotals {
	t := OverviewTotals{Members: members}
	for _, row := range rows {
		st := row.Status
		if st == nil {
			continue
		}
		t.Reachable++
		t.CacheEntries += st.Cache.Entries
		t.CacheHits += st.Cache.Hits
		t.CacheMisses += st.Cache.Misses
		t.DegradedPlans += st.DegradedPlans
		t.ReplicationQueued += st.Replication.Queued
	}
	return t
}
