package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	scratchmem "scratchmem"
	"scratchmem/internal/cluster"
	"scratchmem/internal/faultinject"
	"scratchmem/internal/obs"
	"scratchmem/internal/plancache"
)

// The chaos transports are the plain-HTTP twins of the client package's
// adapters: no retries, so the suite observes every failure the fleet
// machinery has to absorb.

func chaosProbe(ctx context.Context, baseURL string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

func chaosLookup(ctx context.Context, baseURL string, request any) ([]byte, error) {
	b, err := json.Marshal(request)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/peer/fill?cached=only", bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tc := obs.TraceContextFrom(ctx); tc.Valid() {
		req.Header.Set(obs.TraceparentHeader, tc.String())
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body, nil
	case http.StatusNotFound:
		return nil, cluster.ErrNoReplica
	default:
		return nil, fmt.Errorf("cached-only fill: %s: %s", resp.Status, body)
	}
}

func chaosPush(ctx context.Context, baseURL string, payload any) error {
	b, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/peer/replicate", bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if tc := obs.TraceContextFrom(ctx); tc.Valid() {
		req.Header.Set(obs.TraceparentHeader, tc.String())
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("replicate: %s: %s", resp.Status, body)
	}
	return nil
}

// chaosStatus is the overview fan-out transport: a plain GET of the
// member's own /v1/cluster/status document.
func chaosStatus(ctx context.Context, baseURL string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/cluster/status", nil)
	if err != nil {
		return nil, err
	}
	if tc := obs.TraceContextFrom(ctx); tc.Valid() {
		req.Header.Set(obs.TraceparentHeader, tc.String())
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster status: %s: %s", resp.Status, body)
	}
	return body, nil
}

func chaosInvalidate(ctx context.Context, baseURL, key string) error {
	method, path := http.MethodDelete, "/v1/cache/"+key+"?fanout=no"
	if key == "" {
		method, path = http.MethodPost, "/v1/cache/purge?fanout=no"
	}
	req, err := http.NewRequestWithContext(ctx, method, baseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("invalidate: %s", resp.Status)
	}
	return nil
}

// chaosNode is one killable, restartable member of an in-process fleet.
type chaosNode struct {
	url     string
	srv     *Server
	ts      *httptest.Server
	fleet   *cluster.Fleet
	planned *atomic.Int64
}

// kill stops the node the way a process death looks from outside: the
// listener drops and the control loops go with it. Safe to call twice.
func (n *chaosNode) kill() {
	n.fleet.Stop()
	n.ts.Close()
}

// startChaosNode boots one fleet member with the full self-healing control
// plane wired: health tracker, successor replicator, invalidation fan-out,
// cached-only successor lookup. A nil listener re-binds the address in the
// node's URL — that is what "restart" means here.
func startChaosNode(t *testing.T, ring *cluster.Ring, self string, l net.Listener, hopts cluster.HealthOptions, startHealthLoop bool) *chaosNode {
	t.Helper()
	if l == nil {
		var err error
		l, err = net.Listen("tcp", strings.TrimPrefix(self, "http://"))
		if err != nil {
			t.Fatalf("rebinding %s: %v", self, err)
		}
	}
	health := cluster.NewHealth(ring, self, chaosProbe, hopts)
	repl := cluster.NewReplicator(ring, self, chaosPush, health, cluster.ReplicatorOptions{})
	fleet := &cluster.Fleet{Ring: ring, Self: self, Health: health, Repl: repl, Invalidate: chaosInvalidate, Status: chaosStatus}
	srv := New(Config{
		Timeout: 5 * time.Second,
		Fleet:   fleet,
		Cluster: func(local *plancache.Cache) cluster.Backend {
			peer := cluster.NewPeer(cluster.NewLocal(local), ring, self, cluster.TransportFunc(testFill),
				cluster.PeerOptions{Health: health, Lookup: chaosLookup})
			return cluster.NewLayered(plancache.New(32), peer, peer.Remote)
		},
	})
	counter := &atomic.Int64{}
	inner := srv.planFn
	srv.planFn = func(ctx context.Context, net *scratchmem.Network, o scratchmem.PlanOptions) (*scratchmem.Plan, error) {
		counter.Add(1)
		return inner(ctx, net, o)
	}
	ts := &httptest.Server{Listener: l, Config: &http.Server{Handler: srv.Handler()}}
	ts.Start()
	repl.Start()
	if startHealthLoop {
		health.Start()
	}
	n := &chaosNode{url: self, srv: srv, ts: ts, fleet: fleet, planned: counter}
	t.Cleanup(n.kill)
	return n
}

// newChaosFleet allocates n loopback listeners, builds the static ring over
// them, and boots a chaosNode on each.
func newChaosFleet(t *testing.T, n int, hopts cluster.HealthOptions, startHealthLoop bool) (map[string]*chaosNode, []string, *cluster.Ring) {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	ring, err := cluster.NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make(map[string]*chaosNode, n)
	for i, u := range urls {
		nodes[u] = startChaosNode(t, ring, u, listeners[i], hopts, startHealthLoop)
	}
	return nodes, urls, ring
}

// rawPost hits a node by URL with a plain one-shot request (no httptest
// client, no retries), returning a transport error instead of failing the
// test — the flood needs to tolerate requests racing a node kill.
func rawPost(url, path, body string) (*http.Response, []byte, error) {
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, b, nil
}

func flushRepl(t *testing.T, n *chaosNode) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := n.fleet.Repl.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestChaosFleetOwnerKillRecoversFromSuccessor is the deterministic
// self-healing walkthrough: plan on the owner, watch the replica land on the
// ring successor, kill the owner, and verify a third node serves the plan
// from the successor's replica with ZERO additional planner runs. Then
// invalidate fleet-wide, restart the owner, and verify the fleet heals.
func TestChaosFleetOwnerKillRecoversFromSuccessor(t *testing.T) {
	// Interval is effectively "never": the test drives probes by hand so
	// every liveness transition is deterministic.
	hopts := cluster.HealthOptions{Interval: time.Hour, DeadAfter: 2, Timeout: time.Second}
	nodes, urls, ring := newChaosFleet(t, 3, hopts, false)

	key := planKeyFor(t, "TinyCNN", 32)
	owner := ring.Owner(key)
	succ, ok := ring.Successor(key)
	if !ok {
		t.Fatal("no successor on a 3-member ring")
	}
	third := ""
	for _, u := range urls {
		if u != owner && u != succ {
			third = u
		}
	}

	// Plan on the owner: one planner run, and the replica is pushed to the
	// successor without the successor ever seeing a plan request.
	resp, body0 := post(t, nodes[owner].ts, "/v1/plan", tinyPlanBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner plan: status %d: %s", resp.StatusCode, body0)
	}
	if nodes[owner].planned.Load() != 1 {
		t.Fatalf("owner ran the planner %d times, want 1", nodes[owner].planned.Load())
	}
	flushRepl(t, nodes[owner])
	if st := nodes[owner].fleet.Repl.Stats(); st.Sent != 1 {
		t.Fatalf("replication stats = %+v, want Sent=1", st)
	}
	if !nodes[succ].srv.local.Contains(key) {
		t.Fatal("successor holds no replica after the replication queue drained")
	}

	// Kill the owner. Two failed probe rounds on the surviving third node
	// mark it dead; /v1/cluster/status shows the retraction.
	nodes[owner].kill()
	nodes[third].fleet.Health.ProbeNow(context.Background())
	nodes[third].fleet.Health.ProbeNow(context.Background())
	var cs ClusterStatus
	if _, b := get(t, nodes[third].ts, "/v1/cluster/status"); json.Unmarshal(b, &cs) != nil {
		t.Fatalf("bad cluster status: %s", b)
	}
	ownerDead := false
	for _, m := range cs.Members {
		if m.Member == owner && !m.Alive {
			ownerDead = true
		}
	}
	if !ownerDead {
		t.Fatalf("status does not report the killed owner dead: %+v", cs.Members)
	}

	// The third node now serves the plan from the successor's replica:
	// byte-identical document, no fill attempt against the corpse, no
	// planner run anywhere in the surviving fleet.
	resp, body := post(t, nodes[third].ts, "/v1/plan", tinyPlanBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan with owner dead: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, body0) {
		t.Fatal("successor replica served a different document than the owner")
	}
	if resp.Header.Get("X-SMM-Cache") != "hit" {
		t.Errorf("X-SMM-Cache = %q, want hit (served from replica)", resp.Header.Get("X-SMM-Cache"))
	}
	if n := nodes[third].planned.Load() + nodes[succ].planned.Load(); n != 0 {
		t.Fatalf("survivors ran the planner %d times; the replica made that unnecessary", n)
	}
	ps := nodes[third].srv.cache.(cluster.PeerStatser).PeerStats()
	if ps.Dead == 0 || ps.SuccHit != 1 {
		t.Fatalf("peer stats = %+v, want Dead>=1 and SuccHit=1", ps)
	}

	// Fleet-wide invalidation from the third node: its own copy and the
	// successor's replica both disappear; the dead owner is skipped (it is
	// not a live member), not waited on.
	bare := strings.TrimPrefix(key, "plan:")
	req, err := http.NewRequest(http.MethodDelete, nodes[third].url+"/v1/cache/"+bare, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	var inv InvalidateResponse
	if err := json.Unmarshal(db, &inv); err != nil {
		t.Fatalf("bad invalidate response: %s", db)
	}
	if inv.Key != bare {
		t.Fatalf("invalidate echoed key %q, want %q", inv.Key, bare)
	}
	// The third node is not the key's owner: its copy was a hot-layer
	// replica, so Removed (authoritative entries) is 0 — the Get checks
	// below prove the copies are gone anyway.
	for _, fr := range inv.Fanout {
		if fr.Member == owner {
			t.Fatalf("fan-out addressed the dead owner: %+v", fr)
		}
		if fr.Member == succ && !fr.OK {
			t.Fatalf("fan-out to the live successor failed: %+v", fr)
		}
	}
	if nodes[succ].srv.local.Contains(key) {
		t.Fatal("successor replica survived fleet-wide invalidation")
	}
	if _, ok := nodes[third].srv.cache.Get(key); ok {
		t.Fatal("third node's hot copy survived its own invalidation")
	}

	// Restart the owner on the same address. One successful probe round
	// heals the liveness view, and planning flows through the owner again.
	restarted := startChaosNode(t, ring, owner, nil, hopts, false)
	nodes[owner] = restarted
	nodes[third].fleet.Health.ProbeNow(context.Background())
	if _, b := get(t, nodes[third].ts, "/v1/cluster/status"); strings.Contains(string(b), `"alive": false`) ||
		strings.Contains(string(b), `"alive":false`) {
		t.Fatalf("status still reports a dead member after restart: %s", b)
	}
	resp, body = post(t, nodes[third].ts, "/v1/plan", tinyPlanBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan after restart: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, body0) {
		t.Fatal("post-restart document differs")
	}
	if restarted.planned.Load() != 1 {
		t.Fatalf("restarted owner ran the planner %d times, want 1 (fresh fill)", restarted.planned.Load())
	}
}

// TestChaosFleetKillRestartMidFlood is the kill/restart chaos run: a
// three-node fleet under injected peer, replication, and probe faults takes
// a concurrent plan flood while one member is killed and restarted
// mid-stream. Invariants: every HTTP response is a classified status (200,
// or 503/504 shedding), every 200 body is byte-identical to the standalone
// reference, and the fleet heals completely once the faults stop.
func TestChaosFleetKillRestartMidFlood(t *testing.T) {
	hopts := cluster.HealthOptions{Interval: 20 * time.Millisecond, DeadAfter: 2, Timeout: 500 * time.Millisecond}
	nodes, urls, ring := newChaosFleet(t, 3, hopts, true)
	_ = ring

	// Reference documents from a standalone server: canonical encoding is
	// deterministic, so every 200 anywhere in the fleet must match these.
	standalone := httptest.NewServer(New(Config{}).Handler())
	defer standalone.Close()
	requests := []string{
		tinyPlanBody,
		`{"model": "TinyCNN", "glb_kb": 48}`,
		`{"model": "TinyCNN", "glb_kb": 64}`,
		`{"model": "AlexNet", "glb_kb": 96}`,
	}
	ref := make(map[string][]byte, len(requests))
	for _, rb := range requests {
		resp, body := post(t, standalone, "/v1/plan", rb)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference plan failed: %d %s", resp.StatusCode, body)
		}
		ref[rb] = body
	}

	faultinject.Enable(11,
		faultinject.Fault{Site: "cluster.peer", Kind: faultinject.KindError, P: 0.3},
		faultinject.Fault{Site: "cluster.replicate", Kind: faultinject.KindError, P: 0.3},
		faultinject.Fault{Site: "cluster.health", Kind: faultinject.KindError, P: 0.2},
	)
	defer faultinject.Disable()

	victim := urls[1]
	var wg sync.WaitGroup
	var restarted *chaosNode

	// The killer: take the victim down mid-flood, leave it dead for a few
	// probe generations, bring it back on the same address.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond)
		nodes[victim].kill()
		time.Sleep(150 * time.Millisecond)
		restarted = startChaosNode(t, ring, victim, nil, hopts, true)
	}()

	// The flood: every worker rotates across all three members, including
	// the one being killed. Transport errors are legitimate only there.
	const workers, perWorker = 4, 25
	problems := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				url := urls[(w+i)%len(urls)]
				rb := requests[(w*perWorker+i)%len(requests)]
				resp, body, err := rawPost(url, "/v1/plan", rb)
				if err != nil {
					if url != victim {
						problems <- fmt.Sprintf("transport error against live node %s: %v", url, err)
					}
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					if !bytes.Equal(body, ref[rb]) {
						problems <- fmt.Sprintf("node %s served a non-canonical document for %s", url, rb)
					}
				case http.StatusServiceUnavailable, http.StatusGatewayTimeout:
					// Classified shedding; 503 must carry its retry hint.
					if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
						problems <- fmt.Sprintf("node %s: 503 without Retry-After", url)
					}
				default:
					problems <- fmt.Sprintf("node %s: unclassified status %d: %s", url, resp.StatusCode, body)
				}
			}
		}(w)
	}
	wg.Wait()
	close(problems)
	for p := range problems {
		t.Error(p)
	}
	if restarted == nil {
		t.Fatal("the victim never restarted")
	}
	nodes[victim] = restarted

	// Disarm the chaos and require a full heal: the restarted member
	// answers with the canonical document, and every member's liveness view
	// converges back to all-alive.
	faultinject.Disable()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body, err := rawPost(victim, "/v1/plan", tinyPlanBody)
		healthy := err == nil && resp.StatusCode == http.StatusOK && bytes.Equal(body, ref[tinyPlanBody])
		if healthy {
			allAlive := true
			for _, u := range urls {
				r2, b2, err2 := rawPost(u, "/v1/plan", tinyPlanBody) // warm every member
				_ = r2
				_ = b2
				if err2 != nil {
					allAlive = false
					break
				}
				_, sb, serr := rawGet(u, "/v1/cluster/status")
				if serr != nil || strings.Contains(string(sb), `"alive": false`) || strings.Contains(string(sb), `"alive":false`) {
					allAlive = false
					break
				}
			}
			if allAlive {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet did not heal after the chaos stopped")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// rawGet is rawPost's GET twin.
func rawGet(url, path string) (*http.Response, []byte, error) {
	resp, err := http.Get(url + path)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, b, nil
}
