package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	scratchmem "scratchmem"
)

// sweepRequests builds a 50-pair DSE-style sweep: two models crossed with
// objective/scheme/reuse options over a few GLB sizes. Every pair is a
// distinct plan key, but the (layer shape, config) estimator invocations
// overlap heavily between pairs — which is exactly what the batch-shared
// estimate memo exists to exploit.
func sweepRequests() []PlanRequest {
	var reqs []PlanRequest
	for _, model := range []string{"TinyCNN", "AlexNet"} {
		for _, glb := range []int{64, 108, 256} {
			for _, objective := range []string{"accesses", "latency"} {
				for _, hom := range []bool{false, true} {
					for _, inter := range []bool{false, true} {
						for _, nopf := range []bool{false, true} {
							reqs = append(reqs, PlanRequest{
								Model:           model,
								GLBKiloBytes:    glb,
								Objective:       objective,
								Homogeneous:     hom,
								InterLayerReuse: inter,
								DisablePrefetch: nopf,
							})
						}
					}
				}
			}
		}
	}
	return reqs[:50]
}

// canonicalDoc re-renders a wire plan document in the canonical form
// (PlanDoc.MarshalIndent), the byte layout POST /v1/plan serves.
func canonicalDoc(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var doc scratchmem.PlanDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	b, err := doc.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBatchMatchesSequential pins the batch acceptance criterion: a 50-pair
// sweep through POST /v1/plan/batch returns documents byte-identical to 50
// sequential /v1/plan calls, and the batch-shared estimate memo records
// hits (the sweep re-estimates the same layer shapes across GLB sizes).
func TestBatchMatchesSequential(t *testing.T) {
	reqs := sweepRequests()

	seq := httptest.NewServer(New(Config{}).Handler())
	defer seq.Close()
	sequential := make([][]byte, len(reqs))
	for i, pr := range reqs {
		body, err := json.Marshal(pr)
		if err != nil {
			t.Fatal(err)
		}
		resp, respBody := post(t, seq, "/v1/plan", string(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sequential %d: status %d: %s", i, resp.StatusCode, respBody)
		}
		sequential[i] = respBody
	}

	bat := httptest.NewServer(New(Config{CacheEntries: len(reqs) + 8}).Handler())
	defer bat.Close()
	reqBody, err := json.Marshal(BatchRequest{Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}
	resp, respBody := post(t, bat, "/v1/plan/batch", string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, respBody)
	}
	var br BatchResponse
	if err := json.Unmarshal(respBody, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != len(reqs) {
		t.Fatalf("batch returned %d results for %d requests", len(br.Results), len(reqs))
	}
	for i, item := range br.Results {
		if item.Status != http.StatusOK {
			t.Fatalf("item %d: status %d: %s", i, item.Status, item.Error)
		}
		// The batch envelope re-flows embedded JSON whitespace, so compare
		// canonical renderings: parse the item's document and re-render it
		// the one canonical way — it must be byte-identical to the lone
		// /v1/plan response.
		if !bytes.Equal(canonicalDoc(t, item.Plan), sequential[i]) {
			t.Errorf("item %d: batch document differs from the sequential one", i)
		}
	}
	if br.MemoHits == 0 {
		t.Error("batch-shared memo recorded no hits across the sweep")
	}

	_, metricsBody := get(t, bat, "/metrics")
	if got := metric(t, metricsBody, "smm_batch_size_sum"); got != int64(len(reqs)) {
		t.Errorf("smm_batch_size_sum = %d, want %d", got, len(reqs))
	}
	if got := metric(t, metricsBody, "smm_batch_size_count"); got != 1 {
		t.Errorf("smm_batch_size_count = %d, want 1", got)
	}
}

// TestBatchItemsFailIndependently: one malformed item gets its own per-item
// status; its siblings still plan.
func TestBatchItemsFailIndependently(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	reqs := []PlanRequest{
		{Model: "TinyCNN", GLBKiloBytes: 32},
		{Model: "NoSuchNet", GLBKiloBytes: 32},
		{Model: "TinyCNN"}, // no glb_kb and no config
	}
	body, err := json.Marshal(BatchRequest{Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}
	resp, respBody := post(t, ts, "/v1/plan/batch", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, respBody)
	}
	var br BatchResponse
	if err := json.Unmarshal(respBody, &br); err != nil {
		t.Fatal(err)
	}
	wantStatus := []int{http.StatusOK, http.StatusBadRequest, http.StatusBadRequest}
	for i, want := range wantStatus {
		if br.Results[i].Status != want {
			t.Errorf("item %d: status %d, want %d (%s)", i, br.Results[i].Status, want, br.Results[i].Error)
		}
	}
	if len(br.Results[0].Plan) == 0 {
		t.Error("healthy item returned no document")
	}
}

// TestBatchLimits: empty and oversized batches are client errors.
func TestBatchLimits(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	if resp, _ := post(t, ts, "/v1/plan/batch", `{"requests": []}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
	big := BatchRequest{Requests: make([]PlanRequest, maxBatchItems+1)}
	for i := range big.Requests {
		big.Requests[i] = PlanRequest{Model: "TinyCNN", GLBKiloBytes: 16 + i}
	}
	body, err := json.Marshal(big)
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := post(t, ts, "/v1/plan/batch", string(body)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", resp.StatusCode)
	}
}

// TestBatchDeduplicatesInsideOneCall: identical items inside one batch
// collapse onto one planner execution through the shared cache.
func TestBatchDeduplicatesInsideOneCall(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqs := make([]PlanRequest, 8)
	for i := range reqs {
		reqs[i] = PlanRequest{Model: "TinyCNN", GLBKiloBytes: 32}
	}
	body, err := json.Marshal(BatchRequest{Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}
	resp, respBody := post(t, ts, "/v1/plan/batch", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, respBody)
	}
	var br BatchResponse
	if err := json.Unmarshal(respBody, &br); err != nil {
		t.Fatal(err)
	}
	misses := 0
	for i, item := range br.Results {
		if item.Status != http.StatusOK {
			t.Fatalf("item %d failed: %s", i, item.Error)
		}
		if item.Cache == "miss" {
			misses++
		}
		if !bytes.Equal(item.Plan, br.Results[0].Plan) {
			t.Errorf("item %d differs", i)
		}
	}
	if misses != 1 {
		t.Errorf("%d cache misses for 8 identical items, want 1", misses)
	}
	_, metricsBody := get(t, ts, "/metrics")
	if got := metric(t, metricsBody, "smm_planner_latency_seconds_count"); got != 1 {
		t.Errorf("planner ran %d times for 8 identical items, want 1", got)
	}
}
