package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	scratchmem "scratchmem"
	"scratchmem/internal/core"
)

const infeasibleBody = `{"model": "ResNet18", "glb_kb": 1}`

// TestDegradedPlan pins the graceful-degradation contract: a GLB too small
// for every policy returns 200 with a baseline-fallback plan marked
// degraded and carrying the full reason chain, counts in the degraded
// metric, and refuses simulation with a typed 422 (the plan exceeds the
// GLB, the executor cannot run it).
func TestDegradedPlan(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/v1/plan", infeasibleBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded plan: status %d (%s), want 200", resp.StatusCode, body)
	}
	var doc scratchmem.PlanDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Degraded || doc.DegradedMode != core.DegradedBaseline {
		t.Errorf("degraded=%v mode=%q, want true/%q", doc.Degraded, doc.DegradedMode, core.DegradedBaseline)
	}
	wantChain := []string{"requested", core.DegradedPrefetchRelaxed, core.DegradedLifetimeSpill}
	if len(doc.DegradedReasons) != len(wantChain) {
		t.Fatalf("reason chain %v, want modes %v", doc.DegradedReasons, wantChain)
	}
	for i, want := range wantChain {
		if doc.DegradedReasons[i].Mode != want || doc.DegradedReasons[i].Error == "" {
			t.Errorf("reason %d = %+v, want mode %q with a message", i, doc.DegradedReasons[i], want)
		}
	}
	if doc.Feasible {
		t.Error("a truly-degraded baseline plan cannot fit the GLB, yet feasible=true")
	}
	if doc.Scheme != core.DegradedBaseline {
		t.Errorf("scheme = %q, want %q", doc.Scheme, core.DegradedBaseline)
	}

	// Degraded plans are cached like any other successful plan.
	resp2, body2 := post(t, ts, "/v1/plan", infeasibleBody)
	if resp2.Header.Get("X-SMM-Cache") != "hit" || !bytes.Equal(body, body2) {
		t.Error("repeated degraded request not served byte-identically from cache")
	}

	// Simulating an over-capacity plan is a classified 422, never a 500.
	resp3, body3 := post(t, ts, "/v1/simulate", infeasibleBody)
	if resp3.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("simulate of over-capacity degraded plan: status %d (%s), want 422", resp3.StatusCode, body3)
	}

	_, mbody := get(t, ts, "/metrics")
	if n := metric(t, mbody, "smm_degraded_plans_total"); n != 1 {
		t.Errorf("smm_degraded_plans_total = %d, want 1 (one computation, one cache hit)", n)
	}
}

// TestStrictPreserves422 pins the opt-out: the strict flag restores the
// pre-ladder behaviour and hashes to its own cache key, so a cached
// degraded plan can never leak into a strict response.
func TestStrictPreserves422(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	// Warm the cache with the degraded (non-strict) plan first.
	if resp, body := post(t, ts, "/v1/plan", infeasibleBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("non-strict: status %d (%s)", resp.StatusCode, body)
	}
	resp, body := post(t, ts, "/v1/plan", `{"model": "ResNet18", "glb_kb": 1, "strict": true}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("strict: status %d (%s), want 422", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "fallback tiling") {
		t.Errorf("strict 422 lost the precise infeasibility message: %s", body)
	}
}

// TestShedWhenQueueFull covers admission control: with the single worker
// busy and the one-deep wait queue occupied, the next request is shed
// immediately with 503 + Retry-After instead of camping until its deadline.
func TestShedWhenQueueFull(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1})
	blocked := make(chan struct{})
	release := make(chan struct{})
	srv.planFn = func(ctx context.Context, n *scratchmem.Network, o scratchmem.PlanOptions) (*scratchmem.Plan, error) {
		if n.Name == "TinyCNN" && o.Config.GLBBytes == 32*1024 {
			close(blocked)
		}
		<-release
		return scratchmem.PlanModelCtx(ctx, n, o, nil)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Three distinct keys, so no single-flight coalescing: the first holds
	// the only worker slot, the second fills the queue, the third is shed.
	first, second := make(chan int, 1), make(chan int, 1)
	go func() {
		resp, _ := post(t, ts, "/v1/plan", tinyPlanBody)
		first <- resp.StatusCode
	}()
	<-blocked
	go func() {
		resp, _ := post(t, ts, "/v1/plan", `{"model": "TinyCNN", "glb_kb": 16}`)
		second <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.sem.Waiting() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := post(t, ts, "/v1/plan", `{"model": "TinyCNN", "glb_kb": 8}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != shedRetryAfterSeconds {
		t.Errorf("Retry-After = %q, want %q", ra, shedRetryAfterSeconds)
	}
	close(release)
	if code := <-first; code != http.StatusOK {
		t.Errorf("slot-holding request: status %d, want 200", code)
	}
	if code := <-second; code != http.StatusOK {
		t.Errorf("queued request: status %d, want 200", code)
	}

	_, mbody := get(t, ts, "/metrics")
	if n := metric(t, mbody, "smm_shed_total"); n != 1 {
		t.Errorf("smm_shed_total = %d, want 1", n)
	}
	if n := metric(t, mbody, `smm_errors_total{code="503"}`); n != 1 {
		t.Errorf("503 counter = %d, want 1", n)
	}
	if n := srv.sem.InUse(); n != 0 {
		t.Errorf("%d worker slots still held after all requests finished", n)
	}
}

// TestCircuitBreaker covers the consecutive-panic breaker: threshold
// panics trip the route to fast-503 (handler not invoked, Retry-After
// set, other routes unaffected), the cooldown admits one half-open probe,
// and a successful probe closes the circuit.
func TestCircuitBreaker(t *testing.T) {
	srv := New(Config{BreakerThreshold: 2, BreakerCooldown: time.Hour})
	now := time.Now()
	br := srv.breakers["/v1/plan"]
	br.Now = func() time.Time { return now } // frozen clock
	var calls atomic.Int32
	srv.planFn = func(context.Context, *scratchmem.Network, scratchmem.PlanOptions) (*scratchmem.Plan, error) {
		calls.Add(1)
		panic("planner exploded")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		if resp, _ := post(t, ts, "/v1/plan", tinyPlanBody); resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panic %d: status %d, want 500", i, resp.StatusCode)
		}
	}
	// Tripped: fast-503 without running the handler.
	resp, body := post(t, ts, "/v1/plan", tinyPlanBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d (%s), want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("open breaker response missing Retry-After")
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("planner invoked %d times, want 2 (breaker must not admit the third)", n)
	}
	// Other routes keep their own (closed) breakers.
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Error("healthz affected by the plan route's breaker")
	}
	if resp, _ := post(t, ts, "/v1/dse", tinyPlanBody); resp.StatusCode != http.StatusOK {
		t.Error("dse affected by the plan route's breaker")
	}

	// Cooldown elapses; the probe panics; the breaker reopens immediately.
	now = now.Add(2 * time.Hour)
	if resp, _ := post(t, ts, "/v1/plan", tinyPlanBody); resp.StatusCode != http.StatusInternalServerError {
		t.Fatal("half-open probe was not admitted")
	}
	if resp, _ := post(t, ts, "/v1/plan", tinyPlanBody); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatal("failed probe did not reopen the breaker")
	}

	// Cooldown again; a fixed planner's probe closes the circuit for good.
	srv.planFn = func(ctx context.Context, n *scratchmem.Network, o scratchmem.PlanOptions) (*scratchmem.Plan, error) {
		return scratchmem.PlanModelCtx(ctx, n, o, nil)
	}
	now = now.Add(2 * time.Hour)
	for i := 0; i < 2; i++ {
		if resp, _ := post(t, ts, "/v1/plan", tinyPlanBody); resp.StatusCode != http.StatusOK {
			t.Fatalf("recovered request %d: status %d, want 200", i, resp.StatusCode)
		}
	}

	_, mbody := get(t, ts, "/metrics")
	if n := metric(t, mbody, "smm_breaker_open_total"); n != 2 {
		t.Errorf("smm_breaker_open_total = %d, want 2 fast-failed requests", n)
	}
}

// TestMetricsGolden pins the full /metrics output of a fresh server (fixed
// worker count for determinism), so new counters land in the document
// deliberately. Regenerate with -update.
func TestMetricsGolden(t *testing.T) {
	ts := httptest.NewServer(New(Config{Workers: 4}).Handler())
	defer ts.Close()

	_, body := get(t, ts, "/metrics")
	golden := filepath.Join("testdata", "metrics_fresh.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("metrics drifted from golden file:\ngot:\n%s\nwant:\n%s", body, want)
	}
}

// TestEstimateMemoMetrics: the server-lifetime estimate memo is visible on
// /metrics, and the serving path actually exercises it. The first plan of a
// model populates the tables (misses); a second request for the same
// network under the other objective is a plan-cache miss but — the
// per-layer winner cache is objective-free — answers its candidate sweeps
// from the first request's work, so hits become non-zero.
func TestEstimateMemoMetrics(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	if resp, body := post(t, ts, "/v1/plan", tinyPlanBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d: %s", resp.StatusCode, body)
	}
	_, mbody := get(t, ts, "/metrics")
	if n := metric(t, mbody, "smm_estimate_memo_misses_total"); n == 0 {
		t.Error("first plan produced no estimate-memo misses")
	}

	latency := `{"model": "TinyCNN", "glb_kb": 32, "objective": "latency"}`
	if resp, body := post(t, ts, "/v1/plan", latency); resp.StatusCode != http.StatusOK {
		t.Fatalf("latency plan: status %d: %s", resp.StatusCode, body)
	}
	_, mbody = get(t, ts, "/metrics")
	if n := metric(t, mbody, "smm_estimate_memo_hits_total"); n == 0 {
		t.Error("second objective's plan produced no estimate-memo hits")
	}
}
