package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"

	scratchmem "scratchmem"
	"scratchmem/internal/layer"
)

// neighborBody renders a /v1/plan request for a one-layer mutation of a
// builtin: layer idx gets delta more filters (channels for depth-wise).
func neighborBody(t *testing.T, base string, idx, delta int) string {
	t.Helper()
	net, err := scratchmem.BuiltinModel(base)
	if err != nil {
		t.Fatal(err)
	}
	layers := append([]layer.Layer(nil), net.Layers...)
	l := layers[idx]
	if l.Kind == layer.DepthwiseConv {
		layers[idx] = layer.MustNew(l.Name, l.Kind, l.IH, l.IW, l.CI+delta, l.FH, l.FW, l.F, l.S, l.P)
	} else {
		layers[idx] = layer.MustNew(l.Name, l.Kind, l.IH, l.IW, l.CI, l.FH, l.FW, l.F+delta, l.S, l.P)
	}
	nn := &scratchmem.Network{Name: fmt.Sprintf("%s-n%d-%d", base, idx, delta), Layers: layers}
	var buf bytes.Buffer
	if err := nn.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf(`{"network": %s, "glb_kb": 64}`, buf.String())
}

// metricValue scrapes one counter (with its exact label string) out of a
// /metrics exposition body.
func metricValue(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not exposed:\n%s", name, body)
	}
	v, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestIncrementalPlanMetrics drives the server's differential-planning seam
// end to end: the first plan of a network is a full run, a one-layer
// neighbor splices from its fingerprint, and both show up in /metrics.
func TestIncrementalPlanMetrics(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	if resp, body := post(t, ts, "/v1/plan", `{"model": "ResNet18", "glb_kb": 64}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("base plan: status %d: %s", resp.StatusCode, body)
	}
	if got := metricValue(t, ts, `smm_incremental_plans_total{outcome="full"}`); got < 1 {
		t.Fatalf("full outcome counter = %d after a cold plan", got)
	}
	if got := metricValue(t, ts, `smm_incremental_plans_total{outcome="spliced"}`); got != 0 {
		t.Fatalf("spliced counter = %d before any neighbor", got)
	}

	if resp, body := post(t, ts, "/v1/plan", neighborBody(t, "ResNet18", 10, 1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("neighbor plan: status %d: %s", resp.StatusCode, body)
	}
	if got := metricValue(t, ts, `smm_incremental_plans_total{outcome="spliced"}`); got < 1 {
		t.Fatalf("spliced counter = %d after a one-layer neighbor", got)
	}
	if got := metricValue(t, ts, "smm_incremental_layers_reused_total"); got <= 0 {
		t.Fatalf("layers reused = %d after a spliced plan", got)
	}
}

// TestIncrementalPurgeNeverSplices is the invalidation acceptance test: a
// purged plan must never be spliced from. After POST /v1/cache/purge the
// fingerprint index is empty, so the next neighbor plans in full.
func TestIncrementalPurgeNeverSplices(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	if resp, body := post(t, ts, "/v1/plan", `{"model": "ResNet18", "glb_kb": 64}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("base plan: status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := post(t, ts, "/v1/cache/purge", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("purge: status %d", resp.StatusCode)
	}
	if resp, body := post(t, ts, "/v1/plan", neighborBody(t, "ResNet18", 10, 1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("neighbor plan: status %d: %s", resp.StatusCode, body)
	}
	if got := metricValue(t, ts, `smm_incremental_plans_total{outcome="spliced"}`); got != 0 {
		t.Fatalf("a neighbor spliced from a purged plan (spliced counter = %d)", got)
	}
	if got := metricValue(t, ts, `smm_incremental_plans_total{outcome="full"}`); got < 2 {
		t.Fatalf("full counter = %d, want both plans full after purge", got)
	}
}

// TestIncrementalDeleteInvalidatesFingerprint is the same property for a
// single-key DELETE /v1/cache/{key}: after invalidating the base plan, its
// neighbor cannot splice from it.
func TestIncrementalDeleteInvalidatesFingerprint(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/v1/plan", `{"model": "ResNet18", "glb_kb": 64}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base plan: status %d: %s", resp.StatusCode, body)
	}
	key := resp.Header.Get("X-SMM-Plan-Key")
	if key == "" {
		t.Fatal("plan response carries no X-SMM-Plan-Key")
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/cache/"+key, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}

	if resp, body := post(t, ts, "/v1/plan", neighborBody(t, "ResNet18", 10, 1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("neighbor plan: status %d: %s", resp.StatusCode, body)
	}
	if got := metricValue(t, ts, `smm_incremental_plans_total{outcome="spliced"}`); got != 0 {
		t.Fatalf("a neighbor spliced from a deleted plan (spliced counter = %d)", got)
	}
}

// TestBatchNeighborsSplice exercises the batch-local fingerprint index: a
// /v1/plan/batch of one base network plus neighbors splices within the
// batch even on a cold server.
func TestBatchNeighborsSplice(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	batch := fmt.Sprintf(`{"requests": [{"model": "ResNet18", "glb_kb": 64}, %s, %s]}`,
		neighborBody(t, "ResNet18", 5, 1), neighborBody(t, "ResNet18", 15, 2))
	if resp, body := post(t, ts, "/v1/plan/batch", batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	if got := metricValue(t, ts, `smm_incremental_plans_total{outcome="spliced"}`); got < 1 {
		t.Fatalf("spliced counter = %d after a neighbor batch", got)
	}
}
