package server

import (
	"context"
	"net/http"
	"sync"
	"time"

	"scratchmem/internal/cluster"
	"scratchmem/internal/plancache"
	"scratchmem/internal/policy"
)

// replicateFresh pushes a freshly computed plan toward its ring successor.
// Only the key's owner replicates (non-owners hold hot copies, not the
// authoritative one), only non-degraded plans travel, and the push is
// asynchronous and best-effort — a lost replica costs one recompute after
// an owner death, never a wrong answer. ctx contributes only its trace
// context, so the eventual push still appears in the computing request's
// trace.
func (s *Server) replicateFresh(ctx context.Context, key string, entry *planEntry) {
	f := s.fleet
	if f == nil || f.Repl == nil {
		return
	}
	cacheKey := "plan:" + key
	if f.Ring.Owner(cacheKey) != f.Self {
		return
	}
	rec, err := snapshotRecordFor(entry, key)
	if err != nil {
		return // degraded or unrenderable: recompute material, not replica material
	}
	f.Repl.Enqueue(ctx, cacheKey, rec)
}

// handleReplicate stores a replica pushed by a ring owner — the receiving
// half of successor replication. The payload is a SnapshotRecord and goes
// through exactly the warm-restore verification (key recompute +
// rehydration against this build's estimators), so a version-skewed or
// corrupted push is rejected, never trusted.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	var rec SnapshotRecord
	if err := decodeBody(w, r, &rec); err != nil {
		s.met.replicaRejected()
		s.fail(w, err)
		return
	}
	entry, key, err := restoreRecord(&rec)
	if err != nil {
		s.met.replicaRejected()
		s.writeError(w, http.StatusUnprocessableEntity, "replica rejected: "+err.Error())
		return
	}
	s.local.Put("plan:"+key, entry)
	s.met.replicaReceived()
	writeJSON(w, map[string]any{"stored": true, "key": key})
}

// derivedCacheKeys lists every cache entry a plan key anchors: the plan
// itself and the artifacts computed from it. Baseline simulations are keyed
// per split; DSE results use an options-stripped key and are left to LRU.
func derivedCacheKeys(key string) []string {
	return []string{
		"plan:" + key, "sim:" + key, "trace:" + key,
		"base:" + key + ":25", "base:" + key + ":50", "base:" + key + ":75",
	}
}

// removeLocal applies one invalidation to this member's caches, tombstoning
// in-flight computations (plancache.Remove semantics), and reports how many
// stored entries went away.
func (s *Server) removeLocal(key string) int {
	removed := 0
	for _, k := range derivedCacheKeys(key) {
		if s.cache.Remove(k) {
			removed++
		}
	}
	s.met.invalidatedLocally()
	return removed
}

// FanoutResult is one member's outcome inside an invalidation response.
type FanoutResult struct {
	Member string `json:"member"`
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
}

// invalidateAttempts is how many times a fan-out invalidation is tried per
// member. Best-effort: a member that stays unreachable keeps its entry
// until its own LRU or a later invalidation catches it.
const invalidateAttempts = 2

// fanout delivers an invalidation (key == "" means purge) to every live
// member besides self. The receiving side is marked fanout=no, so two
// members invalidating concurrently cannot forward in a loop.
func (s *Server) fanout(ctx context.Context, key string) []FanoutResult {
	f := s.fleet
	if f == nil || f.Invalidate == nil {
		return nil
	}
	members := f.LiveMembers()
	out := make([]FanoutResult, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			var err error
			for attempt := 0; attempt < invalidateAttempts; attempt++ {
				if err = f.Invalidate(ctx, m, key); err == nil {
					break
				}
				select {
				case <-ctx.Done():
					attempt = invalidateAttempts
				case <-time.After(50 * time.Millisecond):
				}
			}
			out[i] = FanoutResult{Member: m, OK: err == nil}
			if err != nil {
				out[i].Error = err.Error()
			}
		}(i, m)
	}
	wg.Wait()
	return out
}

// InvalidateResponse answers DELETE /v1/cache/{key}.
type InvalidateResponse struct {
	Key     string         `json:"key"`
	Removed int            `json:"removed"`
	Fanout  []FanoutResult `json:"fanout,omitempty"`
}

// PurgeResponse answers POST /v1/cache/purge.
type PurgeResponse struct {
	Purged int            `json:"purged"`
	Fanout []FanoutResult `json:"fanout,omitempty"`
}

// handleInvalidate removes one plan key (and its derived artifacts) from
// this member, then fans the removal out to every live member. ?fanout=no
// marks a fan-out delivery and applies locally only.
func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	resp := InvalidateResponse{Key: key, Removed: s.removeLocal(key)}
	if r.URL.Query().Get("fanout") != "no" {
		ctx, cancel := s.requestCtx(r)
		defer cancel()
		resp.Fanout = s.fanout(ctx, key)
	}
	writeJSON(w, resp)
}

// handlePurge empties this member's caches and fans the purge out to every
// live member. ?fanout=no marks a fan-out delivery and applies locally only.
func (s *Server) handlePurge(w http.ResponseWriter, r *http.Request) {
	resp := PurgeResponse{Purged: s.cache.Purge()}
	s.met.invalidatedLocally()
	if r.URL.Query().Get("fanout") != "no" {
		ctx, cancel := s.requestCtx(r)
		defer cancel()
		resp.Fanout = s.fanout(ctx, "")
	}
	writeJSON(w, resp)
}

// ClusterStatus answers GET /v1/cluster/status: this member's view of the
// fleet plus its own data-plane counters, so one status document carries
// everything the overview fan-out merges. Standalone servers answer with
// themselves alone.
type ClusterStatus struct {
	Self        string                 `json:"self,omitempty"`
	Members     []cluster.MemberHealth `json:"members,omitempty"`
	Replication cluster.ReplStats      `json:"replication"`
	// Cache, Memo and Peer are this member's own data-plane counters.
	Cache plancache.Stats   `json:"cache"`
	Memo  policy.MemoStats  `json:"memo"`
	Peer  cluster.PeerStats `json:"peer"`
	// DegradedPlans counts plans this member produced via the degradation
	// ladder.
	DegradedPlans int64 `json:"degraded_plans"`
}

// statusDoc assembles this member's ClusterStatus — the shared body of
// GET /v1/cluster/status and the self row of GET /v1/cluster/overview.
func (s *Server) statusDoc() ClusterStatus {
	resp := ClusterStatus{
		Cache:         s.cache.Stats(),
		Memo:          s.memo.Stats(),
		DegradedPlans: s.met.degradedCount(),
	}
	if ps, ok := s.cache.(cluster.PeerStatser); ok {
		resp.Peer = ps.PeerStats()
	}
	if f := s.fleet; f != nil {
		resp.Self = f.Self
		// Self is trivially alive (it is answering); peers come from probes.
		resp.Members = append(resp.Members, cluster.MemberHealth{Member: f.Self, Alive: true})
		resp.Members = append(resp.Members, f.Health.View()...)
		resp.Replication = f.Repl.Stats()
	}
	return resp
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.statusDoc())
}
