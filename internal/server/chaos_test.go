package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"scratchmem/internal/faultinject"
)

// chaosRequests are the workloads the chaos suite replays: several plan
// keys (no single-flight coalescing hides faults), a simulation and a DSE.
// All on TinyCNN so hundreds of executions stay cheap.
var chaosRequests = []struct{ path, body string }{
	{"/v1/plan", `{"model": "TinyCNN", "glb_kb": 32}`},
	{"/v1/plan", `{"model": "TinyCNN", "glb_kb": 16}`},
	{"/v1/plan", `{"model": "TinyCNN", "glb_kb": 8}`},
	{"/v1/simulate", `{"model": "TinyCNN", "glb_kb": 32}`},
	{"/v1/dse", `{"model": "TinyCNN", "glb_kb": 32}`},
}

// chaosResult is one request's outcome, gathered off the test goroutine.
type chaosResult struct {
	idx        int
	code       int
	body       []byte
	retryAfter string
	err        error
}

// chaosPost is post without *testing.T: the chaos suite fires requests from
// many goroutines, where t.Fatal is not allowed.
func chaosPost(url string, req int) chaosResult {
	resp, err := http.Post(url+chaosRequests[req].path, "application/json",
		strings.NewReader(chaosRequests[req].body))
	if err != nil {
		return chaosResult{idx: req, err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return chaosResult{idx: req, code: resp.StatusCode, body: b,
		retryAfter: resp.Header.Get("Retry-After"), err: err}
}

// cleanBaseline computes each chaos request's fault-free response on a
// pristine server, as the byte-exact truth the chaos runs are checked
// against.
func cleanBaseline(t *testing.T) [][]byte {
	t.Helper()
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	clean := make([][]byte, len(chaosRequests))
	for i, req := range chaosRequests {
		resp, body := post(t, ts, req.path, req.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("clean %s: status %d (%s)", req.path, resp.StatusCode, body)
		}
		clean[i] = body
	}
	return clean
}

// runChaos floods a fresh server with rounds×len(chaosRequests) concurrent
// requests while the given faults are armed, then verifies the resilience
// invariants: every status is in allowed, every 503 advertises Retry-After,
// every 200 body is byte-identical to the fault-free truth (the cache never
// served a fault-tainted entry), every worker slot drains, and once the
// faults are disarmed the server answers every request cleanly again.
func runChaos(t *testing.T, seed int64, faults []faultinject.Fault, allowed map[int]bool, clean [][]byte) {
	t.Helper()
	srv := New(Config{BreakerThreshold: -1}) // breakers have their own test
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	faultinject.Enable(seed, faults...)
	defer faultinject.Disable()

	const rounds = 8
	results := make(chan chaosResult, rounds*len(chaosRequests))
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for i := range chaosRequests {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results <- chaosPost(ts.URL, i)
			}(i)
		}
	}
	wg.Wait()
	close(results)

	codes := map[int]int{}
	for res := range results {
		if res.err != nil {
			t.Fatalf("%s: transport error: %v", chaosRequests[res.idx].path, res.err)
		}
		codes[res.code]++
		if !allowed[res.code] {
			t.Errorf("%s: unclassified status %d (%s)", chaosRequests[res.idx].path, res.code, res.body)
		}
		switch res.code {
		case http.StatusOK:
			if !bytes.Equal(res.body, clean[res.idx]) {
				t.Errorf("%s: 200 body diverged from fault-free truth:\ngot:  %s\nwant: %s",
					chaosRequests[res.idx].path, res.body, clean[res.idx])
			}
		case http.StatusServiceUnavailable:
			if res.retryAfter == "" {
				t.Errorf("%s: 503 without Retry-After", chaosRequests[res.idx].path)
			}
		}
	}
	t.Logf("status distribution over %d requests: %v", rounds*len(chaosRequests), codes)

	// Every worker slot must drain (abandoned flights may briefly outlive
	// their last waiter, so poll rather than assert instantly).
	deadline := time.Now().Add(5 * time.Second)
	for srv.sem.InUse() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d worker slots leaked after the chaos run", srv.sem.InUse())
		}
		time.Sleep(time.Millisecond)
	}

	// Disarmed, the server heals completely: every request — cached or
	// recomputed — returns the fault-free body.
	faultinject.Disable()
	for i, req := range chaosRequests {
		resp, body := post(t, ts, req.path, req.body)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, clean[i]) {
			t.Errorf("healed %s: status %d, body clean=%v", req.path, resp.StatusCode, bytes.Equal(body, clean[i]))
		}
	}
}

// TestChaosTransientFaults: error and latency faults at every seam. Only
// classified statuses may appear — 200 (clean result) or 503 (retryable,
// with Retry-After); never a bare 500.
func TestChaosTransientFaults(t *testing.T) {
	clean := cleanBaseline(t)
	faults := []faultinject.Fault{
		{Site: "server.plan", Kind: faultinject.KindError, P: 0.4},
		{Site: "server.simulate", Kind: faultinject.KindError, P: 0.4},
		{Site: "plancache.flight", Kind: faultinject.KindLatency, P: 0.5, Delay: time.Millisecond},
		{Site: "plancache.flight", Kind: faultinject.KindError, P: 0.25},
		{Site: "core.layer", Kind: faultinject.KindError, P: 0.1},
	}
	allowed := map[int]bool{
		http.StatusOK:                 true,
		http.StatusServiceUnavailable: true, // injected fault or shed queue
		http.StatusGatewayTimeout:     true, // latency past the deadline
	}
	runChaos(t, 42, faults, allowed, clean)
}

// TestChaosPanicFaults: injected panics are the one legitimate source of
// 500s; they are recovered (flight goroutine or handler), never cached, and
// never take the process down.
func TestChaosPanicFaults(t *testing.T) {
	clean := cleanBaseline(t)
	faults := []faultinject.Fault{
		{Site: "server.plan", Kind: faultinject.KindPanic, P: 0.4},
		{Site: "plancache.flight", Kind: faultinject.KindPanic, P: 0.25},
		{Site: "server.simulate", Kind: faultinject.KindPanic, P: 0.4},
	}
	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusInternalServerError: true, // recovered injected panic
		http.StatusServiceUnavailable:  true,
		http.StatusGatewayTimeout:      true,
	}
	runChaos(t, 7, faults, allowed, clean)
}
