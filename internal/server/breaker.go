package server

import (
	"sync"
	"time"
)

// breaker is a consecutive-panic circuit breaker for one compute route.
// A handler panic is a bug (or an injected chaos fault), and a panicking
// route burns a worker slot and a full request round-trip per attempt, so
// after threshold consecutive panics the breaker opens: requests fast-fail
// with 503 + Retry-After without touching the planner. After cooldown one
// half-open probe is admitted — its success closes the breaker, another
// panic reopens it for a fresh cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test seam; time.Now in production

	mu          sync.Mutex
	state       breakerState
	consecutive int       // panics since the last success
	openedAt    time.Time // when state last became open
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// newBreaker returns a breaker, or nil (always-allow) when threshold < 0.
func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 0 {
		return nil
	}
	if threshold == 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a request may proceed. Open, it fast-fails until
// the cooldown elapses, then admits exactly one probe (half-open); further
// requests keep failing fast while the probe is in flight.
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		return true
	case breakerHalfOpen:
		return false
	default:
		return true
	}
}

// success records a request that completed without panicking, closing the
// breaker and resetting the consecutive-panic count.
func (b *breaker) success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.state = breakerClosed
	b.consecutive = 0
	b.mu.Unlock()
}

// failure records a handler panic. The breaker opens when the count
// reaches the threshold, or immediately when a half-open probe panics.
func (b *breaker) failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.consecutive++
	if b.state == breakerHalfOpen || b.consecutive >= b.threshold {
		b.state = breakerOpen
		b.openedAt = b.now()
	}
	b.mu.Unlock()
}
