package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	scratchmem "scratchmem"
)

var update = flag.Bool("update", false, "rewrite golden files")

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// metric extracts one counter value from a /metrics body.
func metric(t *testing.T, body []byte, name string) int64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, body)
	}
	v, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

const tinyPlanBody = `{"model": "TinyCNN", "glb_kb": 32}`

// TestPlanMissThenHit covers the acceptance path: first request computes
// (miss), the identical second request is served from the cache (hit, seen
// in the metrics counters) with a byte-identical body.
func TestPlanMissThenHit(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	resp1, body1 := post(t, ts, "/v1/plan", tinyPlanBody)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first plan: status %d: %s", resp1.StatusCode, body1)
	}
	if h := resp1.Header.Get("X-SMM-Cache"); h != "miss" {
		t.Errorf("first plan: X-SMM-Cache = %q, want miss", h)
	}
	var doc scratchmem.PlanDoc
	if err := json.Unmarshal(body1, &doc); err != nil {
		t.Fatalf("plan body is not a PlanDoc: %v", err)
	}
	if doc.Model != "TinyCNN" || len(doc.Layers) == 0 || !doc.Feasible {
		t.Errorf("unexpected document: model=%q layers=%d feasible=%v", doc.Model, len(doc.Layers), doc.Feasible)
	}

	resp2, body2 := post(t, ts, "/v1/plan", tinyPlanBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second plan: status %d", resp2.StatusCode)
	}
	if h := resp2.Header.Get("X-SMM-Cache"); h != "hit" {
		t.Errorf("second plan: X-SMM-Cache = %q, want hit", h)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cache hit returned a different body than the miss")
	}
	if k1, k2 := resp1.Header.Get("X-SMM-Plan-Key"), resp2.Header.Get("X-SMM-Plan-Key"); k1 == "" || k1 != k2 {
		t.Errorf("plan keys differ or empty: %q vs %q", k1, k2)
	}

	_, mbody := get(t, ts, "/metrics")
	if hits := metric(t, mbody, "smm_cache_hits_total"); hits != 1 {
		t.Errorf("smm_cache_hits_total = %d, want 1", hits)
	}
	if misses := metric(t, mbody, "smm_cache_misses_total"); misses != 1 {
		t.Errorf("smm_cache_misses_total = %d, want 1", misses)
	}
	if n := metric(t, mbody, "smm_planner_latency_seconds_count"); n != 1 {
		t.Errorf("planner ran %d times, want 1", n)
	}
	// The same semantic request spelled via an explicit default config must
	// hit the same cache entry (canonical-key normalisation).
	resp3, body3 := post(t, ts, "/v1/plan",
		`{"model": "TinyCNN", "config": {"glb_bytes": 32768, "data_width_bits": 8, "ops_per_cycle": 512, "dram_bytes_per_cycle": 16, "include_padding": true}}`)
	if resp3.StatusCode != http.StatusOK || resp3.Header.Get("X-SMM-Cache") != "hit" {
		t.Errorf("equivalent explicit-config request: status %d cache %q, want 200 hit",
			resp3.StatusCode, resp3.Header.Get("X-SMM-Cache"))
	}
	if !bytes.Equal(body1, body3) {
		t.Error("equivalent request returned a different body")
	}
}

// TestPlanSingleFlight is the acceptance criterion: N concurrent identical
// requests run the planner exactly once.
func TestPlanSingleFlight(t *testing.T) {
	srv := New(Config{})
	var executions int32
	release := make(chan struct{})
	srv.planFn = func(ctx context.Context, n *scratchmem.Network, o scratchmem.PlanOptions) (*scratchmem.Plan, error) {
		atomic.AddInt32(&executions, 1)
		<-release
		return scratchmem.PlanModelCtx(ctx, n, o, nil)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const concurrent = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, concurrent)
	codes := make([]int, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := post(t, ts, "/v1/plan", tinyPlanBody)
			codes[i], bodies[i] = resp.StatusCode, b
		}(i)
	}
	// Wait until all but the leader have coalesced onto the flight, then
	// let the planner finish.
	deadline := time.Now().Add(5 * time.Second)
	for srv.cache.Stats().Coalesced < concurrent-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d requests coalesced", srv.cache.Stats().Coalesced)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := atomic.LoadInt32(&executions); n != 1 {
		t.Errorf("planner executed %d times for %d concurrent identical requests, want 1", n, concurrent)
	}
	for i := 0; i < concurrent; i++ {
		if codes[i] != http.StatusOK {
			t.Errorf("request %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d: body differs", i)
		}
	}
}

// TestPlanTimeout covers the deadline path: a planner slower than the
// request timeout yields 504 and the error is not cached.
func TestPlanTimeout(t *testing.T) {
	srv := New(Config{Timeout: 30 * time.Millisecond})
	block := make(chan struct{})
	var calls int32
	srv.planFn = func(ctx context.Context, n *scratchmem.Network, o scratchmem.PlanOptions) (*scratchmem.Plan, error) {
		if atomic.AddInt32(&calls, 1) == 1 {
			<-block // first call outlives the request deadline
		}
		return scratchmem.PlanModelCtx(ctx, n, o, nil)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/v1/plan", tinyPlanBody)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("timeout response is not a JSON error envelope: %s", body)
	}
	close(block)

	_, mbody := get(t, ts, "/metrics")
	if n := metric(t, mbody, `smm_errors_total{code="504"}`); n != 1 {
		t.Errorf("504 counter = %d, want 1", n)
	}
}

func TestSimulateAndBaseline(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/v1/simulate", tinyPlanBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", resp.StatusCode, body)
	}
	var sim SimulateResponse
	if err := json.Unmarshal(body, &sim); err != nil {
		t.Fatal(err)
	}
	if sim.MeasuredCycles <= 0 || sim.EstimatedCycles <= 0 || sim.PlanKey == "" {
		t.Errorf("implausible simulation: %+v", sim)
	}
	// Repeat is a cache hit.
	resp2, _ := post(t, ts, "/v1/simulate", tinyPlanBody)
	if resp2.Header.Get("X-SMM-Cache") != "hit" {
		t.Error("repeated simulate not served from cache")
	}

	resp3, body3 := post(t, ts, "/v1/simulate", `{"model": "TinyCNN", "glb_kb": 32, "baseline": {"split_percent": 50}}`)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("baseline: status %d: %s", resp3.StatusCode, body3)
	}
	var base BaselineResponse
	if err := json.Unmarshal(body3, &base); err != nil {
		t.Fatal(err)
	}
	if base.Baseline != "sa_50_50" || base.Cycles <= 0 || base.DRAMElems <= 0 {
		t.Errorf("implausible baseline result: %+v", base)
	}

	resp4, body4 := post(t, ts, "/v1/simulate", `{"model": "TinyCNN", "glb_kb": 32, "baseline": {"split_percent": 10}}`)
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("bad split accepted: status %d: %s", resp4.StatusCode, body4)
	}
}

func TestDSE(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/v1/dse", tinyPlanBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dse: status %d: %s", resp.StatusCode, body)
	}
	var dse DSEResponse
	if err := json.Unmarshal(body, &dse); err != nil {
		t.Fatal(err)
	}
	if !dse.Feasible || dse.AccessElems <= 0 {
		t.Errorf("implausible DSE result: %+v", dse)
	}
	// Plan-shaping options must not fragment the DSE cache key.
	resp2, _ := post(t, ts, "/v1/dse", `{"model": "TinyCNN", "glb_kb": 32, "homogeneous": true}`)
	if resp2.Header.Get("X-SMM-Cache") != "hit" {
		t.Error("DSE key depends on plan-shaping options")
	}
}

func TestInlineNetwork(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	net, err := scratchmem.BuiltinModel("TinyCNN")
	if err != nil {
		t.Fatal(err)
	}
	var nbuf bytes.Buffer
	if err := net.WriteJSON(&nbuf); err != nil {
		t.Fatal(err)
	}
	inline := fmt.Sprintf(`{"network": %s, "glb_kb": 32}`, nbuf.String())
	resp, body := post(t, ts, "/v1/plan", inline)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline network: status %d: %s", resp.StatusCode, body)
	}
	// An inline network identical to the builtin must share its cache slot:
	// the key is content-addressed, not name-addressed.
	resp2, _ := post(t, ts, "/v1/plan", tinyPlanBody)
	if resp2.Header.Get("X-SMM-Cache") != "hit" {
		t.Error("builtin request missed after identical inline-network request")
	}
}

func TestModelsAndHealthz(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/v1/models")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("models: status %d", resp.StatusCode)
	}
	var infos []ModelInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(servedModels) {
		t.Errorf("models: %d entries, want %d", len(infos), len(servedModels))
	}
	for _, info := range infos {
		if info.Layers <= 0 {
			t.Errorf("model %s has %d layers", info.Name, info.Layers)
		}
	}

	resp, body = get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("healthz: status %d body %q", resp.StatusCode, body)
	}
}

func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	cases := []struct {
		name, path, body string
		want             int
	}{
		{"malformed JSON", "/v1/plan", `{`, http.StatusBadRequest},
		{"unknown field", "/v1/plan", `{"model": "TinyCNN", "glb_kb": 32, "nope": 1}`, http.StatusBadRequest},
		{"no model", "/v1/plan", `{"glb_kb": 32}`, http.StatusBadRequest},
		{"both model and network", "/v1/plan", `{"model": "TinyCNN", "network": {"name": "x", "layers": []}, "glb_kb": 32}`, http.StatusBadRequest},
		{"unknown model", "/v1/plan", `{"model": "NoSuchNet", "glb_kb": 32}`, http.StatusBadRequest},
		{"no glb", "/v1/plan", `{"model": "TinyCNN"}`, http.StatusBadRequest},
		{"bad objective", "/v1/plan", `{"model": "TinyCNN", "glb_kb": 32, "objective": "speed"}`, http.StatusBadRequest},
		{"infeasible GLB, strict", "/v1/plan", `{"model": "ResNet18", "glb_kb": 1, "strict": true}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, body := post(t, ts, tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: not a JSON error envelope: %s", tc.name, body)
		}
	}

	// Wrong method on a POST route.
	resp, _ := get(t, ts, "/v1/plan")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan: status %d, want 405", resp.StatusCode)
	}
}

// TestPlannerPanicIsA500 exercises the recover path end to end: a panic in
// the planner must produce a 500 response, not kill the server.
func TestPlannerPanicIsA500(t *testing.T) {
	srv := New(Config{})
	srv.planFn = func(context.Context, *scratchmem.Network, scratchmem.PlanOptions) (*scratchmem.Plan, error) {
		panic("planner exploded")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/v1/plan", tinyPlanBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d (%s), want 500", resp.StatusCode, body)
	}
	// Panics are not cached: a fixed planner then succeeds.
	srv.planFn = func(ctx context.Context, n *scratchmem.Network, o scratchmem.PlanOptions) (*scratchmem.Plan, error) {
		return scratchmem.PlanModelCtx(ctx, n, o, nil)
	}
	resp2, _ := post(t, ts, "/v1/plan", tinyPlanBody)
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("recovery request: status %d, want 200", resp2.StatusCode)
	}
}

// TestDSEGoldenBody pins the exact response body of POST /v1/dse for the
// canonical request, so wire-format drift is caught by diff rather than by
// a downstream consumer. Regenerate with: go test ./internal/server -run
// TestDSEGoldenBody -update
func TestDSEGoldenBody(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/v1/dse", tinyPlanBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dse: status %d: %s", resp.StatusCode, body)
	}
	golden := filepath.Join("testdata", "dse_tinycnn_32kb.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("DSE body drifted from golden file:\ngot:  %s\nwant: %s", body, want)
	}
}

// TestClientCancelIs499 and TestPlanTimeout together pin the 499-vs-504
// distinction: the server must answer "they hung up" and "we were slow"
// with different typed-error mappings, resolved via errors.Is, not text.
func TestClientCancelIs499(t *testing.T) {
	srv := New(Config{})
	started := make(chan struct{})
	var once sync.Once
	srv.planFn = func(ctx context.Context, n *scratchmem.Network, o scratchmem.PlanOptions) (*scratchmem.Plan, error) {
		once.Do(func() { close(started) })
		<-ctx.Done() // outlive the caller; the abandoned flight cancels us
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/plan", strings.NewReader(tinyPlanBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; err == nil {
		t.Fatal("canceled request unexpectedly completed")
	}

	// The client never sees the 499 (it hung up), but the server counts it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, mbody := get(t, ts, "/metrics")
		if n := metric(t, mbody, `smm_errors_total{code="499"}`); n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("499 never counted after client cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCanceledClientFreesWorkerSlot is the semaphore-release guarantee: a
// sole caller abandoning its flight cancels the computation context, the
// planner returns, and the worker slot frees for the next request instead
// of staying occupied until the (already-pointless) plan completes.
func TestCanceledClientFreesWorkerSlot(t *testing.T) {
	srv := New(Config{Workers: 1})
	blocked := make(chan struct{})
	srv.planFn = func(ctx context.Context, n *scratchmem.Network, o scratchmem.PlanOptions) (*scratchmem.Plan, error) {
		if n.Name == "GoogLeNet" {
			close(blocked)
			<-ctx.Done() // hold the only slot until the flight is abandoned
			return nil, ctx.Err()
		}
		return scratchmem.PlanModelCtx(ctx, n, o, nil)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/plan",
		strings.NewReader(`{"model": "GoogLeNet", "glb_kb": 64}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	slow := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		close(slow)
	}()
	<-blocked // the slow plan holds the single worker slot
	cancel()  // sole caller leaves; the slot must free promptly
	<-slow

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(tinyPlanBody))
	if err != nil {
		t.Fatalf("request after canceled slot-holder: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d (%s), want 200 — worker slot not released", resp.StatusCode, b)
	}
}

// TestLeaderCancelFollowerStillServed is the other half of the waiter
// accounting: with a follower coalesced onto the flight, the leader's
// cancellation must NOT kill the computation.
func TestLeaderCancelFollowerStillServed(t *testing.T) {
	srv := New(Config{})
	started := make(chan struct{})
	release := make(chan struct{})
	srv.planFn = func(ctx context.Context, n *scratchmem.Network, o scratchmem.PlanOptions) (*scratchmem.Plan, error) {
		close(started)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return scratchmem.PlanModelCtx(ctx, n, o, nil)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	req, err := http.NewRequestWithContext(leaderCtx, http.MethodPost, ts.URL+"/v1/plan", strings.NewReader(tinyPlanBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	leaderDone := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		close(leaderDone)
	}()
	<-started

	followerCode := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(tinyPlanBody))
		if err != nil {
			followerCode <- -1
			return
		}
		resp.Body.Close()
		followerCode <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.cache.Stats().Coalesced < 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	<-leaderDone
	close(release)
	select {
	case code := <-followerCode:
		if code != http.StatusOK {
			t.Errorf("follower status %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower never answered after leader canceled")
	}
}

// TestPlanBodyMatchesCLIDocument pins the contract that the server's plan
// body equals the canonical PlanDoc rendering cmd/smm-plan -json emits.
func TestPlanBodyMatchesCLIDocument(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	_, body := post(t, ts, "/v1/plan", tinyPlanBody)
	net, _ := scratchmem.BuiltinModel("TinyCNN")
	plan, err := scratchmem.PlanModel(net, scratchmem.PlanOptions{GLBKiloBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	want, err := scratchmem.PlanDocument(plan).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("server body differs from canonical PlanDoc rendering:\nserver: %s\ncanon:  %s", body, want)
	}
}
