package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"

	scratchmem "scratchmem"
	"scratchmem/internal/faultinject"
	"scratchmem/internal/model"
	"scratchmem/internal/obs"
	"scratchmem/internal/parallel"
	"scratchmem/internal/plancache"
	"scratchmem/internal/policy"
)

// maxBatchItems bounds one POST /v1/plan/batch. A DSE sweep over every
// builtin model and a generous GLB grid fits comfortably; anything larger
// should be split, or it would monopolise the worker pool for one caller.
const maxBatchItems = 256

// BatchRequest is the body of POST /v1/plan/batch.
type BatchRequest struct {
	Requests []PlanRequest `json:"requests"`
}

// BatchItem is one per-request result inside a BatchResponse, in request
// order. Status carries the HTTP code the same request would have received
// from POST /v1/plan; Plan is the byte-identical document body on 200.
type BatchItem struct {
	Status  int             `json:"status"`
	PlanKey string          `json:"plan_key,omitempty"`
	Cache   string          `json:"cache,omitempty"` // "hit" or "miss", as X-SMM-Cache
	Plan    json.RawMessage `json:"plan,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// BatchResponse answers POST /v1/plan/batch. MemoHits/MemoMisses report the
// batch-shared estimate memo: a DSE-style sweep (same network, many
// configurations) re-estimates the same (layer, policy, config) shapes over
// and over, so sharing one memo across the batch is the point of the route.
type BatchResponse struct {
	Results    []BatchItem `json:"results"`
	MemoHits   int64       `json:"memo_hits"`
	MemoMisses int64       `json:"memo_misses"`
}

// handleBatch plans every request in the body concurrently under one shared
// estimate memo. Items succeed and fail independently — the response is
// always 200 with per-item statuses — and each item takes the same cache /
// single-flight / peer-fill path as a lone POST /v1/plan, so the returned
// documents are byte-identical to sequential calls.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if len(req.Requests) == 0 {
		s.fail(w, badRequestf("batch needs at least one request"))
		return
	}
	if len(req.Requests) > maxBatchItems {
		s.fail(w, badRequestf("batch of %d exceeds the %d-item limit", len(req.Requests), maxBatchItems))
		return
	}
	s.met.observeBatch(len(req.Requests))
	span := obs.SpanFrom(r.Context())
	span.SetAttr("batch_size", len(req.Requests))
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	memo := policy.NewMemoCap(DefaultMemoEntries)
	// One shared fingerprint index per batch: batch items are typically
	// dense neighbor sets (DSE sweeps, one-layer mutations), so checkpoints
	// captured by early items splice later ones even before anything lands
	// in the server-wide index.
	batchFP := plancache.NewFingerprints(maxBatchItems)
	results := make([]BatchItem, len(req.Requests))
	// Fan out across the CPUs; the worker semaphore inside planned still
	// bounds how many planner executions actually run at once, so a big
	// batch queues exactly like a burst of individual requests.
	err := parallel.ForEachCtx(ctx, len(req.Requests), runtime.GOMAXPROCS(0), func(ctx context.Context, i int) error {
		pr := &req.Requests[i]
		net, opts, err := pr.resolve()
		if err != nil {
			code, msg := statusOf(err)
			results[i] = BatchItem{Status: code, Error: msg}
			return nil
		}
		key, err := scratchmem.PlanKey(net, opts)
		if err != nil {
			code, msg := statusOf(err)
			results[i] = BatchItem{Status: code, Error: msg}
			return nil
		}
		entry, shared, err := s.planned(ctx, key, pr, memo, batchFP, net, opts)
		if err != nil {
			code, msg := statusOf(err)
			results[i] = BatchItem{Status: code, PlanKey: key, Error: msg}
			return nil
		}
		item := BatchItem{Status: http.StatusOK, PlanKey: key, Cache: "miss", Plan: entry.body}
		if shared {
			item.Cache = "hit"
		}
		results[i] = item
		return nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	ms := memo.Stats()
	writeJSON(w, BatchResponse{Results: results, MemoHits: ms.Hits, MemoMisses: ms.Misses})
}

// handlePeerFill computes a plan on behalf of a ring peer. It is the
// receiving half of the cluster's cache-fill protocol: identical to
// /v1/plan except that the request is never forwarded again (a nil wire
// request keeps the fill local), so two nodes whose rings momentarily
// disagree about a key's owner bounce the request at most once instead of
// forwarding it in a loop.
func (s *Server) handlePeerFill(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	net, opts, err := req.resolve()
	if err != nil {
		s.fail(w, err)
		return
	}
	key, err := scratchmem.PlanKey(net, opts)
	if err != nil {
		s.fail(w, err)
		return
	}
	span := obs.SpanFrom(r.Context())
	span.SetAttr("model_hash", key)
	// ?cached=only is the successor-lookup half of the replication
	// protocol: answer from cache or 404, never compute. A dead owner's
	// peers use it to ask the key's ring successor for the replica the
	// owner pushed, and a miss must stay cheap — the asker falls back to
	// computing locally, so triggering a compute here would turn the
	// exactly-once guarantee into at-least-twice.
	if r.URL.Query().Get("cached") == "only" {
		v, ok := s.cache.Get("plan:" + key)
		if !ok {
			s.writeError(w, http.StatusNotFound, "no cached plan for key "+key)
			return
		}
		entry := v.(*planEntry)
		cacheHeader(w, true)
		w.Header().Set("X-SMM-Plan-Key", key)
		w.Header().Set("Content-Type", "application/json")
		w.Write(entry.body)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	entry, shared, err := s.planned(ctx, key, nil, nil, nil, net, opts)
	if err != nil {
		s.fail(w, err)
		return
	}
	if entry.plan.Degraded {
		span.SetAttr("degraded_mode", entry.plan.DegradedMode)
	}
	cacheHeader(w, shared)
	w.Header().Set("X-SMM-Plan-Key", key)
	w.Header().Set("Content-Type", "application/json")
	w.Write(entry.body)
}

// SnapshotOptions carries the plan options a PlanDoc does not itself
// record; together with the document's config and objective they rebuild
// the exact PlanOptions — and therefore the exact PlanKey — of the
// original request.
type SnapshotOptions struct {
	Homogeneous     bool `json:"homogeneous,omitempty"`
	DisablePrefetch bool `json:"disable_prefetch,omitempty"`
	InterLayerReuse bool `json:"interlayer,omitempty"`
	Strict          bool `json:"strict,omitempty"`
}

// SnapshotRecord is one line of the GET /v1/cache/snapshot stream: a
// self-contained, restorable description of one cached plan. The network
// travels in canonical JSON so the restorer recomputes the identical
// content hash.
type SnapshotRecord struct {
	Key     string              `json:"key"`
	Network json.RawMessage     `json:"network"`
	Options SnapshotOptions     `json:"options"`
	Doc     *scratchmem.PlanDoc `json:"doc"`
}

// handleSnapshot streams the cached plans as newline-delimited JSON
// records, most recently used first. Only plan entries travel — simulation
// and DSE results are cheap to recompute and not rehydratable — and
// degraded plans are skipped because their documents are explicitly not
// decision-reproducible.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if err := faultinject.Hit("cluster.snapshot"); err != nil {
		s.fail(w, err)
		return
	}
	var recs []SnapshotRecord
	for _, e := range s.cache.Snapshot() {
		key, ok := strings.CutPrefix(e.Key, "plan:")
		if !ok {
			continue
		}
		pe, ok := e.Val.(*planEntry)
		if !ok {
			continue
		}
		rec, err := snapshotRecordFor(pe, key)
		if err != nil {
			continue
		}
		recs = append(recs, *rec)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-SMM-Snapshot-Entries", fmt.Sprint(len(recs)))
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return // mid-stream: the connection is gone, nothing to report
		}
	}
}

// snapshotRecordFor renders one cached plan entry as a self-contained,
// restorable record — the currency of both GET /v1/cache/snapshot and the
// successor-replication push. Degraded plans are refused: their documents
// are explicitly not decision-reproducible, so they must be recomputed,
// never copied.
func snapshotRecordFor(pe *planEntry, key string) (*SnapshotRecord, error) {
	if pe.net == nil {
		return nil, fmt.Errorf("entry for %s has no network", key)
	}
	if pe.plan.Degraded {
		return nil, fmt.Errorf("plan for %s is degraded", key)
	}
	canon, err := model.CanonicalJSON(pe.net)
	if err != nil {
		return nil, err
	}
	return &SnapshotRecord{
		Key:     key,
		Network: canon,
		Options: SnapshotOptions{
			Homogeneous:     pe.opts.Homogeneous,
			DisablePrefetch: pe.opts.DisablePrefetch,
			InterLayerReuse: pe.opts.InterLayerReuse,
			Strict:          pe.opts.Strict,
		},
		Doc: scratchmem.PlanDocument(pe.plan),
	}, nil
}

// RestoreSnapshot replays a snapshot stream into the local cache (the
// smm-serve -warm-from boot path). Every record is verified before it is
// trusted: the network must hash back to the record's key and the document
// must rehydrate against this build's estimators, so a stale or foreign
// snapshot degrades to skipped records, never to wrong answers. Records
// stream most-recently-used first, so they are inserted in reverse to
// reproduce the source's LRU order.
func (s *Server) RestoreSnapshot(r io.Reader) (added, skipped int, err error) {
	return s.restoreStream(r, false)
}

// RestoreSnapshotMissing is RestoreSnapshot for the periodic re-warm loop:
// records whose key is already cached are left untouched (no LRU
// promotion, no overwrite of a fresher local copy), so a rewarm tick
// against an unchanged peer is free.
func (s *Server) RestoreSnapshotMissing(r io.Reader) (added, skipped int, err error) {
	return s.restoreStream(r, true)
}

func (s *Server) restoreStream(r io.Reader, onlyMissing bool) (added, skipped int, err error) {
	dec := json.NewDecoder(r)
	var recs []SnapshotRecord
	for {
		var rec SnapshotRecord
		if derr := dec.Decode(&rec); derr == io.EOF {
			break
		} else if derr != nil {
			return added, skipped, fmt.Errorf("server: snapshot stream: %v", derr)
		}
		recs = append(recs, rec)
	}
	for i := len(recs) - 1; i >= 0; i-- {
		if onlyMissing && s.local.Contains("plan:"+recs[i].Key) {
			continue
		}
		entry, key, rerr := restoreRecord(&recs[i])
		if rerr != nil {
			skipped++
			s.log.Warn("snapshot record skipped", "key", recs[i].Key, "error", rerr)
			continue
		}
		s.local.Put("plan:"+key, entry)
		added++
	}
	return added, skipped, nil
}

// restoreRecord verifies and rehydrates one snapshot record.
func restoreRecord(rec *SnapshotRecord) (*planEntry, string, error) {
	if rec.Doc == nil {
		return nil, "", fmt.Errorf("record has no plan document")
	}
	net, err := model.ReadJSON(bytes.NewReader(rec.Network))
	if err != nil {
		return nil, "", fmt.Errorf("network: %v", err)
	}
	obj, err := scratchmem.ParseObjective(rec.Doc.Objective)
	if err != nil {
		return nil, "", err
	}
	opts := scratchmem.PlanOptions{
		Config:          rec.Doc.Config.ToConfig(),
		Objective:       obj,
		Homogeneous:     rec.Options.Homogeneous,
		DisablePrefetch: rec.Options.DisablePrefetch,
		InterLayerReuse: rec.Options.InterLayerReuse,
		Strict:          rec.Options.Strict,
	}
	key, err := scratchmem.PlanKey(net, opts)
	if err != nil {
		return nil, "", err
	}
	if key != rec.Key {
		return nil, "", fmt.Errorf("content hash %s does not match record key %s", key, rec.Key)
	}
	p, err := scratchmem.RehydratePlan(net, rec.Doc)
	if err != nil {
		return nil, "", err
	}
	body, err := scratchmem.PlanDocument(p).MarshalIndent()
	if err != nil {
		return nil, "", err
	}
	return &planEntry{plan: p, body: body, net: net, opts: opts}, key, nil
}

// VersionInfo answers GET /v1/version and the smm-serve -version flag.
type VersionInfo struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	Go        string `json:"go"`
	Revision  string `json:"vcs_revision,omitempty"`
	BuildTime string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

// Version reports what this binary was built from, via debug/buildinfo.
func Version() VersionInfo {
	v := VersionInfo{Go: runtime.Version(), Version: "(devel)"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.Module = bi.Main.Path
	if bi.Main.Version != "" {
		v.Version = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			v.Revision = kv.Value
		case "vcs.time":
			v.BuildTime = kv.Value
		case "vcs.modified":
			v.Modified = kv.Value == "true"
		}
	}
	return v
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, Version())
}
