package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	scratchmem "scratchmem"
	"scratchmem/internal/cluster"
	"scratchmem/internal/core"
	"scratchmem/internal/engine"
	"scratchmem/internal/faultinject"
	"scratchmem/internal/model"
	"scratchmem/internal/obs"
	"scratchmem/internal/parallel"
	"scratchmem/internal/plancache"
	"scratchmem/internal/policy"
	"scratchmem/internal/smmerr"
	"scratchmem/internal/trace"
)

// maxBodyBytes bounds request bodies; the largest builtin network is a few
// kilobytes of JSON, so 8 MiB leaves generous headroom for custom models.
const maxBodyBytes = 8 << 20

// PlanRequest is the body of POST /v1/plan (and the common half of
// /v1/simulate and /v1/dse). Exactly one of Model (a builtin name) or
// Network (an inline network in the scratchmem JSON format) selects the
// workload; GLBKiloBytes or Config selects the accelerator.
type PlanRequest struct {
	Model           string                `json:"model,omitempty"`
	Network         json.RawMessage       `json:"network,omitempty"`
	GLBKiloBytes    int                   `json:"glb_kb,omitempty"`
	Config          *scratchmem.ConfigDoc `json:"config,omitempty"`
	Objective       string                `json:"objective,omitempty"` // "accesses" (default) or "latency"
	Homogeneous     bool                  `json:"homogeneous,omitempty"`
	DisablePrefetch bool                  `json:"disable_prefetch,omitempty"`
	InterLayerReuse bool                  `json:"interlayer,omitempty"`
	// Strict disables the degradation ladder: an infeasible request gets
	// the historical 422 instead of a 200 with a degraded fallback plan.
	Strict bool `json:"strict,omitempty"`
}

// SimulateRequest selects plan simulation (default) or, with Baseline set,
// the SCALE-Sim-style separate-buffer baseline.
type SimulateRequest struct {
	PlanRequest
	Baseline *BaselineSpec `json:"baseline,omitempty"`
}

// BaselineSpec names one of the paper's fixed-partition baselines by its
// ifmap share of GLB − 4 kB (25, 50 or 75).
type BaselineSpec struct {
	SplitPercent int `json:"split_percent"`
}

// SimulateResponse answers a plan simulation.
type SimulateResponse struct {
	Model           string `json:"model"`
	PlanKey         string `json:"plan_key"`
	MeasuredCycles  int64  `json:"measured_cycles"`
	EstimatedCycles int64  `json:"estimated_cycles"`
}

// BaselineResponse answers a baseline simulation.
type BaselineResponse struct {
	Model     string `json:"model"`
	Baseline  string `json:"baseline"`
	Cycles    int64  `json:"cycles"`
	DRAMElems int64  `json:"dram_elems"`
}

// DSEResponse answers POST /v1/dse.
type DSEResponse struct {
	Model       string `json:"model"`
	AccessElems int64  `json:"access_elems"`
	Feasible    bool   `json:"feasible"`
}

// ModelInfo is one row of GET /v1/models.
type ModelInfo struct {
	Name   string `json:"name"`
	Layers int    `json:"layers"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// badRequestf marks client errors discovered while resolving a request;
// they carry smmerr.ErrBadModel so fail maps them to 400.
func badRequestf(format string, args ...any) error {
	return smmerr.BadModelf(format, args...)
}

// resolve turns the wire request into the planner's inputs.
func (pr *PlanRequest) resolve() (*scratchmem.Network, scratchmem.PlanOptions, error) {
	var opts scratchmem.PlanOptions
	if (pr.Model == "") == (len(pr.Network) == 0) {
		return nil, opts, badRequestf("exactly one of \"model\" or \"network\" is required")
	}
	var net *scratchmem.Network
	var err error
	if pr.Model != "" {
		net, err = scratchmem.BuiltinModel(pr.Model)
		if err != nil {
			return nil, opts, badRequestf("%v", err)
		}
	} else {
		net, err = model.ReadJSON(bytes.NewReader(pr.Network))
		if err != nil {
			return nil, opts, badRequestf("invalid \"network\": %v", err)
		}
	}
	switch pr.Objective {
	case "", "accesses":
		opts.Objective = scratchmem.MinAccesses
	case "latency":
		opts.Objective = scratchmem.MinLatency
	default:
		return nil, opts, badRequestf("unknown objective %q (want accesses or latency)", pr.Objective)
	}
	if pr.Config != nil {
		opts.Config = pr.Config.ToConfig()
	} else if pr.GLBKiloBytes > 0 {
		opts.Config = scratchmem.DefaultConfig(pr.GLBKiloBytes)
	} else {
		return nil, opts, badRequestf("one of \"glb_kb\" or \"config\" is required")
	}
	if err := opts.Config.Validate(); err != nil {
		return nil, opts, badRequestf("invalid config: %v", err)
	}
	opts.Homogeneous = pr.Homogeneous
	opts.DisablePrefetch = pr.DisablePrefetch
	opts.InterLayerReuse = pr.InterLayerReuse
	opts.Strict = pr.Strict
	return net, opts, nil
}

// planEntry is the cached value for one plan key: the plan itself plus the
// pre-rendered response body, so repeated requests return byte-identical
// documents without re-marshalling. The network and options are retained so
// GET /v1/cache/snapshot can emit a self-contained, restorable record.
type planEntry struct {
	plan *scratchmem.Plan
	body []byte
	net  *scratchmem.Network
	opts scratchmem.PlanOptions
}

// decodeBody parses a JSON request body strictly.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequestf("invalid request body: %v", err)
	}
	return nil
}

// requestCtx applies the server's per-request deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.Timeout)
}

// writeError emits the JSON error envelope and counts it.
func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	s.met.error(code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

// statusClientClosedRequest is nginx's non-standard code for a caller that
// went away before the response was ready; we count it apart from genuine
// deadline expiry (504) so the metrics distinguish "we were slow" from
// "they hung up".
const statusClientClosedRequest = 499

// shedRetryAfterSeconds is the Retry-After hint on every 503: both shed
// (queue full) and circuit-open responses clear quickly, so clients should
// come back almost immediately rather than waiting a whole backoff tier.
const shedRetryAfterSeconds = "1"

// writeShed emits the 503 + Retry-After envelope for load shedding and
// open circuit breakers.
func (s *Server) writeShed(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", shedRetryAfterSeconds)
	s.writeError(w, http.StatusServiceUnavailable, msg)
}

// statusOf maps an error from resolving or computing to an HTTP status and
// message. The dispatch is purely on the typed taxonomy (errors.Is/As
// through however many LayerError wrappers), never on message text. It is
// pure so the batch handler can classify per-item errors without touching
// response headers or counters.
func statusOf(err error) (code int, msg string) {
	var infeasible *scratchmem.InfeasibleError
	switch {
	case errors.Is(err, parallel.ErrShed):
		return http.StatusServiceUnavailable, "worker queue full, retry later"
	case faultinject.IsInjected(err):
		// Injected faults model transient internal failures: advertise
		// them as retryable 503s, never as bare 500s.
		return http.StatusServiceUnavailable, err.Error()
	case errors.Is(err, scratchmem.ErrBadModel):
		return http.StatusBadRequest, err.Error()
	case errors.As(err, &infeasible), errors.Is(err, scratchmem.ErrInfeasible):
		return http.StatusUnprocessableEntity, err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "request deadline exceeded"
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest, "client closed request"
	default:
		return http.StatusInternalServerError, err.Error()
	}
}

// fail writes the mapped error response and records its counters.
func (s *Server) fail(w http.ResponseWriter, err error) {
	code, msg := statusOf(err)
	if errors.Is(err, parallel.ErrShed) {
		s.met.shedRequest()
	}
	if code == http.StatusServiceUnavailable {
		s.writeShed(w, msg)
		return
	}
	s.writeError(w, code, msg)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// cacheHeader reports how the response was produced.
func cacheHeader(w http.ResponseWriter, shared bool) {
	if shared {
		w.Header().Set("X-SMM-Cache", "hit")
	} else {
		w.Header().Set("X-SMM-Cache", "miss")
	}
}

// planned returns the cached-or-computed planEntry for a request. It is the
// shared path of /v1/plan, /v1/plan/batch, /v1/simulate and /v1/peer/fill:
// cache lookup, single-flight execution under a worker slot, latency
// observation. A non-nil wire request makes the key eligible for a peer
// cache-fill (the request is what the key's ring owner computes from); the
// peer-fill handler itself passes nil so rings that momentarily disagree
// cannot forward a request in a loop. A non-nil memo (a batch's shared
// table) is installed on the flight context, where it survives the
// flight's obs.Detach and wins over the server-lifetime memo.
func (s *Server) planned(ctx context.Context, key string, wire *PlanRequest, memo *policy.Memo, batchFP *plancache.Fingerprints, net *scratchmem.Network, opts scratchmem.PlanOptions) (*planEntry, bool, error) {
	var spec *cluster.FillSpec
	if wire != nil {
		spec = &cluster.FillSpec{
			Request: wire,
			Decode:  func(body []byte) (any, error) { return decodePeerPlan(body, net, opts) },
		}
	}
	// Differential planning: install a differ so the planner's requested
	// rung can resume from the best shape-overlapping checkpoint — the
	// batch-local index first (neighbors in one batch are the densest
	// source), then the server-wide index. Homogeneous plans have no
	// per-layer decisions to splice.
	var differ *core.Differ
	group := ""
	if !opts.Homogeneous {
		group = fpGroup(opts)
		differ = &core.Differ{Lookup: func(chain []policy.LayerKey) *core.Checkpoint {
			if ck, ok := batchFP.Best(group, chain).(*core.Checkpoint); ok && ck != nil {
				return ck
			}
			ck, _ := s.fp.Best(group, chain).(*core.Checkpoint)
			return ck
		}}
	}
	v, shared, err := s.cache.Do(ctx, "plan:"+key, spec, func(ctx context.Context) (any, error) {
		if err := s.sem.Acquire(ctx); err != nil {
			return nil, err
		}
		defer s.sem.Release()
		if memo != nil {
			ctx = policy.WithMemo(ctx, memo)
		}
		if differ != nil {
			ctx = core.WithDiffer(ctx, differ)
		}
		start := time.Now()
		p, err := s.planFn(ctx, net, opts)
		s.met.observePlanner(time.Since(start))
		if err != nil {
			return nil, err
		}
		if differ != nil && differ.Outcome != "" {
			s.met.incrementalPlan(differ.Outcome, differ.LayersReused)
		}
		if p.Degraded {
			s.met.degradedPlan()
			obs.LoggerFrom(ctx).Warn("plan degraded", "model", net.Name, "mode", p.DegradedMode)
		}
		// Freshly computed only: cache hits must not re-count the plan's
		// policy choices or planned DRAM traffic.
		s.met.planOutcome(p)
		body, err := scratchmem.PlanDocument(p).MarshalIndent()
		if err != nil {
			return nil, err
		}
		return &planEntry{plan: p, body: body, net: net, opts: opts}, nil
	})
	if err != nil {
		return nil, false, err
	}
	entry := v.(*planEntry)
	if !shared {
		// Freshly computed here: index the run's checkpoint for future
		// neighbors. Degraded plans are excluded — their decisions come
		// from relaxed rungs, not the requested knobs — and the insert is
		// atomic with the cache's own store (InsertFingerprint verifies the
		// key is still cached, so Remove/Purge can never lose the race).
		if differ != nil && differ.Checkpoint != nil && !entry.plan.Degraded {
			chain := differ.Checkpoint.Chain()
			batchFP.Insert("plan:"+key, group, chain, differ.Checkpoint)
			s.local.InsertFingerprint("plan:"+key, group, chain, differ.Checkpoint)
		}
		// If this member owns the key, push the plan to its ring successor
		// (async, best-effort) so an owner death does not cost the fleet a
		// recompute.
		s.replicateFresh(ctx, key, entry)
	}
	return entry, shared, nil
}

// fpGroup digests the planning knobs a checkpoint depends on into the
// fingerprint-index group key: only requests with byte-identical knobs may
// share checkpoints (the planner re-verifies compatibility before reuse).
// Strict is deliberately absent — it gates the degradation ladder, not the
// requested rung's decisions — and Batch 1 normalises to 0 exactly as
// scratchmem.PlanKey does.
func fpGroup(opts scratchmem.PlanOptions) string {
	cfg := opts.Config
	if cfg.Batch == 1 {
		cfg.Batch = 0
	}
	return fmt.Sprintf("%d/%d/%d/%d/%t/%d|%d|%t|%t",
		cfg.GLBBytes, cfg.DataWidthBits, cfg.OpsPerCycle, cfg.DRAMBytesPerCycle,
		cfg.IncludePadding, cfg.Batch, opts.Objective, opts.DisablePrefetch, opts.InterLayerReuse)
}

// decodePeerPlan turns a peer's /v1/peer/fill response into a planEntry:
// parse the document, rehydrate it against this build's estimators
// (scratchmem.RehydratePlan verifies every figure, so a version-skewed
// owner is detected, not trusted) and re-render the body locally — the
// round-trip property guarantees it is byte-identical to the owner's.
func decodePeerPlan(body []byte, net *scratchmem.Network, opts scratchmem.PlanOptions) (any, error) {
	var doc scratchmem.PlanDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, fmt.Errorf("peer fill: %v", err)
	}
	p, err := scratchmem.RehydratePlan(net, &doc)
	if err != nil {
		return nil, fmt.Errorf("peer fill: %w", err)
	}
	rendered, err := scratchmem.PlanDocument(p).MarshalIndent()
	if err != nil {
		return nil, err
	}
	return &planEntry{plan: p, body: rendered, net: net, opts: opts}, nil
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	net, opts, err := req.resolve()
	if err != nil {
		s.fail(w, err)
		return
	}
	key, err := scratchmem.PlanKey(net, opts)
	if err != nil {
		s.fail(w, err)
		return
	}
	span := obs.SpanFrom(r.Context())
	span.SetAttr("model_hash", key)
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	entry, shared, err := s.planned(ctx, key, &req, nil, nil, net, opts)
	if err != nil {
		s.fail(w, err)
		return
	}
	if entry.plan.Degraded {
		span.SetAttr("degraded_mode", entry.plan.DegradedMode)
	}
	cacheHeader(w, shared)
	w.Header().Set("X-SMM-Plan-Key", key)
	w.Header().Set("Content-Type", "application/json")
	w.Write(entry.body)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	net, opts, err := req.resolve()
	if err != nil {
		s.fail(w, err)
		return
	}
	key, err := scratchmem.PlanKey(net, opts)
	if err != nil {
		s.fail(w, err)
		return
	}
	obs.SpanFrom(r.Context()).SetAttr("model_hash", key)
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if req.Baseline != nil {
		s.simulateBaseline(ctx, w, key, net, opts, req.Baseline)
		return
	}
	// Plan first (cached under its own key), then time it. The plan half
	// may be filled from its ring owner; the timing below always runs
	// locally.
	entry, _, err := s.planned(ctx, key, &req.PlanRequest, nil, nil, net, opts)
	if err != nil {
		s.fail(w, err)
		return
	}
	if !entry.plan.Feasible() {
		// A degraded baseline plan can exceed the GLB (it reports the
		// shortfall honestly); the executor would reject its schedule, so
		// classify here instead of surfacing an opaque engine error.
		s.fail(w, fmt.Errorf("plan for %s needs %d bytes of GLB but only %d are available, cannot simulate: %w",
			net.Name, entry.plan.MaxMemoryBytes(), entry.plan.Cfg.GLBBytes, scratchmem.ErrInfeasible))
		return
	}
	v, shared, err := s.cache.Do(ctx, "sim:"+key, nil, func(ctx context.Context) (any, error) {
		if err := s.sem.Acquire(ctx); err != nil {
			return nil, err
		}
		defer s.sem.Release()
		measured, estimated, err := s.simFn(ctx, entry.plan)
		if err != nil {
			return nil, err
		}
		return &SimulateResponse{
			Model:           net.Name,
			PlanKey:         key,
			MeasuredCycles:  measured,
			EstimatedCycles: estimated,
		}, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	cacheHeader(w, shared)
	writeJSON(w, v)
}

// simulateBaseline runs the separate-buffer SCALE-Sim-style baseline.
func (s *Server) simulateBaseline(ctx context.Context, w http.ResponseWriter, key string, net *scratchmem.Network, opts scratchmem.PlanOptions, spec *BaselineSpec) {
	cfg := opts.Config
	glbKB := int(cfg.GLBBytes / 1024)
	var idx int
	switch spec.SplitPercent {
	case 25:
		idx = 0
	case 50:
		idx = 1
	case 75:
		idx = 2
	default:
		s.fail(w, badRequestf("baseline split_percent must be 25, 50 or 75, got %d", spec.SplitPercent))
		return
	}
	base := scratchmem.BaselineSplits(glbKB, cfg.DataWidthBits)[idx]
	cacheKey := fmt.Sprintf("base:%s:%d", key, spec.SplitPercent)
	v, shared, err := s.cache.Do(ctx, cacheKey, nil, func(ctx context.Context) (any, error) {
		if err := s.sem.Acquire(ctx); err != nil {
			return nil, err
		}
		defer s.sem.Release()
		res, err := scratchmem.SimulateBaselineCtx(ctx, net, base, nil)
		if err != nil {
			return nil, err
		}
		return &BaselineResponse{
			Model:     net.Name,
			Baseline:  base.Name,
			Cycles:    res.Cycles(),
			DRAMElems: res.DRAMTotal(),
		}, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	cacheHeader(w, shared)
	writeJSON(w, v)
}

func (s *Server) handleDSE(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	net, opts, err := req.resolve()
	if err != nil {
		s.fail(w, err)
		return
	}
	// Only (network, config) matter to the search; strip the plan-shaping
	// options so equivalent DSE requests share a key.
	key, err := scratchmem.PlanKey(net, scratchmem.PlanOptions{Config: opts.Config})
	if err != nil {
		s.fail(w, err)
		return
	}
	obs.SpanFrom(r.Context()).SetAttr("model_hash", key)
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	v, shared, err := s.cache.Do(ctx, "dse:"+key, nil, func(ctx context.Context) (any, error) {
		if err := s.sem.Acquire(ctx); err != nil {
			return nil, err
		}
		defer s.sem.Release()
		elems, feasible, err := scratchmem.DSEAccessElemsCtx(ctx, net, opts.Config, nil)
		if err != nil {
			return nil, err
		}
		return &DSEResponse{Model: net.Name, AccessElems: elems, Feasible: feasible}, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	cacheHeader(w, shared)
	writeJSON(w, v)
}

// servedModels are the networks /v1/models advertises: the paper's Table-2
// six plus the extra builtins.
var servedModels = []string{
	"EfficientNetB0", "GoogLeNet", "MnasNet", "MobileNet", "MobileNetV2",
	"ResNet18", "AlexNet", "VGG16", "TinyCNN",
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	infos := make([]ModelInfo, 0, len(servedModels))
	for _, name := range servedModels {
		n, err := scratchmem.BuiltinModel(name)
		if err != nil {
			s.fail(w, err)
			return
		}
		infos = append(infos, ModelInfo{Name: n.Name, Layers: len(n.Layers)})
	}
	writeJSON(w, infos)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var ps cluster.PeerStats
	if st, ok := s.cache.(cluster.PeerStatser); ok {
		ps = st.PeerStats()
	}
	var fv fleetView
	if s.fleet != nil {
		fv.repl = s.fleet.Repl.Stats()
		// The serving member never probes itself, so prepend it explicitly
		// (alive by construction — it is answering this scrape): one scrape
		// then counts the expected fleet size, not fleet size minus one.
		fv.health = append([]cluster.MemberHealth{{Member: s.fleet.Self, Alive: true}}, s.fleet.Health.View()...)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.met.write(w, s.cache.Stats(), s.memo.Stats(), ps, fv, s.sem.InUse(), s.sem.Cap(), s.tracer.Finished())
}

// handleTrace renders the execution trace of an already-planned model:
// plan first (POST /v1/plan returns the key in X-SMM-Plan-Key), then GET
// /v1/trace/{key}?format=perfetto|csv. The event stream is computed once
// per key by dry-running every layer's tile schedule and cached alongside
// the plan, so repeat downloads are a lookup.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	obs.SpanFrom(r.Context()).SetAttr("model_hash", key)
	format := r.URL.Query().Get("format")
	switch format {
	case "", "perfetto", "csv":
	default:
		s.fail(w, badRequestf("unknown format %q (want perfetto or csv)", format))
		return
	}
	v, ok := s.cache.Get("plan:" + key)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no cached plan for key "+key+"; POST /v1/plan first")
		return
	}
	plan := v.(*planEntry).plan
	if !plan.Feasible() {
		s.fail(w, fmt.Errorf("plan for %s needs %d bytes of GLB but only %d are available, cannot trace: %w",
			plan.Model, plan.MaxMemoryBytes(), plan.Cfg.GLBBytes, scratchmem.ErrInfeasible))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	tv, shared, err := s.cache.Do(ctx, "trace:"+key, nil, func(ctx context.Context) (any, error) {
		if err := s.sem.Acquire(ctx); err != nil {
			return nil, err
		}
		defer s.sem.Release()
		return traceLog(ctx, plan)
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	log := tv.(*trace.Log)
	cacheHeader(w, shared)
	if format == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		log.WriteCSV(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteChromeTrace(w, log, plan.Cfg)
}

// traceLog executes a plan's tile schedules in dry-run mode, collecting the
// network-wide DMA/compute event stream.
func traceLog(ctx context.Context, p *scratchmem.Plan) (*trace.Log, error) {
	log := &trace.Log{}
	for i := range p.Layers {
		lp := &p.Layers[i]
		if _, err := engine.DryRunCtx(ctx, &lp.Layer, &lp.Est, p.Cfg, log); err != nil {
			return nil, err
		}
	}
	return log, nil
}

// handleSpans renders the tracer's retained finished spans as a Perfetto
// timeline: one row per trace, span events as instant marks.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	obs.WriteChromeSpans(w, s.tracer.Spans())
}
