package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	scratchmem "scratchmem"
	"scratchmem/internal/cluster"
	"scratchmem/internal/faultinject"
	"scratchmem/internal/obs"
	"scratchmem/internal/plancache"
)

// waitSpans polls until the tracer has finished at least n spans; the
// request span ends after the response body reaches the client, so tests
// must not read the span store the instant the POST returns.
func waitSpans(t *testing.T, tr *obs.Tracer, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tr.Finished() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d spans finished, want >= %d", tr.Finished(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// spanNamed returns the first finished span with the given name, or nil.
func spanNamed(tr *obs.Tracer, name string) *obs.Span {
	for _, s := range tr.Spans() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// TestFleetCrossNodeTrace is the PR's acceptance walk: one plan request to
// a non-owner whose fill crosses to the ring owner yields a SINGLE trace id
// in both members' span stores, with the owner's request span parented
// under the caller's peer_fill span — one distributed trace, not two
// per-process ones.
func TestFleetCrossNodeTrace(t *testing.T) {
	nodes, ring := newFleet(t, 3, cluster.PeerOptions{})
	key := planKeyFor(t, "TinyCNN", 32)
	owner := ring.Owner(key)

	var callerN, ownerN *fleetNode
	for _, n := range nodes {
		if n.url == owner {
			ownerN = n
		} else if callerN == nil {
			callerN = n
		}
	}
	if callerN == nil || ownerN == nil {
		t.Fatal("ring did not split caller/owner across 3 nodes")
	}

	resp, body := post(t, callerN.ts, "/v1/plan", tinyPlanBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan via non-owner: status %d: %s", resp.StatusCode, body)
	}
	if callerN.planned.Load() != 0 || ownerN.planned.Load() != 1 {
		t.Fatalf("planner runs caller=%d owner=%d, want 0/1 (fill must cross to the owner)",
			callerN.planned.Load(), ownerN.planned.Load())
	}

	// Caller: the request root span and the peer_fill child share one trace.
	waitSpans(t, callerN.srv.tracer, 2)
	waitSpans(t, ownerN.srv.tracer, 1)
	fill := spanNamed(callerN.srv.tracer, "peer_fill")
	if fill == nil {
		t.Fatalf("caller has no peer_fill span; spans: %v", spanNames(callerN.srv.tracer))
	}
	traceID := fill.TraceID
	root := spanNamed(callerN.srv.tracer, "request")
	if root == nil || root.TraceID != traceID || root.ParentID != "" {
		t.Fatalf("caller request span %+v does not root trace %s", root, traceID)
	}

	// Owner: its /v1/peer/fill request span joined the caller's trace, and
	// its remote parent is exactly the caller's peer_fill span.
	var remote *obs.Span
	for _, s := range ownerN.srv.tracer.Spans() {
		if s.Name == "request" && s.TraceID == traceID {
			remote = s
		}
	}
	if remote == nil {
		t.Fatalf("owner has no request span in trace %s; spans: %v", traceID, spanNames(ownerN.srv.tracer))
	}
	if remote.ParentID != fill.SpanID {
		t.Fatalf("owner request span parent = %s, want the caller's peer_fill span %s", remote.ParentID, fill.SpanID)
	}
	if got := remote.Attr("route"); got != "/v1/peer/fill" {
		t.Errorf("remote span route = %v, want /v1/peer/fill", got)
	}

	// The rendered timelines on BOTH members carry the one trace id.
	for _, n := range []*fleetNode{callerN, ownerN} {
		if _, b := get(t, n.ts, "/v1/spans"); !strings.Contains(string(b), traceID) {
			t.Errorf("%s /v1/spans does not mention trace %s", n.url, traceID)
		}
	}
}

func spanNames(tr *obs.Tracer) []string {
	var names []string
	for _, s := range tr.Spans() {
		names = append(names, s.Name)
	}
	return names
}

// obsNode is a fleet member with its own access-log buffer, for asserting
// what trace ids land in the logs of servers receiving peer traffic.
type obsNode struct {
	*chaosNode
	logBuf *syncBuffer
}

// newObsFleet boots n members with the full control plane (health,
// replication, status transport) AND a JSON access log per member.
func newObsFleet(t *testing.T, n int) (map[string]*obsNode, []string, *cluster.Ring) {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	ring, err := cluster.NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	hopts := cluster.HealthOptions{Interval: time.Hour, DeadAfter: 2, Timeout: time.Second}
	nodes := make(map[string]*obsNode, n)
	for i, self := range urls {
		logBuf := &syncBuffer{}
		logger, err := obs.NewLogger(logBuf, "info", "json")
		if err != nil {
			t.Fatal(err)
		}
		health := cluster.NewHealth(ring, self, chaosProbe, hopts)
		repl := cluster.NewReplicator(ring, self, chaosPush, health, cluster.ReplicatorOptions{})
		fleet := &cluster.Fleet{Ring: ring, Self: self, Health: health, Repl: repl, Invalidate: chaosInvalidate, Status: chaosStatus}
		srv := New(Config{
			Timeout: 5 * time.Second,
			Logger:  logger,
			Fleet:   fleet,
			Cluster: func(local *plancache.Cache) cluster.Backend {
				peer := cluster.NewPeer(cluster.NewLocal(local), ring, self, cluster.TransportFunc(testFill),
					cluster.PeerOptions{Health: health, Lookup: chaosLookup})
				return cluster.NewLayered(plancache.New(32), peer, peer.Remote)
			},
		})
		counter := &atomic.Int64{}
		inner := srv.planFn
		srv.planFn = func(ctx context.Context, net *scratchmem.Network, o scratchmem.PlanOptions) (*scratchmem.Plan, error) {
			counter.Add(1)
			return inner(ctx, net, o)
		}
		ts := &httptest.Server{Listener: listeners[i], Config: &http.Server{Handler: srv.Handler()}}
		ts.Start()
		repl.Start()
		cn := &chaosNode{url: self, srv: srv, ts: ts, fleet: fleet, planned: counter}
		t.Cleanup(cn.kill)
		nodes[self] = &obsNode{chaosNode: cn, logBuf: logBuf}
	}
	return nodes, urls, ring
}

// traceOf extracts the trace_id of the first access-log record matching
// route, waiting for the asynchronous log write.
func traceOf(t *testing.T, n *obsNode, route string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, rec := range logRecords(t, n.logBuf) {
			if rec["msg"] == "request" && rec["route"] == route {
				id, _ := rec["trace_id"].(string)
				return id
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never logged a %s request:\n%s", n.url, route, n.logBuf.String())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFleetPeerTrafficLogsInboundTraceID pins the access-log half of trace
// propagation: the owner's /v1/peer/fill record and the successor's
// /v1/peer/replicate record both carry the ORIGINATING request's trace id,
// not fresh per-process ones.
func TestFleetPeerTrafficLogsInboundTraceID(t *testing.T) {
	nodes, urls, ring := newObsFleet(t, 3)
	key := planKeyFor(t, "TinyCNN", 32)
	owner := ring.Owner(key)
	succ, ok := ring.Successor(key)
	if !ok {
		t.Fatal("no successor on a 3-member ring")
	}
	caller := ""
	for _, u := range urls {
		if u != owner && u != succ {
			caller = u
		}
	}
	if caller == "" {
		t.Skip("TinyCNN key maps owner+successor onto fewer than 2 distinct members")
	}

	resp, body := post(t, nodes[caller].ts, "/v1/plan", tinyPlanBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d: %s", resp.StatusCode, body)
	}
	flushRepl(t, nodes[owner].chaosNode)

	callerTrace := traceOf(t, nodes[caller], "/v1/plan")
	if callerTrace == "" {
		t.Fatal("caller access log has no trace_id")
	}
	if got := traceOf(t, nodes[owner], "/v1/peer/fill"); got != callerTrace {
		t.Errorf("owner peer-fill log trace_id = %q, want the originating %q", got, callerTrace)
	}
	if got := traceOf(t, nodes[succ], "/v1/peer/replicate"); got != callerTrace {
		t.Errorf("successor replicate log trace_id = %q, want the originating %q", got, callerTrace)
	}
}

// decodeOverview GETs /v1/cluster/overview and requires HTTP 200 — the
// endpoint's contract is that degradation lives in the rows, never the
// status code.
func decodeOverview(t *testing.T, ts *httptest.Server) OverviewResponse {
	t.Helper()
	resp, body := get(t, ts, "/v1/cluster/overview")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("overview: status %d: %s", resp.StatusCode, body)
	}
	var ov OverviewResponse
	if err := json.Unmarshal(body, &ov); err != nil {
		t.Fatalf("overview does not decode: %v: %s", err, body)
	}
	return ov
}

// TestFleetOverviewFromEveryMember: each member's overview lists all three
// members with their own health views and cache counters, ring shares sum
// to one, and the totals reflect the fleet-wide cache state.
func TestFleetOverviewFromEveryMember(t *testing.T) {
	hopts := cluster.HealthOptions{Interval: time.Hour, DeadAfter: 2, Timeout: time.Second}
	nodes, urls, ring := newChaosFleet(t, 3, hopts, false)

	key := planKeyFor(t, "TinyCNN", 32)
	owner := ring.Owner(key)
	if resp, body := post(t, nodes[owner].ts, "/v1/plan", tinyPlanBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed plan: status %d: %s", resp.StatusCode, body)
	}
	for _, u := range urls {
		nodes[u].fleet.Health.ProbeNow(context.Background())
	}

	for _, u := range urls {
		ov := decodeOverview(t, nodes[u].ts)
		if ov.Self != u {
			t.Errorf("overview from %s claims self=%s", u, ov.Self)
		}
		if len(ov.Members) != 3 || ov.Totals.Members != 3 || ov.Totals.Reachable != 3 {
			t.Fatalf("overview from %s: %d rows, totals %+v; want 3 rows all reachable", u, len(ov.Members), ov.Totals)
		}
		shareSum := 0.0
		for _, row := range ov.Members {
			shareSum += row.RingShare
			if row.Error != "" || row.Status == nil {
				t.Fatalf("overview from %s: member %s degraded in a healthy fleet: %q", u, row.Member, row.Error)
				continue
			}
			if row.Status.Self != row.Member {
				t.Errorf("member %s's status claims self=%s", row.Member, row.Status.Self)
			}
			// Each member's own health view covers the whole fleet, alive.
			seen := map[string]bool{}
			for _, mh := range row.Status.Members {
				if mh.Alive {
					seen[mh.Member] = true
				}
			}
			for _, m := range urls {
				if !seen[m] {
					t.Errorf("member %s's health view misses %s alive: %+v", row.Member, m, row.Status.Members)
				}
			}
		}
		if shareSum < 0.999 || shareSum > 1.001 {
			t.Errorf("ring shares sum to %f, want ~1", shareSum)
		}
		// The seeded plan is one miss-then-entry somewhere in the fleet.
		if ov.Totals.CacheEntries < 1 || ov.Totals.CacheMisses < 1 {
			t.Errorf("totals %+v do not reflect the seeded plan", ov.Totals)
		}
	}
}

// TestFleetOverviewDeadMember: killing one member degrades exactly its row
// to the stable dead-member stub — the response stays 200, the survivors'
// rows stay full, and /v1/cluster/status reports the retraction.
func TestFleetOverviewDeadMember(t *testing.T) {
	hopts := cluster.HealthOptions{Interval: time.Hour, DeadAfter: 2, Timeout: time.Second}
	nodes, urls, _ := newChaosFleet(t, 3, hopts, false)

	victim, querier := urls[0], urls[1]
	nodes[victim].kill()
	nodes[querier].fleet.Health.ProbeNow(context.Background())
	nodes[querier].fleet.Health.ProbeNow(context.Background())

	var cs ClusterStatus
	if _, b := get(t, nodes[querier].ts, "/v1/cluster/status"); json.Unmarshal(b, &cs) != nil {
		t.Fatalf("bad cluster status: %s", b)
	}
	victimDead := false
	for _, mh := range cs.Members {
		if mh.Member == victim && !mh.Alive {
			victimDead = true
		}
	}
	if !victimDead {
		t.Fatalf("status does not report %s dead: %+v", victim, cs.Members)
	}

	ov := decodeOverview(t, nodes[querier].ts)
	if ov.Totals.Members != 3 || ov.Totals.Reachable != 2 {
		t.Fatalf("totals %+v, want 3 members 2 reachable", ov.Totals)
	}
	for _, row := range ov.Members {
		if row.Member == victim {
			if row.Status != nil || row.Error != errMemberDead.Error() {
				t.Errorf("victim row = %+v, want the dead-member stub", row)
			}
		} else if row.Status == nil {
			t.Errorf("survivor %s degraded: %q", row.Member, row.Error)
		}
	}
}

// TestFleetOverviewUnderFaults: injected cluster.overview faults degrade
// the remote rows to error stubs while the self row (no round-trip) stays
// full — still HTTP 200. With cluster.peer faults a plan through a
// non-owner still answers 200 via the local-compute fallback.
func TestFleetOverviewUnderFaults(t *testing.T) {
	hopts := cluster.HealthOptions{Interval: time.Hour, DeadAfter: 2, Timeout: time.Second}
	nodes, urls, ring := newChaosFleet(t, 3, hopts, false)
	querier := urls[0]

	faultinject.Enable(7, faultinject.Fault{Site: "cluster.overview", Kind: faultinject.KindError, P: 1})
	ov := decodeOverview(t, nodes[querier].ts)
	faultinject.Disable()
	if ov.Totals.Reachable != 1 {
		t.Fatalf("totals %+v, want exactly the self row reachable under full overview faults", ov.Totals)
	}
	for _, row := range ov.Members {
		if row.Member == querier {
			if row.Status == nil {
				t.Errorf("self row degraded under remote-fetch faults: %q", row.Error)
			}
		} else if row.Error == "" || row.Status != nil {
			t.Errorf("remote row %s not degraded under injected faults: %+v", row.Member, row)
		}
	}

	key := planKeyFor(t, "TinyCNN", 32)
	owner := ring.Owner(key)
	caller := ""
	for _, u := range urls {
		if u != owner {
			caller = u
		}
	}
	faultinject.Enable(7, faultinject.Fault{Site: "cluster.peer", Kind: faultinject.KindError, P: 1})
	resp, body := post(t, nodes[caller].ts, "/v1/plan", tinyPlanBody)
	faultinject.Disable()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan under cluster.peer faults: status %d: %s (must fall back to local compute)", resp.StatusCode, body)
	}
	if nodes[caller].planned.Load() != 1 {
		t.Errorf("caller planned %d times, want 1 (local fallback)", nodes[caller].planned.Load())
	}
}

// TestFleetMetricsSelfHealth pins the satellite fix: a member's own row in
// smm_member_health is present and 1 — the exporter must not omit self just
// because the probe loop never probes it.
func TestFleetMetricsSelfHealth(t *testing.T) {
	hopts := cluster.HealthOptions{Interval: time.Hour, DeadAfter: 2, Timeout: time.Second}
	nodes, urls, _ := newChaosFleet(t, 3, hopts, false)
	self := urls[0]
	_, body := get(t, nodes[self].ts, "/metrics")
	want := fmt.Sprintf("smm_member_health{member=%q} 1", self)
	if !strings.Contains(string(body), want) {
		t.Errorf("/metrics missing %q:\n%s", want, body)
	}
}
