// Package server exposes the planner, simulators and design-space search
// as a JSON-over-HTTP service ("planning as a service"). Planning is a
// pure function of (network, accelerator config, options), so results are
// kept in a content-addressed LRU (internal/plancache) keyed by
// scratchmem.PlanKey: repeated requests become a map lookup, and
// concurrent identical requests collapse onto a single planner execution
// (single-flight). Heavy executions are bounded by a counting semaphore
// (internal/parallel), every request carries a deadline, and the handler
// set is stdlib-only.
//
// Routes:
//
//	POST /v1/plan           — run the analyser (paper Algorithm 1), return a PlanDoc
//	POST /v1/plan/batch     — plan many requests sharing one estimate memo
//	POST /v1/simulate       — time a plan end-to-end, or run the SCALE-Sim baseline
//	POST /v1/dse            — exhaustive tile-size search (off-chip traffic optimum)
//	POST /v1/peer/fill      — internal: compute a plan on behalf of a ring peer
//	POST /v1/peer/replicate — internal: store a verified replica pushed by a ring owner
//	GET  /v1/cache/snapshot — stream the cached plans for warm restore (-warm-from)
//	DELETE /v1/cache/{key}  — invalidate one plan key, fanned out fleet-wide
//	POST /v1/cache/purge    — empty the plan cache, fanned out fleet-wide
//	GET  /v1/cluster/status — this member's liveness view of the fleet
//	GET  /v1/cluster/overview — merged fleet view: every member's status, fanned out and tolerant of dead peers
//	GET  /v1/trace/{key}    — a planned model's execution trace (Perfetto JSON or CSV)
//	GET  /v1/spans          — recent request spans as a Perfetto timeline
//	GET  /v1/models         — list the built-in networks
//	GET  /v1/version        — build/module version info
//	GET  /healthz           — liveness probe
//	GET  /metrics           — plain-text counters (requests, cache, latency histograms)
//
// With -peers configured, several smm-serve processes form one logical
// planner: each plan key has a consistent-hash owner (internal/cluster) and
// non-owners fill their cache from it over /v1/peer/fill before computing
// locally, so every plan is computed once fleet-wide.
//
// Every request runs under a trace span (internal/obs); handlers down the
// stack open child spans (cache, plan, simulate), and the per-request
// structured logger carries the trace ID so one grep connects a log record
// to its spans.
package server

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	scratchmem "scratchmem"
	"scratchmem/internal/breaker"
	"scratchmem/internal/cluster"
	"scratchmem/internal/faultinject"
	"scratchmem/internal/obs"
	"scratchmem/internal/parallel"
	"scratchmem/internal/plancache"
	"scratchmem/internal/policy"
)

// Config parameterises a Server.
type Config struct {
	// Workers caps concurrent planner/simulator/DSE executions
	// (GOMAXPROCS when <= 0). Waiting requests queue on the semaphore
	// until their deadline or the queue bound, whichever comes first.
	Workers int
	// CacheEntries is the plan-cache capacity. 0 selects the default
	// (DefaultCacheEntries); negative disables storage while keeping
	// single-flight deduplication.
	CacheEntries int
	// Timeout is the per-request deadline (DefaultTimeout when <= 0).
	Timeout time.Duration
	// QueueDepth bounds the requests waiting for a worker slot; past the
	// bound the server sheds with 503 + Retry-After instead of letting
	// them camp until their deadline. 0 selects DefaultQueueDepth;
	// negative leaves the queue unbounded.
	QueueDepth int
	// BreakerThreshold is how many consecutive handler panics trip a
	// compute route's circuit breaker to fast-503. 0 selects
	// DefaultBreakerThreshold; negative disables the breakers.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker fast-fails before
	// admitting a half-open probe (DefaultBreakerCooldown when <= 0).
	BreakerCooldown time.Duration
	// Logger receives the access log and request-scoped records (a discard
	// logger when nil, so the server never nil-checks).
	Logger *slog.Logger
	// Tracer collects request spans. When nil the server builds its own
	// retaining DefaultSpanRing finished spans; the phase-latency metrics
	// are derived from its OnFinish hook either way.
	Tracer *obs.Tracer
	// SlowRequest is the threshold past which a completed request is also
	// logged at warn level (0 disables slow-request logging).
	SlowRequest time.Duration
	// Cluster, when non-nil, wraps the local plan cache into the fleet
	// backend (cmd/smm-serve composes Layered over Peer over Local from the
	// -peers flag). Nil keeps the historical single-node behaviour.
	Cluster func(local *plancache.Cache) cluster.Backend
	// Fleet, when non-nil, is the cluster control plane: liveness view,
	// successor replication and the fan-out invalidation transport. Nil
	// (standalone, or clustering without self-healing) turns every fleet
	// behaviour into a no-op.
	Fleet *cluster.Fleet
}

// Defaults for Config zero values.
const (
	DefaultCacheEntries     = 256
	DefaultTimeout          = 30 * time.Second
	DefaultQueueDepth       = 64
	DefaultBreakerThreshold = breaker.DefaultThreshold
	DefaultBreakerCooldown  = breaker.DefaultCooldown
	// DefaultSpanRing is how many finished spans the server's own tracer
	// retains for GET /v1/spans when Config.Tracer is nil.
	DefaultSpanRing = 256
	// DefaultMemoEntries caps the server-lifetime estimate memo. An entry
	// is a few hundred bytes, so the cap bounds the table at tens of MB
	// while comfortably holding every shape of the built-in model set many
	// configurations over.
	DefaultMemoEntries = 1 << 16
)

// Server wires the public scratchmem API behind HTTP handlers with a
// shared result cache. Construct with New.
type Server struct {
	cfg Config
	// cache is the backend every plan request goes through: the local
	// single-flight LRU alone, or the cluster composition over it. Requests
	// to non-clustered value kinds (simulations, sweeps, traces) pass a nil
	// fill spec and stay local either way.
	cache cluster.Backend
	// local is the authoritative in-process store under cache; warm
	// snapshot restore inserts through it directly.
	local *plancache.Cache
	// fleet is the cluster control plane (Config.Fleet); nil standalone.
	fleet    *cluster.Fleet
	sem      *parallel.Semaphore
	met      *metrics
	mux      *http.ServeMux
	breakers map[string]*breaker.Breaker // per compute route
	log      *slog.Logger
	tracer   *obs.Tracer
	// memo is the server-lifetime estimate memo: plan executions share it
	// via the request context, so repeated shapes — across layers of one
	// model or across distinct requests that miss the plan cache (different
	// options, same network) — cost one estimation. Capped so a hostile
	// stream of novel shapes cannot grow it without bound.
	memo *policy.Memo
	// fp indexes locally cached plans by shape-signature chain for
	// differential planning: a near-identical request resumes from the
	// best-overlapping cached plan's checkpoint instead of re-planning
	// every layer. Attached to local, so cache Remove/Purge/eviction
	// invalidate fingerprints in lockstep.
	fp *plancache.Fingerprints

	// planFn runs the planner; a test seam (defaults to
	// scratchmem.PlanModelCtx). The context is the flight's, not any single
	// caller's: it is canceled only when every waiter has abandoned the
	// request, so implementations should honour it to free their worker slot.
	planFn func(context.Context, *scratchmem.Network, scratchmem.PlanOptions) (*scratchmem.Plan, error)
	// simFn times a plan; a test seam (defaults to scratchmem.SimulatePlanCtx).
	simFn func(context.Context, *scratchmem.Plan) (measured, estimated int64, err error)
}

// routes is the fixed set of request-counter labels.
var routes = []string{
	"/v1/plan", "/v1/plan/batch", "/v1/simulate", "/v1/dse", "/v1/trace",
	"/v1/peer/fill", "/v1/peer/replicate", "/v1/cache/snapshot",
	"/v1/cache/invalidate", "/v1/cache/purge", "/v1/cluster/status",
	"/v1/cluster/overview", "/v1/spans", "/v1/models", "/v1/version",
	"/healthz", "/metrics",
}

// computeRoutes are the routes that run planner/simulator/DSE work; each
// gets its own circuit breaker, so a panicking planner does not take the
// cheap informational routes down with it. /v1/trace belongs here because
// it dry-runs every layer's tile schedule on a trace-cache miss.
var computeRoutes = []string{"/v1/plan", "/v1/plan/batch", "/v1/simulate", "/v1/dse", "/v1/trace", "/v1/peer/fill"}

// New builds a Server with its cache, semaphore and handler set.
func New(cfg Config) *Server {
	entries := cfg.CacheEntries
	switch {
	case entries == 0:
		entries = DefaultCacheEntries
	case entries < 0:
		entries = 0
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	queue := cfg.QueueDepth
	if queue == 0 {
		queue = DefaultQueueDepth
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.Discard()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(DefaultSpanRing)
	}
	memo := policy.NewMemoCap(DefaultMemoEntries)
	local := plancache.New(entries)
	fp := plancache.NewFingerprints(0)
	local.AttachFingerprints(fp)
	var backend cluster.Backend = cluster.NewLocal(local)
	if cfg.Cluster != nil {
		backend = cfg.Cluster(local)
	}
	s := &Server{
		cfg:      cfg,
		cache:    backend,
		local:    local,
		fleet:    cfg.Fleet,
		sem:      parallel.NewQueuedSemaphore(cfg.Workers, queue),
		met:      newMetrics(routes),
		breakers: make(map[string]*breaker.Breaker, len(computeRoutes)),
		log:      logger,
		tracer:   tracer,
		memo:     memo,
		fp:       fp,
		planFn: func(ctx context.Context, n *scratchmem.Network, o scratchmem.PlanOptions) (*scratchmem.Plan, error) {
			if err := faultinject.Hit("server.plan"); err != nil {
				return nil, err
			}
			// A batch hands its own shared memo to the flight context; only
			// fall back to the server-lifetime memo when none is present.
			if policy.MemoFrom(ctx) == nil {
				ctx = policy.WithMemo(ctx, memo)
			}
			return scratchmem.PlanModelCtx(ctx, n, o, nil)
		},
		simFn: func(ctx context.Context, p *scratchmem.Plan) (int64, int64, error) {
			if err := faultinject.Hit("server.simulate"); err != nil {
				return 0, 0, err
			}
			return scratchmem.SimulatePlanCtx(ctx, p, nil)
		},
	}
	for _, route := range computeRoutes {
		s.breakers[route] = breaker.New(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	// The phase-latency histograms are derived from finished spans: every
	// plan/simulate/cache span anywhere down the stack lands here.
	s.tracer.OnFinish(s.met.observeSpan)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", s.counted("/v1/plan", s.handlePlan))
	mux.HandleFunc("POST /v1/plan/batch", s.counted("/v1/plan/batch", s.handleBatch))
	mux.HandleFunc("POST /v1/peer/fill", s.counted("/v1/peer/fill", s.handlePeerFill))
	mux.HandleFunc("POST /v1/peer/replicate", s.counted("/v1/peer/replicate", s.handleReplicate))
	mux.HandleFunc("GET /v1/cache/snapshot", s.counted("/v1/cache/snapshot", s.handleSnapshot))
	mux.HandleFunc("DELETE /v1/cache/{key}", s.counted("/v1/cache/invalidate", s.handleInvalidate))
	mux.HandleFunc("POST /v1/cache/purge", s.counted("/v1/cache/purge", s.handlePurge))
	mux.HandleFunc("GET /v1/cluster/status", s.counted("/v1/cluster/status", s.handleClusterStatus))
	mux.HandleFunc("GET /v1/cluster/overview", s.counted("/v1/cluster/overview", s.handleClusterOverview))
	mux.HandleFunc("GET /v1/version", s.counted("/v1/version", s.handleVersion))
	mux.HandleFunc("POST /v1/simulate", s.counted("/v1/simulate", s.handleSimulate))
	mux.HandleFunc("POST /v1/dse", s.counted("/v1/dse", s.handleDSE))
	mux.HandleFunc("GET /v1/trace/{key}", s.counted("/v1/trace", s.handleTrace))
	mux.HandleFunc("GET /v1/spans", s.counted("/v1/spans", s.handleSpans))
	mux.HandleFunc("GET /v1/models", s.counted("/v1/models", s.handleModels))
	mux.HandleFunc("GET /healthz", s.counted("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.counted("/metrics", s.handleMetrics))
	s.mux = mux
	return s
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats exposes the cache counters (for smm-serve's shutdown log).
func (s *Server) CacheStats() plancache.Stats { return s.cache.Stats() }

// counted wraps a handler with its request counter, the route's circuit
// breaker, the request span and access log, and a recover that converts a
// panic escaping the handler into a 500 instead of killing the server.
// Panics in the compute pipeline mostly surface as 500 responses rather
// than handler panics (the plancache flight goroutine recovers them into
// plancache.ErrPanic), so the breaker counts 500s: enough consecutive ones
// trip the route to fast-503 with Retry-After until a half-open probe
// succeeds.
//
// Every request gets a "request" span rooted at the server's tracer and a
// logger stamped with the trace ID; handlers annotate the span (model_hash,
// degraded_mode) and the access-log record reads the annotations back, so
// the log line and the span agree by construction.
func (s *Server) counted(route string, h http.HandlerFunc) http.HandlerFunc {
	br := s.breakers[route] // nil for non-compute routes: always allows
	return func(w http.ResponseWriter, r *http.Request) {
		s.met.request(route)
		start := time.Now()
		rctx := obs.WithTracer(r.Context(), s.tracer)
		// A peer's TraceparentHeader parents this request under the
		// originating request's span, so one cross-node request forms one
		// trace. Extraction is best-effort: a missing or malformed header
		// simply roots a fresh per-process trace.
		if tc := obs.ParseTraceContext(r.Header.Get(obs.TraceparentHeader)); tc.Valid() {
			rctx = obs.WithRemoteParent(rctx, tc)
		}
		ctx, span := obs.StartSpan(rctx, "request")
		span.SetAttr("route", route)
		span.SetAttr("method", r.Method)
		if s.fleet != nil {
			span.SetAttr("member", s.fleet.Self)
		}
		logger := s.log.With("trace_id", span.Trace(), "route", route)
		ctx = obs.WithLogger(ctx, logger)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		rejected := false // breaker fast-fail: not the handler's outcome
		defer func() {
			rec := recover()
			if rec != nil {
				s.writeError(w, http.StatusInternalServerError, "internal error")
				sw.status = http.StatusInternalServerError
			}
			if !rejected {
				if sw.status == http.StatusInternalServerError {
					br.Failure()
				} else {
					br.Success()
				}
			}
			span.SetAttr("status", sw.status)
			span.End()
			d := time.Since(start)
			attrs := []any{"method", r.Method, "status", sw.status, "duration", d}
			if mh := span.Attr("model_hash"); mh != nil {
				attrs = append(attrs, "model_hash", mh)
			}
			if dm := span.Attr("degraded_mode"); dm != nil {
				attrs = append(attrs, "degraded_mode", dm)
			}
			if rec != nil {
				logger.Error("handler panic", append(attrs, "panic", rec)...)
			} else {
				logger.Info("request", attrs...)
			}
			if s.cfg.SlowRequest > 0 && d >= s.cfg.SlowRequest {
				logger.Warn("slow request", "duration", d, "threshold", s.cfg.SlowRequest, "status", sw.status)
			}
		}()
		if !br.Allow() {
			rejected = true
			s.met.breakerOpened()
			s.writeShed(sw, "circuit breaker open for "+route)
			return
		}
		h(sw, r.WithContext(ctx))
	}
}

// statusWriter remembers the response code so counted can feed the
// breaker without threading state through every handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}
