package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	scratchmem "scratchmem"
	"scratchmem/internal/cluster"
	"scratchmem/internal/faultinject"
	"scratchmem/internal/obs"
	"scratchmem/internal/plancache"
)

// fleetNode is one member of an in-process loopback fleet.
type fleetNode struct {
	srv     *Server
	ts      *httptest.Server
	url     string
	planned *atomic.Int64 // planner executions on this node
}

// testFill is the test transport: a plain POST to the owner's
// /v1/peer/fill, no retries (cmd/smm-serve wires the retrying client
// here). It stamps the traceparent header exactly like the client's
// transport does, so cross-node trace assertions hold in-process too.
func testFill(ctx context.Context, baseURL string, request any) ([]byte, error) {
	b, err := json.Marshal(request)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/peer/fill", bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tc := obs.TraceContextFrom(ctx); tc.Valid() {
		req.Header.Set(obs.TraceparentHeader, tc.String())
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer fill: %s: %s", resp.Status, body)
	}
	return body, nil
}

// newFleet starts n clustered servers on loopback listeners sharing one
// ring, each with a counting planner seam.
func newFleet(t *testing.T, n int, popts cluster.PeerOptions) ([]*fleetNode, *cluster.Ring) {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	ring, err := cluster.NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*fleetNode, n)
	for i := range nodes {
		self := urls[i]
		srv := New(Config{
			Timeout: 5 * time.Second,
			Cluster: func(local *plancache.Cache) cluster.Backend {
				peer := cluster.NewPeer(cluster.NewLocal(local), ring, self, cluster.TransportFunc(testFill), popts)
				return cluster.NewLayered(plancache.New(32), peer, peer.Remote)
			},
		})
		counter := &atomic.Int64{}
		inner := srv.planFn
		srv.planFn = func(ctx context.Context, net *scratchmem.Network, o scratchmem.PlanOptions) (*scratchmem.Plan, error) {
			counter.Add(1)
			return inner(ctx, net, o)
		}
		ts := &httptest.Server{Listener: listeners[i], Config: &http.Server{Handler: srv.Handler()}}
		ts.Start()
		t.Cleanup(ts.Close)
		nodes[i] = &fleetNode{srv: srv, ts: ts, url: self, planned: counter}
	}
	return nodes, ring
}

// planKeyFor computes the full cache key ("plan:" + content hash) for a
// builtin-model request, matching what the fleet backends see.
func planKeyFor(t *testing.T, modelName string, glbKB int) string {
	t.Helper()
	net, err := scratchmem.BuiltinModel(modelName)
	if err != nil {
		t.Fatal(err)
	}
	key, err := scratchmem.PlanKey(net, scratchmem.PlanOptions{Config: scratchmem.DefaultConfig(glbKB)})
	if err != nil {
		t.Fatal(err)
	}
	return "plan:" + key
}

// TestFleetPlansExactlyOnce is the headline property: the same plan
// requested on every node of a three-node fleet runs the planner exactly
// once fleet-wide, the non-owners filling from the owner.
func TestFleetPlansExactlyOnce(t *testing.T) {
	nodes, ring := newFleet(t, 3, cluster.PeerOptions{})

	var bodies [][]byte
	for _, n := range nodes {
		resp, body := post(t, n.ts, "/v1/plan", tinyPlanBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %s: status %d: %s", n.url, resp.StatusCode, body)
		}
		bodies = append(bodies, body)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Errorf("node %d served a different document than node 0", i)
		}
	}

	var total int64
	for _, n := range nodes {
		total += n.planned.Load()
	}
	if total != 1 {
		t.Fatalf("planner ran %d times fleet-wide, want exactly 1", total)
	}

	// The owner reports owning the key; the two non-owners report fill
	// hits — visible both in PeerStats and on /metrics.
	owner := ring.Owner(planKeyFor(t, "TinyCNN", 32))
	hits := int64(0)
	for _, n := range nodes {
		ps := n.srv.cache.(cluster.PeerStatser).PeerStats()
		_, metricsBody := get(t, n.ts, "/metrics")
		if n.url == owner {
			if n.planned.Load() != 1 {
				t.Errorf("owner %s did not run the planner", n.url)
			}
			if ps.OwnerSelf == 0 {
				t.Errorf("owner %s reports no owned keys", n.url)
			}
			if metric(t, metricsBody, `smm_ring_owner_self_total`) == 0 {
				t.Errorf("owner %s: smm_ring_owner_self_total is zero", n.url)
			}
		} else {
			if n.planned.Load() != 0 {
				t.Errorf("non-owner %s ran the planner", n.url)
			}
			if metric(t, metricsBody, `smm_peer_fill_total{outcome="hit"}`) != ps.Hit {
				t.Errorf("non-owner %s: metrics and PeerStats disagree", n.url)
			}
		}
		hits += ps.Hit
	}
	if hits != 2 {
		t.Fatalf("fleet recorded %d fill hits, want 2", hits)
	}

	// Repeat requests on a non-owner are absorbed by its hot cache: no new
	// fills, no new planner runs.
	for _, n := range nodes {
		if n.url == owner {
			continue
		}
		before := n.srv.cache.(cluster.PeerStatser).PeerStats().Hit
		resp, body := post(t, n.ts, "/v1/plan", tinyPlanBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("repeat on %s: status %d", n.url, resp.StatusCode)
		}
		if !bytes.Equal(body, bodies[0]) {
			t.Errorf("repeat on %s: body differs", n.url)
		}
		if resp.Header.Get("X-SMM-Cache") != "hit" {
			t.Errorf("repeat on %s: X-SMM-Cache = %q, want hit", n.url, resp.Header.Get("X-SMM-Cache"))
		}
		if after := n.srv.cache.(cluster.PeerStatser).PeerStats().Hit; after != before {
			t.Errorf("repeat on %s crossed the network again", n.url)
		}
		break
	}
}

// TestFleetOwnerDownDegradesToLocal: killing a key's owner must not take
// plan availability with it — the non-owner computes locally.
func TestFleetOwnerDownDegradesToLocal(t *testing.T) {
	nodes, ring := newFleet(t, 2, cluster.PeerOptions{})

	// Find a request whose key the second node owns.
	glb := 0
	for g := 16; g <= 128; g++ {
		if ring.Owner(planKeyFor(t, "TinyCNN", g)) == nodes[1].url {
			glb = g
			break
		}
	}
	if glb == 0 {
		t.Fatal("no probed request owned by node 1")
	}
	nodes[1].ts.Close()

	body := fmt.Sprintf(`{"model": "TinyCNN", "glb_kb": %d}`, glb)
	resp, respBody := post(t, nodes[0].ts, "/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d with owner down: %s", resp.StatusCode, respBody)
	}
	if nodes[0].planned.Load() != 1 {
		t.Fatalf("survivor ran the planner %d times, want 1", nodes[0].planned.Load())
	}
	ps := nodes[0].srv.cache.(cluster.PeerStatser).PeerStats()
	if ps.Error != 1 || ps.Hit != 0 {
		t.Fatalf("peer stats = %+v, want exactly one fill error", ps)
	}
}

// TestFleetDegradedPlanFillsBadAndRecomputes: a degraded plan's document is
// not rehydratable, so a peer fill of one is counted "bad" and the asking
// node recomputes locally — same answer, one extra planner run, no wrong
// result served.
func TestFleetDegradedPlanFillsBadAndRecomputes(t *testing.T) {
	nodes, ring := newFleet(t, 2, cluster.PeerOptions{})

	// Find a request that degrades AND is owned by the other node.
	found := ""
	for g := 1; g <= 12; g++ {
		net, err := scratchmem.BuiltinModel("AlexNet")
		if err != nil {
			t.Fatal(err)
		}
		p, err := scratchmem.PlanModel(net, scratchmem.PlanOptions{GLBKiloBytes: g})
		if err != nil || !p.Degraded {
			continue
		}
		key, err := scratchmem.PlanKey(net, scratchmem.PlanOptions{Config: scratchmem.DefaultConfig(g)})
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner("plan:"+key) == nodes[1].url {
			found = fmt.Sprintf(`{"model": "AlexNet", "glb_kb": %d}`, g)
			break
		}
	}
	if found == "" {
		t.Skip("no degraded request owned by the peer in the probed range")
	}

	resp, body := post(t, nodes[0].ts, "/v1/plan", found)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"degraded": true`) {
		t.Fatal("expected a degraded document")
	}
	ps := nodes[0].srv.cache.(cluster.PeerStatser).PeerStats()
	if ps.Bad != 1 {
		t.Fatalf("peer stats = %+v, want Bad=1", ps)
	}
	// Both nodes ran the planner: the owner for the fill, the asker for
	// the local fallback.
	if nodes[0].planned.Load() != 1 || nodes[1].planned.Load() != 1 {
		t.Fatalf("planner runs = %d/%d, want 1/1", nodes[0].planned.Load(), nodes[1].planned.Load())
	}
}

// TestFleetPeerFaultInjection: the cluster.peer chaos site downs fills
// without downing planning.
func TestFleetPeerFaultInjection(t *testing.T) {
	nodes, ring := newFleet(t, 2, cluster.PeerOptions{BreakerThreshold: -1})
	faultinject.Enable(7, faultinject.Fault{Site: "cluster.peer", Kind: faultinject.KindError, P: 1})
	defer faultinject.Disable()

	glb := 0
	for g := 16; g <= 128; g++ {
		if ring.Owner(planKeyFor(t, "TinyCNN", g)) == nodes[1].url {
			glb = g
			break
		}
	}
	if glb == 0 {
		t.Fatal("no probed request owned by node 1")
	}
	resp, body := post(t, nodes[0].ts, "/v1/plan", fmt.Sprintf(`{"model": "TinyCNN", "glb_kb": %d}`, glb))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d under peer faults: %s", resp.StatusCode, body)
	}
	if ps := nodes[0].srv.cache.(cluster.PeerStatser).PeerStats(); ps.Error != 1 {
		t.Fatalf("peer stats = %+v, want Error=1", ps)
	}
	if nodes[0].planned.Load() != 1 {
		t.Fatal("asker did not compute locally under injected peer faults")
	}
}

// TestSnapshotRestore round-trips the cache through the snapshot stream:
// a fresh server restored from it serves the same documents as pure cache
// hits without ever running its planner.
func TestSnapshotRestore(t *testing.T) {
	a := New(Config{})
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()

	requests := []string{
		`{"model": "TinyCNN", "glb_kb": 32}`,
		`{"model": "TinyCNN", "glb_kb": 64, "objective": "latency", "interlayer": true}`,
		`{"model": "AlexNet", "glb_kb": 108, "homogeneous": true}`,
	}
	want := make(map[string][]byte, len(requests))
	for _, reqBody := range requests {
		resp, body := post(t, tsA, "/v1/plan", reqBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed plan failed: %d %s", resp.StatusCode, body)
		}
		want[reqBody] = body
	}

	resp, snap := get(t, tsA, "/v1/cache/snapshot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-SMM-Snapshot-Entries"); got != "3" {
		t.Fatalf("snapshot entries = %s, want 3", got)
	}

	b := New(Config{})
	b.planFn = func(context.Context, *scratchmem.Network, scratchmem.PlanOptions) (*scratchmem.Plan, error) {
		t.Error("restored server ran its planner")
		return nil, fmt.Errorf("must not plan")
	}
	added, skipped, err := b.RestoreSnapshot(bytes.NewReader(snap))
	if err != nil || added != 3 || skipped != 0 {
		t.Fatalf("RestoreSnapshot = %d added, %d skipped, %v", added, skipped, err)
	}
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	for _, reqBody := range requests {
		resp, body := post(t, tsB, "/v1/plan", reqBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("restored plan failed: %d %s", resp.StatusCode, body)
		}
		if resp.Header.Get("X-SMM-Cache") != "hit" {
			t.Errorf("restored server answered %q, want a warm hit", resp.Header.Get("X-SMM-Cache"))
		}
		if !bytes.Equal(body, want[reqBody]) {
			t.Errorf("restored document differs for %s", reqBody)
		}
	}
}

// TestSnapshotSkipsDegradedAndTampered: degraded plans never enter the
// stream, and a tampered record is skipped on restore, not trusted.
func TestSnapshotSkipsDegradedAndTampered(t *testing.T) {
	a := New(Config{})
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()

	if resp, body := post(t, tsA, "/v1/plan", `{"model": "AlexNet", "glb_kb": 1}`); resp.StatusCode != http.StatusOK ||
		!strings.Contains(string(body), `"degraded": true`) {
		t.Fatalf("expected a 200 degraded plan, got %d", resp.StatusCode)
	}
	post(t, tsA, "/v1/plan", tinyPlanBody)

	resp, snap := get(t, tsA, "/v1/cache/snapshot")
	if got := resp.Header.Get("X-SMM-Snapshot-Entries"); got != "1" {
		t.Fatalf("snapshot entries = %s, want 1 (degraded plan must be skipped)", got)
	}

	// Corrupt the surviving record's figures; the restorer must reject it.
	var rec SnapshotRecord
	if err := json.Unmarshal(snap, &rec); err != nil {
		t.Fatal(err)
	}
	rec.Doc.Layers[0].AccessElems++
	tampered, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	b := New(Config{})
	added, skipped, err := b.RestoreSnapshot(bytes.NewReader(tampered))
	if err != nil || added != 0 || skipped != 1 {
		t.Fatalf("RestoreSnapshot(tampered) = %d added, %d skipped, %v; want 0/1", added, skipped, err)
	}
}

// TestSnapshotFaultInjection: the cluster.snapshot chaos site turns the
// stream into a retryable 503.
func TestSnapshotFaultInjection(t *testing.T) {
	faultinject.Enable(3, faultinject.Fault{Site: "cluster.snapshot", Kind: faultinject.KindError, P: 1})
	defer faultinject.Disable()
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	resp, _ := get(t, ts, "/v1/cache/snapshot")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestVersionEndpoint: /v1/version reports the module and toolchain.
func TestVersionEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	resp, body := get(t, ts, "/v1/version")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var v VersionInfo
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Module != "scratchmem" {
		t.Errorf("module = %q, want scratchmem", v.Module)
	}
	if !strings.HasPrefix(v.Go, "go") {
		t.Errorf("go version = %q", v.Go)
	}
}
