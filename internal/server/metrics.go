package server

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"scratchmem/internal/plancache"
)

// plannerBuckets are the latency-histogram upper bounds in seconds.
var plannerBuckets = []float64{0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10}

// metrics holds the server's counters. Everything is atomic so handlers
// never serialise on a metrics lock.
type metrics struct {
	requests map[string]*atomic.Int64 // per route, fixed key set at init
	errors   map[int]*atomic.Int64    // per status code class (4xx/5xx) and 504

	shed        atomic.Int64 // requests shed by the worker-queue bound
	degraded    atomic.Int64 // plans produced by the degradation ladder
	breakerOpen atomic.Int64 // requests fast-failed by an open breaker

	plannerBucket []atomic.Int64 // one per bucket, +Inf overflow last
	plannerCount  atomic.Int64
	plannerNanos  atomic.Int64
}

func newMetrics(routes []string) *metrics {
	m := &metrics{
		requests:      make(map[string]*atomic.Int64, len(routes)),
		errors:        map[int]*atomic.Int64{400: {}, 422: {}, 499: {}, 500: {}, 503: {}, 504: {}},
		plannerBucket: make([]atomic.Int64, len(plannerBuckets)+1),
	}
	for _, r := range routes {
		m.requests[r] = &atomic.Int64{}
	}
	return m
}

func (m *metrics) request(route string) {
	if c, ok := m.requests[route]; ok {
		c.Add(1)
	}
}

func (m *metrics) error(code int) {
	if c, ok := m.errors[code]; ok {
		c.Add(1)
	}
}

// shedRequest counts one request rejected by the worker-queue bound.
func (m *metrics) shedRequest() { m.shed.Add(1) }

// degradedPlan counts one plan produced by the degradation ladder.
func (m *metrics) degradedPlan() { m.degraded.Add(1) }

// breakerOpened counts one request fast-failed by an open circuit breaker.
func (m *metrics) breakerOpened() { m.breakerOpen.Add(1) }

// observePlanner records one planner execution's wall time.
func (m *metrics) observePlanner(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(plannerBuckets, s)
	m.plannerBucket[i].Add(1)
	m.plannerCount.Add(1)
	m.plannerNanos.Add(int64(d))
}

// write renders the counters as plain-text expvar/Prometheus-style lines.
func (m *metrics) write(w io.Writer, cs plancache.Stats, inflight, workers int) {
	routes := make([]string, 0, len(m.requests))
	for r := range m.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		fmt.Fprintf(w, "smm_requests_total{path=%q} %d\n", r, m.requests[r].Load())
	}
	codes := make([]int, 0, len(m.errors))
	for c := range m.errors {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "smm_errors_total{code=\"%d\"} %d\n", c, m.errors[c].Load())
	}
	fmt.Fprintf(w, "smm_shed_total %d\n", m.shed.Load())
	fmt.Fprintf(w, "smm_degraded_plans_total %d\n", m.degraded.Load())
	fmt.Fprintf(w, "smm_breaker_open_total %d\n", m.breakerOpen.Load())
	fmt.Fprintf(w, "smm_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "smm_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "smm_cache_coalesced_total %d\n", cs.Coalesced)
	fmt.Fprintf(w, "smm_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "smm_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "smm_cache_capacity %d\n", cs.Capacity)
	fmt.Fprintf(w, "smm_inflight_executions %d\n", inflight)
	fmt.Fprintf(w, "smm_worker_slots %d\n", workers)
	var cum int64
	for i, ub := range plannerBuckets {
		cum += m.plannerBucket[i].Load()
		fmt.Fprintf(w, "smm_planner_latency_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	cum += m.plannerBucket[len(plannerBuckets)].Load()
	fmt.Fprintf(w, "smm_planner_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "smm_planner_latency_seconds_sum %g\n", float64(m.plannerNanos.Load())/1e9)
	fmt.Fprintf(w, "smm_planner_latency_seconds_count %d\n", m.plannerCount.Load())
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }
