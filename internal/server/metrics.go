package server

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	scratchmem "scratchmem"
	"scratchmem/internal/cluster"
	"scratchmem/internal/core"
	"scratchmem/internal/obs"
	"scratchmem/internal/plancache"
	"scratchmem/internal/policy"
)

// plannerBuckets are the latency-histogram upper bounds in seconds, shared
// by the planner-execution histogram and the span-derived phase histograms.
var plannerBuckets = []float64{0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10}

// phaseNames are the span-derived latency phases: planner execution,
// simulator execution, and the whole cache interaction (lookup + any wait
// on a shared flight), in the order they render.
var phaseNames = []string{"plan", "simulate", "cache_wait"}

// datatypes label the per-data-type DRAM byte counters.
var datatypes = []string{"ifmap", "filter", "ofmap"}

// degradedModes are the ladder rungs a served plan can carry. The retired
// minimal-tiling rung keeps its series so dashboards spanning the
// lifetime_spill cutover don't lose the label.
var degradedModes = []string{core.DegradedPrefetchRelaxed, core.DegradedLifetimeSpill, core.DegradedMinimalTiling, core.DegradedBaseline}

// histogram is a fixed-bucket latency histogram (plannerBuckets bounds plus
// +Inf overflow), atomic throughout so observation never takes a lock.
type histogram struct {
	bucket []atomic.Int64
	count  atomic.Int64
	nanos  atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{bucket: make([]atomic.Int64, len(plannerBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	i := sort.SearchFloat64s(plannerBuckets, d.Seconds())
	h.bucket[i].Add(1)
	h.count.Add(1)
	h.nanos.Add(int64(d))
}

// write renders the histogram in the Prometheus text convention; labels is
// either empty or a `key="value",` prefix merged into the le label set.
func (h *histogram) write(w io.Writer, name, labels string) {
	var cum int64
	for i, ub := range plannerBuckets {
		cum += h.bucket[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labels, trimFloat(ub), cum)
	}
	cum += h.bucket[len(plannerBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.nanos.Load())/1e9)
		fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels[:len(labels)-1], float64(h.nanos.Load())/1e9)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels[:len(labels)-1], h.count.Load())
	}
}

// metrics holds the server's counters. Everything is atomic so handlers
// never serialise on a metrics lock; every label set is fixed at init so
// rendering needs no allocation discipline.
type metrics struct {
	requests map[string]*atomic.Int64 // per route, fixed key set at init
	errors   map[int]*atomic.Int64    // per status code class (4xx/5xx) and 504
	// otherErrors catches status codes outside the fixed set, so no error
	// response is ever invisible to the counters.
	otherErrors atomic.Int64

	shed        atomic.Int64 // requests shed by the worker-queue bound
	degraded    atomic.Int64 // plans produced by the degradation ladder
	breakerOpen atomic.Int64 // requests fast-failed by an open breaker

	batchCount atomic.Int64 // POST /v1/plan/batch requests
	batchItems atomic.Int64 // plan requests carried inside batches

	// Receiving-side replication counters (the sending side lives in
	// cluster.ReplStats): replicas accepted into the local cache, and
	// payloads rejected by rehydration verification.
	replReceived atomic.Int64
	replRejected atomic.Int64
	// invalidated counts locally applied invalidations (single removes and
	// purges alike), whether initiated here or received from a peer fan-out.
	invalidated atomic.Int64
	// overview counts GET /v1/cluster/overview requests served.
	overview atomic.Int64

	// Planner-deep counters, filled per freshly computed plan.
	policySelected map[string]*atomic.Int64 // per winning policy variant, per layer
	dramBytes      map[string]*atomic.Int64 // per datatype planned off-chip bytes
	degradedMode   map[string]*atomic.Int64 // per degradation-ladder rung

	// Differential-planning counters: plans that resumed from a cached
	// checkpoint ("spliced") vs planned every layer ("full"), and the total
	// layers whose decisions were reused without re-estimation.
	incremental       map[string]*atomic.Int64 // per outcome
	incrementalLayers atomic.Int64

	planner *histogram            // planner wall time (observePlanner)
	phase   map[string]*histogram // span-derived phase latencies
}

func newMetrics(routes []string) *metrics {
	m := &metrics{
		requests:       make(map[string]*atomic.Int64, len(routes)),
		errors:         map[int]*atomic.Int64{400: {}, 404: {}, 422: {}, 499: {}, 500: {}, 503: {}, 504: {}},
		policySelected: make(map[string]*atomic.Int64),
		dramBytes:      make(map[string]*atomic.Int64, len(datatypes)),
		degradedMode:   make(map[string]*atomic.Int64, len(degradedModes)),
		planner:        newHistogram(),
		phase:          make(map[string]*histogram, len(phaseNames)),
	}
	for _, r := range routes {
		m.requests[r] = &atomic.Int64{}
	}
	for _, v := range policy.ShortVariants() {
		m.policySelected[v] = &atomic.Int64{}
	}
	for _, dt := range datatypes {
		m.dramBytes[dt] = &atomic.Int64{}
	}
	for _, mode := range degradedModes {
		m.degradedMode[mode] = &atomic.Int64{}
	}
	m.incremental = map[string]*atomic.Int64{core.OutcomeSpliced: {}, core.OutcomeFull: {}}
	for _, ph := range phaseNames {
		m.phase[ph] = newHistogram()
	}
	return m
}

func (m *metrics) request(route string) {
	if c, ok := m.requests[route]; ok {
		c.Add(1)
	}
}

func (m *metrics) error(code int) {
	if c, ok := m.errors[code]; ok {
		c.Add(1)
		return
	}
	m.otherErrors.Add(1)
}

// shedRequest counts one request rejected by the worker-queue bound.
func (m *metrics) shedRequest() { m.shed.Add(1) }

// degradedPlan counts one plan produced by the degradation ladder.
func (m *metrics) degradedPlan() { m.degraded.Add(1) }

// incrementalPlan records one differential-planning outcome and how many
// layer decisions it reused.
func (m *metrics) incrementalPlan(outcome string, layersReused int) {
	if c, ok := m.incremental[outcome]; ok {
		c.Add(1)
	}
	m.incrementalLayers.Add(int64(layersReused))
}

// breakerOpened counts one request fast-failed by an open circuit breaker.
func (m *metrics) breakerOpened() { m.breakerOpen.Add(1) }

// observeBatch records one /v1/plan/batch request of n plan items.
func (m *metrics) observeBatch(n int) {
	m.batchCount.Add(1)
	m.batchItems.Add(int64(n))
}

// replicaReceived counts one verified replica stored from a peer push.
func (m *metrics) replicaReceived() { m.replReceived.Add(1) }

// replicaRejected counts one peer push that failed verification.
func (m *metrics) replicaRejected() { m.replRejected.Add(1) }

// invalidatedLocally counts one locally applied invalidation.
func (m *metrics) invalidatedLocally() { m.invalidated.Add(1) }

// overviewRequest counts one merged-overview request.
func (m *metrics) overviewRequest() { m.overview.Add(1) }

// degradedCount reads the degraded-plan counter (the cluster status
// document reports it per member).
func (m *metrics) degradedCount() int64 { return m.degraded.Load() }

// observePlanner records one planner execution's wall time.
func (m *metrics) observePlanner(d time.Duration) { m.planner.observe(d) }

// observeSpan feeds a finished span into the phase histograms; it is the
// tracer's OnFinish hook. The "cache" span covers lookup plus any wait on a
// shared flight, hence its phase label.
func (m *metrics) observeSpan(s *obs.Span) {
	name := s.Name
	if name == "cache" {
		name = "cache_wait"
	}
	if h, ok := m.phase[name]; ok {
		h.observe(s.Duration())
	}
}

// planOutcome records the planner-deep counters for one freshly computed
// plan: which policy variant won each layer, the off-chip bytes the plan
// moves per data type (the trace totals, by the estimator-equals-execution
// invariant), and the degradation rung when the ladder produced it.
func (m *metrics) planOutcome(p *scratchmem.Plan) {
	for i := range p.Layers {
		est := &p.Layers[i].Est
		if c, ok := m.policySelected[policy.ShortVariant(est.Policy, est.Opts.Prefetch)]; ok {
			c.Add(1)
		}
		m.dramBytes["ifmap"].Add(p.Cfg.Bytes(est.AccessIfmap))
		m.dramBytes["filter"].Add(p.Cfg.Bytes(est.AccessFilter))
		m.dramBytes["ofmap"].Add(p.Cfg.Bytes(est.AccessOfmap))
	}
	if p.Degraded {
		if c, ok := m.degradedMode[p.DegradedMode]; ok {
			c.Add(1)
		}
	}
}

// peerOutcomes is the fixed outcome label set of smm_peer_fill_total,
// matching cluster.PeerStats field for field.
var peerOutcomes = []string{"hit", "error", "bad", "open", "dead", "successor"}

// replicateOutcomes is the fixed outcome label set of smm_replicate_total:
// the sending side (cluster.ReplStats) plus the receiving side (metrics).
var replicateOutcomes = []string{"sent", "error", "dropped", "skipped", "received", "rejected"}

// fleetView carries the per-request fleet snapshots metrics.write renders;
// zero values render the standalone picture (no members, all counters 0).
type fleetView struct {
	repl   cluster.ReplStats
	health []cluster.MemberHealth
}

// write renders the counters as plain-text expvar/Prometheus-style lines.
func (m *metrics) write(w io.Writer, cs plancache.Stats, ms policy.MemoStats, ps cluster.PeerStats, fv fleetView, inflight, workers int, spans int64) {
	routes := make([]string, 0, len(m.requests))
	for r := range m.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		fmt.Fprintf(w, "smm_requests_total{path=%q} %d\n", r, m.requests[r].Load())
	}
	codes := make([]int, 0, len(m.errors))
	for c := range m.errors {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "smm_errors_total{code=\"%d\"} %d\n", c, m.errors[c].Load())
	}
	fmt.Fprintf(w, "smm_errors_total{code=\"other\"} %d\n", m.otherErrors.Load())
	fmt.Fprintf(w, "smm_shed_total %d\n", m.shed.Load())
	fmt.Fprintf(w, "smm_degraded_plans_total %d\n", m.degraded.Load())
	for _, mode := range degradedModes {
		fmt.Fprintf(w, "smm_degraded_mode_total{mode=%q} %d\n", mode, m.degradedMode[mode].Load())
	}
	fmt.Fprintf(w, "smm_breaker_open_total %d\n", m.breakerOpen.Load())
	variants := make([]string, 0, len(m.policySelected))
	for v := range m.policySelected {
		variants = append(variants, v)
	}
	sort.Strings(variants)
	for _, v := range variants {
		fmt.Fprintf(w, "smm_policy_selected_total{policy=%q} %d\n", v, m.policySelected[v].Load())
	}
	for _, dt := range datatypes {
		fmt.Fprintf(w, "smm_dram_bytes_total{datatype=%q} %d\n", dt, m.dramBytes[dt].Load())
	}
	for _, o := range []string{core.OutcomeSpliced, core.OutcomeFull} {
		fmt.Fprintf(w, "smm_incremental_plans_total{outcome=%q} %d\n", o, m.incremental[o].Load())
	}
	fmt.Fprintf(w, "smm_incremental_layers_reused_total %d\n", m.incrementalLayers.Load())
	peerFills := map[string]int64{
		"hit": ps.Hit, "error": ps.Error, "bad": ps.Bad, "open": ps.Open,
		"dead": ps.Dead, "successor": ps.SuccHit,
	}
	for _, o := range peerOutcomes {
		fmt.Fprintf(w, "smm_peer_fill_total{outcome=%q} %d\n", o, peerFills[o])
	}
	fmt.Fprintf(w, "smm_ring_owner_self_total %d\n", ps.OwnerSelf)
	replicate := map[string]int64{
		"sent": fv.repl.Sent, "error": fv.repl.Errors, "dropped": fv.repl.Dropped,
		"skipped": fv.repl.Skipped, "received": m.replReceived.Load(), "rejected": m.replRejected.Load(),
	}
	for _, o := range replicateOutcomes {
		fmt.Fprintf(w, "smm_replicate_total{outcome=%q} %d\n", o, replicate[o])
	}
	fmt.Fprintf(w, "smm_invalidate_total %d\n", m.invalidated.Load())
	fmt.Fprintf(w, "smm_overview_requests_total %d\n", m.overview.Load())
	for _, mh := range fv.health {
		alive := 0
		if mh.Alive {
			alive = 1
		}
		fmt.Fprintf(w, "smm_member_health{member=%q} %d\n", mh.Member, alive)
	}
	fmt.Fprintf(w, "smm_batch_size_sum %d\n", m.batchItems.Load())
	fmt.Fprintf(w, "smm_batch_size_count %d\n", m.batchCount.Load())
	fmt.Fprintf(w, "smm_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "smm_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "smm_cache_coalesced_total %d\n", cs.Coalesced)
	fmt.Fprintf(w, "smm_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "smm_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "smm_cache_capacity %d\n", cs.Capacity)
	fmt.Fprintf(w, "smm_estimate_memo_hits_total %d\n", ms.Hits)
	fmt.Fprintf(w, "smm_estimate_memo_misses_total %d\n", ms.Misses)
	fmt.Fprintf(w, "smm_estimate_memo_entries %d\n", ms.Entries)
	fmt.Fprintf(w, "smm_inflight_executions %d\n", inflight)
	fmt.Fprintf(w, "smm_worker_slots %d\n", workers)
	fmt.Fprintf(w, "smm_spans_finished_total %d\n", spans)
	m.planner.write(w, "smm_planner_latency_seconds", "")
	for _, ph := range phaseNames {
		m.phase[ph].write(w, "smm_phase_latency_seconds", fmt.Sprintf("phase=%q,", ph))
	}
}

func trimFloat(f float64) string { return fmt.Sprintf("%g", f) }
