package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"scratchmem/internal/cluster"
	"scratchmem/internal/obs"
	"scratchmem/internal/plancache"
	"scratchmem/internal/policy"
)

// syncBuffer is a locked bytes.Buffer: the access log is written from the
// server's handler goroutine after the response body has already reached
// the client, so the test must read it under the same lock slog writes
// under.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logRecords parses every line of the buffer as one JSON log record.
func logRecords(t *testing.T, b *syncBuffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access log line is not JSON: %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

// TestRequestObservability is the PR's acceptance criterion: one POST
// /v1/plan produces exactly one access-log record carrying the trace ID, at
// least three spans (request → cache → plan) sharing that trace ID, and
// increments smm_policy_selected_total.
func TestRequestObservability(t *testing.T) {
	var logBuf syncBuffer
	logger, err := obs.NewLogger(&logBuf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(64)
	ts := httptest.NewServer(New(Config{Logger: logger, Tracer: tracer}).Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/v1/plan", tinyPlanBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d: %s", resp.StatusCode, body)
	}

	// The request span ends (and the access log is written) after the body
	// reaches the client; wait for the whole pipeline to settle.
	deadline := time.Now().Add(5 * time.Second)
	for tracer.Finished() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d spans finished, want >= 3", tracer.Finished())
		}
		time.Sleep(time.Millisecond)
	}

	var access []map[string]any
	for {
		access = nil
		for _, rec := range logRecords(t, &logBuf) {
			if rec["msg"] == "request" {
				access = append(access, rec)
			}
		}
		if len(access) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(access) != 1 {
		t.Fatalf("access-log records = %d, want exactly 1:\n%s", len(access), logBuf.String())
	}
	rec := access[0]
	traceID, _ := rec["trace_id"].(string)
	if traceID == "" {
		t.Fatalf("access-log record has no trace_id: %v", rec)
	}
	if rec["route"] != "/v1/plan" || rec["status"] != float64(200) {
		t.Errorf("access-log record route/status = %v/%v", rec["route"], rec["status"])
	}
	if mh, _ := rec["model_hash"].(string); mh == "" {
		t.Errorf("access-log record has no model_hash: %v", rec)
	}

	// All spans of the request share its trace ID and cover the three layers
	// of the stack.
	names := map[string]bool{}
	inTrace := 0
	for _, s := range tracer.Spans() {
		if s.TraceID != traceID {
			continue
		}
		inTrace++
		names[s.Name] = true
	}
	if inTrace < 3 {
		t.Errorf("spans in trace %s = %d, want >= 3", traceID, inTrace)
	}
	for _, want := range []string{"request", "cache", "plan"} {
		if !names[want] {
			t.Errorf("trace %s is missing a %q span (have %v)", traceID, want, names)
		}
	}

	// The fresh plan incremented the per-policy selection counters: summed
	// over all variants they equal the number of planned layers, and the
	// planned DRAM bytes are visible per data type.
	_, mbody := get(t, ts, "/metrics")
	re := regexp.MustCompile(`(?m)^smm_policy_selected_total\{policy="[^"]+"\} (\d+)$`)
	var selected int
	for _, m := range re.FindAllStringSubmatch(string(mbody), -1) {
		var v int
		fmt.Sscanf(m[1], "%d", &v)
		selected += v
	}
	if selected == 0 {
		t.Error("smm_policy_selected_total never incremented by a fresh plan")
	}
	if n := metric(t, mbody, `smm_dram_bytes_total{datatype="ifmap"}`); n <= 0 {
		t.Errorf("ifmap DRAM bytes = %d, want > 0", n)
	}
	if n := metric(t, mbody, `smm_phase_latency_seconds_count{phase="plan"}`); n != 1 {
		t.Errorf("plan phase histogram count = %d, want 1", n)
	}

	// A cache hit re-counts nothing: the planner-deep counters describe
	// planner executions, not request traffic.
	post(t, ts, "/v1/plan", tinyPlanBody)
	_, mbody2 := get(t, ts, "/metrics")
	var selected2 int
	for _, m := range re.FindAllStringSubmatch(string(mbody2), -1) {
		var v int
		fmt.Sscanf(m[1], "%d", &v)
		selected2 += v
	}
	if selected2 != selected {
		t.Errorf("cache hit changed smm_policy_selected_total: %d -> %d", selected, selected2)
	}
}

// TestTraceEndpoint covers GET /v1/trace/{key}: Perfetto JSON and CSV
// renderings of a planned model, the 404 for unknown keys, and the 400 for
// unknown formats.
func TestTraceEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	resp, body := post(t, ts, "/v1/plan", tinyPlanBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d: %s", resp.StatusCode, body)
	}
	key := resp.Header.Get("X-SMM-Plan-Key")
	if key == "" {
		t.Fatal("plan response has no X-SMM-Plan-Key")
	}

	tresp, tbody := get(t, ts, "/v1/trace/"+key+"?format=perfetto")
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d: %s", tresp.StatusCode, tbody)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tbody, &doc); err != nil {
		t.Fatalf("trace body is not trace-event JSON: %v", err)
	}
	var complete int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			complete++
		}
		if ev.PID != 1 || ev.TS < 0 {
			t.Errorf("bad event: %+v", ev)
		}
	}
	if complete == 0 {
		t.Error("trace has no complete events")
	}
	if !strings.Contains(string(tbody), `"PE array"`) || !strings.Contains(string(tbody), `"DMA (off-chip)"`) {
		t.Error("trace is missing the track-name metadata")
	}

	// Repeat downloads are served from the trace cache.
	tresp2, _ := get(t, ts, "/v1/trace/"+key)
	if tresp2.Header.Get("X-SMM-Cache") != "hit" {
		t.Error("repeated trace download not served from cache")
	}

	cresp, cbody := get(t, ts, "/v1/trace/"+key+"?format=csv")
	if cresp.StatusCode != http.StatusOK || !strings.HasPrefix(string(cbody), "layer,step,kind,elems") {
		t.Errorf("csv trace: status %d body %.60q", cresp.StatusCode, cbody)
	}

	bresp, _ := get(t, ts, "/v1/trace/"+key+"?format=protobuf")
	if bresp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", bresp.StatusCode)
	}
	nresp, _ := get(t, ts, "/v1/trace/nosuchkey")
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown key: status %d, want 404", nresp.StatusCode)
	}
	_, mbody := get(t, ts, "/metrics")
	if n := metric(t, mbody, `smm_errors_total{code="404"}`); n != 1 {
		t.Errorf("404 counter = %d, want 1", n)
	}

	// The spans endpoint always renders a loadable document.
	sresp, sbody := get(t, ts, "/v1/spans")
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("spans: status %d", sresp.StatusCode)
	}
	var spansDoc map[string]any
	if err := json.Unmarshal(sbody, &spansDoc); err != nil {
		t.Fatalf("spans body is not JSON: %v", err)
	}
	if _, ok := spansDoc["traceEvents"]; !ok {
		t.Error("spans document has no traceEvents")
	}
}

// metricLine matches one valid exposition line: name, optional {labels},
// one numeric value (integers, floats and %g scientific notation).
var metricLine = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*(\{[^{}]*\})? -?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?$`)

// TestMetricsUnderConcurrentLoad hammers every route from many goroutines
// while scraping /metrics, asserting each scrape parses line by line. Run
// under -race this also proves the atomic counters and the span ring are
// data-race free.
func TestMetricsUnderConcurrentLoad(t *testing.T) {
	ts := httptest.NewServer(New(Config{Logger: obs.Discard()}).Handler())
	defer ts.Close()

	// Seed a plan so the trace route has a key to serve.
	resp, _ := post(t, ts, "/v1/plan", tinyPlanBody)
	key := resp.Header.Get("X-SMM-Plan-Key")

	const loaders = 8
	const iters = 20
	var wg sync.WaitGroup
	for i := 0; i < loaders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				switch j % 6 {
				case 0:
					r, err := http.Post(ts.URL+"/v1/plan", "application/json", strings.NewReader(tinyPlanBody))
					if err == nil {
						r.Body.Close()
					}
				case 1:
					r, err := http.Get(ts.URL + "/healthz")
					if err == nil {
						r.Body.Close()
					}
				case 2:
					r, err := http.Get(ts.URL + "/v1/models")
					if err == nil {
						r.Body.Close()
					}
				case 3:
					r, err := http.Get(ts.URL + "/v1/trace/" + key)
					if err == nil {
						r.Body.Close()
					}
				case 4:
					r, err := http.Get(ts.URL + "/v1/spans")
					if err == nil {
						r.Body.Close()
					}
				case 5:
					r, err := http.Post(ts.URL+"/v1/dse", "application/json", strings.NewReader(tinyPlanBody))
					if err == nil {
						r.Body.Close()
					}
				}
			}
		}(i)
	}

	// Scrape concurrently with the load and validate every line.
	scrapeDone := make(chan struct{})
	var scrapeErr error
	go func() {
		defer close(scrapeDone)
		for k := 0; k < 30; k++ {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				scrapeErr = err
				return
			}
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				line := sc.Text()
				if line == "" {
					continue
				}
				if !metricLine.MatchString(line) {
					scrapeErr = fmt.Errorf("scrape %d: malformed metric line %q", k, line)
					resp.Body.Close()
					return
				}
			}
			if err := sc.Err(); err != nil {
				scrapeErr = err
			}
			resp.Body.Close()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-scrapeDone
	if scrapeErr != nil {
		t.Fatal(scrapeErr)
	}

	// After the dust settles every hammered route has a non-zero counter.
	_, mbody := get(t, ts, "/metrics")
	for _, route := range []string{"/v1/plan", "/v1/dse", "/v1/trace", "/v1/spans", "/v1/models", "/healthz", "/metrics"} {
		if n := metric(t, mbody, fmt.Sprintf("smm_requests_total{path=%q}", route)); n == 0 {
			t.Errorf("route %s never counted under load", route)
		}
	}
}

// TestOtherErrorCode: status codes outside the fixed label set land in the
// catch-all counter instead of disappearing.
func TestOtherErrorCode(t *testing.T) {
	m := newMetrics(routes)
	m.error(400)
	m.error(418) // no fixed label
	m.error(451) // no fixed label
	var buf bytes.Buffer
	m.write(&buf, plancache.Stats{}, policy.MemoStats{}, cluster.PeerStats{}, fleetView{}, 0, 0, 0)
	out := buf.String()
	if !strings.Contains(out, `smm_errors_total{code="400"} 1`) {
		t.Error("fixed-code counter missing")
	}
	if !strings.Contains(out, `smm_errors_total{code="other"} 2`) {
		t.Errorf("catch-all counter wrong:\n%s", out)
	}
}
