package server

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	scratchmem "scratchmem"
)

// fuzzServer builds a server whose compute seams are stubbed with a
// precomputed plan and fixed cycle counts, so the fuzzer exercises the
// decode/resolve/classify path at full speed without running the planner.
func fuzzServer(f *testing.F) *Server {
	f.Helper()
	net, err := scratchmem.BuiltinModel("TinyCNN")
	if err != nil {
		f.Fatal(err)
	}
	plan, err := scratchmem.PlanModel(net, scratchmem.PlanOptions{GLBKiloBytes: 32})
	if err != nil {
		f.Fatal(err)
	}
	srv := New(Config{Workers: 2})
	srv.planFn = func(context.Context, *scratchmem.Network, scratchmem.PlanOptions) (*scratchmem.Plan, error) {
		return plan, nil
	}
	srv.simFn = func(context.Context, *scratchmem.Plan) (int64, int64, error) {
		return 1, 1, nil
	}
	return srv
}

// fuzzBody drives one raw body through a handler and enforces the wire
// contract: arbitrary input never panics the server and never earns a 5xx —
// garbage is the client's fault (4xx), not ours.
func fuzzBody(t *testing.T, srv *Server, path string, body []byte) {
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code >= 500 {
		t.Errorf("%s: body %q earned status %d (%s)", path, body, rec.Code, rec.Body.Bytes())
	}
}

// FuzzPlanRequest: the /v1/plan decoder must classify every input.
func FuzzPlanRequest(f *testing.F) {
	f.Add([]byte(`{"model": "TinyCNN", "glb_kb": 32}`))
	f.Add([]byte(`{"model": "TinyCNN", "glb_kb": 32, "strict": true, "objective": "latency"}`))
	f.Add([]byte(`{"network": {"name":"n","layers":[{"name":"l","type":"CV","ih":4,"iw":4,"ci":1,"fh":3,"fw":3,"f":2,"s":1,"p":1}]}, "glb_kb": 8}`))
	f.Add([]byte(`{"model": "TinyCNN", "config": {"glb_bytes": 65536, "pe_rows": 8, "pe_cols": 8, "data_width_bits": 8}}`))
	f.Add([]byte(`{"model": "NoSuchNet", "glb_kb": 32}`))
	f.Add([]byte(`{"model": "TinyCNN"}`))
	f.Add([]byte(`{"glb_kb": -1}`))
	f.Add([]byte(`{"model": "TinyCNN", "glb_kb": 9223372036854775807}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	srv := fuzzServer(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzBody(t, srv, "/v1/plan", body)
	})
}

// FuzzSimulateRequest: same contract for the /v1/simulate decoder,
// including its baseline branch.
func FuzzSimulateRequest(f *testing.F) {
	f.Add([]byte(`{"model": "TinyCNN", "glb_kb": 32}`))
	f.Add([]byte(`{"model": "TinyCNN", "glb_kb": 32, "baseline": {"split_percent": 50}}`))
	f.Add([]byte(`{"model": "TinyCNN", "glb_kb": 32, "baseline": {"split_percent": 33}}`))
	f.Add([]byte(`{"model": "TinyCNN", "glb_kb": 32, "baseline": null}`))
	f.Add([]byte(`{"baseline": {"split_percent": 50}}`))
	f.Add([]byte(`{"model": "TinyCNN", "glb_kb": 32, "unknown_field": 1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`0`))
	srv := fuzzServer(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzBody(t, srv, "/v1/simulate", body)
	})
}
