package glb

import (
	"fmt"
	"sort"
)

// Span is a half-open byte range [Base, End) inside the GLB address space.
type Span struct {
	Base, End int64
}

// Size returns the span length in bytes.
func (s Span) Size() int64 { return s.End - s.Base }

// Overlaps reports whether two spans share at least one byte.
func (s Span) Overlaps(o Span) bool { return s.Base < o.End && o.Base < s.End }

// Arena is a byte-addressed first-fit allocator with free-list coalescing
// over the fixed address range [0, capacity). The lifetime allocator uses it
// to assign concrete GLB address ranges to tensor live intervals: Alloc at a
// tensor's birth, Free after its last use. Unlike Buffer (named regions from
// an element pool), an Arena answers *where* data sits, so overlapping live
// ranges — the invariant the plan documents carry — are impossible by
// construction.
type Arena struct {
	capacity int64
	free     []Span // sorted by Base, pairwise disjoint, never adjacent
	inUse    int64
	high     int64 // high-water mark: max End ever handed out
}

// NewArena returns an arena over [0, capacityBytes).
func NewArena(capacityBytes int64) *Arena {
	if capacityBytes <= 0 {
		panic(fmt.Sprintf("glb: non-positive arena capacity %d", capacityBytes))
	}
	return &Arena{capacity: capacityBytes, free: []Span{{0, capacityBytes}}}
}

// Alloc carves the lowest-addressed free span that fits size bytes
// (first fit). ok is false when no free span is large enough — the caller
// decides what to spill.
func (a *Arena) Alloc(size int64) (Span, bool) {
	if size <= 0 {
		panic(fmt.Sprintf("glb: non-positive allocation %d", size))
	}
	for i := range a.free {
		f := a.free[i]
		if f.Size() < size {
			continue
		}
		s := Span{Base: f.Base, End: f.Base + size}
		if f.Size() == size {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i].Base = s.End
		}
		a.inUse += size
		if s.End > a.high {
			a.high = s.End
		}
		return s, true
	}
	return Span{}, false
}

// Free returns a span previously handed out by Alloc to the free list,
// coalescing with adjacent free space. Freeing a span that overlaps free
// space panics: it means the caller double-freed or fabricated a span, and
// the allocator's no-overlap guarantee would silently die with it.
func (a *Arena) Free(s Span) {
	if s.Base < 0 || s.End > a.capacity || s.Size() <= 0 {
		panic(fmt.Sprintf("glb: freeing invalid span [%d,%d)", s.Base, s.End))
	}
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].Base >= s.Base })
	if i < len(a.free) && a.free[i].Base < s.End {
		panic(fmt.Sprintf("glb: double free of [%d,%d)", s.Base, s.End))
	}
	if i > 0 && a.free[i-1].End > s.Base {
		panic(fmt.Sprintf("glb: double free of [%d,%d)", s.Base, s.End))
	}
	a.inUse -= s.Size()
	// Coalesce with the left and/or right neighbour.
	left := i > 0 && a.free[i-1].End == s.Base
	right := i < len(a.free) && a.free[i].Base == s.End
	switch {
	case left && right:
		a.free[i-1].End = a.free[i].End
		a.free = append(a.free[:i], a.free[i+1:]...)
	case left:
		a.free[i-1].End = s.End
	case right:
		a.free[i].Base = s.Base
	default:
		a.free = append(a.free, Span{})
		copy(a.free[i+1:], a.free[i:])
		a.free[i] = s
	}
}

// InUse returns the currently allocated byte count.
func (a *Arena) InUse() int64 { return a.inUse }

// HighWater returns the highest address ever covered by an allocation —
// the contiguous prefix of the GLB the resident tensors have claimed.
func (a *Arena) HighWater() int64 { return a.high }

// Capacity returns the arena size in bytes.
func (a *Arena) Capacity() int64 { return a.capacity }

// FreeSpans returns a copy of the free list (sorted, coalesced) — test and
// debugging introspection.
func (a *Arena) FreeSpans() []Span {
	out := make([]Span, len(a.free))
	copy(out, a.free)
	return out
}
