package glb

import (
	"errors"
	"testing"
)

func TestAllocFreeCycle(t *testing.T) {
	b := New(100)
	if err := b.Alloc("a", 40); err != nil {
		t.Fatal(err)
	}
	if err := b.Alloc("b", 60); err != nil {
		t.Fatal(err)
	}
	if b.Used() != 100 || b.Peak() != 100 {
		t.Errorf("used=%d peak=%d, want 100/100", b.Used(), b.Peak())
	}
	b.Free("a")
	if b.Used() != 60 {
		t.Errorf("used=%d after free, want 60", b.Used())
	}
	if b.Peak() != 100 {
		t.Errorf("peak=%d, want 100 (high-water mark)", b.Peak())
	}
	if err := b.Alloc("c", 41); err == nil {
		t.Error("over-capacity alloc accepted")
	}
	if err := b.Alloc("c", 40); err != nil {
		t.Errorf("fitting alloc rejected: %v", err)
	}
}

func TestCapacityError(t *testing.T) {
	b := New(10)
	err := b.Alloc("x", 11)
	var ce *ErrCapacity
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ErrCapacity", err)
	}
	if ce.Region != "x" || ce.Want != 11 || ce.Free != 10 || ce.Capacity != 10 {
		t.Errorf("unhelpful error: %+v", ce)
	}
	if ce.Error() == "" {
		t.Error("empty error string")
	}
}

func TestResize(t *testing.T) {
	b := New(100)
	if err := b.Resize("w", 30); err != nil {
		t.Fatal(err)
	}
	if err := b.Resize("w", 80); err != nil {
		t.Fatal(err)
	}
	if b.Region("w") != 80 || b.Used() != 80 {
		t.Errorf("region=%d used=%d, want 80/80", b.Region("w"), b.Used())
	}
	if err := b.Resize("w", 10); err != nil {
		t.Fatal(err)
	}
	if b.Used() != 10 || b.Peak() != 80 {
		t.Errorf("used=%d peak=%d, want 10/80", b.Used(), b.Peak())
	}
	if err := b.Resize("w", 101); err == nil {
		t.Error("over-capacity resize accepted")
	}
	if b.Region("w") != 10 {
		t.Error("failed resize mutated the region")
	}
}

func TestDoubleAllocRejected(t *testing.T) {
	b := New(10)
	if err := b.Alloc("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Alloc("a", 1); err == nil {
		t.Error("double alloc accepted")
	}
	if err := b.Alloc("n", -1); err == nil {
		t.Error("negative alloc accepted")
	}
	if err := b.Resize("n", -1); err == nil {
		t.Error("negative resize accepted")
	}
}

func TestFreeAbsentIsNoop(t *testing.T) {
	b := New(10)
	b.Free("ghost")
	if b.Used() != 0 {
		t.Error("freeing absent region changed usage")
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestCapacityAccessor(t *testing.T) {
	if New(42).Capacity() != 42 {
		t.Error("capacity accessor wrong")
	}
}
