package glb

import "testing"

func TestArenaFirstFitAndCoalesce(t *testing.T) {
	a := NewArena(100)
	s1, ok := a.Alloc(40)
	if !ok || s1.Base != 0 || s1.End != 40 {
		t.Fatalf("first alloc = %+v %v, want [0,40)", s1, ok)
	}
	s2, ok := a.Alloc(40)
	if !ok || s2.Base != 40 || s2.End != 80 {
		t.Fatalf("second alloc = %+v %v, want [40,80)", s2, ok)
	}
	if _, ok := a.Alloc(30); ok {
		t.Fatal("alloc of 30 fit a 20-byte tail")
	}
	if got := a.InUse(); got != 80 {
		t.Fatalf("InUse = %d, want 80", got)
	}
	a.Free(s1)
	// First fit reuses the lowest hole even when the tail also fits.
	s3, ok := a.Alloc(10)
	if !ok || s3.Base != 0 {
		t.Fatalf("after free, alloc(10) = %+v %v, want base 0", s3, ok)
	}
	a.Free(s3)
	a.Free(s2)
	// Everything freed: the regions must coalesce back into one span.
	s4, ok := a.Alloc(100)
	if !ok || s4.Base != 0 || s4.End != 100 {
		t.Fatalf("full-capacity alloc after frees = %+v %v", s4, ok)
	}
	if a.HighWater() != 100 {
		t.Fatalf("HighWater = %d, want 100", a.HighWater())
	}
}

func TestArenaRejectsBadFrees(t *testing.T) {
	a := NewArena(64)
	s, _ := a.Alloc(16)
	a.Free(s)
	for name, f := range map[string]func(){
		"double free":   func() { a.Free(s) },
		"unallocated":   func() { a.Free(Span{Base: 32, End: 48}) },
		"inverted":      func() { a.Free(Span{Base: 8, End: 4}) },
		"zero capacity": func() { NewArena(0) },
		"zero alloc":    func() { a.Alloc(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestArenaAllocTooLarge(t *testing.T) {
	a := NewArena(32)
	if _, ok := a.Alloc(33); ok {
		t.Fatal("alloc beyond capacity succeeded")
	}
	if s, ok := a.Alloc(32); !ok || s.Size() != 32 {
		t.Fatalf("exact-capacity alloc = %+v %v", s, ok)
	}
}
