// Package glb models the unified global buffer (scratchpad) as a set of
// named regions drawn from a single element pool. The engine allocates one
// region per data type (plus a double-buffering reserve when prefetching)
// and the buffer enforces the capacity constraint the planner promised —
// an over-allocation here means the estimator and the executor disagree,
// which the tests treat as a bug.
package glb

import "fmt"

// Buffer is a capacity-checked pool of named regions, sized in elements.
type Buffer struct {
	capacity int64
	used     int64
	peak     int64
	regions  map[string]int64
}

// New returns a buffer of the given capacity in elements.
func New(capacityElems int64) *Buffer {
	if capacityElems <= 0 {
		panic(fmt.Sprintf("glb: non-positive capacity %d", capacityElems))
	}
	return &Buffer{capacity: capacityElems, regions: make(map[string]int64)}
}

// ErrCapacity reports an allocation that does not fit.
type ErrCapacity struct {
	Region   string
	Want     int64
	Free     int64
	Capacity int64
}

func (e *ErrCapacity) Error() string {
	return fmt.Sprintf("glb: region %q needs %d elements, only %d of %d free",
		e.Region, e.Want, e.Free, e.Capacity)
}

// Alloc creates a region of the given size. Allocating an existing region
// is an error; use Resize.
func (b *Buffer) Alloc(name string, elems int64) error {
	if _, ok := b.regions[name]; ok {
		return fmt.Errorf("glb: region %q already allocated", name)
	}
	if elems < 0 {
		return fmt.Errorf("glb: negative allocation %d for %q", elems, name)
	}
	return b.set(name, elems)
}

// Resize grows or shrinks a region, creating it if absent.
func (b *Buffer) Resize(name string, elems int64) error {
	if elems < 0 {
		return fmt.Errorf("glb: negative allocation %d for %q", elems, name)
	}
	return b.set(name, elems)
}

func (b *Buffer) set(name string, elems int64) error {
	cur := b.regions[name]
	next := b.used - cur + elems
	if next > b.capacity {
		return &ErrCapacity{Region: name, Want: elems, Free: b.capacity - (b.used - cur), Capacity: b.capacity}
	}
	b.regions[name] = elems
	b.used = next
	if b.used > b.peak {
		b.peak = b.used
	}
	return nil
}

// Free releases a region; freeing an absent region is a no-op.
func (b *Buffer) Free(name string) {
	if cur, ok := b.regions[name]; ok {
		b.used -= cur
		delete(b.regions, name)
	}
}

// Used returns the currently allocated element count.
func (b *Buffer) Used() int64 { return b.used }

// Peak returns the high-water mark of allocated elements.
func (b *Buffer) Peak() int64 { return b.peak }

// Capacity returns the buffer capacity in elements.
func (b *Buffer) Capacity() int64 { return b.capacity }

// Region returns the size of a region (0 if absent).
func (b *Buffer) Region(name string) int64 { return b.regions[name] }
