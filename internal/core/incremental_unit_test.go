package core

import (
	"context"
	"testing"

	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/policy"
)

func incrTestNet(t *testing.T) *model.Network {
	t.Helper()
	n, err := model.Builtin("ResNet18")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCheckpointKnobCompatibility pins the reuse precondition: a checkpoint
// captured under different planner knobs — config, objective, prefetch,
// inter-layer mode — is never spliced from; the run falls back to a full
// plan (still returning a usable fresh checkpoint).
func TestCheckpointKnobCompatibility(t *testing.T) {
	n := incrTestNet(t)
	ctx := context.Background()
	base := NewPlanner(64, MinAccesses)
	_, ck, _, err := base.HeterogeneousDiffCtx(ctx, n, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		mut  func(pl *Planner)
	}{
		{"glb-size", func(pl *Planner) { pl.Cfg = policy.Default(128) }},
		{"objective", func(pl *Planner) { pl.Objective = MinLatency }},
		{"prefetch", func(pl *Planner) { pl.DisablePrefetch = true }},
		{"inter-layer", func(pl *Planner) { pl.InterLayer = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pl := NewPlanner(64, MinAccesses)
			tc.mut(pl)
			_, nck, stats, err := pl.HeterogeneousDiffCtx(ctx, n, ck)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Outcome != OutcomeFull || stats.LayersReused != 0 {
				t.Fatalf("incompatible checkpoint was spliced: %+v", stats)
			}
			if nck == nil {
				t.Fatal("full fallback returned no checkpoint")
			}
		})
	}

	// The same knobs splice.
	pl := NewPlanner(64, MinAccesses)
	_, _, stats, err := pl.HeterogeneousDiffCtx(ctx, n, ck)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Outcome != OutcomeSpliced || stats.LayersReused != len(n.Layers) {
		t.Fatalf("identical request did not replay the checkpoint: %+v", stats)
	}
}

// TestOverlapClamp pins the prefix/suffix disjointness invariant: a matched
// layer is consumed by at most one span, with the prefix winning ties.
func TestOverlapClamp(t *testing.T) {
	mk := func(fs ...int) []policy.LayerKey {
		ls := make([]layer.Layer, len(fs))
		for i, f := range fs {
			ls[i] = layer.MustNew("l", layer.Conv, 28, 28, 8, 3, 3, f, 1, 1)
		}
		return policy.ChainOf(ls)
	}
	for _, tc := range []struct {
		name string
		a, b []policy.LayerKey
		p, s int
	}{
		{"identical", mk(1, 2, 3), mk(1, 2, 3), 3, 0},
		{"disjoint", mk(1, 2, 3), mk(4, 5, 6), 0, 0},
		{"prefix-only", mk(1, 2, 9), mk(1, 2, 3), 2, 0},
		{"suffix-only", mk(9, 2, 3), mk(1, 2, 3), 0, 2},
		{"middle-edit", mk(1, 9, 3), mk(1, 2, 3), 1, 1},
		{"insert", mk(1, 9, 2, 3), mk(1, 2, 3), 1, 2},
		{"delete", mk(1, 3), mk(1, 2, 3), 1, 1},
		{"repeat-overrun", mk(7, 7, 7), mk(7, 7, 7, 7), 3, 0},
	} {
		p, s := overlap(tc.a, tc.b)
		if p != tc.p || s != tc.s {
			t.Errorf("%s: overlap = (%d, %d), want (%d, %d)", tc.name, p, s, tc.p, tc.s)
		}
		if n := min(len(tc.a), len(tc.b)); p+s > n {
			t.Errorf("%s: spans overlap: p=%d s=%d over %d shared layers", tc.name, p, s, n)
		}
	}
}

// TestUniformShift enumerates the convergence predicate's edge cases.
func TestUniformShift(t *testing.T) {
	cell := func(prim, sec int64, ok bool) dpCell { return dpCell{prim: prim, sec: sec, ok: ok} }
	for _, tc := range []struct {
		name string
		a, b [2]dpCell
		want bool
	}{
		{"both-ok-same-shift", [2]dpCell{cell(10, 1, true), cell(20, 2, true)}, [2]dpCell{cell(5, 0, true), cell(15, 1, true)}, true},
		{"prim-shift-differs", [2]dpCell{cell(10, 1, true), cell(20, 2, true)}, [2]dpCell{cell(5, 0, true), cell(16, 1, true)}, false},
		{"sec-shift-differs", [2]dpCell{cell(10, 1, true), cell(20, 2, true)}, [2]dpCell{cell(5, 0, true), cell(15, 3, true)}, false},
		{"reachability-differs", [2]dpCell{cell(10, 1, true), cell(20, 2, true)}, [2]dpCell{cell(5, 0, true), cell(15, 1, false)}, false},
		{"single-live", [2]dpCell{cell(10, 1, true), cell(0, 0, false)}, [2]dpCell{cell(99, 9, true), cell(0, 0, false)}, true},
		{"dead-row", [2]dpCell{cell(0, 0, false), cell(0, 0, false)}, [2]dpCell{cell(0, 0, false), cell(0, 0, false)}, false},
	} {
		if got := uniformShift(&tc.a, &tc.b); got != tc.want {
			t.Errorf("%s: uniformShift = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestGreedyInterLayerBypassesDiff pins the documented fallback: greedy
// inter-layer mode has history-dependent decisions, so HeterogeneousDiffCtx
// plans fully and captures no checkpoint.
func TestGreedyInterLayerBypassesDiff(t *testing.T) {
	n := incrTestNet(t)
	pl := NewPlanner(64, MinAccesses)
	pl.InterLayer = true
	pl.InterLayerGreedy = true
	plan, ck, stats, err := pl.HeterogeneousDiffCtx(context.Background(), n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || ck != nil || stats.Outcome != OutcomeFull {
		t.Fatalf("greedy mode: plan=%v ck=%v stats=%+v", plan != nil, ck, stats)
	}
}
