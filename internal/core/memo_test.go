package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"scratchmem/internal/model"
	"scratchmem/internal/progress"
	"scratchmem/internal/smmerr"
)

// TestInterLayerInfeasibleReportsFirstLayer: when the inter-layer DP finds
// no feasible schedule, the error names exactly the first layer whose best
// candidate does not fit — established independently here by a direct,
// memo-free sweep — and the report path answers from the DP's cached
// per-layer sweeps instead of re-estimating.
func TestInterLayerInfeasibleReportsFirstLayer(t *testing.T) {
	n, _ := model.Builtin("ResNet18")
	pl := NewPlanner(0, MinAccesses)
	pl.Cfg.GLBBytes = 256
	pl.InterLayer = true

	_, err := pl.Heterogeneous(n)
	var le *smmerr.LayerError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want a *LayerError", err)
	}
	var ie *InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want an *InfeasibleError inside", err)
	}

	// The independent reference: first layer with no feasible candidate.
	ref := &Planner{Cfg: pl.Cfg, Objective: MinAccesses}
	ref.UseMemo(nil)
	first := -1
	for i := range n.Layers {
		if e := ref.bestForLayer(n, i, false, false); !e.Feasible {
			first = i
			break
		}
	}
	if first < 0 {
		t.Fatal("test premise broken: every layer fits in a 256-byte GLB")
	}
	if le.Index != first || le.Name != n.Layers[first].Name {
		t.Errorf("reported layer %d (%s), want first infeasible %d (%s)",
			le.Index, le.Name, first, n.Layers[first].Name)
	}

	// Re-planning on the warm memo — DP sweep plus report path — answers
	// entirely from the caches: no new misses.
	before := pl.Memo.Stats()
	if _, err := pl.Heterogeneous(n); err == nil {
		t.Fatal("second attempt unexpectedly feasible")
	}
	after := pl.Memo.Stats()
	if after.Misses != before.Misses {
		t.Errorf("failure report re-estimated: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Hits == before.Hits {
		t.Error("second attempt never touched the caches")
	}
}

// TestBestHomogeneousDeterministicAcrossWorkers: the observer-free
// shape-deduped path and the per-variant fan-out path, at any worker
// count, pick byte-identical plans.
func TestBestHomogeneousDeterministicAcrossWorkers(t *testing.T) {
	n, _ := model.Builtin("MobileNetV2")
	ctx := context.Background()
	var plans []*Plan
	for _, workers := range []int{1, 8} {
		for _, withProg := range []bool{false, true} {
			pl := NewPlanner(64, MinAccesses)
			pl.Workers = workers
			var prog progress.Func
			if withProg {
				prog = func(progress.Event) {}
			}
			p, err := pl.BestHomogeneousCtx(ctx, n, prog)
			if err != nil {
				t.Fatalf("workers=%d prog=%v: %v", workers, withProg, err)
			}
			plans = append(plans, p)
		}
	}
	for i := 1; i < len(plans); i++ {
		if !reflect.DeepEqual(plans[i], plans[0]) {
			t.Fatalf("plan %d diverges from plan 0 across worker/observer settings", i)
		}
	}
}

// TestBestHomogeneousProgressCells: concurrent variant passes tag their
// events with the variant's cell label and deliver them serially, so a
// lock-free observer sees a consistent stream.
func TestBestHomogeneousProgressCells(t *testing.T) {
	n, _ := model.Builtin("ResNet18")
	pl := NewPlanner(64, MinAccesses)
	pl.Workers = 8
	var mu sync.Mutex
	inObserver := false
	cells := map[string]bool{}
	prog := func(ev progress.Event) {
		mu.Lock()
		if inObserver {
			mu.Unlock()
			t.Error("observer entered concurrently")
			return
		}
		inObserver = true
		mu.Unlock()
		if ev.Cell == "" {
			t.Errorf("untagged event: %+v", ev)
		}
		cells[ev.Cell] = true
		mu.Lock()
		inObserver = false
		mu.Unlock()
	}
	if _, err := pl.BestHomogeneousCtx(context.Background(), n, prog); err != nil {
		t.Fatal(err)
	}
	if len(cells) < 2*len(planIDs) {
		t.Errorf("saw %d distinct variant cells, want %d", len(cells), 2*len(planIDs))
	}
}

// TestSharedMemoAcrossObjectives: a latency planner sharing an access
// planner's memo (the figure drivers' pattern) answers from the shared
// caches and still matches a cold latency planner exactly.
func TestSharedMemoAcrossObjectives(t *testing.T) {
	n, _ := model.Builtin("GoogLeNet")
	ctx := context.Background()
	plA := NewPlanner(128, MinAccesses)
	if _, err := plA.HeterogeneousCtx(ctx, n, nil); err != nil {
		t.Fatal(err)
	}
	plL := NewPlanner(128, MinLatency)
	plL.UseMemo(plA.Memo)
	before := plA.Memo.Stats()
	shared, err := plL.HeterogeneousCtx(ctx, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := plA.Memo.Stats()
	if after.Misses != before.Misses {
		t.Errorf("latency pass re-estimated %d sweeps despite the shared cache", after.Misses-before.Misses)
	}
	cold, err := NewPlanner(128, MinLatency).HeterogeneousCtx(ctx, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(shared, cold) {
		t.Fatal("shared-memo latency plan diverges from a cold one")
	}
}
