package core

import (
	"errors"
	"testing"

	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/policy"
)

var paperSizesKB = []int{64, 128, 256, 512, 1024}

// TestHetFeasibleEverywhere: the heterogeneous scheme must schedule every
// layer of every paper model at every paper buffer size.
func TestHetFeasibleEverywhere(t *testing.T) {
	for _, n := range model.Builtins() {
		for _, kb := range paperSizesKB {
			pl := NewPlanner(kb, MinAccesses)
			p, err := pl.Heterogeneous(n)
			if err != nil {
				t.Fatalf("%s @%dkB: %v", n.Name, kb, err)
			}
			if !p.Feasible() {
				t.Errorf("%s @%dkB: infeasible layer in Het plan", n.Name, kb)
			}
			if len(p.Layers) != len(n.Layers) {
				t.Errorf("%s @%dkB: plan has %d layers, want %d", n.Name, kb, len(p.Layers), len(n.Layers))
			}
			if p.MaxMemoryBytes() > pl.Cfg.GLBBytes {
				t.Errorf("%s @%dkB: plan max memory %d exceeds GLB %d",
					n.Name, kb, p.MaxMemoryBytes(), pl.Cfg.GLBBytes)
			}
		}
	}
}

// TestHetBeatsHom: per the objective, Het is never worse than the best Hom,
// and both are never worse than any single homogeneous scheme.
func TestHetBeatsHom(t *testing.T) {
	for _, n := range model.Builtins() {
		for _, kb := range []int{64, 256, 1024} {
			pl := NewPlanner(kb, MinAccesses)
			het, err := pl.Heterogeneous(n)
			if err != nil {
				t.Fatal(err)
			}
			hom, err := pl.BestHomogeneous(n)
			if err != nil {
				t.Fatal(err)
			}
			if het.AccessElems() > hom.AccessElems() {
				t.Errorf("%s @%dkB: Het accesses %d > Hom %d",
					n.Name, kb, het.AccessElems(), hom.AccessElems())
			}
			single, err := pl.Homogeneous(n, policy.P5PartialPerChannel, false)
			if err != nil {
				t.Fatal(err)
			}
			if hom.AccessElems() > single.AccessElems() {
				t.Errorf("%s @%dkB: best Hom accesses %d > hom-p5 %d",
					n.Name, kb, hom.AccessElems(), single.AccessElems())
			}
		}
	}
}

// TestHetAccessesNearConstant reproduces the paper's §5.1 observation that
// Het's access volume barely moves with buffer size: the 64 kB plan stays
// within a modest factor of the 1 MB plan.
func TestHetAccessesNearConstant(t *testing.T) {
	for _, n := range model.Builtins() {
		small, err := NewPlanner(64, MinAccesses).Heterogeneous(n)
		if err != nil {
			t.Fatal(err)
		}
		big, err := NewPlanner(1024, MinAccesses).Heterogeneous(n)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(small.AccessElems()) / float64(big.AccessElems())
		if ratio > 1.6 {
			t.Errorf("%s: Het accesses @64kB / @1MB = %.2f, want near-constant (<1.6)", n.Name, ratio)
		}
		if ratio < 1.0 {
			t.Errorf("%s: smaller buffer produced fewer accesses (ratio %.2f)", n.Name, ratio)
		}
	}
}

// TestBigBufferReachesMinimum: at 1 MB every model should reach (or nearly
// reach) the theoretical once-per-element minimum.
func TestBigBufferReachesMinimum(t *testing.T) {
	for _, n := range model.Builtins() {
		pl := NewPlanner(1024, MinAccesses)
		p, err := pl.Heterogeneous(n)
		if err != nil {
			t.Fatal(err)
		}
		min := n.MinTransfers(true)
		if p.AccessElems() < min {
			t.Errorf("%s: Het accesses %d below theoretical minimum %d", n.Name, p.AccessElems(), min)
		}
		if float64(p.AccessElems()) > 1.05*float64(min) {
			t.Errorf("%s @1MB: Het accesses %d, want within 5%% of minimum %d", n.Name, p.AccessElems(), min)
		}
	}
}

// TestLatencyObjectiveOrdering: optimising for latency can only improve the
// latency metric relative to optimising for accesses, and vice versa.
func TestLatencyObjectiveOrdering(t *testing.T) {
	for _, n := range model.Builtins() {
		for _, kb := range []int{64, 256, 1024} {
			hetA, err := NewPlanner(kb, MinAccesses).Heterogeneous(n)
			if err != nil {
				t.Fatal(err)
			}
			hetL, err := NewPlanner(kb, MinLatency).Heterogeneous(n)
			if err != nil {
				t.Fatal(err)
			}
			if hetL.LatencyCycles() > hetA.LatencyCycles() {
				t.Errorf("%s @%dkB: Het_l latency %d > Het_a latency %d",
					n.Name, kb, hetL.LatencyCycles(), hetA.LatencyCycles())
			}
			if hetL.AccessElems() < hetA.AccessElems() {
				t.Errorf("%s @%dkB: Het_l accesses %d < Het_a accesses %d",
					n.Name, kb, hetL.AccessElems(), hetA.AccessElems())
			}
		}
	}
}

// TestPrefetchAblation reproduces the Figure 10 trade-off: enabling
// prefetching under the latency objective must not hurt latency and, at the
// small buffer size, buys it with extra accesses.
func TestPrefetchAblation(t *testing.T) {
	n, err := model.Builtin("MobileNet")
	if err != nil {
		t.Fatal(err)
	}
	for _, kb := range paperSizesKB {
		with := NewPlanner(kb, MinLatency)
		without := NewPlanner(kb, MinLatency)
		without.DisablePrefetch = true
		pw, err := with.Heterogeneous(n)
		if err != nil {
			t.Fatal(err)
		}
		pwo, err := without.Heterogeneous(n)
		if err != nil {
			t.Fatal(err)
		}
		if pw.LatencyCycles() > pwo.LatencyCycles() {
			t.Errorf("@%dkB: prefetch-enabled latency %d > disabled %d",
				kb, pw.LatencyCycles(), pwo.LatencyCycles())
		}
		if pwo.PrefetchCoverage() != 0 {
			t.Errorf("@%dkB: disabled plan reports prefetch coverage %.2f", kb, pwo.PrefetchCoverage())
		}
	}
	// Coverage should be high once buffers are comfortable (paper: 93% at
	// 64 kB, 100% at >=256 kB).
	p, err := NewPlanner(256, MinLatency).Heterogeneous(n)
	if err != nil {
		t.Fatal(err)
	}
	if c := p.PrefetchCoverage(); c < 0.8 {
		t.Errorf("prefetch coverage @256kB = %.2f, want >= 0.8", c)
	}
}

// TestInterLayerReuse reproduces the Figure 11 shape on MnasNet: negligible
// coverage at 64 kB, high coverage and a large access reduction at 1 MB.
func TestInterLayerReuse(t *testing.T) {
	n, err := model.Builtin("MnasNet")
	if err != nil {
		t.Fatal(err)
	}
	cov := map[int]float64{}
	for _, kb := range paperSizesKB {
		base := NewPlanner(kb, MinAccesses)
		inter := NewPlanner(kb, MinAccesses)
		inter.InterLayer = true
		pb, err := base.Heterogeneous(n)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := inter.Heterogeneous(n)
		if err != nil {
			t.Fatal(err)
		}
		if pi.AccessElems() > pb.AccessElems() {
			t.Errorf("@%dkB: inter-layer accesses %d > baseline %d", kb, pi.AccessElems(), pb.AccessElems())
		}
		cov[kb] = pi.InterLayerCoverage()
	}
	// The paper reports 0% coverage at 64 kB; our DP additionally retains
	// small late-layer ofmaps, so allow a modest non-zero value but keep the
	// "scarce at small buffers" shape.
	if cov[64] > 0.45 {
		t.Errorf("inter-layer coverage @64kB = %.2f, want scarce (paper: 0%%)", cov[64])
	}
	if cov[1024] < 0.7 {
		t.Errorf("inter-layer coverage @1MB = %.2f, want high (paper: 98%%)", cov[1024])
	}
	if cov[1024] <= cov[64] {
		t.Errorf("coverage did not grow with buffer size: %v", cov)
	}
	// Access reduction at 1 MB should be substantial (paper: 70%).
	base, _ := NewPlanner(1024, MinAccesses).Heterogeneous(n)
	interPl := NewPlanner(1024, MinAccesses)
	interPl.InterLayer = true
	pi, _ := interPl.Heterogeneous(n)
	red := 1 - float64(pi.AccessElems())/float64(base.AccessElems())
	if red < 0.3 {
		t.Errorf("inter-layer access reduction @1MB = %.2f, want substantial (paper: 0.70)", red)
	}
}

// TestInterLayerConsistency: a consumer follows every producer, and both
// sides of each retained transition chain by shape.
func TestInterLayerConsistency(t *testing.T) {
	pl := NewPlanner(1024, MinAccesses)
	pl.InterLayer = true
	for _, n := range model.Builtins() {
		p, err := pl.Heterogeneous(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p.Layers {
			lp := &p.Layers[i]
			if lp.KeepsResident {
				if i+1 >= len(p.Layers) {
					t.Errorf("%s: last layer keeps ofmap resident", n.Name)
					continue
				}
				if !p.Layers[i+1].ConsumesResident {
					t.Errorf("%s layer %d keeps ofmap but layer %d does not consume it", n.Name, i, i+1)
				}
				if !chainable(&lp.Layer, &p.Layers[i+1].Layer) {
					t.Errorf("%s: unchainable retention at layer %d", n.Name, i)
				}
			}
			if lp.ConsumesResident && (i == 0 || !p.Layers[i-1].KeepsResident) {
				t.Errorf("%s layer %d consumes resident ifmap without a producer", n.Name, i)
			}
			if lp.ConsumesResident != lp.Est.Opts.ResidentIfmap || lp.KeepsResident != lp.Est.Opts.KeepOfmap {
				t.Errorf("%s layer %d: plan flags disagree with estimate options", n.Name, i)
			}
		}
	}
}

// TestTable4PolicyMix64kB checks the Het policy mixes at 64 kB resemble the
// paper's Table 4: several distinct policies per network, including the
// middle-layer partial policies for ResNet18.
func TestTable4PolicyMix64kB(t *testing.T) {
	pl := NewPlanner(64, MinAccesses)
	for _, n := range model.Builtins() {
		p, err := pl.Heterogeneous(n)
		if err != nil {
			t.Fatal(err)
		}
		mix := p.PolicyMix()
		if len(mix) < 3 {
			t.Errorf("%s @64kB uses only %v, want a heterogeneous mix (Table 4)", n.Name, mix)
		}
	}
	// ResNet18 @64kB: paper reports p1, p2, p3 and p5 among the chosen
	// policies.
	n, _ := model.Builtin("ResNet18")
	p, err := pl.Heterogeneous(n)
	if err != nil {
		t.Fatal(err)
	}
	used := map[policy.ID]bool{}
	for i := range p.Layers {
		used[p.Layers[i].Est.Policy] = true
	}
	for _, id := range []policy.ID{policy.P1IfmapReuse, policy.P2FilterReuse} {
		if !used[id] {
			t.Errorf("ResNet18 @64kB: expected %s in the mix, got %v", id, p.PolicyMix())
		}
	}
	if !used[policy.P4PartialIfmap] && !used[policy.P5PartialPerChannel] {
		t.Errorf("ResNet18 @64kB: expected a partial policy in the mix, got %v", p.PolicyMix())
	}
}

// TestHomogeneousFallsBack: a homogeneous intra-layer plan at 64 kB cannot
// fit most layers and must fall back to tiling, not fail.
func TestHomogeneousFallsBack(t *testing.T) {
	n, _ := model.Builtin("ResNet18")
	pl := NewPlanner(64, MinAccesses)
	p, err := pl.Homogeneous(n, policy.IntraLayer, false)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible() {
		t.Fatal("fallback plan infeasible")
	}
	fb := 0
	for i := range p.Layers {
		if p.Layers[i].Est.Policy == policy.FallbackTiled {
			fb++
		}
	}
	if fb == 0 {
		t.Error("expected fallback tiling on some layers of hom-intra @64kB")
	}
	if p.AccessElems() <= n.MinTransfers(true) {
		t.Error("fallback plan should cost more than the theoretical minimum")
	}
}

// TestInfeasibleGLB: an absurdly small GLB yields a descriptive error.
func TestInfeasibleGLB(t *testing.T) {
	n, _ := model.Builtin("ResNet18")
	pl := NewPlanner(0, MinAccesses)
	pl.Cfg.GLBBytes = 256 // 256 bytes
	_, err := pl.Heterogeneous(n)
	var ie *InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *InfeasibleError", err)
	}
	if ie.Layer == "" || ie.Need <= ie.Have {
		t.Errorf("unhelpful error: %+v", ie)
	}
	if _, err := pl.BestHomogeneous(n); err == nil {
		t.Error("BestHomogeneous should fail on a 256-byte GLB")
	}
}

// TestPlanAggregates exercises the aggregate helpers on a known plan.
func TestPlanAggregates(t *testing.T) {
	n, _ := model.Builtin("ResNet18")
	p, err := NewPlanner(256, MinAccesses).Heterogeneous(n)
	if err != nil {
		t.Fatal(err)
	}
	var acc, lat int64
	for i := range p.Layers {
		acc += p.Layers[i].Est.AccessElems
		lat += p.Layers[i].Est.LatencyCycles
	}
	if p.AccessElems() != acc || p.LatencyCycles() != lat {
		t.Error("aggregates disagree with per-layer sums")
	}
	if p.AccessBytes() != acc { // 8-bit data: bytes == elements
		t.Errorf("AccessBytes = %d, want %d at 8-bit width", p.AccessBytes(), acc)
	}
	if p.Scheme != "het" {
		t.Errorf("Scheme = %q", p.Scheme)
	}
}

func TestObjectiveString(t *testing.T) {
	if MinAccesses.String() != "accesses" || MinLatency.String() != "latency" {
		t.Error("objective names changed")
	}
}

// TestValidationErrors: the planner rejects bad configs and bad networks.
func TestValidationErrors(t *testing.T) {
	n, _ := model.Builtin("ResNet18")
	pl := NewPlanner(64, MinAccesses)
	pl.Cfg.DataWidthBits = 0
	if _, err := pl.Heterogeneous(n); err == nil {
		t.Error("invalid config accepted by Heterogeneous")
	}
	if _, err := pl.Homogeneous(n, policy.P1IfmapReuse, false); err == nil {
		t.Error("invalid config accepted by Homogeneous")
	}
	pl = NewPlanner(64, MinAccesses)
	if _, err := pl.Heterogeneous(&model.Network{Name: "empty"}); err == nil {
		t.Error("empty network accepted")
	}
}

// TestClassicModelsPlan exercises the filter-dominated classics beyond the
// paper's set: the 98 MB FC of VGG16 and AlexNet's 37 MB FC must schedule
// at every paper size via the weight-streaming policies.
func TestClassicModelsPlan(t *testing.T) {
	for _, name := range []string{"AlexNet", "VGG16"} {
		n, err := model.Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, kb := range paperSizesKB {
			p, err := NewPlanner(kb, MinAccesses).Heterogeneous(n)
			if err != nil {
				t.Fatalf("%s @%dkB: %v", name, kb, err)
			}
			if !p.Feasible() {
				t.Errorf("%s @%dkB: infeasible", name, kb)
			}
			// Weight-dominated nets: traffic should approach the minimum
			// even at small buffers (weights stream once under P2/P3-style
			// plans); VGG16's giant early activations add ~30% at 64 kB.
			min := n.MinTransfers(true)
			if ratio := float64(p.AccessElems()) / float64(min); ratio > 1.4 {
				t.Errorf("%s @%dkB: accesses %.2fx the minimum", name, kb, ratio)
			}
		}
		// The giant FCs must pick a feasible weight-streaming policy.
		p, _ := NewPlanner(64, MinAccesses).Heterogeneous(n)
		for i := range p.Layers {
			lp := &p.Layers[i]
			if lp.Layer.Kind == layer.FullyConnected && !lp.Est.Feasible {
				t.Errorf("%s: FC %s infeasible", name, lp.Layer.Name)
			}
		}
	}
}

// TestPlannerDeterministic: planning is a pure function of its inputs —
// repeated runs yield identical plans (policy choice, options, traffic).
func TestPlannerDeterministic(t *testing.T) {
	n, _ := model.Builtin("EfficientNetB0")
	mk := func() *Plan {
		pl := NewPlanner(128, MinLatency)
		pl.InterLayer = true
		p, err := pl.Heterogeneous(n)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(), mk()
	if a.AccessElems() != b.AccessElems() || a.LatencyCycles() != b.LatencyCycles() {
		t.Fatal("plan totals differ across runs")
	}
	for i := range a.Layers {
		x, y := &a.Layers[i], &b.Layers[i]
		if x.Est.Policy != y.Est.Policy || x.Est.Opts != y.Est.Opts || x.Est.N != y.Est.N ||
			x.KeepsResident != y.KeepsResident {
			t.Fatalf("layer %d decision differs: %+v vs %+v", i, x.Est, y.Est)
		}
	}
}
