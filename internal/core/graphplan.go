package core

import (
	"context"
	"errors"
	"fmt"

	"scratchmem/internal/layer"
	"scratchmem/internal/lifetime"
	"scratchmem/internal/model"
	"scratchmem/internal/policy"
	"scratchmem/internal/progress"
	"scratchmem/internal/smmerr"
)

// Spill strategies recorded for interior tensors the planner decided not to
// keep resident (Li et al.'s tensor-replacement test, adapted to the GLB
// traffic model). The choice is advisory: plan accounting always charges
// the evict figures — each consumer re-loads the tensor from DRAM — so a
// recorded "recompute" marks where a rematerialising backend could do
// strictly better than the plan's totals claim.
const (
	// SpillEvict streams the tensor to DRAM at its producer and re-loads it
	// at each consumer.
	SpillEvict = "evict"
	// SpillRecompute drops the tensor and re-runs its producer per
	// consumer — cheaper when the producer's whole off-chip traffic is
	// below the tensor's store-plus-reload cost.
	SpillRecompute = "recompute"
)

// TensorPlan is one produced tensor's lifetime decision in a DAG plan:
// its live interval in schedule steps and, when kept resident, the concrete
// GLB byte range the interval allocator assigned.
type TensorPlan struct {
	Name string
	// Producer and LastUse are plan positions (indices into Plan.Layers):
	// the tensor is born when Layers[Producer] runs and dies after
	// Layers[LastUse]. LastUse == Producer for tensors nothing consumes.
	Producer int
	LastUse  int
	Elems    int64
	Bytes    int64
	// Resident is true when the tensor parks in the GLB for its whole
	// lifetime at the address range [Base, End).
	Resident bool
	Base     int64
	End      int64
	// Spill names the cheaper replacement strategy (SpillEvict or
	// SpillRecompute) for interior tensors not kept resident; "" otherwise.
	Spill string
}

// nodeEstimator produces the winning estimate for one layer under the given
// inter-layer flags — the pluggable per-node half of the DAG planner.
// Implementations must honour the flags: the returned estimate's
// Opts.ResidentIfmap/KeepOfmap equal the arguments even when infeasible, so
// the planner's demotion loop can attribute the shortfall.
type nodeEstimator func(e *policy.Result, l *layer.Layer, resident, keep bool)

// fullNodeEstimator is the Het per-node sweep: Algorithm 1's inner loop
// over every policy, prefetch variant and fallback tiling.
func (pl *Planner) fullNodeEstimator() nodeEstimator {
	return func(e *policy.Result, l *layer.Layer, resident, keep bool) {
		pl.bestLayerInto(e, l, resident, keep)
	}
}

// minimalNodeEstimator restricts each node to the smallest-footprint
// schedules — P4/P5 pinned to a single-filter block and fallback tiling,
// no prefetch — the DAG analogue of MinimalFootprintCtx's candidate set.
func (pl *Planner) minimalNodeEstimator() nodeEstimator {
	return func(e *policy.Result, l *layer.Layer, resident, keep bool) {
		o := policy.Options{ResidentIfmap: resident, KeepOfmap: keep}
		cands := [3]policy.Result{
			policy.EstimateN(l, policy.P4PartialIfmap, o, pl.Cfg, 1),
			policy.EstimateN(l, policy.P5PartialPerChannel, o, pl.Cfg, 1),
			policy.FallbackEstimate(l, o, pl.Cfg),
		}
		found := false
		for j := range cands {
			if !cands[j].Feasible {
				continue
			}
			if !found || better(pl.Objective, &cands[j], e) {
				*e = cands[j]
				found = true
			}
		}
		if !found {
			// The infeasible fallback carries the precise shortfall.
			*e = cands[2]
		}
	}
}

// homNodeEstimator pins every node to one policy variant, falling back to
// the best fallback tiling only when the variant is infeasible with no
// inter-layer flags raised (with flags raised the demotion loop must see
// the failure and clear them first).
func (pl *Planner) homNodeEstimator(id policy.ID, prefetch bool) nodeEstimator {
	return func(e *policy.Result, l *layer.Layer, resident, keep bool) {
		o := policy.Options{Prefetch: prefetch, ResidentIfmap: resident, KeepOfmap: keep}
		pl.Memo.EstimateInto(e, l, id, o, pl.Cfg)
		if !e.Feasible && !resident && !keep {
			pl.bestFallbackInto(e, l)
		}
	}
}

// PlanGraphCtx plans a tensor-lifetime graph heterogeneously: a DAG-aware
// schedule (lifetime.Schedule), per-node Algorithm-1 policy selection, and
// address-ranged GLB residency for every tensor worth keeping on-chip.
// Layers appear in the plan in schedule order; Plan.Schedule maps each
// position back to the graph node it runs and Plan.Tensors records every
// tensor's live interval, byte range and spill decision.
func (pl *Planner) PlanGraphCtx(ctx context.Context, g *model.Graph, prog progress.Func) (*Plan, error) {
	return pl.planGraph(ctx, g, pl.fullNodeEstimator(), "het dag", prog)
}

// PlanGraph is PlanGraphCtx without cancellation or observation.
func (pl *Planner) PlanGraph(g *model.Graph) (*Plan, error) {
	return pl.PlanGraphCtx(context.Background(), g, nil)
}

// BestHomogeneousGraphCtx searches every homogeneous policy variant over
// the DAG pipeline and returns the best whole-graph plan under the
// objective. Progress events are tagged with the variant's Cell label, as
// in the linear BestHomogeneousCtx search.
func (pl *Planner) BestHomogeneousGraphCtx(ctx context.Context, g *model.Graph, prog progress.Func) (*Plan, error) {
	var best *Plan
	var lastErr error
	for _, v := range homVariants(pl.prefetchChoices()) {
		cell := policy.ShortVariant(v.id, v.pf)
		var vprog progress.Func
		if prog != nil {
			vprog = func(ev progress.Event) {
				ev.Cell = cell
				prog(ev)
			}
		}
		p, err := pl.planGraph(ctx, g, pl.homNodeEstimator(v.id, v.pf),
			"hom "+policy.Variant(v.id, v.pf)+" dag", vprog)
		if err != nil {
			if !errors.Is(err, smmerr.ErrInfeasible) {
				return nil, err
			}
			lastErr = err
			continue
		}
		if best == nil || planBetter(pl.Objective, p, best) {
			best = p
		}
	}
	if best == nil {
		return nil, lastErr
	}
	return best, nil
}

// LifetimeSpillCtx is the degradation ladder's allocator-backed rung: the
// minimal-footprint candidate set planned over the network's tensor-lifetime
// graph, so inter-layer residency and explicit spill decisions recover
// traffic the flat minimal-tiling sweep left on the table. It succeeds
// whenever the old rung did — the residency search degrades to the
// all-demoted configuration, which is exactly the flat sweep.
func (pl *Planner) LifetimeSpillCtx(ctx context.Context, n *model.Network, prog progress.Func) (*Plan, error) {
	if err := n.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	return pl.LifetimeSpillGraphCtx(ctx, model.FromNetwork(n), prog)
}

// LifetimeSpillGraphCtx is LifetimeSpillCtx for models that are already
// tensor-lifetime graphs — the graph ladder's penultimate rung.
func (pl *Planner) LifetimeSpillGraphCtx(ctx context.Context, g *model.Graph, prog progress.Func) (*Plan, error) {
	return pl.planGraph(ctx, g, pl.minimalNodeEstimator(), DegradedLifetimeSpill, prog)
}

// nodeDecision is the DAG planner's per-node choice: the winning estimate
// and the inter-layer flags it was estimated under.
type nodeDecision struct {
	est   policy.Result
	resIn bool // whole ifmap read from resident GLB tensors
	keep  bool // ofmap retained in its allocator range for later consumers
}

// planGraph is the engine behind every DAG entry point: schedule the graph,
// decide tensor residency, allocate address ranges, pick per-node policies
// and assemble the plan in schedule order.
func (pl *Planner) planGraph(ctx context.Context, g *model.Graph, est nodeEstimator, scheme string, prog progress.Func) (*Plan, error) {
	if err := pl.Cfg.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	order := lifetime.Schedule(g)
	lv := lifetime.Analyze(g, order)
	exact := exactInputs(g)

	// Start from the most aggressive configuration — every interior tensor
	// resident — and let the feasibility, allocator and working-set checks
	// demote tensors until the whole schedule fits.
	resident := make(map[string]bool)
	for i := range lv.Tensors {
		if lv.Tensors[i].Interior() {
			resident[lv.Tensors[i].Name] = true
		}
	}
	dec, placed, err := pl.solveGraph(ctx, g, lv, exact, resident, est)
	if err != nil {
		return nil, err
	}

	// Residency is not free: a resident ifmap pins the full input in the
	// GLB, which can force a node onto a worse schedule than streaming
	// would. Greedily demote whichever single tensor most improves the plan
	// total until none does.
	cur := decTotals(dec)
	for {
		var bestSet map[string]bool
		var bestDec []nodeDecision
		var bestPlaced map[string]lifetime.Placement
		bestTot := cur
		for j := range lv.Tensors {
			name := lv.Tensors[j].Name
			if !resident[name] {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: planning graph %s: %w", g.Name, err)
			}
			trial := cloneSet(resident)
			trial[name] = false
			d2, p2, err := pl.solveGraph(ctx, g, lv, exact, trial, est)
			if err != nil {
				continue
			}
			if t2 := decTotals(d2); totalsBetter(pl.Objective, t2, bestTot) {
				bestSet, bestDec, bestPlaced, bestTot = trial, d2, p2, t2
			}
		}
		if bestSet == nil {
			break
		}
		resident, dec, placed, cur = bestSet, bestDec, bestPlaced, bestTot
	}

	// Final guard: never ship a DAG plan worse than the residency-free one,
	// which matches the linear planner's per-layer totals node for node.
	off := make(map[string]bool)
	if d0, err := pl.evalGraph(g, lv, exact, off, est); err == nil {
		if totalsBetter(pl.Objective, decTotals(d0), cur) {
			dec, placed = d0, map[string]lifetime.Placement{}
		}
	}

	plan := &Plan{
		Model: g.Name, Cfg: pl.Cfg, Objective: pl.Objective,
		Scheme:   scheme,
		Schedule: append([]int(nil), lv.Order...),
	}
	plan.Layers = make([]LayerPlan, len(lv.Order))
	var accesses, cycles int64
	for k, i := range lv.Order {
		if err := layerGate(ctx); err != nil {
			return nil, smmerr.Layer(i, g.Nodes[i].Layer.Name, err)
		}
		d := &dec[k]
		plan.Layers[k] = LayerPlan{Layer: g.Nodes[i].Layer, Est: d.est,
			ConsumesResident: d.resIn, KeepsResident: d.keep}
		accesses += d.est.AccessElems
		cycles += d.est.LatencyCycles
		prog.Emit(progress.Event{Phase: "plan", Index: k, Total: len(lv.Order), Name: g.Nodes[i].Layer.Name,
			Policy:      policy.ShortVariant(d.est.Policy, d.est.Opts.Prefetch),
			AccessElems: accesses, LatencyCycles: cycles})
	}
	for k := 0; k+1 < len(plan.Layers); k++ {
		if chainable(&plan.Layers[k].Layer, &plan.Layers[k+1].Layer) {
			plan.ChainableTransitions++
		}
	}
	plan.Tensors = pl.tensorTable(lv, dec, placed)
	return plan, nil
}

// solveGraph iterates the three feasibility checks to a fixed point:
// per-node estimates fit the GLB (evalGraph demotes on failure), the
// interval allocator places every resident tensor, and every step's
// resident high-water mark leaves room for the running node's working set.
// Each failed check demotes one tensor and retries, so the loop terminates
// (the resident set only shrinks, and the empty set always passes the
// allocator and working-set checks).
func (pl *Planner) solveGraph(ctx context.Context, g *model.Graph, lv *lifetime.Liveness, exact []bool, resident map[string]bool, est nodeEstimator) ([]nodeDecision, map[string]lifetime.Placement, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("core: planning graph %s: %w", g.Name, err)
		}
		dec, err := pl.evalGraph(g, lv, exact, resident, est)
		if err != nil {
			return nil, nil, err
		}
		placed, fail, ok := lifetime.Assign(lv, resident, pl.Cfg.GLBBytes, pl.Cfg.Bytes)
		if !ok {
			demoteLiveAt(lv, resident, lv.Tensors[fail].Step)
			continue
		}
		if k := pl.worksetOverflow(g, lv, dec, placed); k >= 0 {
			demoteLiveAt(lv, resident, k)
			continue
		}
		return dec, placed, nil
	}
}

// evalGraph computes every node's decision under the current resident set,
// demoting tensors out of residency whenever a node's estimate exceeds the
// GLB with inter-layer flags raised. It mutates resident. A node infeasible
// even with no flags raised fails the whole evaluation with ErrInfeasible.
func (pl *Planner) evalGraph(g *model.Graph, lv *lifetime.Liveness, exact []bool, resident map[string]bool, est nodeEstimator) ([]nodeDecision, error) {
restart:
	for {
		dec := make([]nodeDecision, len(lv.Order))
		for k, i := range lv.Order {
			nd := &g.Nodes[i]
			d := &dec[k]
			d.resIn = residentInputs(nd, exact[i], resident)
			d.keep = resident[nd.Layer.Name]
			est(&d.est, &nd.Layer, d.resIn, d.keep)
			if d.est.Feasible {
				continue
			}
			if d.keep {
				resident[nd.Layer.Name] = false
				continue restart
			}
			if d.resIn {
				demoteLargestInput(nd, lv, resident)
				continue restart
			}
			return nil, smmerr.Layer(i, nd.Layer.Name,
				&smmerr.InfeasibleError{Model: g.Name, Layer: nd.Layer.Name, Need: d.est.MemoryBytes, Have: pl.Cfg.GLBBytes})
		}
		return dec, nil
	}
}

// residentInputs reports whether a node's whole ifmap can be read from the
// GLB: its inputs tile the ifmap exactly and every one is resident.
// Residual side-reads are intentionally excluded — the layer estimators
// model the main ifmap stream only, so residuals pin lifetimes but never
// flip a node's traffic accounting.
func residentInputs(nd *model.GraphNode, exact bool, resident map[string]bool) bool {
	if !exact {
		return false
	}
	for _, t := range nd.Inputs {
		if !resident[t] {
			return false
		}
	}
	return true
}

// exactInputs reports, per node, whether its produced inputs tile its ifmap
// exactly: every input tensor matches the node's spatial extent and the
// channel counts sum to CI. Only exact readers can consume a resident
// tensor for free — pooled and flattened views (ContinuousView's
// relaxations) read a transformed copy, which streams through working
// memory even when the source tensor sits in the GLB, exactly as the
// linear planner only retains ofmaps across chainable transitions.
func exactInputs(g *model.Graph) []bool {
	prod := make(map[string]*layer.Layer, len(g.Nodes))
	for i := range g.Nodes {
		prod[g.Nodes[i].Layer.Name] = &g.Nodes[i].Layer
	}
	out := make([]bool, len(g.Nodes))
	for i := range g.Nodes {
		nd := &g.Nodes[i]
		if len(nd.Inputs) == 0 {
			continue
		}
		sum, ok := 0, true
		for _, t := range nd.Inputs {
			p := prod[t]
			if p == nil || p.OH() != nd.Layer.IH || p.OW() != nd.Layer.IW {
				ok = false
				break
			}
			sum += p.CO()
		}
		out[i] = ok && sum == nd.Layer.CI
	}
	return out
}

// demoteLargestInput demotes the biggest resident input of a node whose
// estimate no longer fits — freeing the most bytes per decision.
func demoteLargestInput(nd *model.GraphNode, lv *lifetime.Liveness, resident map[string]bool) {
	victim, size := "", int64(-1)
	for _, t := range nd.Inputs {
		if model.IsExternalTensor(t) || !resident[t] {
			continue
		}
		if e := lv.Tensors[lv.Index[t]].Elems; e > size {
			victim, size = t, e
		}
	}
	resident[victim] = false
}

// demoteLiveAt demotes the largest resident tensor live at the given step —
// the allocator or working-set check found the step over capacity, and
// evicting the biggest parked tensor frees the most room per decision.
func demoteLiveAt(lv *lifetime.Liveness, resident map[string]bool, step int) {
	victim, size := "", int64(-1)
	for i := range lv.Tensors {
		t := &lv.Tensors[i]
		if !resident[t.Name] || t.Step > step || step > t.LastUse {
			continue
		}
		if t.Elems > size {
			victim, size = t.Name, t.Elems
		}
	}
	if victim == "" {
		// Unreachable: both callers fail on a step with at least one live
		// resident tensor.
		panic("core: no resident tensor to demote")
	}
	resident[victim] = false
}

// worksetOverflow checks, per schedule step, that the allocator's ranges
// leave room for the running node's working set. First-fit packs resident
// tensors low, so everything above the step's highest live End is free and
// contiguous; the node's tiles, double buffers and streaming terms must fit
// there. Returns the first overflowing step, or -1.
func (pl *Planner) worksetOverflow(g *model.Graph, lv *lifetime.Liveness, dec []nodeDecision, placed map[string]lifetime.Placement) int {
	for k, i := range lv.Order {
		var maxEnd int64
		for j := range lv.Tensors {
			t := &lv.Tensors[j]
			if t.Step > k || k > t.LastUse {
				continue
			}
			if s, ok := placed[t.Name]; ok && s.End > maxEnd {
				maxEnd = s.End
			}
		}
		if maxEnd+pl.workingBytes(&g.Nodes[i].Layer, &dec[k]) > pl.Cfg.GLBBytes {
			return k
		}
	}
	return -1
}

// workingBytes is the part of a node's estimated footprint the allocator
// does not already account for: the estimate minus the resident-ifmap and
// retained-ofmap terms, which live in allocator-managed ranges.
func (pl *Planner) workingBytes(l *layer.Layer, d *nodeDecision) int64 {
	elems := d.est.MemoryElems
	if d.resIn {
		elems -= l.IfmapElems(false)
	}
	if d.keep {
		elems -= l.OfmapElems()
	}
	if elems < 0 {
		elems = 0
	}
	return pl.Cfg.Bytes(elems)
}

// tensorTable renders the lifetime analysis plus residency decisions as the
// plan's tensor table, deciding the spill strategy for every interior
// tensor left non-resident.
func (pl *Planner) tensorTable(lv *lifetime.Liveness, dec []nodeDecision, placed map[string]lifetime.Placement) []TensorPlan {
	out := make([]TensorPlan, len(lv.Tensors))
	for i := range lv.Tensors {
		t := &lv.Tensors[i]
		tp := TensorPlan{
			Name: t.Name, Producer: t.Step, LastUse: t.LastUse,
			Elems: t.Elems, Bytes: pl.Cfg.Bytes(t.Elems),
		}
		if s, ok := placed[t.Name]; ok {
			tp.Resident, tp.Base, tp.End = true, s.Base, s.End
		} else if t.Interior() {
			evict := t.Elems * int64(1+len(t.Consumers))
			recompute := dec[t.Step].est.AccessElems * int64(len(t.Consumers))
			if recompute < evict {
				tp.Spill = SpillRecompute
			} else {
				tp.Spill = SpillEvict
			}
		}
		out[i] = tp
	}
	return out
}

// decTotals sums the decisions' traffic and latency as a totalsBetter pair.
func decTotals(dec []nodeDecision) [2]int64 {
	var t [2]int64
	for i := range dec {
		t[0] += dec[i].est.AccessElems
		t[1] += dec[i].est.LatencyCycles
	}
	return t
}

func cloneSet(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		if v {
			c[k] = true
		}
	}
	return c
}
