package core

import (
	"context"

	"scratchmem/internal/faultinject"
	"scratchmem/internal/model"
	"scratchmem/internal/policy"
	"scratchmem/internal/progress"
	"scratchmem/internal/smmerr"
)

// The degradation ladder (scratchmem.PlanModelCtx) retries an infeasible
// request through progressively more conservative planners. Each rung is
// named so the reason chain and the PlanDoc stay machine-readable.
const (
	// DegradedPrefetchRelaxed re-plans with the "+p" variants removed:
	// prefetch double-buffers every tile (paper Eq. 2), so dropping it
	// halves the working set of each candidate.
	DegradedPrefetchRelaxed = "prefetch-relaxed"
	// DegradedMinimalTiling re-plans with only the smallest-footprint
	// schedules: P4/P5 pinned to a single-filter block and fallback tiling,
	// all without prefetch. Retired from the ladder in favour of
	// DegradedLifetimeSpill; the name stays accepted so stored plans and
	// old clients keep parsing.
	DegradedMinimalTiling = "minimal-tiling"
	// DegradedLifetimeSpill is DegradedMinimalTiling's replacement rung: the
	// same smallest-footprint candidate set, planned over the network's
	// tensor-lifetime graph so allocator-backed residency and explicit
	// spill decisions recover traffic the flat sweep left on the table
	// (Planner.LifetimeSpillCtx).
	DegradedLifetimeSpill = "lifetime_spill"
	// DegradedBaseline is the last rung: every layer runs fallback tiling —
	// the analogue of SCALE-Sim's statically split, double-buffered
	// scratchpad. It never reports infeasibility.
	DegradedBaseline = "baseline-fallback"
)

// DegradedReason records one failed rung of the degradation ladder.
type DegradedReason struct {
	// Mode is the rung that failed: "requested" for the original request,
	// otherwise one of the Degraded* mode names.
	Mode string
	// Err is the rung's failure rendered as text.
	Err string
}

// MarkDegraded stamps p as the product of the given ladder rung, carrying
// the chain of failures that preceded it.
func (p *Plan) MarkDegraded(mode string, reasons []DegradedReason) {
	p.Degraded = true
	p.DegradedMode = mode
	p.DegradedReasons = reasons
}

// MinimalFootprintCtx plans every layer using only the smallest-footprint
// schedules: policies 4 and 5 pinned to a single-filter block (n=1) and
// fallback tiling, all without prefetch double-buffering. It is the
// degradation ladder's penultimate rung — tighter than the requested policy
// set, but still choosing the best of its three candidates per layer under
// the configured objective.
func (pl *Planner) MinimalFootprintCtx(ctx context.Context, n *model.Network, prog progress.Func) (*Plan, error) {
	if err := pl.Cfg.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	if err := n.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	plan := &Plan{
		Model: n.Name, Cfg: pl.Cfg, Objective: pl.Objective,
		Scheme:               DegradedMinimalTiling,
		ChainableTransitions: countChainable(n),
	}
	plan.Layers = make([]LayerPlan, len(n.Layers))
	var accesses, cycles int64
	for i := range n.Layers {
		if err := layerGate(ctx); err != nil {
			return nil, smmerr.Layer(i, n.Layers[i].Name, err)
		}
		l := &n.Layers[i]
		cands := []policy.Result{
			policy.EstimateN(l, policy.P4PartialIfmap, policy.Options{}, pl.Cfg, 1),
			policy.EstimateN(l, policy.P5PartialPerChannel, policy.Options{}, pl.Cfg, 1),
			policy.FallbackEstimate(l, policy.Options{}, pl.Cfg),
		}
		var best policy.Result
		found := false
		for j := range cands {
			if !cands[j].Feasible {
				continue
			}
			if !found || better(pl.Objective, &cands[j], &best) {
				best, found = cands[j], true
			}
		}
		if !found {
			return nil, smmerr.Layer(i, l.Name,
				&smmerr.InfeasibleError{Model: n.Name, Layer: l.Name, Need: cands[2].MemoryBytes, Have: pl.Cfg.GLBBytes})
		}
		plan.Layers[i] = LayerPlan{Layer: *l, Est: best}
		accesses += best.AccessElems
		cycles += best.LatencyCycles
		prog.Emit(progress.Event{Phase: "plan", Index: i, Total: len(n.Layers), Name: l.Name,
			AccessElems: accesses, LatencyCycles: cycles})
	}
	return plan, nil
}

// BaselineFallbackCtx emits the conservative last-resort plan: every layer
// runs fallback tiling, double-buffered (prefetching) when that fits and
// plain otherwise — the management-free scheme a statically split
// double-buffered scratchpad would execute. It never reports
// infeasibility: when even the plain sliding window exceeds the GLB the
// layer keeps its over-capacity estimate, so the caller can read the exact
// shortfall from the plan instead of receiving ErrInfeasible. It fails
// only on cancellation, an invalid model, or an injected fault.
func (pl *Planner) BaselineFallbackCtx(ctx context.Context, n *model.Network, prog progress.Func) (*Plan, error) {
	if err := pl.Cfg.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	if err := n.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	plan := &Plan{
		Model: n.Name, Cfg: pl.Cfg, Objective: pl.Objective,
		Scheme:               DegradedBaseline,
		ChainableTransitions: countChainable(n),
	}
	plan.Layers = make([]LayerPlan, len(n.Layers))
	var accesses, cycles int64
	for i := range n.Layers {
		if err := layerGate(ctx); err != nil {
			return nil, smmerr.Layer(i, n.Layers[i].Name, err)
		}
		l := &n.Layers[i]
		e := policy.FallbackEstimate(l, policy.Options{Prefetch: true}, pl.Cfg)
		if !e.Feasible {
			// Double-buffering is a latency optimisation; shed it under
			// memory pressure (the plain estimate is never larger).
			e = policy.FallbackEstimate(l, policy.Options{}, pl.Cfg)
		}
		plan.Layers[i] = LayerPlan{Layer: *l, Est: e}
		accesses += e.AccessElems
		cycles += e.LatencyCycles
		prog.Emit(progress.Event{Phase: "plan", Index: i, Total: len(n.Layers), Name: l.Name,
			AccessElems: accesses, LatencyCycles: cycles})
	}
	return plan, nil
}

// layerGate is the per-layer check every planning loop runs: cancellation
// first, then the "core.layer" fault-injection site (a no-op unless a chaos
// run armed internal/faultinject).
func layerGate(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return faultinject.Hit("core.layer")
}
