package core

import (
	"sync/atomic"

	"scratchmem/internal/policy"
)

// bestKey identifies one bestForLayer (or bestFallback) question
// completely: the layer shape, the full accelerator configuration, the
// planner knobs that shape the candidate set, and the inter-layer variant.
// The objective is deliberately absent — one candidate sweep computes the
// winner under both objectives (see bestPair) — so an access-objective
// planner and a latency-objective planner sharing one estimate memo (the
// figure drivers, the server) also share every per-layer decision.
//
// Cfg and the flags live in the key rather than being assumed constant:
// the degradation ladder plans with copies of the Planner that share this
// cache but flip DisablePrefetch, and some experiment drivers mutate Cfg
// (e.g. Batch) between runs.
type bestKey struct {
	shape      policy.LayerKey
	cfg        policy.Config
	noPrefetch bool
	fallback   bool // bestFallback rather than bestForLayer
	resident   bool
	keep       bool
}

// bestPair is the winning estimate under each objective, indexed by
// Objective (MinAccesses = 0, MinLatency = 1). Candidate feasibility does
// not depend on the objective, so a single sweep fills both slots; when
// nothing fits, both slots carry the same infeasible fallback report.
type bestPair [2]policy.Result

// bestBuckets sizes the winner cache's bucket array. One run sees at most
// a few hundred distinct (shape, config, variant) questions, far fewer
// than the estimate memo's keys, so a small table keeps chains short while
// costing little on the many short-lived planners the drivers create.
const bestBuckets = 256

// bestEntry is one cached winner pair, immutable once published.
type bestEntry struct {
	key  bestKey
	p    bestPair
	next *bestEntry
}

// bestBlockLen sizes the entry arena's blocks: entries are ~650 bytes, so
// a block is one mid-size allocation amortised over eight stores.
const bestBlockLen = 8

// bestBlock is a chunk of entry storage. Entries are claimed with an
// atomic counter; a block never frees individual entries (the whole cache
// dies together), so claimed slots stay address-stable for the chains.
type bestBlock struct {
	used atomic.Int64
	e    [bestBlockLen]bestEntry
}

// homKey identifies one homogeneous-sweep question: what does a layer of
// this shape contribute to the network totals under every (policy,
// ±prefetch) variant? The variant list is a pure function of noPrefetch,
// so the per-variant contributions can live in one fixed array keyed by
// variant index (see homContribs).
type homKey struct {
	shape      policy.LayerKey
	cfg        policy.Config
	noPrefetch bool
}

// maxHomVariants bounds the homogeneous candidate set: every policy with
// and without prefetching.
const maxHomVariants = 2 * policy.NumPolicies

// homContrib is one (shape, variant) cell of the sweep: the totals a
// layer of this shape adds under that variant, or the fallback's
// footprint when even it does not fit (the infeasibility report needs it).
type homContrib struct {
	acc, lat, need int64
	ok             bool
}

// homContribs is the dense per-variant contribution row for one shape,
// indexed by position in homVariants' deterministic order.
type homContribs [maxHomVariants]homContrib

// homBuckets sizes the sweep cache: one run sees at most a few hundred
// distinct (shape, config) rows.
const homBuckets = 128

// homEntry is one cached sweep row, immutable once published.
type homEntry struct {
	key  homKey
	c    homContribs
	next *homEntry
}

// bestCache memoizes per-layer winners and per-shape homogeneous-sweep
// rows. It attaches to the run's policy.Memo (see bestCacheFor) so every
// planner sharing that memo — the degradation ladder's relaxed rungs, the
// figure drivers' per-objective planners, the server's requests — shares
// one table, and the Planner itself stays trivially copyable (no embedded
// locks). Like the estimate memo it is a lock-free chained table: a probe
// is one atomic pointer load plus a short walk, and publication is a CAS
// prepend.
type bestCache struct {
	blk     atomic.Pointer[bestBlock]
	buckets [bestBuckets]atomic.Pointer[bestEntry]
	hom     [homBuckets]atomic.Pointer[homEntry]
}

// alloc claims one entry slot from the current block, starting a new block
// when the current one is exhausted. A slot claimed by a store that then
// detects a racing duplicate is simply abandoned — blocks are bulk
// storage, not a free list.
func (c *bestCache) alloc() *bestEntry {
	for {
		b := c.blk.Load()
		if b != nil {
			if i := b.used.Add(1) - 1; i < bestBlockLen {
				return &b.e[i]
			}
		}
		c.blk.CompareAndSwap(b, &bestBlock{})
	}
}

func newBestCache() *bestCache { return &bestCache{} }

// bestCacheFor returns the winner cache attached to m, installing one on
// first use. All planners sharing m get the same cache.
func bestCacheFor(m *policy.Memo) *bestCache {
	return m.Companion(func() any { return newBestCache() }).(*bestCache)
}

// hash mixes every key field FNV-1a style, mirroring memoKey.hash.
func (k *bestKey) hash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h = (h ^ uint64(k.shape.Kind)) * prime
	h = (h ^ uint64(k.shape.IH)) * prime
	h = (h ^ uint64(k.shape.IW)) * prime
	h = (h ^ uint64(k.shape.CI)) * prime
	h = (h ^ uint64(k.shape.FH)) * prime
	h = (h ^ uint64(k.shape.FW)) * prime
	h = (h ^ uint64(k.shape.F)) * prime
	h = (h ^ uint64(k.shape.S)) * prime
	h = (h ^ uint64(k.shape.P)) * prime
	var b uint64
	if k.cfg.IncludePadding {
		b |= 1
	}
	if k.noPrefetch {
		b |= 2
	}
	if k.fallback {
		b |= 4
	}
	if k.resident {
		b |= 8
	}
	if k.keep {
		b |= 16
	}
	h = (h ^ b) * prime
	h = (h ^ uint64(k.cfg.GLBBytes)) * prime
	h = (h ^ uint64(k.cfg.DataWidthBits)) * prime
	h = (h ^ uint64(k.cfg.OpsPerCycle)) * prime
	h = (h ^ uint64(k.cfg.DRAMBytesPerCycle)) * prime
	h = (h ^ uint64(k.cfg.Batch)) * prime
	return h
}

// hash mixes every key field FNV-1a style, mirroring bestKey.hash.
func (k *homKey) hash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h = (h ^ uint64(k.shape.Kind)) * prime
	h = (h ^ uint64(k.shape.IH)) * prime
	h = (h ^ uint64(k.shape.IW)) * prime
	h = (h ^ uint64(k.shape.CI)) * prime
	h = (h ^ uint64(k.shape.FH)) * prime
	h = (h ^ uint64(k.shape.FW)) * prime
	h = (h ^ uint64(k.shape.F)) * prime
	h = (h ^ uint64(k.shape.S)) * prime
	h = (h ^ uint64(k.shape.P)) * prime
	var b uint64
	if k.cfg.IncludePadding {
		b |= 1
	}
	if k.noPrefetch {
		b |= 2
	}
	h = (h ^ b) * prime
	h = (h ^ uint64(k.cfg.GLBBytes)) * prime
	h = (h ^ uint64(k.cfg.DataWidthBits)) * prime
	h = (h ^ uint64(k.cfg.OpsPerCycle)) * prime
	h = (h ^ uint64(k.cfg.DRAMBytesPerCycle)) * prime
	h = (h ^ uint64(k.cfg.Batch)) * prime
	return h
}

// homGet returns the cached sweep row, or nil. The pointee is shared and
// immutable.
func (c *bestCache) homGet(k *homKey) *homContribs {
	b := &c.hom[k.hash()&(homBuckets-1)]
	for e := b.Load(); e != nil; e = e.next {
		if e.key == *k {
			return &e.c
		}
	}
	return nil
}

// homPut publishes row under k. Sweep rows are small and rare enough that
// entries come straight from the heap rather than an arena.
func (c *bestCache) homPut(k *homKey, row *homContribs) {
	e := &homEntry{key: *k, c: *row}
	b := &c.hom[k.hash()&(homBuckets-1)]
	for {
		head := b.Load()
		for dup := head; dup != nil; dup = dup.next {
			if dup.key == *k {
				return
			}
		}
		e.next = head
		if b.CompareAndSwap(head, e) {
			return
		}
	}
}

// get returns the cached pair, or nil. The pointee is shared and must not
// be mutated; callers copy the slot they need.
func (c *bestCache) get(k *bestKey) *bestPair {
	b := &c.buckets[k.hash()&(bestBuckets-1)]
	for e := b.Load(); e != nil; e = e.next {
		if e.key == *k {
			return &e.p
		}
	}
	return nil
}

// put publishes p under k. Entries are immutable once published; a racing
// duplicate (equal keys carry equal pairs) is skipped to keep chains tight.
func (c *bestCache) put(k *bestKey, p *bestPair) {
	e := c.alloc()
	e.key, e.p = *k, *p
	e.p[0].Layer = "" // keys are name-free; hits patch the name back
	e.p[1].Layer = ""
	b := &c.buckets[k.hash()&(bestBuckets-1)]
	for {
		head := b.Load()
		for dup := head; dup != nil; dup = dup.next {
			if dup.key == *k {
				return
			}
		}
		e.next = head
		if b.CompareAndSwap(head, e) {
			return
		}
	}
}
