package core

import (
	"context"
	"testing"

	"scratchmem/internal/model"
)

// TestWarmPlanAllocs bounds steady-state planning allocations: with the
// memo warm and the scratch arenas (DP table pool, homogeneous scratch
// pool) in rotation, a plan costs only its returned value — the Plan
// struct and its layer slice — plus a couple of unavoidable escapes, not
// per-layer or per-policy garbage. Generous bounds (2-3x the measured
// counts) keep the test meaningful without being flaky.
func TestWarmPlanAllocs(t *testing.T) {
	n, err := model.Builtin("ResNet18")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	cases := []struct {
		name  string
		plan  func(pl *Planner) error
		inter bool
		bound float64
	}{
		{"het", func(pl *Planner) error { _, err := pl.HeterogeneousCtx(ctx, n, nil); return err }, false, 6},
		{"inter", func(pl *Planner) error { _, err := pl.HeterogeneousCtx(ctx, n, nil); return err }, true, 8},
		{"hom", func(pl *Planner) error { _, err := pl.BestHomogeneousCtx(ctx, n, nil); return err }, false, 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pl := NewPlanner(64, MinAccesses)
			pl.Workers = 1 // parallel fan-out allocates per-goroutine state
			pl.InterLayer = tc.inter
			if err := tc.plan(pl); err != nil { // warm the memo and pools
				t.Fatal(err)
			}
			got := testing.AllocsPerRun(50, func() {
				if err := tc.plan(pl); err != nil {
					t.Fatal(err)
				}
			})
			if got > tc.bound {
				t.Errorf("warm %s plan allocates %.1f objects/op, want <= %.0f", tc.name, got, tc.bound)
			}
		})
	}
}
