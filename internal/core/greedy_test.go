package core

import (
	"testing"

	"scratchmem/internal/model"
)

// TestGreedyNeverBeatsDP: the retention DP is optimal over the same search
// space, so the greedy ablation can never produce a better plan.
func TestGreedyNeverBeatsDP(t *testing.T) {
	for _, n := range model.Builtins() {
		for _, kb := range []int{128, 512, 1024} {
			dpPl := NewPlanner(kb, MinAccesses)
			dpPl.InterLayer = true
			grPl := NewPlanner(kb, MinAccesses)
			grPl.InterLayer = true
			grPl.InterLayerGreedy = true

			dp, err := dpPl.Heterogeneous(n)
			if err != nil {
				t.Fatal(err)
			}
			gr, err := grPl.Heterogeneous(n)
			if err != nil {
				t.Fatal(err)
			}
			if dp.AccessElems() > gr.AccessElems() {
				t.Errorf("%s @%dkB: DP accesses %d > greedy %d",
					n.Name, kb, dp.AccessElems(), gr.AccessElems())
			}
		}
	}
}

// TestGreedyStructurallyConsistent: greedy plans obey the same
// producer/consumer pairing rules as DP plans.
func TestGreedyStructurallyConsistent(t *testing.T) {
	pl := NewPlanner(1024, MinAccesses)
	pl.InterLayer = true
	pl.InterLayerGreedy = true
	for _, n := range model.Builtins() {
		p, err := pl.Heterogeneous(n)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Feasible() {
			t.Errorf("%s: infeasible greedy plan", n.Name)
		}
		for i := range p.Layers {
			lp := &p.Layers[i]
			if lp.KeepsResident {
				if i+1 >= len(p.Layers) || !p.Layers[i+1].ConsumesResident {
					t.Errorf("%s layer %d: dangling retention", n.Name, i)
				}
			}
			if lp.ConsumesResident && (i == 0 || !p.Layers[i-1].KeepsResident) {
				t.Errorf("%s layer %d: consumes without producer", n.Name, i)
			}
		}
		// Greedy still beats no reuse at a comfortable buffer size.
		base, err := NewPlanner(1024, MinAccesses).Heterogeneous(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.AccessElems() > base.AccessElems() {
			t.Errorf("%s: greedy inter-layer worse than no reuse", n.Name)
		}
	}
}
