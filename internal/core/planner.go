package core

import (
	"context"
	"fmt"

	"scratchmem/internal/faultinject"
	"scratchmem/internal/model"
	"scratchmem/internal/policy"
	"scratchmem/internal/progress"
	"scratchmem/internal/smmerr"
)

// Planner is the analyser of the paper's operational flow (Figure 4): it
// takes a model description and accelerator specification and emits an
// execution plan per the configured objective.
type Planner struct {
	// Cfg is the accelerator specification (GLB size, data width, compute
	// rate, off-chip bandwidth, padding rule).
	Cfg policy.Config
	// Objective selects between paper Algorithm 1 (MinAccesses) and its
	// latency counterpart.
	Objective Objective
	// DisablePrefetch removes the "+p" variants from the policy set
	// (the paper's Figure 10 ablation).
	DisablePrefetch bool
	// InterLayer enables inter-layer reuse (§5.4): a layer's ofmap may stay
	// resident in the GLB and feed the next layer's ifmap.
	InterLayer bool
	// InterLayerGreedy replaces the dynamic program over retention states
	// with a one-pass greedy rule (enable retention whenever the local pair
	// improves); an ablation knob — the DP is never worse.
	InterLayerGreedy bool
}

// NewPlanner returns a Planner with the paper's default accelerator
// specification for the given GLB size in kB and the given objective.
func NewPlanner(glbKB int, obj Objective) *Planner {
	return &Planner{Cfg: policy.Default(glbKB), Objective: obj}
}

// prefetchChoices returns the prefetch settings the planner may use.
func (pl *Planner) prefetchChoices() []bool {
	if pl.DisablePrefetch {
		return []bool{false}
	}
	return []bool{false, true}
}

// bestForLayer runs Algorithm 1's inner loop (lines 6-19) for one layer
// under the given inter-layer options, returning the winning estimate or an
// infeasible fallback estimate if nothing fits.
func (pl *Planner) bestForLayer(lp *model.Network, idx int, resident, keep bool) policy.Result {
	l := &lp.Layers[idx]
	var best policy.Result
	found := false
	for _, id := range policy.IDs() {
		for _, pf := range pl.prefetchChoices() {
			o := policy.Options{Prefetch: pf, ResidentIfmap: resident, KeepOfmap: keep}
			e := policy.Estimate(l, id, o, pl.Cfg)
			if !e.Feasible {
				continue
			}
			if !found || better(pl.Objective, &e, &best) {
				best, found = e, true
			}
		}
	}
	// Algorithm 1's escape hatch — fallback tiling — is evaluated as a
	// first-class candidate: for some layers (e.g. tiny filter banks under
	// the latency objective) it beats every feasible standard policy, and
	// including it keeps Het dominant over every homogeneous scheme.
	for _, pf := range pl.prefetchChoices() {
		o := policy.Options{Prefetch: pf, ResidentIfmap: resident, KeepOfmap: keep}
		e := policy.FallbackEstimate(l, o, pl.Cfg)
		if !e.Feasible {
			continue
		}
		if !found || better(pl.Objective, &e, &best) {
			best, found = e, true
		}
	}
	if found {
		return best
	}
	// Even fallback tiling does not fit; report the (infeasible) fallback
	// so callers can surface a precise error.
	return policy.FallbackEstimate(l, policy.Options{ResidentIfmap: resident, KeepOfmap: keep}, pl.Cfg)
}

// Heterogeneous produces the paper's Het scheme: the best feasible policy
// per layer. With InterLayer enabled it additionally decides, via dynamic
// programming over the resident/non-resident state, which transitions keep
// the producer's ofmap on-chip.
func (pl *Planner) Heterogeneous(n *model.Network) (*Plan, error) {
	return pl.HeterogeneousCtx(context.Background(), n, nil)
}

// HeterogeneousCtx is Heterogeneous with cancellation and observation: it
// checks ctx between layers (the paper's Algorithm 1 outer loop) and emits
// one progress event per planned layer. A canceled context returns an error
// wrapping ctx.Err() and identifying the layer reached.
func (pl *Planner) HeterogeneousCtx(ctx context.Context, n *model.Network, prog progress.Func) (*Plan, error) {
	if err := pl.Cfg.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	if err := n.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	plan := &Plan{
		Model: n.Name, Cfg: pl.Cfg, Objective: pl.Objective,
		Scheme:               "het",
		ChainableTransitions: countChainable(n),
	}
	var err error
	switch {
	case pl.InterLayer && pl.InterLayerGreedy:
		plan.Layers, err = pl.interLayerGreedy(ctx, n, prog)
	case pl.InterLayer:
		plan.Layers, err = pl.interLayerDP(ctx, n, prog)
	default:
		plan.Layers, err = pl.independentLayers(ctx, n, prog)
	}
	if err != nil {
		return nil, err
	}
	return plan, nil
}

func (pl *Planner) independentLayers(ctx context.Context, n *model.Network, prog progress.Func) ([]LayerPlan, error) {
	out := make([]LayerPlan, len(n.Layers))
	var accesses, cycles int64
	for i := range n.Layers {
		if err := layerGate(ctx); err != nil {
			return nil, smmerr.Layer(i, n.Layers[i].Name, err)
		}
		e := pl.bestForLayer(n, i, false, false)
		if !e.Feasible {
			return nil, smmerr.Layer(i, n.Layers[i].Name,
				&smmerr.InfeasibleError{Model: n.Name, Layer: n.Layers[i].Name, Need: e.MemoryBytes, Have: pl.Cfg.GLBBytes})
		}
		out[i] = LayerPlan{Layer: n.Layers[i], Est: e}
		accesses += e.AccessElems
		cycles += e.LatencyCycles
		prog.Emit(progress.Event{Phase: "plan", Index: i, Total: len(n.Layers), Name: n.Layers[i].Name,
			Policy: policy.ShortVariant(e.Policy, e.Opts.Prefetch), AccessElems: accesses, LatencyCycles: cycles})
	}
	return out, nil
}

// interLayerDP chooses per-layer policies and inter-layer retention jointly:
// state s indicates whether layer i's ifmap is resident in the GLB. The
// transition cost is the layer's objective key; retention (KeepOfmap) is
// only permitted on transitions whose shapes chain.
func (pl *Planner) interLayerDP(ctx context.Context, n *model.Network, prog progress.Func) ([]LayerPlan, error) {
	const inf = int64(1) << 62
	type cell struct {
		prim, sec int64
		est       policy.Result
		keep      bool
		prev      int // predecessor state
		ok        bool
	}
	L := len(n.Layers)
	// dp[i][s]: best cumulative cost entering layer i with resident state s.
	dp := make([][2]cell, L+1)
	dp[0][0] = cell{ok: true}
	dp[0][1] = cell{prim: inf, sec: inf}

	for i := 0; i < L; i++ {
		if err := layerGate(ctx); err != nil {
			return nil, smmerr.Layer(i, n.Layers[i].Name, err)
		}
		next := [2]cell{{prim: inf, sec: inf}, {prim: inf, sec: inf}}
		canKeep := i+1 < L && chainable(&n.Layers[i], &n.Layers[i+1])
		for s := 0; s < 2; s++ {
			if !dp[i][s].ok {
				continue
			}
			keeps := []bool{false}
			if canKeep {
				keeps = append(keeps, true)
			}
			for _, keep := range keeps {
				e := pl.bestForLayer(n, i, s == 1, keep)
				if !e.Feasible {
					continue
				}
				p, sc := objectiveKey(pl.Objective, &e)
				cand := cell{
					prim: dp[i][s].prim + p, sec: dp[i][s].sec + sc,
					est: e, keep: keep, prev: s, ok: true,
				}
				ns := 0
				if keep {
					ns = 1
				}
				cur := &next[ns]
				if !cur.ok || cand.prim < cur.prim || (cand.prim == cur.prim && cand.sec < cur.sec) {
					*cur = cand
				}
			}
		}
		dp[i+1] = next
		prog.Emit(progress.Event{Phase: "plan", Index: i, Total: L, Name: n.Layers[i].Name})
	}

	// Pick the best terminal state and walk back.
	end := 0
	if dp[L][1].ok && (!dp[L][0].ok || dp[L][1].prim < dp[L][0].prim ||
		(dp[L][1].prim == dp[L][0].prim && dp[L][1].sec < dp[L][0].sec)) {
		end = 1
	}
	if !dp[L][end].ok {
		// Find the first layer that cannot be scheduled to report precisely.
		for i := range n.Layers {
			e := pl.bestForLayer(n, i, false, false)
			if !e.Feasible {
				return nil, smmerr.Layer(i, n.Layers[i].Name,
					&smmerr.InfeasibleError{Model: n.Name, Layer: n.Layers[i].Name, Need: e.MemoryBytes, Have: pl.Cfg.GLBBytes})
			}
		}
		return nil, fmt.Errorf("core: %s: no feasible inter-layer plan: %w", n.Name, smmerr.ErrInfeasible)
	}
	out := make([]LayerPlan, L)
	s := end
	for i := L - 1; i >= 0; i-- {
		c := dp[i+1][s]
		out[i] = LayerPlan{
			Layer:            n.Layers[i],
			Est:              c.est,
			ConsumesResident: c.prev == 1,
			KeepsResident:    c.keep,
		}
		s = c.prev
	}
	return out, nil
}

// Homogeneous produces a plan that applies one (policy, ±prefetch) variant
// to every layer, falling back to fallback tiling on layers where the
// variant does not fit (the paper's Hom schemes must still execute every
// layer).
func (pl *Planner) Homogeneous(n *model.Network, id policy.ID, prefetch bool) (*Plan, error) {
	return pl.HomogeneousCtx(context.Background(), n, id, prefetch, nil)
}

// HomogeneousCtx is Homogeneous with per-layer cancellation checks and
// progress events.
func (pl *Planner) HomogeneousCtx(ctx context.Context, n *model.Network, id policy.ID, prefetch bool, prog progress.Func) (*Plan, error) {
	if err := pl.Cfg.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	if err := n.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	plan := &Plan{
		Model: n.Name, Cfg: pl.Cfg, Objective: pl.Objective,
		Scheme:               "hom " + policy.Variant(id, prefetch),
		ChainableTransitions: countChainable(n),
	}
	var accesses, cycles int64
	for i := range n.Layers {
		if err := layerGate(ctx); err != nil {
			return nil, smmerr.Layer(i, n.Layers[i].Name, err)
		}
		l := &n.Layers[i]
		e := policy.Estimate(l, id, policy.Options{Prefetch: prefetch}, pl.Cfg)
		if !e.Feasible {
			e = pl.bestFallback(n, i)
			if !e.Feasible {
				return nil, smmerr.Layer(i, l.Name,
					&smmerr.InfeasibleError{Model: n.Name, Layer: l.Name, Need: e.MemoryBytes, Have: pl.Cfg.GLBBytes})
			}
		}
		plan.Layers = append(plan.Layers, LayerPlan{Layer: *l, Est: e})
		accesses += e.AccessElems
		cycles += e.LatencyCycles
		prog.Emit(progress.Event{Phase: "plan", Index: i, Total: len(n.Layers), Name: l.Name,
			Policy: policy.ShortVariant(e.Policy, e.Opts.Prefetch), AccessElems: accesses, LatencyCycles: cycles})
	}
	return plan, nil
}

func (pl *Planner) bestFallback(n *model.Network, idx int) policy.Result {
	var best policy.Result
	found := false
	for _, pf := range pl.prefetchChoices() {
		e := policy.FallbackEstimate(&n.Layers[idx], policy.Options{Prefetch: pf}, pl.Cfg)
		if !e.Feasible {
			continue
		}
		if !found || better(pl.Objective, &e, &best) {
			best, found = e, true
		}
	}
	if found {
		return best
	}
	return policy.FallbackEstimate(&n.Layers[idx], policy.Options{}, pl.Cfg)
}

// BestHomogeneous evaluates every homogeneous scheme (each policy, with and
// without prefetching) and returns the one minimising the objective — the
// paper's Hom bars.
func (pl *Planner) BestHomogeneous(n *model.Network) (*Plan, error) {
	return pl.BestHomogeneousCtx(context.Background(), n, nil)
}

// BestHomogeneousCtx is BestHomogeneous with cancellation: ctx is checked
// once per candidate (policy, ±prefetch) variant and threaded into each
// per-variant planning pass. Cancellation surfaces immediately rather than
// being mistaken for an infeasible variant.
func (pl *Planner) BestHomogeneousCtx(ctx context.Context, n *model.Network, prog progress.Func) (*Plan, error) {
	var best *Plan
	var firstErr error
	for _, id := range policy.IDs() {
		for _, pf := range pl.prefetchChoices() {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: %s: %w", n.Name, err)
			}
			p, err := pl.HomogeneousCtx(ctx, n, id, pf, prog)
			if err != nil {
				// Cancellation and injected faults are transient, not a
				// property of the variant: surface them instead of treating
				// the variant as infeasible.
				if smmerr.IsCanceled(err) || faultinject.IsInjected(err) {
					return nil, err
				}
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if best == nil || planBetter(pl.Objective, p, best) {
				best = p
			}
		}
	}
	if best == nil {
		return nil, firstErr
	}
	return best, nil
}

func planBetter(o Objective, a, b *Plan) bool {
	var ap, as, bp, bs int64
	if o == MinLatency {
		ap, as = a.LatencyCycles(), a.AccessElems()
		bp, bs = b.LatencyCycles(), b.AccessElems()
	} else {
		ap, as = a.AccessElems(), a.LatencyCycles()
		bp, bs = b.AccessElems(), b.LatencyCycles()
	}
	if ap != bp {
		return ap < bp
	}
	return as < bs
}

// interLayerGreedy makes retention decisions in one forward pass: at each
// chainable transition it compares the local cost of (keep producer ofmap +
// consumer reads resident ifmap) against both layers running plainly, and
// retains when the pair improves. Unlike the DP it cannot see that an early
// retention forecloses a better one later, so it serves as the ablation
// baseline for interLayerDP.
func (pl *Planner) interLayerGreedy(ctx context.Context, n *model.Network, prog progress.Func) ([]LayerPlan, error) {
	L := len(n.Layers)
	out := make([]LayerPlan, L)
	resident := false
	var accesses, cycles int64
	for i := 0; i < L; i++ {
		if err := layerGate(ctx); err != nil {
			return nil, smmerr.Layer(i, n.Layers[i].Name, err)
		}
		plain := pl.bestForLayer(n, i, resident, false)
		keep := false
		best := plain
		if i+1 < L && chainable(&n.Layers[i], &n.Layers[i+1]) {
			withKeep := pl.bestForLayer(n, i, resident, true)
			if withKeep.Feasible {
				nextPlain := pl.bestForLayer(n, i+1, false, false)
				nextResident := pl.bestForLayer(n, i+1, true, false)
				if nextResident.Feasible {
					kp, ks := objectiveKey(pl.Objective, &withKeep)
					np, ns := objectiveKey(pl.Objective, &nextResident)
					pp, psec := objectiveKey(pl.Objective, &plain)
					qp, qs := objectiveKey(pl.Objective, &nextPlain)
					pairKeep, pairKeepSec := kp+np, ks+ns
					pairPlain, pairPlainSec := pp+qp, psec+qs
					if pairKeep < pairPlain || (pairKeep == pairPlain && pairKeepSec < pairPlainSec) {
						keep, best = true, withKeep
					}
				}
			}
		}
		if !best.Feasible {
			return nil, smmerr.Layer(i, n.Layers[i].Name,
				&smmerr.InfeasibleError{Model: n.Name, Layer: n.Layers[i].Name, Need: best.MemoryBytes, Have: pl.Cfg.GLBBytes})
		}
		out[i] = LayerPlan{Layer: n.Layers[i], Est: best, ConsumesResident: resident, KeepsResident: keep}
		accesses += best.AccessElems
		cycles += best.LatencyCycles
		prog.Emit(progress.Event{Phase: "plan", Index: i, Total: L, Name: n.Layers[i].Name,
			Policy: policy.ShortVariant(best.Policy, best.Opts.Prefetch), AccessElems: accesses, LatencyCycles: cycles})
		resident = keep
	}
	return out, nil
}
