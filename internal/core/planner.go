package core

import (
	"context"
	"fmt"
	"sync"

	"scratchmem/internal/faultinject"
	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/parallel"
	"scratchmem/internal/policy"
	"scratchmem/internal/progress"
	"scratchmem/internal/smmerr"
)

// Planner is the analyser of the paper's operational flow (Figure 4): it
// takes a model description and accelerator specification and emits an
// execution plan per the configured objective.
type Planner struct {
	// Cfg is the accelerator specification (GLB size, data width, compute
	// rate, off-chip bandwidth, padding rule).
	Cfg policy.Config
	// Objective selects between paper Algorithm 1 (MinAccesses) and its
	// latency counterpart.
	Objective Objective
	// DisablePrefetch removes the "+p" variants from the policy set
	// (the paper's Figure 10 ablation).
	DisablePrefetch bool
	// InterLayer enables inter-layer reuse (§5.4): a layer's ofmap may stay
	// resident in the GLB and feed the next layer's ifmap.
	InterLayer bool
	// InterLayerGreedy replaces the dynamic program over retention states
	// with a one-pass greedy rule (enable retention whenever the local pair
	// improves); an ablation knob — the DP is never worse.
	InterLayerGreedy bool
	// Memo is the estimate table shared across one planning run: repeated
	// layer shapes and the DP's (resident, keep) re-probes become map
	// lookups. nil disables memoization entirely — the sequential
	// reference path the golden equivalence tests compare against.
	// NewPlanner installs a fresh table; literal constructions opt in via
	// UseMemo. Every memoized path produces plans identical to the direct
	// path.
	Memo *policy.Memo
	// Workers bounds BestHomogeneousCtx's per-variant fan-out: 0 uses
	// GOMAXPROCS, 1 plans the variants sequentially on the caller's
	// goroutine. The fan-out reduces results in deterministic variant
	// order, so the worker count never changes the selected plan.
	Workers int

	// best caches bestForLayer/bestFallback winners; installed alongside
	// Memo by UseMemo. A pointer, so value copies of the Planner (the
	// degradation ladder's rungs) share it — the key carries every field a
	// copy might change.
	best *bestCache
}

// NewPlanner returns a Planner with the paper's default accelerator
// specification for the given GLB size in kB and the given objective,
// with a fresh estimate memo installed.
func NewPlanner(glbKB int, obj Objective) *Planner {
	pl := &Planner{Cfg: policy.Default(glbKB), Objective: obj}
	pl.UseMemo(policy.NewMemo())
	return pl
}

// UseMemo installs m as the planner's estimate table (sharing one table
// across planners is safe and useful: the estimators do not depend on the
// objective). A nil m removes memoization, restoring the sequential
// reference behaviour.
func (pl *Planner) UseMemo(m *policy.Memo) {
	pl.Memo = m
	if m == nil {
		pl.best = nil
		return
	}
	pl.best = bestCacheFor(m)
}

// planIDs and prefetchAll back prefetchChoices and the candidate loops
// without per-call allocations.
var (
	planIDs     = policy.IDs()
	prefetchAll = [2]bool{false, true}
)

// prefetchChoices returns the prefetch settings the planner may use. The
// result aliases a shared read-only array; callers must not mutate it.
func (pl *Planner) prefetchChoices() []bool {
	if pl.DisablePrefetch {
		return prefetchAll[:1]
	}
	return prefetchAll[:]
}

// objIndex maps an objective to its bestPair slot.
func objIndex(o Objective) int {
	if o == MinLatency {
		return 1
	}
	return 0
}

// bestForLayer runs Algorithm 1's inner loop (lines 6-19) for one layer
// under the given inter-layer options, returning the winning estimate or an
// infeasible fallback estimate if nothing fits. With a memo installed the
// whole candidate sweep is cached per layer shape — under both objectives
// at once — so the inter-layer DP's re-probes, repeated shapes, and a
// sibling planner with the other objective all answer without
// re-estimating anything.
func (pl *Planner) bestForLayer(lp *model.Network, idx int, resident, keep bool) policy.Result {
	var r policy.Result
	pl.bestForLayerInto(&r, lp, idx, resident, keep)
	return r
}

// bestForLayerInto is bestForLayer writing the winner in place.
func (pl *Planner) bestForLayerInto(e *policy.Result, lp *model.Network, idx int, resident, keep bool) {
	pl.bestLayerInto(e, &lp.Layers[idx], resident, keep)
}

// bestLayerInto is the layer-pointer form of bestForLayerInto, shared with
// the DAG planner (graphplan.go), which has no Network to index into.
func (pl *Planner) bestLayerInto(e *policy.Result, l *layer.Layer, resident, keep bool) {
	if pl.best == nil {
		p := pl.bestForLayerDirect(l, resident, keep)
		*e = p[objIndex(pl.Objective)]
		return
	}
	k := bestKey{shape: policy.KeyOf(l), cfg: pl.Cfg,
		noPrefetch: pl.DisablePrefetch, resident: resident, keep: keep}
	if p := pl.best.get(&k); p != nil {
		pl.Memo.CountHit()
		*e = p[objIndex(pl.Objective)]
		e.Layer = l.Name
		return
	}
	pl.Memo.CountMiss()
	p := pl.bestForLayerDirect(l, resident, keep)
	*e = p[objIndex(pl.Objective)]
	pl.best.put(&k, &p)
}

func (pl *Planner) bestForLayerDirect(l *layer.Layer, resident, keep bool) bestPair {
	var p bestPair
	found := false
	// consider folds a feasible candidate into both objectives' running
	// winners with the same strict first-best-wins comparison the
	// single-objective loop used, so each slot is exactly what a dedicated
	// sweep under that objective would have picked.
	consider := func(e *policy.Result) {
		if !found {
			p[0], p[1] = *e, *e
			found = true
			return
		}
		if better(MinAccesses, e, &p[0]) {
			p[0] = *e
		}
		if better(MinLatency, e, &p[1]) {
			p[1] = *e
		}
	}
	sh := policy.NewShape(l, pl.Cfg.IncludePadding)
	var e policy.Result
	for _, id := range planIDs {
		for _, pf := range pl.prefetchChoices() {
			o := policy.Options{Prefetch: pf, ResidentIfmap: resident, KeepOfmap: keep}
			sh.EstimateFastInto(&e, id, o, pl.Cfg)
			if !e.Feasible {
				continue
			}
			consider(&e)
		}
	}
	// Algorithm 1's escape hatch — fallback tiling — is evaluated as a
	// first-class candidate: for some layers (e.g. tiny filter banks under
	// the latency objective) it beats every feasible standard policy, and
	// including it keeps Het dominant over every homogeneous scheme.
	for _, pf := range pl.prefetchChoices() {
		o := policy.Options{Prefetch: pf, ResidentIfmap: resident, KeepOfmap: keep}
		sh.FallbackInto(&e, o, pl.Cfg)
		if !e.Feasible {
			continue
		}
		consider(&e)
	}
	if found {
		return p
	}
	// Even fallback tiling does not fit; report the (infeasible) fallback
	// so callers can surface a precise error.
	sh.FallbackInto(&e, policy.Options{ResidentIfmap: resident, KeepOfmap: keep}, pl.Cfg)
	p[0], p[1] = e, e
	return p
}

// Heterogeneous produces the paper's Het scheme: the best feasible policy
// per layer. With InterLayer enabled it additionally decides, via dynamic
// programming over the resident/non-resident state, which transitions keep
// the producer's ofmap on-chip.
func (pl *Planner) Heterogeneous(n *model.Network) (*Plan, error) {
	return pl.HeterogeneousCtx(context.Background(), n, nil)
}

// HeterogeneousCtx is Heterogeneous with cancellation and observation: it
// checks ctx between layers (the paper's Algorithm 1 outer loop) and emits
// one progress event per planned layer. A canceled context returns an error
// wrapping ctx.Err() and identifying the layer reached.
func (pl *Planner) HeterogeneousCtx(ctx context.Context, n *model.Network, prog progress.Func) (*Plan, error) {
	if err := pl.Cfg.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	if err := n.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	plan := &Plan{
		Model: n.Name, Cfg: pl.Cfg, Objective: pl.Objective,
		Scheme:               "het",
		ChainableTransitions: countChainable(n),
	}
	var err error
	switch {
	case pl.InterLayer && pl.InterLayerGreedy:
		plan.Layers, err = pl.interLayerGreedy(ctx, n, prog)
	case pl.InterLayer:
		plan.Layers, err = pl.interLayerDP(ctx, n, prog)
	default:
		plan.Layers, err = pl.independentLayers(ctx, n, prog)
	}
	if err != nil {
		return nil, err
	}
	return plan, nil
}

func (pl *Planner) independentLayers(ctx context.Context, n *model.Network, prog progress.Func) ([]LayerPlan, error) {
	out := make([]LayerPlan, len(n.Layers))
	var accesses, cycles int64
	for i := range n.Layers {
		if err := layerGate(ctx); err != nil {
			return nil, smmerr.Layer(i, n.Layers[i].Name, err)
		}
		out[i].Layer = n.Layers[i]
		e := &out[i].Est
		pl.bestForLayerInto(e, n, i, false, false)
		if !e.Feasible {
			return nil, smmerr.Layer(i, n.Layers[i].Name,
				&smmerr.InfeasibleError{Model: n.Name, Layer: n.Layers[i].Name, Need: e.MemoryBytes, Have: pl.Cfg.GLBBytes})
		}
		accesses += e.AccessElems
		cycles += e.LatencyCycles
		if prog != nil {
			prog(progress.Event{Phase: "plan", Index: i, Total: len(n.Layers), Name: n.Layers[i].Name,
				Policy: policy.ShortVariant(e.Policy, e.Opts.Prefetch), AccessElems: accesses, LatencyCycles: cycles})
		}
	}
	return out, nil
}

// dpInf marks an unreachable DP state's cost.
const dpInf = int64(1) << 62

// dpCell is one state of the inter-layer DP table: the best cumulative
// (prim, sec) objective cost entering a layer with the given resident state,
// plus the decision (estimate, keep, predecessor state) that achieved it.
type dpCell struct {
	prim, sec int64
	est       policy.Result
	keep      bool
	prev      int // predecessor state
	ok        bool
}

// dpStep computes dp[i+1] from dp[i]: the transition over layer i, trying
// KeepOfmap only when the shapes chain. It is shared verbatim by the
// from-scratch DP and the incremental resume path, so both make identical
// decisions by construction.
func (pl *Planner) dpStep(n *model.Network, i int, cur *[2]dpCell) [2]dpCell {
	L := len(n.Layers)
	next := [2]dpCell{{prim: dpInf, sec: dpInf}, {prim: dpInf, sec: dpInf}}
	canKeep := i+1 < L && chainable(&n.Layers[i], &n.Layers[i+1])
	for s := 0; s < 2; s++ {
		if !cur[s].ok {
			continue
		}
		keeps := prefetchAll[:1] // {false}
		if canKeep {
			keeps = prefetchAll[:] // {false, true}
		}
		for _, keep := range keeps {
			e := pl.bestForLayer(n, i, s == 1, keep)
			if !e.Feasible {
				continue
			}
			p, sc := objectiveKey(pl.Objective, &e)
			cand := dpCell{
				prim: cur[s].prim + p, sec: cur[s].sec + sc,
				est: e, keep: keep, prev: s, ok: true,
			}
			ns := 0
			if keep {
				ns = 1
			}
			c := &next[ns]
			if !c.ok || cand.prim < c.prim || (cand.prim == c.prim && cand.sec < c.sec) {
				*c = cand
			}
		}
	}
	return next
}

// dpPickEnd selects the terminal DP state (the usual prim-then-sec order)
// and reports whether any terminal state is reachable.
func dpPickEnd(last *[2]dpCell) (int, bool) {
	end := 0
	if last[1].ok && (!last[0].ok || last[1].prim < last[0].prim ||
		(last[1].prim == last[0].prim && last[1].sec < last[0].sec)) {
		end = 1
	}
	return end, last[end].ok
}

// dpWalkBack materialises out[0..hi-1] by walking the predecessor links
// backwards from position hi entered in the given state. The estimate's
// layer name is (re)patched from n — resumed tables may carry cells
// computed for an identically-shaped layer under a different name.
func dpWalkBack(n *model.Network, dp [][2]dpCell, out []LayerPlan, hi, state int) {
	s := state
	for i := hi - 1; i >= 0; i-- {
		c := &dp[i+1][s]
		out[i] = LayerPlan{
			Layer:            n.Layers[i],
			Est:              c.est,
			ConsumesResident: c.prev == 1,
			KeepsResident:    c.keep,
		}
		out[i].Est.Layer = n.Layers[i].Name
		s = c.prev
	}
}

// dpInfeasible reports the no-feasible-plan failure precisely: the first
// layer that cannot be scheduled at all, or the generic inter-layer error
// when every layer fits in isolation.
func (pl *Planner) dpInfeasible(n *model.Network) error {
	for i := range n.Layers {
		e := pl.bestForLayer(n, i, false, false)
		if !e.Feasible {
			return smmerr.Layer(i, n.Layers[i].Name,
				&smmerr.InfeasibleError{Model: n.Name, Layer: n.Layers[i].Name, Need: e.MemoryBytes, Have: pl.Cfg.GLBBytes})
		}
	}
	return fmt.Errorf("core: %s: no feasible inter-layer plan: %w", n.Name, smmerr.ErrInfeasible)
}

// dpFinish picks the terminal state of a complete table and walks the
// decisions back into layer plans.
func (pl *Planner) dpFinish(n *model.Network, dp [][2]dpCell) ([]LayerPlan, error) {
	L := len(n.Layers)
	end, ok := dpPickEnd(&dp[L])
	if !ok {
		return nil, pl.dpInfeasible(n)
	}
	out := make([]LayerPlan, L)
	dpWalkBack(n, dp, out, L, end)
	return out, nil
}

// interLayerDP chooses per-layer policies and inter-layer retention jointly:
// state s indicates whether layer i's ifmap is resident in the GLB. The
// transition cost is the layer's objective key; retention (KeepOfmap) is
// only permitted on transitions whose shapes chain.
func (pl *Planner) interLayerDP(ctx context.Context, n *model.Network, prog progress.Func) ([]LayerPlan, error) {
	out, _, err := pl.interLayerDPKeep(ctx, n, prog, false)
	return out, err
}

// interLayerDPKeep is interLayerDP optionally returning the DP table for
// checkpoint capture. When keepDP is false the table comes from (and
// returns to) a pool; when true it is freshly allocated and handed to the
// caller, which owns it from then on.
func (pl *Planner) interLayerDPKeep(ctx context.Context, n *model.Network, prog progress.Func, keepDP bool) ([]LayerPlan, [][2]dpCell, error) {
	L := len(n.Layers)
	// dp[i][s]: best cumulative cost entering layer i with resident state s.
	var dp [][2]dpCell
	if keepDP {
		dp = make([][2]dpCell, L+1)
	} else {
		dp = dpTableGet(L + 1)
		defer dpTablePut(dp)
	}
	dp[0][0] = dpCell{ok: true}
	dp[0][1] = dpCell{prim: dpInf, sec: dpInf}

	for i := 0; i < L; i++ {
		if err := layerGate(ctx); err != nil {
			return nil, nil, smmerr.Layer(i, n.Layers[i].Name, err)
		}
		dp[i+1] = pl.dpStep(n, i, &dp[i])
		prog.Emit(progress.Event{Phase: "plan", Index: i, Total: L, Name: n.Layers[i].Name})
	}
	out, err := pl.dpFinish(n, dp)
	if err != nil {
		return nil, nil, err
	}
	if keepDP {
		return out, dp, nil
	}
	return out, nil, nil
}

// Homogeneous produces a plan that applies one (policy, ±prefetch) variant
// to every layer, falling back to fallback tiling on layers where the
// variant does not fit (the paper's Hom schemes must still execute every
// layer).
func (pl *Planner) Homogeneous(n *model.Network, id policy.ID, prefetch bool) (*Plan, error) {
	return pl.HomogeneousCtx(context.Background(), n, id, prefetch, nil)
}

// HomogeneousCtx is Homogeneous with per-layer cancellation checks and
// progress events.
func (pl *Planner) HomogeneousCtx(ctx context.Context, n *model.Network, id policy.ID, prefetch bool, prog progress.Func) (*Plan, error) {
	if err := pl.Cfg.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	if err := n.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	return pl.homogeneousPlanned(ctx, n, id, prefetch, prog)
}

// homogeneousPlanned is HomogeneousCtx after validation — the per-variant
// body BestHomogeneousCtx fans out (validating once, not twelve times).
func (pl *Planner) homogeneousPlanned(ctx context.Context, n *model.Network, id policy.ID, prefetch bool, prog progress.Func) (*Plan, error) {
	plan := &Plan{
		Model: n.Name, Cfg: pl.Cfg, Objective: pl.Objective,
		Scheme:               "hom " + policy.Variant(id, prefetch),
		ChainableTransitions: countChainable(n),
	}
	plan.Layers = make([]LayerPlan, 0, len(n.Layers))
	var accesses, cycles int64
	for i := range n.Layers {
		if err := layerGate(ctx); err != nil {
			return nil, smmerr.Layer(i, n.Layers[i].Name, err)
		}
		l := &n.Layers[i]
		// Fill the plan slot in place: the estimate lands directly in its
		// final location instead of bouncing through stack copies.
		plan.Layers = append(plan.Layers, LayerPlan{Layer: *l})
		e := &plan.Layers[i].Est
		pl.Memo.EstimateInto(e, l, id, policy.Options{Prefetch: prefetch}, pl.Cfg)
		if !e.Feasible {
			pl.bestFallbackInto(e, l)
			if !e.Feasible {
				return nil, smmerr.Layer(i, l.Name,
					&smmerr.InfeasibleError{Model: n.Name, Layer: l.Name, Need: e.MemoryBytes, Have: pl.Cfg.GLBBytes})
			}
		}
		accesses += e.AccessElems
		cycles += e.LatencyCycles
		if prog != nil {
			prog(progress.Event{Phase: "plan", Index: i, Total: len(n.Layers), Name: l.Name,
				Policy: policy.ShortVariant(e.Policy, e.Opts.Prefetch), AccessElems: accesses, LatencyCycles: cycles})
		}
	}
	return plan, nil
}

func (pl *Planner) bestFallback(l *layer.Layer) policy.Result {
	var r policy.Result
	pl.bestFallbackInto(&r, l)
	return r
}

// bestFallbackInto is bestFallback writing the winner in place.
func (pl *Planner) bestFallbackInto(e *policy.Result, l *layer.Layer) {
	if pl.best == nil {
		p := pl.bestFallbackDirect(l)
		*e = p[objIndex(pl.Objective)]
		return
	}
	k := bestKey{shape: policy.KeyOf(l), cfg: pl.Cfg,
		noPrefetch: pl.DisablePrefetch, fallback: true}
	if p := pl.best.get(&k); p != nil {
		pl.Memo.CountHit()
		*e = p[objIndex(pl.Objective)]
		e.Layer = l.Name
		return
	}
	pl.Memo.CountMiss()
	p := pl.bestFallbackDirect(l)
	*e = p[objIndex(pl.Objective)]
	pl.best.put(&k, &p)
}

func (pl *Planner) bestFallbackDirect(l *layer.Layer) bestPair {
	var p bestPair
	found := false
	for _, pf := range pl.prefetchChoices() {
		e := pl.Memo.Fallback(l, policy.Options{Prefetch: pf}, pl.Cfg)
		if !e.Feasible {
			continue
		}
		if !found {
			p[0], p[1] = e, e
			found = true
			continue
		}
		if better(MinAccesses, &e, &p[0]) {
			p[0] = e
		}
		if better(MinLatency, &e, &p[1]) {
			p[1] = e
		}
	}
	if found {
		return p
	}
	e := pl.Memo.Fallback(l, policy.Options{}, pl.Cfg)
	p[0], p[1] = e, e
	return p
}

// BestHomogeneous evaluates every homogeneous scheme (each policy, with and
// without prefetching) and returns the one minimising the objective — the
// paper's Hom bars.
func (pl *Planner) BestHomogeneous(n *model.Network) (*Plan, error) {
	return pl.BestHomogeneousCtx(context.Background(), n, nil)
}

// BestHomogeneousCtx is BestHomogeneous with cancellation and, when
// Workers permits, a parallel fan-out: the candidate (policy, ±prefetch)
// variants are planned concurrently over a worker pool and reduced in
// deterministic variant order, so the selected plan is byte-identical to
// the sequential walk no matter the worker count or finish order.
// Progress events from concurrent variant passes are tagged with the
// variant's Cell label and delivered one at a time, so a single-goroutine
// observer (a span, a log hook) needs no locking of its own. Cancellation
// and injected faults surface immediately rather than being mistaken for
// an infeasible variant.
func (pl *Planner) BestHomogeneousCtx(ctx context.Context, n *model.Network, prog progress.Func) (*Plan, error) {
	if err := pl.Cfg.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	if err := n.Validate(); err != nil {
		return nil, smmerr.BadModel(err)
	}
	if prog == nil {
		// No observer to feed per-variant events: take the shape-deduped
		// scoring path and assemble only the winning variant's plan.
		return pl.bestHomogeneousFast(ctx, n)
	}
	variants := homVariants(pl.prefetchChoices())
	plans := make([]*Plan, len(variants))
	errs := make([]error, len(variants))
	var emitMu sync.Mutex
	err := parallel.ForEachCtx(ctx, len(variants), pl.Workers, func(ctx context.Context, i int) error {
		v := variants[i]
		cell := policy.ShortVariant(v.id, v.pf)
		vprog := func(ev progress.Event) {
			ev.Cell = cell
			emitMu.Lock()
			prog(ev)
			emitMu.Unlock()
		}
		p, verr := pl.homogeneousPlanned(ctx, n, v.id, v.pf, vprog)
		if verr != nil {
			// Cancellation and injected faults are transient, not a
			// property of the variant: stop the fan-out and surface them.
			if smmerr.IsCanceled(verr) || faultinject.IsInjected(verr) {
				return verr
			}
			errs[i] = verr
			return nil
		}
		plans[i] = p
		return nil
	})
	if err != nil {
		// A bare sentinel means the fan-out feeder stopped before entering
		// a variant (the sequential path's pre-variant ctx check); errors
		// from inside a variant pass are already wrapped.
		if err == context.Canceled || err == context.DeadlineExceeded { //nolint:errorlint // identity, not tree, distinguishes the feeder
			return nil, fmt.Errorf("core: %s: %w", n.Name, err)
		}
		return nil, err
	}
	// Reduce in variant order: first-best wins ties, exactly as the
	// sequential loop's strict planBetter comparison would.
	var best *Plan
	var firstErr error
	for i := range variants {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		if p := plans[i]; p != nil && (best == nil || planBetter(pl.Objective, p, best)) {
			best = p
		}
	}
	if best == nil {
		return nil, firstErr
	}
	return best, nil
}

// homVariant is one homogeneous candidate scheme: a policy with or without
// prefetching.
type homVariant struct {
	id policy.ID
	pf bool
}

func homVariants(prefetch []bool) []homVariant {
	variants := make([]homVariant, 0, 2*len(planIDs))
	for _, id := range planIDs {
		for _, pf := range prefetch {
			variants = append(variants, homVariant{id, pf})
		}
	}
	return variants
}

// bestHomogeneousFast is BestHomogeneousCtx without an observer: networks
// repeat layer shapes heavily, and the estimators are pure functions of
// (shape, variant, config), so the pass dedupes the network into its
// distinct shapes, sweeps every variant once per shape (fanned over the
// worker pool), and scores variants by accumulating the dense per-shape
// contributions in layer order. Totals, failure layers and tie-breaks are
// exactly those of the per-variant walk — the winning variant's plan,
// assembled at the end from the now-warm caches, is byte-identical — but
// the work drops from variants×layers probes to variants×shapes sweeps
// and a single plan materialisation.
func (pl *Planner) bestHomogeneousFast(ctx context.Context, n *model.Network) (*Plan, error) {
	variants := homVariants(pl.prefetchChoices())
	L := len(n.Layers)
	hs := homScratchGet(L)
	defer homScratchPut(hs) // ForEachCtx joins its workers before returning
	shapeIdx := hs.shapeIdx // layer -> dense shape index
	idxOf := hs.idxOf
	for i := range n.Layers {
		k := policy.KeyOf(&n.Layers[i])
		j, ok := idxOf[k]
		if !ok {
			j = len(hs.repLayer)
			idxOf[k] = j
			hs.repLayer = append(hs.repLayer, i)
		}
		shapeIdx[i] = j
	}
	repLayer := hs.repLayer // shape index -> representative layer
	if cap(hs.contribs) < len(repLayer) {
		hs.contribs = make([]homContribs, len(repLayer))
	}
	contribs := hs.contribs[:len(repLayer)]
	err := parallel.ForEachCtx(ctx, len(repLayer), pl.Workers, func(ctx context.Context, si int) error {
		li := repLayer[si]
		if err := layerGate(ctx); err != nil {
			return smmerr.Layer(li, n.Layers[li].Name, err)
		}
		l := &n.Layers[li]
		k := homKey{shape: policy.KeyOf(l), cfg: pl.Cfg, noPrefetch: pl.DisablePrefetch}
		if pl.best != nil {
			if row := pl.best.homGet(&k); row != nil {
				pl.Memo.CountHit()
				contribs[si] = *row
				return nil
			}
			pl.Memo.CountMiss()
		}
		// Miss: estimate every variant straight from the shape. The shared
		// estimate memo is deliberately bypassed here — its per-probe
		// hash/store costs more than the estimator on this dense sweep —
		// and the whole row is published once instead.
		sh := policy.NewShape(l, pl.Cfg.IncludePadding)
		var row homContribs
		var e policy.Result
		for vi, v := range variants {
			sh.EstimateFastInto(&e, v.id, policy.Options{Prefetch: v.pf}, pl.Cfg)
			if !e.Feasible {
				pl.bestFallbackInto(&e, l)
			}
			if e.Feasible {
				row[vi] = homContrib{acc: e.AccessElems, lat: e.LatencyCycles, ok: true}
			} else {
				row[vi] = homContrib{need: e.MemoryBytes}
			}
		}
		contribs[si] = row
		if pl.best != nil {
			pl.best.homPut(&k, &row)
		}
		return nil
	})
	if err != nil {
		if err == context.Canceled || err == context.DeadlineExceeded { //nolint:errorlint // identity, not tree, distinguishes the feeder
			return nil, fmt.Errorf("core: %s: %w", n.Name, err)
		}
		return nil, err
	}
	// Score variants in variant order; within one, walk layers in order so
	// the failure layer and the running sums match the sequential pass.
	bestIdx := -1
	var bestTotals [2]int64
	var firstErr error
	for vi := range variants {
		var acc, lat int64
		var verr error
		for i := 0; i < L; i++ {
			c := &contribs[shapeIdx[i]][vi]
			if !c.ok {
				verr = smmerr.Layer(i, n.Layers[i].Name,
					&smmerr.InfeasibleError{Model: n.Name, Layer: n.Layers[i].Name, Need: c.need, Have: pl.Cfg.GLBBytes})
				break
			}
			acc += c.acc
			lat += c.lat
		}
		if verr != nil {
			if firstErr == nil {
				firstErr = verr
			}
			continue
		}
		t := [2]int64{acc, lat}
		if bestIdx < 0 || totalsBetter(pl.Objective, t, bestTotals) {
			bestIdx, bestTotals = vi, t
		}
	}
	if bestIdx < 0 {
		return nil, firstErr
	}
	return pl.homogeneousPlanned(ctx, n, variants[bestIdx].id, variants[bestIdx].pf, nil)
}

// totalsBetter is planBetter on precomputed {accesses, cycles} sums.
func totalsBetter(o Objective, a, b [2]int64) bool {
	ap, as, bp, bs := a[0], a[1], b[0], b[1]
	if o == MinLatency {
		ap, as, bp, bs = a[1], a[0], b[1], b[0]
	}
	if ap != bp {
		return ap < bp
	}
	return as < bs
}

func planBetter(o Objective, a, b *Plan) bool {
	var ap, as, bp, bs int64
	if o == MinLatency {
		ap, as = a.LatencyCycles(), a.AccessElems()
		bp, bs = b.LatencyCycles(), b.AccessElems()
	} else {
		ap, as = a.AccessElems(), a.LatencyCycles()
		bp, bs = b.AccessElems(), b.LatencyCycles()
	}
	if ap != bp {
		return ap < bp
	}
	return as < bs
}

// interLayerGreedy makes retention decisions in one forward pass: at each
// chainable transition it compares the local cost of (keep producer ofmap +
// consumer reads resident ifmap) against both layers running plainly, and
// retains when the pair improves. Unlike the DP it cannot see that an early
// retention forecloses a better one later, so it serves as the ablation
// baseline for interLayerDP.
func (pl *Planner) interLayerGreedy(ctx context.Context, n *model.Network, prog progress.Func) ([]LayerPlan, error) {
	L := len(n.Layers)
	out := make([]LayerPlan, L)
	resident := false
	var accesses, cycles int64
	for i := 0; i < L; i++ {
		if err := layerGate(ctx); err != nil {
			return nil, smmerr.Layer(i, n.Layers[i].Name, err)
		}
		plain := pl.bestForLayer(n, i, resident, false)
		keep := false
		best := plain
		if i+1 < L && chainable(&n.Layers[i], &n.Layers[i+1]) {
			withKeep := pl.bestForLayer(n, i, resident, true)
			if withKeep.Feasible {
				nextPlain := pl.bestForLayer(n, i+1, false, false)
				nextResident := pl.bestForLayer(n, i+1, true, false)
				if nextResident.Feasible {
					kp, ks := objectiveKey(pl.Objective, &withKeep)
					np, ns := objectiveKey(pl.Objective, &nextResident)
					pp, psec := objectiveKey(pl.Objective, &plain)
					qp, qs := objectiveKey(pl.Objective, &nextPlain)
					pairKeep, pairKeepSec := kp+np, ks+ns
					pairPlain, pairPlainSec := pp+qp, psec+qs
					if pairKeep < pairPlain || (pairKeep == pairPlain && pairKeepSec < pairPlainSec) {
						keep, best = true, withKeep
					}
				}
			}
		}
		if !best.Feasible {
			return nil, smmerr.Layer(i, n.Layers[i].Name,
				&smmerr.InfeasibleError{Model: n.Name, Layer: n.Layers[i].Name, Need: best.MemoryBytes, Have: pl.Cfg.GLBBytes})
		}
		out[i] = LayerPlan{Layer: n.Layers[i], Est: best, ConsumesResident: resident, KeepsResident: keep}
		accesses += best.AccessElems
		cycles += best.LatencyCycles
		prog.Emit(progress.Event{Phase: "plan", Index: i, Total: L, Name: n.Layers[i].Name,
			Policy: policy.ShortVariant(best.Policy, best.Opts.Prefetch), AccessElems: accesses, LatencyCycles: cycles})
		resident = keep
	}
	return out, nil
}
