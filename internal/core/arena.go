package core

import (
	"sync"

	"scratchmem/internal/policy"
)

// Per-request planning scratch — DP tables, the homogeneous sweep's
// dedup/contribution rows — is recycled through sync.Pools so steady-state
// serving stops paying an allocation per request. Nothing here changes what
// the planner computes: every pooled structure is fully (re)initialised
// before use, and anything captured beyond the request (a checkpoint's DP
// table) is allocated outside the pools.

var dpTablePool sync.Pool

// dpTableGet returns a DP table with at least n rows. Rows are NOT zeroed:
// interLayerDPKeep overwrites every row it reads.
func dpTableGet(n int) [][2]dpCell {
	if v := dpTablePool.Get(); v != nil {
		if dp := v.([][2]dpCell); cap(dp) >= n {
			return dp[:n]
		}
	}
	return make([][2]dpCell, n)
}

func dpTablePut(dp [][2]dpCell) {
	dpTablePool.Put(dp[:cap(dp)]) //nolint:staticcheck // slice header, one pointer
}

// homScratch is bestHomogeneousFast's per-call working set.
type homScratch struct {
	shapeIdx []int // layer -> dense shape index
	repLayer []int // shape index -> representative layer
	idxOf    map[policy.LayerKey]int
	contribs []homContribs
}

var homScratchPool = sync.Pool{
	New: func() any {
		return &homScratch{idxOf: make(map[policy.LayerKey]int, 16)}
	},
}

// homScratchGet returns a scratch sized for L layers with shapeIdx live,
// repLayer/contribs empty and idxOf cleared.
func homScratchGet(L int) *homScratch {
	hs := homScratchPool.Get().(*homScratch)
	if cap(hs.shapeIdx) < L {
		hs.shapeIdx = make([]int, L)
	}
	hs.shapeIdx = hs.shapeIdx[:L]
	hs.repLayer = hs.repLayer[:0]
	hs.contribs = hs.contribs[:0]
	clear(hs.idxOf)
	return hs
}

func homScratchPut(hs *homScratch) { homScratchPool.Put(hs) }
